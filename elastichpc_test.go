package elastichpc_test

import (
	"reflect"
	"testing"
	"time"

	"elastichpc"
)

func TestFacadeRuntimeAndApps(t *testing.T) {
	rt, err := elastichpc.NewRuntime(elastichpc.RuntimeConfig{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	app, err := elastichpc.NewJacobi2D(rt, 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 10 {
		t.Fatalf("ran %d iterations", len(res.Iterations))
	}

	md, err := elastichpc.NewLeanMD(rt, 2, 2, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := md.Run(3); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCCSRoundTrip(t *testing.T) {
	rt, err := elastichpc.NewRuntime(elastichpc.RuntimeConfig{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	app, err := elastichpc.NewJacobi2D(rt, 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.ServeCCS(elastichpc.CCSOptions{Addr: "127.0.0.1:0", Status: app.Status})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	done := make(chan error, 1)
	go func() {
		c, err := elastichpc.DialCCS(h.Addr(), 30*time.Second)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		done <- c.Shrink(2)
	}()
	app.LBPeriod = 5
	// Keep iterating until the asynchronously-arriving CCS shrink has been
	// serviced (the request may land after a short run completes).
	deadline := time.Now().Add(30 * time.Second)
	for rt.NumPEs() != 2 && time.Now().Before(deadline) {
		if _, err := app.Run(10); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("CCS shrink: %v", err)
	}
	if rt.NumPEs() != 2 {
		t.Fatalf("NumPEs = %d after CCS shrink", rt.NumPEs())
	}
}

func TestFacadeSimulateAndEmulate(t *testing.T) {
	w := elastichpc.RandomWorkload(8, 60, 1)
	simRes, err := elastichpc.Simulate(elastichpc.Elastic, w, elastichpc.WithRescaleGap(180))
	if err != nil {
		t.Fatal(err)
	}
	if len(simRes.Jobs) != 8 || simRes.TotalTime <= 0 {
		t.Fatalf("sim result: %d jobs, total %g", len(simRes.Jobs), simRes.TotalTime)
	}
	emuRes, err := elastichpc.Emulate(elastichpc.DefaultClusterConfig(elastichpc.Elastic), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(emuRes.Jobs) != 8 || emuRes.TotalTime <= 0 {
		t.Fatalf("emulation result: %d jobs, total %g", len(emuRes.Jobs), emuRes.TotalTime)
	}
}

func TestFacadeSchedulerPolicies(t *testing.T) {
	if got := len(elastichpc.AllPolicies()); got != 4 {
		t.Fatalf("AllPolicies = %d", got)
	}
	names := map[elastichpc.Policy]string{
		elastichpc.Elastic:  "elastic",
		elastichpc.Moldable: "moldable",
		elastichpc.RigidMin: "min_replicas",
		elastichpc.RigidMax: "max_replicas",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%v != %s", p, want)
		}
	}
}

func TestFacadeStreamingAndMetricsReport(t *testing.T) {
	w := elastichpc.RandomWorkload(8, 90, 2)
	retained, err := elastichpc.Simulate(elastichpc.Elastic, w, elastichpc.WithRescaleGap(180))
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := elastichpc.Simulate(elastichpc.Elastic, w,
		elastichpc.WithRescaleGap(180), elastichpc.WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	if streaming.TotalTime != retained.TotalTime || streaming.Utilization != retained.Utilization {
		t.Errorf("streaming aggregates diverge: %+v vs %+v", streaming, retained)
	}
	if streaming.Jobs != nil {
		t.Error("streaming result retained per-job metrics")
	}
	parallel, err := elastichpc.Simulate(elastichpc.Elastic, w,
		elastichpc.WithRescaleGap(180), elastichpc.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, streaming) {
		t.Errorf("sharded facade run diverges from streaming: %+v vs %+v", parallel, streaming)
	}

	rep := elastichpc.NewMetricsReport("facade-test", "run")
	rep.Runs = []elastichpc.MetricsRun{elastichpc.ResultToMetricsRun("uniform", retained)}
	path := t.TempDir() + "/report.json"
	if err := elastichpc.WriteMetricsReport(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := elastichpc.ReadMetricsReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Policy != "elastic" || back.Runs[0].TotalTime != retained.TotalTime {
		t.Errorf("report round trip mismatch: %+v", back)
	}
}
