// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§4), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates the corresponding rows/series and
// prints them once; run with
//
//	go test -bench=. -benchmem
//
// Figures 4–6 exercise the real charm runtime (problem sizes scaled down —
// the goroutine runtime shares one machine, not 4 EKS nodes; the curve
// shapes are the reproduction target). Figures 7–9 and Table 1 run the DES
// simulator and the full k8s emulation at paper-scale parameters.
package elastichpc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/lb"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
)

// printOnce guards per-benchmark series printing.
var printOnce sync.Map

func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// benchPEs picks replica counts that fit the host.
func benchPEs() []int {
	all := []int{2, 4, 8, 16, 32, 64}
	var out []int
	for _, p := range all {
		if p <= runtime.NumCPU() {
			out = append(out, p)
		}
	}
	if len(out) < 3 {
		out = []int{2, 4, 8}
	}
	return out
}

func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}

func jacobiIterTime(b *testing.B, grid, pes, iters int) float64 {
	b.Helper()
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	bx, by := chareGrid(4 * pes)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		b.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		b.Fatal(err)
	}
	return res.TimePerIteration().Seconds()
}

// BenchmarkFig4aJacobiScaling — Figure 4a: Jacobi2D strong scaling for three
// grid sizes (scaled down 8× from the paper's 2048/8192/16384).
func BenchmarkFig4aJacobiScaling(b *testing.B) {
	grids := []int{256, 1024, 2048}
	pes := benchPEs()
	for i := 0; i < b.N; i++ {
		once("fig4a", func() {
			fmt.Println("\nFig 4a (Jacobi2D strong scaling, grids scaled 8x down): grid,replicas,s/iter")
			for _, g := range grids {
				for _, p := range pes {
					fmt.Printf("fig4a,%d,%d,%.6f\n", g, p, jacobiIterTime(b, g, p, 12))
				}
			}
		})
		// Timed body: one representative point.
		_ = jacobiIterTime(b, 1024, pes[len(pes)-1], 6)
	}
}

// BenchmarkFig4bLeanMDScaling — Figure 4b: LeanMD strong scaling for three
// cell grids.
func BenchmarkFig4bLeanMDScaling(b *testing.B) {
	cells := [][3]int{{4, 4, 4}, {4, 4, 8}, {4, 8, 8}}
	pes := benchPEs()
	runOne := func(c [3]int, p, iters int) float64 {
		rt, err := charm.New(charm.Config{PEs: p, RestartLatency: charm.ZeroRestartLatency})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Shutdown()
		r, err := apps.NewLeanMDRunner(rt, c[0], c[1], c[2], 32, 2025)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(iters)
		if err != nil {
			b.Fatal(err)
		}
		return res.TimePerIteration().Seconds()
	}
	for i := 0; i < b.N; i++ {
		once("fig4b", func() {
			fmt.Println("\nFig 4b (LeanMD strong scaling): cells,replicas,s/step")
			for _, c := range cells {
				for _, p := range pes {
					fmt.Printf("fig4b,%dx%dx%d,%d,%.6f\n", c[0], c[1], c[2], p, runOne(c, p, 8))
				}
			}
		})
		_ = runOne(cells[0], pes[len(pes)-1], 4)
	}
}

// rescaleOnce measures one shrink/expand of a real Jacobi run.
func rescaleOnce(b *testing.B, from, to, grid int) charm.RescaleStats {
	b.Helper()
	rt, err := charm.New(charm.Config{PEs: from})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	side := from
	if to > side {
		side = to
	}
	bx, by := chareGrid(4 * side)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		b.Fatal(err)
	}
	r.LBPeriod = 5
	go func() { <-rt.RequestRescale(to) }()
	if _, err := r.Run(10); err != nil {
		b.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) == 0 {
		b.Fatalf("no rescale recorded %d->%d", from, to)
	}
	return stats[len(stats)-1]
}

func printPhases(tag string, x int, s charm.RescaleStats) {
	fmt.Printf("%s,%d,lb=%.4f,ckpt=%.4f,restart=%.4f,restore=%.4f,total=%.4f,bytes=%d\n",
		tag, x, s.LoadBalance.Seconds(), s.Checkpoint.Seconds(), s.Restart.Seconds(),
		s.Restore.Seconds(), s.Total.Seconds(), s.CheckpointBytes)
}

// BenchmarkFig5aShrinkOverhead — Figure 5a: shrink to half, varying the
// replica count before shrinking (grid scaled down 8×).
func BenchmarkFig5aShrinkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("fig5a", func() {
			fmt.Println("\nFig 5a (shrink to half, 1024² grid): replicas,phases")
			for _, p := range []int{4, 8, 16} {
				printPhases("fig5a", p, rescaleOnce(b, p, p/2, 1024))
			}
		})
		_ = rescaleOnce(b, 8, 4, 1024)
	}
}

// BenchmarkFig5bExpandOverhead — Figure 5b: expand to double.
func BenchmarkFig5bExpandOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("fig5b", func() {
			fmt.Println("\nFig 5b (expand to double, 1024² grid): replicas,phases")
			for _, p := range []int{2, 4, 8} {
				printPhases("fig5b", p, rescaleOnce(b, p, p*2, 1024))
			}
		})
		_ = rescaleOnce(b, 4, 8, 1024)
	}
}

// BenchmarkFig5cOverheadVsSize — Figure 5c: shrink 16→8 (paper: 32→16) for
// growing problem sizes.
func BenchmarkFig5cOverheadVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("fig5c", func() {
			fmt.Println("\nFig 5c (shrink 16->8, grid sweep): grid,phases")
			for _, g := range []int{64, 256, 1024, 4096} {
				printPhases("fig5c", g, rescaleOnce(b, 16, 8, g))
			}
		})
		_ = rescaleOnce(b, 16, 8, 1024)
	}
}

// BenchmarkFig6Timeline — Figure 6: per-iteration times and timeline around
// a shrink and a re-expand.
func BenchmarkFig6Timeline(b *testing.B) {
	run := func(print bool) {
		rt, err := charm.New(charm.Config{PEs: 8})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Shutdown()
		bx, by := chareGrid(32)
		r, err := apps.NewJacobiRunner(rt, 2048, bx, by)
		if err != nil {
			b.Fatal(err)
		}
		r.LBPeriod = 20
		go func() { <-rt.RequestRescale(4) }()
		res1, err := r.Run(40)
		if err != nil {
			b.Fatal(err)
		}
		go func() { <-rt.RequestRescale(8) }()
		res2, err := r.Run(40)
		if err != nil {
			b.Fatal(err)
		}
		if !print {
			return
		}
		fmt.Println("\nFig 6 (Jacobi 2048², shrink 8->4 then expand 4->8): iter,pes,timestamp_s")
		base, off := 0.0, 0
		for _, res := range []apps.RunResult{res1, res2} {
			for j, it := range res.Iterations {
				if (j+1)%10 == 0 {
					fmt.Printf("fig6,%d,%d,%.3f\n", off+it.Iter, it.PEs, base+it.Timestamp.Seconds())
				}
			}
			for _, ev := range res.Rescales {
				fmt.Printf("fig6,# rescale %d->%d at %.3fs overhead=%v\n",
					ev.FromPEs, ev.ToPEs, base+ev.Timestamp.Seconds(), ev.Stats.Total)
			}
			off += len(res.Iterations)
			base += res.Total.Seconds()
		}
	}
	for i := 0; i < b.N; i++ {
		once("fig6", func() { run(true) })
		run(false)
	}
}

func printSweep(tag string, pts []sim.SweepPoint) {
	for _, pt := range pts {
		for _, p := range core.AllPolicies() {
			a := pt.ByPolicy[p]
			fmt.Printf("%s,%.0f,%s,util=%.3f,total=%.0f,resp=%.1f,comp=%.1f\n",
				tag, pt.X, p, a.Utilization, a.TotalTime, a.WeightedResponse, a.WeightedCompletion)
		}
	}
}

// BenchmarkFig7SubmissionGapSweep — Figure 7: the four metrics vs submission
// gap (0–300 s), 16 jobs, 100 seeds, T_rescale_gap = 180 s.
func BenchmarkFig7SubmissionGapSweep(b *testing.B) {
	gaps := []float64{0, 60, 120, 180, 240, 300}
	for i := 0; i < b.N; i++ {
		once("fig7", func() {
			pts, err := sim.SubmissionGapSweep(gaps, 16, 100, 180)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Println("\nFig 7 (submission-gap sweep, 100 seeds): gap,policy,metrics")
			printSweep("fig7", pts)
		})
		if _, err := sim.SubmissionGapSweep([]float64{90}, 16, 5, 180); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8RescaleGapSweep — Figure 8: the four metrics vs
// T_rescale_gap (0–1200 s) at a fixed 180 s submission gap.
func BenchmarkFig8RescaleGapSweep(b *testing.B) {
	rgaps := []float64{0, 120, 300, 600, 900, 1200}
	for i := 0; i < b.N; i++ {
		once("fig8", func() {
			pts, err := sim.RescaleGapSweep(rgaps, 16, 100, 180)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Println("\nFig 8 (rescale-gap sweep, 100 seeds): rescale_gap,policy,metrics")
			printSweep("fig8", pts)
		})
		if _, err := sim.RescaleGapSweep([]float64{180}, 16, 5, 180); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Simulation — Table 1, Simulation columns.
func BenchmarkTable1Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := sim.Table1Simulation()
		if err != nil {
			b.Fatal(err)
		}
		once("table1sim", func() {
			fmt.Println("\nTable 1 (Simulation): scheduler,total_s,util,resp_s,comp_s")
			for _, p := range core.AllPolicies() {
				r := results[p]
				fmt.Printf("table1sim,%s,%.0f,%.2f%%,%.2f,%.2f\n",
					p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
			}
		})
	}
}

// BenchmarkTable1Actual — Table 1, Actual columns via the full k8s+operator
// emulation.
func BenchmarkTable1Actual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := cluster.Table1Actual()
		if err != nil {
			b.Fatal(err)
		}
		once("table1act", func() {
			fmt.Println("\nTable 1 (Actual, emulated EKS): scheduler,total_s,util,resp_s,comp_s")
			for _, p := range core.AllPolicies() {
				r := results[p]
				fmt.Printf("table1act,%s,%.0f,%.2f%%,%.2f,%.2f\n",
					p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
			}
		})
	}
}

// BenchmarkFig9aUtilizationProfiles — Figure 9a: utilization-over-time
// profiles for the four policies on the emulated cluster.
func BenchmarkFig9aUtilizationProfiles(b *testing.B) {
	w := sim.Table1Workload()
	for i := 0; i < b.N; i++ {
		for _, p := range core.AllPolicies() {
			res, err := cluster.RunExperiment(cluster.DefaultConfig(p), w)
			if err != nil {
				b.Fatal(err)
			}
			p := p
			once("fig9a-"+p.String(), func() {
				fmt.Printf("\nFig 9a (%s): %d utilization samples over %.0fs, mean %.1f%%\n",
					p, len(res.UtilTimeline), res.TotalTime, 100*res.Utilization)
				// Print a decimated profile (every 8th sample).
				for k := 0; k < len(res.UtilTimeline); k += 8 {
					s := res.UtilTimeline[k]
					fmt.Printf("fig9a,%s,%.1f,%d\n", p, s.At, s.Used)
				}
			})
		}
	}
}

// BenchmarkFig9bReplicaTimeline — Figure 9b: replica-count evolution of an
// xlarge job under the elastic policy.
func BenchmarkFig9bReplicaTimeline(b *testing.B) {
	w := sim.Table1Workload()
	specs := model.Specs()
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunExperiment(cluster.DefaultConfig(core.Elastic), w)
		if err != nil {
			b.Fatal(err)
		}
		once("fig9b", func() {
			best, bestLen := "", 0
			for _, js := range w.Jobs {
				if specs[js.Class].Class == model.XLarge {
					if tl := res.ReplicaTimelines[js.ID]; len(tl) > bestLen {
						best, bestLen = js.ID, len(tl)
					}
				}
			}
			fmt.Printf("\nFig 9b (xlarge job %s under elastic): t_s,replicas\n", best)
			for _, s := range res.ReplicaTimelines[best] {
				fmt.Printf("fig9b,%.1f,%d\n", s.At, s.Replicas)
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

func runAblation(b *testing.B, name string, cfg sim.Config, w sim.Workload) sim.Result {
	b.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationNoRescaleGap — T_rescale_gap = 0 vs the default 180 s.
func BenchmarkAblationNoRescaleGap(b *testing.B) {
	w := sim.Table1Workload()
	for i := 0; i < b.N; i++ {
		gap0 := runAblation(b, "gap0", ablCfg(0), w)
		gap180 := runAblation(b, "gap180", ablCfg(180), w)
		once("abl-gap", func() {
			fmt.Printf("\nAblation rescale-gap: gap=0s util=%.3f total=%.0f | gap=180s util=%.3f total=%.0f\n",
				gap0.Utilization, gap0.TotalTime, gap180.Utilization, gap180.TotalTime)
		})
	}
}

func ablCfg(gap float64) sim.Config {
	cfg := sim.DefaultConfig(core.Elastic)
	cfg.RescaleGap = gap
	return cfg
}

// BenchmarkAblationStrictFCFS — out-of-order allocation on vs off, averaged
// over contended (gap-0) workloads where a blocked queue head matters.
func BenchmarkAblationStrictFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var bfUtil, stUtil, bfTotal, stTotal float64
		const seeds = 10
		for seed := int64(0); seed < seeds; seed++ {
			w := sim.RandomWorkload(16, 0, seed)
			cfg := sim.DefaultConfig(core.Elastic)
			backfill := runAblation(b, "backfill", cfg, w)
			cfg2 := sim.DefaultConfig(core.Elastic)
			cfg2.StrictFCFS = true
			strict := runAblation(b, "strict", cfg2, w)
			bfUtil += backfill.Utilization
			stUtil += strict.Utilization
			bfTotal += backfill.TotalTime
			stTotal += strict.TotalTime
		}
		once("abl-fcfs", func() {
			fmt.Printf("\nAblation out-of-order allocation (10 gap-0 workloads): backfill util=%.3f total=%.0f | strict-FCFS util=%.3f total=%.0f\n",
				bfUtil/seeds, bfTotal/seeds, stUtil/seeds, stTotal/seeds)
		})
	}
}

// BenchmarkAblationPriorityAging — aging off vs on (paper §3.2.2).
func BenchmarkAblationPriorityAging(b *testing.B) {
	w := sim.RandomWorkload(16, 30, 7) // high contention: starvation risk
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(core.Elastic)
		off := runAblation(b, "aging-off", cfg, w)
		cfg2 := sim.DefaultConfig(core.Elastic)
		cfg2.AgingRate = 0.02 // +1 priority level per 50 s of waiting
		on := runAblation(b, "aging-on", cfg2, w)
		once("abl-aging", func() {
			worst := func(r sim.Result) float64 {
				var m float64
				for _, j := range r.Jobs {
					if j.ResponseTime > m {
						m = j.ResponseTime
					}
				}
				return m
			}
			fmt.Printf("\nAblation priority aging: off worst-response=%.0fs | on worst-response=%.0fs\n",
				worst(off), worst(on))
		})
	}
}

// BenchmarkAblationPreemption — checkpoint-preemption extension (§3.2.2).
func BenchmarkAblationPreemption(b *testing.B) {
	w := sim.RandomWorkload(16, 30, 7)
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(core.Elastic)
		off := runAblation(b, "preempt-off", cfg, w)
		cfg2 := sim.DefaultConfig(core.Elastic)
		cfg2.EnablePreemption = true
		on := runAblation(b, "preempt-on", cfg2, w)
		once("abl-preempt", func() {
			fmt.Printf("\nAblation preemption: off resp=%.1fs comp=%.1fs | on resp=%.1fs comp=%.1fs\n",
				off.WeightedResponse, off.WeightedCompletion, on.WeightedResponse, on.WeightedCompletion)
		})
	}
}

// BenchmarkAblationCostBenefit — the §6 cost/benefit rescale gate: decline
// rescales of nearly-done jobs and expansions that gain few replicas.
func BenchmarkAblationCostBenefit(b *testing.B) {
	w := sim.RandomWorkload(16, 0, 7)
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(core.Elastic)
		off := runAblation(b, "cb-off", cfg, w)
		cfg2 := sim.DefaultConfig(core.Elastic)
		cfg2.CostBenefit = &core.CostBenefit{MinExpandGain: 4, MinRemainingFraction: 0.1}
		on := runAblation(b, "cb-on", cfg2, w)
		rescales := func(r sim.Result) int {
			n := 0
			for _, j := range r.Jobs {
				n += j.Rescales
			}
			return n
		}
		once("abl-cb", func() {
			fmt.Printf("\nAblation cost/benefit gate: off rescales=%d total=%.0f | gated rescales=%d total=%.0f\n",
				rescales(off), off.TotalTime, rescales(on), on.TotalTime)
		})
	}
}

// BenchmarkAblationLBStrategy — Greedy vs Refine vs Rotate post-rescale
// imbalance on the real runtime.
func BenchmarkAblationLBStrategy(b *testing.B) {
	strategies := []lb.Strategy{lb.Greedy{}, lb.Refine{}, lb.Rotate{}}
	measure := func(s lb.Strategy) float64 {
		rt, err := charm.New(charm.Config{PEs: 4, RescaleLB: s, RestartLatency: charm.ZeroRestartLatency})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Shutdown()
		bx, by := chareGrid(16)
		r, err := apps.NewJacobiRunner(rt, 512, bx, by)
		if err != nil {
			b.Fatal(err)
		}
		r.LBPeriod = 5
		go func() { <-rt.RequestRescale(8) }()
		res, err := r.Run(20)
		if err != nil {
			b.Fatal(err)
		}
		return res.TimePerIteration().Seconds()
	}
	for i := 0; i < b.N; i++ {
		once("abl-lb", func() {
			fmt.Println("\nAblation LB strategy (post-expand iteration time):")
			for _, s := range strategies {
				fmt.Printf("abl-lb,%s,%.6f s/iter\n", s.Name(), measure(s))
			}
		})
		_ = measure(strategies[0])
	}
}

// BenchmarkSchedulerThroughput measures raw policy decision throughput
// (submissions + completions per second) — the operator must "handle a much
// larger number of jobs" than the prior work (§3.2).
func BenchmarkSchedulerThroughput(b *testing.B) {
	act := nopActuator{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Unix(0, 0)
		s, err := core.NewScheduler(core.Config{Policy: core.Elastic, Capacity: 4096, RescaleGap: time.Minute},
			act, func() time.Time { return now })
		if err != nil {
			b.Fatal(err)
		}
		var jobs []*core.Job
		for j := 0; j < 200; j++ {
			job := &core.Job{ID: fmt.Sprintf("j%d", j), Priority: j % 5, MinReplicas: 2, MaxReplicas: 32}
			if err := s.Submit(job); err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, job)
			now = now.Add(time.Second)
		}
		for _, j := range jobs {
			if j.State == core.StateRunning {
				s.OnJobComplete(j)
			}
			now = now.Add(time.Second)
		}
	}
}

type nopActuator struct{}

func (nopActuator) StartJob(*core.Job, int) error  { return nil }
func (nopActuator) ShrinkJob(*core.Job, int) error { return nil }
func (nopActuator) ExpandJob(*core.Job, int) error { return nil }
func (nopActuator) PreemptJob(*core.Job) error     { return nil }
