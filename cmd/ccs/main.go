// Command ccs is the external control client of paper §2.2: it signals a
// running Charm application (launched with cmd/charmrun) to shrink, expand,
// or report status over the Converse Client-Server protocol.
//
// Usage:
//
//	ccs -addr 127.0.0.1:7777 shrink 4
//	ccs -addr 127.0.0.1:7777 expand 8
//	ccs -addr 127.0.0.1:7777 query
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"elastichpc/internal/ccs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7777", "CCS server address")
		timeout = flag.Duration("timeout", 5*time.Minute, "request timeout (rescales block until done)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	c, err := ccs.Dial(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "shrink", "expand":
		if len(args) != 2 {
			log.Fatalf("usage: ccs %s <newPEs>", args[0])
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			log.Fatalf("bad PE count %q", args[1])
		}
		if args[0] == "shrink" {
			err = c.Shrink(n)
		} else {
			err = c.Expand(n, nil)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s to %d PEs acknowledged\n", args[0], n)
	case "query":
		st, err := c.Query()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PEs=%d iteration=%d/%d done=%.1f%% rescales=%d\n",
			st.NumPEs, st.Iteration, st.TotalIters, 100*st.DoneFraction, st.RescaleEvents)
	default:
		log.Fatalf("unknown command %q (want shrink, expand, or query)", args[0])
	}
}
