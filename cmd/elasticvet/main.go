// Command elasticvet runs the repo's determinism-invariant analyzers
// (internal/lint) over Go packages. It speaks two protocols:
//
// Standalone, for contributors — no Makefile, no action, just the toolchain:
//
//	go run ./cmd/elasticvet ./...
//
// arguments are package patterns resolved in the current directory; findings
// print as file:line:col: analyzer: message and the exit status is 1 when
// anything is flagged (2 on driver errors).
//
// Vet tool, for CI — the same analyzers under the go command's caching and
// per-package scheduling:
//
//	go build -o elasticvet ./cmd/elasticvet
//	go vet -vettool=$PWD/elasticvet ./...
//
// In that mode the go command invokes the binary once per package with a
// vet.cfg file (plus -V=full for the build cache and -flags for flag
// discovery), and dependencies arrive as compiler export data instead of
// source; vettool.go implements that handshake.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elastichpc/internal/lint"
)

// main dispatches between the vet-tool handshake and the standalone driver.
func main() {
	os.Exit(run(os.Args[1:]))
}

// run executes one elasticvet invocation and returns its exit code.
func run(args []string) int {
	fs := flag.NewFlagSet("elasticvet", flag.ContinueOnError)
	vFlag := fs.String("V", "", "print version and exit (go vet handshake; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet handshake)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *vFlag != "":
		return printVersion()
	case *flagsFlag:
		// No configurable analyzer flags: the suite always runs whole.
		fmt.Println("[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetTool(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return standalone(rest)
}

// standalone loads the patterns from source and prints every finding.
func standalone(patterns []string) int {
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elasticvet:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.Suite()) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "elasticvet: %d finding(s)\n", found)
		return 1
	}
	return 0
}
