package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"elastichpc/internal/lint"
)

// The go vet driver protocol, reimplemented on the standard library (the
// x/tools unitchecker is not vendored here). For each package the go command
// writes a JSON config naming the source files, the import map, and the
// export-data file of every dependency, then invokes the tool with that one
// path. The tool type-checks the package against the export data, runs the
// analyzers, prints findings to stderr, and must (a) answer -V=full with a
// stable fingerprint for the build cache and (b) write the facts file named
// by VetxOutput — the go command stores it as the action's output even
// though elasticvet's analyzers exchange no facts.

// vetConfig mirrors the fields of the go command's vet.cfg that elasticvet
// consumes; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// vetTool runs one vet.cfg unit of work and returns the process exit code
// (0 clean, 2 findings — any nonzero status makes go vet report the unit).
func vetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elasticvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintln(os.Stderr, "elasticvet:", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "elasticvet:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect all; first error returned by Check
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "elasticvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := lint.Run(&lint.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, lint.Suite())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts file the go command expects as the vet
// action's output.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("elasticvet: no facts\n"), 0o666)
}

// printVersion answers -V=full: the go command hashes this line into the
// build cache key, so it must change when the tool's behavior does —
// fingerprinting the executable itself guarantees that.
func printVersion() int {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err := os.Open(exe)
		if err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("elasticvet version devel buildID=%x\n", h.Sum(nil)[:16])
	return 0
}
