package main

import (
	"reflect"
	"testing"

	"elastichpc/internal/metrics"
)

// TestCustomUnitsSorted pins the listing order of ungated custom metrics:
// the keys come out of a map, so the sort is what keeps report output
// diffable run to run (the shape elasticvet's nomapiter enforces).
func TestCustomUnitsSorted(t *testing.T) {
	b := metrics.Benchmark{Custom: map[string]float64{
		"jobs/s": 1, "allocs/job": 2, "migrations": 3, "c1_util": 4,
	}}
	got := customUnits(b, "jobs/s")
	want := []string{"allocs/job", "c1_util", "migrations"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("customUnits = %v, want sorted %v", got, want)
	}
}

// TestBestRunsCustomMergeOrderInsensitive pins that the per-unit best-of-N
// merge over the Custom map is commutative — max for higher-is-better "/s"
// units, min otherwise — so the annotated map range in bestRuns cannot leak
// iteration order into the report no matter which order the keys arrive in.
func TestBestRunsCustomMergeOrderInsensitive(t *testing.T) {
	runs := []metrics.Benchmark{
		{Name: "BenchmarkX", Iterations: 1, NsPerOp: 100,
			Custom: map[string]float64{"jobs/s": 10, "allocs/job": 5, "waves": 2}},
		{Name: "BenchmarkX", Iterations: 1, NsPerOp: 90,
			Custom: map[string]float64{"jobs/s": 12, "allocs/job": 7, "waves": 1}},
	}
	for trial := 0; trial < 16; trial++ {
		out := bestRuns(runs)
		if len(out) != 1 {
			t.Fatalf("bestRuns collapsed to %d entries, want 1", len(out))
		}
		want := map[string]float64{"jobs/s": 12, "allocs/job": 5, "waves": 1}
		if !reflect.DeepEqual(out[0].Custom, want) {
			t.Fatalf("trial %d: merged Custom = %v, want %v", trial, out[0].Custom, want)
		}
		if out[0].NsPerOp != 90 {
			t.Fatalf("trial %d: NsPerOp = %v, want best 90", trial, out[0].NsPerOp)
		}
	}
}
