// Command benchreport turns `go test -bench` output into the machine-readable
// metrics.Report JSON and diffs two such reports against regression
// thresholds — the tool behind CI's benchmark gate.
//
// Emit a report from benchmark output (stdin or -in):
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/sim/ | benchreport -emit -out BENCH_PR.json
//
// Compare a candidate against the committed baseline (exit 1 on regression):
//
//	benchreport -baseline BENCH_BASELINE.json -candidate BENCH_PR.json -threshold 0.20
//
// The default comparison metric is ns/op (lower is better). With -metric,
// any recorded metric can gate instead; metrics whose unit ends in "/s"
// (e.g. the simulator's jobs/s) are treated as higher-is-better. Gated
// benchmarks that record allocs/op on both sides are additionally held to
// the same threshold on allocations (disable with -gate-allocs=false), and
// a geomean summary row aggregates each gated metric across benchmarks.
// -match-mem names benchmarks gated on B/op and allocs/op only: their time
// metric is reported informationally — the gate for benchmarks whose
// wall-clock tracks the runner (the sharded scaling family scales with core
// count) but whose allocation footprint must not regress.
// With `go test -count=N` output, `-emit -best` collapses the repeated runs
// to their per-metric best, filtering one-sided scheduler noise before the
// gate sees the numbers. Custom metrics beyond the gated one — e.g. the
// federation benchmark's per-cluster job counts and utilizations — are
// listed as informational rows and never gate.
//
// Benchmarks recording jobs/s on both sides additionally get a speedup row:
// the candidate/baseline throughput ratio. With -min-speedup, gated
// benchmarks whose ratio falls below the floor fail the comparison —
// e.g. -min-speedup 1.0 demands the candidate at least match the baseline's
// throughput regardless of the ±threshold ns/op gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"elastichpc/internal/metrics"
)

func main() {
	var (
		emit         = flag.Bool("emit", false, "parse `go test -bench` output into a report")
		in           = flag.String("in", "-", "benchmark output to parse (- = stdin)")
		out          = flag.String("out", "", "report path to write with -emit")
		tool         = flag.String("tool", "benchreport", "tool name recorded in emitted reports")
		best         = flag.Bool("best", false, "with -emit, collapse repeated benchmarks (-count=N) to their best run per metric")
		baseline     = flag.String("baseline", "", "baseline report for comparison")
		candidate    = flag.String("candidate", "", "candidate report for comparison")
		threshold    = flag.Float64("threshold", 0.20, "allowed relative regression (0.20 = 20%)")
		metric       = flag.String("metric", "ns/op", "metric to gate on")
		gateAllocs   = flag.Bool("gate-allocs", true, "also gate allocs/op on the gated benchmarks (allocation regressions fail like time regressions)")
		match        = flag.String("match", "", "regexp of benchmark names to gate on (others shown informationally); empty = all")
		matchMem     = flag.String("match-mem", "", "regexp of benchmark names to gate on B/op and allocs/op only (time reported informationally)")
		minSpeedup   = flag.Float64("min-speedup", 0, "minimum candidate/baseline jobs/s ratio for gated benchmarks (0 = no floor)")
		allowMissing = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the candidate")
	)
	flag.Parse()

	switch {
	case *emit:
		if *out == "" {
			log.Fatal("-emit needs -out")
		}
		src := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			src = f
		}
		report, err := parse(src, *tool)
		if err != nil {
			log.Fatal(err)
		}
		if *best {
			report.Benchmarks = bestRuns(report.Benchmarks)
		}
		if err := metrics.Write(*out, report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	case *baseline != "" && *candidate != "":
		base, err := metrics.Read(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := metrics.Read(*candidate)
		if err != nil {
			log.Fatal(err)
		}
		var gate, gateMem *regexp.Regexp
		if *match != "" {
			gate, err = regexp.Compile(*match)
			if err != nil {
				log.Fatalf("-match: %v", err)
			}
		}
		if *matchMem != "" {
			gateMem, err = regexp.Compile(*matchMem)
			if err != nil {
				log.Fatalf("-match-mem: %v", err)
			}
		}
		regressions := compare(base, cand, *metric, *threshold, *allowMissing, gate, gateMem, *gateAllocs, *minSpeedup)
		// The summary names the primary metric, but a REGRESSION row can
		// also come from allocs/op, a -match-mem B/op gate, or a
		// -min-speedup floor — the rows above say which.
		if regressions > 0 {
			fmt.Printf("\n%d regression(s) beyond ±%.0f%% on gated metrics (see REGRESSION rows)\n", regressions, 100**threshold)
			os.Exit(1)
		}
		fmt.Printf("\nno regressions beyond ±%.0f%% on gated metrics\n", 100**threshold)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parse(src io.Reader, tool string) (metrics.Report, error) {
	return metrics.ParseGoBench(src, tool)
}

// bestRuns collapses repeated benchmark entries — `go test -count=N` emits
// one line per run — into a single entry per name carrying the best value of
// each metric independently: the minimum for ns/op, B/op, and allocs/op, the
// maximum for higher-is-better custom metrics (units ending in "/s"), the
// minimum otherwise. Taking the per-metric best filters one-sided scheduler
// noise on shared CI runners, which only ever makes a run slower, so the
// ±threshold gate trips on real regressions instead of noisy runs.
// First-seen order is preserved.
func bestRuns(benchmarks []metrics.Benchmark) []metrics.Benchmark {
	merged := make(map[string]int, len(benchmarks))
	out := make([]metrics.Benchmark, 0, len(benchmarks))
	for _, b := range benchmarks {
		i, seen := merged[b.Name]
		if !seen {
			merged[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		m := &out[i]
		m.Iterations = max(m.Iterations, b.Iterations)
		// Plain minimum, zeros included: runs of the same compiled
		// benchmark either all report a metric or none do, so a zero is a
		// genuine best (0 allocs), not an unset sentinel.
		m.NsPerOp = math.Min(m.NsPerOp, b.NsPerOp)
		m.BytesPerOp = math.Min(m.BytesPerOp, b.BytesPerOp)
		m.AllocsPerOp = math.Min(m.AllocsPerOp, b.AllocsPerOp)
		if m.Custom == nil && b.Custom != nil {
			m.Custom = make(map[string]float64, len(b.Custom))
		}
		//lint:deterministic per-unit max/min merge is commutative; listing order is sorted later by customUnits
		for unit, v := range b.Custom {
			have, ok := m.Custom[unit]
			switch {
			case !ok:
				m.Custom[unit] = v
			case strings.HasSuffix(unit, "/s"):
				m.Custom[unit] = math.Max(have, v)
			default:
				m.Custom[unit] = math.Min(have, v)
			}
		}
	}
	return out
}

// customUnits returns a benchmark's custom metric units other than the
// gated one, sorted so the listing order is stable.
func customUnits(b metrics.Benchmark, gatedMetric string) []string {
	units := make([]string, 0, len(b.Custom))
	for unit := range b.Custom {
		if unit != gatedMetric {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

// value extracts the gating metric from a benchmark result.
func value(b metrics.Benchmark, metric string) (float64, bool) {
	switch metric {
	case "ns/op":
		return b.NsPerOp, b.NsPerOp > 0
	case "B/op":
		return b.BytesPerOp, b.BytesPerOp > 0
	case "allocs/op":
		return b.AllocsPerOp, b.AllocsPerOp > 0
	default:
		// A zero baseline makes the ratio meaningless (Inf/NaN), so such
		// rows are skipped like the built-in metrics' zero values.
		v, ok := b.Custom[metric]
		return v, ok && v > 0
	}
}

// compare prints a per-benchmark table and returns the regression count.
// Benchmarks not matching the gate regexp are reported but never fail the
// comparison — sub-millisecond micro-benchmarks are too noisy at
// -benchtime=1x for a hard threshold. Benchmarks present only in the
// candidate (a PR adding a new benchmark before the baseline is refreshed)
// are listed as informational "new" rows and never gate.
//
// With gateAllocs, gated benchmarks that record allocs/op on both sides are
// additionally held to the same ±threshold on allocations, and a geomean
// summary row aggregates the gated ratios on each gated metric.
//
// Benchmarks matching gateMem are memory-gated: held to ±threshold on B/op
// and allocs/op, with their time metric (and speedup) reported
// informationally. gateMem wins over gate when both match, since its whole
// point is exempting runner-dependent wall-clock from the time gate.
//
// Benchmarks recording jobs/s on both sides get a speedup row with the
// candidate/baseline throughput ratio; with minSpeedup > 0, gated benchmarks
// whose ratio falls below the floor count as regressions.
func compare(base, cand metrics.Report, metric string, threshold float64, allowMissing bool, gate, gateMem *regexp.Regexp, gateAllocs bool, minSpeedup float64) int {
	higherBetter := strings.HasSuffix(metric, "/s")
	candidates := make(map[string]metrics.Benchmark, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		candidates[b.Name] = b
	}
	inBaseline := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		inBaseline[b.Name] = true
	}
	fmt.Printf("%-46s %10s %14s %14s %8s  %s\n", "benchmark", "metric", "baseline", "candidate", "Δ", "verdict")
	regressions := 0
	// Geomean accumulators over the gated, comparable rows: Σ ln(ratio).
	var geo, geoAllocs geomean
	for _, c := range cand.Benchmarks {
		if inBaseline[c.Name] {
			continue
		}
		if cv, ok := value(c, metric); ok {
			fmt.Printf("%-46s %10s %14s %14.4g %8s  new (no baseline)\n", c.Name, metric, "-", cv, "-")
		} else {
			fmt.Printf("%-46s %10s %14s %14s %8s  new (no baseline)\n", c.Name, metric, "-", "-", "-")
		}
	}
	for _, b := range base.Benchmarks {
		memGated := gateMem != nil && gateMem.MatchString(b.Name)
		gated := !memGated && (gate == nil || gate.MatchString(b.Name))
		c, ok := candidates[b.Name]
		if !ok {
			if (!gated && !memGated) || allowMissing {
				fmt.Printf("%-46s %10s %14s %14s %8s  skipped (missing)\n", b.Name, metric, "-", "-", "-")
				continue
			}
			fmt.Printf("%-46s %10s %14s %14s %8s  MISSING\n", b.Name, metric, "-", "-", "-")
			regressions++
			continue
		}
		bv, bok := value(b, metric)
		cv, cok := value(c, metric)
		if !bok || !cok {
			fmt.Printf("%-46s %10s %14s %14s %8s  skipped (no %s)\n", b.Name, metric, "-", "-", "-", metric)
		} else {
			if gated {
				geo.add(cv / bv)
			}
			regressions += row(b.Name, metric, bv, cv, threshold, higherBetter, gated)
		}
		if memGated && metric != "B/op" {
			bb, bbok := value(b, "B/op")
			cb, cbok := value(c, "B/op")
			switch {
			case bbok && cbok:
				regressions += row(b.Name, "B/op", bb, cb, threshold, false, true)
			case bbok != cbok:
				fmt.Printf("%-46s %10s %14s %14s %8s  skipped (B/op on one side only)\n",
					b.Name, "B/op", "-", "-", "-")
			}
		}
		if (gateAllocs || memGated) && metric != "allocs/op" {
			ba, baok := value(b, "allocs/op")
			ca, caok := value(c, "allocs/op")
			switch {
			case baok && caok:
				if gated || memGated {
					geoAllocs.add(ca / ba)
				}
				regressions += row(b.Name, "allocs/op", ba, ca, threshold, false, gated || memGated)
			case baok != caok && (gated || memGated):
				// One side stopped (or started) recording allocations —
				// a 0-alloc result serializes the same as a missing
				// b.ReportAllocs(), so the ratio gate cannot run. Say so
				// rather than silently dropping the gate.
				fmt.Printf("%-46s %10s %14s %14s %8s  skipped (allocs on one side only)\n",
					b.Name, "allocs/op", "-", "-", "-")
			}
		}
		// The throughput speedup row: candidate/baseline jobs/s as an
		// explicit ratio. It gates only under -min-speedup; the generic
		// info row below is skipped for jobs/s since the speedup row
		// already shows both values.
		if bj, cj := b.Custom["jobs/s"], c.Custom["jobs/s"]; bj > 0 && cj > 0 {
			regressions += speedupRow(b.Name, bj, cj, minSpeedup, gated)
		}
		// Custom sub-metrics beyond the gated one — the federation
		// benchmark's per-cluster job counts and utilizations — are listed
		// informationally and never fail the comparison. Units the
		// candidate stopped reporting (a benchmark changed what it
		// measures) are called out rather than silently vanishing.
		for _, unit := range customUnits(c, metric) {
			cv := c.Custom[unit]
			bv, ok := b.Custom[unit]
			if unit == "jobs/s" && bv > 0 && cv > 0 {
				continue // shown as the speedup row above
			}
			if ok && bv > 0 && cv > 0 {
				fmt.Printf("%-46s %10s %14.4g %14.4g %+7.1f%%  info (ungated)\n",
					b.Name, unit, bv, cv, 100*(cv/bv-1))
			} else {
				fmt.Printf("%-46s %10s %14s %14.4g %8s  info (ungated)\n",
					b.Name, unit, "-", cv, "-")
			}
		}
		for _, unit := range customUnits(b, metric) {
			if _, ok := c.Custom[unit]; !ok {
				fmt.Printf("%-46s %10s %14.4g %14s %8s  info (gone from candidate)\n",
					b.Name, unit, b.Custom[unit], "-", "-")
			}
		}
	}
	if n := geo.n; n > 0 {
		fmt.Printf("%-46s %10s %14s %14s %+7.1f%%  over %d gated\n", "geomean", metric, "-", "-", 100*(geo.mean()-1), n)
	}
	if n := geoAllocs.n; n > 0 {
		fmt.Printf("%-46s %10s %14s %14s %+7.1f%%  over %d gated\n", "geomean", "allocs/op", "-", "-", 100*(geoAllocs.mean()-1), n)
	}
	return regressions
}

// row prints one comparison line and returns 1 if it is a gated regression.
func row(name, metric string, bv, cv, threshold float64, higherBetter, gated bool) int {
	delta := cv/bv - 1
	worse := delta > threshold
	if higherBetter {
		worse = delta < -threshold
	}
	verdict := "ok"
	regression := 0
	switch {
	case worse && gated:
		verdict = "REGRESSION"
		regression = 1
	case worse:
		verdict = "slower (ungated)"
	case (higherBetter && delta > threshold) || (!higherBetter && delta < -threshold):
		verdict = "improved"
	}
	fmt.Printf("%-46s %10s %14.4g %14.4g %+7.1f%%  %s\n", name, metric, bv, cv, 100*delta, verdict)
	return regression
}

// speedupRow prints the candidate/baseline throughput ratio for a benchmark
// recording jobs/s on both sides. Without a -min-speedup floor the row is
// informational; with one, a gated benchmark below the floor counts as a
// regression even if the ±threshold gate on the primary metric passed.
func speedupRow(name string, bv, cv, minSpeedup float64, gated bool) int {
	ratio := cv / bv
	verdict := "info (ungated)"
	regression := 0
	if minSpeedup > 0 && gated {
		verdict = "ok"
		if ratio < minSpeedup {
			verdict = fmt.Sprintf("BELOW %.2fx FLOOR", minSpeedup)
			regression = 1
		}
	}
	fmt.Printf("%-46s %10s %14.4g %14.4g %7.2fx  %s\n", name, "speedup", bv, cv, ratio, verdict)
	return regression
}

// geomean accumulates ln-ratios for a geometric-mean summary.
type geomean struct {
	logSum float64
	n      int
}

func (g *geomean) add(ratio float64) {
	if ratio > 0 {
		g.logSum += math.Log(ratio)
		g.n++
	}
}

func (g *geomean) mean() float64 { return math.Exp(g.logSum / float64(g.n)) }
