// Command benchreport turns `go test -bench` output into the machine-readable
// metrics.Report JSON and diffs two such reports against regression
// thresholds — the tool behind CI's benchmark gate.
//
// Emit a report from benchmark output (stdin or -in):
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/sim/ | benchreport -emit -out BENCH_PR.json
//
// Compare a candidate against the committed baseline (exit 1 on regression):
//
//	benchreport -baseline BENCH_BASELINE.json -candidate BENCH_PR.json -threshold 0.20
//
// The default comparison metric is ns/op (lower is better). With -metric,
// any recorded metric can gate instead; metrics whose unit ends in "/s"
// (e.g. the simulator's jobs/s) are treated as higher-is-better.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strings"

	"elastichpc/internal/metrics"
)

func main() {
	var (
		emit         = flag.Bool("emit", false, "parse `go test -bench` output into a report")
		in           = flag.String("in", "-", "benchmark output to parse (- = stdin)")
		out          = flag.String("out", "", "report path to write with -emit")
		tool         = flag.String("tool", "benchreport", "tool name recorded in emitted reports")
		baseline     = flag.String("baseline", "", "baseline report for comparison")
		candidate    = flag.String("candidate", "", "candidate report for comparison")
		threshold    = flag.Float64("threshold", 0.20, "allowed relative regression (0.20 = 20%)")
		metric       = flag.String("metric", "ns/op", "metric to gate on")
		match        = flag.String("match", "", "regexp of benchmark names to gate on (others shown informationally); empty = all")
		allowMissing = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the candidate")
	)
	flag.Parse()

	switch {
	case *emit:
		if *out == "" {
			log.Fatal("-emit needs -out")
		}
		src := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			src = f
		}
		report, err := parse(src, *tool)
		if err != nil {
			log.Fatal(err)
		}
		if err := metrics.Write(*out, report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	case *baseline != "" && *candidate != "":
		base, err := metrics.Read(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := metrics.Read(*candidate)
		if err != nil {
			log.Fatal(err)
		}
		var gate *regexp.Regexp
		if *match != "" {
			gate, err = regexp.Compile(*match)
			if err != nil {
				log.Fatalf("-match: %v", err)
			}
		}
		regressions := compare(base, cand, *metric, *threshold, *allowMissing, gate)
		if regressions > 0 {
			fmt.Printf("\n%d regression(s) beyond ±%.0f%% on %s\n", regressions, 100**threshold, *metric)
			os.Exit(1)
		}
		fmt.Printf("\nno regressions beyond ±%.0f%% on %s\n", 100**threshold, *metric)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parse(src io.Reader, tool string) (metrics.Report, error) {
	return metrics.ParseGoBench(src, tool)
}

// value extracts the gating metric from a benchmark result.
func value(b metrics.Benchmark, metric string) (float64, bool) {
	switch metric {
	case "ns/op":
		return b.NsPerOp, b.NsPerOp > 0
	case "B/op":
		return b.BytesPerOp, b.BytesPerOp > 0
	case "allocs/op":
		return b.AllocsPerOp, b.AllocsPerOp > 0
	default:
		// A zero baseline makes the ratio meaningless (Inf/NaN), so such
		// rows are skipped like the built-in metrics' zero values.
		v, ok := b.Custom[metric]
		return v, ok && v > 0
	}
}

// compare prints a per-benchmark table and returns the regression count.
// Benchmarks not matching the gate regexp are reported but never fail the
// comparison — sub-millisecond micro-benchmarks are too noisy at
// -benchtime=1x for a hard threshold. Benchmarks present only in the
// candidate (a PR adding a new benchmark before the baseline is refreshed)
// are listed as informational "new" rows and never gate.
func compare(base, cand metrics.Report, metric string, threshold float64, allowMissing bool, gate *regexp.Regexp) int {
	higherBetter := strings.HasSuffix(metric, "/s")
	candidates := make(map[string]metrics.Benchmark, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		candidates[b.Name] = b
	}
	inBaseline := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		inBaseline[b.Name] = true
	}
	fmt.Printf("%-40s %14s %14s %8s  %s\n", "benchmark", "baseline", "candidate", "Δ", "verdict")
	regressions := 0
	for _, c := range cand.Benchmarks {
		if inBaseline[c.Name] {
			continue
		}
		if cv, ok := value(c, metric); ok {
			fmt.Printf("%-40s %14s %14.4g %8s  new (no baseline)\n", c.Name, "-", cv, "-")
		} else {
			fmt.Printf("%-40s %14s %14s %8s  new (no baseline)\n", c.Name, "-", "-", "-")
		}
	}
	for _, b := range base.Benchmarks {
		gated := gate == nil || gate.MatchString(b.Name)
		c, ok := candidates[b.Name]
		if !ok {
			if !gated || allowMissing {
				fmt.Printf("%-40s %14s %14s %8s  skipped (missing)\n", b.Name, "-", "-", "-")
				continue
			}
			fmt.Printf("%-40s %14s %14s %8s  MISSING\n", b.Name, "-", "-", "-")
			regressions++
			continue
		}
		bv, bok := value(b, metric)
		cv, cok := value(c, metric)
		if !bok || !cok {
			fmt.Printf("%-40s %14s %14s %8s  skipped (no %s)\n", b.Name, "-", "-", "-", metric)
			continue
		}
		delta := cv/bv - 1
		worse := delta > threshold
		if higherBetter {
			worse = delta < -threshold
		}
		verdict := "ok"
		switch {
		case worse && gated:
			verdict = "REGRESSION"
			regressions++
		case worse:
			verdict = "slower (ungated)"
		case (higherBetter && delta > threshold) || (!higherBetter && delta < -threshold):
			verdict = "improved"
		}
		fmt.Printf("%-40s %14.4g %14.4g %+7.1f%%  %s\n", b.Name, bv, cv, 100*delta, verdict)
	}
	return regressions
}
