// Command elasticsim runs the discrete-event scheduling simulator of paper
// §4.3.1 and prints the series behind Figures 7 and 8 and the Simulation
// columns of Table 1, plus the scenario sweeps of the workload engine.
// Sweeps fan out over a bounded worker pool (-parallel).
//
// Usage:
//
//	elasticsim -sweep gap                  # Figure 7: submission-gap sweep
//	elasticsim -sweep rescale              # Figure 8: rescale-gap sweep
//	elasticsim -sweep scenario             # all scenarios × policies × seeds
//	elasticsim -sweep availability         # all capacity profiles × policies × seeds
//	elasticsim -sweep federation           # all routing policies × policies × seeds
//	elasticsim -clusters 4 -route least_loaded -scenario burst   # one federated run
//	elasticsim -clusters 4 -skew 0.5       # heterogeneous fleet (capacity ramp)
//	elasticsim -clusters 4 -rebalance 300 -migrate-running -scenario burst
//	                                       # co-simulated fleet with the
//	                                       # checkpoint-migrating rebalancer
//	elasticsim -table1                     # Table 1, Simulation columns
//	elasticsim -scenario diurnal           # one scenario under all policies
//	elasticsim -trace wl.csv               # replay a saved trace (JSON or CSV)
//	elasticsim -availability spot          # spot preemptions over the scenario run
//	elasticsim -availability failures -mttf 900          # tune the failure rate
//	elasticsim -seeds 100 -jobs 16         # paper-scale averaging
//	elasticsim -parallel 1 -sweep gap      # sequential reference run
//	elasticsim -scenario burst -shards 8   # shard the event loop by time epoch
//	elasticsim -scenario burst -save-workload wl.json   # export a workload
//	elasticsim -availability spot -save-availability cap.json   # export a capacity trace
//	elasticsim -table1 -json table1.json   # also write a metrics.Report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/metrics"
	"elastichpc/internal/profiling"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

func main() {
	var (
		sweep    = flag.String("sweep", "", `sweep to run: "gap" (Fig. 7), "rescale" (Fig. 8), "scenario", "availability", or "federation"`)
		table1   = flag.Bool("table1", false, "run the Table 1 simulation")
		jobs     = flag.Int("jobs", 16, "jobs per workload")
		seeds    = flag.Int("seeds", 100, "random workloads to average over")
		scenario = flag.String("scenario", "", "workload scenario: uniform | poisson | burst | diurnal | trace")
		tracePth = flag.String("trace", "", "workload trace file to replay (JSON or CSV; implies -scenario trace)")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = all CPUs, 1 = sequential)")
		shards   = flag.Int("shards", 0, "shard a single run's event loop across N time epochs (0/1 = sequential; results are bit-identical)")
		seed     = flag.Int64("seed", 7, "seed for -scenario / -save-workload runs")
		saveWL   = flag.String("save-workload", "", "write the selected scenario's workload to this path and exit")
		jsonPath = flag.String("json", "", "also write the results as a metrics.Report to this path")
		workldFl = flag.String("workload", "", "deprecated alias of -trace")

		clusters  = flag.Int("clusters", 1, "member clusters in a federated run (1 = single cluster)")
		routeFl   = flag.String("route", "round_robin", "federation routing policy: round_robin | least_loaded | priority | random")
		skew      = flag.Float64("skew", 0, "federation capacity skew: member i gets base×(1+skew·i) slots")
		rebalance = flag.Float64("rebalance", 0, "federation rebalance round period, seconds (0 = off): checkpoint-migrate jobs off backlogged/draining members")
		migRun    = flag.Bool("migrate-running", false, "let the rebalancer checkpoint-preempt and migrate running jobs off draining members (needs -rebalance)")

		availFl   = flag.String("availability", "", "capacity profile: failures | spot | drain | tides | trace")
		availTr   = flag.String("availability-trace", "", "capacity trace file for -availability trace (implies it)")
		mttf      = flag.Float64("mttf", 0, "failures profile: mean time to failure, seconds (0 = default)")
		mttr      = flag.Float64("mttr", 0, "failures profile: mean time to repair, seconds (0 = default)")
		preempt   = flag.Int("preempt", 0, "spot profile: slots reclaimed per preemption event (0 = default)")
		saveAvail = flag.String("save-availability", "", "write the selected availability profile's capacity trace to this path and exit")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this path on exit")
	)
	flag.Parse()
	defer profiling.Start(*cpuprofile, *memprofile)()
	if *tracePth == "" {
		*tracePth = *workldFl
	}
	// explicitScenario distinguishes a user-chosen -scenario from the
	// "-trace implies -scenario trace" normalization below; -sweep
	// scenario keeps its historical default (all scenarios plus the
	// trace) only in the implied case.
	explicitScenario := *scenario != ""
	if *tracePth != "" && *scenario == "" {
		*scenario = "trace"
	}
	if *availTr != "" && *availFl == "" {
		*availFl = "trace"
	}
	// base is the cluster capacity the simulator runs with; availability
	// traces are generated and restored against the same value so outage
	// depths always line up with the simulated cluster.
	base := sim.DefaultConfig(core.Elastic).Capacity
	var profile workload.AvailabilityProfile
	if *availFl != "" {
		var err error
		profile, err = workload.AvailabilityScenario(*availFl, workload.AvailabilityOptions{
			MTTF: *mttf, MTTR: *mttr, PreemptSlots: *preempt, TracePath: *availTr,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	var report *metrics.Report
	params := map[string]string{
		"jobs": strconv.Itoa(*jobs), "seeds": strconv.Itoa(*seeds), "seed": strconv.FormatInt(*seed, 10),
	}
	if profile != nil {
		params["availability"] = profile.Name()
	}
	route, err := federation.RouteByName(*routeFl)
	if err != nil {
		log.Fatal(err)
	}
	// routeSet/clustersSet distinguish explicit flags from their defaults:
	// the federation sweep covers all routes unless one was asked for, and
	// defaults to a 4-member fleet only when -clusters was not given.
	routeSet, clustersSet := false, false
	flag.Visit(func(f *flag.Flag) {
		routeSet = routeSet || f.Name == "route"
		clustersSet = clustersSet || f.Name == "clusters"
	})
	// Reject -clusters where it would be silently ignored, mirroring the
	// -availability incompatibility errors; the federated branches stamp
	// their clusters/route/skew params themselves, so no report can claim
	// a federation that never ran.
	if *clusters < 1 {
		log.Fatalf("-clusters %d: a federation needs at least 1 member", *clusters)
	}
	if *clusters > 1 {
		if *sweep != "" && *sweep != "federation" {
			log.Fatalf("-clusters does not apply to -sweep %s (use -sweep federation)", *sweep)
		}
		if *table1 {
			log.Fatal("-clusters does not apply to -table1 (the Table 1 reproduction is single-cluster)")
		}
		if *saveWL != "" || *saveAvail != "" {
			log.Fatal("-clusters does not apply to the -save-* export modes")
		}
	} else if (routeSet || *skew != 0 || *rebalance != 0 || *migRun) && *sweep != "federation" {
		// The converse mistake: federation flags on a single-cluster run
		// would be silently dropped.
		log.Fatal("-route/-skew/-rebalance need a federation: pass -clusters N or -sweep federation")
	}
	if *migRun && *rebalance == 0 {
		log.Fatal("-migrate-running needs -rebalance")
	}
	if *rebalance != 0 && *sweep == "federation" {
		log.Fatal("-rebalance does not apply to -sweep federation (it compares routing policies on the batch path)")
	}
	// -shards drives the sharded event loop of a single simulation; sweeps
	// and federations parallelize across runs instead (-parallel), so reject
	// the flag where it would be silently ignored.
	if *shards > 1 && (*sweep != "" || *table1 || *clusters > 1 || *saveWL != "" || *saveAvail != "") {
		log.Fatal("-shards applies to single-cluster single-workload runs (sweeps and federations parallelize with -parallel)")
	}

	switch {
	case *saveAvail != "":
		if profile == nil {
			log.Fatal("-save-availability needs -availability")
		}
		w, _ := pickWorkload(*scenario, *tracePth, *seed)
		tr, err := profile.Events(*seed, base, sim.AvailabilityHorizon(w))
		if err != nil {
			log.Fatal(err)
		}
		comment := fmt.Sprintf("%s profile, seed %d, base %d", profile.Name(), *seed, base)
		if err := workload.SaveAvailabilityFile(*saveAvail, tr, comment); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d capacity events)\n", *saveAvail, len(tr.Events))
	case *sweep == "availability":
		gen := pickGenerator(*scenario, *tracePth)
		profiles := workload.DefaultAvailabilityProfiles()
		if profile != nil {
			profiles = []workload.AvailabilityProfile{profile}
		}
		results, err := sim.AvailabilitySweep(profiles, gen, *seeds, 180, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		printAvailability(results)
		r := metrics.New("elasticsim", metrics.KindSweep)
		r.Params = params
		sw := metrics.FromScenarios(results)
		sw.Name = "availability"
		r.Sweeps = []metrics.Sweep{sw}
		report = &r
	case *saveWL != "":
		w, comment := pickWorkload(*scenario, *tracePth, *seed)
		if err := workload.SaveFile(*saveWL, w, comment); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveWL)
	case *sweep == "gap" || *sweep == "rescale":
		// These sweeps are defined over the uniform workload family; a
		// scenario selection would be silently ignored, so reject it.
		if *scenario != "" || *tracePth != "" {
			log.Fatalf("-scenario/-trace do not apply to -sweep %s (use -sweep scenario)", *sweep)
		}
		if profile != nil {
			log.Fatalf("-availability does not apply to -sweep %s (use -sweep availability)", *sweep)
		}
		var points []sim.SweepPoint
		var err error
		xName := "submission_gap"
		if *sweep == "gap" {
			points, err = sim.SubmissionGapSweepWorkers([]float64{0, 30, 60, 90, 120, 150, 180, 210, 240, 270, 300}, *jobs, *seeds, 180, *parallel)
		} else {
			xName = "rescale_gap"
			points, err = sim.RescaleGapSweepWorkers([]float64{0, 60, 120, 180, 300, 450, 600, 900, 1200}, *jobs, *seeds, 180, *parallel)
		}
		if err != nil {
			log.Fatal(err)
		}
		printSweep(xName, points)
		r := metrics.New("elasticsim", metrics.KindSweep)
		r.Params = params
		r.Sweeps = []metrics.Sweep{metrics.FromSweep(xName, xName+" (s)", points)}
		report = &r
	case *sweep == "federation":
		if profile != nil {
			log.Fatal("-availability does not apply to -sweep federation (set per-member traces through the library)")
		}
		gen := pickGenerator(*scenario, *tracePth)
		n := *clusters
		if !clustersSet {
			n = 4 // default fleet; an explicit -clusters (even 1) is honored
		}
		// Default: every routing policy; with an explicit -route, just that
		// one. -skew applies to the swept fleet either way.
		routes := federation.AllRoutes()
		if routeSet {
			routes = []federation.Route{route}
			params["route"] = route.String()
		}
		params["clusters"] = strconv.Itoa(n)
		params["skew"] = strconv.FormatFloat(*skew, 'g', -1, 64)
		results, err := federation.Sweep(routes, gen, n, *seeds, 180, *skew, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		printRoutes(results)
		r := metrics.New("elasticsim", metrics.KindSweep)
		r.Params = params
		sw := metrics.FromScenarios(results)
		sw.Name = "federation"
		sw.X = "route index"
		r.Sweeps = []metrics.Sweep{sw}
		report = &r
	case *sweep == "scenario":
		if profile != nil {
			log.Fatal("-availability does not apply to -sweep scenario (use -sweep availability)")
		}
		// Default: every built-in scenario, plus the trace if one is given.
		// With -scenario, sweep just that one.
		var gens []workload.Generator
		switch {
		case explicitScenario:
			g, err := workload.Scenario(*scenario, *tracePth)
			if err != nil {
				log.Fatal(err)
			}
			gens = []workload.Generator{g}
		default:
			gens = workload.DefaultScenarios()
			if *tracePth != "" {
				gens = append(gens, workload.Trace{Path: *tracePth})
			}
		}
		results, err := sim.ScenarioSweep(gens, *seeds, 180, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		printScenarios(results)
		r := metrics.New("elasticsim", metrics.KindSweep)
		r.Params = params
		r.Sweeps = []metrics.Sweep{metrics.FromScenarios(results)}
		report = &r
	case *sweep != "":
		log.Fatalf(`unknown sweep %q (have "gap", "rescale", "scenario", "availability", "federation")`, *sweep)
	case *table1:
		if profile != nil {
			log.Fatal("-availability does not apply to -table1 (the Table 1 reproduction is fixed-capacity)")
		}
		report = runTable1(params)
	case *clusters > 1:
		if profile != nil {
			log.Fatal("-availability does not apply to -clusters (set per-member traces through the library)")
		}
		g := pickGenerator(*scenario, *tracePth)
		w, err := g.Generate(*seed)
		if err != nil {
			log.Fatal(err)
		}
		params["clusters"] = strconv.Itoa(*clusters)
		params["route"] = route.String()
		params["skew"] = strconv.FormatFloat(*skew, 'g', -1, 64)
		rb := federation.RebalanceConfig{Every: *rebalance, MigrateRunning: *migRun}
		if *rebalance != 0 {
			params["rebalance"] = strconv.FormatFloat(*rebalance, 'g', -1, 64)
			params["migrate_running"] = strconv.FormatBool(*migRun)
		}
		report = runFederation(g.Name(), w, *clusters, route, *skew, rb, *seed, *parallel, params)
	case *scenario != "" || *tracePth != "" || profile != nil:
		g := pickGenerator(*scenario, *tracePth)
		w, err := g.Generate(*seed)
		if err != nil {
			log.Fatal(err)
		}
		var avail workload.AvailabilityTrace
		if profile != nil {
			horizon := sim.AvailabilityHorizon(w)
			avail, err = profile.Events(*seed, base, horizon)
			if err != nil {
				log.Fatal(err)
			}
			avail = avail.WithRestore(base, horizon)
		}
		if *shards > 1 {
			params["shards"] = strconv.Itoa(*shards)
		}
		report = runWorkload(g.Name(), w, avail, *shards, params)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonPath != "" {
		if report == nil {
			log.Fatalf("-json: mode produces no metrics report")
		}
		if err := metrics.Write(*jsonPath, *report); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// pickGenerator resolves -scenario/-trace to a workload generator, falling
// back to the paper's uniform 16-job, 90 s-gap scenario when none is given.
func pickGenerator(scenario, tracePath string) workload.Generator {
	if scenario == "" {
		return workload.Uniform{Jobs: 16, Gap: 90}
	}
	g, err := workload.Scenario(scenario, tracePath)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// pickWorkload builds the workload selected by -scenario/-seed; with no
// scenario it falls back to the historical default, the Table 1 workload.
func pickWorkload(scenario, tracePath string, seed int64) (sim.Workload, string) {
	if scenario == "" && tracePath != "" {
		scenario = "trace"
	}
	if scenario == "" {
		return sim.Table1Workload(), "table 1 workload (seed 7, 90s gap)"
	}
	g, err := workload.Scenario(scenario, tracePath)
	if err != nil {
		log.Fatal(err)
	}
	w, err := g.Generate(seed)
	if err != nil {
		log.Fatal(err)
	}
	return w, fmt.Sprintf("%s scenario, seed %d", g.Name(), seed)
}

func printSweep(xName string, points []sim.SweepPoint) {
	fmt.Printf("%s,policy,utilization,total_time_s,weighted_response_s,weighted_completion_s\n", xName)
	for _, pt := range points {
		for _, p := range core.AllPolicies() {
			avg := pt.ByPolicy[p]
			fmt.Printf("%.0f,%s,%.4f,%.1f,%.2f,%.2f\n",
				pt.X, p, avg.Utilization, avg.TotalTime, avg.WeightedResponse, avg.WeightedCompletion)
		}
	}
}

func printScenarios(results []sim.ScenarioResult) {
	fmt.Println("scenario,policy,utilization,total_time_s,weighted_response_s,weighted_completion_s")
	for _, sr := range results {
		for _, p := range core.AllPolicies() {
			avg := sr.ByPolicy[p]
			fmt.Printf("%s,%s,%.4f,%.1f,%.2f,%.2f\n",
				sr.Name, p, avg.Utilization, avg.TotalTime, avg.WeightedResponse, avg.WeightedCompletion)
		}
	}
}

func printAvailability(results []sim.ScenarioResult) {
	fmt.Println("availability,policy,utilization,goodput,total_time_s,weighted_response_s,weighted_completion_s,shrinks,requeues,work_lost_s")
	for _, sr := range results {
		for _, p := range core.AllPolicies() {
			avg := sr.ByPolicy[p]
			fmt.Printf("%s,%s,%.4f,%.4f,%.1f,%.2f,%.2f,%.1f,%.1f,%.1f\n",
				sr.Name, p, avg.Utilization, avg.GoodputFrac, avg.TotalTime,
				avg.WeightedResponse, avg.WeightedCompletion,
				avg.ForcedShrinks, avg.Requeues, avg.WorkLostSec)
		}
	}
}

func printRoutes(results []sim.ScenarioResult) {
	fmt.Println("route,policy,utilization,imbalance,total_time_s,weighted_response_s,weighted_completion_s")
	for _, sr := range results {
		for _, p := range core.AllPolicies() {
			avg := sr.ByPolicy[p]
			fmt.Printf("%s,%s,%.4f,%.4f,%.1f,%.2f,%.2f\n",
				sr.Name, p, avg.Utilization, avg.Imbalance, avg.TotalTime, avg.WeightedResponse, avg.WeightedCompletion)
		}
	}
}

// runFederation routes one workload across a fleet of member clusters under
// every scheduling policy and prints the fleet metrics plus the per-cluster
// job split. workers bounds the member pool like -parallel bounds sweeps;
// a non-zero rb turns on the checkpoint-migrating rebalancer.
func runFederation(name string, w sim.Workload, clusters int, route federation.Route, skew float64, rb federation.RebalanceConfig, seed int64, workers int, params map[string]string) *metrics.Report {
	rebalancing := rb.Every > 0
	if rebalancing {
		fmt.Printf("Routing %d-job %s workload across %d clusters (%s route, skew %g, rebalance every %g s) under all policies\n",
			len(w.Jobs), name, clusters, route, skew, rb.Every)
		fmt.Printf("%-14s %12s %12s %16s %18s %10s %10s %s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)", "Imbalance", "Migrations", "Jobs/cluster")
	} else {
		fmt.Printf("Routing %d-job %s workload across %d clusters (%s route, skew %g) under all policies\n",
			len(w.Jobs), name, clusters, route, skew)
		fmt.Printf("%-14s %12s %12s %16s %18s %10s %s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)", "Imbalance", "Jobs/cluster")
	}
	rep := metrics.New("elasticsim", metrics.KindRun)
	rep.Params = params
	for _, p := range core.AllPolicies() {
		base := sim.DefaultConfig(p)
		base.RescaleGap = 180
		r, err := federation.Run(federation.Config{
			Members:   federation.Skewed(base, clusters, skew),
			Route:     route,
			RouteSeed: seed,
			Workers:   workers,
			Rebalance: rb,
		}, w)
		if err != nil {
			log.Fatal(err)
		}
		if rebalancing {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f %9.2f%% %10d %v\n",
				p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion,
				100*r.Imbalance, len(r.Migrations), r.JobsPerMember)
		} else {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f %9.2f%% %v\n",
				p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion,
				100*r.Imbalance, r.JobsPerMember)
		}
		rep.Runs = append(rep.Runs, metrics.FromFederation(name, r))
	}
	return &rep
}

func runWorkload(name string, w sim.Workload, avail workload.AvailabilityTrace, shards int, params map[string]string) *metrics.Report {
	withAvail := !avail.Empty()
	if withAvail {
		fmt.Printf("Replaying %d-job %s workload with %d capacity events under all policies (T_rescale_gap = 180 s)\n",
			len(w.Jobs), name, len(avail.Events))
		fmt.Printf("%-14s %12s %12s %16s %18s %9s %8s %8s %12s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)",
			"Goodput", "Shrinks", "Requeues", "Lost (r·s)")
	} else {
		fmt.Printf("Replaying %d-job %s workload under all policies (T_rescale_gap = 180 s)\n", len(w.Jobs), name)
		fmt.Printf("%-14s %12s %12s %16s %18s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)")
	}
	rep := metrics.New("elasticsim", metrics.KindRun)
	rep.Params = params
	for _, p := range core.AllPolicies() {
		cfg := sim.DefaultConfig(p)
		cfg.RescaleGap = 180
		cfg.Availability = avail
		cfg.Shards = shards
		s, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		if withAvail {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f %8.2f%% %8d %8d %12.1f\n",
				p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion,
				100*r.GoodputFrac, r.ForcedShrinks, r.Requeues, r.WorkLostSec)
		} else {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f\n",
				p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
		}
		rep.Runs = append(rep.Runs, metrics.FromResult(name, r))
	}
	return &rep
}

func runTable1(params map[string]string) *metrics.Report {
	results, err := sim.Table1Simulation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1 (Simulation columns): 16 jobs, 90 s submission gap, T_rescale_gap = 180 s")
	fmt.Printf("%-14s %12s %12s %16s %18s\n",
		"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)")
	rep := metrics.New("elasticsim", metrics.KindRun)
	rep.Params = params
	for _, p := range core.AllPolicies() {
		r := results[p]
		fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f\n",
			p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
		rep.Runs = append(rep.Runs, metrics.FromResult("table1", r))
	}
	return &rep
}
