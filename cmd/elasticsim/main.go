// Command elasticsim runs the discrete-event scheduling simulator of paper
// §4.3.1 and prints the series behind Figures 7 and 8 and the Simulation
// columns of Table 1.
//
// Usage:
//
//	elasticsim -sweep gap               # Figure 7: submission-gap sweep
//	elasticsim -sweep rescale           # Figure 8: rescale-gap sweep
//	elasticsim -table1                  # Table 1, Simulation columns
//	elasticsim -seeds 100 -jobs 16      # paper-scale averaging
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
	"elastichpc/internal/trace"
)

func main() {
	var (
		sweep    = flag.String("sweep", "", `sweep to run: "gap" (Fig. 7) or "rescale" (Fig. 8)`)
		table1   = flag.Bool("table1", false, "run the Table 1 simulation")
		jobs     = flag.Int("jobs", 16, "jobs per workload")
		seeds    = flag.Int("seeds", 100, "random workloads to average over")
		workload = flag.String("workload", "", "replay a saved workload JSON under all policies")
		saveWL   = flag.String("save-workload", "", "write the Table 1 workload to this path and exit")
	)
	flag.Parse()

	switch {
	case *saveWL != "":
		if err := trace.SaveFile(*saveWL, sim.Table1Workload(), "table 1 workload (seed 7, 90s gap)"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveWL)
	case *workload != "":
		w, err := trace.LoadFile(*workload)
		if err != nil {
			log.Fatal(err)
		}
		runWorkload(w)
	case *table1:
		runTable1()
	case *sweep == "gap":
		points, err := sim.SubmissionGapSweep([]float64{0, 30, 60, 90, 120, 150, 180, 210, 240, 270, 300}, *jobs, *seeds, 180)
		if err != nil {
			log.Fatal(err)
		}
		printSweep("submission_gap", points)
	case *sweep == "rescale":
		points, err := sim.RescaleGapSweep([]float64{0, 60, 120, 180, 300, 450, 600, 900, 1200}, *jobs, *seeds, 180)
		if err != nil {
			log.Fatal(err)
		}
		printSweep("rescale_gap", points)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printSweep(xName string, points []sim.SweepPoint) {
	fmt.Printf("%s,policy,utilization,total_time_s,weighted_response_s,weighted_completion_s\n", xName)
	for _, pt := range points {
		for _, p := range core.AllPolicies() {
			avg := pt.ByPolicy[p]
			fmt.Printf("%.0f,%s,%.4f,%.1f,%.2f,%.2f\n",
				pt.X, p, avg.Utilization, avg.TotalTime, avg.WeightedResponse, avg.WeightedCompletion)
		}
	}
}

func runWorkload(w sim.Workload) {
	fmt.Printf("Replaying %d-job workload under all policies (T_rescale_gap = 180 s)\n", len(w.Jobs))
	fmt.Printf("%-14s %12s %12s %16s %18s\n",
		"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)")
	for _, p := range core.AllPolicies() {
		r, err := sim.RunPolicy(p, w, 180)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f\n",
			p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
	}
}

func runTable1() {
	results, err := sim.Table1Simulation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1 (Simulation columns): 16 jobs, 90 s submission gap, T_rescale_gap = 180 s")
	fmt.Printf("%-14s %12s %12s %16s %18s\n",
		"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)")
	for _, p := range core.AllPolicies() {
		r := results[p]
		fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f\n",
			p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
	}
}
