// Command charmrun launches a Charm application on the in-process runtime
// with a CCS control endpoint, the way the paper's launcher pod runs
// charmrun/mpirun with shrink/expand enabled (§3.1). An external controller
// (cmd/ccs, or the operator) can then shrink/expand the running job.
//
// Usage:
//
//	charmrun -app jacobi -pes 8 -grid 1024 -iters 2000 -ccs 127.0.0.1:7777
//	charmrun -app leanmd -pes 4 -cells 4x4x4 -iters 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
)

func main() {
	var (
		app     = flag.String("app", "jacobi", "jacobi | leanmd")
		pes     = flag.Int("pes", 4, "initial number of PEs")
		grid    = flag.String("grid", "1024", "jacobi grid dimension")
		cells   = flag.String("cells", "4x4x4", "leanmd cell grid, e.g. 4x4x8")
		atoms   = flag.Int("atoms", 32, "leanmd atoms per cell")
		iters   = flag.Int("iters", 1000, "iterations to run")
		lbEvery = flag.Int("lb", 10, "iterations between load-balance steps")
		ccsAddr = flag.String("ccs", "127.0.0.1:0", "CCS listen address")
	)
	flag.Parse()

	rt, err := charm.New(charm.Config{PEs: *pes})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	var runner *apps.Runner
	switch *app {
	case "jacobi":
		var n int
		if _, err := fmt.Sscanf(*grid, "%d", &n); err != nil {
			log.Fatalf("bad -grid %q: %v", *grid, err)
		}
		bx, by := chareGrid(4 * *pes)
		runner, err = apps.NewJacobiRunner(rt, n, bx, by)
	case "leanmd":
		var kx, ky, kz int
		if _, err := fmt.Sscanf(*cells, "%dx%dx%d", &kx, &ky, &kz); err != nil {
			log.Fatalf("bad -cells %q: %v", *cells, err)
		}
		runner, err = apps.NewLeanMDRunner(rt, kx, ky, kz, *atoms, 2025)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	runner.LBPeriod = *lbEvery

	h, err := rt.ServeCCS(charm.CCSOptions{Addr: *ccsAddr, Status: runner.Status})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Printf("charmrun: %s on %d PEs, CCS at %s\n", *app, *pes, h.Addr())

	res, err := runner.Run(*iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("charmrun: done: %d iterations in %v (%.2f ms/iter steady state)\n",
		len(res.Iterations), res.Total, res.TimePerIteration().Seconds()*1e3)
	for _, ev := range res.Rescales {
		fmt.Printf("charmrun: rescaled %d->%d at iter %d (overhead %v)\n",
			ev.FromPEs, ev.ToPEs, ev.Iter, ev.Stats.Total)
	}
}

// chareGrid factors n into a near-square bx×by decomposition.
func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}
