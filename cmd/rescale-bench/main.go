// Command rescale-bench measures the shrink/expand overhead of the real
// charm runtime, broken into the paper's four phases (§4.2, Figure 5), plus
// the Figure 6 iteration timeline around a shrink/expand pair.
//
// Grid sizes are scaled down from the paper's (which assume a 64-vCPU
// cluster and gigabytes of state); pass -scale 1 to attempt paper-size grids.
// With -scenario or -trace, the -mode size grid set is derived from the job
// classes of that workload scenario, so the overhead curve covers the state
// sizes an experiment will actually move. -parallel N measures N points
// concurrently (faster, noisier).
//
// Usage:
//
//	rescale-bench -mode shrink    # Fig. 5a: shrink to half, varying replicas
//	rescale-bench -mode expand    # Fig. 5b: expand to double, varying replicas
//	rescale-bench -mode size      # Fig. 5c: shrink 32→16, varying grid size
//	rescale-bench -mode size -scenario diurnal   # grids from a scenario
//	rescale-bench -mode avail -availability spot # measure the exact rescale
//	                                             # transitions a capacity
//	                                             # profile would force
//	rescale-bench -mode timeline  # Fig. 6: per-iteration times around rescales
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
	"elastichpc/internal/metrics"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// point is one measurement cell: a from→to rescale of an n×n grid, keyed on
// x (replicas for shrink/expand modes, grid size for size mode).
type point struct {
	x, from, to, grid int
}

func main() {
	var (
		mode     = flag.String("mode", "", "shrink | expand | size | avail | timeline")
		scale    = flag.Int("scale", 8, "divide paper grid sizes by this factor")
		iters    = flag.Int("iters", 30, "iterations to run before rescaling")
		scenario = flag.String("scenario", "", "derive -mode size grids from this workload scenario (uniform | poisson | burst | diurnal | trace)")
		tracePth = flag.String("trace", "", "workload trace file for -scenario trace (implies it)")
		seed     = flag.Int64("seed", 7, "scenario generation seed")
		parallel = flag.Int("parallel", 1, "measurement points to run concurrently (timings get noisier above 1)")
		jsonPath = flag.String("json", "", "also write the phase breakdown as a metrics.Report (kind bench); not supported by -mode timeline")
		availFl  = flag.String("availability", "", "-mode avail: capacity profile whose transitions to measure (failures | spot | drain | tides | trace)")
		availTr  = flag.String("availability-trace", "", "capacity trace file for -availability trace (implies it)")
		mttf     = flag.Float64("mttf", 0, "failures profile: mean time to failure, seconds (0 = default)")
		mttr     = flag.Float64("mttr", 0, "failures profile: mean time to repair, seconds (0 = default)")
		preempt  = flag.Int("preempt", 0, "spot profile: slots reclaimed per preemption event (0 = default)")
	)
	flag.Parse()
	if *tracePth != "" && *scenario == "" {
		*scenario = "trace"
	}
	if *availTr != "" && *availFl == "" {
		*availFl = "trace"
	}
	if *availFl != "" && *mode != "avail" {
		log.Fatalf("-availability only applies to -mode avail, not -mode %s", *mode)
	}
	if *parallel > 1 {
		fmt.Fprintf(os.Stderr, "# warning: -parallel %d shares cores between points; timings are noisier\n", *parallel)
	}

	if *scenario != "" && *mode != "size" {
		// Scenarios select grid sizes, which only the size sweep varies.
		log.Fatalf("-scenario/-trace do not apply to -mode %s (only -mode size derives grids from a scenario)", *mode)
	}

	var points []point
	switch *mode {
	case "shrink":
		fmt.Println("# Fig 5a: shrink to half; x = replicas before shrinking")
		for _, p := range []int{4, 8, 16, 32} {
			points = append(points, point{x: p, from: p, to: p / 2, grid: 8192 / *scale})
		}
	case "expand":
		fmt.Println("# Fig 5b: expand to double; x = replicas before expanding")
		for _, p := range []int{2, 4, 8, 16} {
			points = append(points, point{x: p, from: p, to: p * 2, grid: 8192 / *scale})
		}
	case "size":
		grids, source, err := sizeGrids(*scenario, *tracePth, *seed, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# Fig 5c: shrink 32->16; x = grid dimension; grids from %s\n", source)
		for _, n := range grids {
			points = append(points, point{x: n, from: 32, to: 16, grid: n})
		}
	case "avail":
		if *availFl == "" {
			log.Fatal("-mode avail needs -availability")
		}
		pts, err := availPoints(*availFl, *availTr, *seed, *scale, *mttf, *mttr, *preempt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# availability transitions of profile %q seed %d (job replicas = capacity/4, grid %d)\n",
			*availFl, *seed, 8192 / *scale)
		for _, pt := range pts {
			fmt.Printf("# transition %d: %d -> %d replicas\n", pt.x, pt.from, pt.to)
		}
		points = pts
	case "timeline":
		if *jsonPath != "" {
			log.Fatal("-json does not apply to -mode timeline (per-iteration series has no report form)")
		}
		runTimeline(*scale, *iters)
		return
	default:
		flag.Usage()
		os.Exit(2)
	}

	header := "replicas"
	switch *mode {
	case "size":
		header = "grid"
	case "avail":
		header = "transition"
	}
	fmt.Printf("%s,lb_s,ckpt_s,restart_s,restore_s,total_s,bytes\n", header)
	rows := make([]charm.RescaleStats, len(points))
	if err := sim.RunTasks(len(points), *parallel, func(i int) error {
		rows[i] = runOnce(points[i], *iters)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	rep := metrics.New("rescale-bench", metrics.KindBench)
	for i, pt := range points {
		s := rows[i]
		fmt.Printf("%d,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n", pt.x,
			s.LoadBalance.Seconds(), s.Checkpoint.Seconds(), s.Restart.Seconds(),
			s.Restore.Seconds(), s.Total.Seconds(), s.CheckpointBytes)
		rep.Benchmarks = append(rep.Benchmarks, metrics.Benchmark{
			Name:       fmt.Sprintf("Fig5Rescale/%s/%s=%d", *mode, header, pt.x),
			Iterations: 1,
			NsPerOp:    float64(s.Total.Nanoseconds()), // one op = one full rescale
			Custom: map[string]float64{
				"lb_s":      s.LoadBalance.Seconds(),
				"ckpt_s":    s.Checkpoint.Seconds(),
				"restart_s": s.Restart.Seconds(),
				"restore_s": s.Restore.Seconds(),
				"bytes":     float64(s.CheckpointBytes),
			},
		})
	}
	if *jsonPath != "" {
		if err := metrics.Write(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// availPoints turns a capacity profile's distinct transitions into rescale
// measurement points: each cluster-capacity move from→to becomes a job
// rescale at a quarter of the slots (the paper's experiments average ~4
// concurrent jobs on the 64-slot cluster), clamped to the runtime-practical
// [2, 32] replica range and deduplicated. x is the transition index.
func availPoints(name, tracePath string, seed int64, scale int, mttf, mttr float64, preempt int) ([]point, error) {
	profile, err := workload.AvailabilityScenario(name, workload.AvailabilityOptions{
		MTTF: mttf, MTTR: mttr, PreemptSlots: preempt, TracePath: tracePath,
	})
	if err != nil {
		return nil, err
	}
	trans, err := workload.AvailabilityTransitions(profile, seed, 64, 4*3600)
	if err != nil {
		return nil, err
	}
	clamp := func(c int) int {
		r := c / 4
		if r < 2 {
			r = 2
		}
		if r > 32 {
			r = 32
		}
		return r
	}
	var pts []point
	seen := map[[2]int]bool{}
	for _, tr := range trans {
		from, to := clamp(tr[0]), clamp(tr[1])
		if from == to || seen[[2]int{from, to}] {
			continue
		}
		seen[[2]int{from, to}] = true
		pts = append(pts, point{x: len(pts), from: from, to: to, grid: 8192 / scale})
		if len(pts) == 8 {
			break // the distinct-transition set converges fast; 8 covers it
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("availability profile %q yields no measurable transitions", name)
	}
	return pts, nil
}

// sizeGrids picks the -mode size grid dimensions: Figure 5c's fixed list, or
// the distinct grids of a scenario's job classes.
func sizeGrids(scenario, tracePath string, seed int64, scale int) ([]int, string, error) {
	if scenario == "" {
		return []int{512 / scale * 8, 2048 / scale * 8, 8192 / scale * 8}, "Fig. 5c defaults", nil
	}
	raw, source, err := workload.ScenarioGrids(scenario, tracePath, seed)
	if err != nil {
		return nil, "", err
	}
	grids := workload.MapGrids(raw, func(n int) int { return n / scale * 8 })
	if len(grids) == 0 {
		return nil, "", fmt.Errorf("scenario %q yields no usable grids at -scale %d", scenario, scale)
	}
	return grids, source, nil
}

// runOnce runs a Jacobi solve on pt.from PEs, rescales to pt.to, and returns
// the phase breakdown.
func runOnce(pt point, iters int) charm.RescaleStats {
	rt, err := charm.New(charm.Config{PEs: pt.from})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	// Overdecompose 4 chares per PE on the larger side of the rescale.
	side := pt.from
	if pt.to > side {
		side = pt.to
	}
	bx, by := chareGrid(4 * side)
	r, err := apps.NewJacobiRunner(rt, pt.grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	r.LBPeriod = iters / 2
	go func() { <-rt.RequestRescale(pt.to) }()
	if _, err := r.Run(iters); err != nil {
		log.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) == 0 {
		log.Fatalf("no rescale recorded for %d->%d", pt.from, pt.to)
	}
	return stats[len(stats)-1]
}

// chareGrid factors n into a near-square bx×by decomposition.
func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}

// runTimeline reproduces Figure 6: run a Jacobi solve, shrink to half a
// third of the way in, expand back at two thirds, and print per-iteration
// timings and the rescale timestamps.
func runTimeline(scale, iters int) {
	const from = 8
	rt, err := charm.New(charm.Config{PEs: from})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	grid := 16384 / scale
	bx, by := chareGrid(4 * from)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	total := 3 * iters
	r.LBPeriod = iters

	go func() { <-rt.RequestRescale(from / 2) }()
	res1, err := r.Run(2 * iters)
	if err != nil {
		log.Fatal(err)
	}
	go func() { <-rt.RequestRescale(from) }()
	res2, err := r.Run(total - 2*iters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Fig 6: iteration,pes,iter_time_s,timestamp_s (gaps at rescales)")
	fmt.Println("iteration,pes,iter_time_s,timestamp_s")
	base := 0.0
	offset := 0
	for _, res := range []apps.RunResult{res1, res2} {
		for _, it := range res.Iterations {
			fmt.Printf("%d,%d,%.5f,%.3f\n", offset+it.Iter, it.PEs, it.Elapsed.Seconds(), base+it.Timestamp.Seconds())
		}
		for _, ev := range res.Rescales {
			fmt.Printf("# rescale %d->%d at t=%.3fs overhead=%v\n", ev.FromPEs, ev.ToPEs, base+ev.Timestamp.Seconds(), ev.Stats.Total)
		}
		offset += len(res.Iterations)
		base += res.Total.Seconds()
	}
}
