// Command rescale-bench measures the shrink/expand overhead of the real
// charm runtime, broken into the paper's four phases (§4.2, Figure 5), plus
// the Figure 6 iteration timeline around a shrink/expand pair.
//
// Grid sizes are scaled down from the paper's (which assume a 64-vCPU
// cluster and gigabytes of state); pass -scale 1 to attempt paper-size grids.
//
// Usage:
//
//	rescale-bench -mode shrink    # Fig. 5a: shrink to half, varying replicas
//	rescale-bench -mode expand    # Fig. 5b: expand to double, varying replicas
//	rescale-bench -mode size      # Fig. 5c: shrink 32→16, varying grid size
//	rescale-bench -mode timeline  # Fig. 6: per-iteration times around rescales
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
)

func main() {
	var (
		mode  = flag.String("mode", "", "shrink | expand | size | timeline")
		scale = flag.Int("scale", 8, "divide paper grid sizes by this factor")
		iters = flag.Int("iters", 30, "iterations to run before rescaling")
	)
	flag.Parse()

	switch *mode {
	case "shrink":
		fmt.Println("# Fig 5a: shrink to half; x = replicas before shrinking")
		fmt.Println("replicas,lb_s,ckpt_s,restart_s,restore_s,total_s,bytes")
		for _, p := range []int{4, 8, 16, 32} {
			runOnce(p, p/2, 8192 / *scale, *iters)
		}
	case "expand":
		fmt.Println("# Fig 5b: expand to double; x = replicas before expanding")
		fmt.Println("replicas,lb_s,ckpt_s,restart_s,restore_s,total_s,bytes")
		for _, p := range []int{2, 4, 8, 16} {
			runOnce(p, p*2, 8192 / *scale, *iters)
		}
	case "size":
		fmt.Println("# Fig 5c: shrink 32->16; x = grid dimension")
		fmt.Println("grid,lb_s,ckpt_s,restart_s,restore_s,total_s,bytes")
		for _, n := range []int{512 / *scale * 8, 2048 / *scale * 8, 8192 / *scale * 8} {
			runOnce(32, 16, n, *iters)
		}
	case "timeline":
		runTimeline(*scale, *iters)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOnce runs a Jacobi solve on `from` PEs, rescales to `to`, and prints
// the phase breakdown.
func runOnce(from, to, grid, iters int) {
	rt, err := charm.New(charm.Config{PEs: from})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	// Overdecompose 4 chares per PE on the larger side of the rescale.
	side := from
	if to > side {
		side = to
	}
	bx, by := chareGrid(4 * side)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	r.LBPeriod = iters / 2
	go func() { <-rt.RequestRescale(to) }()
	if _, err := r.Run(iters); err != nil {
		log.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) == 0 {
		log.Fatalf("no rescale recorded for %d->%d", from, to)
	}
	s := stats[len(stats)-1]
	x := from
	if to > from {
		x = from
	}
	fmt.Printf("%d,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n", xOrGrid(x, grid, from, to),
		s.LoadBalance.Seconds(), s.Checkpoint.Seconds(), s.Restart.Seconds(),
		s.Restore.Seconds(), s.Total.Seconds(), s.CheckpointBytes)
}

// xOrGrid picks the x-axis value: replicas for shrink/expand modes, grid for
// size mode (from == 32 && to == 16 is the size sweep configuration).
func xOrGrid(replicas, grid, from, to int) int {
	if from == 32 && to == 16 {
		return grid
	}
	return replicas
}

// chareGrid factors n into a near-square bx×by decomposition.
func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}

// runTimeline reproduces Figure 6: run a Jacobi solve, shrink to half a
// third of the way in, expand back at two thirds, and print per-iteration
// timings and the rescale timestamps.
func runTimeline(scale, iters int) {
	const from = 8
	rt, err := charm.New(charm.Config{PEs: from})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	grid := 16384 / scale
	bx, by := chareGrid(4 * from)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	total := 3 * iters
	r.LBPeriod = iters

	go func() { <-rt.RequestRescale(from / 2) }()
	res1, err := r.Run(2 * iters)
	if err != nil {
		log.Fatal(err)
	}
	go func() { <-rt.RequestRescale(from) }()
	res2, err := r.Run(total - 2*iters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Fig 6: iteration,pes,iter_time_s,timestamp_s (gaps at rescales)")
	fmt.Println("iteration,pes,iter_time_s,timestamp_s")
	base := 0.0
	offset := 0
	for _, res := range []apps.RunResult{res1, res2} {
		for _, it := range res.Iterations {
			fmt.Printf("%d,%d,%.5f,%.3f\n", offset+it.Iter, it.PEs, it.Elapsed.Seconds(), base+it.Timestamp.Seconds())
		}
		for _, ev := range res.Rescales {
			fmt.Printf("# rescale %d->%d at t=%.3fs overhead=%v\n", ev.FromPEs, ev.ToPEs, base+ev.Timestamp.Seconds(), ev.Stats.Total)
		}
		offset += len(res.Iterations)
		base += res.Total.Seconds()
	}
}
