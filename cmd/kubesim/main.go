// Command kubesim runs the full-stack cluster emulation of paper §4.3.2
// (k8s substrate + Charm operator + elastic policy on a virtual clock) and
// prints the Actual columns of Table 1 and the Figure 9 timelines.
//
// Usage:
//
//	kubesim -table1            # Table 1, Actual columns
//	kubesim -profiles          # Figure 9a: utilization profiles per policy
//	kubesim -xlarge-timeline   # Figure 9b: replica evolution of an xlarge job
//	kubesim -scenario uniform -availability spot   # failure/preemption scenario
//	                                               # through the full emulation
//	kubesim -clusters 4 -route least_loaded        # a fleet of emulated clusters
//	                                               # behind the federation router
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"elastichpc/internal/chart"
	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/metrics"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

var ascii = flag.Bool("ascii", false, "render profiles as ASCII charts instead of CSV")

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table 1 Actual experiment")
		profiles = flag.Bool("profiles", false, "print Figure 9a utilization profiles")
		xlarge   = flag.Bool("xlarge-timeline", false, "print Figure 9b replica timeline")
		sweep    = flag.Bool("sweep", false, "cross-validate the Figure 7 submission-gap sweep through the emulation")
		seeds    = flag.Int("seeds", 3, "workloads per sweep point (emulation sweeps are slower than DES)")
		jsonPath = flag.String("json", "", "also write the results as a metrics.Report to this path")

		scenario = flag.String("scenario", "", "workload scenario to emulate: uniform | poisson | burst | diurnal | trace")
		tracePth = flag.String("trace", "", "workload trace file for -scenario trace (implies it)")
		seed     = flag.Int64("seed", 7, "scenario and availability generation seed")
		availFl  = flag.String("availability", "", "capacity profile: failures | spot | drain | tides | trace")
		availTr  = flag.String("availability-trace", "", "capacity trace file for -availability trace (implies it)")
		mttf     = flag.Float64("mttf", 0, "failures profile: mean time to failure, seconds (0 = default)")
		mttr     = flag.Float64("mttr", 0, "failures profile: mean time to repair, seconds (0 = default)")
		preempt  = flag.Int("preempt", 0, "spot profile: slots reclaimed per preemption event (0 = default)")
		ckpt     = flag.Int("ckpt-period", 1000, "periodic checkpoint interval in iterations for availability runs (0 = restart from scratch)")

		clusters = flag.Int("clusters", 1, "emulated member clusters behind the federation router (1 = single cluster)")
		routeFl  = flag.String("route", "round_robin", "fleet routing policy for -clusters: round_robin | least_loaded | priority | random")
	)
	flag.Parse()
	if *tracePth != "" && *scenario == "" {
		*scenario = "trace"
	}
	if *availTr != "" && *availFl == "" {
		*availFl = "trace"
	}
	route, err := federation.RouteByName(*routeFl)
	if err != nil {
		log.Fatal(err)
	}
	if *clusters < 1 {
		log.Fatalf("-clusters %d: a fleet needs at least 1 member", *clusters)
	}
	if *clusters > 1 {
		if *table1 || *profiles || *xlarge || *sweep {
			log.Fatal("-clusters applies to scenario emulation only")
		}
		if *availFl != "" {
			log.Fatal("-availability does not apply to -clusters (set per-member traces through the library)")
		}
	}

	var report *metrics.Report
	switch {
	case *table1:
		report = runTable1()
	case *profiles:
		report = runProfiles()
	case *xlarge:
		report = runXLargeTimeline()
	case *sweep:
		report = runSweep(*seeds)
	case *clusters > 1:
		report = runFleet(*scenario, *tracePth, *clusters, route, *seed, *ckpt)
	case *scenario != "" || *availFl != "":
		report = runScenario(*scenario, *tracePth, *availFl, *availTr, *seed, *mttf, *mttr, *preempt, *ckpt)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonPath != "" {
		if err := metrics.Write(*jsonPath, *report); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// runScenario emulates one seeded workload scenario — optionally under a
// time-varying capacity profile — for every policy: the kubesim twin of
// `elasticsim -scenario X -availability Y`, sharing the same generators so
// the two backends stay directly comparable.
func runScenario(scenario, tracePath, availName, availTrace string, seed int64, mttf, mttr float64, preempt, ckpt int) *metrics.Report {
	gen := workload.Generator(workload.Uniform{Jobs: 16, Gap: 90})
	if scenario != "" {
		g, err := workload.Scenario(scenario, tracePath)
		if err != nil {
			log.Fatal(err)
		}
		gen = g
	}
	var profile workload.AvailabilityProfile
	if availName != "" {
		p, err := workload.AvailabilityScenario(availName, workload.AvailabilityOptions{
			MTTF: mttf, MTTR: mttr, PreemptSlots: preempt, TracePath: availTrace,
		})
		if err != nil {
			log.Fatal(err)
		}
		profile = p
	}

	rep := metrics.New("kubesim", metrics.KindRun)
	rep.Params = map[string]string{"scenario": gen.Name(), "seed": fmt.Sprint(seed)}
	if profile != nil {
		rep.Params["availability"] = profile.Name()
		fmt.Printf("Emulating %s workload under %s capacity profile (seed %d, ckpt every %d iters)\n",
			gen.Name(), profile.Name(), seed, ckpt)
		fmt.Printf("%-14s %12s %12s %16s %18s %9s %8s %8s %12s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)",
			"Goodput", "Shrinks", "Requeues", "Lost (r·s)")
	} else {
		fmt.Printf("Emulating %s workload (seed %d)\n", gen.Name(), seed)
		fmt.Printf("%-14s %12s %12s %16s %18s\n",
			"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)")
	}
	for _, p := range core.AllPolicies() {
		cfg := cluster.DefaultConfig(p)
		cfg.CheckpointPeriod = ckpt
		var res sim.Result
		var err error
		if profile != nil {
			res, err = cluster.RunAvailability(cfg, gen, profile, seed)
		} else {
			res, err = cluster.RunGenerator(cfg, gen, seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		if profile != nil {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f %8.2f%% %8d %8d %12.1f\n",
				p, res.TotalTime, 100*res.Utilization, res.WeightedResponse, res.WeightedCompletion,
				100*res.GoodputFrac, res.ForcedShrinks, res.Requeues, res.WorkLostSec)
		} else {
			fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f\n",
				p, res.TotalTime, 100*res.Utilization, res.WeightedResponse, res.WeightedCompletion)
		}
		rep.Runs = append(rep.Runs, metrics.FromResult(gen.Name(), res))
	}
	return &rep
}

// runFleet emulates one seeded workload scenario on a federation of
// emulated clusters: each member is a full cluster.RunExperiment backend
// plugged into the fleet router through the federation Member interface, so
// the routing layer is exercised against the emulation rather than the
// simulator. Rebalancing needs steppable (simulator) members and is
// deliberately not offered here; use `elasticsim -clusters -rebalance` for
// the co-simulated fleet.
func runFleet(scenario, tracePath string, clusters int, route federation.Route, seed int64, ckpt int) *metrics.Report {
	gen := workload.Generator(workload.Uniform{Jobs: 16, Gap: 90})
	if scenario != "" {
		g, err := workload.Scenario(scenario, tracePath)
		if err != nil {
			log.Fatal(err)
		}
		gen = g
	}
	w, err := gen.Generate(seed)
	if err != nil {
		log.Fatal(err)
	}

	rep := metrics.New("kubesim", metrics.KindRun)
	rep.Params = map[string]string{
		"scenario": gen.Name(), "seed": fmt.Sprint(seed),
		"clusters": fmt.Sprint(clusters), "route": route.String(),
	}
	fmt.Printf("Emulating %s workload across %d clusters, %s routing (seed %d)\n",
		gen.Name(), clusters, route, seed)
	fmt.Printf("%-14s %12s %12s %16s %18s %10s %14s\n",
		"Scheduler", "Total (s)", "Utilization", "W. response (s)", "W. completion (s)",
		"Imbalance", "Jobs/cluster")
	for _, p := range core.AllPolicies() {
		backends := make([]federation.Member, clusters)
		for i := range backends {
			cfg := cluster.DefaultConfig(p)
			cfg.CheckpointPeriod = ckpt
			backends[i] = federation.NewClusterMember(cfg)
		}
		res, err := federation.Run(federation.Config{Backends: backends, Route: route, RouteSeed: seed}, w)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]string, len(res.JobsPerMember))
		for i, n := range res.JobsPerMember {
			counts[i] = fmt.Sprint(n)
		}
		fmt.Printf("%-14s %12.0f %11.2f%% %16.2f %18.2f %10.3f %14s\n",
			p, res.TotalTime, 100*res.Utilization, res.WeightedResponse, res.WeightedCompletion,
			res.Imbalance, strings.Join(counts, "/"))
		rep.Runs = append(rep.Runs, metrics.FromFederation(gen.Name(), res))
	}
	return &rep
}

// runSweep replays the Figure 7 submission-gap sweep through the full
// emulation — the cross-validation the paper could not afford on real EKS
// (their sweep is simulation-only because "an experimental study ... would
// be infeasible"; a deterministic virtual-clock emulation makes it cheap).
func runSweep(seeds int) *metrics.Report {
	rep := metrics.New("kubesim", metrics.KindSweep)
	sw := metrics.Sweep{Name: "submission_gap_actual", X: "submission gap (s)"}
	fmt.Println("submission_gap,policy,utilization,total_time_s,weighted_response_s,weighted_completion_s")
	for _, gap := range []float64{0, 60, 120, 180, 240, 300} {
		pt := metrics.Point{X: gap}
		for _, p := range core.AllPolicies() {
			var util, total, resp, comp float64
			for seed := int64(0); seed < int64(seeds); seed++ {
				w := sim.RandomWorkload(16, gap, seed)
				res, err := cluster.RunExperiment(cluster.DefaultConfig(p), w)
				if err != nil {
					log.Fatal(err)
				}
				util += res.Utilization
				total += res.TotalTime
				resp += res.WeightedResponse
				comp += res.WeightedCompletion
			}
			n := float64(seeds)
			fmt.Printf("%.0f,%s,%.4f,%.1f,%.2f,%.2f\n", gap, p, util/n, total/n, resp/n, comp/n)
			pt.Runs = append(pt.Runs, metrics.Run{
				Policy: p.String(), Seeds: seeds, Jobs: 16,
				TotalTime: total / n, Utilization: util / n,
				WeightedResponse: resp / n, WeightedCompletion: comp / n,
			})
		}
		sw.Points = append(sw.Points, pt)
	}
	rep.Sweeps = []metrics.Sweep{sw}
	return &rep
}

func runTable1() *metrics.Report {
	results, err := cluster.Table1Actual()
	if err != nil {
		log.Fatal(err)
	}
	simResults, err := sim.Table1Simulation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: Actual (full k8s emulation) vs Simulation (DES), same fixed 16-job workload")
	fmt.Printf("%-14s %10s %10s | %8s %8s | %9s %9s | %9s %9s\n",
		"Scheduler", "Tot.act", "Tot.sim", "Util.act", "Util.sim", "Resp.act", "Resp.sim", "Comp.act", "Comp.sim")
	rep := metrics.New("kubesim", metrics.KindRun)
	for _, p := range core.AllPolicies() {
		a, s := results[p], simResults[p]
		fmt.Printf("%-14s %10.0f %10.0f | %7.2f%% %7.2f%% | %9.2f %9.2f | %9.2f %9.2f\n",
			p, a.TotalTime, s.TotalTime,
			100*a.Utilization, 100*s.Utilization,
			a.WeightedResponse, s.WeightedResponse,
			a.WeightedCompletion, s.WeightedCompletion)
		rep.Runs = append(rep.Runs,
			metrics.FromResult("table1-actual", a), metrics.FromResult("table1-sim", s))
	}
	return &rep
}

func runProfiles() *metrics.Report {
	w := sim.Table1Workload()
	var series []chart.Series
	if !*ascii {
		fmt.Println("policy,t_seconds,used_slots")
	}
	rep := metrics.New("kubesim", metrics.KindRun)
	for _, p := range core.AllPolicies() {
		res, err := cluster.RunExperiment(cluster.DefaultConfig(p), w)
		if err != nil {
			log.Fatal(err)
		}
		rep.Runs = append(rep.Runs, metrics.FromResult("fig9a", res))
		if *ascii {
			s := chart.Series{Name: fmt.Sprintf("%s (mean %.1f%%)", p, 100*res.Utilization)}
			for _, u := range res.UtilTimeline {
				s.Points = append(s.Points, chart.Point{X: u.At, Y: float64(u.Used)})
			}
			series = append(series, s)
			continue
		}
		for _, s := range res.UtilTimeline {
			fmt.Printf("%s,%.1f,%d\n", p, s.At, s.Used)
		}
	}
	if *ascii {
		fmt.Print(chart.RenderMulti(series, chart.Options{Width: 72, Height: 8, YMin: 0, YMax: 64, YLabel: "busy worker slots"}))
	}
	return &rep
}

func runXLargeTimeline() *metrics.Report {
	w := sim.Table1Workload()
	res, err := cluster.RunExperiment(cluster.DefaultConfig(core.Elastic), w)
	if err != nil {
		log.Fatal(err)
	}
	// Pick the xlarge job with the most rescale events (Figure 9b shows
	// "an xlarge job that rescales multiple times").
	specs := model.Specs()
	var best string
	bestLen := 0
	for _, js := range w.Jobs {
		if specs[js.Class].Class != model.XLarge {
			continue
		}
		if tl := res.ReplicaTimelines[js.ID]; len(tl) > bestLen {
			best, bestLen = js.ID, len(tl)
		}
	}
	if best == "" {
		log.Fatal("workload contains no xlarge job")
	}
	fmt.Printf("job,%s\n", best)
	fmt.Println("t_seconds,replicas")
	for _, s := range res.ReplicaTimelines[best] {
		fmt.Printf("%.1f,%d\n", s.At, s.Replicas)
	}
	rep := metrics.New("kubesim", metrics.KindRun)
	rep.Params = map[string]string{"job": best}
	rep.Runs = []metrics.Run{metrics.FromResult("fig9b", res)}
	return &rep
}
