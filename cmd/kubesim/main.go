// Command kubesim runs the full-stack cluster emulation of paper §4.3.2
// (k8s substrate + Charm operator + elastic policy on a virtual clock) and
// prints the Actual columns of Table 1 and the Figure 9 timelines.
//
// Usage:
//
//	kubesim -table1            # Table 1, Actual columns
//	kubesim -profiles          # Figure 9a: utilization profiles per policy
//	kubesim -xlarge-timeline   # Figure 9b: replica evolution of an xlarge job
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"elastichpc/internal/chart"
	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/metrics"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
)

var ascii = flag.Bool("ascii", false, "render profiles as ASCII charts instead of CSV")

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table 1 Actual experiment")
		profiles = flag.Bool("profiles", false, "print Figure 9a utilization profiles")
		xlarge   = flag.Bool("xlarge-timeline", false, "print Figure 9b replica timeline")
		sweep    = flag.Bool("sweep", false, "cross-validate the Figure 7 submission-gap sweep through the emulation")
		seeds    = flag.Int("seeds", 3, "workloads per sweep point (emulation sweeps are slower than DES)")
		jsonPath = flag.String("json", "", "also write the results as a metrics.Report to this path")
	)
	flag.Parse()

	var report *metrics.Report
	switch {
	case *table1:
		report = runTable1()
	case *profiles:
		report = runProfiles()
	case *xlarge:
		report = runXLargeTimeline()
	case *sweep:
		report = runSweep(*seeds)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonPath != "" {
		if err := metrics.Write(*jsonPath, *report); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// runSweep replays the Figure 7 submission-gap sweep through the full
// emulation — the cross-validation the paper could not afford on real EKS
// (their sweep is simulation-only because "an experimental study ... would
// be infeasible"; a deterministic virtual-clock emulation makes it cheap).
func runSweep(seeds int) *metrics.Report {
	rep := metrics.New("kubesim", metrics.KindSweep)
	sw := metrics.Sweep{Name: "submission_gap_actual", X: "submission gap (s)"}
	fmt.Println("submission_gap,policy,utilization,total_time_s,weighted_response_s,weighted_completion_s")
	for _, gap := range []float64{0, 60, 120, 180, 240, 300} {
		pt := metrics.Point{X: gap}
		for _, p := range core.AllPolicies() {
			var util, total, resp, comp float64
			for seed := int64(0); seed < int64(seeds); seed++ {
				w := sim.RandomWorkload(16, gap, seed)
				res, err := cluster.RunExperiment(cluster.DefaultConfig(p), w)
				if err != nil {
					log.Fatal(err)
				}
				util += res.Utilization
				total += res.TotalTime
				resp += res.WeightedResponse
				comp += res.WeightedCompletion
			}
			n := float64(seeds)
			fmt.Printf("%.0f,%s,%.4f,%.1f,%.2f,%.2f\n", gap, p, util/n, total/n, resp/n, comp/n)
			pt.Runs = append(pt.Runs, metrics.Run{
				Policy: p.String(), Seeds: seeds, Jobs: 16,
				TotalTime: total / n, Utilization: util / n,
				WeightedResponse: resp / n, WeightedCompletion: comp / n,
			})
		}
		sw.Points = append(sw.Points, pt)
	}
	rep.Sweeps = []metrics.Sweep{sw}
	return &rep
}

func runTable1() *metrics.Report {
	results, err := cluster.Table1Actual()
	if err != nil {
		log.Fatal(err)
	}
	simResults, err := sim.Table1Simulation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: Actual (full k8s emulation) vs Simulation (DES), same fixed 16-job workload")
	fmt.Printf("%-14s %10s %10s | %8s %8s | %9s %9s | %9s %9s\n",
		"Scheduler", "Tot.act", "Tot.sim", "Util.act", "Util.sim", "Resp.act", "Resp.sim", "Comp.act", "Comp.sim")
	rep := metrics.New("kubesim", metrics.KindRun)
	for _, p := range core.AllPolicies() {
		a, s := results[p], simResults[p]
		fmt.Printf("%-14s %10.0f %10.0f | %7.2f%% %7.2f%% | %9.2f %9.2f | %9.2f %9.2f\n",
			p, a.TotalTime, s.TotalTime,
			100*a.Utilization, 100*s.Utilization,
			a.WeightedResponse, s.WeightedResponse,
			a.WeightedCompletion, s.WeightedCompletion)
		rep.Runs = append(rep.Runs,
			metrics.FromResult("table1-actual", a), metrics.FromResult("table1-sim", s))
	}
	return &rep
}

func runProfiles() *metrics.Report {
	w := sim.Table1Workload()
	var series []chart.Series
	if !*ascii {
		fmt.Println("policy,t_seconds,used_slots")
	}
	rep := metrics.New("kubesim", metrics.KindRun)
	for _, p := range core.AllPolicies() {
		res, err := cluster.RunExperiment(cluster.DefaultConfig(p), w)
		if err != nil {
			log.Fatal(err)
		}
		rep.Runs = append(rep.Runs, metrics.FromResult("fig9a", res))
		if *ascii {
			s := chart.Series{Name: fmt.Sprintf("%s (mean %.1f%%)", p, 100*res.Utilization)}
			for _, u := range res.UtilTimeline {
				s.Points = append(s.Points, chart.Point{X: u.At, Y: float64(u.Used)})
			}
			series = append(series, s)
			continue
		}
		for _, s := range res.UtilTimeline {
			fmt.Printf("%s,%.1f,%d\n", p, s.At, s.Used)
		}
	}
	if *ascii {
		fmt.Print(chart.RenderMulti(series, chart.Options{Width: 72, Height: 8, YMin: 0, YMax: 64, YLabel: "busy worker slots"}))
	}
	return &rep
}

func runXLargeTimeline() *metrics.Report {
	w := sim.Table1Workload()
	res, err := cluster.RunExperiment(cluster.DefaultConfig(core.Elastic), w)
	if err != nil {
		log.Fatal(err)
	}
	// Pick the xlarge job with the most rescale events (Figure 9b shows
	// "an xlarge job that rescales multiple times").
	specs := model.Specs()
	var best string
	bestLen := 0
	for _, js := range w.Jobs {
		if specs[js.Class].Class != model.XLarge {
			continue
		}
		if tl := res.ReplicaTimelines[js.ID]; len(tl) > bestLen {
			best, bestLen = js.ID, len(tl)
		}
	}
	if best == "" {
		log.Fatal("workload contains no xlarge job")
	}
	fmt.Printf("job,%s\n", best)
	fmt.Println("t_seconds,replicas")
	for _, s := range res.ReplicaTimelines[best] {
		fmt.Printf("%.1f,%d\n", s.At, s.Replicas)
	}
	rep := metrics.New("kubesim", metrics.KindRun)
	rep.Params = map[string]string{"job": best}
	rep.Runs = []metrics.Run{metrics.FromResult("fig9b", res)}
	return &rep
}
