package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elastichpc/internal/conformance"
)

// TestSaveStreamsOrderDeterministic pins the artifact write order: ref
// first, then got. The pre-fix code ranged a two-entry map, so the pair hit
// disk — and error reporting picked a file — in per-run random order.
func TestSaveStreamsOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	ref := &conformance.Stream{Version: 1, Label: "ref"}
	got := &conformance.Stream{Version: 1, Label: "got"}
	base := filepath.Join(dir, "case")
	if err := saveStreams(base, ref, got); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".ref.json", ".got.json"} {
		data, err := os.ReadFile(base + suffix)
		if err != nil {
			t.Fatalf("expected %s%s written: %v", base, suffix, err)
		}
		want := strings.TrimSuffix(strings.TrimPrefix(suffix, "."), ".json")
		if !strings.Contains(string(data), `"label": "`+want+`"`) && !strings.Contains(string(data), `"label":"`+want+`"`) {
			t.Fatalf("%s does not carry label %q:\n%s", suffix, want, data)
		}
	}

	// With an unwritable base every save fails; the error must always name
	// the ref file — the first of the fixed order — never the got file.
	bad := filepath.Join(dir, "missing", "case")
	for i := 0; i < 8; i++ {
		err := saveStreams(bad, ref, got)
		if err == nil {
			t.Fatal("expected an error for an unwritable artifact base")
		}
		if !strings.Contains(err.Error(), "case.ref.json") {
			t.Fatalf("error does not deterministically name the ref file: %v", err)
		}
	}
}
