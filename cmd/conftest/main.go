// Command conftest records, replays, and diffs scheduler decision streams,
// and runs the full conformance equivalence matrix — the CLI face of
// internal/conformance, so a failing CI cell reproduces locally from an
// artifact.
//
// Modes (exactly one):
//
//	conftest -record [spec flags] [-out stream.json]
//	    Execute the spec and write its recorded stream.
//	conftest -replay stream.json [-out replayed.json]
//	    Re-execute the run described by a stream's meta and diff the new
//	    stream against the recording. Exit 1 on divergence.
//	conftest -diff a.json b.json
//	    Structurally diff two recorded streams. Exit 1 on divergence.
//	conftest -matrix [-artifacts dir]
//	    Run the equivalence matrix; on divergence, write each cell's
//	    reference and candidate streams under dir. Exit 1 on divergence.
//
// Spec flags (with -record): -backend sim|cluster|federation, -scenario
// uniform|burst, -jobs, -gap, -waves, -seed, -policy, -capacity,
// -rescale-gap, -shards, -streaming, -full, -log, -drain, -aging,
// -preempt; federation only: -route, -members, -skew, -rebalance,
// -migrate-running, -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"elastichpc/internal/conformance"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		record = flag.Bool("record", false, "execute the spec flags and write the recorded stream")
		replay = flag.String("replay", "", "stream file to re-execute from its meta and verify")
		doDiff = flag.Bool("diff", false, "diff the two stream files given as arguments")
		matrix = flag.Bool("matrix", false, "run the conformance equivalence matrix")

		out       = flag.String("out", "", "output path for the recorded stream (default stdout)")
		artifacts = flag.String("artifacts", "", "directory for diverging matrix streams")
		window    = flag.Int("window", conformance.DefaultWindow, "decisions of context around a divergence")

		backend  = flag.String("backend", "sim", "execution backend: sim, cluster, federation")
		scenario = flag.String("scenario", "uniform", "workload shape: uniform, burst")
		jobs     = flag.Int("jobs", 60, "total job count")
		gap      = flag.Float64("gap", 0, "inter-arrival or wave gap in seconds (0 = scenario default)")
		waves    = flag.Int("waves", 3, "burst wave count")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		policy   = flag.String("policy", "elastic", "scheduling policy")
		capacity = flag.Int("capacity", 0, "cluster slot count (0 = backend default)")
		rescale  = flag.Float64("rescale-gap", 0, "rescale gap in seconds (0 = default)")
		shards   = flag.Int("shards", 0, "sharded event-loop width (sim backend)")
		stream   = flag.Bool("streaming", false, "streaming mode: aggregates only")
		full     = flag.Bool("full", false, "reference full-redistribute scheduler")
		logDec   = flag.Bool("log", true, "record the decision log")
		drain    = flag.Bool("drain", false, "overlay a maintenance-drain availability trace")
		aging    = flag.Float64("aging", 0, "queue aging rate")
		preempt  = flag.Bool("preempt", false, "enable preemption")

		route          = flag.String("route", "round_robin", "federation routing policy")
		members        = flag.Int("members", 3, "federation member count")
		skew           = flag.Float64("skew", 0, "federation capacity skew")
		rebalance      = flag.Float64("rebalance", 0, "rebalance round interval in seconds (0 = off)")
		migrateRunning = flag.Bool("migrate-running", false, "let the rebalancer move running jobs")
		workers        = flag.Int("workers", 0, "member worker pool (0 = all CPUs, 1 = sequential)")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*record, *replay != "", *doDiff, *matrix} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "conftest: exactly one of -record, -replay, -diff, -matrix is required")
		flag.Usage()
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}

	switch {
	case *doDiff:
		if flag.NArg() != 2 {
			return fail(fmt.Errorf("-diff needs two stream files, got %d args", flag.NArg()))
		}
		return diffFiles(flag.Arg(0), flag.Arg(1), *window)

	case *matrix:
		return runMatrix(*artifacts, *window)

	case *replay != "":
		return replayFile(*replay, *out, *window)

	default: // -record
		p, err := core.PolicyByName(*policy)
		if err != nil {
			return fail(err)
		}
		r, err := federation.RouteByName(*route)
		if err != nil {
			return fail(err)
		}
		spec := conformance.RunSpec{
			Backend: *backend, Scenario: *scenario, Jobs: *jobs, Gap: *gap,
			Waves: *waves, Seed: *seed, Policy: p, Capacity: *capacity,
			RescaleGap: *rescale, Shards: *shards, Streaming: *stream,
			Full: *full, Log: *logDec, Drain: *drain, Aging: *aging,
			Preempt: *preempt, Route: r, Members: *members, Skew: *skew,
			RebalanceEvery: *rebalance, MigrateRunning: *migrateRunning,
			Workers: *workers,
		}
		st, err := spec.Execute()
		if err != nil {
			return fail(err)
		}
		if err := emit(st, *out); err != nil {
			return fail(err)
		}
		return 0
	}
}

// emit writes a stream to the -out path, or stdout when unset.
func emit(st *conformance.Stream, out string) error {
	if out == "" {
		return st.Save(os.Stdout)
	}
	if err := st.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("recorded %d decisions to %s\n", len(st.Decisions), out)
	return nil
}

// diffFiles loads and structurally diffs two streams.
func diffFiles(aPath, bPath string, window int) int {
	a, err := conformance.LoadFile(aPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	b, err := conformance.LoadFile(bPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	d := conformance.Compare(a, b)
	fmt.Print(d.Format(a, b, window))
	if d.Empty() {
		return 0
	}
	return 1
}

// replayFile re-executes a recorded stream's spec and diffs old vs new.
func replayFile(path, out string, window int) int {
	recorded, err := conformance.LoadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	spec, err := conformance.SpecFromMeta(recorded.Meta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	replayed, err := spec.Execute()
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	if out != "" {
		if err := replayed.SaveFile(out); err != nil {
			fmt.Fprintln(os.Stderr, "conftest:", err)
			return 2
		}
	}
	d := conformance.Compare(recorded, replayed)
	if d.Empty() {
		fmt.Printf("replay of %s reproduced the recording: %d decisions identical\n",
			path, len(recorded.Decisions))
		return 0
	}
	fmt.Printf("replay of %s DIVERGED:\n%s", path, d.Format(recorded, replayed, window))
	return 1
}

// runMatrix executes the full equivalence matrix, saving diverging streams
// under the artifacts directory.
func runMatrix(artifacts string, window int) int {
	opt := conformance.DefaultMatrixOptions()
	opt.Window = window
	fails, cases, err := conformance.RunMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conftest:", err)
		return 2
	}
	if len(fails) == 0 {
		fmt.Printf("conformance matrix: %d cases, all streams identical\n", cases)
		return 0
	}
	fmt.Printf("conformance matrix: %d of %d cases diverged\n", len(fails), cases)
	for i, f := range fails {
		fmt.Printf("\n--- %s (candidate %s) ---\n%s", f.Case, f.Candidate, f.Report)
		if artifacts == "" {
			continue
		}
		base := filepath.Join(artifacts, fmt.Sprintf("%03d-%s-%s",
			i, sanitize(f.Case), sanitize(f.Candidate)))
		if err := os.MkdirAll(artifacts, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "conftest:", err)
			return 2
		}
		if err := saveStreams(base, f.Ref, f.Got); err != nil {
			fmt.Fprintln(os.Stderr, "conftest:", err)
			return 2
		}
		fmt.Printf("streams saved to %s.{ref,got}.json\n", base)
	}
	return 1
}

// saveStreams writes a diverging pair as <base>.ref.json then
// <base>.got.json, in that fixed order. This used to range a two-entry map,
// which made the save order — and which SaveFile error surfaced first —
// vary run to run (flagged by elasticvet's nomapiter).
func saveStreams(base string, ref, got *conformance.Stream) error {
	if err := ref.SaveFile(base + ".ref.json"); err != nil {
		return err
	}
	return got.SaveFile(base + ".got.json")
}

// sanitize makes a case name filesystem-safe.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
