// Command scaling-bench measures the strong-scaling of the two evaluation
// applications on the real charm runtime (paper §4.1, Figure 4).
//
// Grid sizes are scaled down from the paper's by -scale (the goroutine
// runtime shares one machine rather than 4 EKS nodes); the scaling *shape* —
// larger problems scale better — is the reproduction target. With -scenario
// or -trace, the Jacobi grid set is derived from the job classes that
// actually appear in that workload scenario instead of the fixed Figure 4
// list, so the benchmark covers exactly the problem sizes an experiment will
// run. -parallel N runs benchmark cells concurrently (faster, but timings
// share cores — keep the default for publication-quality curves).
//
// Usage:
//
//	scaling-bench -app jacobi                    # Fig. 4a
//	scaling-bench -app leanmd                    # Fig. 4b
//	scaling-bench -app jacobi -scenario burst    # grids drawn from a scenario
//	scaling-bench -app jacobi -availability spot # replica counts drawn from a
//	                                             # capacity profile's levels
//	scaling-bench -app jacobi -parallel 4        # 4 cells at a time
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
	"elastichpc/internal/metrics"
	"elastichpc/internal/profiling"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "jacobi | leanmd")
		scale    = flag.Int("scale", 8, "divide paper problem sizes by this factor")
		iters    = flag.Int("iters", 20, "iterations to time")
		maxPE    = flag.Int("maxpes", maxReasonablePEs(), "largest replica count to test")
		scenario = flag.String("scenario", "", "derive Jacobi grids from this workload scenario (uniform | poisson | burst | diurnal | trace)")
		tracePth = flag.String("trace", "", "workload trace file for -scenario trace (implies it)")
		seed     = flag.Int64("seed", 7, "scenario generation seed")
		parallel = flag.Int("parallel", 1, "benchmark cells to run concurrently (timings get noisier above 1)")
		jsonPath = flag.String("json", "", "also write the cells as a metrics.Report (kind bench) to this path")
		availFl  = flag.String("availability", "", "derive the replica counts from this capacity profile's levels (failures | spot | drain | tides | trace)")
		availTr  = flag.String("availability-trace", "", "capacity trace file for -availability trace (implies it)")
		mttf     = flag.Float64("mttf", 0, "failures profile: mean time to failure, seconds (0 = default)")
		mttr     = flag.Float64("mttr", 0, "failures profile: mean time to repair, seconds (0 = default)")
		preempt  = flag.Int("preempt", 0, "spot profile: slots reclaimed per preemption event (0 = default)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this path on exit")
	)
	flag.Parse()
	defer profiling.Start(*cpuprofile, *memprofile)()
	if *tracePth != "" && *scenario == "" {
		*scenario = "trace"
	}
	if *availTr != "" && *availFl == "" {
		*availFl = "trace"
	}

	// The replica axis: Figure 4's power-of-two ladder, or — with a
	// capacity profile — the distinct capacity levels the cluster would
	// actually pass through, so the curve covers the replica counts an
	// availability experiment forces jobs onto.
	replicas := []int{2, 4, 8, 16, 32, 64}
	if *availFl != "" {
		profile, err := workload.AvailabilityScenario(*availFl, workload.AvailabilityOptions{
			MTTF: *mttf, MTTR: *mttr, PreemptSlots: *preempt, TracePath: *availTr,
		})
		if err != nil {
			log.Fatal(err)
		}
		levels, err := workload.AvailabilityLevels(profile, *seed, 64, 4*3600)
		if err != nil {
			log.Fatal(err)
		}
		replicas = replicas[:0]
		for _, c := range levels {
			if c >= 2 {
				replicas = append(replicas, c)
			}
		}
		if len(replicas) == 0 {
			log.Fatalf("availability profile %q yields no usable replica counts", *availFl)
		}
		fmt.Fprintf(os.Stderr, "# replica counts from availability profile %q seed %d: %v\n", *availFl, *seed, replicas)
	}
	var pes []int
	for _, p := range replicas {
		if p <= *maxPE {
			pes = append(pes, p)
		}
	}
	if len(pes) == 0 {
		log.Fatalf("no replica counts fit under -maxpes %d (had %v)", *maxPE, replicas)
	}
	if *parallel > 1 {
		fmt.Fprintf(os.Stderr, "# warning: -parallel %d shares cores between cells; timings are noisier\n", *parallel)
	}

	switch *app {
	case "jacobi":
		grids, source, err := jacobiGrids(*scenario, *tracePth, *seed, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# Fig 4a: Jacobi2D strong scaling; time per iteration (s); grids from %s\n", source)
		fmt.Println("grid,replicas,time_per_iter_s")
		type cell struct{ grid, pes int }
		var cells []cell
		for _, grid := range grids {
			for _, p := range pes {
				cells = append(cells, cell{grid, p})
			}
		}
		times := make([]float64, len(cells))
		if err := sim.RunTasks(len(cells), *parallel, func(i int) error {
			times[i] = runJacobi(cells[i].grid, cells[i].pes, *iters)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		rep := metrics.New("scaling-bench", metrics.KindBench)
		for i, c := range cells {
			fmt.Printf("%d,%d,%.6f\n", c.grid, c.pes, times[i])
			rep.Benchmarks = append(rep.Benchmarks, metrics.Benchmark{
				Name:       fmt.Sprintf("Fig4aJacobi/grid=%d/replicas=%d", c.grid, c.pes),
				Iterations: int64(*iters),
				NsPerOp:    times[i] * 1e9, // one op = one solver iteration
			})
		}
		writeReport(*jsonPath, rep)
	case "leanmd":
		if *scenario != "" {
			// Scenario job classes map to Jacobi grids; LeanMD's cell grids
			// are fixed, so a scenario selection would be silently ignored.
			log.Fatal("-scenario/-trace do not apply to -app leanmd (scenarios map to Jacobi grid sizes)")
		}
		fmt.Println("# Fig 4b: LeanMD strong scaling; time per step (s)")
		fmt.Println("cells,replicas,time_per_step_s")
		type cell struct {
			dims [3]int
			pes  int
		}
		var cells []cell
		for _, dims := range [][3]int{{4, 4, 4}, {4, 4, 8}, {4, 8, 8}} {
			for _, p := range pes {
				cells = append(cells, cell{dims, p})
			}
		}
		times := make([]float64, len(cells))
		if err := sim.RunTasks(len(cells), *parallel, func(i int) error {
			times[i] = runLeanMD(cells[i].dims, cells[i].pes, *iters)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		rep := metrics.New("scaling-bench", metrics.KindBench)
		for i, c := range cells {
			fmt.Printf("%dx%dx%d,%d,%.6f\n", c.dims[0], c.dims[1], c.dims[2], c.pes, times[i])
			rep.Benchmarks = append(rep.Benchmarks, metrics.Benchmark{
				Name:       fmt.Sprintf("Fig4bLeanMD/cells=%dx%dx%d/replicas=%d", c.dims[0], c.dims[1], c.dims[2], c.pes),
				Iterations: int64(*iters),
				NsPerOp:    times[i] * 1e9, // one op = one MD step
			})
		}
		writeReport(*jsonPath, rep)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeReport writes the metrics report when -json was given.
func writeReport(path string, rep metrics.Report) {
	if path == "" {
		return
	}
	if err := metrics.Write(path, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// jacobiGrids picks the grid sizes to benchmark: Figure 4a's fixed list, or —
// when a scenario is selected — the distinct grids of the job classes that
// workload actually submits, scaled down by scale.
func jacobiGrids(scenario, tracePath string, seed int64, scale int) ([]int, string, error) {
	if scenario == "" {
		return []int{2048 / scale, 8192 / scale, 16384 / scale}, "Fig. 4a defaults", nil
	}
	raw, source, err := workload.ScenarioGrids(scenario, tracePath, seed)
	if err != nil {
		return nil, "", err
	}
	grids := workload.MapGrids(raw, func(n int) int { return n / scale })
	if len(grids) == 0 {
		return nil, "", fmt.Errorf("scenario %q yields no usable grids at -scale %d", scenario, scale)
	}
	return grids, source, nil
}

// maxReasonablePEs caps the sweep at the hardware parallelism: goroutine PEs
// beyond physical cores stop scaling, which would distort the curve shape.
func maxReasonablePEs() int {
	n := runtime.NumCPU()
	p := 2
	for p*2 <= n {
		p *= 2
	}
	return p
}

func runJacobi(grid, pes, iters int) float64 {
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	bx, by := chareGrid(4 * pes)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	return res.TimePerIteration().Seconds()
}

func runLeanMD(cells [3]int, pes, iters int) float64 {
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	r, err := apps.NewLeanMDRunner(rt, cells[0], cells[1], cells[2], 48, 2025)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	return res.TimePerIteration().Seconds()
}

// chareGrid factors n into a near-square bx×by decomposition.
func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}
