// Command scaling-bench measures the strong-scaling of the two evaluation
// applications on the real charm runtime (paper §4.1, Figure 4).
//
// Grid sizes are scaled down from the paper's by -scale (the goroutine
// runtime shares one machine rather than 4 EKS nodes); the scaling *shape* —
// larger problems scale better — is the reproduction target.
//
// Usage:
//
//	scaling-bench -app jacobi   # Fig. 4a
//	scaling-bench -app leanmd   # Fig. 4b
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"elastichpc/internal/apps"
	"elastichpc/internal/charm"
)

func main() {
	var (
		app   = flag.String("app", "", "jacobi | leanmd")
		scale = flag.Int("scale", 8, "divide paper problem sizes by this factor")
		iters = flag.Int("iters", 20, "iterations to time")
		maxPE = flag.Int("maxpes", maxReasonablePEs(), "largest replica count to test")
	)
	flag.Parse()

	replicas := []int{2, 4, 8, 16, 32, 64}
	var pes []int
	for _, p := range replicas {
		if p <= *maxPE {
			pes = append(pes, p)
		}
	}

	switch *app {
	case "jacobi":
		fmt.Println("# Fig 4a: Jacobi2D strong scaling; time per iteration (s)")
		fmt.Println("grid,replicas,time_per_iter_s")
		for _, grid := range []int{2048 / *scale, 8192 / *scale, 16384 / *scale} {
			for _, p := range pes {
				t := runJacobi(grid, p, *iters)
				fmt.Printf("%d,%d,%.6f\n", grid, p, t)
			}
		}
	case "leanmd":
		fmt.Println("# Fig 4b: LeanMD strong scaling; time per step (s)")
		fmt.Println("cells,replicas,time_per_step_s")
		for _, cells := range [][3]int{{4, 4, 4}, {4, 4, 8}, {4, 8, 8}} {
			for _, p := range pes {
				t := runLeanMD(cells, p, *iters)
				fmt.Printf("%dx%dx%d,%d,%.6f\n", cells[0], cells[1], cells[2], p, t)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// maxReasonablePEs caps the sweep at the hardware parallelism: goroutine PEs
// beyond physical cores stop scaling, which would distort the curve shape.
func maxReasonablePEs() int {
	n := runtime.NumCPU()
	p := 2
	for p*2 <= n {
		p *= 2
	}
	return p
}

func runJacobi(grid, pes, iters int) float64 {
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	bx, by := chareGrid(4 * pes)
	r, err := apps.NewJacobiRunner(rt, grid, bx, by)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	return res.TimePerIteration().Seconds()
}

func runLeanMD(cells [3]int, pes, iters int) float64 {
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	r, err := apps.NewLeanMDRunner(rt, cells[0], cells[1], cells[2], 48, 2025)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	return res.TimePerIteration().Seconds()
}

// chareGrid factors n into a near-square bx×by decomposition.
func chareGrid(n int) (int, int) {
	bx := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			bx = f
		}
	}
	return bx, n / bx
}
