// Package elastichpc is a from-scratch reproduction of "An elastic job
// scheduler for HPC applications on the cloud" (Bhosale, Chandrasekar, Kale,
// Kokkila-Schumacher — SC Workshops '25, arXiv:2510.15147).
//
// It provides, as one coherent library:
//
//   - a Charm++-style message-driven runtime with migratable objects,
//     measurement-based load balancing, and checkpoint/restart shrink-expand
//     (internal/charm), controllable over a CCS-style socket protocol
//     (internal/ccs);
//   - the paper's two evaluation applications, Jacobi2D and LeanMD, built on
//     that runtime (internal/apps);
//   - a Kubernetes substrate (object store with watches, affinity-scoring
//     pod scheduler, kubelet, controller framework — internal/k8s) and a
//     Charm operator with the CharmJob CRD and the §3.1 rescale protocol
//     (internal/operator);
//   - the priority-based elastic scheduling policy of Figures 2–3 plus the
//     rigid-min / rigid-max / moldable baselines (internal/core);
//   - a discrete-event scheduling simulator with calibrated performance
//     models (internal/sim, internal/model) and a full-stack deterministic
//     cluster emulation on a virtual clock (internal/cluster); the simulator
//     pools its events and job records, indexes the scheduler's wait queue,
//     and offers a streaming result mode that sustains million-job
//     workloads in O(running jobs) memory;
//   - a workload-scenario engine (internal/workload) whose generators —
//     uniform, Poisson, bursty, diurnal, and trace replay — feed both the
//     simulator and the emulation, with parallel sweep harnesses over
//     scenarios, policies, and seeds;
//   - a cluster-availability engine (same package) whose capacity profiles —
//     node failure/repair, spot preemption, maintenance drains, diurnal
//     capacity tides, and trace replay — drive time-varying capacity through
//     both backends via core.Scheduler.SetCapacity, with resilience metrics
//     (goodput, work lost, preemptions survived by shrinking vs. requeued)
//     and an availability sweep axis;
//   - a federated multi-cluster meta-scheduler (internal/federation) that
//     routes one workload stream across N pluggable member clusters
//     (simulator- or emulation-backed) — round-robin, least-loaded over
//     per-member machines, availability traces, and an M/G/1 delay term,
//     priority-aware, or random-seeded — runs the members concurrently with
//     results bit-identical to sequential execution, optionally rebalances
//     the fleet in periodic rounds that checkpoint-migrate jobs off
//     backlogged or draining members, and aggregates exact fleet-wide
//     metrics (utilization over summed delivered capacity, weighted
//     response/completion, imbalance) plus the migration log;
//   - a versioned, machine-readable experiment-report schema
//     (internal/metrics) that every harness CLI emits via -json and that
//     cmd/benchreport diffs against regression thresholds — the format
//     behind CI's benchmark gate and its BENCH_BASELINE.json.
//
// This file is the stable facade: examples and external-style consumers use
// these re-exports rather than reaching into internal packages directly.
package elastichpc

import (
	"time"

	"elastichpc/internal/apps"
	"elastichpc/internal/ccs"
	"elastichpc/internal/charm"
	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/metrics"
	"elastichpc/internal/model"
	"elastichpc/internal/shm"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Scheduling policies (paper §4.3).
type (
	// Policy selects a scheduling strategy.
	Policy = core.Policy
	// Job is the scheduler's view of a malleable job.
	Job = core.Job
	// SchedulerConfig configures the policy scheduler.
	SchedulerConfig = core.Config
	// Scheduler implements the Figure 2/3 elastic policy and baselines.
	Scheduler = core.Scheduler
	// Actuator is the substrate interface the scheduler drives.
	Actuator = core.Actuator
)

// Policy values.
const (
	Elastic  = core.Elastic
	Moldable = core.Moldable
	RigidMin = core.RigidMin
	RigidMax = core.RigidMax
)

// NewScheduler creates a policy scheduler over an abstract cluster.
func NewScheduler(cfg SchedulerConfig, act Actuator, now func() time.Time) (*Scheduler, error) {
	return core.NewScheduler(cfg, act, now)
}

// AllPolicies lists the four policies in the paper's order.
func AllPolicies() []Policy { return core.AllPolicies() }

// Charm runtime (paper §2.1–2.2).
type (
	// Runtime is the Charm++-style message-driven runtime.
	Runtime = charm.Runtime
	// RuntimeConfig configures a Runtime.
	RuntimeConfig = charm.Config
	// RescaleStats is the per-phase rescale overhead breakdown.
	RescaleStats = charm.RescaleStats
	// Chare is a migratable object.
	Chare = charm.Chare
	// ShmStore is the in-memory checkpoint store.
	ShmStore = shm.Store
)

// NewRuntime creates a charm runtime with the given PE count.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return charm.New(cfg) }

// NewShmStore creates a checkpoint store with the given byte limit (0 =
// unlimited).
func NewShmStore(limit int64) *ShmStore { return shm.NewStore(limit) }

// Applications (paper §4.1).
type (
	// AppRunner drives a rescalable application's iteration loop.
	AppRunner = apps.Runner
	// RunResult is an application run's timeline and timings.
	RunResult = apps.RunResult
)

// NewJacobi2D creates an n×n Jacobi solver decomposed into bx×by chares.
func NewJacobi2D(rt *Runtime, n, bx, by int) (*AppRunner, error) {
	return apps.NewJacobiRunner(rt, n, bx, by)
}

// NewLeanMD creates a kx×ky×kz-cell Lennard-Jones MD mini-app.
func NewLeanMD(rt *Runtime, kx, ky, kz, atomsPerCell int, seed int64) (*AppRunner, error) {
	return apps.NewLeanMDRunner(rt, kx, ky, kz, atomsPerCell, seed)
}

// CCS control protocol (paper §2.2).
type (
	// CCSClient signals a running application (shrink/expand/query).
	CCSClient = ccs.Client
	// CCSOptions configures a runtime's CCS endpoint.
	CCSOptions = charm.CCSOptions
)

// DialCCS connects to an application's CCS endpoint.
func DialCCS(addr string, timeout time.Duration) (*CCSClient, error) {
	return ccs.Dial(addr, timeout)
}

// Performance models and simulation (paper §4.3.1).
type (
	// Machine holds the calibrated performance-model constants.
	Machine = model.Machine
	// JobClass identifies one of the four job size classes.
	JobClass = model.Class
	// Workload is a reproducible job-submission stream.
	Workload = sim.Workload
	// SimResult aggregates one simulated (or emulated) experiment.
	SimResult = sim.Result
	// SimConfig parameterizes a simulation.
	SimConfig = sim.Config
)

// Job size classes.
const (
	Small  = model.Small
	Medium = model.Medium
	Large  = model.Large
	XLarge = model.XLarge
)

// DefaultMachine returns the calibrated c6g.4xlarge-like machine model.
func DefaultMachine() Machine { return model.DefaultMachine() }

// RandomWorkload draws n jobs across the four classes with priorities 1–5.
func RandomWorkload(n int, gapSeconds float64, seed int64) Workload {
	return sim.RandomWorkload(n, gapSeconds, seed)
}

// SimOption customizes one Simulate call. Options compose freely and apply
// in argument order over the default configuration (64 slots, 180 s rescale
// gap, the calibrated default machine) — every former Simulate* entry point
// is a spelling of Simulate plus options.
type SimOption func(*SimConfig)

// WithRescaleGap sets the rescale gap T_rescale_gap in seconds (default
// 180, the paper's setting).
func WithRescaleGap(seconds float64) SimOption {
	return func(cfg *SimConfig) { cfg.RescaleGap = seconds }
}

// WithStreaming computes only the aggregate metrics, in O(running jobs)
// memory, so million-job workloads are practical. The result's per-job
// fields are nil; the aggregates are bit-identical to the retained mode.
func WithStreaming() SimOption {
	return func(cfg *SimConfig) { cfg.Streaming = true }
}

// WithShards shards the event loop across k goroutines by time epoch (0 or
// 1 = sequential; implies streaming). The result is bit-identical to the
// sequential run on any shard count; the speedup depends on the workload —
// epochs cut only where the cluster drains, so bursty workloads parallelize
// and a saturated backlog degrades gracefully to the sequential loop.
func WithShards(k int) SimOption {
	return func(cfg *SimConfig) {
		cfg.Streaming = true
		cfg.Shards = k
	}
}

// WithAvailability runs the workload on a time-varying cluster: the
// capacity trace drives SetCapacity events through the discrete-event loop,
// and the result carries the resilience aggregates.
func WithAvailability(tr AvailabilityTrace) SimOption {
	return func(cfg *SimConfig) { cfg.Availability = tr }
}

// WithSimConfig replaces the base configuration wholesale before the other
// options apply — the escape hatch to every sim.Config knob (capacity,
// machine model, decision logging, …) the named options don't cover.
func WithSimConfig(cfg SimConfig) SimOption {
	return func(dst *SimConfig) { *dst = cfg }
}

// Simulate runs a workload under a policy in the discrete-event simulator.
// Options select the execution mode:
//
//	Simulate(p, w)                                      // defaults
//	Simulate(p, w, WithRescaleGap(60))                  // tuned gap
//	Simulate(p, w, WithStreaming())                     // O(running) memory
//	Simulate(p, w, WithShards(8))                       // sharded + streaming
//	Simulate(p, w, WithAvailability(tr), WithStreaming()) // capacity trace
//
// Every combination is bit-identical to the legacy Simulate* entry point it
// replaces (pinned by the facade equivalence tests).
func Simulate(p Policy, w Workload, opts ...SimOption) (SimResult, error) {
	cfg := sim.DefaultConfig(p)
	for _, opt := range opts {
		opt(&cfg)
	}
	return sim.Run(cfg, w)
}

// SimulateStreaming is Simulate in streaming mode.
//
// Deprecated: Use Simulate with WithStreaming (and WithRescaleGap).
func SimulateStreaming(p Policy, w Workload, rescaleGapSeconds float64) (SimResult, error) {
	return Simulate(p, w, WithRescaleGap(rescaleGapSeconds), WithStreaming())
}

// SimulateParallel is Simulate with the event loop sharded across `shards`
// goroutines by time epoch.
//
// Deprecated: Use Simulate with WithShards (and WithRescaleGap).
func SimulateParallel(p Policy, w Workload, rescaleGapSeconds float64, shards int) (SimResult, error) {
	return Simulate(p, w, WithRescaleGap(rescaleGapSeconds), WithShards(shards))
}

// Workload scenarios (the internal/workload engine): generators produce
// reproducible workloads that drive both Simulate and Emulate, and sweeps
// fan out over a bounded worker pool.
type (
	// WorkloadGenerator produces a workload from a seed; implementations are
	// deterministic per seed.
	WorkloadGenerator = workload.Generator
	// UniformScenario is the paper's fixed-gap uniform-class baseline.
	UniformScenario = workload.Uniform
	// PoissonScenario draws exponentially distributed inter-arrivals.
	PoissonScenario = workload.Poisson
	// BurstScenario submits flash-crowd waves.
	BurstScenario = workload.Burst
	// DiurnalScenario follows a day/night arrival cycle.
	DiurnalScenario = workload.Diurnal
	// TraceScenario replays a workload saved with SaveWorkload.
	TraceScenario = workload.Trace
	// ClassMix weights the four job classes in a generator.
	ClassMix = workload.Mix
	// SweepPoint is one x-coordinate of a Figure 7/8 sweep.
	SweepPoint = sim.SweepPoint
	// ScenarioResult is one scenario's per-policy averaged metrics.
	ScenarioResult = sim.ScenarioResult
)

// DefaultScenarios returns the built-in scenario set at paper scale.
func DefaultScenarios() []WorkloadGenerator { return workload.DefaultScenarios() }

// Scenario resolves a scenario name ("uniform", "poisson", "burst",
// "diurnal", or "trace" with a trace path) to its generator.
func Scenario(name, tracePath string) (WorkloadGenerator, error) {
	return workload.Scenario(name, tracePath)
}

// ReplayWorkload wraps an existing workload as a generator so it can join
// scenario sweeps.
func ReplayWorkload(name string, w Workload) WorkloadGenerator {
	return workload.Replay(name, w)
}

// SaveWorkload writes a workload to path — JSON, or the CSV trace format
// when the path ends in ".csv".
func SaveWorkload(path string, w Workload, comment string) error {
	return workload.SaveFile(path, w, comment)
}

// LoadWorkload reads a workload saved with SaveWorkload.
func LoadWorkload(path string) (Workload, error) { return workload.LoadFile(path) }

// SubmissionGapSweep runs the Figure 7 sweep on a bounded worker pool;
// workers <= 0 uses every CPU, workers == 1 is the sequential reference path
// (results are bit-identical either way).
func SubmissionGapSweep(gaps []float64, jobs, seeds int, rescaleGapSeconds float64, workers int) ([]SweepPoint, error) {
	return sim.SubmissionGapSweepWorkers(gaps, jobs, seeds, rescaleGapSeconds, workers)
}

// RescaleGapSweep runs the Figure 8 sweep on a bounded worker pool.
func RescaleGapSweep(rescaleGaps []float64, jobs, seeds int, submissionGapSeconds float64, workers int) ([]SweepPoint, error) {
	return sim.RescaleGapSweepWorkers(rescaleGaps, jobs, seeds, submissionGapSeconds, workers)
}

// ScenarioSweep averages every scenario under every policy across seeds on a
// bounded worker pool.
func ScenarioSweep(gens []WorkloadGenerator, seeds int, rescaleGapSeconds float64, workers int) ([]ScenarioResult, error) {
	return sim.ScenarioSweep(gens, seeds, rescaleGapSeconds, workers)
}

// EmulateScenario generates one seed of a scenario and runs it through the
// full k8s+operator emulation.
func EmulateScenario(cfg ClusterConfig, g WorkloadGenerator, seed int64) (SimResult, error) {
	return cluster.RunGenerator(cfg, g, seed)
}

// Cluster availability (the internal/workload capacity engine): profiles
// generate reproducible capacity timelines that drive availability events
// through the simulator and the emulation alike.
type (
	// AvailabilityProfile generates a capacity timeline from a seed.
	AvailabilityProfile = workload.AvailabilityProfile
	// AvailabilityTrace is a reproducible capacity timeline.
	AvailabilityTrace = workload.AvailabilityTrace
	// CapacityEvent sets the total slot capacity at an instant.
	CapacityEvent = workload.CapacityEvent
	// AvailabilityOptions tunes the built-in profiles from flag values.
	AvailabilityOptions = workload.AvailabilityOptions
	// FailureRepairProfile models node crashes and repairs (MTTF/MTTR).
	FailureRepairProfile = workload.FailureRepair
	// SpotPreemptionProfile models Poisson spot-instance reclaims.
	SpotPreemptionProfile = workload.SpotPreemption
	// MaintenanceDrainProfile models planned maintenance windows.
	MaintenanceDrainProfile = workload.MaintenanceDrain
	// DiurnalCapacityProfile models time-of-day capacity tides.
	DiurnalCapacityProfile = workload.DiurnalCapacity
	// CapacityStats counts a scheduler's forced-reclaim actions.
	CapacityStats = core.CapacityStats
)

// DefaultAvailabilityProfiles returns the built-in capacity profiles.
func DefaultAvailabilityProfiles() []AvailabilityProfile {
	return workload.DefaultAvailabilityProfiles()
}

// AvailabilityScenario resolves an availability profile name ("failures",
// "spot", "drain", "tides", or "trace" with a path in opts).
func AvailabilityScenario(name string, opts AvailabilityOptions) (AvailabilityProfile, error) {
	return workload.AvailabilityScenario(name, opts)
}

// SaveAvailabilityTrace writes a capacity trace to path — JSON, or the CSV
// format when the path ends in ".csv".
func SaveAvailabilityTrace(path string, tr AvailabilityTrace, comment string) error {
	return workload.SaveAvailabilityFile(path, tr, comment)
}

// LoadAvailabilityTrace reads a capacity trace saved with
// SaveAvailabilityTrace.
func LoadAvailabilityTrace(path string) (AvailabilityTrace, error) {
	return workload.LoadAvailabilityFile(path)
}

// ReplayAvailabilityTrace wraps an existing capacity trace as a profile so
// it can join availability sweeps.
func ReplayAvailabilityTrace(name string, tr AvailabilityTrace) AvailabilityProfile {
	return workload.ReplayAvailability(name, tr)
}

// SimulateAvailability runs a workload under a policy on a time-varying
// cluster.
//
// Deprecated: Use Simulate with WithAvailability (and WithRescaleGap).
func SimulateAvailability(p Policy, w Workload, rescaleGapSeconds float64, tr AvailabilityTrace) (SimResult, error) {
	return Simulate(p, w, WithRescaleGap(rescaleGapSeconds), WithAvailability(tr))
}

// SimulateAvailabilityStreaming is SimulateAvailability in O(running jobs)
// memory.
//
// Deprecated: Use Simulate with WithAvailability and WithStreaming.
func SimulateAvailabilityStreaming(p Policy, w Workload, rescaleGapSeconds float64, tr AvailabilityTrace) (SimResult, error) {
	return Simulate(p, w, WithRescaleGap(rescaleGapSeconds), WithAvailability(tr), WithStreaming())
}

// AvailabilitySweep averages one workload scenario under every availability
// profile × policy across seeds on a bounded worker pool.
func AvailabilitySweep(profiles []AvailabilityProfile, gen WorkloadGenerator, seeds int, rescaleGapSeconds float64, workers int) ([]ScenarioResult, error) {
	return sim.AvailabilitySweep(profiles, gen, seeds, rescaleGapSeconds, workers)
}

// EmulateAvailability generates one seed of a workload scenario and an
// availability profile and runs both through the full k8s+operator
// emulation — the cluster-backend twin of SimulateAvailability.
func EmulateAvailability(cfg ClusterConfig, g WorkloadGenerator, p AvailabilityProfile, seed int64) (SimResult, error) {
	return cluster.RunAvailability(cfg, g, p, seed)
}

// Federated multi-cluster scheduling (internal/federation): a meta-scheduler
// routes one workload across N member clusters — each an independent
// simulator — and aggregates exact fleet-wide metrics.
type (
	// FederationConfig parameterizes a federation run (members, route,
	// worker pool).
	FederationConfig = federation.Config
	// FederationResult is the aggregated fleet outcome plus the per-member
	// results.
	FederationResult = federation.Result
	// FederationRoute selects the job-routing policy across members.
	FederationRoute = federation.Route
	// FederationMember is a pluggable federation backend: the router reads
	// its hardware (capacity, machine model, availability trace) and the
	// fleet runs its sub-workload through it.
	FederationMember = federation.Member
	// FederationRebalance configures the fleet-level checkpoint-migrating
	// rebalancer; the zero value disables it.
	FederationRebalance = federation.RebalanceConfig
	// FederationMigration is one job move in the rebalancer's decision log.
	FederationMigration = federation.Migration
)

// SimFederationMember backs a federation member with the discrete-event
// simulator — the default backend.
func SimFederationMember(cfg SimConfig) FederationMember {
	return federation.NewSimMember(cfg)
}

// ClusterFederationMember backs a federation member with the full
// k8s+operator cluster emulation, so a fleet can mix simulated and emulated
// clusters (rebalancing requires simulator-backed members).
func ClusterFederationMember(cfg ClusterConfig) FederationMember {
	return federation.NewClusterMember(cfg)
}

// Federation routing policies.
const (
	// RouteRoundRobin deals jobs to members in submission order.
	RouteRoundRobin = federation.RoundRobin
	// RouteLeastLoaded routes each job to the member with the lowest queued
	// min-PE demand per slot.
	RouteLeastLoaded = federation.LeastLoaded
	// RoutePriority sends high-priority jobs least-loaded, the rest
	// round-robin.
	RoutePriority = federation.PriorityAware
	// RouteRandom picks members uniformly from a seed.
	RouteRandom = federation.Random
)

// AllFederationRoutes lists the routing policies in presentation order.
func AllFederationRoutes() []FederationRoute { return federation.AllRoutes() }

// FederationRouteByName resolves a route name ("round_robin", "least_loaded",
// "priority", "random").
func FederationRouteByName(name string) (FederationRoute, error) {
	return federation.RouteByName(name)
}

// UniformFederation builds n identical member configurations from one base.
func UniformFederation(base SimConfig, n int) []SimConfig {
	return federation.Uniform(base, n)
}

// SkewedFederation builds n members whose capacities ramp linearly: member i
// gets round(base.Capacity × (1 + skew·i)) slots.
func SkewedFederation(base SimConfig, n int, skew float64) []SimConfig {
	return federation.Skewed(base, n, skew)
}

// Federate routes a workload across the member clusters and simulates every
// member on a bounded worker pool; parallel execution is bit-identical to
// cfg.Workers == 1.
func Federate(cfg FederationConfig, w Workload) (FederationResult, error) {
	return federation.Run(cfg, w)
}

// FederationSweep averages every given routing policy under every scheduling
// policy across seeds of a workload scenario on a bounded worker pool — the
// federation sweep axis. skew ramps member capacities (0 = homogeneous).
func FederationSweep(routes []FederationRoute, gen WorkloadGenerator, clusters, seeds int, rescaleGapSeconds, skew float64, workers int) ([]ScenarioResult, error) {
	return federation.Sweep(routes, gen, clusters, seeds, rescaleGapSeconds, skew, workers)
}

// Experiment reports (internal/metrics): the versioned machine-readable
// schema every harness emits and cmd/benchreport diffs.
type (
	// MetricsReport is the top-level versioned experiment report.
	MetricsReport = metrics.Report
	// MetricsRun is one experiment outcome (the paper's four metrics).
	MetricsRun = metrics.Run
	// MetricsSweep is one parameter sweep inside a report.
	MetricsSweep = metrics.Sweep
	// MetricsBenchmark is one parsed `go test -bench` result.
	MetricsBenchmark = metrics.Benchmark
	// MetricsKind classifies a report: run, sweep, or bench.
	MetricsKind = metrics.Kind
)

// NewMetricsReport starts a report of the given kind.
func NewMetricsReport(tool string, kind MetricsKind) MetricsReport { return metrics.New(tool, kind) }

// WriteMetricsReport validates and writes a report as indented JSON.
func WriteMetricsReport(path string, r MetricsReport) error { return metrics.Write(path, r) }

// ReadMetricsReport loads and validates a report.
func ReadMetricsReport(path string) (MetricsReport, error) { return metrics.Read(path) }

// ResultToMetricsRun converts a simulation or emulation result to its
// report form.
func ResultToMetricsRun(name string, res SimResult) MetricsRun {
	return metrics.FromResult(name, res)
}

// Cluster emulation (paper §4.3.2).
type (
	// ClusterConfig parameterizes the emulated Kubernetes cluster.
	ClusterConfig = cluster.Config
	// Cluster is a deterministic full-stack cluster emulation.
	Cluster = cluster.Cluster
)

// DefaultClusterConfig matches the paper's 4-node, 64-vCPU EKS cluster.
func DefaultClusterConfig(p Policy) ClusterConfig { return cluster.DefaultConfig(p) }

// NewCluster builds an emulated cluster with its control plane.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Emulate runs a workload through the full k8s+operator emulation.
func Emulate(cfg ClusterConfig, w Workload) (SimResult, error) {
	return cluster.RunExperiment(cfg, w)
}
