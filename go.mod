module elastichpc

go 1.24
