package elastichpc_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"elastichpc"
)

func TestFacadeAvailabilityEngine(t *testing.T) {
	profiles := elastichpc.DefaultAvailabilityProfiles()
	if len(profiles) < 4 {
		t.Fatalf("%d default availability profiles", len(profiles))
	}
	for _, p := range profiles {
		resolved, err := elastichpc.AvailabilityScenario(p.Name(), elastichpc.AvailabilityOptions{})
		if err != nil {
			t.Fatalf("AvailabilityScenario(%q): %v", p.Name(), err)
		}
		if resolved.Name() != p.Name() {
			t.Errorf("AvailabilityScenario(%q) resolved to %q", p.Name(), resolved.Name())
		}
	}

	// A profile drives the simulator through the facade and the resilience
	// aggregates surface on the result.
	gen := elastichpc.UniformScenario{Jobs: 6, Gap: 90}
	w, err := gen.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	prof := elastichpc.SpotPreemptionProfile{MeanGap: 200, Slots: 16, MeanOutage: 150}
	tr, err := prof.Events(2, 64, w.Span()+4*3600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := elastichpc.Simulate(elastichpc.Elastic, w,
		elastichpc.WithRescaleGap(180), elastichpc.WithAvailability(tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents == 0 {
		t.Error("no capacity events applied")
	}
	stream, err := elastichpc.Simulate(elastichpc.Elastic, w,
		elastichpc.WithRescaleGap(180), elastichpc.WithAvailability(tr), elastichpc.WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	if stream.GoodputFrac != res.GoodputFrac || stream.WorkLostSec != res.WorkLostSec {
		t.Errorf("streaming aggregates diverged: %+v vs %+v", stream, res)
	}

	// Capacity traces round-trip through the facade persistence.
	path := filepath.Join(t.TempDir(), "cap.csv")
	if err := elastichpc.SaveAvailabilityTrace(path, tr, "facade test"); err != nil {
		t.Fatal(err)
	}
	back, err := elastichpc.LoadAvailabilityTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Error("capacity trace round trip diverged")
	}

	// The same profile runs through the emulation backend.
	cfg := elastichpc.DefaultClusterConfig(elastichpc.Elastic)
	cfg.CheckpointPeriod = 1000
	actual, err := elastichpc.EmulateAvailability(cfg, gen, elastichpc.ReplayAvailabilityTrace("spot", tr), 2)
	if err != nil {
		t.Fatal(err)
	}
	if actual.CapacityEvents == 0 {
		t.Error("emulation applied no capacity events")
	}

	// And joins the availability sweep axis.
	srs, err := elastichpc.AvailabilitySweep(
		[]elastichpc.AvailabilityProfile{elastichpc.MaintenanceDrainProfile{Every: 600, Duration: 200, Keep: 32}},
		gen, 2, 180, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(srs) != 1 || srs[0].Name != "drain" {
		t.Fatalf("sweep shape: %+v", srs)
	}
}
