package elastichpc_test

import (
	"reflect"
	"testing"

	"elastichpc"
)

// TestSimOptionsEquivalence pins the facade's API contract: every legacy
// Simulate* entry point must produce a result bit-identical to the unified
// Simulate call with the corresponding options. The deprecated wrappers stay
// until the next major revision precisely because this equivalence lets
// callers migrate mechanically.
func TestSimOptionsEquivalence(t *testing.T) {
	w := elastichpc.RandomWorkload(48, 45, 7)
	prof := elastichpc.SpotPreemptionProfile{MeanGap: 400, Slots: 24, MeanOutage: 200}
	tr, err := prof.Events(7, 64, w.Span()+4*3600)
	if err != nil {
		t.Fatal(err)
	}
	const gap = 120.0
	p := elastichpc.Elastic

	cases := []struct {
		name   string
		legacy func() (elastichpc.SimResult, error)
		opts   []elastichpc.SimOption
	}{
		{
			name: "streaming",
			legacy: func() (elastichpc.SimResult, error) {
				//lint:ignore SA1019 the test pins the deprecated wrapper against its replacement
				return elastichpc.SimulateStreaming(p, w, gap)
			},
			opts: []elastichpc.SimOption{elastichpc.WithRescaleGap(gap), elastichpc.WithStreaming()},
		},
		{
			name: "parallel",
			legacy: func() (elastichpc.SimResult, error) {
				//lint:ignore SA1019 the test pins the deprecated wrapper against its replacement
				return elastichpc.SimulateParallel(p, w, gap, 4)
			},
			opts: []elastichpc.SimOption{elastichpc.WithRescaleGap(gap), elastichpc.WithShards(4)},
		},
		{
			name: "availability",
			legacy: func() (elastichpc.SimResult, error) {
				//lint:ignore SA1019 the test pins the deprecated wrapper against its replacement
				return elastichpc.SimulateAvailability(p, w, gap, tr)
			},
			opts: []elastichpc.SimOption{elastichpc.WithRescaleGap(gap), elastichpc.WithAvailability(tr)},
		},
		{
			name: "availability streaming",
			legacy: func() (elastichpc.SimResult, error) {
				//lint:ignore SA1019 the test pins the deprecated wrapper against its replacement
				return elastichpc.SimulateAvailabilityStreaming(p, w, gap, tr)
			},
			opts: []elastichpc.SimOption{
				elastichpc.WithRescaleGap(gap), elastichpc.WithAvailability(tr), elastichpc.WithStreaming(),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			got, err := elastichpc.Simulate(p, w, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("options path diverged from the legacy entry point:\nlegacy:  %+v\noptions: %+v", want, got)
			}
		})
	}
}

// TestSimOptionsCompose checks the option mechanics themselves: options
// apply in order over the default configuration, and WithSimConfig replaces
// the base before later options land on top.
func TestSimOptionsCompose(t *testing.T) {
	w := elastichpc.RandomWorkload(16, 60, 3)
	base, err := elastichpc.Simulate(elastichpc.Elastic, w, elastichpc.WithRescaleGap(60))
	if err != nil {
		t.Fatal(err)
	}
	// Later options override earlier ones.
	overridden, err := elastichpc.Simulate(elastichpc.Elastic, w,
		elastichpc.WithRescaleGap(9999), elastichpc.WithRescaleGap(60))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, overridden) {
		t.Error("option ordering not last-wins")
	}
	// WithSimConfig replaces the base wholesale.
	cfg := elastichpc.SimConfig{
		Policy: elastichpc.Elastic, Capacity: 64,
		RescaleGap: 60, Machine: elastichpc.DefaultMachine(),
	}
	explicit, err := elastichpc.Simulate(elastichpc.Elastic, w, elastichpc.WithSimConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Error("WithSimConfig diverged from the equivalent named options")
	}
}

// TestFederationRebalanceFacade drives the federation v2 surface end to end
// through the facade: pluggable members, the rebalancer, and the migration
// log re-exports.
func TestFederationRebalanceFacade(t *testing.T) {
	w := elastichpc.RandomWorkload(48, 30, 5)
	small := elastichpc.SimConfig{
		Policy: elastichpc.Elastic, Capacity: 16,
		RescaleGap: 180, Machine: elastichpc.DefaultMachine(),
	}
	big := small
	big.Capacity = 64
	cfg := elastichpc.FederationConfig{
		Backends: []elastichpc.FederationMember{
			elastichpc.SimFederationMember(small),
			elastichpc.SimFederationMember(big),
		},
		Route:     elastichpc.RouteRoundRobin,
		Workers:   1,
		Rebalance: elastichpc.FederationRebalance{Every: 300},
	}
	res, err := elastichpc.Federate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebalanceRounds == 0 {
		t.Error("no rebalance rounds through the facade")
	}
	total := 0
	for _, n := range res.JobsPerMember {
		total += n
	}
	if total != 48 {
		t.Errorf("%d of 48 jobs completed", total)
	}
	var _ []elastichpc.FederationMigration = res.Migrations
}
