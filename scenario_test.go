package elastichpc_test

import (
	"reflect"
	"testing"

	"elastichpc"
)

func TestFacadeScenarioEngine(t *testing.T) {
	gens := elastichpc.DefaultScenarios()
	if len(gens) < 4 {
		t.Fatalf("%d default scenarios", len(gens))
	}
	for _, g := range gens {
		resolved, err := elastichpc.Scenario(g.Name(), "")
		if err != nil {
			t.Fatalf("Scenario(%q): %v", g.Name(), err)
		}
		if resolved.Name() != g.Name() {
			t.Errorf("Scenario(%q) resolved to %q", g.Name(), resolved.Name())
		}
	}

	// A scenario drives both backends through the facade.
	g := elastichpc.PoissonScenario{Jobs: 4, MeanGap: 60}
	w, err := g.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := elastichpc.Simulate(elastichpc.Elastic, w, elastichpc.WithRescaleGap(180))
	if err != nil {
		t.Fatal(err)
	}
	actRes, err := elastichpc.EmulateScenario(elastichpc.DefaultClusterConfig(elastichpc.Elastic), g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.TotalTime <= 0 || actRes.TotalTime <= 0 {
		t.Errorf("degenerate results: sim %g, actual %g", simRes.TotalTime, actRes.TotalTime)
	}

	// Save/Load round-trip through the facade.
	path := t.TempDir() + "/wl.csv"
	if err := elastichpc.SaveWorkload(path, w, "facade test"); err != nil {
		t.Fatal(err)
	}
	got, err := elastichpc.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Error("workload round trip through facade mismatched")
	}

	// Parallel scenario sweep matches the sequential reference.
	small := []elastichpc.WorkloadGenerator{
		elastichpc.UniformScenario{Jobs: 4, Gap: 60},
		elastichpc.ReplayWorkload("fixed", w),
	}
	seq, err := elastichpc.ScenarioSweep(small, 2, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := elastichpc.ScenarioSweep(small, 2, 180, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("facade scenario sweep diverges under parallel execution")
	}
}
