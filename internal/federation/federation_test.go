package federation

import (
	"math"
	"reflect"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

func testWorkload(t *testing.T, jobs int) sim.Workload {
	t.Helper()
	w, err := (workload.Burst{Waves: jobs / 16, PerWave: 16, WaveGap: 1200}).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func baseConfig() sim.Config {
	return sim.DefaultConfig(core.Elastic)
}

func TestPartitionCoversEveryJobExactlyOnce(t *testing.T) {
	w := testWorkload(t, 64)
	for _, route := range AllRoutes() {
		cfg := Config{Members: Uniform(baseConfig(), 3), Route: route, RouteSeed: 9, HighPriority: 4}
		parts, assign, err := Partition(cfg, w)
		if err != nil {
			t.Fatalf("%v: %v", route, err)
		}
		if len(assign) != len(w.Jobs) {
			t.Fatalf("%v: %d assignments for %d jobs", route, len(assign), len(w.Jobs))
		}
		total := 0
		seen := map[string]int{}
		for mi, p := range parts {
			total += len(p.Jobs)
			last := math.Inf(-1)
			for _, j := range p.Jobs {
				seen[j.ID]++
				if j.SubmitAt < last {
					t.Errorf("%v: member %d out of submission order", route, mi)
				}
				last = j.SubmitAt
			}
		}
		if total != len(w.Jobs) {
			t.Errorf("%v: %d of %d jobs partitioned", route, total, len(w.Jobs))
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("%v: job %s routed %d times", route, id, n)
			}
		}
		// assign agrees with the parts.
		for wi, js := range w.Jobs {
			found := false
			for _, j := range parts[assign[wi]].Jobs {
				if j.ID == js.ID {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: job %s not in its assigned member %d", route, js.ID, assign[wi])
			}
		}
	}
}

func TestPartitionIsDeterministic(t *testing.T) {
	w := testWorkload(t, 64)
	for _, route := range AllRoutes() {
		cfg := Config{Members: Uniform(baseConfig(), 4), Route: route, RouteSeed: 5, HighPriority: 4}
		_, a1, err := Partition(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		_, a2, err := Partition(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%v: two partitions of the same workload differ", route)
		}
	}
}

func TestRoundRobinDealsEvenly(t *testing.T) {
	w := testWorkload(t, 64)
	parts, _, err := Partition(Config{Members: Uniform(baseConfig(), 4), Route: RoundRobin}, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if len(p.Jobs) != 16 {
			t.Errorf("member %d got %d of 64 jobs", i, len(p.Jobs))
		}
	}
}

func TestPriorityAwareSendsHighPriorityLeastLoaded(t *testing.T) {
	// Two members, one pre-loaded: a burst of low-priority jobs lands
	// round-robin, then a high-priority job must go to the emptier member.
	w := sim.Workload{}
	for i := 0; i < 2; i++ {
		w.Jobs = append(w.Jobs, workload.JobSpec{
			ID: string(rune('a' + i)), Class: model.XLarge, Priority: 1, SubmitAt: float64(i),
		})
	}
	w.Jobs = append(w.Jobs, workload.JobSpec{ID: "hot", Class: model.Small, Priority: 5, SubmitAt: 2})
	// Member 1 has twice the slots: after the round-robin deal both members
	// hold one XLarge (16 min-PE), so member 1's demand per slot is half.
	cfg := Config{Members: Skewed(baseConfig(), 2, 1.0), Route: PriorityAware, HighPriority: 4}
	_, assign, err := Partition(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// The round-robin cursor points at member 0 next; the high-priority job
	// must ignore it and take the least-contended member 1.
	if assign[2] != 1 {
		t.Errorf("hot job routed to member %d, want least-loaded member 1", assign[2])
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	w := testWorkload(t, 96)
	for _, route := range AllRoutes() {
		seq, err := Run(Config{Members: Uniform(baseConfig(), 4), Route: route, RouteSeed: 2, Workers: 1}, w)
		if err != nil {
			t.Fatalf("%v sequential: %v", route, err)
		}
		par, err := Run(Config{Members: Uniform(baseConfig(), 4), Route: route, RouteSeed: 2, Workers: 0}, w)
		if err != nil {
			t.Fatalf("%v parallel: %v", route, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%v: parallel federation diverged from sequential", route)
		}
	}
}

func TestRunAggregatesMatchMembers(t *testing.T) {
	w := testWorkload(t, 64)
	res, err := Run(Config{Members: Uniform(baseConfig(), 4), Route: RoundRobin, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 {
		t.Fatalf("%d member results", len(res.Members))
	}
	jobs := 0
	for i, n := range res.JobsPerMember {
		jobs += n
		if got := len(res.Members[i].Jobs); got != n {
			t.Errorf("member %d: %d jobs in result, router sent %d", i, got, n)
		}
	}
	if jobs != len(w.Jobs) {
		t.Errorf("%d of %d jobs across members", jobs, len(w.Jobs))
	}
	// The fleet window spans every member window.
	for i, m := range res.Members {
		if m.TotalTime-1e-9 > res.TotalTime {
			t.Errorf("member %d window %g exceeds fleet window %g", i, m.TotalTime, res.TotalTime)
		}
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("fleet utilization %g", res.Utilization)
	}
	if res.Imbalance < 0 || res.Imbalance > 1 {
		t.Errorf("imbalance %g", res.Imbalance)
	}
	// Exact weighted means: recompute from the members' weight sums.
	var wSum, wResp float64
	for _, m := range res.Members {
		wSum += m.WeightSum
		wResp += m.WeightSum * m.WeightedResponse
	}
	if math.Abs(res.WeightedResponse-wResp/wSum) > 1e-9 {
		t.Errorf("fleet weighted response %g, members say %g", res.WeightedResponse, wResp/wSum)
	}
}

func TestSingleMemberFederationMatchesPlainSim(t *testing.T) {
	// A 1-cluster federation is the degenerate case: the fleet metrics must
	// equal the plain simulator's result for the same workload.
	w := testWorkload(t, 32)
	plain, err := sim.RunPolicy(core.Elastic, w, 180)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := Run(Config{Members: Uniform(baseConfig(), 1), Route: LeastLoaded, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if fed.TotalTime != plain.TotalTime || fed.Utilization != plain.Utilization ||
		fed.WeightedResponse != plain.WeightedResponse || fed.WeightedCompletion != plain.WeightedCompletion {
		t.Errorf("1-member fleet diverged from plain sim:\nfleet: %+v\nplain: %+v", fed, plain)
	}
	if fed.Imbalance != 0 {
		t.Errorf("1-member imbalance %g", fed.Imbalance)
	}
}

func TestLeastLoadedBeatsRoundRobinOnSkewedArrivals(t *testing.T) {
	// All jobs arrive nearly at once: round-robin deals them blindly while
	// least-loaded levels the queued demand, so its imbalance must not be
	// worse.
	w, err := (workload.Burst{Waves: 1, PerWave: 64, WaveGap: 600}).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(Config{Members: Skewed(baseConfig(), 4, 0.5), Route: RoundRobin, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Run(Config{Members: Skewed(baseConfig(), 4, 0.5), Route: LeastLoaded, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if ll.Imbalance > rr.Imbalance+1e-9 {
		t.Errorf("least-loaded imbalance %g worse than round-robin %g on a skewed fleet", ll.Imbalance, rr.Imbalance)
	}
}

// TestAggregationAccountsTrailingAvailability pins the fleet-window
// extension against skipped trace events: a member whose work drains early
// never applies later capacity events in its own sim, but the fleet's
// delivered-capacity denominator must still honor them — an idle member that
// would have been drained to 1 slot cannot be charged as 64 idle slots.
func TestAggregationAccountsTrailingAvailability(t *testing.T) {
	w := sim.Workload{Jobs: []workload.JobSpec{
		{ID: "long", Class: model.XLarge, Priority: 3, SubmitAt: 0}, // → member 0
		{ID: "short", Class: model.Small, Priority: 3, SubmitAt: 1}, // → member 1
	}}
	members := Uniform(baseConfig(), 2)
	plain, err := Run(Config{Members: members, Route: RoundRobin, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	short := plain.Members[1].LastEnd
	if short+100 >= plain.Members[0].LastEnd {
		t.Fatalf("scenario broken: member 1 ends at %g, member 0 at %g", short, plain.Members[0].LastEnd)
	}
	// Drain member 1 to a single slot after its job is done; its sim skips
	// the event, so only the aggregation can account for it.
	drained := Uniform(baseConfig(), 2)
	drained[1].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: short + 100, Capacity: 1},
	}}
	fed, err := Run(Config{Members: drained, Route: RoundRobin, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Members[1].CapacityEvents != 0 {
		t.Fatalf("trailing event was applied (%d); the test needs it skipped", fed.Members[1].CapacityEvents)
	}
	if fed.Utilization <= plain.Utilization {
		t.Errorf("drained fleet utilization %g not above undrained %g — trailing trace events ignored in the denominator",
			fed.Utilization, plain.Utilization)
	}
}

func TestSkewedCapacities(t *testing.T) {
	members := Skewed(baseConfig(), 4, 0.5)
	want := []int{64, 96, 128, 160}
	for i, m := range members {
		if m.Capacity != want[i] {
			t.Errorf("member %d capacity %d, want %d", i, m.Capacity, want[i])
		}
	}
}

func TestRouteByName(t *testing.T) {
	for _, r := range AllRoutes() {
		got, err := RouteByName(r.String())
		if err != nil || got != r {
			t.Errorf("RouteByName(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := RouteByName("teleport"); err == nil {
		t.Error("accepted unknown route")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	w := testWorkload(t, 16)
	if _, err := Run(Config{}, w); err == nil {
		t.Error("accepted empty member list")
	}
	bad := Uniform(baseConfig(), 2)
	bad[1].Capacity = 0
	if _, err := Run(Config{Members: bad}, w); err == nil {
		t.Error("accepted zero-capacity member")
	}
}

func TestSweepShapesAndDeterminism(t *testing.T) {
	gen := workload.Uniform{Jobs: 12, Gap: 90}
	routes := []Route{RoundRobin, LeastLoaded}
	seq, err := Sweep(routes, gen, 2, 2, 180, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(routes, gen, 2, 2, 180, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel federation sweep diverged from sequential")
	}
	if len(seq) != len(routes) {
		t.Fatalf("%d sweep rows", len(seq))
	}
	for i, sr := range seq {
		if sr.Name != routes[i].String() {
			t.Errorf("row %d named %q", i, sr.Name)
		}
		if len(sr.ByPolicy) != len(core.AllPolicies()) {
			t.Errorf("row %d has %d policies", i, len(sr.ByPolicy))
		}
		for p, avg := range sr.ByPolicy {
			if avg.Runs != 2 || avg.TotalTime <= 0 {
				t.Errorf("row %d policy %v: %+v", i, p, avg)
			}
			// The routing-quality metric must survive the averaging: a
			// skewed 2-member fleet is never perfectly balanced.
			if avg.Imbalance <= 0 || avg.Imbalance > 1 {
				t.Errorf("row %d policy %v imbalance %g", i, p, avg.Imbalance)
			}
		}
	}
}

// TestShardedMembersEquivalence pins the federation's side of the sharded
// execution contract: a fleet whose members run their event loops sharded
// (sim.Config.Shards) produces a federation Result bit-identical to the same
// fleet running sequentially, under every routing policy, both with the
// member pool sequential and parallel. The burst workload is dealt so every
// member sees drained inter-wave gaps — real multi-epoch plans, not just the
// planner's sequential fallback.
func TestShardedMembersEquivalence(t *testing.T) {
	w, err := (workload.Burst{Waves: 6, PerWave: 48, WaveGap: 9000}).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range AllRoutes() {
		t.Run(route.String(), func(t *testing.T) {
			run := func(shards, workers int) Result {
				base := baseConfig()
				base.Shards = shards
				res, err := Run(Config{
					Members:   Uniform(base, 3),
					Route:     route,
					RouteSeed: 9,
					Workers:   workers,
				}, w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := run(0, 1)
			for _, workers := range []int{1, 0} {
				if par := run(4, workers); !reflect.DeepEqual(seq, par) {
					t.Fatalf("sharded members diverge (workers=%d):\nsequential: %+v\nsharded:    %+v",
						workers, seq, par)
				}
			}
		})
	}
}
