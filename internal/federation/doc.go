// Package federation is the multi-cluster meta-scheduler: it routes one
// workload.Workload across N member clusters — each an independent
// discrete-event simulator with its own capacity and availability trace —
// and aggregates the per-cluster results into fleet-wide metrics.
//
// Routing is a deterministic partitioning pass over the workload in
// submission order (round-robin, least-loaded by queued min-PE demand,
// priority-aware, or random-seeded), after which the member simulations are
// completely independent. That independence is what makes parallel member
// execution on sim.RunTasks bit-identical to sequential execution: the
// partition never depends on member results, each member run is a pure
// function of its sub-workload, and the aggregation always folds members in
// index order.
//
// Aggregation works on integrals, not ratios: member results carry the
// utilization numerator and denominator (sim.Result.UsedSlotSec and
// DeliveredSlotSec) and the priority-weight sum behind their weighted means,
// so the fleet utilization and fleet weighted response/completion are exact
// fleet-wide values, not means of per-member means.
package federation
