package federation

import (
	"fmt"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Sweep runs every given routing policy under every scheduling policy
// across `seeds` seeds of the workload generator on a bounded worker pool
// and averages the fleet metrics per (route, policy) — the federation sweep
// axis next to the Figure 7/8, scenario, and availability sweeps. Each
// member cluster keeps the paper's base configuration at the given rescale
// gap, with capacities ramped by skew (0 = homogeneous, see Skewed);
// clusters < 1 is an error. Results are ordered like routes, reusing
// sim.ScenarioResult with the route name as the scenario label, so the
// metrics converters and CLI printers work unchanged.
//
// Cells run one per (route, policy, seed) on the outer pool; each cell's
// federation runs its members sequentially (Workers = 1), so the sweep's
// parallelism lives in one place and cell results stay bit-identical to a
// fully sequential sweep.
func Sweep(routes []Route, gen workload.Generator, clusters, seeds int, rescaleGap, skew float64, workers int) ([]sim.ScenarioResult, error) {
	if clusters < 1 {
		return nil, fmt.Errorf("federation: sweep needs clusters >= 1, got %d", clusters)
	}
	if seeds < 1 {
		return nil, fmt.Errorf("federation: sweep needs seeds >= 1, got %d", seeds)
	}
	policies := core.AllPolicies()
	perRoute := len(policies) * seeds
	cells := make([]Result, len(routes)*perRoute)
	err := sim.RunTasks(len(cells), workers, func(i int) error {
		route := routes[i/perRoute]
		p := policies[(i%perRoute)/seeds]
		seed := int64(i % seeds)
		w, err := gen.Generate(seed)
		if err != nil {
			return fmt.Errorf("route %v policy %v seed %d: %w", route, p, seed, err)
		}
		base := sim.DefaultConfig(p)
		base.RescaleGap = rescaleGap
		res, err := Run(Config{
			Members:   Skewed(base, clusters, skew),
			Route:     route,
			RouteSeed: seed,
			Workers:   1,
		}, w)
		if err != nil {
			return fmt.Errorf("route %v policy %v seed %d: %w", route, p, seed, err)
		}
		cells[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]sim.ScenarioResult, 0, len(routes))
	for ri, route := range routes {
		sr := sim.ScenarioResult{Name: route.String(), ByPolicy: make(map[core.Policy]sim.AverageResult, len(policies))}
		for poli, p := range policies {
			avg := sim.AverageResult{Policy: p}
			for seed := 0; seed < seeds; seed++ {
				res := cells[ri*perRoute+poli*seeds+seed]
				avg.Accumulate(res.fleetView())
				avg.Imbalance += res.Imbalance
			}
			avg.Finalize()
			sr.ByPolicy[p] = avg
		}
		out = append(out, sr)
	}
	return out, nil
}
