package federation

import (
	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Member is a pluggable federation backend. The router reads a member's
// hardware — base capacity, calibrated machine model, availability trace —
// to place jobs (hardware-fit scoring, drain-window dodging), and the fleet
// runs each member's sub-workload through Run. Implementations must be
// deterministic: Run must be a pure function of its sub-workload, and the
// descriptor methods must be constant for the member's lifetime, or the
// federation's bit-identical parallel-equals-sequential contract breaks.
type Member interface {
	// Capacity is the member's base worker-slot count.
	Capacity() int
	// Machine is the member's calibrated performance model — each member's
	// own, which is what fixes the historical router bug of estimating
	// every member's demand with member 0's machine.
	Machine() model.Machine
	// Availability is the member's capacity timeline (empty means fixed
	// capacity).
	Availability() workload.AvailabilityTrace
	// Policy is the member's scheduling policy.
	Policy() core.Policy
	// Run simulates (or emulates) the member's sub-workload to completion.
	Run(w sim.Workload) (sim.Result, error)
}

// recordedMember is the optional Member extension the conformance harness
// uses: a backend whose run also returns the scheduler's decision log. Both
// built-in backends implement it; a custom Member that does not simply
// contributes an empty log to Result.MemberDecisions.
type recordedMember interface {
	RunRecorded(w sim.Workload) (sim.Result, []core.Decision, error)
}

// runMember runs one member's sub-workload, preferring the recorded path
// when the backend offers one.
func runMember(m Member, w sim.Workload) (sim.Result, []core.Decision, error) {
	if rm, ok := m.(recordedMember); ok {
		return rm.RunRecorded(w)
	}
	res, err := m.Run(w)
	return res, nil, err
}

// stepBackend is the optional Member extension the rebalancer needs: a
// backend that can expose its run as a steppable simulator. Only
// simulator-backed members implement it — the cluster emulation has no
// stepping surface, so rebalancing over ClusterMembers is rejected with a
// clear error instead of silently degrading.
type stepBackend interface {
	newStepper() (*sim.Simulator, error)
}

// SimMember backs a federation member with the discrete-event simulator —
// the default backend every sim.Config in Config.Members is wrapped in.
type SimMember struct {
	Config sim.Config
}

// NewSimMember wraps a simulator configuration as a federation member.
func NewSimMember(cfg sim.Config) SimMember { return SimMember{Config: cfg} }

// Capacity implements Member.
func (m SimMember) Capacity() int { return m.Config.Capacity }

// Machine implements Member.
func (m SimMember) Machine() model.Machine { return m.Config.Machine }

// Availability implements Member.
func (m SimMember) Availability() workload.AvailabilityTrace { return m.Config.Availability }

// Policy implements Member.
func (m SimMember) Policy() core.Policy { return m.Config.Policy }

// Run implements Member via the sim.Run choke point.
func (m SimMember) Run(w sim.Workload) (sim.Result, error) { return sim.Run(m.Config, w) }

// RunRecorded is Run plus the member scheduler's decision log (nil unless
// the member config sets LogDecisions).
func (m SimMember) RunRecorded(w sim.Workload) (sim.Result, []core.Decision, error) {
	s, err := sim.New(m.Config)
	if err != nil {
		return sim.Result{}, nil, err
	}
	res, err := s.Run(w)
	if err != nil {
		return sim.Result{}, nil, err
	}
	return res, s.Decisions(), nil
}

// newStepper builds the steppable simulator the rebalancer co-simulates.
// Stepping is inherently sequential per member (the fleet parallelizes
// across members instead), so the sharded mode is disabled.
func (m SimMember) newStepper() (*sim.Simulator, error) {
	cfg := m.Config
	cfg.Shards = 0
	return sim.New(cfg)
}

// ClusterMember backs a federation member with the full k8s+operator
// cluster emulation (cluster.RunExperiment) — the fleet path `kubesim
// -clusters` exercises. Base capacity is the node group's slot count.
type ClusterMember struct {
	Config cluster.Config
}

// NewClusterMember wraps a cluster-emulation configuration as a federation
// member.
func NewClusterMember(cfg cluster.Config) ClusterMember { return ClusterMember{Config: cfg} }

// Capacity implements Member.
func (m ClusterMember) Capacity() int { return m.Config.Nodes * m.Config.CPUPerNode }

// Machine implements Member.
func (m ClusterMember) Machine() model.Machine { return m.Config.Machine }

// Availability implements Member.
func (m ClusterMember) Availability() workload.AvailabilityTrace { return m.Config.Availability }

// Policy implements Member.
func (m ClusterMember) Policy() core.Policy { return m.Config.Policy }

// Run implements Member on the emulation backend.
func (m ClusterMember) Run(w sim.Workload) (sim.Result, error) {
	return cluster.RunExperiment(m.Config, w)
}

// RunRecorded is Run plus the emulated scheduler's decision log (nil unless
// the member config sets LogDecisions).
func (m ClusterMember) RunRecorded(w sim.Workload) (sim.Result, []core.Decision, error) {
	return cluster.RunRecorded(m.Config, w)
}
