package federation

import (
	"fmt"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// BenchmarkFederation is the multi-cluster scale benchmark: one million
// bursty submissions routed round-robin across a 4-cluster fleet, each
// member a streaming-mode simulator at the paper's 64-slot capacity. The
// wave gap is a quarter of the single-cluster backlog benchmark's, so after
// the 4-way deal every member sees exactly the reference per-cluster load
// (200 jobs per 29000 s) and the fleet sustains the same backlog pressure at
// 4× the job throughput. CI gates the aggregate rate via BENCH_BASELINE.json;
// the per-cluster job counts and utilizations are reported as ungated
// sub-metrics for benchreport to list.
func BenchmarkFederation(b *testing.B) {
	const jobs = 1_000_000
	const clusters = 4
	w, err := (workload.Burst{Waves: jobs / 200, PerWave: 200, WaveGap: 29000 / clusters}).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	base := sim.DefaultConfig(core.Elastic)
	base.Streaming = true
	b.ReportAllocs()
	b.ResetTimer()
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Members: Uniform(base, clusters), Route: RoundRobin}, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalTime <= 0 {
			b.Fatalf("degenerate result: %+v", res)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	for i, m := range last.Members {
		b.ReportMetric(float64(last.JobsPerMember[i]), fmt.Sprintf("c%d_jobs", i))
		b.ReportMetric(m.Utilization, fmt.Sprintf("c%d_util", i))
	}
}

// BenchmarkFederationMigration measures the rebalanced fleet path: a
// 4-cluster fleet at the reference per-cluster load whose member 0 has half
// the slots, co-simulated in 300 s barrier rounds with the
// checkpoint-migrating rebalancer draining member 0's backlog into the
// healthy members. Reported ungated until the next BENCH_BASELINE.json
// refresh (benchreport lists candidate-only benchmarks as "new"); the
// moves/round metric tracks rebalancer activity.
func BenchmarkFederationMigration(b *testing.B) {
	const jobs = 100_000
	const clusters = 4
	w, err := (workload.Burst{Waves: jobs / 200, PerWave: 200, WaveGap: 29000 / clusters}).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	base := sim.DefaultConfig(core.Elastic)
	base.Streaming = true
	members := Uniform(base, clusters)
	members[0].Capacity = 32
	cfg := Config{
		Members:   members,
		Route:     RoundRobin,
		Rebalance: RebalanceConfig{Every: 300},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalTime <= 0 || res.RebalanceRounds == 0 {
			b.Fatalf("degenerate result: rounds=%d total=%g", res.RebalanceRounds, res.TotalTime)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(len(last.Migrations)), "migrations")
	b.ReportMetric(float64(len(last.Migrations))/float64(last.RebalanceRounds), "moves/round")
}
