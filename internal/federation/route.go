package federation

import (
	"fmt"
	"math/rand"
	"sort"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Route selects how jobs are distributed across member clusters.
type Route int

// Routing policies.
const (
	// RoundRobin deals jobs to members in submission order, one each —
	// the contention-free baseline every other route is judged against.
	RoundRobin Route = iota
	// LeastLoaded sends each job to the member with the lowest queued
	// min-PE demand per capacity slot at the job's submission instant,
	// estimated from the calibrated performance model (ties go to the
	// lowest member index).
	LeastLoaded
	// PriorityAware routes high-priority jobs (Config.HighPriority and
	// above) to the least-contended member and deals the rest round-robin,
	// keeping the fleet's fast lanes clear for urgent work.
	PriorityAware
	// Random picks a member uniformly at random from Config.RouteSeed —
	// the stochastic baseline; deterministic per seed.
	Random
)

// AllRoutes lists the routing policies in presentation order.
func AllRoutes() []Route { return []Route{RoundRobin, LeastLoaded, PriorityAware, Random} }

// String returns the flag-friendly route name.
func (r Route) String() string {
	switch r {
	case RoundRobin:
		return "round_robin"
	case LeastLoaded:
		return "least_loaded"
	case PriorityAware:
		return "priority"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// RouteByName resolves a -route flag value to its Route.
func RouteByName(name string) (Route, error) {
	for _, r := range AllRoutes() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf(`federation: unknown route %q (have "round_robin", "least_loaded", "priority", "random")`, name)
}

// pending is one routed job's estimated residency in a member's queue: it
// contributes its min-PE demand until its estimated finish time.
type pending struct {
	estEnd float64
	minPE  int
}

// demandHeap is a min-heap of pending jobs by estimated finish time.
type demandHeap []pending

func (h *demandHeap) push(p pending) {
	hh := append(*h, p)
	i := len(hh) - 1
	for i > 0 {
		par := (i - 1) / 2
		if hh[par].estEnd <= hh[i].estEnd {
			break
		}
		hh[i], hh[par] = hh[par], hh[i]
		i = par
	}
	*h = hh
}

func (h *demandHeap) pop() pending {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh[r].estEnd < hh[c].estEnd {
			c = r
		}
		if hh[i].estEnd <= hh[c].estEnd {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	*h = hh
	return top
}

// router tracks per-member load estimates while partitioning a workload.
type router struct {
	cfg     Config
	machine model.Machine
	specs   map[model.Class]model.Spec
	next    int        // round-robin cursor
	rng     *rand.Rand // Random route
	// tracksDemand is set for the routes that read the load estimates;
	// round-robin and random skip the bookkeeping (a model evaluation and
	// a heap push per job) entirely on the million-job partition path.
	tracksDemand bool
	queues       []demandHeap // per-member pending jobs by estimated finish
	demand       []int        // per-member queued min-PE demand (heap sum)
}

func newRouter(cfg Config) *router {
	r := &router{
		cfg:          cfg,
		machine:      cfg.Members[0].Machine,
		specs:        model.Specs(),
		tracksDemand: cfg.Route == LeastLoaded || cfg.Route == PriorityAware,
		queues:       make([]demandHeap, len(cfg.Members)),
		demand:       make([]int, len(cfg.Members)),
	}
	if cfg.Route == Random {
		r.rng = rand.New(rand.NewSource(cfg.RouteSeed))
	}
	return r
}

// drain expires pending jobs whose estimated finish lies at or before now,
// releasing their demand.
func (r *router) drain(now float64) {
	for i := range r.queues {
		q := &r.queues[i]
		for len(*q) > 0 && (*q)[0].estEnd <= now {
			r.demand[i] -= r.pop(i).minPE
		}
	}
}

func (r *router) pop(i int) pending { return r.queues[i].pop() }

// leastLoaded picks the member with the lowest queued min-PE demand per
// capacity slot; ties go to the lowest index.
func (r *router) leastLoaded() int {
	best, bestLoad := 0, float64(r.demand[0])/float64(r.cfg.Members[0].Capacity)
	for i := 1; i < len(r.demand); i++ {
		if load := float64(r.demand[i]) / float64(r.cfg.Members[i].Capacity); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// route picks the member for one job at its submission instant and, for the
// demand-driven routes, books the job's estimated demand against it.
func (r *router) route(js *workload.JobSpec) int {
	if r.tracksDemand {
		r.drain(js.SubmitAt)
	}
	var m int
	switch r.cfg.Route {
	case RoundRobin:
		m = r.next
		r.next = (r.next + 1) % len(r.cfg.Members)
	case LeastLoaded:
		m = r.leastLoaded()
	case PriorityAware:
		if js.Priority >= r.cfg.HighPriority {
			m = r.leastLoaded()
		} else {
			m = r.next
			r.next = (r.next + 1) % len(r.cfg.Members)
		}
	case Random:
		m = r.rng.Intn(len(r.cfg.Members))
	default:
		m = r.next
		r.next = (r.next + 1) % len(r.cfg.Members)
	}
	if r.tracksDemand {
		spec := r.specs[js.Class]
		minPE := spec.MinReplicas
		if slots := r.cfg.Members[m].Capacity; minPE > slots {
			minPE = slots
		}
		// The residency estimate is the job's modelled runtime at its
		// minimum replica count — a routing heuristic, not a simulation:
		// it ignores queueing delay, so demand is an optimistic lower
		// bound. What matters is that it is a deterministic function of
		// the partition so far.
		est := r.machine.JobRuntime(spec, minPE)
		r.queues[m].push(pending{estEnd: js.SubmitAt + est, minPE: minPE})
		r.demand[m] += minPE
	}
	return m
}

// Partition routes every job of the workload to a member cluster, returning
// one sub-workload per member (jobs kept in submission order) and the member
// index chosen for each job of w (in w's own order). The pass is
// deterministic: jobs are visited in submission order — equal submission
// times keep workload order, exactly as the simulator admits them — and no
// routing decision depends on member simulation results.
func Partition(cfg Config, w workload.Workload) ([]sim.Workload, []int, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	order := make([]int32, len(w.Jobs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return w.Jobs[order[a]].SubmitAt < w.Jobs[order[b]].SubmitAt
	})
	parts := make([]sim.Workload, len(cfg.Members))
	assign := make([]int, len(w.Jobs))
	r := newRouter(cfg)
	for _, wi := range order {
		js := &w.Jobs[wi]
		m := r.route(js)
		assign[wi] = m
		parts[m].Jobs = append(parts[m].Jobs, *js)
	}
	return parts, assign, nil
}
