package federation

import (
	"fmt"
	"math/rand"
	"sort"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Route selects how jobs are distributed across member clusters.
type Route int

// Routing policies.
const (
	// RoundRobin deals jobs to members in submission order, one each —
	// the contention-free baseline every other route is judged against.
	RoundRobin Route = iota
	// LeastLoaded sends each job to the member with the lowest estimated
	// waiting cost at the job's submission instant: the member's booked
	// backlog drain time on its own machine model, an M/G/1 queueing-delay
	// term from its arrival history, and the job's own modelled service
	// time on that member's hardware — evaluated against the capacity the
	// member's availability trace actually delivers at that instant, so
	// known drain windows are dodged. Ties go to the lowest member index.
	LeastLoaded
	// PriorityAware routes high-priority jobs (Config.HighPriority and
	// above) to the least-contended member and deals the rest round-robin,
	// keeping the fleet's fast lanes clear for urgent work.
	PriorityAware
	// Random picks a member uniformly at random from Config.RouteSeed —
	// the stochastic baseline; deterministic per seed.
	Random
)

// AllRoutes lists the routing policies in presentation order.
func AllRoutes() []Route { return []Route{RoundRobin, LeastLoaded, PriorityAware, Random} }

// String returns the flag-friendly route name.
func (r Route) String() string {
	switch r {
	case RoundRobin:
		return "round_robin"
	case LeastLoaded:
		return "least_loaded"
	case PriorityAware:
		return "priority"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// RouteByName resolves a -route flag value to its Route.
func RouteByName(name string) (Route, error) {
	for _, r := range AllRoutes() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf(`federation: unknown route %q (have "round_robin", "least_loaded", "priority", "random")`, name)
}

// mg1RhoCap bounds the M/G/1 utilization estimate away from 1: past it the
// waiting-time formula diverges, and the estimate is a routing heuristic,
// not a stability proof.
const mg1RhoCap = 0.98

// infeasiblePenalty pushes a member whose deliverable capacity at the
// submission instant cannot host the job's minimum replica count behind
// every feasible member. It is a penalty rather than exclusion so a fleet
// with no feasible member still routes deterministically (the member
// simulator then queues the job until capacity returns).
const infeasiblePenalty = 1e18

// pending is one routed job's estimated residency in a member's queue: it
// contributes its booked work (slot-seconds) until its estimated finish.
type pending struct {
	estEnd float64
	work   float64
}

// demandHeap is a min-heap of pending jobs by estimated finish time.
type demandHeap []pending

func (h *demandHeap) push(p pending) {
	hh := append(*h, p)
	i := len(hh) - 1
	for i > 0 {
		par := (i - 1) / 2
		if hh[par].estEnd <= hh[i].estEnd {
			break
		}
		hh[i], hh[par] = hh[par], hh[i]
		i = par
	}
	*h = hh
}

func (h *demandHeap) pop() pending {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh[r].estEnd < hh[c].estEnd {
			c = r
		}
		if hh[i].estEnd <= hh[c].estEnd {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	*h = hh
	return top
}

// router tracks per-member load estimates while partitioning a workload.
type router struct {
	cfg      Config
	members  []Member
	machines []model.Machine // cached per member: the interface call is off the per-job path
	specs    map[model.Class]model.Spec
	next     int        // round-robin cursor
	rng      *rand.Rand // Random route
	// tracksDemand is set for the routes that read the load estimates;
	// round-robin and random skip the bookkeeping (model evaluations and a
	// heap push per job) entirely on the million-job partition path.
	tracksDemand bool
	queues       []demandHeap // per-member pending jobs by estimated finish
	work         []float64    // per-member booked queued work (slot-seconds)
	// Arrival statistics per member for the M/G/1 waiting-time term:
	// arrival count, Σ service, Σ service², and the first arrival instant.
	// "Service" is the job's occupancy-normalized service time on that
	// member (runtime × minPE / deliverable slots).
	nArr    []int
	sumS    []float64
	sumS2   []float64
	firstAt []float64
}

func newRouter(cfg Config, members []Member) *router {
	n := len(members)
	r := &router{
		cfg:          cfg,
		members:      members,
		machines:     make([]model.Machine, n),
		specs:        model.Specs(),
		tracksDemand: cfg.Route == LeastLoaded || cfg.Route == PriorityAware,
		queues:       make([]demandHeap, n),
		work:         make([]float64, n),
		nArr:         make([]int, n),
		sumS:         make([]float64, n),
		sumS2:        make([]float64, n),
		firstAt:      make([]float64, n),
	}
	for i, m := range members {
		r.machines[i] = m.Machine()
	}
	if cfg.Route == Random {
		r.rng = rand.New(rand.NewSource(cfg.RouteSeed))
	}
	return r
}

// effCapacity is member i's deliverable slot count at an instant: its
// availability trace evaluated at `at`, so the router sees a drain window
// the trace has already scheduled instead of the nominal capacity.
func (r *router) effCapacity(i int, at float64) int {
	m := r.members[i]
	base := m.Capacity()
	if tr := m.Availability(); len(tr.Events) > 0 {
		return tr.CapacityAt(base, at)
	}
	return base
}

// fit returns the job's placement replica count on member i (its class
// minimum, capped at the member's base capacity, as the member simulator
// itself caps it) and the modelled runtime at that count on the member's
// own machine.
func (r *router) fit(i int, spec model.Spec) (minPE int, runtime float64) {
	minPE = spec.MinReplicas
	if c := r.members[i].Capacity(); minPE > c {
		minPE = c
	}
	return minPE, r.machines[i].JobRuntime(spec, minPE)
}

// drain expires pending jobs whose estimated finish lies at or before now,
// releasing their booked work.
func (r *router) drain(now float64) {
	for i := range r.queues {
		q := &r.queues[i]
		for len(*q) > 0 && (*q)[0].estEnd <= now {
			r.work[i] -= q.pop().work
		}
	}
}

// score estimates the waiting cost of sending js to member i at its
// submission instant:
//
//	backlog/eff  — drain time of the member's booked work over the slots
//	               its availability trace delivers at that instant;
//	λ·E[S²]/2(1−ρ) — the M/G/1 mean-wait term from the member's own
//	               arrival history (Pollaczek–Khinchine), capturing that a
//	               member fed bursty, heavy jobs delays newcomers more
//	               than its mean backlog alone suggests;
//	service      — the job's own occupancy-normalized runtime on the
//	               member's machine (hardware-fit: a faster machine or a
//	               roomier cluster genuinely finishes the job sooner);
//
// plus infeasiblePenalty when the deliverable capacity cannot host the
// job's minimum replica count (a scheduled drain window, or a member that
// is simply too small).
func (r *router) score(i int, js *workload.JobSpec, spec model.Spec) float64 {
	eff := float64(r.effCapacity(i, js.SubmitAt))
	minPE, runtime := r.fit(i, spec)
	cost := r.work[i]/eff + runtime*float64(minPE)/eff
	if n := r.nArr[i]; n >= 2 {
		if elapsed := js.SubmitAt - r.firstAt[i]; elapsed > 0 {
			lam := float64(n) / elapsed
			es := r.sumS[i] / float64(n)
			es2 := r.sumS2[i] / float64(n)
			rho := lam * es
			if rho > mg1RhoCap {
				rho = mg1RhoCap
			}
			cost += lam * es2 / (2 * (1 - rho))
		}
	}
	if float64(spec.MinReplicas) > eff {
		cost += infeasiblePenalty
	}
	return cost
}

// leastLoaded picks the member with the lowest estimated waiting cost for
// this job; ties go to the lowest index.
func (r *router) leastLoaded(js *workload.JobSpec) int {
	spec := r.specs[js.Class]
	best, bestCost := 0, r.score(0, js, spec)
	for i := 1; i < len(r.members); i++ {
		if cost := r.score(i, js, spec); cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// book records js's estimated demand against member m: its slot-second work
// on m's machine, queued behind m's current backlog, plus the arrival
// statistics the M/G/1 term reads. A heuristic, not a simulation — what
// matters is that it is a deterministic function of the partition so far.
func (r *router) book(m int, js *workload.JobSpec, spec model.Spec) {
	minPE, runtime := r.fit(m, spec)
	eff := float64(r.effCapacity(m, js.SubmitAt))
	work := runtime * float64(minPE)
	est := r.work[m]/eff + runtime
	r.queues[m].push(pending{estEnd: js.SubmitAt + est, work: work})
	r.work[m] += work
	occ := work / eff
	r.nArr[m]++
	if r.nArr[m] == 1 {
		r.firstAt[m] = js.SubmitAt
	}
	r.sumS[m] += occ
	r.sumS2[m] += occ * occ
}

// route picks the member for one job at its submission instant and, for the
// demand-driven routes, books the job's estimated demand against it.
func (r *router) route(js *workload.JobSpec) int {
	if r.tracksDemand {
		r.drain(js.SubmitAt)
	}
	var m int
	switch r.cfg.Route {
	case RoundRobin:
		m = r.next
		r.next = (r.next + 1) % len(r.members)
	case LeastLoaded:
		m = r.leastLoaded(js)
	case PriorityAware:
		if js.Priority >= r.cfg.HighPriority {
			m = r.leastLoaded(js)
		} else {
			m = r.next
			r.next = (r.next + 1) % len(r.members)
		}
	case Random:
		m = r.rng.Intn(len(r.members))
	default:
		m = r.next
		r.next = (r.next + 1) % len(r.members)
	}
	if r.tracksDemand {
		r.book(m, js, r.specs[js.Class])
	}
	return m
}

// Partition routes every job of the workload to a member cluster, returning
// one sub-workload per member (jobs kept in submission order) and the member
// index chosen for each job of w (in w's own order). The pass is
// deterministic: jobs are visited in submission order — equal submission
// times keep workload order, exactly as the simulator admits them — and no
// routing decision depends on member simulation results.
func Partition(cfg Config, w workload.Workload) ([]sim.Workload, []int, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	members := cfg.backends()
	order := make([]int32, len(w.Jobs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return w.Jobs[order[a]].SubmitAt < w.Jobs[order[b]].SubmitAt
	})
	parts := make([]sim.Workload, len(members))
	assign := make([]int, len(w.Jobs))
	r := newRouter(cfg, members)
	for _, wi := range order {
		js := &w.Jobs[wi]
		m := r.route(js)
		assign[wi] = m
		parts[m].Jobs = append(parts[m].Jobs, *js)
	}
	return parts, assign, nil
}
