package federation

import (
	"fmt"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
)

// DefaultHighPriority is the PriorityAware threshold: on the paper's 1–5
// priority scale, 4 and 5 are the fleet's fast-lane jobs.
const DefaultHighPriority = 4

// Config parameterizes a federation run.
type Config struct {
	// Members holds one simulator configuration per member cluster. Each
	// member keeps its own capacity, rescale gap, machine model,
	// availability trace, streaming mode, and sharded execution mode
	// (sim.Config.Shards); the meta-scheduler never reaches inside a member
	// beyond handing it its sub-workload. The router reads every member's
	// own machine and availability trace for its placement estimates.
	Members []sim.Config
	// Backends, when non-empty, overrides Members with arbitrary member
	// backends — e.g. the full cluster emulation via NewClusterMember, or a
	// mixed fleet. When empty, each Members entry is wrapped in a
	// SimMember. Rebalancing (below) requires simulator-backed members.
	Backends []Member
	// Route is the job-routing policy across members.
	Route Route
	// RouteSeed seeds the Random route (ignored by the others).
	RouteSeed int64
	// HighPriority is the PriorityAware threshold; jobs at or above it are
	// routed least-loaded. 0 means DefaultHighPriority.
	HighPriority int
	// Workers bounds the member-simulation worker pool: <= 0 uses every
	// CPU, 1 is the sequential reference path. Results are bit-identical
	// either way.
	Workers int
	// Rebalance configures the fleet-level checkpoint-migrating rebalancer
	// (see migrate.go); the zero value disables it and keeps the batch
	// path — and its results — untouched.
	Rebalance RebalanceConfig
}

// Uniform builds n identical member configurations from one base — the
// homogeneous fleet.
func Uniform(base sim.Config, n int) []sim.Config {
	members := make([]sim.Config, n)
	for i := range members {
		members[i] = base
	}
	return members
}

// Skewed builds n member configurations whose capacities ramp linearly:
// member i gets round(base.Capacity × (1 + skew·i)) slots (minimum 1), so
// skew 0 is Uniform and skew 0.5 over 4 members yields a 1×/1.5×/2×/2.5×
// heterogeneous fleet.
func Skewed(base sim.Config, n int, skew float64) []sim.Config {
	members := Uniform(base, n)
	for i := range members {
		c := int(float64(base.Capacity)*(1+skew*float64(i)) + 0.5)
		if c < 1 {
			c = 1
		}
		members[i].Capacity = c
	}
	return members
}

// backends resolves the member backends: Config.Backends verbatim, or each
// Members entry wrapped in a SimMember.
func (cfg Config) backends() []Member {
	if len(cfg.Backends) > 0 {
		return cfg.Backends
	}
	ms := make([]Member, len(cfg.Members))
	for i, mc := range cfg.Members {
		ms[i] = SimMember{Config: mc}
	}
	return ms
}

func (cfg Config) validate() error {
	members := cfg.backends()
	if len(members) == 0 {
		return fmt.Errorf("federation: no member clusters")
	}
	for i, m := range members {
		if m.Capacity() < 1 {
			return fmt.Errorf("federation: member %d capacity %d", i, m.Capacity())
		}
	}
	if cfg.HighPriority < 0 {
		return fmt.Errorf("federation: high-priority threshold %d < 0", cfg.HighPriority)
	}
	if err := cfg.Rebalance.validate(); err != nil {
		return err
	}
	return nil
}

// withDefaults resolves zero-valued knobs.
func (cfg Config) withDefaults() Config {
	if cfg.HighPriority == 0 {
		cfg.HighPriority = DefaultHighPriority
	}
	cfg.Rebalance = cfg.Rebalance.withDefaults()
	return cfg
}

// Result aggregates one federation run: the member results plus the exact
// fleet-wide metrics over all jobs.
type Result struct {
	Policy core.Policy
	Route  Route
	// Members holds each member cluster's own sim.Result, in member order.
	Members []sim.Result
	// JobsPerMember is how many jobs each member completed: the router's
	// deal adjusted by any rebalancer migrations.
	JobsPerMember []int
	// TotalTime is the fleet window: from the first job start on any member
	// to the last completion on any member.
	TotalTime float64
	// Utilization is allocated slot-seconds over deliverable slot-seconds,
	// both summed across members with every member's deliverable capacity
	// extended to the fleet's end instant — a member that drains early and
	// sits idle counts against the fleet.
	Utilization float64
	// WeightedResponse and WeightedCompletion are the priority-weighted
	// means over every job in the fleet (exact, via the members' weight
	// sums — not a mean of member means).
	WeightedResponse   float64
	WeightedCompletion float64
	// Imbalance is the spread between the busiest and idlest member's
	// fleet-window utilization (0 for a single member or a perfectly
	// balanced fleet) — the routing-quality metric.
	Imbalance float64
	// Migrations is the rebalancer's move log in decision order (nil when
	// rebalancing is off), and RebalanceRounds counts the rounds executed —
	// together the determinism fingerprint the equivalence tests pin.
	Migrations      []Migration
	RebalanceRounds int
	// Resilience aggregates, summed across members.
	CapacityEvents int
	ForcedShrinks  int
	Requeues       int
	WorkLostSec    float64
	GoodputFrac    float64
	// MemberDecisions holds each member scheduler's decision log, in member
	// order — the conformance harness's raw material. It is nil unless at
	// least one member ran with decision logging enabled, so runs without
	// logging produce a Result identical to pre-recording builds.
	MemberDecisions [][]core.Decision
}

// fleetView projects the fleet aggregates onto sim.Result so the sweep can
// reuse sim.AverageResult's accumulator (Imbalance has no sim.Result slot
// and is summed by the sweep directly).
func (r Result) fleetView() sim.Result {
	return sim.Result{
		Policy:             r.Policy,
		TotalTime:          r.TotalTime,
		Utilization:        r.Utilization,
		WeightedResponse:   r.WeightedResponse,
		WeightedCompletion: r.WeightedCompletion,
		CapacityEvents:     r.CapacityEvents,
		ForcedShrinks:      r.ForcedShrinks,
		Requeues:           r.Requeues,
		WorkLostSec:        r.WorkLostSec,
		GoodputFrac:        r.GoodputFrac,
	}
}

// Run partitions the workload across the member clusters, simulates every
// member on the sim.RunTasks worker pool, and aggregates. The partition is
// sequential and deterministic, member runs are independent, and members are
// folded in index order, so parallel execution is bit-identical to
// cfg.Workers == 1. With Config.Rebalance enabled the members instead
// co-simulate in barrier-synchronized rounds between which the rebalancer
// checkpoint-migrates jobs (see migrate.go) — still deterministic and still
// bit-identical across worker counts.
func Run(cfg Config, w sim.Workload) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Rebalance.enabled() {
		return runRebalanced(cfg, w)
	}
	parts, _, err := Partition(cfg, w)
	if err != nil {
		return Result{}, err
	}
	backends := cfg.backends()
	members := make([]sim.Result, len(parts))
	decs := make([][]core.Decision, len(parts))
	err = sim.RunTasks(len(parts), cfg.Workers, func(i int) error {
		res, dec, err := runMember(backends[i], parts[i])
		if err != nil {
			return fmt.Errorf("federation: member %d: %w", i, err)
		}
		members[i], decs[i] = res, dec
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	counts := make([]int, len(parts))
	for i := range parts {
		counts[i] = len(parts[i].Jobs)
	}
	res := aggregate(cfg, backends, counts, members)
	res.MemberDecisions = memberDecisions(decs)
	return res, nil
}

// memberDecisions normalizes collected member logs: nil when no member
// logged anything, the full per-member slice otherwise.
func memberDecisions(decs [][]core.Decision) [][]core.Decision {
	for _, d := range decs {
		if len(d) > 0 {
			return decs
		}
	}
	return nil
}

// aggregate folds the member results into the fleet metrics, always in
// member index order so float accumulation is reproducible. jobsPer is each
// member's completed-job count (the partition's deal, net of migrations).
func aggregate(cfg Config, backends []Member, jobsPer []int, members []sim.Result) Result {
	res := Result{
		Policy:        backends[0].Policy(),
		Route:         cfg.Route,
		Members:       members,
		JobsPerMember: jobsPer,
		GoodputFrac:   1,
	}
	// Fleet window over members that ran jobs (an empty member's zeroed
	// window must not drag FirstStart to 0).
	first := true
	var firstStart, lastEnd float64
	for i, m := range members {
		if jobsPer[i] == 0 {
			continue
		}
		if first || m.FirstStart < firstStart {
			firstStart, first = m.FirstStart, false
		}
		if m.LastEnd > lastEnd {
			lastEnd = m.LastEnd
		}
	}
	if !first {
		res.TotalTime = lastEnd - firstStart
	}
	var used, delivered, overhead float64
	var wSum, wResp, wComp float64
	minUtil, maxUtil := 1.0, 0.0
	for i, m := range members {
		// Extend each member's deliverable capacity to the fleet end. A
		// member with an availability trace is re-integrated over the full
		// fleet window from the trace itself: the sim skips trailing
		// capacity events once its own work has drained, but those events
		// still change what the idle member could have delivered to the
		// fleet. Without a trace the member idles at its end capacity.
		var d float64
		if tr := backends[i].Availability(); len(tr.Events) > 0 {
			steps := make([]sim.UtilSample, len(tr.Events))
			for ei, ev := range tr.Events {
				steps[ei] = sim.UtilSample{At: ev.At, Used: ev.Capacity}
			}
			d = sim.CapacityArea(float64(backends[i].Capacity()), steps, lastEnd)
		} else {
			d = m.DeliveredSlotSec
			if lastEnd > m.LastEnd {
				d += float64(m.EndCapacity) * (lastEnd - m.LastEnd)
			}
		}
		used += m.UsedSlotSec
		delivered += d
		overhead += (1 - m.GoodputFrac) * m.UsedSlotSec
		wSum += m.WeightSum
		wResp += m.WeightSum * m.WeightedResponse
		wComp += m.WeightSum * m.WeightedCompletion
		u := 0.0
		if d > 0 {
			u = m.UsedSlotSec / d
		}
		if u < minUtil {
			minUtil = u
		}
		if u > maxUtil {
			maxUtil = u
		}
		res.CapacityEvents += m.CapacityEvents
		res.ForcedShrinks += m.ForcedShrinks
		res.Requeues += m.Requeues
		res.WorkLostSec += m.WorkLostSec
	}
	if delivered > 0 {
		res.Utilization = used / delivered
	}
	if wSum > 0 {
		res.WeightedResponse = wResp / wSum
		res.WeightedCompletion = wComp / wSum
	}
	if used > 0 {
		res.GoodputFrac = 1 - overhead/used
	}
	if maxUtil > minUtil {
		res.Imbalance = maxUtil - minUtil
	}
	return res
}
