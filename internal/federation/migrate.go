package federation

import (
	"fmt"
	"math"
	"sort"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
)

// This file is the fleet-level rebalancer: the elastic-fleet loop that makes
// a router placement provisional instead of final. The member simulators
// co-simulate in barrier-synchronized rounds (StepTo on every member, in
// parallel, to the same instant), and between rounds the rebalancer
// checkpoint-migrates queued — then, on draining members, running — jobs
// from backlogged or capacity-losing members to members that can finish
// them sooner, lifting core.Preempt to the federation layer.
//
// Determinism contract: a rebalanced run is a pure function of (Config,
// workload). Every round observes the members in index order, sorts its
// victims with a total deterministic order, applies moves sequentially, and
// only then lets the members advance again — so repeated runs, and runs at
// any Workers count, produce identical Migrations logs and bit-identical
// fleet Results. The per-member advancement between barriers is the same
// single-threaded event loop as a batch run.

// DefaultRebalanceThreshold is the relative backlog excess over the fleet
// mean that marks a member backlogged (25%).
const DefaultRebalanceThreshold = 0.25

// maxStagnantRounds bounds rounds in which no member processed an event and
// no job moved before the rebalancer declares the fleet stalled — a
// defensive limit (a finite workload always makes progress or drains).
const maxStagnantRounds = 1000

// RebalanceConfig parameterizes the fleet rebalancer.
type RebalanceConfig struct {
	// Every is the rebalance round period in seconds; <= 0 disables the
	// rebalancer entirely (the zero value keeps the batch federation path).
	Every float64
	// Threshold is the relative backlog-drain-time excess over the fleet
	// mean that marks a member a migration donor. 0 means
	// DefaultRebalanceThreshold.
	Threshold float64
	// MigrateRunning also checkpoint-preempts running jobs off draining
	// members — members whose availability trace is about to drop capacity
	// below their running allocation — and migrates them with their
	// completed iterations instead of letting the capacity event force a
	// local requeue.
	MigrateRunning bool
	// MaxMovesPerRound caps migrations per round (0 = unlimited).
	MaxMovesPerRound int
}

func (rc RebalanceConfig) enabled() bool { return rc.Every > 0 }

func (rc RebalanceConfig) withDefaults() RebalanceConfig {
	if rc.Threshold == 0 {
		rc.Threshold = DefaultRebalanceThreshold
	}
	return rc
}

func (rc RebalanceConfig) validate() error {
	if rc.Every < 0 || math.IsNaN(rc.Every) || math.IsInf(rc.Every, 0) {
		return fmt.Errorf("federation: rebalance period %v", rc.Every)
	}
	if rc.Threshold < 0 {
		return fmt.Errorf("federation: rebalance threshold %v < 0", rc.Threshold)
	}
	if rc.MaxMovesPerRound < 0 {
		return fmt.Errorf("federation: rebalance move cap %d < 0", rc.MaxMovesPerRound)
	}
	return nil
}

// Migration is one job move in the rebalancer's decision log.
type Migration struct {
	Round int     // 1-based rebalance round
	At    float64 // fleet instant of the move
	JobID string
	From  int
	To    int
	// Checkpointed marks a job that had already run on the donor: it
	// migrated with its checkpoint and pays restart+restore on the
	// receiver. Queued-never-started jobs move for free.
	Checkpointed bool
}

// memberState is one member's snapshot at a round barrier.
type memberState struct {
	eff     int     // capacity right now (after applied availability events)
	effNext int     // capacity the trace delivers one round from now
	plan    float64 // planning capacity: min(eff, effNext), ≥ 1 slot
	drainT  float64 // queued work over plan — the backlog drain-time estimate
	used    int     // running jobs' allocated slots
	queued  []sim.QueuedJob
}

// runRebalanced is the rebalancing twin of Run: co-simulate the members in
// rounds of Config.Rebalance.Every seconds, migrating jobs at each barrier.
func runRebalanced(cfg Config, w sim.Workload) (Result, error) {
	backends := cfg.backends()
	parts, _, err := Partition(cfg, w)
	if err != nil {
		return Result{}, err
	}
	n := len(backends)
	sims := make([]*sim.Simulator, n)
	for i, b := range backends {
		sb, ok := b.(stepBackend)
		if !ok {
			return Result{}, fmt.Errorf("federation: member %d (%T) cannot rebalance: only simulator-backed members are steppable", i, b)
		}
		s, err := sb.newStepper()
		if err != nil {
			return Result{}, fmt.Errorf("federation: member %d: %w", i, err)
		}
		if err := s.Begin(parts[i]); err != nil {
			return Result{}, fmt.Errorf("federation: member %d: %w", i, err)
		}
		sims[i] = s
	}
	counts := make([]int, n)
	for i := range parts {
		counts[i] = len(parts[i].Jobs)
	}

	rb := cfg.Rebalance
	var migs []Migration
	rounds, stagnant := 0, 0
	t := rb.Every
	for {
		before := 0
		for _, s := range sims {
			before += s.Processed()
		}
		// Barrier: every member advances to t on the worker pool. Members
		// are independent between barriers, so this is bit-identical to
		// advancing them one by one.
		if err := sim.RunTasks(n, cfg.Workers, func(i int) error {
			return sims[i].StepTo(t)
		}); err != nil {
			return Result{}, err
		}
		rounds++
		drained := true
		for _, s := range sims {
			if !s.Drained() {
				drained = false
				break
			}
		}
		if drained {
			break
		}
		moved, err := rebalanceRound(rb, backends, sims, t, rounds, counts, &migs)
		if err != nil {
			return Result{}, err
		}
		after := 0
		for _, s := range sims {
			after += s.Processed()
		}
		if after == before && moved == 0 {
			stagnant++
			if stagnant > maxStagnantRounds {
				return Result{}, fmt.Errorf("federation: rebalancer stalled at t=%.1f after %d rounds", t, rounds)
			}
		} else {
			stagnant = 0
		}
		// Fleet fully idle with submissions still ahead: fast-forward the
		// round clock onto the Every-grid point just before the next
		// arrival instead of spinning through empty rounds.
		if next, ok := fleetNextSubmit(sims); ok && fleetIdle(sims) && next >= t+rb.Every {
			t += math.Floor((next-t)/rb.Every) * rb.Every
		}
		t += rb.Every
	}

	members := make([]sim.Result, n)
	decs := make([][]core.Decision, n)
	err = sim.RunTasks(n, cfg.Workers, func(i int) error {
		res, err := sims[i].Finish()
		if err != nil {
			return fmt.Errorf("federation: member %d: %w", i, err)
		}
		members[i], decs[i] = res, sims[i].Decisions()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := aggregate(cfg, backends, counts, members)
	res.Migrations = migs
	res.RebalanceRounds = rounds
	res.MemberDecisions = memberDecisions(decs)
	return res, nil
}

func fleetIdle(sims []*sim.Simulator) bool {
	for _, s := range sims {
		if !s.Idle() {
			return false
		}
	}
	return true
}

func fleetNextSubmit(sims []*sim.Simulator) (float64, bool) {
	best, ok := 0.0, false
	for _, s := range sims {
		if at, has := s.NextSubmitAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// queuedWork is one waiting job's modelled slot-second demand on a member's
// own machine: runtime at the placement replica count times that count.
func queuedWork(m model.Machine, capacity int, spec model.Spec) float64 {
	minPE := spec.MinReplicas
	if minPE > capacity {
		minPE = capacity
	}
	return m.JobRuntime(spec, minPE) * float64(minPE)
}

// sortVictims orders a donor's migration candidates: lowest priority first
// (they would wait longest locally and cost the least to move), ties broken
// by later submission, then ID — a total deterministic order.
func sortVictims(victims []sim.QueuedJob) {
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if va.Priority != vb.Priority {
			return va.Priority < vb.Priority
		}
		if va.SubmitAt != vb.SubmitAt {
			return va.SubmitAt > vb.SubmitAt
		}
		return va.ID < vb.ID
	})
}

// rebalanceRound snapshots every member at the barrier instant t, picks
// donors (backlogged beyond threshold, or draining), and migrates victims to
// the receivers that can finish them soonest. Returns the number of jobs
// moved. All state reads precede all mutations except the moves themselves,
// which only ever touch a donor's own snapshot entries — so the decision
// sequence is a pure function of the barrier state.
func rebalanceRound(rb RebalanceConfig, backends []Member, sims []*sim.Simulator,
	t float64, round int, counts []int, migs *[]Migration) (int, error) {
	n := len(sims)
	specs := model.Specs()
	machines := make([]model.Machine, n)
	states := make([]memberState, n)
	mean := 0.0
	for i := range sims {
		machines[i] = backends[i].Machine()
		st := memberState{
			eff:     sims[i].CurrentCapacity(),
			used:    sims[i].UsedSlots(),
			queued:  sims[i].QueuedJobs(),
			effNext: sims[i].CurrentCapacity(),
		}
		if tr := backends[i].Availability(); len(tr.Events) > 0 {
			st.effNext = tr.CapacityAt(backends[i].Capacity(), t+rb.Every)
		}
		plan := st.eff
		if st.effNext < plan {
			plan = st.effNext
		}
		if plan < 1 {
			plan = 1
		}
		st.plan = float64(plan)
		for _, q := range st.queued {
			st.drainT += queuedWork(machines[i], backends[i].Capacity(), specs[q.Class])
		}
		st.drainT /= st.plan
		states[i] = st
		mean += st.drainT
	}
	mean /= float64(n)

	moved := 0
	budget := rb.MaxMovesPerRound
	for donor := range states {
		if budget > 0 && moved >= budget {
			break
		}
		backlogged := states[donor].drainT > mean*(1+rb.Threshold) && len(states[donor].queued) > 0
		draining := states[donor].effNext < states[donor].eff
		if !backlogged && !draining {
			continue
		}
		// Phase 1: evacuate queued jobs.
		victims := append([]sim.QueuedJob(nil), states[donor].queued...)
		sortVictims(victims)
		for _, v := range victims {
			if budget > 0 && moved >= budget {
				break
			}
			ok, err := tryMove(rb, backends, sims, states, machines, specs, donor, v, t, round, counts, migs)
			if err != nil {
				return moved, err
			}
			if ok {
				moved++
			}
		}
		// Phase 2: a draining member whose running allocation will not fit
		// after the drop checkpoint-preempts the deficit (core.Preempt
		// lifted to the fleet) and migrates the evicted jobs too.
		if rb.MigrateRunning && draining && states[donor].used > states[donor].effNext {
			seen := make(map[int32]bool, len(states[donor].queued))
			for _, q := range states[donor].queued {
				seen[q.Ref] = true
			}
			if sims[donor].Preempt(states[donor].used-states[donor].effNext) > 0 {
				evicted := make([]sim.QueuedJob, 0, 4)
				for _, q := range sims[donor].QueuedJobs() {
					if !seen[q.Ref] {
						evicted = append(evicted, q)
					}
				}
				sortVictims(evicted)
				for _, v := range evicted {
					if budget > 0 && moved >= budget {
						break
					}
					ok, err := tryMove(rb, backends, sims, states, machines, specs, donor, v, t, round, counts, migs)
					if err != nil {
						return moved, err
					}
					if ok {
						moved++
					}
				}
			}
		}
	}
	if moved > 0 {
		// Donors freed queue entries (and possibly slots); receivers got
		// new submissions. One scheduling pass per member, in index order,
		// lets everyone act on the new state at exactly t.
		for i := range sims {
			sims[i].Kick()
		}
	}
	return moved, nil
}

// tryMove migrates one victim off donor to the best receiver, updating the
// round's bookkeeping. A move happens only when some feasible receiver,
// even after absorbing the job, would still drain sooner than the donor
// does now — otherwise the job stays put. Returns whether a move happened.
func tryMove(rb RebalanceConfig, backends []Member, sims []*sim.Simulator,
	states []memberState, machines []model.Machine, specs map[model.Class]model.Spec,
	donor int, v sim.QueuedJob, t float64, round int, counts []int, migs *[]Migration) (bool, error) {
	spec := specs[v.Class]
	recv, recvWork := -1, 0.0
	best := states[donor].drainT
	for i := range states {
		if i == donor {
			continue
		}
		// Hardware fit: the receiver's base capacity must host the job at
		// all, and its planning capacity (which sees the next drain window)
		// must host the job's minimum now.
		if spec.MinReplicas > backends[i].Capacity() || float64(spec.MinReplicas) > states[i].plan {
			continue
		}
		work := queuedWork(machines[i], backends[i].Capacity(), spec)
		after := states[i].drainT + work/states[i].plan
		if after < best {
			best, recv, recvWork = after, i, work
		}
	}
	if recv < 0 {
		return false, nil
	}
	mj, err := sims[donor].Withdraw(v.Ref)
	if err != nil {
		// The snapshot said the job was waiting; a failure here means the
		// coordinator and member disagree — a bug, not a routine miss.
		return false, fmt.Errorf("federation: migrate %s off member %d: %w", v.ID, donor, err)
	}
	if err := sims[recv].Inject(mj); err != nil {
		return false, fmt.Errorf("federation: migrate %s to member %d: %w", v.ID, recv, err)
	}
	donorWork := queuedWork(machines[donor], backends[donor].Capacity(), spec)
	states[donor].drainT -= donorWork / states[donor].plan
	if states[donor].drainT < 0 {
		states[donor].drainT = 0
	}
	states[recv].drainT += recvWork / states[recv].plan
	counts[donor]--
	counts[recv]++
	*migs = append(*migs, Migration{
		Round: round, At: t, JobID: v.ID, From: donor, To: recv,
		Checkpointed: mj.Checkpointed,
	})
	return true, nil
}
