package federation

import (
	"reflect"
	"testing"

	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// rebalanceFleet is the shared scenario for the rebalancer tests: a
// heterogeneous 3-member fleet whose round-robin deal backs up the small
// member 0, while member 2's availability trace drains it mid-run — both
// donor kinds (backlogged and draining) are exercised in one run.
func rebalanceFleet() Config {
	base := sim.DefaultConfig(core.Elastic)
	base.Capacity = 16
	members := Skewed(base, 3, 1.5) // capacities 16 / 40 / 64
	members[2].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 1200, Capacity: 8},
		{At: 6000, Capacity: 64},
	}}
	return Config{
		Members: members,
		Route:   RoundRobin,
		Rebalance: RebalanceConfig{
			Every:          300,
			MigrateRunning: true,
		},
	}
}

// The rebalancer's determinism contract — identical migration log, round
// count, and bit-identical fleet result whether members step sequentially
// or in parallel, and across repeated runs — is pinned by the conformance
// harness's federation matrix cells (internal/conformance, run under -race
// by the race-equivalence CI job), which record and diff every member's
// decision stream as well.

// TestRebalanceImprovesImbalance is the tentpole's acceptance scenario: a
// fleet whose round-robin deal overloads a small member must, with the
// rebalancer on, migrate at least one still-queued job off it and end with a
// lower fleet Imbalance than the same fleet with -rebalance off.
func TestRebalanceImprovesImbalance(t *testing.T) {
	w := testWorkload(t, 96)
	members := Uniform(sim.DefaultConfig(core.Elastic), 2)
	members[0].Capacity = 16
	members[1].Capacity = 64
	off, err := Run(Config{Members: members, Route: RoundRobin, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(Config{
		Members: members, Route: RoundRobin, Workers: 1,
		Rebalance: RebalanceConfig{Every: 300},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	// At least one still-queued job must leave the overloaded small member.
	// (Later rounds may also move work back as the drains equalize — the
	// rebalancer balances in both directions.)
	queuedOffSmall := 0
	for _, m := range on.Migrations {
		if !m.Checkpointed && m.From == 0 {
			queuedOffSmall++
		}
	}
	if queuedOffSmall == 0 {
		t.Fatalf("no queued-job migrations off the overloaded member in %d moves", len(on.Migrations))
	}
	if on.Imbalance >= off.Imbalance {
		t.Errorf("rebalanced imbalance %g not below off %g", on.Imbalance, off.Imbalance)
	}
	// Every job still completes exactly once.
	total := 0
	for _, n := range on.JobsPerMember {
		total += n
	}
	if total != len(w.Jobs) {
		t.Errorf("%d of %d jobs completed across the fleet", total, len(w.Jobs))
	}
}

// TestRebalanceMigratesRunningOffDrainingMember pins the MigrateRunning
// path: a member about to lose most of its capacity checkpoint-preempts the
// overflow and the rebalancer moves those jobs — checkpoints and completed
// iterations intact — to the healthy member before the capacity event would
// force a local requeue.
func TestRebalanceMigratesRunningOffDrainingMember(t *testing.T) {
	w := sim.Workload{}
	for i := 0; i < 6; i++ {
		w.Jobs = append(w.Jobs, workload.JobSpec{
			ID: string(rune('a' + i)), Class: model.XLarge, Priority: 3, SubmitAt: float64(i),
		})
	}
	members := Uniform(sim.DefaultConfig(core.Elastic), 2)
	members[0].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 900, Capacity: 4},
		{At: 40000, Capacity: 64},
	}}
	res, err := Run(Config{
		Members: members, Route: RoundRobin, Workers: 1,
		Rebalance: RebalanceConfig{Every: 300, MigrateRunning: true},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := 0
	for _, m := range res.Migrations {
		if m.Checkpointed && m.From == 0 && m.To == 1 {
			ckpt++
		}
	}
	if ckpt == 0 {
		t.Fatalf("no checkpointed migrations off the draining member: %+v", res.Migrations)
	}
	total := 0
	for _, n := range res.JobsPerMember {
		total += n
	}
	if total != len(w.Jobs) {
		t.Errorf("%d of %d jobs completed", total, len(w.Jobs))
	}
}

// TestRebalanceMoveCapAndValidation covers the config surface: the per-round
// move cap holds, and invalid knobs are rejected.
func TestRebalanceMoveCapAndValidation(t *testing.T) {
	w := testWorkload(t, 96)
	cfg := rebalanceFleet()
	cfg.Workers = 1
	cfg.Rebalance.MaxMovesPerRound = 1
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	perRound := map[int]int{}
	for _, m := range res.Migrations {
		perRound[m.Round]++
		if perRound[m.Round] > 1 {
			t.Fatalf("round %d moved %d jobs past the cap of 1", m.Round, perRound[m.Round])
		}
	}
	for _, bad := range []RebalanceConfig{
		{Every: -1},
		{Every: 60, Threshold: -0.5},
		{Every: 60, MaxMovesPerRound: -2},
	} {
		c := rebalanceFleet()
		c.Rebalance = bad
		if _, err := Run(c, w); err == nil {
			t.Errorf("accepted invalid rebalance config %+v", bad)
		}
	}
}

// TestRebalanceRejectsNonSteppableBackend: rebalancing needs steppable
// members; a cluster-emulation backend must be rejected with a clear error,
// while the same fleet runs fine on the batch path.
func TestRebalanceRejectsNonSteppableBackend(t *testing.T) {
	w := testWorkload(t, 16)
	backends := []Member{
		NewSimMember(sim.DefaultConfig(core.Elastic)),
		NewClusterMember(cluster.DefaultConfig(core.Elastic)),
	}
	if _, err := Run(Config{Backends: backends, Workers: 1}, w); err != nil {
		t.Fatalf("batch fleet over a cluster backend: %v", err)
	}
	if _, err := Run(Config{
		Backends: backends, Workers: 1,
		Rebalance: RebalanceConfig{Every: 300},
	}, w); err == nil {
		t.Error("rebalancer accepted a non-steppable backend")
	}
}

// TestRebalanceOffMatchesBatchPath pins that a zero RebalanceConfig leaves
// the legacy batch federation path — and its results — bit-identical.
func TestRebalanceOffMatchesBatchPath(t *testing.T) {
	w := testWorkload(t, 64)
	cfg := Config{Members: Uniform(sim.DefaultConfig(core.Elastic), 3), Route: LeastLoaded, Workers: 1}
	batch, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = RebalanceConfig{} // explicit zero value
	zero, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, zero) {
		t.Error("zero RebalanceConfig changed the batch path result")
	}
	if zero.Migrations != nil || zero.RebalanceRounds != 0 {
		t.Errorf("batch path reported rebalancer activity: %d migrations, %d rounds",
			len(zero.Migrations), zero.RebalanceRounds)
	}
}

// TestRouterUsesPerMemberMachine is the regression test for the historical
// router bug of estimating every member's demand with member 0's machine: on
// a fleet of equal capacities where only the machines differ, least-loaded
// must send the first job to the faster member (the old code saw a tie and
// picked member 0).
func TestRouterUsesPerMemberMachine(t *testing.T) {
	members := Uniform(sim.DefaultConfig(core.Elastic), 2)
	fast := members[1].Machine
	fast.CellRate *= 4
	fast.NetBandwidth *= 4
	members[1].Machine = fast
	w := sim.Workload{Jobs: []workload.JobSpec{
		{ID: "first", Class: model.Medium, Priority: 3, SubmitAt: 0},
	}}
	_, assign, err := Partition(Config{Members: members, Route: LeastLoaded}, w)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 {
		t.Errorf("first job routed to member %d; the faster member 1's machine was ignored", assign[0])
	}
}

// TestRouterDodgesDrainWindow pins the availability-aware routing term: a
// job submitted while member 0's trace has its capacity drained below the
// job's minimum replicas must route to the healthy member even though member
// 0 has less booked work.
func TestRouterDodgesDrainWindow(t *testing.T) {
	members := Uniform(sim.DefaultConfig(core.Elastic), 2)
	members[0].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 50, Capacity: 2},
		{At: 5000, Capacity: 64},
	}}
	w := sim.Workload{Jobs: []workload.JobSpec{
		{ID: "in-drain", Class: model.XLarge, Priority: 3, SubmitAt: 100},
	}}
	_, assign, err := Partition(Config{Members: members, Route: LeastLoaded}, w)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 {
		t.Errorf("job routed into member %d's drain window", assign[0])
	}
}
