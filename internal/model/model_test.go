package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecsMatchPaper(t *testing.T) {
	specs := Specs()
	cases := []struct {
		c                   Class
		grid, steps, mn, mx int
	}{
		{Small, 512, 40000, 2, 8},
		{Medium, 2048, 40000, 4, 16},
		{Large, 8192, 40000, 8, 32},
		{XLarge, 16384, 10000, 16, 64},
	}
	for _, tc := range cases {
		s := specs[tc.c]
		if s.Grid != tc.grid || s.Steps != tc.steps || s.MinReplicas != tc.mn || s.MaxReplicas != tc.mx {
			t.Errorf("%v spec = %+v", tc.c, s)
		}
	}
	if len(AllClasses()) != 4 {
		t.Error("AllClasses length")
	}
	for _, c := range append(AllClasses(), Class(9)) {
		if c.String() == "" {
			t.Errorf("Class(%d) has empty name", c)
		}
	}
}

func TestIterTimeDecreasesWithReplicas(t *testing.T) {
	m := DefaultMachine()
	for _, n := range []int{512, 2048, 8192, 16384} {
		prev := math.Inf(1)
		for _, p := range []int{2, 4, 8, 16, 32, 64} {
			it := m.IterTime(n, p)
			if it <= 0 {
				t.Fatalf("IterTime(%d,%d) = %g", n, p, it)
			}
			if it >= prev {
				t.Errorf("IterTime(%d,%d) = %g did not improve on %g", n, p, it, prev)
			}
			prev = it
		}
	}
}

func TestLargerProblemsScaleBetter(t *testing.T) {
	// Figure 4a shape: parallel efficiency at high replica counts is
	// better for larger grids.
	m := DefaultMachine()
	effSmall := m.IterTime(512, 2) * 2 / (m.IterTime(512, 64) * 64)
	effLarge := m.IterTime(16384, 2) * 2 / (m.IterTime(16384, 64) * 64)
	if effLarge <= effSmall {
		t.Errorf("large-grid efficiency %g <= small-grid %g", effLarge, effSmall)
	}
}

func TestJobRuntimeMatchesIterTime(t *testing.T) {
	m := DefaultMachine()
	spec := Specs()[Medium]
	want := float64(spec.Steps) * m.IterTime(spec.Grid, 8)
	if got := m.JobRuntime(spec, 8); got != want {
		t.Errorf("JobRuntime = %g, want %g", got, want)
	}
}

func TestParallelEfficiencyAtMinIsOne(t *testing.T) {
	m := DefaultMachine()
	for _, spec := range Specs() {
		eff := m.ParallelEfficiency(spec, spec.MinReplicas)
		if math.Abs(eff-1) > 1e-12 {
			t.Errorf("%v efficiency at min = %g", spec.Class, eff)
		}
		if effMax := m.ParallelEfficiency(spec, spec.MaxReplicas); effMax >= 1 {
			t.Errorf("%v efficiency at max = %g, want < 1", spec.Class, effMax)
		}
	}
}

func TestRescaleOverheadShapes(t *testing.T) {
	m := DefaultMachine()
	// Fig 5a: shrink to half from increasing replica counts — restart
	// grows with rank count, checkpoint/restore shrink, LB flat.
	var prevRestart, prevCkpt, prevLB float64
	for i, p := range []int{4, 8, 16, 32, 64} {
		ph := m.RescaleOverhead(8192, p, p/2)
		if i > 0 {
			if ph.Restart <= prevRestart {
				t.Errorf("restart at p=%d (%g) did not grow from %g", p, ph.Restart, prevRestart)
			}
			if ph.Checkpoint >= prevCkpt {
				t.Errorf("checkpoint at p=%d did not shrink: %g >= %g", p, ph.Checkpoint, prevCkpt)
			}
			if ph.LoadBalance != prevLB {
				t.Errorf("LB changed with replicas: %g vs %g", ph.LoadBalance, prevLB)
			}
		}
		prevRestart, prevCkpt, prevLB = ph.Restart, ph.Checkpoint, ph.LoadBalance
	}
	// Fig 5c: LB, ckpt, restore grow with problem size; restart flat.
	small := m.RescaleOverhead(512, 32, 16)
	big := m.RescaleOverhead(32768, 32, 16)
	if big.LoadBalance <= small.LoadBalance {
		t.Error("LB did not grow with problem size")
	}
	if big.Checkpoint <= small.Checkpoint || big.Restore <= small.Restore {
		t.Error("ckpt/restore did not grow with problem size")
	}
	if big.Restart != small.Restart {
		t.Error("restart should be independent of problem size")
	}
	// Small problems are dominated by restart (paper: "for small problem
	// sizes, the overhead is dominated by the restart time").
	if small.Restart < small.Checkpoint+small.Restore+small.LoadBalance {
		t.Error("restart does not dominate small-problem overhead")
	}
	if tot := small.Total(); tot != small.LoadBalance+small.Checkpoint+small.Restart+small.Restore {
		t.Errorf("Total = %g", tot)
	}
}

func TestCheckpointBytesQuadratic(t *testing.T) {
	r := CheckpointBytes(1024) / CheckpointBytes(512)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("doubling grid changed bytes by %gx, want 4x", r)
	}
}

func TestCurveInterpolation(t *testing.T) {
	c, err := NewCurve(map[float64]float64{1: 10, 3: 30, 10: 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 10},   // clamp left
		{1, 10},   // exact
		{2, 20},   // interior
		{3, 30},   // exact
		{6.5, 65}, // interior
		{10, 100}, // exact
		{99, 100}, // clamp right
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestNewCurveEmpty(t *testing.T) {
	if _, err := NewCurve(nil); err == nil {
		t.Error("NewCurve accepted empty point set")
	}
}

func TestSampleIterTimeMatchesModelAtSamples(t *testing.T) {
	m := DefaultMachine()
	c := m.SampleIterTime(2048, []int{2, 4, 8, 16, 32})
	for _, p := range []int{2, 4, 8, 16, 32} {
		if got, want := c.At(float64(p)), m.IterTime(2048, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("curve at %d = %g, want %g", p, got, want)
		}
	}
	// Interpolated values lie between the bracketing samples.
	v := c.At(12)
	if v <= m.IterTime(2048, 16) || v >= m.IterTime(2048, 8) {
		t.Errorf("interpolation at 12 out of range: %g", v)
	}
}

// Property: curve interpolation is monotone between any two sampled points
// of a monotone function.
func TestQuickCurveWithinEnvelope(t *testing.T) {
	m := DefaultMachine()
	c := m.SampleIterTime(8192, []int{2, 4, 8, 16, 32, 64})
	lo, hi := m.IterTime(8192, 64), m.IterTime(8192, 2)
	f := func(x float64) bool {
		x = math.Abs(x)
		v := c.At(x)
		return v >= lo-1e-15 && v <= hi+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDuration(t *testing.T) {
	if Duration(1.5).Seconds() != 1.5 {
		t.Errorf("Duration(1.5) = %v", Duration(1.5))
	}
}

func TestIterTimeSerialHasNoComm(t *testing.T) {
	m := DefaultMachine()
	want := float64(512*512) / m.CellRate
	if got := m.IterTime(512, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("serial iter time %g, want %g (no comm term)", got, want)
	}
	if got := m.IterTime(512, 0); got != want {
		t.Errorf("p=0 clamps to 1: got %g", got)
	}
}
