// Package model provides the performance models the paper's scheduling
// simulator is built on (§4.3.1): a strong-scaling model for job runtime as
// a function of replica count, and a four-phase rescaling-overhead model.
// Both are exposed as continuous functions and as piecewise-linear
// interpolations over sampled points, matching the paper's methodology ("We
// use strong scaling performance measurements ... to model the runtime of a
// job for a given number of replicas using a piecewise linear function").
package model

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Class identifies one of the paper's four job size classes.
type Class int

// The four Jacobi2D job classes of §4.3.1.
const (
	Small Class = iota
	Medium
	Large
	XLarge
)

// String returns the class name used in traces and reports.
func (c Class) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	case XLarge:
		return "xlarge"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// AllClasses lists the job classes in increasing size order.
func AllClasses() []Class { return []Class{Small, Medium, Large, XLarge} }

// Spec describes a job class: grid size, timestep count, and replica bounds
// (paper §4.3.1 bullet list).
type Spec struct {
	Class       Class
	Grid        int // one dimension of the square grid
	Steps       int
	MinReplicas int
	MaxReplicas int
}

// Specs returns the paper's class table.
func Specs() map[Class]Spec {
	return map[Class]Spec{
		Small:  {Class: Small, Grid: 512, Steps: 40000, MinReplicas: 2, MaxReplicas: 8},
		Medium: {Class: Medium, Grid: 2048, Steps: 40000, MinReplicas: 4, MaxReplicas: 16},
		Large:  {Class: Large, Grid: 8192, Steps: 40000, MinReplicas: 8, MaxReplicas: 32},
		XLarge: {Class: XLarge, Grid: 16384, Steps: 10000, MinReplicas: 16, MaxReplicas: 64},
	}
}

// Machine holds the calibration constants of the performance model,
// representing the paper's c6g.4xlarge EKS nodes. The defaults are fitted so
// the per-iteration times and rescale overheads land in the ranges of the
// paper's Figures 4 and 5.
type Machine struct {
	// CellRate is stencil throughput per replica, cells/second.
	CellRate float64
	// MsgLatency is the per-message halo-exchange latency, seconds.
	MsgLatency float64
	// NetBandwidth is per-replica network bandwidth, bytes/second.
	NetBandwidth float64
	// ShmBandwidth is per-replica checkpoint bandwidth to /dev/shm.
	ShmBandwidth float64
	// RestartBase and RestartPerRank model mpirun+MPI_Init restart cost.
	RestartBase    float64
	RestartPerRank float64
	// LBBase and LBPerByte model the load-balance step: a flat
	// synchronization cost plus a size-proportional migration term
	// (Fig. 5a/5b show LB flat in replicas; Fig. 5c shows it growing with
	// problem size).
	LBBase    float64
	LBPerByte float64
}

// DefaultMachine returns the calibrated machine model. CellRate is fitted
// so the four job classes reproduce the paper's Table 1 scale (a 16-job,
// 90 s-gap workload completes in ~1800–2700 s depending on the policy, with
// the paper's policy ordering on every metric) and per-iteration times land
// in Figure 4a's band. See internal/sim's TestCalibrationScan for the
// fitting harness.
func DefaultMachine() Machine {
	return Machine{
		CellRate:       1.6e8,
		MsgLatency:     60e-6,
		NetBandwidth:   1.2e9,
		ShmBandwidth:   2.0e9,
		RestartBase:    0.35,
		RestartPerRank: 0.045,
		LBBase:         0.08,
		LBPerByte:      2.0e-10,
	}
}

// IterTime returns the modelled time for one Jacobi iteration of an n×n grid
// on p replicas: perfectly parallel compute plus a halo-exchange term whose
// volume shrinks as sqrt(p) and whose latency is fixed per message.
func (m Machine) IterTime(n, p int) float64 {
	if p < 1 {
		p = 1
	}
	cells := float64(n) * float64(n)
	compute := cells / (float64(p) * m.CellRate)
	haloCells := float64(n) / math.Sqrt(float64(p))
	comm := 4 * (m.MsgLatency + haloCells*8/m.NetBandwidth)
	if p == 1 {
		comm = 0
	}
	return compute + comm
}

// JobRuntime returns the modelled wall time of a whole job (steps
// iterations) on p replicas.
func (m Machine) JobRuntime(spec Spec, p int) float64 {
	return float64(spec.Steps) * m.IterTime(spec.Grid, p)
}

// ParallelEfficiency is speedup(p)/p relative to the job's minimum replicas.
func (m Machine) ParallelEfficiency(spec Spec, p int) float64 {
	base := m.IterTime(spec.Grid, spec.MinReplicas) * float64(spec.MinReplicas)
	return base / (m.IterTime(spec.Grid, p) * float64(p))
}

// CheckpointBytes is the serialized state size of an n×n grid job: one
// float64 per cell plus ~3% metadata.
func CheckpointBytes(n int) float64 {
	return float64(n) * float64(n) * 8 * 1.03
}

// RescalePhases is the per-phase overhead breakdown (paper §4.2).
type RescalePhases struct {
	LoadBalance float64
	Checkpoint  float64
	Restart     float64
	Restore     float64
}

// Total sums the phases.
func (r RescalePhases) Total() float64 {
	return r.LoadBalance + r.Checkpoint + r.Restart + r.Restore
}

// RescaleOverhead models one shrink or expand of an n×n-grid job from pOld
// to pNew replicas:
//
//   - checkpoint/restore move the whole state through shm, in parallel
//     across the replicas holding it (checkpoint on pOld, restore on pNew) —
//     so per-replica time falls as replicas grow (Fig. 5a/5b);
//   - restart grows linearly with the new rank count (Fig. 5a/5b);
//   - load balance is flat in replicas and proportional to state size
//     (Fig. 5a/5b flat curves; Fig. 5c growth).
func (m Machine) RescaleOverhead(n, pOld, pNew int) RescalePhases {
	bytes := CheckpointBytes(n)
	return RescalePhases{
		LoadBalance: m.LBBase + m.LBPerByte*bytes,
		Checkpoint:  bytes / (float64(pOld) * m.ShmBandwidth),
		Restart:     m.RestartBase + m.RestartPerRank*float64(pNew),
		Restore:     bytes / (float64(pNew) * m.ShmBandwidth),
	}
}

// Curve is a piecewise-linear function through sampled (x, y) points, the
// representation the paper uses for both runtime and overhead models.
type Curve struct {
	xs, ys []float64
}

// NewCurve builds a curve from sample points. Points are sorted by x;
// duplicate x keeps the last y. At least one point is required.
func NewCurve(points map[float64]float64) (*Curve, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("model: curve needs at least one point")
	}
	xs := make([]float64, 0, len(points))
	for x := range points {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	c := &Curve{}
	for _, x := range xs {
		c.xs = append(c.xs, x)
		c.ys = append(c.ys, points[x])
	}
	return c, nil
}

// SampleIterTime samples m.IterTime at the given replica counts and returns
// the piecewise-linear interpolation — the exact methodology of §4.3.1.
func (m Machine) SampleIterTime(n int, replicas []int) *Curve {
	pts := make(map[float64]float64, len(replicas))
	for _, p := range replicas {
		pts[float64(p)] = m.IterTime(n, p)
	}
	c, err := NewCurve(pts)
	if err != nil {
		panic(err) // replicas is never empty in callers
	}
	return c
}

// At evaluates the curve at x with linear interpolation, clamping outside
// the sampled range.
func (c *Curve) At(x float64) float64 {
	n := len(c.xs)
	if x <= c.xs[0] {
		return c.ys[0]
	}
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Duration converts model seconds to a time.Duration.
func Duration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
