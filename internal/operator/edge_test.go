package operator

import (
	"fmt"
	"testing"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
)

// TestControllerWaitsForUnschedulablePods: a job whose pods cannot all be
// placed stays Pending and launches only once capacity appears.
func TestControllerWaitsForUnschedulablePods(t *testing.T) {
	loop, store, _, app := testRig(t, 1, 4) // one 4-CPU node
	blocker := &k8s.Pod{
		ObjectMeta: k8s.ObjectMeta{Name: "squatter", Labels: map[string]string{"charmjob": ""}},
		Spec:       k8s.PodSpec{CPU: 3},
		Status:     k8s.PodStatus{Phase: k8s.PodPending},
	}
	if err := store.Create(blocker); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	if err := store.Create(mkJob("j1", 2)); err != nil {
		t.Fatal(err)
	}
	// Only 1 CPU free: the job cannot get both workers running. Bound the
	// steps since the controller requeues forever.
	for i := 0; i < 40 && loop.Step(); i++ {
	}
	if app.launches != 0 {
		t.Fatalf("launched with unschedulable pods")
	}
	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	if got := obj.(*CharmJob).Status.Phase; got == JobRunning {
		t.Fatal("job Running without pods")
	}
	// Free the squatter: the job must launch.
	if err := store.Delete(k8s.KindPod, "squatter"); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if app.launches != 1 {
		t.Errorf("launches = %d after capacity freed", app.launches)
	}
}

// TestControllerFailureRestart: failed worker pods trigger the §3.2.2
// restart path and bump Status.Restarts.
func TestControllerFailureRestart(t *testing.T) {
	loop, store, ctrl, app := testRig(t, 4, 16)
	restarted := 0
	ctrl.OnRestarted = func(job *CharmJob) { restarted++ }
	if err := store.Create(mkJob("j1", 4)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if app.launches == 0 {
		t.Fatal("job never launched")
	}

	if n := k8s.MarkFailed(store, map[string]string{"charmjob": "j1", "role": "worker"}); n == 0 {
		t.Fatal("no pods failed")
	}
	loop.RunUntilIdle()

	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	job := obj.(*CharmJob)
	if job.Status.Restarts == 0 {
		t.Error("restart not recorded")
	}
	if restarted == 0 {
		t.Error("OnRestarted hook not called")
	}
	if job.Status.Phase != JobRunning {
		t.Errorf("job phase after restart = %s", job.Status.Phase)
	}
	// The app was stopped and relaunched.
	if app.stops == 0 || app.launches < 2 {
		t.Errorf("stops=%d launches=%d", app.stops, app.launches)
	}
}

// TestManagerGapKickExpandsLater: a job started small expands automatically
// once its rescale gap expires — the operator's requeue-driven kick.
func TestManagerGapKickExpandsLater(t *testing.T) {
	loop, store, ctrl, app := testRig(t, 4, 16)
	mgr, err := NewManager(loop, store, ctrl, core.Config{
		Policy: core.Elastic, Capacity: 64, RescaleGap: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill most of the cluster with a short-gap job, then submit another
	// that starts small.
	a := mkJob("a", 0)
	a.Spec.MinReplicas, a.Spec.MaxReplicas, a.Spec.Priority = 48, 48, 3
	if err := mgr.Submit(a); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	b := mkJob("b", 0)
	b.Spec.MinReplicas, b.Spec.MaxReplicas, b.Spec.Priority = 8, 32, 3
	if err := mgr.Submit(b); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	bj, _ := mgr.CoreJob("b")
	if bj.Replicas != 16 {
		t.Fatalf("b started at %d, want 16 (free slots)", bj.Replicas)
	}
	// Finish a: 48 slots free, but b is inside its gap — no expand yet.
	if err := mgr.JobFinished("a"); err != nil {
		t.Fatal(err)
	}
	loop.Settle()
	if bj.Replicas != 16 {
		t.Fatalf("b expanded inside its gap to %d", bj.Replicas)
	}
	// The armed kick fires at gap expiry and expands b to its max.
	loop.RunUntilIdle()
	if bj.Replicas != 32 {
		t.Errorf("b = %d replicas after gap expiry, want 32", bj.Replicas)
	}
	if app.expands == 0 {
		t.Error("no expand reached the application")
	}
	if bj.Rescales != 1 {
		t.Errorf("b.Rescales = %d", bj.Rescales)
	}
}

// TestWorkerPodsSortedByIndex guards the nodelist ordering the runtime
// relies on.
func TestWorkerPodsSortedByIndex(t *testing.T) {
	loop, store, ctrl, _ := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 12)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	pods := ctrl.workerPods("j1")
	if len(pods) != 12 {
		t.Fatalf("%d worker pods", len(pods))
	}
	for i, p := range pods {
		if p.Name != WorkerName("j1", i) {
			t.Fatalf("pod %d = %s (index-10 must sort after index-9)", i, p.Name)
		}
	}
	_ = fmt.Sprint() // keep fmt imported for future debugging
}
