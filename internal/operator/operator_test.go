package operator

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
)

var t0 = time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)

// fakeApp records AppRuntime calls.
type fakeApp struct {
	launches, shrinks, expands, stops int
	lastNodelist                      []string
	failShrink                        bool
	log                               []string
}

func (a *fakeApp) Launch(job *CharmJob, nodelist []string) error {
	a.launches++
	a.lastNodelist = nodelist
	a.log = append(a.log, fmt.Sprintf("launch %s %d", job.Name, len(nodelist)))
	return nil
}

func (a *fakeApp) Shrink(job *CharmJob, newReplicas int) error {
	if a.failShrink {
		return errors.New("application declined")
	}
	a.shrinks++
	a.log = append(a.log, fmt.Sprintf("shrink %s %d", job.Name, newReplicas))
	return nil
}

func (a *fakeApp) Expand(job *CharmJob, newReplicas int, nodelist []string) error {
	a.expands++
	a.lastNodelist = nodelist
	a.log = append(a.log, fmt.Sprintf("expand %s %d", job.Name, newReplicas))
	return nil
}

func (a *fakeApp) Stop(job *CharmJob) {
	a.stops++
	a.log = append(a.log, "stop "+job.Name)
}

func testRig(t *testing.T, nodes, cpu int) (*k8s.EventLoop, *k8s.Store, *Controller, *fakeApp) {
	t.Helper()
	loop := k8s.NewEventLoop(t0)
	store := k8s.NewStore(loop)
	k8s.NewPodScheduler(loop, store)
	k8s.NewKubelet(loop, store, time.Second)
	app := &fakeApp{}
	ctrl := NewController(loop, store, app)
	for i := 0; i < nodes; i++ {
		if err := store.Create(&k8s.Node{
			ObjectMeta:  k8s.ObjectMeta{Name: fmt.Sprintf("node-%d", i)},
			CapacityCPU: cpu,
		}); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntilIdle()
	return loop, store, ctrl, app
}

func mkJob(name string, replicas int) *CharmJob {
	return &CharmJob{
		ObjectMeta: k8s.ObjectMeta{Name: name},
		Spec: CharmJobSpec{
			MinReplicas: 1, MaxReplicas: 64, Priority: 3,
			Replicas: replicas, CPUPerWorker: 1,
			Workload: WorkloadSpec{Grid: 512, Steps: 100},
		},
	}
}

func TestValidate(t *testing.T) {
	good := mkJob("a", 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	bad := mkJob("", 4)
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty name")
	}
	bad2 := mkJob("b", 4)
	bad2.Spec.MinReplicas = 8
	bad2.Spec.MaxReplicas = 4
	if err := bad2.Validate(); err == nil {
		t.Error("accepted max < min")
	}
	bad3 := mkJob("c", 4)
	bad3.Spec.CPUPerWorker = 0
	if err := bad3.Validate(); err == nil {
		t.Error("accepted zero cpu")
	}
}

func TestControllerLaunchesJob(t *testing.T) {
	loop, store, _, app := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 4)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	if app.launches != 1 {
		t.Fatalf("launches = %d", app.launches)
	}
	if len(app.lastNodelist) != 4 {
		t.Errorf("nodelist = %v", app.lastNodelist)
	}
	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	job := obj.(*CharmJob)
	if job.Status.Phase != JobRunning || job.Status.LaunchedReplicas != 4 {
		t.Errorf("status = %+v", job.Status)
	}
	// Workers + launcher exist; nodelist ConfigMap written.
	if got := len(store.Pods(map[string]string{"charmjob": "j1", "role": "worker"})); got != 4 {
		t.Errorf("%d worker pods", got)
	}
	if _, ok := store.Get(k8s.KindPod, LauncherName("j1")); !ok {
		t.Error("launcher pod missing")
	}
	if _, ok := store.Get(k8s.KindConfigMap, NodelistName("j1")); !ok {
		t.Error("nodelist ConfigMap missing")
	}
}

func TestControllerShrinkProtocol(t *testing.T) {
	loop, store, _, app := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 8)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	job := obj.(*CharmJob)
	job.Spec.Replicas = 4
	if err := store.Update(job); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	if app.shrinks != 1 {
		t.Fatalf("shrinks = %d", app.shrinks)
	}
	// Pods above index 3 removed only after the ack (§3.1 ordering):
	// the shrink call must appear in the log before the pod count drops.
	if got := len(store.Pods(map[string]string{"charmjob": "j1", "role": "worker"})); got != 4 {
		t.Errorf("%d worker pods after shrink", got)
	}
	obj, _ = store.Get(k8s.KindCharmJob, "j1")
	job = obj.(*CharmJob)
	if job.Status.LaunchedReplicas != 4 || job.Status.Rescales != 1 {
		t.Errorf("status = %+v", job.Status)
	}
	if len(job.Status.Nodelist) != 4 {
		t.Errorf("nodelist = %v", job.Status.Nodelist)
	}
}

func TestControllerShrinkDeclinedKeepsPods(t *testing.T) {
	loop, store, _, app := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 8)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	app.failShrink = true
	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	job := obj.(*CharmJob)
	job.Spec.Replicas = 4
	if err := store.Update(job); err != nil {
		t.Fatal(err)
	}
	// Run a bounded number of steps (the controller keeps retrying).
	for i := 0; i < 20; i++ {
		loop.Step()
	}
	if got := len(store.Pods(map[string]string{"charmjob": "j1", "role": "worker"})); got != 8 {
		t.Errorf("%d worker pods after declined shrink, want 8", got)
	}
	// Once the app accepts, the shrink completes.
	app.failShrink = false
	loop.RunUntilIdle()
	if got := len(store.Pods(map[string]string{"charmjob": "j1", "role": "worker"})); got != 4 {
		t.Errorf("%d worker pods after accepted shrink", got)
	}
}

func TestControllerExpandProtocol(t *testing.T) {
	loop, store, _, app := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 4)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	obj, _ := store.Get(k8s.KindCharmJob, "j1")
	job := obj.(*CharmJob)
	job.Spec.Replicas = 12
	if err := store.Update(job); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	if app.expands != 1 {
		t.Fatalf("expands = %d", app.expands)
	}
	if len(app.lastNodelist) != 12 {
		t.Errorf("expand nodelist had %d hosts", len(app.lastNodelist))
	}
	if got := len(store.Pods(map[string]string{"charmjob": "j1", "role": "worker"})); got != 12 {
		t.Errorf("%d worker pods after expand", got)
	}
	obj, _ = store.Get(k8s.KindCharmJob, "j1")
	if obj.(*CharmJob).Status.LaunchedReplicas != 12 {
		t.Errorf("launched = %d", obj.(*CharmJob).Status.LaunchedReplicas)
	}
}

func TestControllerComplete(t *testing.T) {
	loop, store, ctrl, app := testRig(t, 4, 16)
	if err := store.Create(mkJob("j1", 4)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if err := ctrl.Complete("j1"); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if app.stops != 1 {
		t.Errorf("stops = %d", app.stops)
	}
	if got := len(store.Pods(map[string]string{"charmjob": "j1"})); got != 0 {
		t.Errorf("%d pods after Complete", got)
	}
	// Idempotent.
	if err := ctrl.Complete("j1"); err != nil {
		t.Errorf("second Complete: %v", err)
	}
	if err := ctrl.Complete("ghost"); err == nil {
		t.Error("Complete of unknown job succeeded")
	}
}

func TestWorkerIndexParsing(t *testing.T) {
	if workerIndex(WorkerName("my-job", 7)) != 7 {
		t.Error("workerIndex failed on generated name")
	}
	if workerIndex("garbage") != -1 {
		t.Error("workerIndex accepted garbage")
	}
}

func TestManagerSubmitAndFinish(t *testing.T) {
	loop, store, ctrl, app := testRig(t, 4, 16)
	mgr, err := NewManager(loop, store, ctrl, core.Config{
		Policy: core.Elastic, Capacity: 64, RescaleGap: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := mkJob("j1", 0)
	job.Spec.MinReplicas, job.Spec.MaxReplicas = 4, 16
	if err := mgr.Submit(job); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Submit(job); err == nil {
		t.Error("duplicate submit accepted")
	}
	loop.RunUntilIdle()
	// Policy started the job at max (empty cluster).
	obj, ok := store.Get(k8s.KindCharmJob, "j1")
	if !ok {
		t.Fatal("CharmJob not created")
	}
	if got := obj.(*CharmJob).Spec.Replicas; got != 16 {
		t.Errorf("granted %d replicas, want 16", got)
	}
	if app.launches != 1 {
		t.Errorf("launches = %d", app.launches)
	}
	cj, ok := mgr.CoreJob("j1")
	if !ok || cj.State != core.StateRunning {
		t.Fatalf("core job state: %+v", cj)
	}
	if err := mgr.JobFinished("j1"); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if cj.State != core.StateCompleted {
		t.Errorf("state after finish = %v", cj.State)
	}
	if err := mgr.JobFinished("ghost"); err == nil {
		t.Error("finishing unknown job succeeded")
	}
}

func TestManagerElasticShrinkFlow(t *testing.T) {
	loop, store, ctrl, app := testRig(t, 4, 16)
	mgr, err := NewManager(loop, store, ctrl, core.Config{
		Policy: core.Elastic, Capacity: 64, RescaleGap: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	low := mkJob("low", 0)
	low.Spec.Priority = 1
	low.Spec.MinReplicas, low.Spec.MaxReplicas = 8, 64
	if err := mgr.Submit(low); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	// Wait out the rescale gap on the virtual clock.
	loop.At(20*time.Second, func() {})
	loop.RunUntilIdle()

	high := mkJob("high", 0)
	high.Spec.Priority = 5
	high.Spec.MinReplicas, high.Spec.MaxReplicas = 16, 32
	if err := mgr.Submit(high); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()

	if app.shrinks != 1 {
		t.Errorf("shrinks = %d", app.shrinks)
	}
	hj, _ := mgr.CoreJob("high")
	if hj.State != core.StateRunning {
		t.Errorf("high = %v", hj.State)
	}
	lw := len(store.Pods(map[string]string{"charmjob": "low", "role": "worker"}))
	hw := len(store.Pods(map[string]string{"charmjob": "high", "role": "worker"}))
	if lw+hw > 64 {
		t.Errorf("oversubscribed: low %d + high %d", lw, hw)
	}
	if hw != 32 {
		t.Errorf("high has %d workers, want 32", hw)
	}
}
