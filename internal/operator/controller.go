package operator

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"elastichpc/internal/k8s"
)

// Controller reconciles CharmJob objects: it creates launcher and worker
// pods, writes the nodelist, launches the application once all pods run,
// and executes the shrink/expand protocol of §3.1 when Spec.Replicas moves
// away from the launched worker count.
type Controller struct {
	loop  k8s.Loop
	store *k8s.Store
	app   AppRuntime
	queue *k8s.Workqueue

	// RequeueDelay spaces retries when a job is waiting on pods.
	RequeueDelay time.Duration

	// Reconciles counts reconcile passes (observability for tests).
	Reconciles int

	// OnLaunched, if set, runs after a job's application starts.
	OnLaunched func(job *CharmJob)
	// OnRescaled, if set, runs after a completed shrink/expand.
	OnRescaled func(job *CharmJob, from, to int)
	// OnRestarted, if set, runs after a failure-triggered restart begins.
	OnRestarted func(job *CharmJob)
}

// NewController wires a controller to the store and application runtime.
func NewController(loop k8s.Loop, store *k8s.Store, app AppRuntime) *Controller {
	c := &Controller{loop: loop, store: store, app: app, RequeueDelay: time.Second}
	c.queue = k8s.NewWorkqueue(loop, c.reconcile)
	store.Subscribe(k8s.KindCharmJob, func(ev k8s.Event) {
		if ev.Type == k8s.Deleted {
			return
		}
		c.queue.Add(ev.Object.Meta().Key())
	})
	// Pod events wake the owning job's reconcile (the informer pattern).
	store.Subscribe(k8s.KindPod, func(ev k8s.Event) {
		if owner := ev.Object.Meta().Labels["charmjob"]; owner != "" {
			c.queue.Add(owner)
		}
	})
	return c
}

// workerPods lists the job's worker pods sorted by index.
func (c *Controller) workerPods(job string) []*k8s.Pod {
	pods := c.store.Pods(map[string]string{"charmjob": job, "role": "worker"})
	sort.Slice(pods, func(i, j int) bool { return workerIndex(pods[i].Name) < workerIndex(pods[j].Name) })
	return pods
}

func workerIndex(name string) int {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return -1
	}
	var idx int
	if _, err := fmt.Sscanf(name[i+1:], "%d", &idx); err != nil {
		return -1
	}
	return idx
}

// reconcile drives one CharmJob toward its spec.
func (c *Controller) reconcile(key string) {
	c.Reconciles++
	obj, ok := c.store.Get(k8s.KindCharmJob, key)
	if !ok {
		return
	}
	job := obj.(*CharmJob)
	if job.Status.Phase == JobSucceeded || job.Status.Phase == JobPreempted {
		// Preempted jobs hold no pods and wait for the policy scheduler
		// to restart them; there is nothing to reconcile toward.
		return
	}

	// Fault tolerance (§3.2.2): a failed worker means the application
	// crashed. Tear the job down and relaunch it; the application resumes
	// from its last checkpoint when Spec.CheckpointPeriod is set ("launch
	// with the extra restart parameter").
	if c.handleFailure(job) {
		return
	}

	workers := c.workerPods(job.Name)
	running := 0
	for _, p := range workers {
		if p.Status.Phase == k8s.PodRunning {
			running++
		}
	}
	if job.Status.ReadyReplicas != running {
		job.Status.ReadyReplicas = running
		if err := c.store.Update(job); err != nil {
			return
		}
		// The update re-enqueues this key; continue there with fresh
		// state.
		return
	}

	// Ensure the launcher pod exists (runs mpirun/charmrun; requests one
	// slot, mirroring the MPI Operator layout).
	if _, ok := c.store.Get(k8s.KindPod, LauncherName(job.Name)); !ok {
		launcher := &k8s.Pod{
			ObjectMeta: k8s.ObjectMeta{
				Name:   LauncherName(job.Name),
				Labels: map[string]string{"charmjob": job.Name, "role": "launcher"},
			},
			// The launcher is lightweight; it does not reserve a
			// worker slot (the paper's experiments size jobs up to
			// the full 64 vCPUs).
			Spec:   k8s.PodSpec{CPU: 0, AffinityKey: job.Name},
			Status: k8s.PodStatus{Phase: k8s.PodPending},
		}
		if err := c.store.Create(launcher); err != nil {
			return
		}
	}

	// Create missing worker pods up to Spec.Replicas.
	created := false
	have := make(map[int]bool, len(workers))
	for _, p := range workers {
		have[workerIndex(p.Name)] = true
	}
	for i := 0; i < job.Spec.Replicas; i++ {
		if have[i] {
			continue
		}
		worker := &k8s.Pod{
			ObjectMeta: k8s.ObjectMeta{
				Name:   WorkerName(job.Name, i),
				Labels: map[string]string{"charmjob": job.Name, "role": "worker"},
			},
			Spec: k8s.PodSpec{
				CPU:         job.Spec.CPUPerWorker,
				ShmBytes:    job.Spec.ShmBytes,
				AffinityKey: job.Name,
			},
			Status: k8s.PodStatus{Phase: k8s.PodPending},
		}
		if err := c.store.Create(worker); err != nil {
			return
		}
		created = true
	}
	if created {
		return // pod events re-enqueue when they start running
	}

	// Wait for the desired workers to be running.
	desired := job.Spec.Replicas
	runningSet := c.runningNodelist(job.Name, desired)
	if len(runningSet) < desired {
		c.queue.AddAfter(key, c.RequeueDelay)
		return
	}

	switch {
	case job.Status.Phase == JobPending || job.Status.Phase == "":
		// First launch: write the nodelist, start the application.
		if err := c.writeNodelist(job.Name, runningSet); err != nil {
			return
		}
		if err := c.app.Launch(job, runningSet); err != nil {
			c.queue.AddAfter(key, c.RequeueDelay)
			return
		}
		job.Status.Phase = JobRunning
		job.Status.LaunchedReplicas = desired
		job.Status.Nodelist = runningSet
		if err := c.store.Update(job); err != nil {
			return
		}
		if c.OnLaunched != nil {
			c.OnLaunched(job)
		}

	case desired < job.Status.LaunchedReplicas:
		// Shrink (§3.1): signal first, remove pods only after the ack.
		from := job.Status.LaunchedReplicas
		if err := c.app.Shrink(job, desired); err != nil {
			c.queue.AddAfter(key, c.RequeueDelay)
			return
		}
		for i := desired; i < from; i++ {
			_ = c.store.Delete(k8s.KindPod, WorkerName(job.Name, i))
		}
		if err := c.writeNodelist(job.Name, runningSet); err != nil {
			return
		}
		job.Status.Phase = JobRunning
		job.Status.LaunchedReplicas = desired
		job.Status.Nodelist = runningSet
		job.Status.Rescales++
		if err := c.store.Update(job); err != nil {
			return
		}
		if c.OnRescaled != nil {
			c.OnRescaled(job, from, desired)
		}

	case desired > job.Status.LaunchedReplicas:
		// Expand (§3.1): pods were added above and are running; update
		// the nodelist, then signal the application.
		from := job.Status.LaunchedReplicas
		if err := c.writeNodelist(job.Name, runningSet); err != nil {
			return
		}
		if err := c.app.Expand(job, desired, runningSet); err != nil {
			c.queue.AddAfter(key, c.RequeueDelay)
			return
		}
		job.Status.Phase = JobRunning
		job.Status.LaunchedReplicas = desired
		job.Status.Nodelist = runningSet
		job.Status.Rescales++
		if err := c.store.Update(job); err != nil {
			return
		}
		if c.OnRescaled != nil {
			c.OnRescaled(job, from, desired)
		}
	}
}

// handleFailure restarts a job whose pods failed. It reports whether a
// restart was initiated (the reconcile pass should stop; the pod deletions
// re-enqueue the job).
func (c *Controller) handleFailure(job *CharmJob) bool {
	failed := false
	for _, p := range c.store.Pods(map[string]string{"charmjob": job.Name}) {
		if p.Status.Phase == k8s.PodFailed {
			failed = true
			break
		}
	}
	if !failed {
		return false
	}
	if job.Status.Phase == JobRunning || job.Status.Phase == JobRescaling {
		c.app.Stop(job)
	}
	k8s.DeletePods(c.store, map[string]string{"charmjob": job.Name})
	job.Status.Phase = JobPending
	job.Status.LaunchedReplicas = 0
	job.Status.ReadyReplicas = 0
	job.Status.Nodelist = nil
	job.Status.Restarts++
	_ = c.store.Update(job)
	if c.OnRestarted != nil {
		c.OnRestarted(job)
	}
	return true
}

// runningNodelist returns the DNS-style names of the first `desired` worker
// pods that are Running.
func (c *Controller) runningNodelist(job string, desired int) []string {
	var hosts []string
	for _, p := range c.workerPods(job) {
		if workerIndex(p.Name) < desired && p.Status.Phase == k8s.PodRunning {
			hosts = append(hosts, p.Name)
		}
	}
	return hosts
}

// writeNodelist creates or updates the job's nodelist ConfigMap, which the
// Charm++ launcher mounts to find its workers (§3.1).
func (c *Controller) writeNodelist(job string, hosts []string) error {
	cm := &k8s.ConfigMap{
		ObjectMeta: k8s.ObjectMeta{
			Name:   NodelistName(job),
			Labels: map[string]string{"charmjob": job},
		},
		Data: map[string]string{"nodelist": strings.Join(hosts, "\n")},
	}
	if _, ok := c.store.Get(k8s.KindConfigMap, NodelistName(job)); ok {
		return c.store.Update(cm)
	}
	return c.store.Create(cm)
}

// Preempt checkpoint-stops a running job for a forced capacity reclaim: the
// application is stopped (persisting its periodic checkpoint, if enabled),
// every pod is deleted, and the job parks in the Preempted phase until the
// policy scheduler restarts it — the §3.2.2 fault-tolerance machinery turned
// into a first-class scheduling action.
func (c *Controller) Preempt(jobName string) error {
	obj, ok := c.store.Get(k8s.KindCharmJob, jobName)
	if !ok {
		return fmt.Errorf("operator: job %q not found", jobName)
	}
	job := obj.(*CharmJob)
	if job.Status.Phase == JobSucceeded || job.Status.Phase == JobPreempted {
		return fmt.Errorf("operator: job %q is %s, cannot preempt", jobName, job.Status.Phase)
	}
	c.app.Stop(job)
	job.Status.Phase = JobPreempted
	job.Status.LaunchedReplicas = 0
	job.Status.ReadyReplicas = 0
	job.Status.Nodelist = nil
	job.Status.Preemptions++
	if err := c.store.Update(job); err != nil {
		return err
	}
	k8s.DeletePods(c.store, map[string]string{"charmjob": jobName})
	return nil
}

// Complete marks a job Succeeded, marks its pods Succeeded (releasing their
// slots), stops the application, and deletes its worker/launcher pods.
func (c *Controller) Complete(jobName string) error {
	obj, ok := c.store.Get(k8s.KindCharmJob, jobName)
	if !ok {
		return fmt.Errorf("operator: job %q not found", jobName)
	}
	job := obj.(*CharmJob)
	if job.Status.Phase == JobSucceeded {
		return nil
	}
	c.app.Stop(job)
	job.Status.Phase = JobSucceeded
	if err := c.store.Update(job); err != nil {
		return err
	}
	k8s.DeletePods(c.store, map[string]string{"charmjob": jobName})
	return nil
}
