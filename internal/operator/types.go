// Package operator implements the paper's Kubernetes operator for Charm++
// jobs (§3.1): a CharmJob custom resource extending the MPI Operator's job
// with minReplicas/maxReplicas/priority fields (§3.2.1), and a controller
// that launches launcher+worker pods, maintains the nodelist the Charm++
// runtime uses to connect to workers, and drives the shrink/expand protocol:
//
//	shrink: signal the application over CCS → await the acknowledgment →
//	        remove the extra pods;
//	expand: add new pods → update the nodelist → signal the application.
//
// The package also provides Manager, which embeds the elastic scheduling
// policy (internal/core) into the operator the way the paper integrates its
// scheduler, actuating policy decisions by mutating CharmJob specs.
package operator

import (
	"fmt"

	"elastichpc/internal/k8s"
)

// JobPhase is a CharmJob's lifecycle phase.
type JobPhase string

// CharmJob phases.
const (
	JobPending   JobPhase = "Pending"   // created, pods not all running
	JobRunning   JobPhase = "Running"   // application launched
	JobRescaling JobPhase = "Rescaling" // shrink/expand in flight
	JobSucceeded JobPhase = "Succeeded"
	// JobPreempted marks a job checkpoint-stopped by a forced capacity
	// reclaim (node loss, spot preemption). The controller leaves it
	// alone until the policy scheduler restarts it, which resets the
	// phase to Pending.
	JobPreempted JobPhase = "Preempted"
)

// CharmJobSpec is the desired state. Replicas is the knob the elastic
// scheduler turns; the paper's operator rescales a job "when the deployment
// YAML file is modified".
type CharmJobSpec struct {
	// MinReplicas and MaxReplicas bound the malleable allocation (§3.2.1).
	MinReplicas int
	MaxReplicas int
	// Priority is the user-defined priority; larger is more important.
	Priority int
	// Replicas is the desired worker count, maintained by the scheduler.
	Replicas int
	// CPUPerWorker is the vCPU request per worker pod (1 in the paper's
	// non-SMP, one-PE-per-worker configuration).
	CPUPerWorker int
	// ShmBytes sizes the memory-backed emptyDir mounted at /dev/shm.
	ShmBytes int64
	// Workload describes what the job computes; the emulation uses it to
	// model runtime (grid size and iteration count for Jacobi2D).
	Workload WorkloadSpec
	// CheckpointPeriod enables fault tolerance (paper §3.2.2): the
	// application checkpoints every CheckpointPeriod iterations, and the
	// controller relaunches a failed job from its last checkpoint ("the
	// extra restart parameter"). 0 restarts failed jobs from scratch.
	CheckpointPeriod int
}

// WorkloadSpec describes the application the job runs.
type WorkloadSpec struct {
	Grid  int
	Steps int
}

// CharmJobStatus is the observed state.
type CharmJobStatus struct {
	Phase JobPhase
	// ReadyReplicas is the number of Running worker pods.
	ReadyReplicas int
	// LaunchedReplicas is the worker count the application currently runs
	// with (updated after each completed rescale).
	LaunchedReplicas int
	// Nodelist is the worker list handed to the Charm++ runtime.
	Nodelist []string
	// Rescales counts completed shrink/expand operations.
	Rescales int
	// Restarts counts failure-triggered relaunches (§3.2.2 fault
	// tolerance).
	Restarts int
	// Preemptions counts forced checkpoint-stops from capacity reclaims.
	Preemptions int
}

// CharmJob is the custom resource.
type CharmJob struct {
	k8s.ObjectMeta
	Spec   CharmJobSpec
	Status CharmJobStatus
}

// Meta implements k8s.Object.
func (j *CharmJob) Meta() *k8s.ObjectMeta { return &j.ObjectMeta }

// Kind implements k8s.Object.
func (j *CharmJob) Kind() k8s.Kind { return k8s.KindCharmJob }

// DeepCopy implements k8s.Object.
func (j *CharmJob) DeepCopy() k8s.Object {
	cp := *j
	cp.Labels = copyMap(j.Labels)
	cp.Status.Nodelist = append([]string(nil), j.Status.Nodelist...)
	return &cp
}

func copyMap(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Validate checks the spec.
func (j *CharmJob) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("operator: job has no name")
	}
	if j.Spec.MinReplicas < 1 || j.Spec.MaxReplicas < j.Spec.MinReplicas {
		return fmt.Errorf("operator: job %s: bad replica bounds [%d,%d]",
			j.Name, j.Spec.MinReplicas, j.Spec.MaxReplicas)
	}
	if j.Spec.CPUPerWorker < 1 {
		return fmt.Errorf("operator: job %s: cpuPerWorker %d", j.Name, j.Spec.CPUPerWorker)
	}
	return nil
}

// WorkerName returns the name of worker pod i for the job.
func WorkerName(job string, i int) string { return fmt.Sprintf("%s-worker-%d", job, i) }

// LauncherName returns the job's launcher pod name.
func LauncherName(job string) string { return job + "-launcher" }

// NodelistName returns the job's nodelist ConfigMap name.
func NodelistName(job string) string { return job + "-nodelist" }

// AppRuntime is the controller's channel to the running Charm++ application
// — the CCS interface in the real system. Launch/Shrink/Expand block until
// the application acknowledges (the controller relies on the shrink ack
// before deleting pods). The cluster emulation implements this with the
// modelled application; examples implement it with a real charm.Runtime.
type AppRuntime interface {
	// Launch starts the application on the given worker nodelist.
	Launch(job *CharmJob, nodelist []string) error
	// Shrink asks the application to shrink to newReplicas and returns
	// after the acknowledgment.
	Shrink(job *CharmJob, newReplicas int) error
	// Expand asks the application to expand to newReplicas using the
	// updated nodelist.
	Expand(job *CharmJob, newReplicas int, nodelist []string) error
	// Stop tears the application down (job finished or cancelled).
	Stop(job *CharmJob)
}
