package operator

import (
	"fmt"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
)

// Manager embeds the elastic scheduling policy into the operator, the way
// the paper integrates its scheduler (§3.2): policy decisions are actuated
// by creating CharmJob objects and mutating their Spec.Replicas, which the
// Controller then reconciles into pod churn and CCS signals.
type Manager struct {
	loop  k8s.Loop
	store *k8s.Store
	ctrl  *Controller
	sched *core.Scheduler

	jobs map[string]*managedJob
	// byRef interns job identities the same way the simulator does: the
	// scheduler's core.Job carries Ref = its index here, so actuator
	// callbacks resolve the managed record with an index load instead of
	// a map lookup per scheduling action.
	byRef  []*managedJob
	kickAt time.Time
	armed  bool
	// forced marks jobs whose latest shrink was ordered by a capacity
	// reclaim. Actuation is asynchronous (the controller reconciles the
	// spec change later, when Scheduler.Reclaiming is long false), so the
	// attribution travels with the job name until the app runtime
	// consumes it via TakeForcedRescale.
	forced map[string]bool
	// Submitted counts jobs accepted by the policy.
	Submitted int
}

// managedJob pairs the scheduler's job record with its CharmJob template.
type managedJob struct {
	core     *core.Job
	template *CharmJob
}

// NewManager creates a manager that schedules onto the given capacity.
func NewManager(loop k8s.Loop, store *k8s.Store, ctrl *Controller, cfg core.Config) (*Manager, error) {
	m := &Manager{
		loop: loop, store: store, ctrl: ctrl,
		jobs:   make(map[string]*managedJob),
		forced: make(map[string]bool),
	}
	sched, err := core.NewScheduler(cfg, (*managerActuator)(m), loop.Now)
	if err != nil {
		return nil, err
	}
	m.sched = sched
	return m, nil
}

// Scheduler exposes the embedded policy scheduler (read-only use).
func (m *Manager) Scheduler() *core.Scheduler { return m.sched }

// CoreJob returns the scheduler's record for a job.
func (m *Manager) CoreJob(name string) (*core.Job, bool) {
	mj, ok := m.jobs[name]
	if !ok {
		return nil, false
	}
	return mj.core, true
}

// Submit hands a CharmJob to the scheduling policy. The k8s object is only
// created once the policy starts the job; until then it waits in the
// scheduler's internal priority queue (§3.2.1).
func (m *Manager) Submit(job *CharmJob) error {
	if err := job.Validate(); err != nil {
		return err
	}
	if _, dup := m.jobs[job.Name]; dup {
		return fmt.Errorf("operator: job %q already submitted", job.Name)
	}
	cj := &core.Job{
		ID:          job.Name,
		Ref:         int32(len(m.byRef)),
		Priority:    job.Spec.Priority,
		MinReplicas: job.Spec.MinReplicas,
		MaxReplicas: job.Spec.MaxReplicas,
		SubmitTime:  m.loop.Now(),
	}
	mj := &managedJob{core: cj, template: job.DeepCopy().(*CharmJob)}
	m.jobs[job.Name] = mj
	m.byRef = append(m.byRef, mj)
	m.Submitted++
	if err := m.sched.Submit(cj); err != nil {
		delete(m.jobs, job.Name)
		m.byRef = m.byRef[:len(m.byRef)-1]
		return err
	}
	m.armKick()
	return nil
}

// SetCapacity applies a cluster capacity change (an availability event) to
// the policy scheduler. A shrink may forcibly rescale running CharmJobs or
// checkpoint-preempt them back to the queue; growth redistributes the new
// slots exactly as a completion would. A follow-up kick is armed so gap-
// blocked rescales re-run once eligible.
func (m *Manager) SetCapacity(n int) error {
	if err := m.sched.SetCapacity(n); err != nil {
		return err
	}
	m.armKick()
	return nil
}

// JobFinished is called when a job's application completes: the controller
// tears the job down and the policy redistributes the freed slots (Figure 3).
func (m *Manager) JobFinished(name string) error {
	mj, ok := m.jobs[name]
	if !ok {
		return fmt.Errorf("operator: unknown job %q", name)
	}
	if err := m.ctrl.Complete(name); err != nil {
		return err
	}
	m.sched.OnJobComplete(mj.core)
	m.armKick()
	return nil
}

// armKick schedules a Reschedule pass at the next rescale-gap expiry, the
// operator's requeue-driven equivalent of the simulator's kick events.
func (m *Manager) armKick() {
	at, ok := m.sched.NextGapExpiry()
	if !ok {
		return
	}
	if m.armed && !m.kickAt.After(at) {
		return // an earlier or equal kick is already armed
	}
	m.armed = true
	m.kickAt = at
	m.loop.At(at.Sub(m.loop.Now()), func() {
		if !m.kickAt.Equal(at) {
			return // superseded by an earlier kick
		}
		m.armed = false
		m.sched.Reschedule()
		m.armKick()
	})
}

// managerActuator implements core.Actuator by mutating CharmJob objects.
type managerActuator Manager

func (a *managerActuator) mgr() *Manager { return (*Manager)(a) }

// StartJob creates the CharmJob object with the granted replica count. A
// restart after a preemption reuses the existing object, carrying the
// restart/preemption counters forward.
func (a *managerActuator) StartJob(j *core.Job, replicas int) error {
	m := a.mgr()
	// The identity check (not just bounds) rejects jobs that never went
	// through Manager.Submit — their zero Ref would otherwise silently
	// resolve to the first managed job.
	if j.Ref < 0 || int(j.Ref) >= len(m.byRef) || m.byRef[j.Ref].core != j {
		return fmt.Errorf("operator: unknown job %q", j.ID)
	}
	mj := m.byRef[j.Ref]
	obj := mj.template.DeepCopy().(*CharmJob)
	obj.Spec.Replicas = replicas
	obj.Status = CharmJobStatus{Phase: JobPending}
	if prev, exists := m.store.Get(k8s.KindCharmJob, obj.Key()); exists {
		ps := prev.(*CharmJob).Status
		obj.Status.Restarts = ps.Restarts
		obj.Status.Preemptions = ps.Preemptions
		return m.store.Update(obj)
	}
	return m.store.Create(obj)
}

// ShrinkJob lowers Spec.Replicas; the controller signals the app and removes
// pods after the ack. A shrink ordered during a capacity reclaim is marked
// forced so the app runtime can attribute its overhead to the availability
// event once the (asynchronous) rescale actually lands.
func (a *managerActuator) ShrinkJob(j *core.Job, to int) error {
	m := a.mgr()
	if m.sched.Reclaiming() {
		m.forced[j.ID] = true
	}
	return a.setReplicas(j.ID, to)
}

// TakeForcedRescale reports whether the job's pending rescale was forced by
// a capacity reclaim, clearing the mark.
func (m *Manager) TakeForcedRescale(name string) bool {
	if m.forced[name] {
		delete(m.forced, name)
		return true
	}
	return false
}

// ExpandJob raises Spec.Replicas; the controller adds pods, refreshes the
// nodelist, and signals the app.
func (a *managerActuator) ExpandJob(j *core.Job, to int) error {
	return a.setReplicas(j.ID, to)
}

func (a *managerActuator) setReplicas(name string, to int) error {
	m := a.mgr()
	obj, ok := m.store.Get(k8s.KindCharmJob, name)
	if !ok {
		return fmt.Errorf("operator: CharmJob %q not found", name)
	}
	job := obj.(*CharmJob)
	job.Spec.Replicas = to
	return m.store.Update(job)
}

// PreemptJob checkpoint-stops a job during a forced capacity reclaim. The
// paper's policy avoids voluntary preemption to stay shared-filesystem-free
// (§3.2.2), so outside a reclaim the call is still refused — losing the
// hardware is not a policy choice.
func (a *managerActuator) PreemptJob(j *core.Job) error {
	m := a.mgr()
	if !m.sched.Reclaiming() {
		return fmt.Errorf("operator: voluntary preemption not supported")
	}
	return m.ctrl.Preempt(j.ID)
}
