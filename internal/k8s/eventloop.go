package k8s

import (
	"container/heap"
	"time"
)

// EventLoop is the control plane's single execution thread over a virtual
// clock: deferred work runs before time advances, timers fire in timestamp
// order. Running a full 40-minute scheduling experiment is a sequence of
// Settle-and-advance steps that completes in milliseconds of real time while
// preserving every causal ordering a real cluster would exhibit.
type EventLoop struct {
	now    time.Time
	defers []func()
	timers loopTimerHeap
	seq    int64
}

type loopTimer struct {
	at  time.Time
	fn  func()
	seq int64
}

type loopTimerHeap []*loopTimer

func (h loopTimerHeap) Len() int { return len(h) }
func (h loopTimerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h loopTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *loopTimerHeap) Push(x any)   { *h = append(*h, x.(*loopTimer)) }
func (h *loopTimerHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// NewEventLoop creates a loop starting at the given virtual time.
func NewEventLoop(start time.Time) *EventLoop {
	return &EventLoop{now: start}
}

// Now implements Loop.
func (l *EventLoop) Now() time.Time { return l.now }

// Defer implements Loop: fn runs during the next Settle, in FIFO order.
func (l *EventLoop) Defer(fn func()) { l.defers = append(l.defers, fn) }

// At implements Loop: fn runs once d has elapsed on the virtual clock.
// Non-positive delays run at the current instant (on the next Settle).
func (l *EventLoop) At(d time.Duration, fn func()) {
	if d <= 0 {
		l.Defer(fn)
		return
	}
	l.seq++
	heap.Push(&l.timers, &loopTimer{at: l.now.Add(d), fn: fn, seq: l.seq})
}

// Settle drains deferred work (including work deferred by that work) and
// reports how many functions ran. Time does not advance.
func (l *EventLoop) Settle() int {
	ran := 0
	for len(l.defers) > 0 {
		fn := l.defers[0]
		l.defers = l.defers[1:]
		fn()
		ran++
		if ran > 10_000_000 {
			panic("k8s: event loop livelock: deferred work never settles")
		}
	}
	return ran
}

// Step settles, then advances the clock to the next timer and runs every
// timer at that instant plus the work they defer. It reports false when
// nothing remains.
func (l *EventLoop) Step() bool {
	l.Settle()
	if len(l.timers) == 0 {
		return false
	}
	at := l.timers[0].at
	l.now = at
	for len(l.timers) > 0 && l.timers[0].at.Equal(at) {
		t := heap.Pop(&l.timers).(*loopTimer)
		t.fn()
	}
	l.Settle()
	return true
}

// RunUntil steps the loop until the predicate holds or no work remains. It
// reports whether the predicate held.
func (l *EventLoop) RunUntil(pred func() bool) bool {
	l.Settle()
	for !pred() {
		if !l.Step() {
			return pred()
		}
	}
	return true
}

// RunUntilIdle drains all deferred work and timers.
func (l *EventLoop) RunUntilIdle() {
	for l.Step() {
	}
}

// PendingTimers reports how many timers are armed.
func (l *EventLoop) PendingTimers() int { return len(l.timers) }
