package k8s

import "time"

// Kubelet models the node agents: once the scheduler binds a pod, the
// kubelet pulls the image, creates the container, and reports Running after
// a startup delay. Deleting a pod's object releases its resources
// immediately (we fold graceful termination into the startup budget).
type Kubelet struct {
	loop  Loop
	store *Store
	// StartupDelay is bind→Running latency (image pull + container
	// create). The paper excludes operator/pod startup from simulation
	// but the emulation pays it, as the real EKS runs did.
	StartupDelay time.Duration
	// Started counts pods this kubelet transitioned to Running.
	Started int
}

// NewKubelet creates the kubelet and subscribes it to pod events.
func NewKubelet(loop Loop, store *Store, startupDelay time.Duration) *Kubelet {
	k := &Kubelet{loop: loop, store: store, StartupDelay: startupDelay}
	store.Subscribe(KindPod, func(ev Event) {
		if ev.Type == Deleted {
			return
		}
		pod := ev.Object.(*Pod)
		if pod.Spec.NodeName != "" && pod.Status.Phase == PodPending {
			key := pod.Key()
			version := pod.ResourceVersion
			loop.At(k.StartupDelay, func() { k.start(key, version) })
		}
	})
	return k
}

// start transitions a bound pod to Running unless it changed or vanished in
// the meantime.
func (k *Kubelet) start(key string, version int64) {
	obj, ok := k.store.Get(KindPod, key)
	if !ok {
		return
	}
	pod := obj.(*Pod)
	if pod.Status.Phase != PodPending || pod.Spec.NodeName == "" || pod.ResourceVersion != version {
		return
	}
	pod.Status.Phase = PodRunning
	pod.Status.StartTime = k.loop.Now()
	_ = k.store.Update(pod)
	k.Started++
}

// MarkSucceeded transitions all pods matching the selector to Succeeded,
// releasing their node resources. Used when a job's application exits.
func MarkSucceeded(store *Store, selector map[string]string) int {
	n := 0
	for _, pod := range store.Pods(selector) {
		if pod.Status.Phase == PodSucceeded {
			continue
		}
		pod.Status.Phase = PodSucceeded
		if err := store.Update(pod); err == nil {
			n++
		}
	}
	return n
}

// MarkFailed transitions all pods matching the selector to Failed (e.g. the
// node they ran on crashed), releasing their node resources.
func MarkFailed(store *Store, selector map[string]string) int {
	n := 0
	for _, pod := range store.Pods(selector) {
		if pod.Status.Phase == PodFailed || pod.Status.Phase == PodSucceeded {
			continue
		}
		pod.Status.Phase = PodFailed
		if err := store.Update(pod); err == nil {
			n++
		}
	}
	return n
}

// FailPodsOnNode marks every non-terminal pod bound to the node as Failed,
// simulating a node crash. Returns the number of pods failed.
func FailPodsOnNode(store *Store, node string) int {
	n := 0
	for _, pod := range store.Pods(nil) {
		if pod.Spec.NodeName != node || pod.Status.Phase == PodSucceeded || pod.Status.Phase == PodFailed {
			continue
		}
		pod.Status.Phase = PodFailed
		if err := store.Update(pod); err == nil {
			n++
		}
	}
	return n
}

// DeletePods removes all pods matching the selector and returns the count.
func DeletePods(store *Store, selector map[string]string) int {
	n := 0
	for _, pod := range store.Pods(selector) {
		if err := store.Delete(KindPod, pod.Key()); err == nil {
			n++
		}
	}
	return n
}
