// Package k8s implements a self-contained Kubernetes substrate: a versioned
// object store with watches, a pod scheduler with resource filtering and
// affinity-aware scoring, a kubelet state machine with pod startup latency,
// and a controller/workqueue framework. It stands in for the EKS cluster and
// kube machinery of the paper's evaluation (§2.3, §4) so the Charm operator
// (internal/operator) runs against the same control-plane concepts it would
// in a real cluster: CRDs, reconcile loops, pod lifecycle, and nodelists.
//
// The substrate is single-threaded by design: every component is driven by a
// Loop (the emulation's event loop on a virtual clock), which makes full
// scheduling experiments deterministic and replayable.
package k8s

import (
	"fmt"
	"time"
)

// Kind identifies an object type in the store.
type Kind string

// Object kinds used by the cluster emulation.
const (
	KindNode      Kind = "Node"
	KindPod       Kind = "Pod"
	KindCharmJob  Kind = "CharmJob"
	KindConfigMap Kind = "ConfigMap"
)

// ObjectMeta is the standard object metadata subset we model.
type ObjectMeta struct {
	Name              string
	Namespace         string
	UID               int64
	ResourceVersion   int64
	Labels            map[string]string
	CreationTimestamp time.Time
	DeletionTimestamp *time.Time
}

// Key returns the namespace/name key.
func (m *ObjectMeta) Key() string {
	if m.Namespace == "" {
		return m.Name
	}
	return m.Namespace + "/" + m.Name
}

// Object is any resource stored in the API store.
type Object interface {
	Meta() *ObjectMeta
	Kind() Kind
	DeepCopy() Object
}

// PodPhase is the pod lifecycle phase.
type PodPhase string

// Pod phases we model.
const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// PodSpec is the scheduling-relevant subset of a pod spec.
type PodSpec struct {
	// NodeName is set by the scheduler when the pod is bound.
	NodeName string
	// CPU is the requested vCPU count (1 worker slot = 1 vCPU, matching
	// the paper's one-PE-per-worker non-SMP configuration).
	CPU int
	// ShmBytes is the size of the memory-backed emptyDir mounted at
	// /dev/shm (the operator's workaround for the 64MB default, §3.1).
	ShmBytes int64
	// AffinityKey requests co-location: the scheduler prefers nodes that
	// already run pods with the same key (the operator sets it to the job
	// name for locality-aware placement, §3.1).
	AffinityKey string
}

// PodStatus is the observed pod state.
type PodStatus struct {
	Phase     PodPhase
	StartTime time.Time // when the pod became Running
}

// Pod is a kubernetes pod.
type Pod struct {
	ObjectMeta
	Spec   PodSpec
	Status PodStatus
}

// Meta implements Object.
func (p *Pod) Meta() *ObjectMeta { return &p.ObjectMeta }

// Kind implements Object.
func (p *Pod) Kind() Kind { return KindPod }

// DeepCopy implements Object.
func (p *Pod) DeepCopy() Object {
	cp := *p
	cp.Labels = copyLabels(p.Labels)
	if p.DeletionTimestamp != nil {
		ts := *p.DeletionTimestamp
		cp.DeletionTimestamp = &ts
	}
	return &cp
}

// Node is a schedulable node.
type Node struct {
	ObjectMeta
	// CapacityCPU is the node's allocatable vCPU count (16 for the
	// paper's c6g.4xlarge instances).
	CapacityCPU int
}

// Meta implements Object.
func (n *Node) Meta() *ObjectMeta { return &n.ObjectMeta }

// Kind implements Object.
func (n *Node) Kind() Kind { return KindNode }

// DeepCopy implements Object.
func (n *Node) DeepCopy() Object {
	cp := *n
	cp.Labels = copyLabels(n.Labels)
	return &cp
}

// ConfigMap stores small configuration payloads (the operator's nodelist).
type ConfigMap struct {
	ObjectMeta
	Data map[string]string
}

// Meta implements Object.
func (c *ConfigMap) Meta() *ObjectMeta { return &c.ObjectMeta }

// Kind implements Object.
func (c *ConfigMap) Kind() Kind { return KindConfigMap }

// DeepCopy implements Object.
func (c *ConfigMap) DeepCopy() Object {
	cp := *c
	cp.Labels = copyLabels(c.Labels)
	cp.Data = make(map[string]string, len(c.Data))
	for k, v := range c.Data {
		cp.Data[k] = v
	}
	return &cp
}

func copyLabels(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Loop is the single-threaded execution context all substrate components run
// on. The cluster emulation implements it over a virtual clock; tests may
// implement it with immediate execution.
type Loop interface {
	// Defer runs fn after the current event finishes, before time advances.
	Defer(fn func())
	// At runs fn once d has elapsed on the loop's clock.
	At(d time.Duration, fn func())
	// Now returns the loop's current time.
	Now() time.Time
}

// EventType describes a store change.
type EventType int

// Store event types.
const (
	Added EventType = iota
	Modified
	Deleted
)

// String returns the event type's display name.
func (t EventType) String() string {
	switch t {
	case Added:
		return "Added"
	case Modified:
		return "Modified"
	case Deleted:
		return "Deleted"
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is a store change notification.
type Event struct {
	Type   EventType
	Object Object
}
