package k8s

import (
	"fmt"
	"sort"
	"time"
)

// Store is the API server's object store: versioned CRUD plus watch
// subscriptions. Subscribers are notified via Loop.Defer, so handlers always
// run after the mutation that triggered them completes — the same
// eventual-consistency shape informers give real controllers.
type Store struct {
	loop    Loop
	items   map[Kind]map[string]Object
	version int64
	uid     int64
	subs    map[Kind][]func(Event)
}

// NewStore creates an empty store bound to the loop.
func NewStore(loop Loop) *Store {
	return &Store{
		loop:  loop,
		items: make(map[Kind]map[string]Object),
		subs:  make(map[Kind][]func(Event)),
	}
}

// Subscribe registers fn for all changes to the kind. Events fire in
// mutation order.
func (s *Store) Subscribe(kind Kind, fn func(Event)) {
	s.subs[kind] = append(s.subs[kind], fn)
}

func (s *Store) notify(kind Kind, ev Event) {
	for _, fn := range s.subs[kind] {
		fn := fn
		s.loop.Defer(func() { fn(ev) })
	}
}

func (s *Store) bucket(kind Kind) map[string]Object {
	b, ok := s.items[kind]
	if !ok {
		b = make(map[string]Object)
		s.items[kind] = b
	}
	return b
}

// Create inserts a new object. The stored copy gets a fresh UID, resource
// version, and creation timestamp.
func (s *Store) Create(obj Object) error {
	b := s.bucket(obj.Kind())
	key := obj.Meta().Key()
	if _, exists := b[key]; exists {
		return fmt.Errorf("k8s: %s %q already exists", obj.Kind(), key)
	}
	s.version++
	s.uid++
	cp := obj.DeepCopy()
	m := cp.Meta()
	m.UID = s.uid
	m.ResourceVersion = s.version
	m.CreationTimestamp = s.loop.Now()
	b[key] = cp
	s.notify(obj.Kind(), Event{Type: Added, Object: cp.DeepCopy()})
	return nil
}

// Update replaces an existing object, bumping its resource version.
func (s *Store) Update(obj Object) error {
	b := s.bucket(obj.Kind())
	key := obj.Meta().Key()
	old, exists := b[key]
	if !exists {
		return fmt.Errorf("k8s: %s %q not found", obj.Kind(), key)
	}
	s.version++
	cp := obj.DeepCopy()
	m := cp.Meta()
	m.UID = old.Meta().UID
	m.CreationTimestamp = old.Meta().CreationTimestamp
	m.ResourceVersion = s.version
	b[key] = cp
	s.notify(obj.Kind(), Event{Type: Modified, Object: cp.DeepCopy()})
	return nil
}

// Delete removes the object with the given kind and key.
func (s *Store) Delete(kind Kind, key string) error {
	b := s.bucket(kind)
	old, exists := b[key]
	if !exists {
		return fmt.Errorf("k8s: %s %q not found", kind, key)
	}
	delete(b, key)
	s.version++
	s.notify(kind, Event{Type: Deleted, Object: old.DeepCopy()})
	return nil
}

// Get fetches a copy of the object, reporting whether it exists.
func (s *Store) Get(kind Kind, key string) (Object, bool) {
	obj, ok := s.bucket(kind)[key]
	if !ok {
		return nil, false
	}
	return obj.DeepCopy(), true
}

// List returns copies of all objects of the kind, sorted by key for
// determinism.
func (s *Store) List(kind Kind) []Object {
	b := s.bucket(kind)
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Object, 0, len(keys))
	for _, k := range keys {
		out = append(out, b[k].DeepCopy())
	}
	return out
}

// Pods returns all pods, optionally filtered by a label selector.
func (s *Store) Pods(selector map[string]string) []*Pod {
	var out []*Pod
	for _, obj := range s.List(KindPod) {
		p := obj.(*Pod)
		if matchLabels(p.Labels, selector) {
			out = append(out, p)
		}
	}
	return out
}

// Nodes returns all nodes.
func (s *Store) Nodes() []*Node {
	var out []*Node
	for _, obj := range s.List(KindNode) {
		out = append(out, obj.(*Node))
	}
	return out
}

func matchLabels(labels, selector map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Workqueue is a deduplicating FIFO of reconcile keys, the controller
// pattern's core data structure.
type Workqueue struct {
	loop    Loop
	pending map[string]bool
	order   []string
	handler func(key string)
	armed   bool
}

// NewWorkqueue creates a queue that feeds keys to handler on the loop.
func NewWorkqueue(loop Loop, handler func(key string)) *Workqueue {
	return &Workqueue{loop: loop, pending: make(map[string]bool), handler: handler}
}

// Add enqueues a key; duplicates collapse while queued.
func (q *Workqueue) Add(key string) {
	if q.pending[key] {
		return
	}
	q.pending[key] = true
	q.order = append(q.order, key)
	q.arm()
}

// AddAfter enqueues the key after the delay (requeue-with-backoff analogue).
func (q *Workqueue) AddAfter(key string, d time.Duration) {
	q.loop.At(d, func() { q.Add(key) })
}

func (q *Workqueue) arm() {
	if q.armed || len(q.order) == 0 {
		return
	}
	q.armed = true
	q.loop.Defer(q.drain)
}

func (q *Workqueue) drain() {
	q.armed = false
	for len(q.order) > 0 {
		key := q.order[0]
		q.order = q.order[1:]
		delete(q.pending, key)
		q.handler(key)
	}
}

// Len reports queued keys.
func (q *Workqueue) Len() int { return len(q.order) }
