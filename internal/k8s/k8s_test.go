package k8s

import (
	"fmt"
	"testing"
	"time"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func newCluster(t *testing.T, nodes, cpuPerNode int) (*EventLoop, *Store, *PodScheduler, *Kubelet) {
	t.Helper()
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	sched := NewPodScheduler(loop, store)
	kubelet := NewKubelet(loop, store, 2*time.Second)
	for i := 0; i < nodes; i++ {
		node := &Node{ObjectMeta: ObjectMeta{Name: fmt.Sprintf("node-%d", i)}, CapacityCPU: cpuPerNode}
		if err := store.Create(node); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntilIdle()
	return loop, store, sched, kubelet
}

func mkPod(name string, cpu int, affinity string) *Pod {
	return &Pod{
		ObjectMeta: ObjectMeta{Name: name, Labels: map[string]string{"job": affinity}},
		Spec:       PodSpec{CPU: cpu, AffinityKey: affinity},
		Status:     PodStatus{Phase: PodPending},
	}
}

func TestStoreCRUD(t *testing.T) {
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	pod := mkPod("p1", 1, "")
	if err := store.Create(pod); err != nil {
		t.Fatal(err)
	}
	if err := store.Create(pod); err == nil {
		t.Error("duplicate Create succeeded")
	}
	got, ok := store.Get(KindPod, "p1")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Meta().UID == 0 || got.Meta().ResourceVersion == 0 {
		t.Error("metadata not assigned")
	}
	p := got.(*Pod)
	p.Spec.NodeName = "node-x"
	rv := p.ResourceVersion
	if err := store.Update(p); err != nil {
		t.Fatal(err)
	}
	got2, _ := store.Get(KindPod, "p1")
	if got2.Meta().ResourceVersion <= rv {
		t.Error("resource version not bumped")
	}
	if got2.(*Pod).Spec.NodeName != "node-x" {
		t.Error("update lost")
	}
	if err := store.Delete(KindPod, "p1"); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(KindPod, "p1"); err == nil {
		t.Error("double delete succeeded")
	}
	if _, ok := store.Get(KindPod, "p1"); ok {
		t.Error("object still present after delete")
	}
	if err := store.Update(mkPod("ghost", 1, "")); err == nil {
		t.Error("update of missing object succeeded")
	}
}

func TestStoreGetReturnsCopy(t *testing.T) {
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	if err := store.Create(mkPod("p1", 1, "")); err != nil {
		t.Fatal(err)
	}
	a, _ := store.Get(KindPod, "p1")
	a.(*Pod).Spec.CPU = 99
	b, _ := store.Get(KindPod, "p1")
	if b.(*Pod).Spec.CPU == 99 {
		t.Error("Get returned aliased object")
	}
}

func TestStoreWatchDeliversInOrder(t *testing.T) {
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	var events []string
	store.Subscribe(KindPod, func(ev Event) {
		events = append(events, fmt.Sprintf("%v %s", ev.Type, ev.Object.Meta().Name))
	})
	if err := store.Create(mkPod("a", 1, "")); err != nil {
		t.Fatal(err)
	}
	pod, _ := store.Get(KindPod, "a")
	if err := store.Update(pod); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(KindPod, "a"); err != nil {
		t.Fatal(err)
	}
	loop.Settle()
	want := []string{"Added a", "Modified a", "Deleted a"}
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestSchedulerBindsAndKubeletStarts(t *testing.T) {
	loop, store, _, kubelet := newCluster(t, 4, 16)
	if err := store.Create(mkPod("w0", 1, "job-a")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	got, _ := store.Get(KindPod, "w0")
	pod := got.(*Pod)
	if pod.Spec.NodeName == "" {
		t.Fatal("pod not bound")
	}
	if pod.Status.Phase != PodRunning {
		t.Fatalf("pod phase = %s", pod.Status.Phase)
	}
	if pod.Status.StartTime.Sub(t0) < 2*time.Second {
		t.Errorf("pod started before the kubelet delay: %v", pod.Status.StartTime.Sub(t0))
	}
	if kubelet.Started != 1 {
		t.Errorf("kubelet started %d pods", kubelet.Started)
	}
}

func TestSchedulerAffinityPacksJobPods(t *testing.T) {
	loop, store, _, _ := newCluster(t, 4, 16)
	for i := 0; i < 8; i++ {
		if err := store.Create(mkPod(fmt.Sprintf("a-%d", i), 1, "job-a")); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntilIdle()
	nodes := map[string]int{}
	for _, p := range store.Pods(map[string]string{"job": "job-a"}) {
		nodes[p.Spec.NodeName]++
	}
	if len(nodes) != 1 {
		t.Errorf("job pods spread across %d nodes, want 1 (affinity packing): %v", len(nodes), nodes)
	}
}

func TestSchedulerRespectsCapacity(t *testing.T) {
	loop, store, sched, _ := newCluster(t, 2, 4)
	// 2 nodes × 4 CPU = 8 slots; submit 10 single-CPU pods.
	for i := 0; i < 10; i++ {
		if err := store.Create(mkPod(fmt.Sprintf("p-%d", i), 1, "job-x")); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntilIdle()
	bound, pending := 0, 0
	for _, p := range store.Pods(nil) {
		if p.Spec.NodeName != "" {
			bound++
		} else {
			pending++
		}
	}
	if bound != 8 || pending != 2 {
		t.Errorf("bound %d pending %d, want 8/2", bound, pending)
	}
	if sched.FailedBindings == 0 {
		t.Error("no failed bindings recorded")
	}
	// Per-node allocation never exceeds capacity.
	alloc := map[string]int{}
	for _, p := range store.Pods(nil) {
		if p.Spec.NodeName != "" {
			alloc[p.Spec.NodeName] += p.Spec.CPU
		}
	}
	for n, a := range alloc {
		if a > 4 {
			t.Errorf("node %s allocated %d/4", n, a)
		}
	}
}

func TestSchedulerRetriesAfterPodDeletion(t *testing.T) {
	loop, store, _, _ := newCluster(t, 1, 4)
	for i := 0; i < 4; i++ {
		if err := store.Create(mkPod(fmt.Sprintf("old-%d", i), 1, "job-a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Create(mkPod("waiting", 2, "job-b")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	got, _ := store.Get(KindPod, "waiting")
	if got.(*Pod).Spec.NodeName != "" {
		t.Fatal("waiting pod bound on a full node")
	}
	// Free two slots; the waiting pod must get scheduled.
	if DeletePods(store, map[string]string{"job": "job-a"}) != 4 {
		t.Fatal("delete failed")
	}
	loop.RunUntilIdle()
	got, _ = store.Get(KindPod, "waiting")
	if got.(*Pod).Spec.NodeName == "" {
		t.Error("waiting pod not rescheduled after capacity freed")
	}
}

func TestSucceededPodsReleaseCapacity(t *testing.T) {
	loop, store, _, _ := newCluster(t, 1, 2)
	if err := store.Create(mkPod("a", 2, "job-a")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	if err := store.Create(mkPod("b", 2, "job-b")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntilIdle()
	got, _ := store.Get(KindPod, "b")
	if got.(*Pod).Spec.NodeName != "" {
		t.Fatal("b bound while a holds the node")
	}
	if MarkSucceeded(store, map[string]string{"job": "job-a"}) != 1 {
		t.Fatal("MarkSucceeded failed")
	}
	loop.RunUntilIdle()
	got, _ = store.Get(KindPod, "b")
	if got.(*Pod).Spec.NodeName == "" {
		t.Error("b not scheduled after a succeeded")
	}
}

func TestEventLoopOrdering(t *testing.T) {
	loop := NewEventLoop(t0)
	var order []int
	loop.At(2*time.Second, func() { order = append(order, 2) })
	loop.At(1*time.Second, func() { order = append(order, 1) })
	loop.Defer(func() { order = append(order, 0) })
	loop.At(1*time.Second, func() { order = append(order, 11) }) // same instant, FIFO
	loop.RunUntilIdle()
	want := []int{0, 1, 11, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !loop.Now().Equal(t0.Add(2 * time.Second)) {
		t.Errorf("Now = %v", loop.Now())
	}
}

func TestEventLoopRunUntil(t *testing.T) {
	loop := NewEventLoop(t0)
	fired := false
	loop.At(5*time.Second, func() { fired = true })
	loop.At(10*time.Second, func() {})
	if !loop.RunUntil(func() bool { return fired }) {
		t.Fatal("RunUntil never satisfied")
	}
	if loop.PendingTimers() != 1 {
		t.Errorf("PendingTimers = %d, want 1 (later timer untouched)", loop.PendingTimers())
	}
	if loop.RunUntil(func() bool { return false }) {
		t.Error("RunUntil(false) reported success")
	}
}

func TestEventLoopZeroDelayRunsNow(t *testing.T) {
	loop := NewEventLoop(t0)
	ran := false
	loop.At(0, func() { ran = true })
	loop.Settle()
	if !ran {
		t.Error("zero-delay At did not run on Settle")
	}
	if !loop.Now().Equal(t0) {
		t.Error("time advanced for zero-delay work")
	}
}

func TestWorkqueueDedupes(t *testing.T) {
	loop := NewEventLoop(t0)
	var handled []string
	q := NewWorkqueue(loop, func(key string) { handled = append(handled, key) })
	q.Add("a")
	q.Add("a")
	q.Add("b")
	loop.Settle()
	if len(handled) != 2 || handled[0] != "a" || handled[1] != "b" {
		t.Errorf("handled = %v", handled)
	}
	q.AddAfter("c", 3*time.Second)
	loop.RunUntilIdle()
	if len(handled) != 3 || handled[2] != "c" {
		t.Errorf("handled = %v", handled)
	}
	if q.Len() != 0 {
		t.Errorf("queue length = %d", q.Len())
	}
}

func TestConfigMapRoundTrip(t *testing.T) {
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	cm := &ConfigMap{ObjectMeta: ObjectMeta{Name: "nodelist"}, Data: map[string]string{"hosts": "w0\nw1"}}
	if err := store.Create(cm); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(KindConfigMap, "nodelist")
	gcm := got.(*ConfigMap)
	gcm.Data["hosts"] = "mutated"
	again, _ := store.Get(KindConfigMap, "nodelist")
	if again.(*ConfigMap).Data["hosts"] != "w0\nw1" {
		t.Error("ConfigMap DeepCopy aliased Data")
	}
}

func TestEventTypeString(t *testing.T) {
	for _, et := range []EventType{Added, Modified, Deleted, EventType(7)} {
		if et.String() == "" {
			t.Errorf("EventType(%d) empty", et)
		}
	}
}

func TestNodeListSorted(t *testing.T) {
	loop := NewEventLoop(t0)
	store := NewStore(loop)
	for _, name := range []string{"node-2", "node-0", "node-1"} {
		if err := store.Create(&Node{ObjectMeta: ObjectMeta{Name: name}, CapacityCPU: 16}); err != nil {
			t.Fatal(err)
		}
	}
	nodes := store.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Name > nodes[i].Name {
			t.Errorf("nodes unsorted: %s > %s", nodes[i-1].Name, nodes[i].Name)
		}
	}
}
