package k8s

import (
	"sort"
)

// PodScheduler is the kube-scheduler analogue: it watches for pending pods
// and binds them to nodes using a filter/score pipeline. The paper uses the
// default kube-scheduler with pod affinity added by the operator for
// locality-aware placement (§3.1); the scoring below models that pipeline:
// feasibility filtering on CPU, then affinity packing (prefer nodes already
// hosting pods of the same job) with bin-packing as the tie-break.
type PodScheduler struct {
	store *Store
	queue *Workqueue
	// FailedBindings counts pods that could not be placed on any node;
	// they stay Pending and are retried on the next cluster change.
	FailedBindings int
	unschedulable  map[string]bool
}

// NewPodScheduler creates the scheduler and subscribes it to pod and node
// events.
func NewPodScheduler(loop Loop, store *Store) *PodScheduler {
	ps := &PodScheduler{store: store, unschedulable: make(map[string]bool)}
	ps.queue = NewWorkqueue(loop, ps.schedule)
	store.Subscribe(KindPod, func(ev Event) {
		pod := ev.Object.(*Pod)
		switch ev.Type {
		case Added, Modified:
			if pod.Spec.NodeName == "" && pod.Status.Phase == PodPending {
				ps.queue.Add(pod.Key())
			}
			// A pod reaching a terminal phase releases capacity.
			if pod.Status.Phase == PodSucceeded || pod.Status.Phase == PodFailed {
				ps.retryUnschedulable()
			}
		case Deleted:
			delete(ps.unschedulable, pod.Key())
			ps.retryUnschedulable()
		}
	})
	store.Subscribe(KindNode, func(ev Event) { ps.retryUnschedulable() })
	return ps
}

// retryUnschedulable requeues pods that previously failed to place; capacity
// may have been freed.
func (ps *PodScheduler) retryUnschedulable() {
	keys := make([]string, 0, len(ps.unschedulable))
	for k := range ps.unschedulable {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ps.queue.Add(k)
	}
}

// nodeFreeCPU computes each node's unallocated CPU from bound, non-terminal
// pods.
func (ps *PodScheduler) nodeFreeCPU() map[string]int {
	free := make(map[string]int)
	for _, n := range ps.store.Nodes() {
		free[n.Name] = n.CapacityCPU
	}
	for _, p := range ps.store.Pods(nil) {
		if p.Spec.NodeName == "" || p.Status.Phase == PodSucceeded || p.Status.Phase == PodFailed {
			continue
		}
		free[p.Spec.NodeName] -= p.Spec.CPU
	}
	return free
}

// schedule runs the filter/score pipeline for one pending pod.
func (ps *PodScheduler) schedule(key string) {
	obj, ok := ps.store.Get(KindPod, key)
	if !ok {
		delete(ps.unschedulable, key)
		return
	}
	pod := obj.(*Pod)
	if pod.Spec.NodeName != "" || pod.Status.Phase != PodPending {
		delete(ps.unschedulable, key)
		return
	}

	free := ps.nodeFreeCPU()
	affinity := ps.affinityCounts(pod.Spec.AffinityKey)

	type candidate struct {
		name  string
		score int
		free  int
	}
	var cands []candidate
	for _, n := range ps.store.Nodes() {
		f := free[n.Name]
		if f < pod.Spec.CPU {
			continue // filter: insufficient CPU
		}
		// Score: affinity dominates (pods of the same job pack
		// together for communication locality), then bin-packing
		// (prefer fuller nodes so large jobs find whole free nodes).
		score := affinity[n.Name]*1000 - f
		cands = append(cands, candidate{name: n.Name, score: score, free: f})
	}
	if len(cands) == 0 {
		ps.unschedulable[key] = true
		ps.FailedBindings++
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].name < cands[j].name
	})
	delete(ps.unschedulable, key)

	pod.Spec.NodeName = cands[0].name
	if err := ps.store.Update(pod); err != nil {
		// The pod vanished between Get and Update; it will be retried
		// if it reappears.
		ps.unschedulable[key] = true
	}
}

// affinityCounts counts pods per node sharing the affinity key.
func (ps *PodScheduler) affinityCounts(key string) map[string]int {
	counts := make(map[string]int)
	if key == "" {
		return counts
	}
	for _, p := range ps.store.Pods(nil) {
		if p.Spec.AffinityKey == key && p.Spec.NodeName != "" &&
			p.Status.Phase != PodSucceeded && p.Status.Phase != PodFailed {
			counts[p.Spec.NodeName]++
		}
	}
	return counts
}
