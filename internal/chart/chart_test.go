package chart

import (
	"strings"
	"testing"
)

func TestRenderEmptySeries(t *testing.T) {
	out := Render(Series{Name: "empty"}, Options{})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderShape(t *testing.T) {
	s := Series{Name: "util", Points: []Point{{0, 0}, {10, 32}, {20, 64}, {30, 16}}}
	out := Render(s, Options{Width: 40, Height: 8, YMin: 0, YMax: 64, YLabel: "slots"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// name + height rows + axis + x labels + y label
	if len(lines) != 1+8+1+1+1 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "util" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.Contains(out, "slots") {
		t.Error("y label missing")
	}
	// The top row should only be filled where the series is at 64.
	top := lines[1]
	if !strings.Contains(top, "█") && !strings.Contains(top, "▄") {
		t.Error("peak row empty despite a max-value segment")
	}
	// The axis labels include the max.
	if !strings.Contains(out, "64.0") {
		t.Errorf("y-max label missing:\n%s", out)
	}
}

func TestStepSemantics(t *testing.T) {
	s := Series{Points: []Point{{0, 1}, {10, 5}}}
	if got := s.valueAt(5); got != 1 {
		t.Errorf("valueAt(5) = %g, want 1 (step holds last value)", got)
	}
	if got := s.valueAt(10); got != 5 {
		t.Errorf("valueAt(10) = %g", got)
	}
	if got := s.valueAt(-1); got != 1 {
		t.Errorf("valueAt before first = %g", got)
	}
}

func TestRenderMultiSharedRange(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{0, 10}, {10, 10}}}
	bSeries := Series{Name: "b", Points: []Point{{0, 100}, {10, 100}}}
	out := RenderMulti([]Series{a, bSeries}, Options{Width: 20, Height: 4})
	// Both charts share the 10..100 range, so "100" appears as the max
	// label in both.
	if strings.Count(out, "100") < 2 {
		t.Errorf("shared range labels missing:\n%s", out)
	}
	if !strings.Contains(out, "a\n") || !strings.Contains(out, "b\n") {
		t.Error("series names missing")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Name: "flat", Points: []Point{{0, 5}, {100, 5}}}
	out := Render(s, Options{Width: 30, Height: 4})
	if out == "" || !strings.Contains(out, "flat") {
		t.Error("constant series failed to render")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{0, 0}, {1, 1}}}
	out := Render(s, Options{})
	lines := strings.Split(out, "\n")
	if len(lines) < 14 { // 12 rows + chrome
		t.Errorf("default height not applied: %d lines", len(lines))
	}
}
