// Package chart renders time-series as compact ASCII plots so the
// reproduction's figures (utilization profiles, replica timelines, scaling
// curves) are inspectable straight from a terminal, without a plotting
// stack. The renderer is deliberately simple: step-interpolated series,
// fixed-size character grid, y-axis labels.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named step function: the value at x is the Y of the last
// point at or before x.
type Series struct {
	Name   string
	Points []Point
}

// valueAt evaluates the step function, clamping before the first point to
// the first Y.
func (s Series) valueAt(x float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	v := s.Points[0].Y
	for _, p := range s.Points {
		if p.X > x {
			break
		}
		v = p.Y
	}
	return v
}

// Options controls rendering.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 12)
	YMax   float64
	YMin   float64
	// YLabel annotates the axis (e.g. "slots").
	YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 12
	}
	return o
}

// Render draws one series as an ASCII step chart.
func Render(s Series, opts Options) string {
	opts = opts.withDefaults()
	if len(s.Points) == 0 {
		return fmt.Sprintf("%s: (no data)\n", s.Name)
	}
	xMin := s.Points[0].X
	xMax := s.Points[len(s.Points)-1].X
	if xMax <= xMin {
		xMax = xMin + 1
	}
	yMin, yMax := opts.YMin, opts.YMax
	if yMax <= yMin {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, p := range s.Points {
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
		}
		if yMax <= yMin {
			yMax = yMin + 1
		}
	}

	// Sample the step function into columns.
	cols := make([]float64, opts.Width)
	for c := range cols {
		x := xMin + (xMax-xMin)*float64(c)/float64(opts.Width-1)
		cols[c] = s.valueAt(x)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	for row := opts.Height - 1; row >= 0; row-- {
		// The value band covered by this row.
		lo := yMin + (yMax-yMin)*float64(row)/float64(opts.Height)
		label := ""
		switch row {
		case opts.Height - 1:
			label = format(yMax)
		case 0:
			label = format(yMin)
		case opts.Height / 2:
			label = format((yMin + yMax) / 2)
		}
		fmt.Fprintf(&b, "%8s │", label)
		for _, v := range cols {
			if v > lo+1e-12 || (row == 0 && v >= yMin) {
				if v > lo+(yMax-yMin)/float64(opts.Height) {
					b.WriteRune('█')
				} else {
					b.WriteRune('▄')
				}
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s └%s\n", "", strings.Repeat("─", opts.Width))
	fmt.Fprintf(&b, "%9s%-12s%*s\n", "", format(xMin), opts.Width-11, format(xMax))
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%9s(y: %s)\n", "", opts.YLabel)
	}
	return b.String()
}

// format renders an axis value compactly.
func format(v float64) string {
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// RenderMulti draws several series stacked vertically with a shared y-range,
// which is how the Figure 9a per-policy utilization profiles are compared.
func RenderMulti(series []Series, opts Options) string {
	opts = opts.withDefaults()
	if opts.YMax <= opts.YMin {
		// Shared auto-range across all series.
		yMin, yMax := math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, p := range s.Points {
				yMin = math.Min(yMin, p.Y)
				yMax = math.Max(yMax, p.Y)
			}
		}
		if yMax > yMin {
			opts.YMin, opts.YMax = yMin, yMax
		}
	}
	var b strings.Builder
	for i, s := range series {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Render(s, opts))
	}
	return b.String()
}
