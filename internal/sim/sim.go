// Package sim is the discrete-event scheduling simulator of paper §4.3.1:
// it replays a stream of malleable-job submissions against the four
// scheduling policies, modelling job runtimes with the strong-scaling model
// and charging the four-phase rescale overhead on every shrink/expand. It
// reports the paper's four metrics: total time, cluster utilization,
// weighted mean response time, and weighted mean completion time.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// JobSpec and Workload live in internal/workload — the scenario engine shared
// with the cluster emulation; the aliases keep sim's historical API intact.
type (
	// JobSpec is one simulated job submission.
	JobSpec = workload.JobSpec
	// Workload is a reproducible job set.
	Workload = workload.Workload
)

// RandomWorkload draws n jobs uniformly from the four classes with uniform
// priorities in [1,5], submitted gap seconds apart (paper §4.3.1: "We pick
// 16 jobs randomly out of these 4 sizes with random priorities between 1
// and 5"). It is the workload.Uniform generator, draw-order-compatible with
// seed-pinned experiments from before the workload-engine extraction.
func RandomWorkload(n int, gap float64, seed int64) Workload {
	if n <= 0 {
		return Workload{}
	}
	w, err := (workload.Uniform{Jobs: n, Gap: gap}).Generate(seed)
	if err != nil {
		panic(fmt.Sprintf("sim: RandomWorkload(%d, %g): %v", n, gap, err))
	}
	return w
}

// JobMetrics is the per-job outcome.
type JobMetrics struct {
	ID             string
	Class          model.Class
	Priority       int
	Replicas       int // final replica count
	SubmitAt       float64
	StartAt        float64
	EndAt          float64
	Rescales       int
	OverheadSec    float64 // total rescale overhead charged
	ResponseTime   float64
	CompletionTime float64
}

// UtilSample is one step of the cluster-utilization timeline.
type UtilSample struct {
	At   float64 // seconds
	Used int     // allocated worker slots
}

// ReplicaSample records a job's replica count change (Figure 9b).
type ReplicaSample struct {
	At       float64
	Replicas int
}

// Result aggregates one simulation run.
type Result struct {
	Policy core.Policy
	// TotalTime is "the end-to-end runtime from the start of the first
	// job to the end of the last job".
	TotalTime float64
	// Utilization is the time-averaged fraction of slots in use over
	// the experiment duration.
	Utilization float64
	// WeightedResponse and WeightedCompletion are priority-weighted means.
	WeightedResponse   float64
	WeightedCompletion float64
	Jobs               []JobMetrics
	UtilTimeline       []UtilSample
	ReplicaTimelines   map[string][]ReplicaSample
}

// Config parameterizes a simulation.
type Config struct {
	Policy     core.Policy
	Capacity   int     // worker slots (64 in the paper)
	RescaleGap float64 // seconds (T_rescale_gap)
	Machine    model.Machine
	// Extensions (all default off, matching the paper's §3.2.1 policy).
	JobOverheadSlots int
	AgingRate        float64
	EnablePreemption bool
	StrictFCFS       bool
	CostBenefit      *core.CostBenefit
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig(p core.Policy) Config {
	return Config{Policy: p, Capacity: 64, RescaleGap: 180, Machine: model.DefaultMachine()}
}

// event kinds in the DES queue.
type evKind int

const (
	evSubmit evKind = iota
	evComplete
	evKick // a rescale gap expired: re-run the scheduling pass
)

type event struct {
	at   float64
	kind evKind
	job  *simJob
	seq  int64 // completion-event validity token
	ord  int64 // FIFO tie-break for equal timestamps
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// simJob tracks a job's simulated execution state.
type simJob struct {
	spec model.Spec
	job  *core.Job
	meta JobMetrics

	itersDone   float64
	lastUpdate  float64 // sim time of the last progress update
	frozenUntil float64 // rescale overhead window: no progress before this
	seq         int64   // increments on every reschedule
	started     bool
	timeline    []ReplicaSample
}

// Simulator runs one workload under one policy.
type Simulator struct {
	cfg    Config
	sched  *core.Scheduler
	events eventHeap
	ord    int64
	now    float64
	jobs   map[string]*simJob

	used     int
	utilTL   []UtilSample
	utilArea float64
	utilLast float64
	kickAt   float64 // earliest pending kick event time, or -1
}

// epoch anchors the simulator's float timeline to the core scheduler's
// time.Time clock.
var epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

// New creates a simulator for the workload.
func New(cfg Config) (*Simulator, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("sim: capacity %d", cfg.Capacity)
	}
	s := &Simulator{cfg: cfg, jobs: make(map[string]*simJob), kickAt: -1}
	if cb := cfg.CostBenefit; cb != nil && cb.Progress == nil {
		// Wire the gate to the simulator's own progress model so users
		// only need to set thresholds.
		wired := *cb
		wired.Progress = s.progressFraction
		cfg.CostBenefit = &wired
	}
	sched, err := core.NewScheduler(core.Config{
		Policy:           cfg.Policy,
		Capacity:         cfg.Capacity,
		RescaleGap:       model.Duration(cfg.RescaleGap),
		JobOverheadSlots: cfg.JobOverheadSlots,
		AgingRate:        cfg.AgingRate,
		EnablePreemption: cfg.EnablePreemption,
		StrictFCFS:       cfg.StrictFCFS,
		CostBenefit:      cfg.CostBenefit,
	}, (*simActuator)(s), func() time.Time {
		return epoch.Add(model.Duration(s.now))
	})
	if err != nil {
		return nil, err
	}
	s.sched = sched
	return s, nil
}

// Run simulates the workload to completion and returns the metrics.
func (s *Simulator) Run(w Workload) (Result, error) {
	specs := model.Specs()
	for _, js := range w.Jobs {
		spec := specs[js.Class]
		sj := &simJob{
			spec: spec,
			job: &core.Job{
				ID:          js.ID,
				Priority:    js.Priority,
				MinReplicas: spec.MinReplicas,
				MaxReplicas: spec.MaxReplicas,
				SubmitTime:  epoch.Add(model.Duration(js.SubmitAt)),
			},
			meta: JobMetrics{ID: js.ID, Class: js.Class, Priority: js.Priority, SubmitAt: js.SubmitAt},
		}
		if sj.job.MaxReplicas > s.cfg.Capacity {
			sj.job.MaxReplicas = s.cfg.Capacity
		}
		s.jobs[js.ID] = sj
		s.push(&event{at: js.SubmitAt, kind: evSubmit, job: sj})
	}

	processed := 0
	for s.events.Len() > 0 {
		processed++
		if processed > 5_000_000 {
			// Defensive: a finite workload must settle in far fewer
			// events; fail loudly rather than spin.
			return Result{}, fmt.Errorf("sim: runaway event loop at t=%.1f: %d running, %d queued, %d heap",
				s.now, len(s.sched.Running()), len(s.sched.Queued()), s.events.Len())
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.kind == evKick {
			// Skip superseded kicks, and kicks armed for a moment
			// beyond the workload's life — before advancing the
			// clock, so they don't distort the utilization window.
			if ev.at != s.kickAt {
				continue
			}
			if len(s.sched.Running()) == 0 && len(s.sched.Queued()) == 0 {
				s.kickAt = -1
				continue
			}
		}
		s.advanceTo(ev.at)
		switch ev.kind {
		case evSubmit:
			if err := s.sched.Submit(ev.job.job); err != nil {
				return Result{}, err
			}
		case evComplete:
			if ev.seq != ev.job.seq {
				continue // stale completion from before a rescale
			}
			s.progress(ev.job)
			// Release the job's workers in the utilization timeline
			// before the scheduler hands them to other jobs.
			s.record(-ev.job.job.Replicas, ev.job, 0)
			ev.job.meta.EndAt = s.now
			s.sched.OnJobComplete(ev.job.job)
		case evKick:
			s.kickAt = -1
			s.sched.Reschedule()
		}
		s.scheduleKick()
	}
	return s.collect(w)
}

// scheduleKick arms a kick event at the next rescale-gap expiry that could
// unblock a scheduling action, modelling the operator's requeue-driven
// reconcile loop. A millisecond of slack is added so the float-seconds event
// time always lands strictly past the scheduler's nanosecond gap deadline.
func (s *Simulator) scheduleKick() {
	at, ok := s.sched.NextGapExpiry()
	if !ok {
		return
	}
	t := at.Sub(epoch).Seconds() + 1e-3
	if s.kickAt >= 0 && s.kickAt <= t {
		return // an earlier (or equal) kick is already pending
	}
	s.kickAt = t
	s.push(&event{at: t, kind: evKick})
}

func (s *Simulator) push(ev *event) {
	s.ord++
	ev.ord = s.ord
	heap.Push(&s.events, ev)
}

// advanceTo moves simulated time forward, accumulating the utilization
// integral.
func (s *Simulator) advanceTo(t float64) {
	if t < s.now {
		t = s.now
	}
	s.utilArea += float64(s.used) * (t - s.utilLast)
	s.utilLast = t
	s.now = t
}

// progressFraction estimates a job's completed fraction at the current sim
// time without mutating its state — the default Progress source for the
// cost/benefit gate.
func (s *Simulator) progressFraction(j *core.Job) float64 {
	sj, ok := s.jobs[j.ID]
	if !ok || sj.spec.Steps == 0 {
		return 0
	}
	done := sj.itersDone
	from := sj.lastUpdate
	if sj.frozenUntil > from {
		from = sj.frozenUntil
	}
	if s.now > from && j.Replicas > 0 {
		done += (s.now - from) / s.cfg.Machine.IterTime(sj.spec.Grid, j.Replicas)
	}
	if done > float64(sj.spec.Steps) {
		done = float64(sj.spec.Steps)
	}
	return done / float64(sj.spec.Steps)
}

// progress brings a job's iteration count up to date at the current time.
func (s *Simulator) progress(sj *simJob) {
	from := sj.lastUpdate
	if sj.frozenUntil > from {
		from = sj.frozenUntil
	}
	if s.now > from && sj.job.Replicas > 0 {
		iterTime := s.cfg.Machine.IterTime(sj.spec.Grid, sj.job.Replicas)
		sj.itersDone += (s.now - from) / iterTime
		if sj.itersDone > float64(sj.spec.Steps) {
			sj.itersDone = float64(sj.spec.Steps)
		}
	}
	sj.lastUpdate = s.now
}

// reschedule recomputes a job's completion event from its remaining work at
// the given replica count, charging overhead seconds of frozen time first.
func (s *Simulator) reschedule(sj *simJob, overhead float64, replicas int) {
	sj.seq++
	start := s.now + overhead
	sj.frozenUntil = start
	remaining := float64(sj.spec.Steps) - sj.itersDone
	iterTime := s.cfg.Machine.IterTime(sj.spec.Grid, replicas)
	finish := start + remaining*iterTime
	s.push(&event{at: finish, kind: evComplete, job: sj, seq: sj.seq})
}

// record tracks an allocation change of delta worker slots for the
// utilization timeline and appends (now, replicas) to the job's own
// replica-count timeline.
func (s *Simulator) record(delta int, sj *simJob, replicas int) {
	s.utilArea += float64(s.used) * (s.now - s.utilLast)
	s.utilLast = s.now
	s.used += delta
	s.utilTL = append(s.utilTL, UtilSample{At: s.now, Used: s.used})
	sj.timeline = append(sj.timeline, ReplicaSample{At: s.now, Replicas: replicas})
}

// simActuator implements core.Actuator on the simulator. Methods run inside
// scheduler calls, which run inside event handling — single-threaded.
type simActuator Simulator

func (a *simActuator) sim() *Simulator { return (*Simulator)(a) }

func (a *simActuator) StartJob(j *core.Job, replicas int) error {
	s := a.sim()
	sj := s.jobs[j.ID]
	if !sj.started {
		sj.started = true
		sj.meta.StartAt = s.now
	}
	resumeOverhead := 0.0
	if j.State == core.StatePreempted {
		// Restarting from a disk checkpoint: charge restart+restore.
		ph := s.cfg.Machine.RescaleOverhead(sj.spec.Grid, replicas, replicas)
		resumeOverhead = ph.Restart + ph.Restore
	}
	sj.lastUpdate = s.now
	s.record(replicas, sj, replicas)
	s.reschedule(sj, resumeOverhead, replicas)
	return nil
}

func (a *simActuator) ShrinkJob(j *core.Job, to int) error {
	return a.rescale(j, to)
}

func (a *simActuator) ExpandJob(j *core.Job, to int) error {
	return a.rescale(j, to)
}

func (a *simActuator) rescale(j *core.Job, to int) error {
	s := a.sim()
	sj := s.jobs[j.ID]
	s.progress(sj) // credit progress at the old replica count first
	ph := s.cfg.Machine.RescaleOverhead(sj.spec.Grid, j.Replicas, to)
	delta := to - j.Replicas
	sj.meta.Rescales++
	sj.meta.OverheadSec += ph.Total()
	s.record(delta, sj, to)
	s.reschedule(sj, ph.Total(), to)
	return nil
}

func (a *simActuator) PreemptJob(j *core.Job) error {
	s := a.sim()
	sj := s.jobs[j.ID]
	s.progress(sj)
	// Checkpoint-to-store cost is charged when the job resumes; stopping
	// invalidates the completion event.
	sj.seq++
	s.record(-j.Replicas, sj, 0)
	return nil
}

// collect computes the final metrics.
func (s *Simulator) collect(w Workload) (Result, error) {
	res := Result{
		Policy:           s.cfg.Policy,
		UtilTimeline:     s.utilTL,
		ReplicaTimelines: make(map[string][]ReplicaSample),
	}
	var firstStart, lastEnd float64
	first := true
	var wSum, wResp, wComp float64
	for _, js := range w.Jobs {
		sj := s.jobs[js.ID]
		if sj.job.State != core.StateCompleted {
			return res, fmt.Errorf("sim: job %s ended in state %v", js.ID, sj.job.State)
		}
		m := sj.meta
		for _, sample := range sj.timeline {
			if sample.Replicas > m.Replicas {
				m.Replicas = sample.Replicas // peak allocation
			}
		}
		m.ResponseTime = m.StartAt - m.SubmitAt
		m.CompletionTime = m.EndAt - m.SubmitAt
		res.Jobs = append(res.Jobs, m)
		res.ReplicaTimelines[js.ID] = sj.timeline
		if first || m.StartAt < firstStart {
			firstStart = m.StartAt
			first = false
		}
		if m.EndAt > lastEnd {
			lastEnd = m.EndAt
		}
		wgt := float64(m.Priority)
		wSum += wgt
		wResp += wgt * m.ResponseTime
		wComp += wgt * m.CompletionTime
	}
	res.TotalTime = lastEnd - firstStart
	// Utilization over the experiment window [0, lastEnd]: no work happens
	// after the last completion, so the accumulated area is complete.
	if lastEnd > 0 {
		res.Utilization = s.utilArea / (float64(s.cfg.Capacity) * lastEnd)
	}
	if wSum > 0 {
		res.WeightedResponse = wResp / wSum
		res.WeightedCompletion = wComp / wSum
	}
	return res, nil
}

// RunPolicy is a convenience wrapper: simulate workload w under policy p.
func RunPolicy(p core.Policy, w Workload, rescaleGap float64) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(w)
}
