package sim

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// JobSpec and Workload live in internal/workload — the scenario engine shared
// with the cluster emulation; the aliases keep sim's historical API intact.
type (
	// JobSpec is one simulated job submission.
	JobSpec = workload.JobSpec
	// Workload is a reproducible job set.
	Workload = workload.Workload
)

// RandomWorkload draws n jobs uniformly from the four classes with uniform
// priorities in [1,5], submitted gap seconds apart (paper §4.3.1: "We pick
// 16 jobs randomly out of these 4 sizes with random priorities between 1
// and 5"). It is the workload.Uniform generator, draw-order-compatible with
// seed-pinned experiments from before the workload-engine extraction.
//
// n <= 0 returns an empty workload; a negative or NaN gap panics (via
// workload.MustUniform) — use workload.Uniform directly for an error return.
func RandomWorkload(n int, gap float64, seed int64) Workload {
	if n <= 0 {
		return Workload{}
	}
	return workload.MustUniform(n, gap, seed)
}

// JobMetrics is the per-job outcome.
type JobMetrics struct {
	ID             string
	Class          model.Class
	Priority       int
	Replicas       int // peak replica count
	SubmitAt       float64
	StartAt        float64
	EndAt          float64
	Rescales       int
	OverheadSec    float64 // total rescale overhead charged
	ResponseTime   float64
	CompletionTime float64
}

// UtilSample is one step of the cluster-utilization timeline.
type UtilSample struct {
	At   float64 // seconds
	Used int     // allocated worker slots
}

// ReplicaSample records a job's replica count change (Figure 9b).
type ReplicaSample struct {
	At       float64
	Replicas int
}

// Result aggregates one simulation run.
type Result struct {
	Policy core.Policy
	// TotalTime is "the end-to-end runtime from the start of the first
	// job to the end of the last job".
	TotalTime float64
	// Utilization is the time-averaged fraction of slots in use over the
	// experiment duration. With an availability trace the denominator is
	// the capacity actually delivered over time, not the base capacity.
	Utilization float64
	// WeightedResponse and WeightedCompletion are priority-weighted means.
	WeightedResponse   float64
	WeightedCompletion float64
	// Resilience aggregates. CapacityEvents counts applied availability
	// events; ForcedShrinks and Requeues split the capacity losses by how
	// running jobs absorbed them (shrink in place vs. checkpoint-requeue);
	// WorkLostSec is the replica-seconds of compute frozen by
	// availability-forced rescales and preemption restarts; GoodputFrac is
	// the fraction of all delivered replica-seconds spent on real
	// iterations rather than any rescale/restart overhead (1 when no
	// overhead was charged). All are computed incrementally, so streaming
	// and retained runs agree bit-for-bit.
	CapacityEvents int
	ForcedShrinks  int
	Requeues       int
	WorkLostSec    float64
	GoodputFrac    float64
	// Federation-aggregation ingredients. FirstStart and LastEnd bound the
	// experiment window (TotalTime = LastEnd - FirstStart); UsedSlotSec and
	// DeliveredSlotSec are the utilization integral's numerator and
	// denominator (allocated vs. deliverable slot-seconds over [0, LastEnd]);
	// WeightSum is the total priority weight behind the weighted means; and
	// EndCapacity is the slot capacity in force when the run drained. A
	// fleet-wide metric over member results sums the integrals and weights
	// rather than averaging the per-member ratios, so it is exact.
	FirstStart       float64
	LastEnd          float64
	UsedSlotSec      float64
	DeliveredSlotSec float64
	WeightSum        float64
	EndCapacity      int
	// Jobs, UtilTimeline, and ReplicaTimelines are nil in streaming mode
	// (Config.Streaming); the aggregate metrics above are always computed.
	Jobs             []JobMetrics
	UtilTimeline     []UtilSample
	ReplicaTimelines map[string][]ReplicaSample
}

// Config parameterizes a simulation.
type Config struct {
	Policy     core.Policy
	Capacity   int     // worker slots (64 in the paper)
	RescaleGap float64 // seconds (T_rescale_gap)
	Machine    model.Machine
	// Streaming computes Result's aggregate metrics incrementally and
	// recycles per-job state at completion instead of retaining a
	// JobMetrics, utilization sample, and replica timeline per job.
	// Memory becomes O(concurrently running jobs) — required for
	// million-job workloads. Result.Jobs, Result.UtilTimeline, and
	// Result.ReplicaTimelines are nil in this mode; the aggregates are
	// bit-identical to the retained mode.
	Streaming bool
	// Availability is the cluster-capacity timeline: each event sets the
	// total slot count at its instant, driving core.Scheduler.SetCapacity
	// through the event loop. Deterministic ordering rule: at equal
	// timestamps, capacity events apply before submissions, which apply
	// before completions and kicks; ties within each class keep trace,
	// workload, and push order respectively. Empty means fixed capacity.
	Availability workload.AvailabilityTrace
	// LogDecisions records every scheduling decision for retrieval via
	// Simulator.Decisions — the audit trail for debugging a run. Default
	// off: the streaming hot path then allocates nothing per decision,
	// and with it on the entries land in core's bounded ring buffer
	// (oldest overwritten past 100k).
	LogDecisions bool
	// FullRedistribute disables the scheduler's incremental early-outs
	// (see core.Config.FullRedistribute) — the reference mode the
	// equivalence tests run against. Decisions and results are identical
	// either way; this is strictly slower.
	FullRedistribute bool
	// Shards selects the sharded execution mode: the workload's submission
	// cursor and the availability trace are deterministically partitioned
	// into up to Shards time epochs cut at predicted cluster-drain
	// boundaries, every epoch is simulated speculatively on its own
	// goroutine from an empty-cluster guess, and a sequential
	// reconciliation pass adopts each epoch whose guess held — re-executing
	// (only) the epochs downstream of a boundary the backlog actually
	// crossed. Decision sequences and Results are bit-identical to the
	// sequential mode (see shard.go for the contract and why the merge is
	// exact). 0 or 1 runs the classic sequential loop; values above the
	// epoch-cut opportunities the workload offers degrade gracefully to
	// fewer shards.
	Shards int
	// Extensions (all default off, matching the paper's §3.2.1 policy).
	JobOverheadSlots int
	AgingRate        float64
	EnablePreemption bool
	StrictFCFS       bool
	CostBenefit      *core.CostBenefit
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig(p core.Policy) Config {
	return Config{Policy: p, Capacity: 64, RescaleGap: 180, Machine: model.DefaultMachine()}
}

// simJob is a job's HOT simulation state: exactly the fields the event loop
// and the scheduler's actuator callbacks touch while the job lives — the
// embedded core.Job (whose own layout leads with the comparator keys), the
// progress-model floats, and the lifecycle flags. One pooled allocation
// covers scheduler and driver state, and the record stays free of strings,
// slices, and metrics metadata so the inner loop walks a handful of dense
// cache lines per event. Everything visited only at submission, rescale
// bookkeeping, or collection time lives in the parallel simJobCold record
// at Simulator.cold[ref].
type simJob struct {
	job core.Job

	itersDone   float64
	lastUpdate  float64 // sim time of the last progress update
	frozenUntil float64 // rescale overhead window: no progress before this
	seq         int64   // increments on every reschedule (and slot recycle)
	steps       float64 // spec.Steps as a float (remaining-work arithmetic)
	submitAt    float64
	startAt     float64 // first-ever start (possibly on a donor member)
	grid        int32   // spec.Grid (iteration-time table key)
	ref         int32   // slab-slot index: byRef[ref] == this, and job.Ref carries it
	widx        int32   // index of this job's spec in the workload
	peak        int32   // peak replica count
	started     bool
	forcedOut   bool // preempted by a capacity reclaim; next start is a forced restart
	// migratedCkpt marks a job injected from another federation member with
	// a checkpoint: its next start charges restart+restore exactly as a
	// locally preempted job's would (the flag exists because core.enqueue
	// resets an injected job's state to StateQueued, losing the
	// StatePreempted marker).
	migratedCkpt bool
}

// simJobCold is the cold half of a job's record: identity and metrics
// metadata, plus the retained-mode replica timeline. Indexed by the job's
// slab ref (Simulator.cold[ref], parallel to byRef) and written only at
// submission, on rescale bookkeeping, and at completion — the event loop
// proper never reads it.
type simJobCold struct {
	meta     JobMetrics
	timeline []ReplicaSample
}

// jobSlabSize is the simJob pool's allocation chunk. Slab entries are
// addressed by pointer and chunks are never appended to, so the pointers
// stay valid for the simulator's lifetime.
const jobSlabSize = 512

// Simulator runs one workload under one policy.
type Simulator struct {
	cfg    Config
	sched  *core.Scheduler
	events eventHeap
	ord    int64
	now    float64
	// byRef is the slab-slot directory: byRef[ref] is the simJob whose
	// core.Job carries Ref == ref. Job identities are interned to these
	// int32 indices at submission, so actuator callbacks resolve driver
	// state with an index load instead of the string-keyed map lookup the
	// simulator used to pay per scheduling action. In streaming mode
	// slots are recycled, so the directory stays O(concurrent jobs).
	// cold is the parallel cold-half directory: cold[ref] holds the
	// metadata and timeline for byRef[ref] (see simJobCold).
	byRef []*simJob
	cold  []simJobCold

	// Pools: the simJob slab and (in streaming mode) completed-job records
	// ready for reuse.
	slab     []simJob
	slabUsed int
	freeJobs []*simJob

	// Cursor window (set by prepare, consumed by runWindow). A sequential
	// run owns the whole workload and trace with an infinite horizon; a
	// shard owns one epoch's slice of each, and reconciliation extends the
	// window of a simulator that must re-execute its successor epoch.
	w          Workload
	order      []int32 // submission order (shared, read-only across shards)
	ranks      []int32 // per-widx ID tie-break ranks (shared, read-only)
	specs      map[model.Class]model.Spec
	cursor     int     // next submission index in order
	subHi      int     // submission window end (exclusive)
	capi       int     // next availability-trace index
	capHi      int     // availability window end (exclusive)
	horizon    float64 // stop before heap events at or past this instant
	final      bool    // last window: trailing capacity events are skipped
	deferKicks bool
	processed  int
	limit      int

	// rec, when non-nil, logs the seal values this window folds into each
	// order-sensitive accumulator so a sharded run can replay them into one
	// bit-identical sequential fold (see merge.go).
	rec *runLog
	// mergedDecisions overrides Decisions() after a sharded run.
	mergedDecisions []core.Decision
	// abandoned is set by the sharded reconciliation pass when this
	// simulator's speculative epoch has been discarded (its boundary guess
	// failed): runWindow then bails out early instead of simulating to the
	// horizon. Only ever set on speculative epoch simulators whose results
	// are never read.
	abandoned atomic.Bool
	// stats counts the reconciliation outcomes of a sharded run (facade
	// simulator only; see shard.go).
	stats shardStats
	// testPlans overrides the epoch planner (tests only): it pins cut
	// points the fluid predictor would not choose, e.g. boundaries that are
	// guaranteed not to drain, to exercise the re-execution path.
	testPlans []epochPlan

	used     int
	utilTL   []UtilSample
	utilArea float64
	utilLast float64
	kickAt   float64 // earliest pending kick event time, or -1

	// Availability accounting. capSteps records each applied capacity
	// change (Used = new capacity) for the delivered-capacity integral;
	// it is bounded by the trace length, so streaming mode keeps it too.
	capSteps     []UtilSample
	capEvents    int
	workLost     float64 // replica-seconds frozen by forced rescales/restarts
	overheadArea float64 // replica-seconds frozen by ALL rescales/restarts

	// Migration counters (the stepping API in step.go): injected counts
	// jobs submitted via Inject, withdrawn counts jobs removed via
	// Withdraw. Both stay zero on the batch path, keeping collect's legacy
	// behaviour bit-identical.
	injected  int
	withdrawn int

	// Aggregates accumulated incrementally at job completion, so streaming
	// and retained runs produce bit-identical Result metrics.
	completed          int
	haveStart          bool
	firstStart         float64
	lastEnd            float64
	wSum, wResp, wComp float64

	// Open sub-accumulators for the order-sensitive float sums, folded into
	// the totals above at every drained instant (see seal in merge.go). Both
	// execution modes run the same two-level fold, which is what lets the
	// sharded merge replay O(drains) seal values instead of O(events) terms.
	utilSub                         float64
	finWSub, finRespSub, finCompSub float64
	ovhSub, lostSub                 float64
}

// epoch anchors the simulator's float timeline to the core scheduler's
// time.Time clock.
var epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

// New creates a simulator for the workload.
func New(cfg Config) (*Simulator, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("sim: capacity %d", cfg.Capacity)
	}
	s := &Simulator{cfg: cfg, kickAt: -1}
	if cb := cfg.CostBenefit; cb != nil && cb.Progress == nil {
		// Wire the gate to the simulator's own progress model so users
		// only need to set thresholds.
		wired := *cb
		wired.Progress = s.progressFraction
		cfg.CostBenefit = &wired
	}
	sched, err := core.NewScheduler(core.Config{
		Policy:           cfg.Policy,
		Capacity:         cfg.Capacity,
		RescaleGap:       model.Duration(cfg.RescaleGap),
		JobOverheadSlots: cfg.JobOverheadSlots,
		AgingRate:        cfg.AgingRate,
		EnablePreemption: cfg.EnablePreemption,
		StrictFCFS:       cfg.StrictFCFS,
		CostBenefit:      cfg.CostBenefit,
		EnableLog:        cfg.LogDecisions,
		FullRedistribute: cfg.FullRedistribute,
	}, (*simActuator)(s), func() time.Time {
		return epoch.Add(model.Duration(s.now))
	})
	if err != nil {
		return nil, err
	}
	s.sched = sched
	return s, nil
}

// allocJob hands out a pooled simJob with its recycle-safe seq and slab-slot
// ref preserved. A fresh slot registers itself in the byRef directory.
func (s *Simulator) allocJob() *simJob {
	if n := len(s.freeJobs); n > 0 {
		sj := s.freeJobs[n-1]
		s.freeJobs = s.freeJobs[:n-1]
		return sj
	}
	if s.slabUsed == len(s.slab) {
		s.slab = make([]simJob, jobSlabSize)
		s.slabUsed = 0
	}
	sj := &s.slab[s.slabUsed]
	s.slabUsed++
	sj.ref = int32(len(s.byRef))
	s.byRef = append(s.byRef, sj)
	s.cold = append(s.cold, simJobCold{})
	return sj
}

// newSimJob builds the simulation record for one submission. widx is the
// job's index in the workload (for retained-mode collection).
func (s *Simulator) newSimJob(js *JobSpec, spec model.Spec, widx int32) *simJob {
	sj := s.allocJob()
	// Bumping seq past the previous lifecycle invalidates any stale
	// completion event still in the heap for a recycled slot.
	seq := sj.seq + 1
	*sj = simJob{seq: seq, ref: sj.ref, widx: widx,
		steps: float64(spec.Steps), grid: int32(spec.Grid), submitAt: js.SubmitAt}
	sj.job = core.Job{
		ID:          js.ID,
		Ref:         sj.ref,
		Priority:    js.Priority,
		MinReplicas: spec.MinReplicas,
		MaxReplicas: spec.MaxReplicas,
		SubmitTime:  epoch.Add(model.Duration(js.SubmitAt)),
	}
	if s.ranks != nil && widx >= 0 {
		sj.job.IDRank = s.ranks[widx]
	}
	if sj.job.MaxReplicas > s.cfg.Capacity {
		sj.job.MaxReplicas = s.cfg.Capacity
	}
	c := &s.cold[sj.ref]
	c.meta = JobMetrics{ID: js.ID, Class: js.Class, Priority: js.Priority, SubmitAt: js.SubmitAt}
	c.timeline = c.timeline[:0]
	return sj
}

// push arms an event.
func (s *Simulator) push(at float64, kind evKind, job *simJob, seq int64) {
	s.ord++
	s.events.push(evKey{at: at, ord: s.ord}, evPayload{job: job, seq: seq, kind: kind})
}

// Run simulates the workload to completion and returns the metrics.
//
// Event ordering at equal timestamps is fixed and documented: capacity
// events apply first (in trace order), then submissions (in workload
// order), then completions and kicks (in push order) — so a capacity drop
// and a submission at the same instant always see the drop land before the
// job is placed, and replaying the same trace is bit-for-bit reproducible.
//
// With Config.Shards > 1 the run executes in the sharded mode (see
// shard.go); decisions and the Result are bit-identical to the sequential
// mode either way.
func (s *Simulator) Run(w Workload) (Result, error) {
	if err := s.cfg.Availability.Validate(); err != nil {
		return Result{}, err
	}
	if s.cfg.Shards > 1 {
		return s.runSharded(w)
	}
	order := submissionOrder(w)
	s.prepare(w, order, submissionRanks(w, order), model.Specs(),
		0, len(w.Jobs), 0, len(s.cfg.Availability.Events), math.Inf(1), true)
	if err := s.runWindow(); err != nil {
		return Result{}, err
	}
	return s.collect(w)
}

// submissionOrder returns the workload's indices in stable submission-time
// order: equal submission times keep workload order, and submissions sort
// before same-instant completions/kicks — exactly the order the former
// pre-pushed submission events produced.
func submissionOrder(w Workload) []int32 {
	order := make([]int32, len(w.Jobs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return w.Jobs[order[a]].SubmitAt < w.Jobs[order[b]].SubmitAt
	})
	return order
}

// submissionRanks interns the ID tie-break for the scheduler's comparator:
// within each group of jobs sharing a submission instant (at the scheduler's
// nanosecond clock resolution, the only granularity at which the ID
// tie-break can fire) the IDs are sorted once and each job gets its sort
// position as core.Job.IDRank, turning every hot-path tie-break from a
// string compare into an integer compare with identical ordering. Groups
// containing duplicate IDs are left at rank zero so the comparator falls
// back to the sequential string compare.
func submissionRanks(w Workload, order []int32) []int32 {
	ranks := make([]int32, len(w.Jobs))
	var group []int32
	for i := 0; i < len(order); {
		at := model.Duration(w.Jobs[order[i]].SubmitAt)
		j := i + 1
		for j < len(order) && model.Duration(w.Jobs[order[j]].SubmitAt) == at {
			j++
		}
		if j-i > 1 {
			group = append(group[:0], order[i:j]...)
			sort.Slice(group, func(a, b int) bool {
				return w.Jobs[group[a]].ID < w.Jobs[group[b]].ID
			})
			dup := false
			for k := 1; k < len(group); k++ {
				if w.Jobs[group[k]].ID == w.Jobs[group[k-1]].ID {
					dup = true
					break
				}
			}
			if !dup {
				for r, widx := range group {
					ranks[widx] = int32(r)
				}
			}
		}
		i = j
	}
	return ranks
}

// prepare installs a cursor window: the submission indices [subLo, subHi)
// of order, the availability events [capLo, capHi), and an event horizon.
// ranks may be nil (no ID-rank interning). A sequential run owns the whole
// workload with an infinite horizon.
func (s *Simulator) prepare(w Workload, order, ranks []int32, specs map[model.Class]model.Spec,
	subLo, subHi, capLo, capHi int, horizon float64, final bool) {
	s.w = w
	s.order = order
	s.ranks = ranks
	s.specs = specs
	s.cursor, s.subHi = subLo, subHi
	s.capi, s.capHi = capLo, capHi
	s.horizon = horizon
	s.final = final
	// Equal-timestamp events coalesce into one scheduler pass: the kick
	// re-arm (an O(running) gap scan) runs once per batch instead of per
	// event. Mid-batch state can only matter to a kick when priorities
	// drift with time (aging), preemption can fire without a gap check, or
	// a cost/benefit gate consults time-varying progress — in those
	// configurations every event re-arms individually, preserving the
	// historical sequence exactly. The audit log also sees mid-batch kicks
	// (a no-op Reschedule still logs its re-enqueue wave), so LogDecisions
	// keeps per-event arming too.
	s.deferKicks = s.cfg.AgingRate == 0 && !s.cfg.EnablePreemption &&
		s.cfg.CostBenefit == nil && !s.cfg.LogDecisions
	s.limit = 5_000_000 + 64*len(w.Jobs) + 16*len(s.cfg.Availability.Events)
}

// extend grows the window to cover the next epoch — the reconciliation
// pass's re-execution step when a backlog crossed an epoch boundary.
func (s *Simulator) extend(subHi, capHi int, horizon float64, final bool) {
	s.subHi = subHi
	s.capHi = capHi
	s.horizon = horizon
	s.final = final
}

// runWindow drives the event loop over the prepared cursor window until the
// window's submissions and capacity events are consumed and no heap event
// remains before the horizon. A non-final window force-applies its trailing
// capacity events even after its own work has drained (sequentially they
// would apply while later submissions are still pending); the final window
// skips them, exactly like the historical sequential loop.
func (s *Simulator) runWindow() error {
	w := s.w
	avail := s.cfg.Availability.Events
	for {
		if s.capi < s.capHi &&
			(!s.final || s.cursor < s.subHi || s.events.len() > 0 ||
				s.sched.NumRunning() > 0 || s.sched.NumQueued() > 0) {
			// Trailing capacity events after all work has drained are
			// skipped in the final window (the guard above): they cannot
			// affect any metric.
			at := avail[s.capi].At
			if (s.cursor >= s.subHi || at <= w.Jobs[s.order[s.cursor]].SubmitAt) &&
				(s.events.len() == 0 || at <= s.events.topAt()) {
				s.advanceTo(at)
				for {
					ev := avail[s.capi]
					s.capi++
					s.processed++
					if err := s.applyCapacity(ev.Capacity); err != nil {
						return err
					}
					if !s.deferKicks || s.capi >= s.capHi || avail[s.capi].At != at {
						break
					}
				}
				s.scheduleKick()
				continue
			}
		}
		if s.cursor < s.subHi {
			at := w.Jobs[s.order[s.cursor]].SubmitAt
			if s.events.len() == 0 || at <= s.events.topAt() {
				s.advanceTo(at)
				for {
					widx := s.order[s.cursor]
					js := &w.Jobs[widx]
					s.cursor++
					s.processed++
					sj := s.newSimJob(js, s.specs[js.Class], widx)
					if err := s.sched.Submit(&sj.job); err != nil {
						return err
					}
					if !s.deferKicks || s.cursor >= s.subHi || w.Jobs[s.order[s.cursor]].SubmitAt != at {
						break
					}
				}
				s.scheduleKick()
				continue
			}
		}
		if s.events.len() == 0 || s.events.topAt() >= s.horizon {
			// Window drained: nothing left before the horizon. Heap
			// events at or past it (stale kicks or stale completions,
			// at most — both bitwise no-ops) belong to the successor
			// epoch's timeline and are resolved by the reconciliation
			// pass.
			return nil
		}
		s.processed++
		if s.processed > s.limit {
			// Defensive: a finite workload must settle in far fewer
			// events; fail loudly rather than spin.
			return fmt.Errorf("sim: runaway event loop at t=%.1f: %d running, %d queued, %d heap",
				s.now, s.sched.NumRunning(), s.sched.NumQueued(), s.events.len())
		}
		if s.processed&255 == 0 && s.abandoned.Load() {
			return errEpochAbandoned
		}
		k, p := s.events.pop()
		if p.kind == evKick {
			// Skip superseded kicks, and kicks armed for a moment
			// beyond the workload's life — before advancing the
			// clock, so they don't distort the utilization window.
			if k.at != s.kickAt {
				continue
			}
			if s.sched.NumRunning() == 0 && s.sched.NumQueued() == 0 {
				s.kickAt = -1
				continue
			}
		}
		if p.kind == evComplete && p.seq != p.job.seq {
			// Stale completion from before a rescale: drop it before
			// advancing the clock, like superseded kicks, so the
			// utilization integral's term boundaries are a pure function
			// of live events — an adopted shard epoch never sees its
			// predecessor's parked stale events, and must fold the same
			// float terms as the sequential loop.
			continue
		}
		s.advanceTo(k.at)
		switch p.kind {
		case evComplete:
			sj := p.job
			s.progress(sj)
			// Release the job's workers in the utilization timeline
			// before the scheduler hands them to other jobs.
			s.record(-sj.job.Replicas, sj, 0)
			s.sched.OnJobComplete(&sj.job)
			s.finish(sj)
			if s.sched.NumRunning() == 0 && s.sched.NumQueued() == 0 {
				// The cluster fully drained: fold the open sub-accumulators
				// into the run totals. Drained instants are the only places
				// a shard cut can be adopted, so sealing here — in every
				// mode — keeps the fold grouping identical everywhere.
				s.seal()
			}
		case evKick:
			s.kickAt = -1
			s.sched.Reschedule()
		}
		s.scheduleKick()
	}
}

// finish folds a completed job into the aggregate metrics — from the hot
// record alone — then back-fills the cold metadata for collection and, in
// streaming mode, recycles the record instead.
func (s *Simulator) finish(sj *simJob) {
	resp := sj.startAt - sj.submitAt
	comp := s.now - sj.submitAt
	if s.now > s.lastEnd {
		s.lastEnd = s.now
	}
	wgt := float64(sj.job.Priority)
	s.finWSub += wgt
	s.finRespSub += wgt * resp
	s.finCompSub += wgt * comp
	s.completed++
	if s.cfg.Streaming {
		s.freeJobs = append(s.freeJobs, sj)
		return
	}
	m := &s.cold[sj.ref].meta
	m.Replicas = int(sj.peak)
	m.StartAt = sj.startAt
	m.EndAt = s.now
	m.ResponseTime = resp
	m.CompletionTime = comp
}

// Decisions returns the scheduler's decision log, oldest first. Empty unless
// Config.LogDecisions is set. After a sharded run the segments' logs are
// merged in epoch order with the same bounded-ring semantics (newest 100k),
// so the log is identical to the sequential mode's.
func (s *Simulator) Decisions() []core.Decision {
	if s.mergedDecisions != nil {
		return s.mergedDecisions
	}
	return s.sched.Log()
}

// scheduleKick arms a kick event at the next rescale-gap expiry that could
// unblock a scheduling action, modelling the operator's requeue-driven
// reconcile loop. A millisecond of slack is added so the float-seconds event
// time always lands strictly past the scheduler's nanosecond gap deadline.
func (s *Simulator) scheduleKick() {
	at, ok := s.sched.NextGapExpiry()
	if !ok {
		return
	}
	t := at.Sub(epoch).Seconds() + 1e-3
	if s.kickAt >= 0 && s.kickAt <= t {
		return // an earlier (or equal) kick is already pending
	}
	s.kickAt = t
	s.push(t, evKick, nil, 0)
}

// applyCapacity drives one availability event through the scheduler. The
// scheduler's forced reclaim calls back into the actuator, which recomputes
// completion events and charges overhead exactly as policy rescales do.
func (s *Simulator) applyCapacity(newCap int) error {
	if err := s.sched.SetCapacity(newCap); err != nil {
		return fmt.Errorf("sim: capacity event at t=%.1f: %w", s.now, err)
	}
	s.capEvents++
	s.capSteps = append(s.capSteps, UtilSample{At: s.now, Used: newCap})
	return nil
}

// CapacityArea integrates a capacity step function over [0, end] seconds:
// base capacity until the first step, then each step's Used value from its
// At onward. It is the utilization denominator both backends use when the
// cluster's slot count varies — shared so the simulator and the emulation
// can never drift apart on how delivered capacity is measured.
func CapacityArea(base float64, steps []UtilSample, end float64) float64 {
	area := 0.0
	prevAt, prevCap := 0.0, base
	for _, st := range steps {
		at := st.At
		if at > end {
			at = end
		}
		if at > prevAt {
			area += prevCap * (at - prevAt)
			prevAt = at
		}
		if st.At >= end {
			return area
		}
		prevCap = float64(st.Used)
	}
	if end > prevAt {
		area += prevCap * (end - prevAt)
	}
	return area
}

// advanceUtil accumulates the utilization integral up to t. Zero terms
// (idle time, repeated samples at one instant) add exactly +0.0 to a
// non-negative accumulator — a bitwise no-op — so they are skipped: the
// nonzero terms alone, folded in order, reproduce the full sum bit-for-bit
// (and an adopted epoch's trailing idle stretch contributes nothing, which
// keeps its seal sequence identical to the sequential loop's).
func (s *Simulator) advanceUtil(t float64) {
	if d := float64(s.used) * (t - s.utilLast); d != 0 {
		s.utilSub += d
	}
	s.utilLast = t
}

// advanceTo moves simulated time forward, accumulating the utilization
// integral.
func (s *Simulator) advanceTo(t float64) {
	if t < s.now {
		t = s.now
	}
	s.advanceUtil(t)
	s.now = t
}

// progressFraction estimates a job's completed fraction at the current sim
// time without mutating its state — the default Progress source for the
// cost/benefit gate.
func (s *Simulator) progressFraction(j *core.Job) float64 {
	if int(j.Ref) >= len(s.byRef) {
		return 0
	}
	sj := s.byRef[j.Ref]
	if sj.steps == 0 {
		return 0
	}
	done := sj.itersDone
	from := sj.lastUpdate
	if sj.frozenUntil > from {
		from = sj.frozenUntil
	}
	if s.now > from && j.Replicas > 0 {
		done += (s.now - from) / s.cfg.Machine.IterTime(int(sj.grid), j.Replicas)
	}
	if done > sj.steps {
		done = sj.steps
	}
	return done / sj.steps
}

// progress brings a job's iteration count up to date at the current time.
func (s *Simulator) progress(sj *simJob) {
	from := sj.lastUpdate
	if sj.frozenUntil > from {
		from = sj.frozenUntil
	}
	if s.now > from && sj.job.Replicas > 0 {
		iterTime := s.cfg.Machine.IterTime(int(sj.grid), sj.job.Replicas)
		sj.itersDone += (s.now - from) / iterTime
		if sj.itersDone > sj.steps {
			sj.itersDone = sj.steps
		}
	}
	sj.lastUpdate = s.now
}

// reschedule recomputes a job's completion event from its remaining work at
// the given replica count, charging overhead seconds of frozen time first.
func (s *Simulator) reschedule(sj *simJob, overhead float64, replicas int) {
	sj.seq++
	start := s.now + overhead
	sj.frozenUntil = start
	remaining := sj.steps - sj.itersDone
	iterTime := s.cfg.Machine.IterTime(int(sj.grid), replicas)
	finish := start + remaining*iterTime
	s.push(finish, evComplete, sj, sj.seq)
}

// record tracks an allocation change of delta worker slots for the
// utilization accounting and, outside streaming mode, appends the sample to
// the utilization and per-job replica timelines.
func (s *Simulator) record(delta int, sj *simJob, replicas int) {
	s.advanceUtil(s.now)
	s.used += delta
	if int32(replicas) > sj.peak {
		sj.peak = int32(replicas) // peak allocation
	}
	if !s.cfg.Streaming {
		s.utilTL = append(s.utilTL, UtilSample{At: s.now, Used: s.used})
		c := &s.cold[sj.ref]
		c.timeline = append(c.timeline, ReplicaSample{At: s.now, Replicas: replicas})
	}
}

// simActuator implements core.Actuator on the simulator. Methods run inside
// scheduler calls, which run inside event handling — single-threaded.
type simActuator Simulator

func (a *simActuator) sim() *Simulator { return (*Simulator)(a) }

func (a *simActuator) StartJob(j *core.Job, replicas int) error {
	s := a.sim()
	sj := s.byRef[j.Ref]
	if !sj.started {
		sj.started = true
		sj.startAt = s.now
		if !s.haveStart || s.now < s.firstStart {
			s.haveStart = true
			s.firstStart = s.now
		}
	}
	resumeOverhead := 0.0
	if j.State == core.StatePreempted || sj.migratedCkpt {
		sj.migratedCkpt = false
		// Restarting from a disk checkpoint: charge restart+restore.
		ph := s.cfg.Machine.RescaleOverhead(int(sj.grid), replicas, replicas)
		resumeOverhead = ph.Restart + ph.Restore
		area := resumeOverhead * float64(replicas)
		s.ovhSub += area
		if sj.forcedOut {
			sj.forcedOut = false
			s.lostSub += area
		}
	}
	sj.lastUpdate = s.now
	s.record(replicas, sj, replicas)
	s.reschedule(sj, resumeOverhead, replicas)
	return nil
}

func (a *simActuator) ShrinkJob(j *core.Job, to int) error {
	return a.rescale(j, to)
}

func (a *simActuator) ExpandJob(j *core.Job, to int) error {
	return a.rescale(j, to)
}

func (a *simActuator) rescale(j *core.Job, to int) error {
	s := a.sim()
	sj := s.byRef[j.Ref]
	s.progress(sj) // credit progress at the old replica count first
	ph := s.cfg.Machine.RescaleOverhead(int(sj.grid), j.Replicas, to)
	tot := ph.Total()
	delta := to - j.Replicas
	if !s.cfg.Streaming {
		m := &s.cold[sj.ref].meta
		m.Rescales++
		m.OverheadSec += tot
	}
	area := tot * float64(to)
	s.ovhSub += area
	if s.sched.Reclaiming() {
		// The shrink was forced by a capacity loss, not chosen by the
		// policy: its frozen window is work the availability event cost.
		s.lostSub += area
	}
	s.record(delta, sj, to)
	s.reschedule(sj, tot, to)
	return nil
}

func (a *simActuator) PreemptJob(j *core.Job) error {
	s := a.sim()
	sj := s.byRef[j.Ref]
	s.progress(sj)
	// Checkpoint-to-store cost is charged when the job resumes; stopping
	// invalidates the completion event.
	sj.seq++
	if s.sched.Reclaiming() {
		sj.forcedOut = true
	}
	s.record(-j.Replicas, sj, 0)
	return nil
}

// resultFromTotals derives the aggregate Result fields from the simulator's
// accumulated integrals. After a sharded run the facade simulator holds the
// replayed (exactly sequential) fold of every segment's terms, so both modes
// share this derivation bit-for-bit. cs and endCap come from the owning
// scheduler (sequential) or the segment merge (sharded).
func (s *Simulator) resultFromTotals(cs core.CapacityStats, endCap int) Result {
	// Fold any unsealed tail first. After a batch run this adds exact zeros
	// (the last completion drained the cluster and sealed), so it is a
	// bitwise no-op there; stepping-API runs that end without a final
	// completion (withdrawals) land their open sub-runs here.
	s.seal()
	res := Result{Policy: s.cfg.Policy}
	res.TotalTime = s.lastEnd - s.firstStart
	res.FirstStart = s.firstStart
	res.LastEnd = s.lastEnd
	res.UsedSlotSec = s.utilArea
	res.WeightSum = s.wSum
	res.EndCapacity = endCap
	// Utilization over the experiment window [0, lastEnd]: no work happens
	// after the last completion, so the accumulated area is complete. With
	// availability events the denominator is the capacity the cluster
	// actually delivered over the window; without any, the closed form
	// keeps the historical (bit-identical) result.
	if s.lastEnd > 0 {
		if len(s.capSteps) == 0 {
			res.DeliveredSlotSec = float64(s.cfg.Capacity) * s.lastEnd
		} else {
			res.DeliveredSlotSec = CapacityArea(float64(s.cfg.Capacity), s.capSteps, s.lastEnd)
		}
		res.Utilization = s.utilArea / res.DeliveredSlotSec
	}
	if s.wSum > 0 {
		res.WeightedResponse = s.wResp / s.wSum
		res.WeightedCompletion = s.wComp / s.wSum
	}
	res.CapacityEvents = s.capEvents
	res.ForcedShrinks = cs.ForcedShrinks
	res.Requeues = cs.Requeues
	res.WorkLostSec = s.workLost
	res.GoodputFrac = 1
	if s.utilArea > 0 {
		res.GoodputFrac = 1 - s.overheadArea/s.utilArea
	}
	return res
}

// collect finalizes the metrics accumulated during a sequential run. The
// expected completion count is the workload's job count adjusted by the
// stepping API's migration counters (jobs injected from, or withdrawn to,
// other federation members) — both zero on the batch path.
func (s *Simulator) collect(w Workload) (Result, error) {
	expected := len(w.Jobs) + s.injected - s.withdrawn
	if s.completed != expected {
		for _, sj := range s.byRef {
			if st := sj.job.State; st != core.StateCompleted && st != core.StateWithdrawn {
				return Result{Policy: s.cfg.Policy}, fmt.Errorf("sim: job %s ended in state %v", sj.job.ID, st)
			}
		}
		return Result{Policy: s.cfg.Policy}, fmt.Errorf("sim: %d of %d jobs completed", s.completed, expected)
	}
	res := s.resultFromTotals(s.sched.CapacityStats(), s.sched.Capacity())
	if !s.cfg.Streaming {
		res.UtilTimeline = s.utilTL
		if s.injected == 0 && s.withdrawn == 0 {
			// Retained mode never recycles slots, so byRef holds every job;
			// widx places each record back in workload order.
			res.Jobs = make([]JobMetrics, len(w.Jobs))
			res.ReplicaTimelines = make(map[string][]ReplicaSample, len(w.Jobs))
			for i, sj := range s.byRef {
				c := &s.cold[i]
				res.Jobs[sj.widx] = c.meta
				res.ReplicaTimelines[c.meta.ID] = c.timeline
			}
		} else {
			// Migration reshaped the job set: workload indices no longer
			// cover it (injected jobs carry widx -1, withdrawn slots never
			// completed), so gather the jobs that completed here and order
			// them deterministically by (SubmitAt, ID).
			res.Jobs = make([]JobMetrics, 0, s.completed)
			res.ReplicaTimelines = make(map[string][]ReplicaSample, s.completed)
			for i, sj := range s.byRef {
				if sj.job.State != core.StateCompleted {
					continue
				}
				c := &s.cold[i]
				res.Jobs = append(res.Jobs, c.meta)
				res.ReplicaTimelines[c.meta.ID] = c.timeline
			}
			sort.Slice(res.Jobs, func(a, b int) bool {
				if res.Jobs[a].SubmitAt != res.Jobs[b].SubmitAt {
					return res.Jobs[a].SubmitAt < res.Jobs[b].SubmitAt
				}
				return res.Jobs[a].ID < res.Jobs[b].ID
			})
		}
	}
	return res, nil
}

// Run constructs a simulator for cfg and runs w to completion — the single
// entry point the RunPolicy* wrappers, the federation members, the sweeps,
// and the migration path all build runs through.
func Run(cfg Config, w Workload) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(w)
}

// RunPolicy is a convenience wrapper: simulate workload w under policy p.
func RunPolicy(p core.Policy, w Workload, rescaleGap float64) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	return Run(cfg, w)
}

// RunPolicyStreaming is RunPolicy in streaming mode: only the aggregate
// metrics are computed, in O(running jobs) memory — the mode for
// multi-million-job workloads.
func RunPolicyStreaming(p core.Policy, w Workload, rescaleGap float64) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	cfg.Streaming = true
	return Run(cfg, w)
}

// RunPolicyAvailability is RunPolicy under a time-varying cluster: the
// capacity trace drives SetCapacity events through the event loop,
// interleaved with the workload's submissions.
func RunPolicyAvailability(p core.Policy, w Workload, rescaleGap float64, avail workload.AvailabilityTrace) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	cfg.Availability = avail
	return Run(cfg, w)
}

// RunPolicyParallel is RunPolicyStreaming in the sharded execution mode:
// the event loop is partitioned into up to shards speculative time epochs
// that run concurrently and reconcile into a Result bit-identical to the
// sequential mode (see Config.Shards). shards <= 1 is the sequential path;
// a workload with fewer cluster-drain boundaries than shards degrades
// gracefully to fewer epochs.
func RunPolicyParallel(p core.Policy, w Workload, rescaleGap float64, shards int) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	cfg.Streaming = true
	cfg.Shards = shards
	return Run(cfg, w)
}

// RunPolicyAvailabilityStreaming is RunPolicyAvailability in streaming mode;
// the aggregates (resilience metrics included) are bit-identical to the
// retained mode.
func RunPolicyAvailabilityStreaming(p core.Policy, w Workload, rescaleGap float64, avail workload.AvailabilityTrace) (Result, error) {
	cfg := DefaultConfig(p)
	cfg.RescaleGap = rescaleGap
	cfg.Availability = avail
	cfg.Streaming = true
	return Run(cfg, w)
}
