package sim

import (
	"fmt"
	"runtime"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/workload"
)

// burstBacklog builds the bursty reference workload the simulator perf work
// targets: waves of 200 simultaneous submissions spaced so the 64-slot
// cluster just keeps up, holding a persistent multi-hundred-job backlog that
// exercises the indexed queue, the kick path, and the streaming collector.
func burstBacklog(tb testing.TB, jobs int) Workload {
	tb.Helper()
	w, err := (workload.Burst{Waves: jobs / 200, PerWave: 200, WaveGap: 29000}).Generate(1)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// BenchmarkSimMillionJobs is the headline scale benchmark: one million
// bursty submissions through the elastic policy in streaming mode, sharded
// across every available core (Config.Shards = NumCPU; on a single-core
// host that degrades to the sequential loop). The pre-overhaul simulator
// sustained ~3.4k jobs/s on this workload (and held a JobMetrics per job);
// the regression gate in CI tracks the current rate via BENCH_BASELINE.json.
func BenchmarkSimMillionJobs(b *testing.B) {
	benchSim(b, 1_000_000, runtime.NumCPU())
}

// BenchmarkSim100kJobs is the same scenario at a tenth the scale on the
// sequential loop — quick enough for local iteration while pinning the
// single-threaded event-loop rate the sharded mode builds on.
func BenchmarkSim100kJobs(b *testing.B) {
	benchSim(b, 100_000, 0)
}

func benchSim(b *testing.B, jobs, shards int) {
	benchSimAvail(b, jobs, burstBacklog(b, jobs), workload.AvailabilityTrace{}, shards)
}

// BenchmarkSimParallelScaling sweeps fixed shard counts over the headline
// workload shape so the sharded mode's scaling curve is visible in CI's
// BENCH_PR.json. The family is informational, not regression-gated: its
// throughput depends on the runner's core count, which varies across CI
// hosts, so the gate tracks only the NumCPU-sharded BenchmarkSimMillionJobs
// above.
func BenchmarkSimParallelScaling(b *testing.B) {
	const jobs = 200_000
	w := burstBacklog(b, jobs)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchSimAvail(b, jobs, w, workload.AvailabilityTrace{}, shards)
		})
	}
}

// BenchmarkSimAvailability is the dynamic-capacity scale benchmark: one
// million bursty submissions with ~10k maintenance-drain capacity events
// interleaved — every drain forces reclaims across the running set and
// every restore triggers a redistribution, exercising the SetCapacity path
// at full event-loop speed. The waves are spaced ~8% wider than the
// fixed-capacity backlog benchmark so the workload stays feasible at the
// drained average capacity; a drain the cluster cannot absorb would grow
// the backlog without bound and measure queue scanning, not event
// handling.
func BenchmarkSimAvailability(b *testing.B) {
	const jobs = 1_000_000
	w, err := (workload.Burst{Waves: jobs / 200, PerWave: 200, WaveGap: 31500}).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	span := w.Span()
	every := span / 5000 // 5000 windows × (drain + restore) ≈ 10k events
	tr, err := (workload.MaintenanceDrain{Every: every, Duration: every / 2, Keep: 56}).Events(1, 64, span)
	if err != nil {
		b.Fatal(err)
	}
	benchSimAvail(b, jobs, w, tr, 0)
}

func benchSimAvail(b *testing.B, jobs int, w Workload, tr workload.AvailabilityTrace, shards int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(core.Elastic)
		cfg.Streaming = true
		cfg.Availability = tr
		cfg.Shards = shards
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalTime <= 0 {
			b.Fatalf("degenerate result: %+v", res)
		}
		if len(tr.Events) > 0 && res.CapacityEvents == 0 {
			b.Fatalf("no capacity events applied (trace had %d)", len(tr.Events))
		}
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
