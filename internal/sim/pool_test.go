package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventPoolRecyclingFuzz drives the event pool and heap through long
// pseudo-random interleavings of push (get + heap push) and pop + recycle,
// checking the two invariants the simulator's event loop depends on:
//
//  1. No aliasing: get never hands out an event the heap still holds, and
//     a popped event's payload is intact at the moment it is popped (a
//     recycled slot overwriting a live one would corrupt both).
//  2. Heap order: events pop in (at, ord) order regardless of how pushes
//     and pops interleave and how often slots are recycled.
func TestEventPoolRecyclingFuzz(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		var pool eventPool
		var heap eventHeap
		live := make(map[*event]int64) // heap-resident events -> expected seq payload
		jobs := []*simJob{{}, {}, {}}  // distinct payload markers
		var nextSeq, ord int64

		push := func() {
			ev := pool.get()
			if _, isLive := live[ev]; isLive {
				t.Fatalf("seed %d: pool handed out an event the heap still holds", seed)
			}
			nextSeq++
			ord++
			*ev = event{
				at:   float64(rng.Intn(50)), // heavy timestamp collisions
				kind: evKind(rng.Intn(2)),
				job:  jobs[rng.Intn(len(jobs))],
				seq:  nextSeq,
				ord:  ord,
			}
			live[ev] = nextSeq
			heap.push(ev)
		}
		pop := func() {
			prev := heap.top()
			ev := heap.pop()
			if ev != prev {
				t.Fatalf("seed %d: top/pop disagree", seed)
			}
			wantSeq, isLive := live[ev]
			if !isLive {
				t.Fatalf("seed %d: heap popped an event not tracked as live", seed)
			}
			if ev.seq != wantSeq || ev.job == nil {
				t.Fatalf("seed %d: popped event payload corrupted (seq %d want %d, job %p)",
					seed, ev.seq, wantSeq, ev.job)
			}
			delete(live, ev)
			pool.put(ev)
			if ev.job != nil {
				t.Fatalf("seed %d: put left the job pointer set", seed)
			}
		}

		for i := 0; i < 20_000; i++ {
			if len(heap) == 0 || rng.Intn(3) > 0 {
				push()
			} else {
				pop()
			}
		}
		// Final drain with no interleaved pushes: successive pops from a
		// min-heap must come out in (at, ord) order. (Pop order across
		// refills is not globally sorted — a later push can carry an
		// earlier timestamp — so only this drain is order-checked; the
		// reference test below covers full-order correctness.)
		var drain []event
		for len(heap) > 0 {
			drain = append(drain, *heap.top()) // value copy: the record is recycled by pop()
			pop()
		}
		if len(live) != 0 {
			t.Fatalf("seed %d: %d events leaked", seed, len(live))
		}
		if !sort.SliceIsSorted(drain, func(a, b int) bool {
			return drain[a].before(&drain[b])
		}) {
			t.Fatalf("seed %d: drain order violates (at, ord) ordering", seed)
		}
	}
}

// TestEventPoolHeapMatchesReference cross-checks the hand-rolled heap + pool
// against a plain sort: push a shuffled batch, drain completely, and the
// drain order must equal the (at, ord) sort of what was pushed. Run twice
// over the same pool so the second batch executes entirely on recycled
// events.
func TestEventPoolHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var pool eventPool
	var heap eventHeap
	job := &simJob{}
	var ord int64
	for batch := 0; batch < 2; batch++ {
		type ref struct {
			at  float64
			ord int64
		}
		var want []ref
		for i := 0; i < 5000; i++ {
			ev := pool.get()
			ord++
			*ev = event{at: float64(rng.Intn(200)), kind: evComplete, job: job, seq: int64(i), ord: ord}
			want = append(want, ref{ev.at, ev.ord})
			heap.push(ev)
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].ord < want[b].ord
		})
		for i := range want {
			ev := heap.pop()
			if ev.at != want[i].at || ev.ord != want[i].ord {
				t.Fatalf("batch %d: pop %d got (%.0f, %d), want (%.0f, %d)",
					batch, i, ev.at, ev.ord, want[i].at, want[i].ord)
			}
			pool.put(ev)
		}
		if len(heap) != 0 {
			t.Fatalf("batch %d: heap not drained", batch)
		}
		if batch == 1 && len(pool.free) != 5000 {
			t.Fatalf("pool lost events: %d free, want 5000", len(pool.free))
		}
	}
}

// TestEventPoolRecycledNeverAliasesLive is the focused regression for the
// no-alias invariant: recycle one event while another is still in the heap,
// then reuse the recycled slot — the live event's payload must be untouched
// and the recycled slot must be a different record.
func TestEventPoolRecycledNeverAliasesLive(t *testing.T) {
	var pool eventPool
	var heap eventHeap
	early, late := &simJob{}, &simJob{}

	a := pool.get()
	*a = event{at: 1, kind: evComplete, job: early, seq: 7, ord: 1}
	heap.push(a)
	b := pool.get()
	*b = event{at: 2, kind: evComplete, job: late, seq: 9, ord: 2}
	heap.push(b)

	got := heap.pop() // a
	pool.put(got)

	c := pool.get() // recycles a's slot
	if c != a {
		t.Fatalf("expected the recycled slot back (got %p, want %p)", c, a)
	}
	if c == b {
		t.Fatal("pool handed out a live heap event")
	}
	*c = event{at: 0.5, kind: evKick, job: nil, seq: 11, ord: 3}
	heap.push(c)

	// The live event b must be untouched by a's recycle and reuse.
	if b.at != 2 || b.job != late || b.seq != 9 {
		t.Fatalf("live event corrupted by recycle: %+v", *b)
	}
	if heap.pop() != c || heap.pop() != b {
		t.Fatal("heap order wrong after recycle")
	}
}
