package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapFuzz drives the struct-of-arrays heap through long
// pseudo-random interleavings of push and pop, checking the invariants the
// simulator's event loop depends on:
//
//  1. Key/payload lockstep: the payload popped with a key is exactly the
//     payload pushed with it (a sift swapping one array but not the other
//     would silently fire the wrong job's event).
//  2. Heap order: keys pop in (at, ord) order regardless of how pushes and
//     pops interleave.
func TestEventHeapFuzz(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		var heap eventHeap
		jobs := []*simJob{{}, {}, {}} // distinct payload markers
		bySeq := make(map[int64]*simJob)
		byOrd := make(map[int64]int64) // ord -> seq pushed with it
		var nextSeq, ord int64

		push := func() {
			nextSeq++
			ord++
			job := jobs[rng.Intn(len(jobs))]
			bySeq[nextSeq] = job
			byOrd[ord] = nextSeq
			heap.push(
				evKey{at: float64(rng.Intn(50)), ord: ord}, // heavy timestamp collisions
				evPayload{job: job, seq: nextSeq, kind: evKind(rng.Intn(2))},
			)
		}
		pop := func() evKey {
			topAt := heap.topAt()
			k, p := heap.pop()
			if k.at != topAt {
				t.Fatalf("seed %d: topAt/pop disagree", seed)
			}
			wantSeq, tracked := byOrd[k.ord]
			if !tracked {
				t.Fatalf("seed %d: popped unknown ord %d", seed, k.ord)
			}
			if p.seq != wantSeq || p.job != bySeq[wantSeq] {
				t.Fatalf("seed %d: payload decoupled from key (seq %d want %d)",
					seed, p.seq, wantSeq)
			}
			delete(byOrd, k.ord)
			delete(bySeq, wantSeq)
			return k
		}

		for i := 0; i < 20_000; i++ {
			if heap.len() == 0 || rng.Intn(3) > 0 {
				push()
			} else {
				pop()
			}
		}
		// Final drain with no interleaved pushes: successive pops from a
		// min-heap must come out in (at, ord) order. (Pop order across
		// refills is not globally sorted — a later push can carry an
		// earlier timestamp — so only this drain is order-checked; the
		// reference test below covers full-order correctness.)
		var drain []evKey
		for heap.len() > 0 {
			drain = append(drain, pop())
		}
		if len(byOrd) != 0 {
			t.Fatalf("seed %d: %d events leaked", seed, len(byOrd))
		}
		if !sort.SliceIsSorted(drain, func(a, b int) bool {
			return drain[a].before(drain[b])
		}) {
			t.Fatalf("seed %d: drain order violates (at, ord) ordering", seed)
		}
	}
}

// TestEventHeapMatchesReference cross-checks the hand-rolled heap against a
// plain sort: push a shuffled batch, drain completely, and the drain order
// must equal the (at, ord) sort of what was pushed. Run twice over the same
// heap so the second batch executes entirely on the retained backing arrays.
func TestEventHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var heap eventHeap
	job := &simJob{}
	var ord int64
	for batch := 0; batch < 2; batch++ {
		var want []evKey
		for i := 0; i < 5000; i++ {
			ord++
			k := evKey{at: float64(rng.Intn(200)), ord: ord}
			want = append(want, k)
			heap.push(k, evPayload{job: job, seq: int64(i), kind: evComplete})
		}
		sort.Slice(want, func(a, b int) bool { return want[a].before(want[b]) })
		for i := range want {
			k, p := heap.pop()
			if k != want[i] {
				t.Fatalf("batch %d: pop %d got (%.0f, %d), want (%.0f, %d)",
					batch, i, k.at, k.ord, want[i].at, want[i].ord)
			}
			if p.job != job {
				t.Fatalf("batch %d: pop %d lost its payload", batch, i)
			}
		}
		if heap.len() != 0 {
			t.Fatalf("batch %d: heap not drained", batch)
		}
		if cap(heap.keys) < 5000 || cap(heap.pays) < 5000 {
			t.Fatalf("backing arrays not retained across the drain (caps %d/%d)",
				cap(heap.keys), cap(heap.pays))
		}
	}
}

// TestEventHeapPopClearsPayload pins the no-pinning invariant: a popped
// slot's payload in the backing array is zeroed, so a drained heap holds no
// stale *simJob references to keep dead jobs (and their slabs) reachable.
func TestEventHeapPopClearsPayload(t *testing.T) {
	var heap eventHeap
	early, late := &simJob{}, &simJob{}
	heap.push(evKey{at: 1, ord: 1}, evPayload{job: early, seq: 7, kind: evComplete})
	heap.push(evKey{at: 2, ord: 2}, evPayload{job: late, seq: 9, kind: evComplete})

	if _, p := heap.pop(); p.job != early {
		t.Fatal("wrong first pop")
	}
	if got := heap.pays[:cap(heap.pays)][1]; got.job != nil {
		t.Fatalf("popped slot still pins a job: %+v", got)
	}
	if _, p := heap.pop(); p.job != late {
		t.Fatal("wrong second pop")
	}
	if got := heap.pays[:cap(heap.pays)][0]; got.job != nil {
		t.Fatalf("popped slot still pins a job: %+v", got)
	}
}
