package sim

// Calibration scan used during development to pick DefaultMachine.CellRate
// and the Table 1 seed. Run with:
//
//	go test -run TestCalibrationScan -v -calibrate ./internal/sim/
import (
	"flag"
	"fmt"
	"testing"

	"elastichpc/internal/core"
)

var calibrate = flag.Bool("calibrate", false, "run the calibration scan")

func TestCalibrationScan(t *testing.T) {
	if !*calibrate {
		t.Skip("pass -calibrate to run the scan")
	}
	rates := []float64{1.2e8, 1.6e8, 2.0e8, 2.4e8, 2.8e8}
	for _, rate := range rates {
		good := 0
		var firstSeed int64 = -1
		for seed := int64(0); seed < 100; seed++ {
			res := table1At(t, rate, seed)
			if paperOrdering(res) {
				good++
				if firstSeed < 0 {
					firstSeed = seed
				}
			}
		}
		fmt.Printf("rate=%.1e: %d/100 seeds match paper ordering (first=%d)\n", rate, good, firstSeed)
		if firstSeed >= 0 {
			res := table1At(t, rate, firstSeed)
			for _, p := range core.AllPolicies() {
				r := res[p]
				fmt.Printf("  seed %d %-13s total=%6.0f util=%5.1f%% resp=%6.1f comp=%6.1f\n",
					firstSeed, p, r.TotalTime, 100*r.Utilization, r.WeightedResponse, r.WeightedCompletion)
			}
		}
	}
}

func table1At(t *testing.T, rate float64, seed int64) map[core.Policy]Result {
	t.Helper()
	w := RandomWorkload(16, 90, seed)
	out := make(map[core.Policy]Result, 4)
	for _, p := range core.AllPolicies() {
		cfg := DefaultConfig(p)
		cfg.Machine.CellRate = rate
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = res
	}
	return out
}

// paperOrdering checks the Table 1 relations the paper reports.
func paperOrdering(res map[core.Policy]Result) bool {
	e, mn, mx, mo := res[core.Elastic], res[core.RigidMin], res[core.RigidMax], res[core.Moldable]
	return e.TotalTime < mx.TotalTime && mx.TotalTime < mo.TotalTime && mo.TotalTime < mn.TotalTime &&
		e.Utilization > mx.Utilization && mx.Utilization > mo.Utilization && mo.Utilization > mn.Utilization &&
		e.WeightedResponse < mo.WeightedResponse && mo.WeightedResponse < mx.WeightedResponse &&
		e.WeightedCompletion < mo.WeightedCompletion && e.WeightedCompletion < mx.WeightedCompletion &&
		mn.WeightedCompletion > mx.WeightedCompletion && mn.WeightedCompletion > mo.WeightedCompletion
}
