package sim

import (
	"math"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

func run(t *testing.T, p core.Policy, w Workload, rescaleGap float64) Result {
	t.Helper()
	res, err := RunPolicy(p, w, rescaleGap)
	if err != nil {
		t.Fatalf("RunPolicy(%v): %v", p, err)
	}
	return res
}

func singleJob(class model.Class, prio int, at float64) Workload {
	return Workload{Jobs: []JobSpec{{ID: "j0", Class: class, Priority: prio, SubmitAt: at}}}
}

func TestSingleJobRuntimeMatchesModel(t *testing.T) {
	m := model.DefaultMachine()
	spec := model.Specs()[model.Medium]
	res := run(t, core.RigidMax, singleJob(model.Medium, 3, 0), 180)
	want := m.JobRuntime(spec, spec.MaxReplicas)
	if math.Abs(res.TotalTime-want) > 1e-6 {
		t.Errorf("total = %g, want %g", res.TotalTime, want)
	}
	j := res.Jobs[0]
	if j.ResponseTime != 0 {
		t.Errorf("response = %g", j.ResponseTime)
	}
	if math.Abs(j.CompletionTime-want) > 1e-6 {
		t.Errorf("completion = %g", j.CompletionTime)
	}
	if j.Rescales != 0 {
		t.Errorf("rescales = %d", j.Rescales)
	}
}

func TestRigidMinSlowerThanRigidMaxForOneJob(t *testing.T) {
	w := singleJob(model.Large, 3, 0)
	rMin := run(t, core.RigidMin, w, 180)
	rMax := run(t, core.RigidMax, w, 180)
	if rMin.TotalTime <= rMax.TotalTime {
		t.Errorf("min-replicas total %g <= max-replicas %g", rMin.TotalTime, rMax.TotalTime)
	}
}

func TestUtilizationBounds(t *testing.T) {
	w := RandomWorkload(16, 90, 1)
	for _, p := range core.AllPolicies() {
		res := run(t, p, w, 180)
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%v utilization = %g", p, res.Utilization)
		}
		if res.TotalTime <= 0 {
			t.Errorf("%v total = %g", p, res.TotalTime)
		}
		if len(res.Jobs) != 16 {
			t.Errorf("%v finished %d jobs", p, len(res.Jobs))
		}
	}
}

func TestAllJobsCompleteUnderAllPoliciesManySeeds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, gap := range []float64{0, 90, 300} {
			w := RandomWorkload(16, gap, seed)
			for _, p := range core.AllPolicies() {
				res, err := RunPolicy(p, w, 180)
				if err != nil {
					t.Fatalf("seed %d gap %g policy %v: %v", seed, gap, p, err)
				}
				for _, j := range res.Jobs {
					if j.EndAt <= j.StartAt {
						t.Errorf("seed %d %v job %s: end %g <= start %g", seed, p, j.ID, j.EndAt, j.StartAt)
					}
					if j.StartAt < j.SubmitAt {
						t.Errorf("job %s started before submission", j.ID)
					}
				}
			}
		}
	}
}

func TestElasticRescalesJobs(t *testing.T) {
	// Back-to-back submissions force the elastic scheduler to shrink and
	// expand; rigid policies never do.
	w := RandomWorkload(16, 0, 3)
	elastic := run(t, core.Elastic, w, 180)
	var rescales int
	for _, j := range elastic.Jobs {
		rescales += j.Rescales
	}
	if rescales == 0 {
		t.Error("elastic policy never rescaled under contention")
	}
	for _, p := range []core.Policy{core.RigidMin, core.RigidMax, core.Moldable} {
		res := run(t, p, w, 180)
		for _, j := range res.Jobs {
			if j.Rescales != 0 {
				t.Errorf("%v rescaled job %s %d times", p, j.ID, j.Rescales)
			}
		}
	}
}

func TestElasticBeatsBaselinesOnUtilizationUnderContention(t *testing.T) {
	// Figure 7a at small gaps: elastic has the highest utilization and
	// min_replicas the lowest.
	var e, mn, mx, mo float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		w := RandomWorkload(16, 30, seed)
		e += run(t, core.Elastic, w, 180).Utilization
		mn += run(t, core.RigidMin, w, 180).Utilization
		mx += run(t, core.RigidMax, w, 180).Utilization
		mo += run(t, core.Moldable, w, 180).Utilization
	}
	if !(e > mx && e > mo && e > mn) {
		t.Errorf("elastic util %g not highest (min %g max %g mold %g)", e/seeds, mn/seeds, mx/seeds, mo/seeds)
	}
	if !(mn < mx && mn < mo) {
		t.Errorf("min-replicas util %g not lowest (max %g mold %g)", mn/seeds, mx/seeds, mo/seeds)
	}
}

func TestElasticLowestTotalTime(t *testing.T) {
	// Figure 7b: the elastic scheduler's total time is the lowest.
	var e, mn, mx, mo float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		w := RandomWorkload(16, 90, seed)
		e += run(t, core.Elastic, w, 180).TotalTime
		mn += run(t, core.RigidMin, w, 180).TotalTime
		mx += run(t, core.RigidMax, w, 180).TotalTime
		mo += run(t, core.Moldable, w, 180).TotalTime
	}
	if !(e < mn && e < mx && e < mo) {
		t.Errorf("elastic total %g not lowest (min %g max %g mold %g)", e/seeds, mn/seeds, mx/seeds, mo/seeds)
	}
}

func TestMinReplicasLowestResponseTime(t *testing.T) {
	// Figure 7c: min_replicas leaves capacity free, so its weighted mean
	// response time is the lowest; it pays with the highest completion
	// time (Figure 7d).
	var respMin, respMax, compMin, compMax float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		w := RandomWorkload(16, 90, seed)
		rMin := run(t, core.RigidMin, w, 180)
		rMax := run(t, core.RigidMax, w, 180)
		respMin += rMin.WeightedResponse
		respMax += rMax.WeightedResponse
		compMin += rMin.WeightedCompletion
		compMax += rMax.WeightedCompletion
	}
	if respMin >= respMax {
		t.Errorf("min-replicas response %g >= max-replicas %g", respMin/seeds, respMax/seeds)
	}
	if compMin <= compMax {
		t.Errorf("min-replicas completion %g <= max-replicas %g", compMin/seeds, compMax/seeds)
	}
}

func TestTotalTimesConvergeAtLargeGaps(t *testing.T) {
	// Figure 7b: with a large enough submission gap every job runs alone
	// at max replicas, so elastic/moldable/max totals converge.
	w := RandomWorkload(16, 4000, 4)
	e := run(t, core.Elastic, w, 180).TotalTime
	mx := run(t, core.RigidMax, w, 180).TotalTime
	mo := run(t, core.Moldable, w, 180).TotalTime
	if math.Abs(e-mx)/mx > 0.02 || math.Abs(mo-mx)/mx > 0.02 {
		t.Errorf("totals did not converge: elastic %g, max %g, moldable %g", e, mx, mo)
	}
}

func TestElasticApproachesMoldableAsRescaleGapGrows(t *testing.T) {
	// Figure 8: "All the metrics for the elastic scheduler approach the
	// moldable scheduler as T_rescale_gap is increased".
	w := RandomWorkload(16, 180, 5)
	mo := run(t, core.Moldable, w, 180)
	eHuge := run(t, core.Elastic, w, 1e9)
	if math.Abs(eHuge.TotalTime-mo.TotalTime)/mo.TotalTime > 0.01 {
		t.Errorf("elastic@∞gap total %g != moldable %g", eHuge.TotalTime, mo.TotalTime)
	}
	if math.Abs(eHuge.Utilization-mo.Utilization) > 0.01 {
		t.Errorf("elastic@∞gap util %g != moldable %g", eHuge.Utilization, mo.Utilization)
	}
}

func TestSmallRescaleGapImprovesElasticUtilization(t *testing.T) {
	// Figure 8a: utilization is highest with a small T_rescale_gap.
	var lo, hi float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		w := RandomWorkload(16, 180, seed)
		lo += run(t, core.Elastic, w, 30).Utilization
		hi += run(t, core.Elastic, w, 900).Utilization
	}
	if lo <= hi {
		t.Errorf("util with 30s gap (%g) <= 900s gap (%g)", lo/seeds, hi/seeds)
	}
}

func TestRescaleOverheadCharged(t *testing.T) {
	w := RandomWorkload(16, 0, 3)
	res := run(t, core.Elastic, w, 180)
	var overhead float64
	for _, j := range res.Jobs {
		overhead += j.OverheadSec
		if j.Rescales > 0 && j.OverheadSec <= 0 {
			t.Errorf("job %s rescaled %d times with zero overhead", j.ID, j.Rescales)
		}
	}
	if overhead <= 0 {
		t.Error("no rescale overhead charged at all")
	}
}

func TestWorkloadWithGapPreservesMix(t *testing.T) {
	w := RandomWorkload(16, 90, 7)
	w2 := w.WithGap(30)
	if len(w2.Jobs) != len(w.Jobs) {
		t.Fatal("job count changed")
	}
	for i := range w.Jobs {
		if w2.Jobs[i].Class != w.Jobs[i].Class || w2.Jobs[i].Priority != w.Jobs[i].Priority {
			t.Errorf("job %d mix changed", i)
		}
		if w2.Jobs[i].SubmitAt != float64(i)*30 {
			t.Errorf("job %d submit = %g", i, w2.Jobs[i].SubmitAt)
		}
	}
	// Original untouched.
	if w.Jobs[1].SubmitAt != 90 {
		t.Error("WithGap mutated the original workload")
	}
}

func TestRandomWorkloadDeterministic(t *testing.T) {
	a := RandomWorkload(16, 90, 42)
	b := RandomWorkload(16, 90, 42)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across same-seed generations", i)
		}
	}
	c := RandomWorkload(16, 90, 43)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Class != c.Jobs[i].Class || a.Jobs[i].Priority != c.Jobs[i].Priority {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestUtilizationTimelineConsistent(t *testing.T) {
	w := RandomWorkload(8, 60, 9)
	res := run(t, core.Elastic, w, 180)
	if len(res.UtilTimeline) == 0 {
		t.Fatal("no utilization timeline")
	}
	for i, s := range res.UtilTimeline {
		if s.Used < 0 || s.Used > 64 {
			t.Errorf("sample %d used = %d", i, s.Used)
		}
		if i > 0 && s.At < res.UtilTimeline[i-1].At {
			t.Errorf("timeline not monotone at %d", i)
		}
	}
	// The last allocation change must return the cluster to empty.
	if last := res.UtilTimeline[len(res.UtilTimeline)-1]; last.Used != 0 {
		t.Errorf("cluster not empty at end: %d slots used", last.Used)
	}
}

func TestReplicaTimelineRecordsRescales(t *testing.T) {
	w := RandomWorkload(16, 0, 3)
	res := run(t, core.Elastic, w, 180)
	found := false
	for id, tl := range res.ReplicaTimelines {
		if len(tl) > 1 {
			found = true
			for i := 1; i < len(tl); i++ {
				if tl[i].At < tl[i-1].At {
					t.Errorf("job %s timeline not monotone", id)
				}
			}
		}
	}
	if !found {
		t.Error("no job has a multi-point replica timeline despite contention")
	}
}

func TestXLargeCappedAtCapacity(t *testing.T) {
	// An xlarge job's max (64) equals capacity; it must be able to run.
	res := run(t, core.RigidMax, singleJob(model.XLarge, 5, 0), 180)
	if res.Jobs[0].Replicas != 64 {
		t.Errorf("xlarge ran at %d replicas", res.Jobs[0].Replicas)
	}
}

func TestTable1Simulation(t *testing.T) {
	results, err := Table1Simulation()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d policies", len(results))
	}
	e := results[core.Elastic]
	// Table 1 ordering: elastic wins every metric.
	for _, p := range []core.Policy{core.RigidMin, core.RigidMax, core.Moldable} {
		r := results[p]
		if e.TotalTime >= r.TotalTime {
			t.Errorf("elastic total %g >= %v %g", e.TotalTime, p, r.TotalTime)
		}
		if e.Utilization <= r.Utilization {
			t.Errorf("elastic util %g <= %v %g", e.Utilization, p, r.Utilization)
		}
		if e.WeightedCompletion >= r.WeightedCompletion {
			t.Errorf("elastic completion %g >= %v %g", e.WeightedCompletion, p, r.WeightedCompletion)
		}
	}
	// min_replicas has the lowest utilization.
	mn := results[core.RigidMin]
	for _, p := range []core.Policy{core.RigidMax, core.Moldable, core.Elastic} {
		if mn.Utilization >= results[p].Utilization {
			t.Errorf("min util %g >= %v %g", mn.Utilization, p, results[p].Utilization)
		}
	}
	// Moldable response beats max_replicas (paper §4.3.2).
	if results[core.Moldable].WeightedResponse >= results[core.RigidMax].WeightedResponse {
		t.Errorf("moldable response %g >= max %g",
			results[core.Moldable].WeightedResponse, results[core.RigidMax].WeightedResponse)
	}
}

func TestSweepsRunSmall(t *testing.T) {
	pts, err := SubmissionGapSweep([]float64{0, 150, 300}, 8, 2, 180)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if len(pt.ByPolicy) != 4 {
			t.Errorf("point %g has %d policies", pt.X, len(pt.ByPolicy))
		}
		for p, avg := range pt.ByPolicy {
			if avg.Runs != 2 || avg.TotalTime <= 0 {
				t.Errorf("point %g policy %v: %+v", pt.X, p, avg)
			}
		}
	}
	rpts, err := RescaleGapSweep([]float64{0, 600}, 8, 2, 180)
	if err != nil {
		t.Fatal(err)
	}
	if len(rpts) != 2 {
		t.Fatalf("%d rescale points", len(rpts))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Policy: core.Elastic, Capacity: 0}); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestPreemptionExtensionCompletesAllJobs(t *testing.T) {
	cfg := DefaultConfig(core.Elastic)
	cfg.EnablePreemption = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(RandomWorkload(16, 0, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 16 {
		t.Errorf("%d jobs finished", len(res.Jobs))
	}
}

func TestCostBenefitExtensionCompletesAllJobs(t *testing.T) {
	cfg := DefaultConfig(core.Elastic)
	progress := func(j *core.Job) float64 { return 0.5 }
	cfg.CostBenefit = &core.CostBenefit{Progress: progress, MinRemainingFraction: 0.1, MinExpandGain: 2}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(RandomWorkload(16, 30, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 16 {
		t.Errorf("%d jobs finished", len(res.Jobs))
	}
}

// Streaming mode must reproduce the retained mode's aggregates exactly: both
// accumulate them incrementally at completion time, so equality is
// bit-for-bit, not approximate.
func TestStreamingMatchesRetained(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, gap := range []float64{0, 90} {
			w := RandomWorkload(16, gap, seed)
			for _, p := range core.AllPolicies() {
				retained := run(t, p, w, 180)
				streaming, err := RunPolicyStreaming(p, w, 180)
				if err != nil {
					t.Fatalf("seed %d gap %g %v streaming: %v", seed, gap, p, err)
				}
				if streaming.TotalTime != retained.TotalTime ||
					streaming.Utilization != retained.Utilization ||
					streaming.WeightedResponse != retained.WeightedResponse ||
					streaming.WeightedCompletion != retained.WeightedCompletion {
					t.Errorf("seed %d gap %g %v: streaming %+v != retained %+v",
						seed, gap, p, streaming, retained)
				}
				if streaming.Jobs != nil || streaming.UtilTimeline != nil || streaming.ReplicaTimelines != nil {
					t.Errorf("%v: streaming result retained per-job state", p)
				}
				if len(retained.Jobs) != 16 {
					t.Errorf("%v: retained mode lost jobs: %d", p, len(retained.Jobs))
				}
			}
		}
	}
}

// The streaming recycler must stay correct when job records are reused many
// times over: a deep bursty backlog cycles every pooled slot repeatedly.
func TestStreamingRecyclesUnderBacklog(t *testing.T) {
	w, err := (workload.Burst{Waves: 20, PerWave: 50, WaveGap: 2000}).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	retained, err := RunPolicy(core.Elastic, w, 180)
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := RunPolicyStreaming(core.Elastic, w, 180)
	if err != nil {
		t.Fatal(err)
	}
	if streaming.Policy != retained.Policy ||
		streaming.TotalTime != retained.TotalTime ||
		streaming.Utilization != retained.Utilization ||
		streaming.WeightedResponse != retained.WeightedResponse ||
		streaming.WeightedCompletion != retained.WeightedCompletion {
		t.Errorf("streaming %+v diverges from retained aggregates %+v", streaming, retained)
	}
	if len(retained.Jobs) != 1000 {
		t.Errorf("retained completed %d of 1000", len(retained.Jobs))
	}
}
