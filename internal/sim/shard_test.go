package sim

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// waveStartPlans cuts a workload at every distinct submission instant —
// boundaries a persistent backlog is guaranteed to cross, so adopting any
// of them would be wrong and the reconciliation pass must re-execute every
// epoch through the live chain.
func waveStartPlans(w Workload, order []int32, capacity int) []epochPlan {
	var plans []epochPlan
	for i := range order {
		if i == 0 {
			plans = append(plans, epochPlan{start: math.Inf(-1), startCap: capacity})
			continue
		}
		if w.Jobs[order[i]].SubmitAt != w.Jobs[order[i-1]].SubmitAt {
			plans[len(plans)-1].subHi = i
			plans = append(plans, epochPlan{
				subLo: i, start: w.Jobs[order[i]].SubmitAt, startCap: capacity,
			})
		}
	}
	plans[len(plans)-1].subHi = len(order)
	return plans
}

// TestParallelForcedReexecution pins the reconciliation pass's slow path:
// with cut points planted at every wave start of a workload whose backlog
// never drains between waves, no speculative epoch can be adopted, and the
// run must still reproduce the sequential decisions and Result exactly via
// chained re-execution.
func TestParallelForcedReexecution(t *testing.T) {
	w, err := workload.Burst{Waves: 4, PerWave: 50, WaveGap: 500}.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.AllPolicies() {
		t.Run(p.String(), func(t *testing.T) {
			run := func(sharded bool) (Result, []core.Decision) {
				cfg := DefaultConfig(p)
				cfg.LogDecisions = true
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if sharded {
					plans := waveStartPlans(w, submissionOrder(w), cfg.Capacity)
					if len(plans) < 2 {
						t.Fatalf("workload produced %d wave epochs", len(plans))
					}
					cfg.Shards = len(plans)
					s, err = New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					s.testPlans = plans
				}
				res, err := s.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res, s.Decisions()
			}
			seqRes, seqDec := run(false)
			parRes, parDec := run(true)
			if !reflect.DeepEqual(seqDec, parDec) {
				t.Fatalf("decision sequences diverge: sequential %d entries, sharded %d",
					len(seqDec), len(parDec))
			}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Fatalf("results diverge:\nsequential: %+v\nsharded:    %+v", seqRes, parRes)
			}
		})
	}
}

// TestPlanEpochsPartition checks the planner's structural invariants: the
// epochs partition the submission order and the availability trace exactly,
// start instants strictly increase, each epoch's starting capacity is the
// last preceding trace event's, and the epoch count never exceeds the
// requested shard count.
func TestPlanEpochsPartition(t *testing.T) {
	w, err := workload.Burst{Waves: 20, PerWave: 100, WaveGap: 25000}.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	span := w.Span() + 3600
	tr, err := workload.MaintenanceDrain{Every: span / 40, Duration: span / 80, Keep: 48}.Events(7, 64, span)
	if err != nil {
		t.Fatal(err)
	}
	order := submissionOrder(w)
	for _, shards := range []int{1, 2, 4, 8, 64} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg := DefaultConfig(core.Elastic)
			cfg.Availability = tr
			cfg.Shards = shards
			plans := planEpochs(cfg, w, order)
			if shards == 1 && len(plans) != 1 {
				t.Fatalf("shards=1 produced %d epochs", len(plans))
			}
			if len(plans) > shards {
				t.Fatalf("%d epochs exceed %d shards", len(plans), shards)
			}
			if plans[0].subLo != 0 || plans[len(plans)-1].subHi != len(w.Jobs) {
				t.Fatalf("submission windows do not span the workload: %+v", plans)
			}
			if plans[0].capLo != 0 || plans[len(plans)-1].capHi != len(tr.Events) {
				t.Fatalf("capacity windows do not span the trace: %+v", plans)
			}
			for k := 1; k < len(plans); k++ {
				prev, cur := plans[k-1], plans[k]
				if cur.subLo != prev.subHi || cur.capLo != prev.capHi {
					t.Fatalf("epoch %d is not contiguous with its predecessor: %+v / %+v", k, prev, cur)
				}
				if cur.subLo >= cur.subHi {
					t.Fatalf("epoch %d is empty: %+v", k, cur)
				}
				if !(cur.start > prev.start) {
					t.Fatalf("epoch %d start %v does not increase past %v", k, cur.start, prev.start)
				}
				if cur.start != w.Jobs[order[cur.subLo]].SubmitAt {
					t.Fatalf("epoch %d start %v is not its first submission instant", k, cur.start)
				}
				want := cfg.Capacity
				if cur.capLo > 0 {
					want = tr.Events[cur.capLo-1].Capacity
				}
				if cur.startCap != want {
					t.Fatalf("epoch %d startCap %d, want %d", k, cur.startCap, want)
				}
				// Every event in the window belongs to [start_k, start_{k+1}).
				end := planHorizon(plans, k)
				for _, ev := range tr.Events[cur.capLo:cur.capHi] {
					if ev.At < cur.start || ev.At >= end {
						t.Fatalf("epoch %d owns event at %v outside [%v, %v)", k, ev.At, cur.start, end)
					}
				}
			}
		})
	}
}

// TestSubmissionRanksOrder is the property the IDRank interning must hold:
// sorting jobs by (submission instant, rank) with a rank tie falling back
// to the ID must order them exactly like (submission instant, ID) — the
// scheduler comparator's historical tie-break.
func TestSubmissionRanksOrder(t *testing.T) {
	check := func(t *testing.T, w Workload) {
		t.Helper()
		order := submissionOrder(w)
		ranks := submissionRanks(w, order)
		byRank := append([]int32(nil), order...)
		sort.SliceStable(byRank, func(a, b int) bool {
			ja, jb := &w.Jobs[byRank[a]], &w.Jobs[byRank[b]]
			ta, tb := model.Duration(ja.SubmitAt), model.Duration(jb.SubmitAt)
			if ta != tb {
				return ta < tb
			}
			if ra, rb := ranks[byRank[a]], ranks[byRank[b]]; ra != rb {
				return ra < rb
			}
			return ja.ID < jb.ID
		})
		byID := append([]int32(nil), order...)
		sort.SliceStable(byID, func(a, b int) bool {
			ja, jb := &w.Jobs[byID[a]], &w.Jobs[byID[b]]
			ta, tb := model.Duration(ja.SubmitAt), model.Duration(jb.SubmitAt)
			if ta != tb {
				return ta < tb
			}
			return ja.ID < jb.ID
		})
		for i := range byRank {
			if w.Jobs[byRank[i]].ID != w.Jobs[byID[i]].ID {
				t.Fatalf("rank order diverges from ID order at %d: %s vs %s",
					i, w.Jobs[byRank[i]].ID, w.Jobs[byID[i]].ID)
			}
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		w, err := (workload.Burst{Waves: 5, PerWave: 40, WaveGap: 900}).Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("burst/seed%d", seed), func(t *testing.T) { check(t, w) })
	}

	t.Run("duplicate-ids", func(t *testing.T) {
		w, err := (workload.Burst{Waves: 1, PerWave: 20, WaveGap: 600}).Generate(4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Jobs {
			w.Jobs[i].ID = "same"
		}
		order := submissionOrder(w)
		for widx, r := range submissionRanks(w, order) {
			if r != 0 {
				t.Fatalf("duplicate-ID group got nonzero rank %d at job %d", r, widx)
			}
		}
	})

	t.Run("ids-vs-workload-order", func(t *testing.T) {
		// IDs sorted opposite to workload order at one instant: ranks must
		// follow the IDs, not the submission indices.
		w, err := (workload.Burst{Waves: 1, PerWave: 10, WaveGap: 600}).Generate(5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Jobs {
			w.Jobs[i].ID = fmt.Sprintf("j%02d", len(w.Jobs)-1-i)
		}
		check(t, w)
		order := submissionOrder(w)
		ranks := submissionRanks(w, order)
		for i := range w.Jobs {
			want := int32(len(w.Jobs) - 1 - i)
			if ranks[i] != want {
				t.Fatalf("job %d (%s): rank %d, want %d", i, w.Jobs[i].ID, ranks[i], want)
			}
		}
	})
}

// TestPlanEpochsStreamingScaleWorkload pins the planner's behaviour on the
// large bursty workload the conformance matrix's streaming-scale cell runs
// (internal/conformance): it must produce a genuine multi-epoch plan, so
// that cell exercises real boundary drains and reconciliation rather than
// silently degrading to the sequential path.
func TestPlanEpochsStreamingScaleWorkload(t *testing.T) {
	w, err := (workload.Burst{Waves: 12, PerWave: 100, WaveGap: 20000}).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(core.Elastic)
	cfg.Shards = 8
	if plans := planEpochs(cfg, w, submissionOrder(w)); len(plans) < 2 {
		t.Fatalf("streaming-scale workload produced no multi-epoch plan (%d epochs)", len(plans))
	}
}
