package sim

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// waveStartPlans cuts a workload at every distinct submission instant —
// boundaries a persistent backlog is guaranteed to cross, so adopting any
// of them would be wrong and the reconciliation pass must re-execute every
// epoch through the live chain.
func waveStartPlans(w Workload, order []int32, capacity int) []epochPlan {
	var plans []epochPlan
	for i := range order {
		if i == 0 {
			plans = append(plans, epochPlan{start: math.Inf(-1), startCap: capacity})
			continue
		}
		if w.Jobs[order[i]].SubmitAt != w.Jobs[order[i-1]].SubmitAt {
			plans[len(plans)-1].subHi = i
			plans = append(plans, epochPlan{
				subLo: i, start: w.Jobs[order[i]].SubmitAt, startCap: capacity,
			})
		}
	}
	plans[len(plans)-1].subHi = len(order)
	return plans
}

// TestParallelForcedReexecution pins the reconciliation pass's slow path:
// with cut points planted at every wave start of a workload whose backlog
// never drains between waves, no speculative epoch can be adopted, and the
// run must still reproduce the sequential decisions and Result exactly via
// chained re-execution.
func TestParallelForcedReexecution(t *testing.T) {
	w, err := workload.Burst{Waves: 4, PerWave: 50, WaveGap: 500}.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.AllPolicies() {
		t.Run(p.String(), func(t *testing.T) {
			run := func(sharded bool) (Result, []core.Decision) {
				cfg := DefaultConfig(p)
				cfg.LogDecisions = true
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if sharded {
					plans := waveStartPlans(w, submissionOrder(w), cfg.Capacity)
					if len(plans) < 2 {
						t.Fatalf("workload produced %d wave epochs", len(plans))
					}
					cfg.Shards = len(plans)
					s, err = New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					s.testPlans = plans
				}
				res, err := s.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res, s.Decisions()
			}
			seqRes, seqDec := run(false)
			parRes, parDec := run(true)
			if !reflect.DeepEqual(seqDec, parDec) {
				t.Fatalf("decision sequences diverge: sequential %d entries, sharded %d",
					len(seqDec), len(parDec))
			}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Fatalf("results diverge:\nsequential: %+v\nsharded:    %+v", seqRes, parRes)
			}
		})
	}
}

// TestPlanEpochsPartition checks the planner's structural invariants: the
// epochs partition the submission order and the availability trace exactly,
// start instants strictly increase, each epoch's starting capacity is the
// last preceding trace event's, and the epoch count never exceeds the
// requested shard count.
func TestPlanEpochsPartition(t *testing.T) {
	w, err := workload.Burst{Waves: 20, PerWave: 100, WaveGap: 25000}.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	span := w.Span() + 3600
	tr, err := workload.MaintenanceDrain{Every: span / 40, Duration: span / 80, Keep: 48}.Events(7, 64, span)
	if err != nil {
		t.Fatal(err)
	}
	order := submissionOrder(w)
	for _, shards := range []int{1, 2, 4, 8, 64} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg := DefaultConfig(core.Elastic)
			cfg.Availability = tr
			cfg.Shards = shards
			plans := planEpochs(cfg, w, order)
			if shards == 1 && len(plans) != 1 {
				t.Fatalf("shards=1 produced %d epochs", len(plans))
			}
			if len(plans) > shards {
				t.Fatalf("%d epochs exceed %d shards", len(plans), shards)
			}
			if plans[0].subLo != 0 || plans[len(plans)-1].subHi != len(w.Jobs) {
				t.Fatalf("submission windows do not span the workload: %+v", plans)
			}
			if plans[0].capLo != 0 || plans[len(plans)-1].capHi != len(tr.Events) {
				t.Fatalf("capacity windows do not span the trace: %+v", plans)
			}
			for k := 1; k < len(plans); k++ {
				prev, cur := plans[k-1], plans[k]
				if cur.subLo != prev.subHi || cur.capLo != prev.capHi {
					t.Fatalf("epoch %d is not contiguous with its predecessor: %+v / %+v", k, prev, cur)
				}
				if cur.subLo >= cur.subHi {
					t.Fatalf("epoch %d is empty: %+v", k, cur)
				}
				if !(cur.start > prev.start) {
					t.Fatalf("epoch %d start %v does not increase past %v", k, cur.start, prev.start)
				}
				if cur.start != w.Jobs[order[cur.subLo]].SubmitAt {
					t.Fatalf("epoch %d start %v is not its first submission instant", k, cur.start)
				}
				want := cfg.Capacity
				if cur.capLo > 0 {
					want = tr.Events[cur.capLo-1].Capacity
				}
				if cur.startCap != want {
					t.Fatalf("epoch %d startCap %d, want %d", k, cur.startCap, want)
				}
				// Every event in the window belongs to [start_k, start_{k+1}).
				end := planHorizon(plans, k)
				for _, ev := range tr.Events[cur.capLo:cur.capHi] {
					if ev.At < cur.start || ev.At >= end {
						t.Fatalf("epoch %d owns event at %v outside [%v, %v)", k, ev.At, cur.start, end)
					}
				}
			}
		})
	}
}

// TestSubmissionRanksOrder is the property the IDRank interning must hold:
// sorting jobs by (submission instant, rank) with a rank tie falling back
// to the ID must order them exactly like (submission instant, ID) — the
// scheduler comparator's historical tie-break.
func TestSubmissionRanksOrder(t *testing.T) {
	check := func(t *testing.T, w Workload) {
		t.Helper()
		order := submissionOrder(w)
		ranks := submissionRanks(w, order)
		byRank := append([]int32(nil), order...)
		sort.SliceStable(byRank, func(a, b int) bool {
			ja, jb := &w.Jobs[byRank[a]], &w.Jobs[byRank[b]]
			ta, tb := model.Duration(ja.SubmitAt), model.Duration(jb.SubmitAt)
			if ta != tb {
				return ta < tb
			}
			if ra, rb := ranks[byRank[a]], ranks[byRank[b]]; ra != rb {
				return ra < rb
			}
			return ja.ID < jb.ID
		})
		byID := append([]int32(nil), order...)
		sort.SliceStable(byID, func(a, b int) bool {
			ja, jb := &w.Jobs[byID[a]], &w.Jobs[byID[b]]
			ta, tb := model.Duration(ja.SubmitAt), model.Duration(jb.SubmitAt)
			if ta != tb {
				return ta < tb
			}
			return ja.ID < jb.ID
		})
		for i := range byRank {
			if w.Jobs[byRank[i]].ID != w.Jobs[byID[i]].ID {
				t.Fatalf("rank order diverges from ID order at %d: %s vs %s",
					i, w.Jobs[byRank[i]].ID, w.Jobs[byID[i]].ID)
			}
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		w, err := (workload.Burst{Waves: 5, PerWave: 40, WaveGap: 900}).Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("burst/seed%d", seed), func(t *testing.T) { check(t, w) })
	}

	t.Run("duplicate-ids", func(t *testing.T) {
		w, err := (workload.Burst{Waves: 1, PerWave: 20, WaveGap: 600}).Generate(4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Jobs {
			w.Jobs[i].ID = "same"
		}
		order := submissionOrder(w)
		for widx, r := range submissionRanks(w, order) {
			if r != 0 {
				t.Fatalf("duplicate-ID group got nonzero rank %d at job %d", r, widx)
			}
		}
	})

	t.Run("ids-vs-workload-order", func(t *testing.T) {
		// IDs sorted opposite to workload order at one instant: ranks must
		// follow the IDs, not the submission indices.
		w, err := (workload.Burst{Waves: 1, PerWave: 10, WaveGap: 600}).Generate(5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Jobs {
			w.Jobs[i].ID = fmt.Sprintf("j%02d", len(w.Jobs)-1-i)
		}
		check(t, w)
		order := submissionOrder(w)
		ranks := submissionRanks(w, order)
		for i := range w.Jobs {
			want := int32(len(w.Jobs) - 1 - i)
			if ranks[i] != want {
				t.Fatalf("job %d (%s): rank %d, want %d", i, w.Jobs[i].ID, ranks[i], want)
			}
		}
	})
}

// TestPlanEpochsStreamingScaleWorkload pins the planner's behaviour on the
// large bursty workload the conformance matrix's streaming-scale cell runs
// (internal/conformance): it must produce a genuine multi-epoch plan, so
// that cell exercises real boundary drains and reconciliation rather than
// silently degrading to the sequential path.
func TestPlanEpochsStreamingScaleWorkload(t *testing.T) {
	w, err := (workload.Burst{Waves: 12, PerWave: 100, WaveGap: 20000}).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(core.Elastic)
	cfg.Shards = 8
	if plans := planEpochs(cfg, w, submissionOrder(w)); len(plans) < 2 {
		t.Fatalf("streaming-scale workload produced no multi-epoch plan (%d epochs)", len(plans))
	}
}

// classWaves builds a workload of evenly spaced waves with explicit per-wave
// class lists — the skew shapes the work-balanced cut chooser is tested on.
// The gap is huge relative to any job's demand, so the fluid predictor sees a
// full drain before every wave and offers every wave start as a cut candidate;
// the chooser's placement is then isolated from the drain predictor.
func classWaves(gap float64, waves [][]model.Class) Workload {
	var w Workload
	for wv, classes := range waves {
		for j, c := range classes {
			w.Jobs = append(w.Jobs, workload.JobSpec{
				ID:       fmt.Sprintf("skew-w%02d-%02d", wv, j),
				Class:    c,
				Priority: 3,
				SubmitAt: float64(wv) * gap,
			})
		}
	}
	return w
}

// predictedDemand restates the planner's per-job demand formula, so the
// balance tests measure epochs in exactly the units the chooser balances.
func predictedDemand(cfg Config, class model.Class) float64 {
	spec := model.Specs()[class]
	r := spec.MaxReplicas
	if cfg.Policy == core.RigidMin {
		r = spec.MinReplicas
	}
	if r > cfg.Capacity {
		r = cfg.Capacity
	}
	if r < 1 {
		r = 1
	}
	return float64(spec.Steps) * cfg.Machine.IterTime(spec.Grid, r) * float64(r)
}

// epochWorks sums each plan's predicted demand.
func epochWorks(cfg Config, w Workload, order []int32, plans []epochPlan) []float64 {
	works := make([]float64, len(plans))
	for k, pl := range plans {
		for _, idx := range order[pl.subLo:pl.subHi] {
			works[k] += predictedDemand(cfg, w.Jobs[idx].Class)
		}
	}
	return works
}

// TestPlanEpochsWorkBalance pins the work-balanced chooser on three demand
// shapes — heavy jobs clustered at the head, at the tail, and spread
// uniformly. In every shape each epoch's predicted work must sit within one
// wave's demand of the ideal equal share W/K, and on the skewed shapes the
// work-balanced cuts must beat the count-balanced cuts they replaced (equal
// submission counts put several heavy waves in one epoch).
func TestPlanEpochsWorkBalance(t *testing.T) {
	heavy := []model.Class{model.XLarge, model.XLarge, model.XLarge, model.XLarge}
	light := []model.Class{model.Small}
	shapes := map[string][][]model.Class{}
	for i := 0; i < 4; i++ {
		shapes["head-heavy"] = append(shapes["head-heavy"], heavy)
	}
	for i := 0; i < 12; i++ {
		shapes["head-heavy"] = append(shapes["head-heavy"], light)
		shapes["tail-heavy"] = append(shapes["tail-heavy"], light)
	}
	for i := 0; i < 4; i++ {
		shapes["tail-heavy"] = append(shapes["tail-heavy"], heavy)
	}
	for i := 0; i < 16; i++ {
		shapes["uniform"] = append(shapes["uniform"], []model.Class{model.Medium, model.Medium})
	}

	for name, waves := range shapes {
		t.Run(name, func(t *testing.T) {
			const gap = 1e9
			w := classWaves(gap, waves)
			cfg := DefaultConfig(core.Elastic)
			cfg.Shards = 4
			order := submissionOrder(w)
			plans := planEpochs(cfg, w, order)
			if len(plans) != cfg.Shards {
				t.Fatalf("%d epochs planned, want %d: %+v", len(plans), cfg.Shards, plans)
			}

			var total, maxWave float64
			for _, classes := range waves {
				wave := 0.0
				for _, c := range classes {
					wave += predictedDemand(cfg, c)
				}
				total += wave
				if wave > maxWave {
					maxWave = wave
				}
			}
			ideal := total / float64(cfg.Shards)
			works := epochWorks(cfg, w, order, plans)
			bound := maxWave * (1 + 1e-9)
			for k, wk := range works {
				if d := math.Abs(wk - ideal); d > bound {
					t.Fatalf("epoch %d work %.3g is %.3g from the ideal share %.3g (max wave %.3g)\nworks: %v",
						k, wk, d, ideal, maxWave, works)
				}
			}
			if name == "uniform" {
				// Identical waves put every equal-work target exactly on a
				// candidate, so the partition must be exact.
				minW, maxW := works[0], works[0]
				for _, wk := range works[1:] {
					minW, maxW = math.Min(minW, wk), math.Max(maxW, wk)
				}
				if maxW > 1.01*minW {
					t.Fatalf("uniform waves split unevenly: %v", works)
				}
				return
			}

			// Count-balanced comparison: pick, on the same candidate set, the
			// cuts nearest equal submission counts (the chooser this PR
			// replaced), and check the work-balanced plan's largest epoch is
			// decisively smaller.
			var cuts []int
			for i := 1; i < len(order); i++ {
				if w.Jobs[order[i]].SubmitAt != w.Jobs[order[i-1]].SubmitAt {
					cuts = append(cuts, i)
				}
			}
			countBounds := []int{0}
			prev := 0
			for k := 1; k < cfg.Shards; k++ {
				target := float64(len(order)) * float64(k) / float64(cfg.Shards)
				best, bestD := -1, math.Inf(1)
				for _, c := range cuts {
					if c <= prev {
						continue
					}
					if d := math.Abs(float64(c) - target); d < bestD {
						best, bestD = c, d
					}
				}
				if best < 0 {
					continue
				}
				countBounds = append(countBounds, best)
				prev = best
			}
			countPlans := make([]epochPlan, len(countBounds))
			for k, lo := range countBounds {
				hi := len(order)
				if k+1 < len(countBounds) {
					hi = countBounds[k+1]
				}
				countPlans[k] = epochPlan{subLo: lo, subHi: hi}
			}
			countMax, workMax := 0.0, 0.0
			for _, wk := range epochWorks(cfg, w, order, countPlans) {
				countMax = math.Max(countMax, wk)
			}
			for _, wk := range works {
				workMax = math.Max(workMax, wk)
			}
			if workMax > 0.8*countMax {
				t.Fatalf("work-balanced max epoch %.3g does not beat count-balanced %.3g", workMax, countMax)
			}
		})
	}
}

// TestParallelChainedSpeculation pins the pipeline's mixed path: with cuts
// planted at wave starts where the first boundary is crossed by a live
// backlog but the later ones genuinely drain, the reconciliation walk must
// re-execute the first window on the live chain AND still adopt at least one
// downstream speculative epoch — all while reproducing the sequential
// decisions and Result exactly. (TestParallelForcedReexecution covers the
// all-dirty extreme; this covers the dirty-then-clean chain.)
func TestParallelChainedSpeculation(t *testing.T) {
	wave := func(wv int, at float64) []workload.JobSpec {
		jobs := make([]workload.JobSpec, 6)
		for j := range jobs {
			jobs[j] = workload.JobSpec{
				ID:       fmt.Sprintf("c-w%d-%d", wv, j),
				Class:    model.Small,
				Priority: 3,
				SubmitAt: at,
			}
		}
		return jobs
	}

	// Calibrate the spacing from a real run: one wave alone, submitted at 0,
	// starts immediately, so TotalTime is its makespan.
	cfg := DefaultConfig(core.Elastic)
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := probe.Run(Workload{Jobs: wave(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	T := res.TotalTime
	if !(T > 0) {
		t.Fatalf("probe wave makespan %v", T)
	}

	// Wave 1 lands mid-execution of wave 0 (a dirty boundary); waves 2 and 3
	// land an order of magnitude after their predecessors have drained
	// (clean boundaries the walk must adopt).
	var jobs []workload.JobSpec
	jobs = append(jobs, wave(0, 0)...)
	jobs = append(jobs, wave(1, 0.5*T)...)
	jobs = append(jobs, wave(2, 10*T)...)
	jobs = append(jobs, wave(3, 20*T)...)
	w := Workload{Jobs: jobs}

	run := func(sharded bool) (Result, []core.Decision, shardStats) {
		cfg := DefaultConfig(core.Elastic)
		cfg.LogDecisions = true
		if sharded {
			plans := waveStartPlans(w, submissionOrder(w), cfg.Capacity)
			if len(plans) != 4 {
				t.Fatalf("planted %d epochs, want 4", len(plans))
			}
			cfg.Shards = len(plans)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.testPlans = plans
			res, err := s.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			return res, s.Decisions(), s.stats
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.Decisions(), shardStats{}
	}

	seqRes, seqDec, _ := run(false)
	parRes, parDec, st := run(true)
	if !reflect.DeepEqual(seqDec, parDec) {
		t.Fatalf("decision sequences diverge: sequential %d entries, sharded %d",
			len(seqDec), len(parDec))
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("results diverge:\nsequential: %+v\nsharded:    %+v", seqRes, parRes)
	}
	if st.epochs != 4 {
		t.Fatalf("stats recorded %d epochs, want 4: %+v", st.epochs, st)
	}
	if st.reexecuted < 1 {
		t.Fatalf("the planted dirty boundary was not re-executed: %+v", st)
	}
	if st.adopted < 1 {
		t.Fatalf("no speculative epoch was adopted past the dirty boundary: %+v", st)
	}
	if st.adopted+st.reexecuted != st.epochs-1 {
		t.Fatalf("adopted %d + reexecuted %d != %d boundaries", st.adopted, st.reexecuted, st.epochs-1)
	}
}
