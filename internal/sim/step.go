package sim

import (
	"fmt"
	"math"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
)

// This file is the simulator's stepping API — the co-simulation surface the
// federation rebalancer drives. A batch run (Simulator.Run) owns the whole
// timeline at once; a stepped run advances the same event loop in bounded
// windows (Begin → StepTo… → Finish) and, between windows, lets an external
// coordinator inspect the waiting queue and move jobs in and out
// (QueuedJobs / Withdraw / Inject / Preempt / Kick).
//
// Determinism contract: a stepped run is a pure function of (Config,
// workload, the sequence of StepTo instants, and the mutations applied
// between them). The event loop itself is untouched — windowing reuses the
// sharded mode's prepare/extend machinery, and events are still processed in
// the exact (time, kind, order) sequence of the batch loop. The only
// arithmetic difference from a batch run is that the utilization integral is
// accumulated in per-window pieces (same value up to float association).

// MigratedJob is a job in flight between federation members: everything a
// receiving simulator needs to resume it. Checkpointed jobs carry their
// completed iterations and pay restart+restore on their next start, exactly
// as a locally checkpoint-preempted job would.
type MigratedJob struct {
	Spec      JobSpec
	ItersDone float64
	// Checkpointed marks a job that had started (and was checkpointed)
	// before leaving its donor.
	Checkpointed bool
	// ForcedOut carries the donor's pending forced-restart attribution: the
	// job was evicted by a capacity reclaim, so its restart overhead counts
	// as work lost wherever it resumes.
	ForcedOut bool
	// Started/StartAt preserve the job's first-ever start for honest
	// response-time metrics on the receiving member.
	Started bool
	StartAt float64
}

// QueuedJob is a read-only projection of one waiting job, keyed by its slab
// Ref for Withdraw.
type QueuedJob struct {
	Ref         int32
	ID          string
	Class       model.Class
	Priority    int
	SubmitAt    float64
	MinReplicas int
	// Checkpointed reports whether the job has run before (it would migrate
	// with a checkpoint and pay restart+restore wherever it resumes).
	Checkpointed bool
}

// Begin installs the workload for a stepped run. No events are processed
// until the first StepTo. Sharded execution (Config.Shards) does not apply
// to stepped runs; the window machinery below is the sequential loop's.
func (s *Simulator) Begin(w Workload) error {
	if err := s.cfg.Availability.Validate(); err != nil {
		return err
	}
	order := submissionOrder(w)
	s.prepare(w, order, submissionRanks(w, order), model.Specs(), 0, 0, 0, 0, 0, false)
	return nil
}

// StepTo advances the simulation to instant t, processing every submission,
// capacity event, and heap event strictly before t, then moves the clock to
// exactly t. Events at t itself belong to the next window, so a coordinator
// acting at t always observes the state "just before t".
func (s *Simulator) StepTo(t float64) error {
	subHi := s.subHi
	for subHi < len(s.order) && s.w.Jobs[s.order[subHi]].SubmitAt < t {
		subHi++
	}
	capHi := s.capHi
	ev := s.cfg.Availability.Events
	for capHi < len(ev) && ev[capHi].At < t {
		capHi++
	}
	s.extend(subHi, capHi, t, false)
	if err := s.runWindow(); err != nil {
		return err
	}
	s.advanceTo(t)
	return nil
}

// Finish drains the remaining timeline and collects the result, exactly as
// the tail of a batch run would.
func (s *Simulator) Finish() (Result, error) {
	s.extend(len(s.order), len(s.cfg.Availability.Events), math.Inf(1), true)
	if err := s.runWindow(); err != nil {
		return Result{}, err
	}
	return s.collect(s.w)
}

// Clock returns the current simulated time in seconds.
func (s *Simulator) Clock() float64 { return s.now }

// Drained reports whether every submission has been ingested and no job is
// running or waiting — nothing remains but (droppable) stale heap events.
func (s *Simulator) Drained() bool {
	return s.cursor >= len(s.order) && s.sched.NumRunning() == 0 && s.sched.NumQueued() == 0
}

// Idle reports whether no job is running or waiting right now (submissions
// may still be pending — see NextSubmitAt).
func (s *Simulator) Idle() bool {
	return s.sched.NumRunning() == 0 && s.sched.NumQueued() == 0
}

// NextSubmitAt returns the submission instant of the next job the stepped
// run has not ingested yet, if any.
func (s *Simulator) NextSubmitAt() (float64, bool) {
	if s.cursor >= len(s.order) {
		return 0, false
	}
	return s.w.Jobs[s.order[s.cursor]].SubmitAt, true
}

// Processed returns the cumulative count of events processed — the
// coordinator's progress signal for stall detection.
func (s *Simulator) Processed() int { return s.processed }

// CurrentCapacity is the scheduler's slot capacity right now (after every
// applied availability event).
func (s *Simulator) CurrentCapacity() int { return s.sched.Capacity() }

// UsedSlots is the running jobs' total allocation right now.
func (s *Simulator) UsedSlots() int { return s.sched.Capacity() - s.sched.FreeSlots() }

// QueuedJobs snapshots the waiting queue (queued and checkpoint-preempted
// jobs) in the scheduler's internal heap order — deterministic for a
// deterministic run, but not sorted; coordinators impose their own order.
func (s *Simulator) QueuedJobs() []QueuedJob {
	out := make([]QueuedJob, 0, s.sched.NumQueued())
	s.sched.VisitQueued(func(j *core.Job) bool {
		sj := s.byRef[j.Ref]
		out = append(out, QueuedJob{
			Ref:          j.Ref,
			ID:           j.ID,
			Class:        s.cold[j.Ref].meta.Class,
			Priority:     j.Priority,
			SubmitAt:     sj.submitAt,
			MinReplicas:  j.MinReplicas,
			Checkpointed: sj.started || j.State == core.StatePreempted || sj.migratedCkpt,
		})
		return true
	})
	return out
}

// Withdraw removes a waiting job from this simulator, returning the
// migration record a receiving member's Inject consumes. Only queued or
// checkpoint-preempted jobs can be withdrawn.
func (s *Simulator) Withdraw(ref int32) (MigratedJob, error) {
	if ref < 0 || int(ref) >= len(s.byRef) {
		return MigratedJob{}, fmt.Errorf("sim: withdraw: ref %d out of range", ref)
	}
	sj := s.byRef[ref]
	c := &s.cold[ref]
	mj := MigratedJob{
		Spec: JobSpec{
			ID:       c.meta.ID,
			Class:    c.meta.Class,
			Priority: c.meta.Priority,
			SubmitAt: sj.submitAt,
		},
		ItersDone:    sj.itersDone,
		Checkpointed: sj.started || sj.job.State == core.StatePreempted || sj.migratedCkpt,
		ForcedOut:    sj.forcedOut,
		Started:      sj.started,
		StartAt:      sj.startAt,
	}
	if err := s.sched.Withdraw(&sj.job); err != nil {
		return MigratedJob{}, err
	}
	// A waiting job has no live heap events, but bump seq anyway so a
	// recycled slot can never resurrect a stale one.
	sj.seq++
	sj.forcedOut = false
	sj.migratedCkpt = false
	s.withdrawn++
	if s.cfg.Streaming {
		s.freeJobs = append(s.freeJobs, sj)
	}
	return mj, nil
}

// Inject submits a migrated job to this simulator at the current clock. The
// job keeps its original submission time (response/completion metrics stay
// honest) and, when checkpointed, pays restart+restore on its next start.
// Begin must have been called first.
func (s *Simulator) Inject(mj MigratedJob) error {
	spec, ok := s.specs[mj.Spec.Class]
	if !ok {
		return fmt.Errorf("sim: inject %s: unknown class %v", mj.Spec.ID, mj.Spec.Class)
	}
	if spec.MinReplicas > s.cfg.Capacity {
		return fmt.Errorf("sim: inject %s: min replicas %d exceed capacity %d",
			mj.Spec.ID, spec.MinReplicas, s.cfg.Capacity)
	}
	js := mj.Spec
	sj := s.newSimJob(&js, spec, -1)
	sj.itersDone = mj.ItersDone
	sj.lastUpdate = s.now
	sj.migratedCkpt = mj.Checkpointed
	sj.forcedOut = mj.ForcedOut && mj.Checkpointed
	if mj.Started {
		sj.started = true
		sj.startAt = mj.StartAt
		// The job's first start happened on its donor; fold it into this
		// member's experiment window so the fleet window stays exact.
		if !s.haveStart || mj.StartAt < s.firstStart {
			s.haveStart = true
			s.firstStart = mj.StartAt
		}
	}
	s.injected++
	if err := s.sched.Submit(&sj.job); err != nil {
		return err
	}
	s.scheduleKick()
	return nil
}

// Preempt forcibly reclaims up to slots worker slots from running jobs
// (core.Scheduler.Preempt lifted to the stepping API): victims are shrunk,
// then checkpoint-requeued lowest priority first, and land in QueuedJobs
// ready to migrate. Returns the slots actually freed.
func (s *Simulator) Preempt(slots int) int {
	return s.sched.Preempt(slots)
}

// Kick forces a scheduling pass at the current instant — the coordinator
// calls it after a batch of migrations so donors refill their freed slots
// immediately — and re-arms the simulator's gap kick.
func (s *Simulator) Kick() {
	s.sched.Reschedule()
	s.scheduleKick()
}
