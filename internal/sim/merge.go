package sim

import (
	"fmt"

	"elastichpc/internal/core"
)

// The sharded mode's merge must reproduce the sequential Result bit for
// bit, and floating-point addition is not associative: summing each shard's
// partial utilization integral would round differently from the sequential
// left-to-right fold. The merge therefore never adds partial sums. Instead
// every window records the exact terms it contributed to each
// order-sensitive accumulator — the very float64 values the sequential loop
// would have added, produced by the same expressions over the same inputs —
// and the reconciliation pass replays them in segment order into one
// continuous fold. Terms that are exactly +0.0 (idle-time utilization
// advances, unforced overhead with no work lost) are identities under IEEE
// addition on a non-negative accumulator, so the windows skip them and the
// replayed fold still matches the sequential one bitwise. Integer counters
// and float min/max (first start, last end) are exact under any grouping
// and merge directly.

// finTerm is one completed job's contribution to the weighted means.
type finTerm struct {
	w, wr, wc float64 // priority weight, weighted response, weighted completion
}

// ovhTerm is one rescale/restart's contribution to the overhead integrals.
// lost is zero when the rescale was voluntary (policy-chosen), mirroring the
// sequential loop, which adds nothing to WorkLostSec in that case.
type ovhTerm struct {
	area, lost float64
}

// runLog records a window's accumulator terms for the replay merge.
type runLog struct {
	util []float64
	fin  []finTerm
	ovh  []ovhTerm
}

// mergeSegments folds the reconciled segments — each a simulator that ran a
// half-open stretch of the timeline bounded by fully drained instants —
// into the facade simulator's accumulators and derives the Result. Segment
// order is epoch order, so each per-accumulator replay is the sequential
// term sequence.
func (s *Simulator) mergeSegments(w Workload, segs []*Simulator) (Result, error) {
	var cs core.CapacityStats
	for _, sg := range segs {
		for _, d := range sg.rec.util {
			s.utilArea += d
		}
		for _, e := range sg.rec.ovh {
			s.overheadArea += e.area
			s.workLost += e.lost
		}
		for _, e := range sg.rec.fin {
			s.wSum += e.w
			s.wResp += e.wr
			s.wComp += e.wc
		}
		s.completed += sg.completed
		if sg.haveStart && (!s.haveStart || sg.firstStart < s.firstStart) {
			s.haveStart = true
			s.firstStart = sg.firstStart
		}
		if sg.lastEnd > s.lastEnd {
			s.lastEnd = sg.lastEnd
		}
		s.capEvents += sg.capEvents
		s.capSteps = append(s.capSteps, sg.capSteps...)
		st := sg.sched.CapacityStats()
		cs.ForcedShrinks += st.ForcedShrinks
		cs.Requeues += st.Requeues
		cs.SlotsReclaimed += st.SlotsReclaimed
	}
	if s.cfg.LogDecisions {
		logs := make([][]core.Decision, len(segs))
		for i, sg := range segs {
			logs[i] = sg.sched.Log()
		}
		s.mergedDecisions = core.MergeLogs(logs...)
	}
	if s.completed != len(w.Jobs) {
		for _, sg := range segs {
			for _, sj := range sg.byRef {
				if sj.job.State != core.StateCompleted {
					return Result{Policy: s.cfg.Policy},
						fmt.Errorf("sim: job %s ended in state %v", sj.job.ID, sj.job.State)
				}
			}
		}
		return Result{Policy: s.cfg.Policy},
			fmt.Errorf("sim: %d of %d jobs completed", s.completed, len(w.Jobs))
	}
	res := s.resultFromTotals(cs, segs[len(segs)-1].sched.Capacity())
	if !s.cfg.Streaming {
		// Every job lives entirely inside one segment (segments are
		// bounded by drained instants), so the retained records merge by
		// concatenation in segment order.
		res.Jobs = make([]JobMetrics, len(w.Jobs))
		res.ReplicaTimelines = make(map[string][]ReplicaSample, len(w.Jobs))
		var tl []UtilSample
		for _, sg := range segs {
			tl = append(tl, sg.utilTL...)
			for _, sj := range sg.byRef {
				res.Jobs[sj.widx] = sj.meta
				res.ReplicaTimelines[sj.meta.ID] = sj.timeline
			}
		}
		res.UtilTimeline = tl
	}
	return res, nil
}
