package sim

import (
	"fmt"

	"elastichpc/internal/core"
)

// The sharded mode's merge must reproduce the sequential Result bit for
// bit, and floating-point addition is not associative: summing each shard's
// partial utilization integral would round differently from the sequential
// left-to-right fold. The merge therefore never adds partial sums across an
// arbitrary grouping. Instead every order-sensitive accumulator is folded at
// two levels, in BOTH execution modes: the event loop adds each term to a
// running sub-accumulator, and whenever the cluster fully drains (no job
// running, none queued — the only instants a shard cut can be adopted at)
// the sub-accumulator is *sealed*: folded into the run total and reset to
// zero. A sealed value is a pure function of the decision sequence since the
// previous drain, and a drained cut never splits a sub-run, so an adopted
// epoch produces exactly the seal values the sequential loop produces over
// the same windows. The merge then replays the per-segment seal logs — a
// handful of float64s per drain, not a term per event — in segment order
// into one continuous fold, bit-identical to the sequential two-level fold.
// Integer counters and float min/max (first start, last end) are exact under
// any grouping and merge directly.
//
// This is also what makes the shard path allocation-lean: the PR-6 merge
// logged every nonzero utilization increment, finish term, and overhead area
// (O(events) float64s per epoch, ~40× the sequential footprint on the
// scaling benchmark); the seal log is O(drains), which the epoch planner
// already requires to be dense for sharding to pay at all.

// sealTerm is one drained instant's contribution to each order-sensitive
// accumulator: the sub-run totals folded at the seal.
type sealTerm struct {
	util   float64 // utilization integral (UsedSlotSec numerator)
	w      float64 // priority-weight sum
	wr, wc float64 // weighted response / completion sums
	ovh    float64 // overhead area (replica-seconds frozen by rescales)
	lost   float64 // forced-rescale share of ovh (WorkLostSec)
}

// runLog records a segment's seal sequence for the replay merge.
type runLog struct {
	seals []sealTerm
}

// seal folds the open sub-accumulators into the run totals and resets them —
// called at every drained instant, in the sequential and sharded modes
// alike, so both fold the same terms in the same grouping. With a recording
// log attached (sharded segments), the seal is also appended for the merge
// to replay.
func (s *Simulator) seal() {
	t := sealTerm{
		util: s.utilSub, w: s.finWSub, wr: s.finRespSub, wc: s.finCompSub,
		ovh: s.ovhSub, lost: s.lostSub,
	}
	s.utilArea += t.util
	s.wSum += t.w
	s.wResp += t.wr
	s.wComp += t.wc
	s.overheadArea += t.ovh
	s.workLost += t.lost
	s.utilSub, s.finWSub, s.finRespSub, s.finCompSub = 0, 0, 0, 0
	s.ovhSub, s.lostSub = 0, 0
	if s.rec != nil {
		s.rec.seals = append(s.rec.seals, t)
	}
}

// mergeSegments folds the reconciled segments — each a simulator that ran a
// half-open stretch of the timeline bounded by fully drained instants —
// into the facade simulator's accumulators and derives the Result. Segment
// order is epoch order, so the seal replay is the sequential fold.
func (s *Simulator) mergeSegments(w Workload, segs []*Simulator) (Result, error) {
	var cs core.CapacityStats
	for _, sg := range segs {
		for _, t := range sg.rec.seals {
			s.utilArea += t.util
			s.wSum += t.w
			s.wResp += t.wr
			s.wComp += t.wc
			s.overheadArea += t.ovh
			s.workLost += t.lost
		}
		s.completed += sg.completed
		if sg.haveStart && (!s.haveStart || sg.firstStart < s.firstStart) {
			s.haveStart = true
			s.firstStart = sg.firstStart
		}
		if sg.lastEnd > s.lastEnd {
			s.lastEnd = sg.lastEnd
		}
		s.capEvents += sg.capEvents
		s.capSteps = append(s.capSteps, sg.capSteps...)
		st := sg.sched.CapacityStats()
		cs.ForcedShrinks += st.ForcedShrinks
		cs.Requeues += st.Requeues
		cs.SlotsReclaimed += st.SlotsReclaimed
	}
	// Unsealed tails: every non-final segment ends at an adopted boundary
	// (drained, so freshly sealed — its open subs are exactly zero), and the
	// final segment's last completion drains the cluster too. The final
	// segment's subs are still carried over so the derivation below matches
	// the sequential run's final fold position even in degenerate cases.
	last := segs[len(segs)-1]
	s.utilSub, s.finWSub, s.finRespSub, s.finCompSub = last.utilSub, last.finWSub, last.finRespSub, last.finCompSub
	s.ovhSub, s.lostSub = last.ovhSub, last.lostSub
	if s.cfg.LogDecisions {
		logs := make([][]core.Decision, len(segs))
		for i, sg := range segs {
			logs[i] = sg.sched.Log()
		}
		s.mergedDecisions = core.MergeLogs(logs...)
	}
	if s.completed != len(w.Jobs) {
		for _, sg := range segs {
			for _, sj := range sg.byRef {
				if sj.job.State != core.StateCompleted {
					return Result{Policy: s.cfg.Policy},
						fmt.Errorf("sim: job %s ended in state %v", sj.job.ID, sj.job.State)
				}
			}
		}
		return Result{Policy: s.cfg.Policy},
			fmt.Errorf("sim: %d of %d jobs completed", s.completed, len(w.Jobs))
	}
	res := s.resultFromTotals(cs, last.sched.Capacity())
	if !s.cfg.Streaming {
		// Every job lives entirely inside one segment (segments are
		// bounded by drained instants), so the retained records merge by
		// concatenation in segment order.
		res.Jobs = make([]JobMetrics, len(w.Jobs))
		res.ReplicaTimelines = make(map[string][]ReplicaSample, len(w.Jobs))
		var tl []UtilSample
		for _, sg := range segs {
			tl = append(tl, sg.utilTL...)
			for _, sj := range sg.byRef {
				c := &sg.cold[sj.ref]
				res.Jobs[sj.widx] = c.meta
				res.ReplicaTimelines[c.meta.ID] = c.timeline
			}
		}
		res.UtilTimeline = tl
	}
	return res, nil
}
