package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// event kinds in the DES queue. Submissions are not events: they stream from
// a cursor over the workload, keeping the heap O(running jobs) deep.
type evKind int

const (
	evComplete evKind = iota
	evKick            // a rescale gap expired: re-run the scheduling pass
)

// evKey holds exactly the fields the heap comparator reads — time and push
// order — packed into a dense 16-byte record so sift operations stream keys
// through the cache instead of chasing per-event pointers.
type evKey struct {
	at  float64
	ord int64 // FIFO tie-break for equal timestamps
}

// before orders keys by time, then push order.
func (k evKey) before(o evKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.ord < o.ord
}

// evPayload is the non-comparison half of an event, swapped in lockstep
// with its key and only read when the event is popped.
type evPayload struct {
	job  *simJob
	seq  int64 // completion-event validity token
	kind evKind
}

// eventHeap is a hand-rolled struct-of-arrays binary min-heap: keys and
// payloads live in parallel backing arrays and events are plain values, so
// arming an event is an append (no per-event allocation, no recycling pool,
// nothing to alias) and the sift loops compare dense keys without pulling
// payload bytes into the cache. container/heap would cost an interface call
// per comparison on the simulator's hottest path.
type eventHeap struct {
	keys []evKey
	pays []evPayload
}

func (h *eventHeap) len() int       { return len(h.keys) }
func (h *eventHeap) topAt() float64 { return h.keys[0].at }

func (h *eventHeap) push(k evKey, p evPayload) {
	h.keys = append(h.keys, k)
	h.pays = append(h.pays, p)
	i := len(h.keys) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !h.keys[i].before(h.keys[par]) {
			break
		}
		h.keys[i], h.keys[par] = h.keys[par], h.keys[i]
		h.pays[i], h.pays[par] = h.pays[par], h.pays[i]
		i = par
	}
}

func (h *eventHeap) pop() (evKey, evPayload) {
	k, p := h.keys[0], h.pays[0]
	n := len(h.keys) - 1
	h.keys[0], h.pays[0] = h.keys[n], h.pays[n]
	h.pays[n] = evPayload{} // drop the job pointer: popped slots pin nothing
	h.keys, h.pays = h.keys[:n], h.pays[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.keys[r].before(h.keys[c]) {
			c = r
		}
		if !h.keys[c].before(h.keys[i]) {
			break
		}
		h.keys[i], h.keys[c] = h.keys[c], h.keys[i]
		h.pays[i], h.pays[c] = h.pays[c], h.pays[i]
		i = c
	}
	return k, p
}

// RunTasks executes n independent tasks on a bounded worker pool and returns
// the error of the lowest-indexed failing task (so the reported failure does
// not depend on goroutine scheduling). workers <= 0 means runtime.NumCPU();
// workers == 1 runs sequentially in the calling goroutine, which is the
// reference path parallel runs must match bit-for-bit.
//
// Tasks must be independent and deterministic in their index: each task
// derives everything it needs (RNG seed included) from i, never from shared
// mutable state, which is what makes the two paths equivalent.
func RunTasks(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
