package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// event kinds in the DES queue. Submissions are not events: they stream from
// a cursor over the workload, keeping the heap O(running jobs) deep.
type evKind int

const (
	evComplete evKind = iota
	evKick            // a rescale gap expired: re-run the scheduling pass
)

type event struct {
	at   float64
	kind evKind
	job  *simJob
	seq  int64 // completion-event validity token
	ord  int64 // FIFO tie-break for equal timestamps
}

// before orders events by time, then push order.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.ord < o.ord
}

// eventHeap is a hand-rolled binary min-heap of pooled events (container/heap
// costs an interface call per comparison on the simulator's hottest path).
type eventHeap []*event

func (h eventHeap) top() *event { return h[0] }

func (h *eventHeap) push(ev *event) {
	hh := append(*h, ev)
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hh[i].before(hh[p]) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
	*h = hh
}

func (h *eventHeap) pop() *event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = nil
	hh = hh[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hh[r].before(hh[c]) {
			c = r
		}
		if !hh[c].before(hh[i]) {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	*h = hh
	return top
}

// eventPool recycles popped events so the event loop's steady state
// allocates nothing per event. An event handed out by get must be returned
// through put exactly once, after it has been popped from the heap — never
// while the heap still references it (put clears the job pointer, so an
// aliased live event would corrupt the schedule). Each Simulator owns one
// pool; sharded runs give every shard its own, so no synchronization is
// needed.
type eventPool struct {
	free []*event
}

// get hands out a zeroed-or-recycled event; the caller overwrites every
// field before use.
func (p *eventPool) get() *event {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free = p.free[:n-1]
		return ev
	}
	return &event{}
}

// put returns a popped event to the pool, dropping its job reference so a
// pooled event can never pin (or be confused with) live schedule state.
func (p *eventPool) put(ev *event) {
	ev.job = nil
	p.free = append(p.free, ev)
}

// RunTasks executes n independent tasks on a bounded worker pool and returns
// the error of the lowest-indexed failing task (so the reported failure does
// not depend on goroutine scheduling). workers <= 0 means runtime.NumCPU();
// workers == 1 runs sequentially in the calling goroutine, which is the
// reference path parallel runs must match bit-for-bit.
//
// Tasks must be independent and deterministic in their index: each task
// derives everything it needs (RNG seed included) from i, never from shared
// mutable state, which is what makes the two paths equivalent.
func RunTasks(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
