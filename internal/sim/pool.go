package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunTasks executes n independent tasks on a bounded worker pool and returns
// the error of the lowest-indexed failing task (so the reported failure does
// not depend on goroutine scheduling). workers <= 0 means runtime.NumCPU();
// workers == 1 runs sequentially in the calling goroutine, which is the
// reference path parallel runs must match bit-for-bit.
//
// Tasks must be independent and deterministic in their index: each task
// derives everything it needs (RNG seed included) from i, never from shared
// mutable state, which is what makes the two paths equivalent.
func RunTasks(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
