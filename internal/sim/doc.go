// Package sim is the discrete-event scheduling simulator of paper §4.3.1:
// it replays a stream of malleable-job submissions against the four
// scheduling policies, modelling job runtimes with the strong-scaling model
// and charging the four-phase rescale overhead on every shrink/expand. It
// reports the paper's four metrics — total time, cluster utilization,
// weighted mean response time, and weighted mean completion time — plus the
// resilience aggregates (goodput, work lost, preemptions survived by
// shrinking vs. requeued) when the cluster's capacity varies over the run.
//
// # Event loop
//
// The hot path is allocation-free at steady state: events and job records
// are pooled, submissions stream from a sorted cursor instead of being
// pre-pushed into the event heap, and in streaming mode (Config.Streaming)
// per-job state is recycled at completion so a multi-million-job workload
// needs only O(running jobs) memory. Availability events stream from their
// own cursor over Config.Availability the same way. Job identities are
// interned to int32 slab indices (core.Job.Ref), equal-timestamp event
// batches share one scheduler kick re-arm, and the decision log is opt-in
// (Config.LogDecisions), so the default streaming path allocates nothing
// per job.
//
// # Determinism
//
// Every run is a pure function of (workload, availability trace, config):
// at equal timestamps, capacity events apply before submissions, which
// apply before completions and kicks; ties within each class keep trace,
// workload, and push order respectively. Streaming and retained runs
// accumulate their aggregates through the identical call sequence and agree
// bit-for-bit, as do sequential and parallel sweep executions.
package sim
