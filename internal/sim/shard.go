package sim

import (
	"errors"
	"math"
	"sort"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
)

// errEpochAbandoned is the early-exit sentinel an abandoned speculative
// epoch's runWindow returns. It is recorded in that epoch's error slot, which
// the reconciliation pass never reads for a discarded epoch, so it cannot
// surface from Run.
var errEpochAbandoned = errors.New("sim: speculative epoch abandoned")

// shardStats counts a sharded run's reconciliation outcomes: epochs planned,
// boundaries whose speculative epoch was adopted, and windows the live chain
// re-executed. Test and debugging visibility only — adopted+reexecuted ==
// epochs-1.
type shardStats struct {
	epochs, adopted, reexecuted int
}

// Sharded execution: the event loop is partitioned in TIME, not across jobs.
//
// The submission order and the availability trace are cut into K epochs at
// instants where the cluster is predicted to have fully drained (no running
// jobs, no queue, no pending kick). Every epoch is then simulated
// speculatively on its own goroutine under the guess that the prediction
// holds — i.e. that the epoch starts from an empty cluster at the capacity
// the trace has established by then. A sequential reconciliation pass walks
// the epochs in order and checks each guess against the truth established so
// far: if the live chain really is drained at the boundary, the speculative
// epoch IS the sequential continuation (a deterministic event loop from
// identical state over identical inputs) and is adopted wholesale; if the
// backlog crossed the boundary, the speculative epoch is discarded and the
// live chain's window is extended to re-execute it sequentially. The worst
// case (no boundary ever drains) degrades to exactly the sequential run —
// never to a wrong one.
//
// Why adoption is exact: a drained scheduler holds no jobs, its free-slot
// count equals its capacity, its queue floor (minNeed) is at the +inf
// sentinel, and its pending-kick clock is unarmed — all of which a freshly
// constructed scheduler at the same capacity reproduces identically. The
// only cross-boundary state is therefore the capacity in force, which the
// planner hands each epoch via core.SchedulerState, and the accumulated
// metrics, which merge exactly: integer counters and float min/max are
// order-insensitive, and every order-sensitive float accumulator is merged
// by replaying the per-window seal logs (see merge.go), not by adding
// partial sums. The scheduler's wall-clock caches cannot diverge either:
// each epoch's scheduler clock is anchored to the same global epoch, and
// time-dependent decisions (aging, gap checks) only consult jobs the epoch
// itself submitted.
//
// The drain predictor is a fluid approximation — backlog accumulates each
// submission's total compute demand and drains at the base capacity's rate —
// and is allowed to be wrong in either direction: a missed drain only costs
// parallelism, a falsely predicted drain is caught by the reconciliation
// pass. Its only job is to place cuts where adoption is likely. Cuts are
// chosen to equalize the predictor's *work* integral per epoch, not job
// counts: a workload whose heavy jobs cluster at one end still yields epochs
// of comparable simulation cost, so no shard sits idle behind one giant
// window.
//
// Reconciliation is pipelined (chained speculation): epoch 0 runs on the
// caller's goroutine while every later epoch speculates concurrently, and
// the boundary walk consumes each epoch the moment the live chain reaches
// it — adopting it (after waiting for just that epoch's goroutine) when the
// boundary really drained, or discarding it and re-executing its window on
// the live chain while the epochs further right keep speculating. A dirty
// boundary therefore costs only its own window's re-execution overlapped
// with downstream speculation, and the sequential tail is bounded to the
// truly-divergent suffix; discarded epochs are flagged to abandon their
// speculative runs early instead of simulating to the horizon.

// epochPlan is one epoch's share of the inputs.
type epochPlan struct {
	subLo, subHi int     // submission-order window [subLo, subHi)
	capLo, capHi int     // availability-event window [capLo, capHi)
	start        float64 // first submission instant; -Inf for epoch 0
	startCap     int     // capacity the trace has established entering the epoch
}

// planHorizon is the event horizon for epoch k: the next epoch's start, or
// +Inf for the last.
func planHorizon(plans []epochPlan, k int) float64 {
	if k+1 < len(plans) {
		return plans[k+1].start
	}
	return math.Inf(1)
}

// planEpochs cuts the workload into at most cfg.Shards epochs at predicted
// drain instants, spreading the cuts toward equal submission counts. One
// plan covering everything is returned when the workload offers no usable
// cut (the caller then runs the plain sequential loop).
func planEpochs(cfg Config, w Workload, order []int32) []epochPlan {
	n := len(order)
	avail := cfg.Availability.Events
	whole := []epochPlan{{
		subLo: 0, subHi: n,
		capLo: 0, capHi: len(avail),
		start: math.Inf(-1), startCap: cfg.Capacity,
	}}
	if cfg.Shards <= 1 || n < 2 {
		return whole
	}

	// Fluid drain estimate: each submission batch adds its jobs' total
	// compute demand (steps × iteration time × replicas, at the replica
	// count the policy favors) to a backlog that drains at the base
	// capacity's rate. A cut is a candidate wherever the backlog hits zero
	// before the next distinct submission instant; each candidate records
	// the cumulative demand submitted before it, the work integral the cut
	// chooser balances on.
	specs := model.Specs()
	capRate := float64(cfg.Capacity)
	var cuts []int        // candidate epoch-start positions in order, ascending
	var cutWork []float64 // predicted work submitted before each candidate (non-decreasing)
	backlog := 0.0
	work := 0.0
	tPrev := w.Jobs[order[0]].SubmitAt
	for i := 0; i < n; {
		t := w.Jobs[order[i]].SubmitAt
		if i > 0 {
			backlog -= capRate * (t - tPrev)
			if backlog <= 0 {
				backlog = 0
				cuts = append(cuts, i)
				cutWork = append(cutWork, work)
			}
		}
		for i < n && w.Jobs[order[i]].SubmitAt == t {
			spec := specs[w.Jobs[order[i]].Class]
			r := spec.MaxReplicas
			if cfg.Policy == core.RigidMin {
				r = spec.MinReplicas
			}
			if r > cfg.Capacity {
				r = cfg.Capacity
			}
			if r < 1 {
				r = 1
			}
			d := float64(spec.Steps) * cfg.Machine.IterTime(spec.Grid, r) * float64(r)
			backlog += d
			work += d
			i++
		}
		tPrev = t
	}
	if len(cuts) == 0 || work <= 0 {
		return whole
	}

	// Pick, for each equal-work target k·W/K, the candidate whose cumulative
	// predicted work is nearest, keeping picks strictly increasing so every
	// epoch stays non-empty. Balancing the predictor's work integral rather
	// than submission counts is what keeps skewed workloads — heavy jobs
	// clustered at the head or tail, swarms of cheap ones elsewhere — from
	// producing one epoch that dwarfs the rest: epoch wall-time tracks the
	// events simulated, which tracks demand, not the job count.
	chosen := make([]int, 0, cfg.Shards-1)
	prev := 0
	for k := 1; k < cfg.Shards; k++ {
		target := work * float64(k) / float64(cfg.Shards)
		pos := sort.SearchFloat64s(cutWork, target)
		best := -1
		if pos < len(cuts) && cuts[pos] > prev {
			best = pos
		}
		if pos > 0 && cuts[pos-1] > prev {
			if best < 0 || target-cutWork[pos-1] <= cutWork[best]-target {
				best = pos - 1
			}
		}
		if best < 0 {
			continue
		}
		chosen = append(chosen, cuts[best])
		prev = cuts[best]
	}
	if len(chosen) == 0 {
		return whole
	}

	bounds := append([]int{0}, chosen...)
	plans := make([]epochPlan, len(bounds))
	for k, lo := range bounds {
		hi := n
		if k+1 < len(bounds) {
			hi = bounds[k+1]
		}
		start := math.Inf(-1)
		if lo > 0 {
			start = w.Jobs[order[lo]].SubmitAt
		}
		plans[k] = epochPlan{subLo: lo, subHi: hi, start: start}
	}
	// Availability partition: epoch k owns the events with At in
	// [start_k, start_{k+1}) — an event landing exactly on a boundary
	// belongs to the successor, where it applies before the first
	// submission, just as the sequential equal-timestamp rule orders it.
	ci := 0
	for k := range plans {
		plans[k].capLo = ci
		end := planHorizon(plans, k)
		for ci < len(avail) && avail[ci].At < end {
			ci++
		}
		plans[k].capHi = ci
		if plans[k].capLo == 0 {
			plans[k].startCap = cfg.Capacity
		} else {
			plans[k].startCap = avail[plans[k].capLo-1].Capacity
		}
	}
	return plans
}

// boundaryIdle reports whether the simulator's state at its window horizon
// matches the successor epoch's speculative starting guess: cluster fully
// drained and no kick pending. (The window cursors are always exhausted
// when a non-final runWindow returns; superseded kick events still parked
// in the heap carry no state.) A stale kick armed past the horizon keeps
// the boundary conservative — the successor is then re-executed, which
// resolves the kick exactly as the sequential loop would.
func (s *Simulator) boundaryIdle() bool {
	return s.sched.NumRunning() == 0 && s.sched.NumQueued() == 0 && s.kickAt < 0
}

// runSharded executes Run's sharded mode: plan, speculate in parallel,
// reconcile sequentially, merge exactly. See the package comment above for
// why the result is bit-identical to the sequential loop.
func (s *Simulator) runSharded(w Workload) (Result, error) {
	order := submissionOrder(w)
	ranks := submissionRanks(w, order)
	specs := model.Specs()
	plans := s.testPlans
	if plans == nil {
		plans = planEpochs(s.cfg, w, order)
	}
	if len(plans) == 1 {
		// No usable cut: run the plain sequential loop in place.
		s.prepare(w, order, ranks, specs,
			0, len(w.Jobs), 0, len(s.cfg.Availability.Events), math.Inf(1), true)
		if err := s.runWindow(); err != nil {
			return Result{}, err
		}
		return s.collect(w)
	}

	sims := make([]*Simulator, len(plans))
	for k, pl := range plans {
		cfg := s.cfg
		cfg.Shards = 0
		sub, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		if pl.startCap != cfg.Capacity {
			// Seed the epoch's scheduler with the capacity the trace has
			// established at the boundary — the one piece of cross-epoch
			// scheduler state. No decisions are logged by the restore.
			if err := sub.sched.RestoreState(core.SchedulerState{Capacity: pl.startCap}); err != nil {
				return Result{}, err
			}
		}
		sub.rec = &runLog{}
		sub.prepare(w, order, ranks, specs,
			pl.subLo, pl.subHi, pl.capLo, pl.capHi,
			planHorizon(plans, k), k == len(plans)-1)
		sims[k] = sub
	}

	// Speculate and reconcile as a pipeline (chained speculation). Epochs
	// 1..K-1 speculate on their own goroutines; epoch 0 — the live chain's
	// exact prefix — runs right here, overlapping the speculation. The
	// boundary walk then consumes each epoch the moment the live chain
	// reaches it: adoption waits for that epoch's goroutine alone, and a
	// dirty boundary re-executes its window on the live chain while every
	// epoch further right keeps speculating. Errors are held per epoch — a
	// speculative failure only matters if the walk adopts that epoch.
	errs := make([]error, len(sims))
	done := make([]chan struct{}, len(sims))
	for k := 1; k < len(sims); k++ {
		done[k] = make(chan struct{})
		go func(k int) {
			defer close(done[k])
			errs[k] = sims[k].runWindow()
		}(k)
	}
	errs[0] = sims[0].runWindow()

	live, liveErr := sims[0], errs[0]
	segs := make([]*Simulator, 0, len(sims))
	s.stats = shardStats{epochs: len(sims)}
	next := 1
	for ; next < len(sims) && liveErr == nil; next++ {
		if live.boundaryIdle() {
			<-done[next]
			segs = append(segs, live)
			live, liveErr = sims[next], errs[next]
			s.stats.adopted++
			continue
		}
		// The backlog crossed the boundary: the speculative epoch is dead
		// weight. Flag it to bail out of its run early, then re-execute its
		// window sequentially on the live chain.
		sims[next].abandoned.Store(true)
		live.extend(plans[next].subHi, plans[next].capHi,
			planHorizon(plans, next), next == len(plans)-1)
		liveErr = live.runWindow()
		s.stats.reexecuted++
	}
	// Reap every speculative goroutine before reading any segment state (an
	// early liveErr exit flags the unvisited epochs first so they return
	// promptly).
	for k := next; k < len(sims); k++ {
		sims[k].abandoned.Store(true)
	}
	for k := 1; k < len(sims); k++ {
		<-done[k]
	}
	if liveErr != nil {
		return Result{}, liveErr
	}
	segs = append(segs, live)
	return s.mergeSegments(w, segs)
}
