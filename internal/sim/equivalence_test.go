package sim

import (
	"fmt"
	"reflect"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/workload"
)

// equivalenceScenarios are the workload shapes the incremental-scheduler
// equivalence sweep covers: steady arrivals, deep same-instant backlogs
// (the regime the early-outs target), and a time-varying cluster.
func equivalenceScenarios(t *testing.T, seed int64) map[string]struct {
	w  Workload
	tr workload.AvailabilityTrace
} {
	t.Helper()
	uniform, err := workload.Uniform{Jobs: 60, Gap: 45}.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := workload.Burst{Waves: 3, PerWave: 40, WaveGap: 4000}.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	avail, err := workload.Burst{Waves: 3, PerWave: 30, WaveGap: 5000}.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	span := avail.Span() + 3600
	tr, err := workload.MaintenanceDrain{Every: span / 6, Duration: span / 12, Keep: 40}.Events(seed, 64, span)
	if err != nil {
		t.Fatal(err)
	}
	// Restore full capacity at the horizon so the rigid baselines stay
	// feasible: a trace that ends mid-drain strands any job whose pinned
	// replica count exceeds the drained capacity.
	tr = tr.WithRestore(64, span)
	return map[string]struct {
		w  Workload
		tr workload.AvailabilityTrace
	}{
		"uniform":      {w: uniform},
		"burst":        {w: burst},
		"availability": {w: avail, tr: tr},
	}
}

// TestIncrementalSchedulerEquivalence is the seed-sweep equivalence proof
// the incremental scheduling core is held to: for every policy × workload
// shape × seed, a run with the incremental early-outs produces the same
// decision sequence (Config.LogDecisions) and bit-identical Result — every
// aggregate, per-job metric, and timeline — as the reference
// full-redistribute scheduler (Config.FullRedistribute).
func TestIncrementalSchedulerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for name, sc := range equivalenceScenarios(t, seed) {
			for _, p := range core.AllPolicies() {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, p, seed), func(t *testing.T) {
					run := func(full, logDecisions bool) (Result, []core.Decision) {
						cfg := DefaultConfig(p)
						cfg.Availability = sc.tr
						cfg.FullRedistribute = full
						cfg.LogDecisions = logDecisions
						s, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						res, err := s.Run(sc.w)
						if err != nil {
							t.Fatal(err)
						}
						return res, s.Decisions()
					}

					// Decision-sequence equivalence, audit logging on.
					// (EnableLog disables the Reschedule drain shortcut in
					// both modes, so this isolates the redistribute
					// early-outs.)
					_, incDec := run(false, true)
					_, refDec := run(true, true)
					if !reflect.DeepEqual(incDec, refDec) {
						t.Fatalf("decision sequences diverge: incremental %d entries, reference %d",
							len(incDec), len(refDec))
					}

					// Full-result equivalence on the default (non-logging)
					// path, which exercises every shortcut: per-job
					// metrics, timelines, and aggregates must match
					// bit-for-bit.
					incRes, _ := run(false, false)
					refRes, _ := run(true, false)
					if !reflect.DeepEqual(incRes, refRes) {
						t.Fatalf("results diverge:\nincremental: %+v\nreference:   %+v", incRes, refRes)
					}
				})
			}
		}
	}
}

// TestIncrementalSchedulerEquivalenceExtensions repeats the equivalence
// check with the §3.2.2 extensions on — aging drifts queue priorities with
// time and preemption requeues running jobs, the two configurations where
// the incremental scheduler must decline to cache (clean passes are never
// recorded with aging or a cost/benefit gate, and kick coalescing turns
// itself off).
func TestIncrementalSchedulerEquivalenceExtensions(t *testing.T) {
	w, err := workload.Burst{Waves: 2, PerWave: 30, WaveGap: 3000}.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Policy{core.Elastic, core.RigidMin} {
		t.Run(p.String(), func(t *testing.T) {
			run := func(full bool) Result {
				cfg := DefaultConfig(p)
				cfg.AgingRate = 0.01
				cfg.EnablePreemption = true
				cfg.FullRedistribute = full
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			inc, ref := run(false), run(true)
			if !reflect.DeepEqual(inc, ref) {
				t.Fatalf("results diverge with aging+preemption:\nincremental: %+v\nreference:   %+v", inc, ref)
			}
		})
	}
}

// TestParallelShardingEquivalence pins the sharded execution mode's
// contract: for every policy × workload shape × seed × shard count, the
// sharded run produces the same decision sequence and a bit-identical
// Result — every aggregate, per-job metric, and timeline — as the
// sequential loop. Scenarios that offer no usable drain cut degrade to the
// sequential path inside runSharded and must still match exactly.
func TestParallelShardingEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for name, sc := range equivalenceScenarios(t, seed) {
			for _, p := range core.AllPolicies() {
				for _, shards := range []int{3, 8} {
					t.Run(fmt.Sprintf("%s/%s/seed%d/shards%d", name, p, seed, shards), func(t *testing.T) {
						run := func(shards int, logDecisions bool) (Result, []core.Decision) {
							cfg := DefaultConfig(p)
							cfg.Availability = sc.tr
							cfg.Shards = shards
							cfg.LogDecisions = logDecisions
							s, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							res, err := s.Run(sc.w)
							if err != nil {
								t.Fatal(err)
							}
							return res, s.Decisions()
						}

						_, seqDec := run(0, true)
						_, parDec := run(shards, true)
						if !reflect.DeepEqual(seqDec, parDec) {
							t.Fatalf("decision sequences diverge: sequential %d entries, sharded %d",
								len(seqDec), len(parDec))
						}

						seqRes, _ := run(0, false)
						parRes, _ := run(shards, false)
						if !reflect.DeepEqual(seqRes, parRes) {
							t.Fatalf("results diverge:\nsequential: %+v\nsharded:    %+v", seqRes, parRes)
						}
					})
				}
			}
		}
	}
}

// TestParallelShardingEquivalenceStreaming repeats the sharded contract in
// streaming mode on a workload large and bursty enough that the planner
// produces a real multi-epoch plan and the boundaries genuinely drain —
// the configuration the scale benchmarks run.
func TestParallelShardingEquivalenceStreaming(t *testing.T) {
	w, err := workload.Burst{Waves: 12, PerWave: 100, WaveGap: 20000}.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	if plans := planEpochs(func() Config {
		cfg := DefaultConfig(core.Elastic)
		cfg.Shards = 8
		return cfg
	}(), w, submissionOrder(w)); len(plans) < 2 {
		t.Fatalf("workload produced no multi-epoch plan (%d epochs) — scenario lost its point", len(plans))
	}
	for _, p := range core.AllPolicies() {
		t.Run(p.String(), func(t *testing.T) {
			run := func(shards int) Result {
				cfg := DefaultConfig(p)
				cfg.Streaming = true
				cfg.Shards = shards
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq, par := run(0), run(8)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("streaming results diverge:\nsequential: %+v\nsharded:    %+v", seq, par)
			}
		})
	}
}

// TestParallelShardingEquivalenceExtensions repeats the sharded contract
// with aging and preemption on — the configuration where kick coalescing
// turns itself off and every scheduler pass depends on wall-clock priority
// drift, so any cross-epoch clock skew would surface immediately.
func TestParallelShardingEquivalenceExtensions(t *testing.T) {
	w, err := workload.Burst{Waves: 4, PerWave: 30, WaveGap: 3000}.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Policy{core.Elastic, core.RigidMin} {
		t.Run(p.String(), func(t *testing.T) {
			run := func(shards int) Result {
				cfg := DefaultConfig(p)
				cfg.AgingRate = 0.01
				cfg.EnablePreemption = true
				cfg.Shards = shards
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq, par := run(0), run(4)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("results diverge with aging+preemption:\nsequential: %+v\nsharded:    %+v", seq, par)
			}
		})
	}
}
