package sim

import (
	"math"
	"reflect"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// TestSteppedRunMatchesBatch pins the stepping API against the batch loop: a
// Begin/StepTo…/Finish run with no coordinator mutations must process the
// identical event sequence — same per-job metrics, timelines, window, and
// weighted means. Only the utilization integral is compared with a tolerance:
// stepping splits it at round boundaries, so its value matches up to float
// association, not bit-for-bit.
func TestSteppedRunMatchesBatch(t *testing.T) {
	w, err := (workload.Burst{Waves: 4, PerWave: 24, WaveGap: 5000}).Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 2000, Capacity: 24},
		{At: 9000, Capacity: 64},
	}}
	for _, p := range core.AllPolicies() {
		cfg := DefaultConfig(p)
		cfg.Availability = tr
		batch, err := Run(cfg, w)
		if err != nil {
			t.Fatalf("%v batch: %v", p, err)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Begin(w); err != nil {
			t.Fatal(err)
		}
		for tick := 500.0; !s.Drained(); tick += 500 {
			if err := s.StepTo(tick); err != nil {
				t.Fatalf("%v StepTo(%g): %v", p, tick, err)
			}
			if s.Clock() != tick {
				t.Fatalf("%v: clock %g after StepTo(%g)", p, s.Clock(), tick)
			}
		}
		stepped, err := s.Finish()
		if err != nil {
			t.Fatalf("%v finish: %v", p, err)
		}
		if !reflect.DeepEqual(stepped.Jobs, batch.Jobs) {
			t.Errorf("%v: per-job metrics diverged", p)
		}
		if !reflect.DeepEqual(stepped.ReplicaTimelines, batch.ReplicaTimelines) {
			t.Errorf("%v: replica timelines diverged", p)
		}
		if !reflect.DeepEqual(stepped.UtilTimeline, batch.UtilTimeline) {
			t.Errorf("%v: utilization timeline diverged", p)
		}
		if stepped.TotalTime != batch.TotalTime ||
			stepped.FirstStart != batch.FirstStart || stepped.LastEnd != batch.LastEnd {
			t.Errorf("%v: window diverged: [%g,%g] vs [%g,%g]", p,
				stepped.FirstStart, stepped.LastEnd, batch.FirstStart, batch.LastEnd)
		}
		if stepped.WeightedResponse != batch.WeightedResponse ||
			stepped.WeightedCompletion != batch.WeightedCompletion ||
			stepped.WeightSum != batch.WeightSum {
			t.Errorf("%v: weighted means diverged", p)
		}
		if stepped.CapacityEvents != batch.CapacityEvents ||
			stepped.ForcedShrinks != batch.ForcedShrinks ||
			stepped.Requeues != batch.Requeues {
			t.Errorf("%v: resilience counters diverged: %d/%d/%d vs %d/%d/%d", p,
				stepped.CapacityEvents, stepped.ForcedShrinks, stepped.Requeues,
				batch.CapacityEvents, batch.ForcedShrinks, batch.Requeues)
		}
		if math.Abs(stepped.Utilization-batch.Utilization) > 1e-9 {
			t.Errorf("%v: utilization %g vs batch %g", p, stepped.Utilization, batch.Utilization)
		}
	}
}

// TestWithdrawInjectRoundTrip moves a queued job between two steppers and
// checks nothing is lost: both runs complete, the moved job finishes on the
// receiver with its original submission time, and a checkpointed victim pays
// its restart on the receiver.
func TestWithdrawInjectRoundTrip(t *testing.T) {
	mk := func(jobs ...workload.JobSpec) Workload { return Workload{Jobs: jobs} }
	donorW := mk(
		workload.JobSpec{ID: "big", Class: model.XLarge, Priority: 5, SubmitAt: 0},
		workload.JobSpec{ID: "waiting", Class: model.XLarge, Priority: 1, SubmitAt: 1},
	)
	recvW := mk(workload.JobSpec{ID: "local", Class: model.Small, Priority: 3, SubmitAt: 0})

	cfg := DefaultConfig(core.Elastic)
	donor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Begin(donorW); err != nil {
		t.Fatal(err)
	}
	if err := recv.Begin(recvW); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Simulator{donor, recv} {
		if err := s.StepTo(100); err != nil {
			t.Fatal(err)
		}
	}
	queued := donor.QueuedJobs()
	if len(queued) != 1 || queued[0].ID != "waiting" {
		t.Fatalf("donor queue: %+v", queued)
	}
	if queued[0].Checkpointed {
		t.Error("never-started job reported a checkpoint")
	}
	mj, err := donor.Withdraw(queued[0].Ref)
	if err != nil {
		t.Fatal(err)
	}
	if mj.Spec.ID != "waiting" || mj.Spec.SubmitAt != 1 || mj.Checkpointed {
		t.Fatalf("migration record: %+v", mj)
	}
	if err := recv.Inject(mj); err != nil {
		t.Fatal(err)
	}
	dRes, err := donor.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := recv.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(dRes.Jobs) != 1 || dRes.Jobs[0].ID != "big" {
		t.Fatalf("donor finished %+v", dRes.Jobs)
	}
	if len(rRes.Jobs) != 2 {
		t.Fatalf("receiver finished %d jobs", len(rRes.Jobs))
	}
	var moved *JobMetrics
	for i := range rRes.Jobs {
		if rRes.Jobs[i].ID == "waiting" {
			moved = &rRes.Jobs[i]
		}
	}
	if moved == nil {
		t.Fatal("moved job missing from receiver result")
	}
	if moved.SubmitAt != 1 {
		t.Errorf("moved job's submission time rewritten to %g", moved.SubmitAt)
	}
	if moved.StartAt < 100 {
		t.Errorf("moved job started at %g, before its injection instant", moved.StartAt)
	}
}

// TestWithdrawRejectsUnknownRef pins the error surface.
func TestWithdrawRejectsUnknownRef(t *testing.T) {
	s, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(Workload{Jobs: []workload.JobSpec{
		{ID: "a", Class: model.Small, Priority: 3, SubmitAt: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Withdraw(99); err == nil {
		t.Error("withdrew an out-of-range ref")
	}
}
