package sim

import (
	"fmt"

	"elastichpc/internal/core"
	"elastichpc/internal/workload"
)

// AverageResult is the mean of a metric set over repeated seeds. The
// resilience means (CapacityEvents through GoodputFrac) are zero for sweeps
// that run on a fixed-capacity cluster, except GoodputFrac which is always
// meaningful (policy rescales charge overhead too). Imbalance is the mean
// member-utilization spread of federated runs; single-cluster sweeps leave
// it zero.
type AverageResult struct {
	Policy             core.Policy
	TotalTime          float64
	Utilization        float64
	WeightedResponse   float64
	WeightedCompletion float64
	CapacityEvents     float64
	ForcedShrinks      float64
	Requeues           float64
	WorkLostSec        float64
	GoodputFrac        float64
	Imbalance          float64
	Runs               int
}

// Accumulate folds one run's aggregate metrics into the running sums; pair
// with Finalize once every run is folded. Imbalance has no sim.Result source
// — the federation sweep sums it directly before calling Finalize.
func (a *AverageResult) Accumulate(r Result) {
	a.TotalTime += r.TotalTime
	a.Utilization += r.Utilization
	a.WeightedResponse += r.WeightedResponse
	a.WeightedCompletion += r.WeightedCompletion
	a.CapacityEvents += float64(r.CapacityEvents)
	a.ForcedShrinks += float64(r.ForcedShrinks)
	a.Requeues += float64(r.Requeues)
	a.WorkLostSec += r.WorkLostSec
	a.GoodputFrac += r.GoodputFrac
	a.Runs++
}

// Finalize turns the accumulated sums into means over Runs (no-op on an
// empty accumulator).
func (a *AverageResult) Finalize() {
	if a.Runs == 0 {
		return
	}
	n := float64(a.Runs)
	a.TotalTime /= n
	a.Utilization /= n
	a.WeightedResponse /= n
	a.WeightedCompletion /= n
	a.CapacityEvents /= n
	a.ForcedShrinks /= n
	a.Requeues /= n
	a.WorkLostSec /= n
	a.GoodputFrac /= n
	a.Imbalance /= n
}

// SweepPoint is one x-coordinate of a Figure 7/8 sweep with per-policy
// averaged metrics.
type SweepPoint struct {
	X        float64 // submission gap or rescale gap, seconds
	ByPolicy map[core.Policy]AverageResult
}

// ScenarioResult is one workload scenario's per-policy averaged metrics — the
// ScenarioSweep analogue of a SweepPoint.
type ScenarioResult struct {
	Name     string
	ByPolicy map[core.Policy]AverageResult
}

// sweepGrid runs every (x, policy, seed) cell of a sweep on the worker pool
// and reduces to per-point averages. Each cell is independent and derives its
// workload from its own seed, so the parallel schedule cannot change any
// result; the reduction always iterates cells in (point, policy, seed) order,
// so the float accumulation order — and therefore every output bit — matches
// the workers == 1 sequential path.
func sweepGrid(xs []float64, seeds, workers int, run func(x float64, p core.Policy, seed int64) (Result, error)) ([]SweepPoint, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("sim: sweep needs seeds >= 1, got %d", seeds)
	}
	policies := core.AllPolicies()
	perPoint := len(policies) * seeds
	cells := make([]Result, len(xs)*perPoint)
	err := RunTasks(len(cells), workers, func(i int) error {
		x := xs[i/perPoint]
		p := policies[(i%perPoint)/seeds]
		seed := int64(i % seeds)
		res, err := run(x, p, seed)
		if err != nil {
			return fmt.Errorf("x=%g policy %v seed %d: %w", x, p, seed, err)
		}
		cells[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	points := make([]SweepPoint, 0, len(xs))
	for pi, x := range xs {
		pt := SweepPoint{X: x, ByPolicy: make(map[core.Policy]AverageResult, len(policies))}
		for poli, p := range policies {
			avg := AverageResult{Policy: p}
			for seed := 0; seed < seeds; seed++ {
				avg.Accumulate(cells[pi*perPoint+poli*seeds+seed])
			}
			avg.Finalize()
			pt.ByPolicy[p] = avg
		}
		points = append(points, pt)
	}
	return points, nil
}

// SubmissionGapSweep reproduces Figure 7: for each submission gap, run
// `seeds` random 16-job workloads under every policy with T_rescale_gap =
// 180 s and average the metrics. Runs on all CPUs; see
// SubmissionGapSweepWorkers to pin the worker count.
func SubmissionGapSweep(gaps []float64, jobs, seeds int, rescaleGap float64) ([]SweepPoint, error) {
	return SubmissionGapSweepWorkers(gaps, jobs, seeds, rescaleGap, 0)
}

// SubmissionGapSweepWorkers is SubmissionGapSweep on a bounded worker pool:
// workers <= 0 uses every CPU, workers == 1 is the sequential reference path
// (bit-identical results either way).
func SubmissionGapSweepWorkers(gaps []float64, jobs, seeds int, rescaleGap float64, workers int) ([]SweepPoint, error) {
	pts, err := sweepGrid(gaps, seeds, workers, func(gap float64, p core.Policy, seed int64) (Result, error) {
		return RunPolicy(p, RandomWorkload(jobs, gap, seed), rescaleGap)
	})
	if err != nil {
		return nil, fmt.Errorf("submission gap sweep: %w", err)
	}
	return pts, nil
}

// RescaleGapSweep reproduces Figure 8: fixed 180 s submission gap, varying
// T_rescale_gap.
func RescaleGapSweep(rescaleGaps []float64, jobs, seeds int, submissionGap float64) ([]SweepPoint, error) {
	return RescaleGapSweepWorkers(rescaleGaps, jobs, seeds, submissionGap, 0)
}

// RescaleGapSweepWorkers is RescaleGapSweep with an explicit worker count.
func RescaleGapSweepWorkers(rescaleGaps []float64, jobs, seeds int, submissionGap float64, workers int) ([]SweepPoint, error) {
	pts, err := sweepGrid(rescaleGaps, seeds, workers, func(rg float64, p core.Policy, seed int64) (Result, error) {
		return RunPolicy(p, RandomWorkload(jobs, submissionGap, seed), rg)
	})
	if err != nil {
		return nil, fmt.Errorf("rescale gap sweep: %w", err)
	}
	return pts, nil
}

// ScenarioSweep runs every workload scenario under every policy across
// `seeds` seeds on the worker pool and averages the four metrics per
// (scenario, policy) — the scenario-diversity analogue of the Figure 7/8
// sweeps. Results are ordered like gens.
func ScenarioSweep(gens []workload.Generator, seeds int, rescaleGap float64, workers int) ([]ScenarioResult, error) {
	// Trace generators re-read their file on every Generate; load each once
	// up front so a policies×seeds sweep does one parse, and every cell of
	// one averaged result sees the same workload even if the file changes
	// mid-sweep.
	gens = append([]workload.Generator(nil), gens...)
	for i, g := range gens {
		if tr, ok := g.(workload.Trace); ok {
			w, err := tr.Generate(0)
			if err != nil {
				return nil, fmt.Errorf("scenario sweep: %w", err)
			}
			gens[i] = workload.Replay(tr.Name(), w)
		}
	}
	xs := make([]float64, len(gens))
	for i := range xs {
		xs[i] = float64(i)
	}
	pts, err := sweepGrid(xs, seeds, workers, func(x float64, p core.Policy, seed int64) (Result, error) {
		w, err := gens[int(x)].Generate(seed)
		if err != nil {
			return Result{}, err
		}
		return RunPolicy(p, w, rescaleGap)
	})
	if err != nil {
		return nil, fmt.Errorf("scenario sweep: %w", err)
	}
	out := make([]ScenarioResult, len(gens))
	for i, g := range gens {
		out[i] = ScenarioResult{Name: g.Name(), ByPolicy: pts[i].ByPolicy}
	}
	return out, nil
}

// AvailabilitySweep runs one workload scenario under every availability
// profile × policy × seed on the worker pool and averages the metrics per
// (profile, policy) — the third sweep axis next to the Figure 7/8 parameter
// sweeps and the workload-scenario sweep. Each cell generates its workload
// and capacity trace from its own seed, keeps the paper's base capacity,
// and appends a restore-to-base event past the trace horizon so every
// finite workload can complete even if a profile ends mid-outage. Results
// are ordered like profiles.
func AvailabilitySweep(profiles []workload.AvailabilityProfile, gen workload.Generator, seeds int, rescaleGap float64, workers int) ([]ScenarioResult, error) {
	// Trace-file profiles re-read their file on every Events call; load
	// once up front, like ScenarioSweep does for workload traces.
	profiles = append([]workload.AvailabilityProfile(nil), profiles...)
	for i, p := range profiles {
		if tf, ok := p.(workload.AvailabilityTraceFile); ok {
			tr, err := tf.Events(0, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("availability sweep: %w", err)
			}
			profiles[i] = workload.ReplayAvailability(tf.Name(), tr)
		}
	}
	xs := make([]float64, len(profiles))
	for i := range xs {
		xs[i] = float64(i)
	}
	pts, err := sweepGrid(xs, seeds, workers, func(x float64, p core.Policy, seed int64) (Result, error) {
		w, err := gen.Generate(seed)
		if err != nil {
			return Result{}, err
		}
		cfg := DefaultConfig(p)
		cfg.RescaleGap = rescaleGap
		horizon := AvailabilityHorizon(w)
		tr, err := profiles[int(x)].Events(seed, cfg.Capacity, horizon)
		if err != nil {
			return Result{}, err
		}
		cfg.Availability = tr.WithRestore(cfg.Capacity, horizon)
		s, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		return s.Run(w)
	})
	if err != nil {
		return nil, fmt.Errorf("availability sweep: %w", err)
	}
	out := make([]ScenarioResult, len(profiles))
	for i, p := range profiles {
		out[i] = ScenarioResult{Name: p.Name(), ByPolicy: pts[i].ByPolicy}
	}
	return out, nil
}

// AvailabilityHorizon is the capacity-trace length used when a profile is
// generated for a specific workload: the submission span plus generous
// drain time, so availability events keep arriving while the backlog runs
// down. It is a deterministic function of the workload, which keeps sweep
// cells reproducible.
func AvailabilityHorizon(w Workload) float64 {
	return w.Span() + 4*3600
}

// Table1Workload is the fixed configuration of §4.3.2: 16 random jobs
// (seed-pinned so the "actual" and "simulation" harnesses share one job
// set), 90 s submission gap. The paper likewise "picks a configuration out
// of the randomly generated jobs"; this seed is one whose metrics order the
// four policies exactly as the paper's Table 1 does.
func Table1Workload() Workload { return RandomWorkload(16, 90, 7) }

// Table1Simulation runs the Table 1 simulation column: the fixed workload
// under all four policies with T_rescale_gap = 180 s.
func Table1Simulation() (map[core.Policy]Result, error) {
	w := Table1Workload()
	out := make(map[core.Policy]Result, 4)
	for _, p := range core.AllPolicies() {
		res, err := RunPolicy(p, w, 180)
		if err != nil {
			return nil, fmt.Errorf("policy %v: %w", p, err)
		}
		out[p] = res
	}
	return out, nil
}
