package sim

import (
	"fmt"

	"elastichpc/internal/core"
)

// AverageResult is the mean of a metric set over repeated seeds.
type AverageResult struct {
	Policy             core.Policy
	TotalTime          float64
	Utilization        float64
	WeightedResponse   float64
	WeightedCompletion float64
	Runs               int
}

// SweepPoint is one x-coordinate of a Figure 7/8 sweep with per-policy
// averaged metrics.
type SweepPoint struct {
	X        float64 // submission gap or rescale gap, seconds
	ByPolicy map[core.Policy]AverageResult
}

// averageOver runs the supplied single-run function across seeds and
// averages the four metrics.
func averageOver(p core.Policy, seeds int, run func(seed int64) (Result, error)) (AverageResult, error) {
	avg := AverageResult{Policy: p}
	for seed := 0; seed < seeds; seed++ {
		res, err := run(int64(seed))
		if err != nil {
			return avg, fmt.Errorf("seed %d: %w", seed, err)
		}
		avg.TotalTime += res.TotalTime
		avg.Utilization += res.Utilization
		avg.WeightedResponse += res.WeightedResponse
		avg.WeightedCompletion += res.WeightedCompletion
		avg.Runs++
	}
	n := float64(avg.Runs)
	avg.TotalTime /= n
	avg.Utilization /= n
	avg.WeightedResponse /= n
	avg.WeightedCompletion /= n
	return avg, nil
}

// SubmissionGapSweep reproduces Figure 7: for each submission gap, run
// `seeds` random 16-job workloads under every policy with T_rescale_gap =
// 180 s and average the metrics.
func SubmissionGapSweep(gaps []float64, jobs, seeds int, rescaleGap float64) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, gap := range gaps {
		pt := SweepPoint{X: gap, ByPolicy: make(map[core.Policy]AverageResult)}
		for _, p := range core.AllPolicies() {
			p := p
			avg, err := averageOver(p, seeds, func(seed int64) (Result, error) {
				w := RandomWorkload(jobs, gap, seed)
				return RunPolicy(p, w, rescaleGap)
			})
			if err != nil {
				return nil, fmt.Errorf("gap %.0f policy %v: %w", gap, p, err)
			}
			pt.ByPolicy[p] = avg
		}
		points = append(points, pt)
	}
	return points, nil
}

// RescaleGapSweep reproduces Figure 8: fixed 180 s submission gap, varying
// T_rescale_gap.
func RescaleGapSweep(rescaleGaps []float64, jobs, seeds int, submissionGap float64) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, rg := range rescaleGaps {
		pt := SweepPoint{X: rg, ByPolicy: make(map[core.Policy]AverageResult)}
		for _, p := range core.AllPolicies() {
			p := p
			rg := rg
			avg, err := averageOver(p, seeds, func(seed int64) (Result, error) {
				w := RandomWorkload(jobs, submissionGap, seed)
				return RunPolicy(p, w, rg)
			})
			if err != nil {
				return nil, fmt.Errorf("rescale gap %.0f policy %v: %w", rg, p, err)
			}
			pt.ByPolicy[p] = avg
		}
		points = append(points, pt)
	}
	return points, nil
}

// Table1Workload is the fixed configuration of §4.3.2: 16 random jobs
// (seed-pinned so the "actual" and "simulation" harnesses share one job
// set), 90 s submission gap. The paper likewise "picks a configuration out
// of the randomly generated jobs"; this seed is one whose metrics order the
// four policies exactly as the paper's Table 1 does.
func Table1Workload() Workload { return RandomWorkload(16, 90, 7) }

// Table1Simulation runs the Table 1 simulation column: the fixed workload
// under all four policies with T_rescale_gap = 180 s.
func Table1Simulation() (map[core.Policy]Result, error) {
	w := Table1Workload()
	out := make(map[core.Policy]Result, 4)
	for _, p := range core.AllPolicies() {
		res, err := RunPolicy(p, w, 180)
		if err != nil {
			return nil, fmt.Errorf("policy %v: %w", p, err)
		}
		out[p] = res
	}
	return out, nil
}
