package sim

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/workload"
)

func TestRunTasksCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [17]atomic.Int32
		if err := RunTasks(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
	if err := RunTasks(0, 4, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunTasksReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		err := RunTasks(16, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 11:
				return errors.New("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: got %v, want the index-3 error", workers, err)
		}
	}
}

// The acceptance bar for the parallel harness: every sweep produces
// byte-identical metrics with workers == 1 and workers == NumCPU.
func TestParallelSweepsMatchSequential(t *testing.T) {
	par := runtime.NumCPU()
	if par < 2 {
		par = 4
	}

	seq, err := SubmissionGapSweepWorkers([]float64{0, 150}, 8, 3, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SubmissionGapSweepWorkers([]float64{0, 150}, 8, 3, 180, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Errorf("submission-gap sweep diverges under parallel execution:\nseq %+v\npar %+v", seq, got)
	}

	rseq, err := RescaleGapSweepWorkers([]float64{0, 600}, 8, 3, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := RescaleGapSweepWorkers([]float64{0, 600}, 8, 3, 180, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rseq, rgot) {
		t.Error("rescale-gap sweep diverges under parallel execution")
	}

	gens := []workload.Generator{
		workload.Uniform{Jobs: 8, Gap: 90},
		workload.Poisson{Jobs: 8, MeanGap: 90},
		workload.Burst{Waves: 2, PerWave: 4, WaveGap: 360},
		workload.Diurnal{Jobs: 8, Period: 900, PeakGap: 30, OffPeakGap: 240},
	}
	sseq, err := ScenarioSweep(gens, 3, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := ScenarioSweep(gens, 3, 180, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sseq, sgot) {
		t.Error("scenario sweep diverges under parallel execution")
	}
	if len(sseq) != len(gens) {
		t.Fatalf("%d scenario results", len(sseq))
	}
	for i, sr := range sseq {
		if sr.Name != gens[i].Name() {
			t.Errorf("result %d named %q, want %q", i, sr.Name, gens[i].Name())
		}
		for p, avg := range sr.ByPolicy {
			if avg.Runs != 3 || avg.TotalTime <= 0 || avg.Utilization <= 0 {
				t.Errorf("%s/%v: degenerate average %+v", sr.Name, p, avg)
			}
		}
	}
}

func TestSweepRejectsBadSeeds(t *testing.T) {
	if _, err := SubmissionGapSweep([]float64{90}, 8, 0, 180); err == nil {
		t.Error("accepted seeds=0")
	}
}

func TestScenarioSweepPropagatesGeneratorError(t *testing.T) {
	gens := []workload.Generator{workload.Uniform{Jobs: 0, Gap: 90}}
	if _, err := ScenarioSweep(gens, 2, 180, 0); err == nil {
		t.Error("scenario sweep swallowed a generator error")
	}
}

// BenchmarkSweep shows the worker-pool speedup: the same submission-gap sweep
// sequentially and on all CPUs. Run with:
//
//	go test ./internal/sim -bench Sweep -benchtime 1x
//
// The per-cell workload is sized so one cell runs for milliseconds, not
// microseconds: at the paper's 16 jobs per cell the pool's dispatch overhead
// rivaled the work itself and the parallel variant measured ~1× even on
// many-core hosts. 256 jobs per cell keeps the whole sweep quick while
// making each task big enough that the speedup (and any future pool
// regression) is visible in the jobs/s metric both variants report.
func BenchmarkSweep(b *testing.B) {
	gaps := []float64{0, 60, 120, 180, 240, 300}
	const jobs, seeds = 256, 8
	cells := len(gaps) * len(core.AllPolicies()) * seeds
	// The parallel case's name is host-independent on purpose: benchmark
	// names are the keys BENCH_BASELINE.json comparisons match on, and CI
	// runners have varying CPU counts.
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SubmissionGapSweepWorkers(gaps, jobs, seeds, 180, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cells*jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
