package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/workload"
)

// dropRestore is a minimal hand-built capacity trace: lose half the cluster
// at drop, get it back at restore.
func dropRestore(drop, restore float64, low int) workload.AvailabilityTrace {
	return workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: drop, Capacity: low},
		{At: restore, Capacity: 64},
	}}
}

func TestAvailabilityRunCompletesAllPolicies(t *testing.T) {
	w := RandomWorkload(16, 90, 7)
	tr := dropRestore(300, 1500, 32)
	for _, p := range core.AllPolicies() {
		res, err := RunPolicyAvailability(p, w, 180, tr)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.CapacityEvents != 2 {
			t.Errorf("%v: CapacityEvents = %d, want 2", p, res.CapacityEvents)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%v: utilization %v out of (0,1]", p, res.Utilization)
		}
		if res.GoodputFrac <= 0 || res.GoodputFrac > 1 {
			t.Errorf("%v: goodput %v out of (0,1]", p, res.GoodputFrac)
		}
	}
}

func TestAvailabilityProfilesRunEndToEnd(t *testing.T) {
	w := RandomWorkload(16, 90, 7)
	horizon := AvailabilityHorizon(w)
	for _, prof := range workload.DefaultAvailabilityProfiles() {
		tr, err := prof.Events(3, 64, horizon)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name(), err)
		}
		tr = tr.WithRestore(64, horizon)
		res, err := RunPolicyAvailability(core.Elastic, w, 180, tr)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name(), err)
		}
		// Events that land before the submissions stop must have applied;
		// trailing events after the run drains are legitimately skipped.
		if len(tr.Events) > 0 && tr.Events[0].At < w.Span() && res.CapacityEvents == 0 {
			t.Errorf("%s: no capacity events applied (trace had %d, first at %.0f)",
				prof.Name(), len(tr.Events), tr.Events[0].At)
		}
	}
}

// TestCapacityEventBeforeSubmissionAtSameInstant is the regression test for
// the documented event ordering: a capacity event and a submission at the
// same timestamp must apply event-first. With the capacity drop landing
// first, the arriving job sees a cluster already shrunk to its victim's
// minimum-reachable state and has to queue; submission-first would have let
// it shrink the running job itself and start immediately.
func TestCapacityEventBeforeSubmissionAtSameInstant(t *testing.T) {
	w := Workload{Jobs: []JobSpec{
		{ID: "a", Class: model.XLarge, Priority: 1, SubmitAt: 0},
		{ID: "b", Class: model.Large, Priority: 5, SubmitAt: 100},
	}}
	tr := workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 100, Capacity: 32},
	}}
	res, err := RunPolicyAvailability(core.Elastic, w, 180, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForcedShrinks != 1 {
		t.Errorf("ForcedShrinks = %d, want 1 (the t=100 drop shrinks job a before job b submits)", res.ForcedShrinks)
	}
	var b JobMetrics
	for _, jm := range res.Jobs {
		if jm.ID == "b" {
			b = jm
		}
	}
	// Event-first: job a is freshly rescaled by the forced shrink at
	// t=100, so its rescale gap blocks job b from shrinking it further
	// and b has to wait for the gap to expire. (Submission-first would
	// have let b shrink the still-untouched job a and start at t=100.)
	if b.StartAt <= 100 {
		t.Errorf("job b started at %v, want > 100 (capacity event must precede the submission)", b.StartAt)
	}

	// Bit-for-bit reproducibility of the availability path.
	again, err := RunPolicyAvailability(core.Elastic, w, 180, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same workload + trace produced different results")
	}
}

// TestAvailabilityStreamingMatchesRetained extends the PR 2 guarantee to
// capacity events: every aggregate — the paper's four metrics and the new
// resilience set — must be bit-identical between streaming and retained
// runs of the same availability scenario.
func TestAvailabilityStreamingMatchesRetained(t *testing.T) {
	w, err := (workload.Burst{Waves: 8, PerWave: 8, WaveGap: 600}).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.SpotPreemption{MeanGap: 400, Slots: 16, MeanOutage: 300}
	tr, err := prof.Events(11, 64, AvailabilityHorizon(w))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithRestore(64, AvailabilityHorizon(w))
	for _, p := range core.AllPolicies() {
		retained, err := RunPolicyAvailability(p, w, 180, tr)
		if err != nil {
			t.Fatalf("%v retained: %v", p, err)
		}
		streaming, err := RunPolicyAvailabilityStreaming(p, w, 180, tr)
		if err != nil {
			t.Fatalf("%v streaming: %v", p, err)
		}
		if streaming.Jobs != nil || streaming.UtilTimeline != nil || streaming.ReplicaTimelines != nil {
			t.Fatalf("%v: streaming retained per-job state", p)
		}
		retained.Jobs, retained.UtilTimeline, retained.ReplicaTimelines = nil, nil, nil
		if !reflect.DeepEqual(retained, streaming) {
			t.Errorf("%v: streaming diverged from retained:\nretained:  %+v\nstreaming: %+v", p, retained, streaming)
		}
	}
}

// TestAvailabilityInvariantUnderRandomTraces is the sim-level property test:
// for any availability trace, allocated slots never exceed the capacity in
// force at any applied event, and forced requeues only happen when shrink
// alone could not absorb the loss.
func TestAvailabilityInvariantUnderRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		var tr workload.AvailabilityTrace
		at := 0.0
		for i := 0; i < 12; i++ {
			at += 100 + rng.Float64()*500
			tr.Events = append(tr.Events, workload.CapacityEvent{
				At: at, Capacity: 8 + rng.Intn(57),
			})
		}
		tr = tr.WithRestore(64, at+1)
		w := RandomWorkload(12, 60, seed)
		res, err := RunPolicyAvailability(core.Elastic, w, 180, tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
			t.Errorf("seed %d: utilization %v out of (0,1]", seed, res.Utilization)
		}
		// Allocated slots must respect the capacity curve pointwise. At
		// the exact instant of a capacity event the timeline records the
		// reclaim's intermediate steps (victims shrink one by one), so
		// samples coinciding with an event timestamp are transients and
		// excluded; everything in between must fit.
		eventAt := make(map[float64]bool, len(tr.Events))
		for _, ev := range tr.Events {
			eventAt[ev.At] = true
		}
		for _, s := range res.UtilTimeline {
			if eventAt[s.At] {
				continue
			}
			if cap := tr.CapacityAt(64, s.At); s.Used > cap {
				t.Fatalf("seed %d: %d slots in use at t=%.1f with capacity %d", seed, s.Used, s.At, cap)
			}
		}
	}
}

func TestAvailabilitySweepRunsSmall(t *testing.T) {
	profiles := []workload.AvailabilityProfile{
		workload.MaintenanceDrain{Every: 900, Duration: 300, Keep: 32},
		workload.SpotPreemption{MeanGap: 600, Slots: 16, MeanOutage: 300},
	}
	gen := workload.Uniform{Jobs: 8, Gap: 90}
	seq, err := AvailabilitySweep(profiles, gen, 2, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AvailabilitySweep(profiles, gen, 2, 180, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel availability sweep diverged from sequential")
	}
	if len(seq) != 2 || seq[0].Name != "drain" || seq[1].Name != "spot" {
		t.Fatalf("unexpected sweep shape: %+v", seq)
	}
	for _, sr := range seq {
		for _, p := range core.AllPolicies() {
			avg, ok := sr.ByPolicy[p]
			if !ok {
				t.Fatalf("%s: missing policy %v", sr.Name, p)
			}
			if avg.Runs != 2 || avg.TotalTime <= 0 {
				t.Errorf("%s/%v: avg = %+v", sr.Name, p, avg)
			}
		}
	}
}
