package lb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkDB(loads []float64, numPE int) *Database {
	db := NewDatabase(numPE)
	for i, l := range loads {
		db.Objs = append(db.Objs, ObjLoad{ID: ObjID{Array: 0, Index: i}, PE: i % numPE, Load: l})
	}
	return db
}

func TestGreedyBalances(t *testing.T) {
	db := mkDB([]float64{8, 1, 1, 1, 1, 1, 1, 1, 1}, 4)
	a, err := Greedy{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(db.Objs) {
		t.Fatalf("assignment covers %d of %d objects", len(a), len(db.Objs))
	}
	// Heaviest object must be alone-ish: its PE load should be exactly 8
	// because 8 >= sum of the rest (8 vs 8) and greedy places it first.
	loads := PELoads(db, a)
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	if max > 8 {
		t.Errorf("greedy max load = %g, want <= 8", max)
	}
}

func TestGreedyRespectsAvailability(t *testing.T) {
	db := mkDB([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	db.Available[3] = false
	a, err := Greedy{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	for id, pe := range a {
		if pe == 3 {
			t.Errorf("object %v assigned to unavailable PE 3", id)
		}
	}
}

func TestGreedyAccountsBackground(t *testing.T) {
	db := mkDB([]float64{1, 1, 1, 1}, 2)
	db.Background[0] = 100
	a, err := Greedy{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	for id, pe := range a {
		if pe == 0 {
			t.Errorf("object %v placed on PE with huge background load", id)
		}
	}
}

func TestRefineMovesOffUnavailable(t *testing.T) {
	db := mkDB([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 4)
	db.Available[0] = false
	a, err := Refine{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	for id, pe := range a {
		if pe == 0 {
			t.Errorf("refine left object %v on unavailable PE", id)
		}
	}
}

func TestRefineImprovesImbalance(t *testing.T) {
	// Everything piled on PE 0.
	db := NewDatabase(4)
	for i := 0; i < 16; i++ {
		db.Objs = append(db.Objs, ObjLoad{ID: ObjID{Index: i}, PE: 0, Load: 1})
	}
	before := Imbalance(db, nil)
	a, err := Refine{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	after := Imbalance(db, a)
	if after >= before {
		t.Errorf("refine did not improve imbalance: %g -> %g", before, after)
	}
	if after > 1.3 {
		t.Errorf("refine imbalance %g too high", after)
	}
}

func TestRefineMinimizesMigrations(t *testing.T) {
	// Already balanced: refine should move nothing, greedy may move a lot.
	db := mkDB([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 4)
	a, err := Refine{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	if m := a.Migrations(db); m != 0 {
		t.Errorf("refine migrated %d objects on a balanced system", m)
	}
}

func TestRotateRoundRobin(t *testing.T) {
	db := mkDB([]float64{5, 4, 3, 2, 1, 0.5}, 3)
	a, err := Rotate{}.Assign(db)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, pe := range a {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 2 {
			t.Errorf("rotate put %d objects on PE %d, want 2", c, pe)
		}
	}
}

func TestValidateRejectsBadDB(t *testing.T) {
	db := NewDatabase(2)
	db.Objs = append(db.Objs, ObjLoad{ID: ObjID{}, PE: 5, Load: 1})
	if err := db.Validate(); err == nil {
		t.Error("Validate accepted out-of-range PE")
	}
	db2 := NewDatabase(2)
	db2.Objs = append(db2.Objs, ObjLoad{ID: ObjID{}, PE: 0, Load: -1})
	if err := db2.Validate(); err == nil {
		t.Error("Validate accepted negative load")
	}
	db3 := NewDatabase(2)
	db3.Available[0] = false
	db3.Available[1] = false
	if err := db3.Validate(); err == nil {
		t.Error("Validate accepted zero available PEs")
	}
	var db4 Database
	if err := db4.Validate(); err == nil {
		t.Error("Validate accepted zero PEs")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "greedy", "GreedyLB", "refine", "RefineLB", "rotate", "RotateLB"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown strategy")
	}
}

func TestImbalanceNoLoad(t *testing.T) {
	db := NewDatabase(4)
	if got := Imbalance(db, nil); got != 0 {
		t.Errorf("Imbalance with no load = %g, want 0", got)
	}
}

// Property: every strategy produces a complete assignment onto available PEs,
// and greedy's max load never exceeds twice the optimal lower bound
// (classic LPT-style guarantee, loose here).
func TestQuickStrategiesComplete(t *testing.T) {
	strategies := []Strategy{Greedy{}, Refine{}, Rotate{}}
	f := func(seed int64, nObj uint8, nPE uint8, nUnavail uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numPE := int(nPE%8) + 2
		numObj := int(nObj%32) + 1
		db := NewDatabase(numPE)
		for i := 0; i < numObj; i++ {
			db.Objs = append(db.Objs, ObjLoad{
				ID: ObjID{Index: i}, PE: rng.Intn(numPE), Load: rng.Float64() * 10,
			})
		}
		// Mark some PEs unavailable but keep at least one.
		unavail := int(nUnavail) % numPE
		for i := 0; i < unavail; i++ {
			db.Available[i] = false
		}
		for _, s := range strategies {
			a, err := s.Assign(db)
			if err != nil {
				return false
			}
			if len(a) != numObj {
				return false
			}
			for _, o := range db.Objs {
				pe, ok := a[o.ID]
				if !ok || !db.Available[pe] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: greedy achieves max load <= mean + heaviest object (standard
// greedy bound), over available PEs.
func TestQuickGreedyBound(t *testing.T) {
	f := func(seed int64, nObj uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numPE := 4
		numObj := int(nObj%64) + 4
		db := NewDatabase(numPE)
		var total, heaviest float64
		for i := 0; i < numObj; i++ {
			l := rng.Float64() * 5
			total += l
			if l > heaviest {
				heaviest = l
			}
			db.Objs = append(db.Objs, ObjLoad{ID: ObjID{Index: i}, PE: rng.Intn(numPE), Load: l})
		}
		a, err := Greedy{}.Assign(db)
		if err != nil {
			return false
		}
		mean := total / float64(numPE)
		return MaxLoad(db, a) <= mean+heaviest+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
