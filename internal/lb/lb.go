// Package lb implements measurement-based load balancing strategies in the
// style of Charm++'s load balancing framework. The runtime records per-chare
// wall time into a Database; a Strategy computes a new chare→PE assignment.
//
// Strategies must respect the set of available PEs: during a shrink the
// runtime marks the PEs being removed as unavailable, so the strategy moves
// every object off them (paper §2.2).
package lb

import (
	"fmt"
	"sort"
)

// ObjID identifies a migratable object (array ID + element index).
type ObjID struct {
	Array int
	Index int
}

// ObjLoad is one object's measured load and current placement.
type ObjLoad struct {
	ID   ObjID
	PE   int
	Load float64 // measured wall seconds since the last LB step
}

// Database holds the instrumentation snapshot handed to a strategy.
type Database struct {
	// Objs lists every migratable object with its measured load.
	Objs []ObjLoad
	// NumPEs is the number of PEs in the current incarnation.
	NumPEs int
	// Available[pe] reports whether objects may be assigned to pe. A
	// shrink marks doomed PEs unavailable.
	Available []bool
	// Background[pe] is non-migratable load on pe (e.g. runtime overhead).
	Background []float64
}

// NewDatabase returns a database for n PEs with all PEs available.
func NewDatabase(n int) *Database {
	av := make([]bool, n)
	for i := range av {
		av[i] = true
	}
	return &Database{NumPEs: n, Available: av, Background: make([]float64, n)}
}

// AvailablePEs returns the indices of available PEs in increasing order.
func (db *Database) AvailablePEs() []int {
	var pes []int
	for i, ok := range db.Available {
		if ok {
			pes = append(pes, i)
		}
	}
	return pes
}

// TotalLoad returns the sum of all object loads.
func (db *Database) TotalLoad() float64 {
	var t float64
	for _, o := range db.Objs {
		t += o.Load
	}
	return t
}

// Validate checks internal consistency.
func (db *Database) Validate() error {
	if db.NumPEs <= 0 {
		return fmt.Errorf("lb: database has %d PEs", db.NumPEs)
	}
	if len(db.Available) != db.NumPEs {
		return fmt.Errorf("lb: available mask has %d entries for %d PEs", len(db.Available), db.NumPEs)
	}
	if len(db.AvailablePEs()) == 0 {
		return fmt.Errorf("lb: no PEs available")
	}
	for _, o := range db.Objs {
		if o.PE < 0 || o.PE >= db.NumPEs {
			return fmt.Errorf("lb: object %v on out-of-range PE %d", o.ID, o.PE)
		}
		if o.Load < 0 {
			return fmt.Errorf("lb: object %v has negative load %g", o.ID, o.Load)
		}
	}
	return nil
}

// Assignment maps each object to its destination PE.
type Assignment map[ObjID]int

// Migrations counts how many objects move relative to the database placement.
func (a Assignment) Migrations(db *Database) int {
	n := 0
	for _, o := range db.Objs {
		if dst, ok := a[o.ID]; ok && dst != o.PE {
			n++
		}
	}
	return n
}

// MaxLoad returns the heaviest per-PE load under assignment a, including
// background load.
func MaxLoad(db *Database, a Assignment) float64 {
	loads := PELoads(db, a)
	var m float64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// PELoads returns the per-PE load under assignment a, including background.
func PELoads(db *Database, a Assignment) []float64 {
	loads := append([]float64(nil), db.Background...)
	for _, o := range db.Objs {
		pe := o.PE
		if dst, ok := a[o.ID]; ok {
			pe = dst
		}
		loads[pe] += o.Load
	}
	return loads
}

// Imbalance returns max/mean PE load over available PEs (1.0 = perfectly
// balanced). Returns 0 when there is no load.
func Imbalance(db *Database, a Assignment) float64 {
	loads := PELoads(db, a)
	avail := db.AvailablePEs()
	var sum, max float64
	for _, pe := range avail {
		sum += loads[pe]
		if loads[pe] > max {
			max = loads[pe]
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(avail))
	return max / mean
}

// Strategy computes a new assignment from a load database.
type Strategy interface {
	// Name identifies the strategy (e.g. in metrics output).
	Name() string
	// Assign returns a full assignment covering every object in db. It
	// must only assign objects to available PEs.
	Assign(db *Database) (Assignment, error)
}

// Greedy implements GreedyLB: sort objects by decreasing load and repeatedly
// place the heaviest object on the least-loaded available PE. This ignores
// current placement, so it achieves near-optimal balance at the cost of many
// migrations — the strategy Charm++ uses at rescale time, when every object
// moves anyway because the runtime restarts.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "GreedyLB" }

// Assign implements Strategy.
func (Greedy) Assign(db *Database) (Assignment, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	avail := db.AvailablePEs()
	objs := append([]ObjLoad(nil), db.Objs...)
	sort.SliceStable(objs, func(i, j int) bool { return objs[i].Load > objs[j].Load })
	loads := make(map[int]float64, len(avail))
	for _, pe := range avail {
		loads[pe] = db.Background[pe]
	}
	out := make(Assignment, len(objs))
	for _, o := range objs {
		best := avail[0]
		for _, pe := range avail[1:] {
			if loads[pe] < loads[best] {
				best = pe
			}
		}
		out[o.ID] = best
		loads[best] += o.Load
	}
	return out, nil
}

// Refine implements RefineLB: keep current placement and migrate objects off
// overloaded PEs onto underloaded ones until every PE is within tolerance of
// the mean. It minimizes migrations, which suits periodic in-run rebalancing.
type Refine struct {
	// Tolerance is the allowed max/mean overshoot (default 1.05).
	Tolerance float64
}

// Name implements Strategy.
func (Refine) Name() string { return "RefineLB" }

// Assign implements Strategy.
func (r Refine) Assign(db *Database) (Assignment, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	tol := r.Tolerance
	if tol <= 0 {
		tol = 1.05
	}
	avail := db.AvailablePEs()
	availSet := make(map[int]bool, len(avail))
	for _, pe := range avail {
		availSet[pe] = true
	}

	out := make(Assignment, len(db.Objs))
	loads := make(map[int]float64, len(avail))
	for _, pe := range avail {
		loads[pe] = db.Background[pe]
	}
	// Objects on unavailable PEs must move; seed them via greedy placement
	// onto the least-loaded PE. Objects on available PEs stay put initially.
	perPE := make(map[int][]ObjLoad)
	var displaced []ObjLoad
	for _, o := range db.Objs {
		if availSet[o.PE] {
			out[o.ID] = o.PE
			loads[o.PE] += o.Load
			perPE[o.PE] = append(perPE[o.PE], o)
		} else {
			displaced = append(displaced, o)
		}
	}
	sort.SliceStable(displaced, func(i, j int) bool { return displaced[i].Load > displaced[j].Load })
	for _, o := range displaced {
		best := avail[0]
		for _, pe := range avail[1:] {
			if loads[pe] < loads[best] {
				best = pe
			}
		}
		out[o.ID] = best
		loads[best] += o.Load
		perPE[best] = append(perPE[best], ObjLoad{ID: o.ID, PE: best, Load: o.Load})
	}

	var total float64
	for _, pe := range avail {
		total += loads[pe]
	}
	mean := total / float64(len(avail))
	if mean == 0 {
		return out, nil
	}
	threshold := mean * tol

	// Iteratively move the best-fitting object from the most loaded PE to
	// the least loaded PE. Bounded by the object count to guarantee
	// termination.
	for iter := 0; iter < len(db.Objs)+1; iter++ {
		hi, lo := avail[0], avail[0]
		for _, pe := range avail[1:] {
			if loads[pe] > loads[hi] {
				hi = pe
			}
			if loads[pe] < loads[lo] {
				lo = pe
			}
		}
		if loads[hi] <= threshold || hi == lo {
			break
		}
		// Pick the largest object on hi that fits under the threshold
		// at lo without re-overloading it.
		gap := loads[hi] - loads[lo]
		bestIdx := -1
		var bestLoad float64
		for i, o := range perPE[hi] {
			if o.Load < gap && o.Load > bestLoad {
				bestIdx, bestLoad = i, o.Load
			}
		}
		if bestIdx < 0 {
			break
		}
		o := perPE[hi][bestIdx]
		perPE[hi] = append(perPE[hi][:bestIdx], perPE[hi][bestIdx+1:]...)
		perPE[lo] = append(perPE[lo], ObjLoad{ID: o.ID, PE: lo, Load: o.Load})
		out[o.ID] = lo
		loads[hi] -= o.Load
		loads[lo] += o.Load
	}
	return out, nil
}

// Rotate assigns objects round-robin across available PEs regardless of
// load. It is a deliberately naive baseline used in ablation benches.
type Rotate struct{}

// Name implements Strategy.
func (Rotate) Name() string { return "RotateLB" }

// Assign implements Strategy.
func (Rotate) Assign(db *Database) (Assignment, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	avail := db.AvailablePEs()
	out := make(Assignment, len(db.Objs))
	objs := append([]ObjLoad(nil), db.Objs...)
	sort.SliceStable(objs, func(i, j int) bool {
		if objs[i].ID.Array != objs[j].ID.Array {
			return objs[i].ID.Array < objs[j].ID.Array
		}
		return objs[i].ID.Index < objs[j].ID.Index
	})
	for i, o := range objs {
		out[o.ID] = avail[i%len(avail)]
	}
	return out, nil
}

// ByName returns the strategy with the given name.
func ByName(name string) (Strategy, error) {
	switch name {
	case "", "greedy", "GreedyLB":
		return Greedy{}, nil
	case "refine", "RefineLB":
		return Refine{}, nil
	case "rotate", "RotateLB":
		return Rotate{}, nil
	}
	return nil, fmt.Errorf("lb: unknown strategy %q", name)
}
