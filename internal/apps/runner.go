package apps

import (
	"fmt"
	"time"

	"elastichpc/internal/ccs"
	"elastichpc/internal/charm"
	"elastichpc/internal/pup"
)

// IterationRecord captures one iteration's timing for timeline plots
// (paper Figure 6).
type IterationRecord struct {
	Iter      int
	PEs       int
	Elapsed   time.Duration // wall time of this iteration
	Timestamp time.Duration // time since run start when it finished
}

// RescaleEvent records an in-run rescale for timeline plots.
type RescaleEvent struct {
	Iter      int
	FromPEs   int
	ToPEs     int
	Timestamp time.Duration
	Stats     charm.RescaleStats
}

// RunResult is the outcome of an application run.
type RunResult struct {
	Iterations []IterationRecord
	Rescales   []RescaleEvent
	Total      time.Duration
	FinalValue float64 // last reduction value (residual / kinetic energy)
}

// TimePerIteration returns the mean iteration time over the steady-state
// iterations (excluding the first, which pays warm-up costs).
func (r RunResult) TimePerIteration() time.Duration {
	if len(r.Iterations) <= 1 {
		if len(r.Iterations) == 1 {
			return r.Iterations[0].Elapsed
		}
		return 0
	}
	var sum time.Duration
	for _, it := range r.Iterations[1:] {
		sum += it.Elapsed
	}
	return sum / time.Duration(len(r.Iterations)-1)
}

// App is a runnable, rescalable application instance bound to a runtime.
type App struct {
	rt        *Runner
	name      string
	array     int
	epIterate int
}

// Runner drives an application's iteration loop on a charm runtime,
// servicing rescale requests at load-balancing boundaries (paper §2.2) and
// recording the per-iteration timeline.
type Runner struct {
	RT *charm.Runtime
	// LBPeriod is the number of iterations between load-balancing steps
	// (and hence rescale opportunities). Defaults to 10.
	LBPeriod int
	// BalanceOnLB controls whether a Balance() runs at LB steps even
	// without a pending rescale. The paper's experimental runs only
	// balance when rescaling ("Since there is no load imbalance in this
	// example, we only load balance when a job has to be rescaled").
	BalanceOnLB bool
	// Evolve, if non-nil, makes this an *evolving* job (paper §6): at
	// every LB step the application itself decides its target PE count
	// from its own progress, with no external trigger. Returning the
	// current PE count (or <= 0) keeps the allocation unchanged.
	Evolve func(status ccs.StatusReply) int

	array     int
	epIterate int
	iter      int
	total     int
	reduceCh  chan []float64
}

// NewJacobiRunner creates an N×N Jacobi2D instance decomposed into bx×by
// blocks on rt and waits for initialization to complete.
func NewJacobiRunner(rt *charm.Runtime, n, bx, by int) (*Runner, error) {
	if bx <= 0 || by <= 0 || n < bx || n < by {
		return nil, fmt.Errorf("apps: invalid jacobi decomposition %dx%d for grid %d", bx, by, n)
	}
	r := &Runner{RT: rt, LBPeriod: 10, array: -1, epIterate: jacobiEpIterate, reduceCh: make(chan []float64, 1)}
	aid, err := rt.CreateArray(JacobiTypeName, bx*by)
	if err != nil {
		return nil, err
	}
	r.array = aid
	rt.SetReductionClient(aid, func(vals []float64) { r.reduceCh <- vals })
	rt.Broadcast(aid, jacobiEpInit, mustPack(&jacobiInitPayload{N: n, BX: bx, BY: by, Boundary: 1.0}))
	if err := r.waitReduction(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewLeanMDRunner creates a kx×ky×kz-cell LeanMD instance with
// atomsPerCell atoms per cell on rt.
func NewLeanMDRunner(rt *charm.Runtime, kx, ky, kz, atomsPerCell int, seed int64) (*Runner, error) {
	if kx <= 0 || ky <= 0 || kz <= 0 || atomsPerCell <= 0 {
		return nil, fmt.Errorf("apps: invalid leanmd config %dx%dx%d, %d atoms", kx, ky, kz, atomsPerCell)
	}
	r := &Runner{RT: rt, LBPeriod: 10, array: -1, epIterate: mdEpIterate, reduceCh: make(chan []float64, 1)}
	aid, err := rt.CreateArray(LeanMDTypeName, kx*ky*kz)
	if err != nil {
		return nil, err
	}
	r.array = aid
	rt.SetReductionClient(aid, func(vals []float64) { r.reduceCh <- vals })
	rt.Broadcast(aid, mdEpInit, mustPack(&mdInitPayload{
		KX: kx, KY: ky, KZ: kz, AtomsPerCell: atomsPerCell,
		CellSize: ljCutoff, Seed: seed,
	}))
	if err := r.waitReduction(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Runner) waitReduction() error {
	select {
	case <-r.reduceCh:
		return nil
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("apps: reduction timed out")
	}
}

// Status returns application progress for CCS queries.
func (r *Runner) Status() ccs.StatusReply {
	return ccs.StatusReply{
		NumPEs:     r.RT.NumPEs(),
		Iteration:  r.iter,
		TotalIters: r.total,
		DoneFraction: func() float64 {
			if r.total == 0 {
				return 0
			}
			return float64(r.iter) / float64(r.total)
		}(),
		RescaleEvents: len(r.RT.Stats()),
	}
}

// Run executes iters iterations, recording per-iteration timings and
// servicing pending rescale requests every LBPeriod iterations.
func (r *Runner) Run(iters int) (RunResult, error) {
	var res RunResult
	r.total = iters
	lbPeriod := r.LBPeriod
	if lbPeriod <= 0 {
		lbPeriod = 10
	}
	runStart := time.Now()
	for r.iter = 0; r.iter < iters; r.iter++ {
		iterStart := time.Now()
		r.RT.Broadcast(r.array, r.epIterate, nil)
		vals := <-r.reduceCh
		elapsed := time.Since(iterStart)
		res.Iterations = append(res.Iterations, IterationRecord{
			Iter:      r.iter,
			PEs:       r.RT.NumPEs(),
			Elapsed:   elapsed,
			Timestamp: time.Since(runStart),
		})
		if len(vals) > 0 {
			res.FinalValue = vals[0]
		}
		// Load-balancing step: the rescale opportunity (paper: "The
		// application then triggers rescaling during the next
		// load-balancing step after receiving the signal").
		if (r.iter+1)%lbPeriod == 0 {
			if r.Evolve != nil && r.RT.PendingRescale() == 0 {
				if target := r.Evolve(r.Status()); target > 0 && target != r.RT.NumPEs() {
					// Internally triggered rescale: same path
					// as an external signal. Register now,
					// drain the ack asynchronously.
					done := r.RT.RequestRescale(target)
					go func() { <-done }()
				}
			}
			if pending := r.RT.PendingRescale(); pending > 0 {
				from := r.RT.NumPEs()
				if _, err := r.RT.ServicePendingRescale(); err != nil {
					return res, fmt.Errorf("apps: rescale at iter %d: %w", r.iter, err)
				}
				stats := r.RT.Stats()
				var last charm.RescaleStats
				if len(stats) > 0 {
					last = stats[len(stats)-1]
				}
				res.Rescales = append(res.Rescales, RescaleEvent{
					Iter:      r.iter,
					FromPEs:   from,
					ToPEs:     r.RT.NumPEs(),
					Timestamp: time.Since(runStart),
					Stats:     last,
				})
			} else if r.BalanceOnLB {
				if _, err := r.RT.Balance(); err != nil {
					return res, fmt.Errorf("apps: balance at iter %d: %w", r.iter, err)
				}
			}
		}
	}
	res.Total = time.Since(runStart)
	return res, nil
}

// Checkpoint writes a full application checkpoint under the given key
// prefix (paper §3.2.2: fault tolerance "by enabling checkpointing of chare
// data ... and restarting from a checkpoint"). Call at an iteration
// boundary.
func (r *Runner) Checkpoint(prefix string) (int64, error) {
	return r.RT.CheckpointTo(prefix)
}

// Restore rebuilds the application state from a checkpoint written by
// Checkpoint — the "restart with the extra restart parameter" path. The
// runner must have been constructed identically (same decomposition).
func (r *Runner) Restore(prefix string) error {
	return r.RT.RestoreFrom(prefix)
}

// CheckpointBytes estimates the application's checkpoint footprint by
// packing all chares (used by overhead analyses).
func (r *Runner) CheckpointBytes() (int64, error) {
	n, err := r.RT.CheckpointTo("probe/size")
	r.RT.Store().DeletePrefix("probe/size/")
	return n, err
}

// Verify that payload types round-trip; exercised by tests.
var (
	_ pup.Pupable = (*jacobiInitPayload)(nil)
	_ pup.Pupable = (*jacobiHaloPayload)(nil)
	_ pup.Pupable = (*mdInitPayload)(nil)
	_ pup.Pupable = (*mdAtomsPayload)(nil)
)
