package apps

import (
	"math"
	"testing"
	"time"

	"elastichpc/internal/charm"
	"elastichpc/internal/pup"
)

func newRT(t *testing.T, pes int) *charm.Runtime {
	t.Helper()
	rt, err := charm.New(charm.Config{PEs: pes, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		t.Fatalf("charm.New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestJacobiConverges(t *testing.T) {
	rt := newRT(t, 4)
	r, err := NewJacobiRunner(rt, 32, 4, 4)
	if err != nil {
		t.Fatalf("NewJacobiRunner: %v", err)
	}
	res, err := r.Run(50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Iterations) != 50 {
		t.Fatalf("recorded %d iterations", len(res.Iterations))
	}
	// The max delta (residual) must shrink as the solve progresses.
	if res.FinalValue <= 0 || res.FinalValue >= 1 {
		t.Errorf("final residual = %g, want in (0, 1)", res.FinalValue)
	}
}

func TestJacobiResidualDecreasesMonotonically(t *testing.T) {
	rt := newRT(t, 2)
	r, err := NewJacobiRunner(rt, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for i := 0; i < 5; i++ {
		res, err := r.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalValue > prev {
			t.Errorf("residual increased: %g -> %g", prev, res.FinalValue)
		}
		prev = res.FinalValue
	}
}

func TestJacobiCorrectAgainstSerial(t *testing.T) {
	// Run the chare-based solver and a plain serial solver on the same
	// tiny grid; residual sequences must match to floating-point accuracy.
	const n, iters = 12, 20
	rt := newRT(t, 3)
	r, err := NewJacobiRunner(rt, n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: (n+2)×(n+2) grid with top boundary = 1.
	cur := make([]float64, (n+2)*(n+2))
	next := make([]float64, (n+2)*(n+2))
	idx := func(i, j int) int { return j*(n+2) + i }
	for i := 0; i < n+2; i++ {
		cur[idx(i, 0)] = 1
		next[idx(i, 0)] = 1
	}
	var maxDelta float64
	for it := 0; it < iters; it++ {
		maxDelta = 0
		for j := 1; j <= n; j++ {
			for i := 1; i <= n; i++ {
				v := 0.25 * (cur[idx(i-1, j)] + cur[idx(i+1, j)] + cur[idx(i, j-1)] + cur[idx(i, j+1)])
				if d := math.Abs(v - cur[idx(i, j)]); d > maxDelta {
					maxDelta = d
				}
				next[idx(i, j)] = v
			}
		}
		for i := 0; i < n+2; i++ {
			next[idx(i, 0)] = 1
		}
		cur, next = next, cur
	}
	if math.Abs(res.FinalValue-maxDelta) > 1e-12 {
		t.Errorf("parallel residual %.15g != serial %.15g", res.FinalValue, maxDelta)
	}
}

func TestJacobiRescaleMidRunSameAnswer(t *testing.T) {
	const n, iters = 12, 40
	// Reference run without rescaling.
	rtA := newRT(t, 4)
	ra, err := NewJacobiRunner(rtA, n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := ra.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	// Run with a shrink at iter 10 and an expand at iter 20.
	rtB := newRT(t, 4)
	rb, err := NewJacobiRunner(rtB, n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb.LBPeriod = 10
	go func() {
		// Request the shrink immediately; serviced at iter 9 boundary.
		<-rtB.RequestRescale(2)
	}()
	resB1, err := rb.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rtB.NumPEs() != 2 {
		t.Fatalf("NumPEs after shrink = %d, want 2", rtB.NumPEs())
	}
	go func() { <-rtB.RequestRescale(4) }()
	resB2, err := rb.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rtB.NumPEs() != 4 {
		t.Fatalf("NumPEs after expand = %d, want 4", rtB.NumPEs())
	}
	if math.Abs(resB2.FinalValue-resA.FinalValue) > 1e-12 {
		t.Errorf("rescaled run residual %.15g != rigid run %.15g", resB2.FinalValue, resA.FinalValue)
	}
	_ = resB1
}

func TestJacobiRejectsBadDecomposition(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := NewJacobiRunner(rt, 4, 8, 8); err == nil {
		t.Error("accepted more blocks than cells")
	}
	if _, err := NewJacobiRunner(rt, 8, 0, 2); err == nil {
		t.Error("accepted zero blocks")
	}
}

func TestLeanMDRuns(t *testing.T) {
	rt := newRT(t, 4)
	r, err := NewLeanMDRunner(rt, 3, 3, 3, 8, 42)
	if err != nil {
		t.Fatalf("NewLeanMDRunner: %v", err)
	}
	res, err := r.Run(5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Iterations) != 5 {
		t.Fatalf("recorded %d iterations", len(res.Iterations))
	}
	if math.IsNaN(res.FinalValue) || math.IsInf(res.FinalValue, 0) {
		t.Errorf("kinetic energy = %g", res.FinalValue)
	}
	if res.FinalValue < 0 {
		t.Errorf("kinetic energy negative: %g", res.FinalValue)
	}
}

func TestLeanMDDeterministicAcrossDecompositions(t *testing.T) {
	// Same seed and cell grid on different PE counts must give the same
	// energy: placement is per-cell, not per-PE.
	run := func(pes int) float64 {
		rt := newRT(t, pes)
		r, err := NewLeanMDRunner(rt, 2, 2, 2, 6, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalValue
	}
	a, b := run(1), run(4)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("energy differs across PE counts: %g vs %g", a, b)
	}
}

func TestLeanMDRescaleMidRunSameAnswer(t *testing.T) {
	run := func(rescale bool) float64 {
		rt := newRT(t, 4)
		r, err := NewLeanMDRunner(rt, 2, 2, 2, 6, 99)
		if err != nil {
			t.Fatal(err)
		}
		r.LBPeriod = 5
		if rescale {
			go func() { <-rt.RequestRescale(2) }()
		}
		res, err := r.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalValue
	}
	a, b := run(false), run(true)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("energy differs with rescale: %g vs %g", a, b)
	}
}

func TestLeanMDRejectsBadConfig(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := NewLeanMDRunner(rt, 0, 2, 2, 4, 1); err == nil {
		t.Error("accepted zero cells")
	}
	if _, err := NewLeanMDRunner(rt, 2, 2, 2, 0, 1); err == nil {
		t.Error("accepted zero atoms")
	}
}

func TestRunnerTimelineRecordsRescale(t *testing.T) {
	rt := newRT(t, 4)
	r, err := NewJacobiRunner(rt, 16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.LBPeriod = 5
	go func() { <-rt.RequestRescale(2) }()
	res, err := r.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rescales) != 1 {
		t.Fatalf("recorded %d rescales, want 1", len(res.Rescales))
	}
	ev := res.Rescales[0]
	if ev.FromPEs != 4 || ev.ToPEs != 2 {
		t.Errorf("rescale event %+v", ev)
	}
	if ev.Stats.Op != "shrink" {
		t.Errorf("stats op = %q", ev.Stats.Op)
	}
	// PEs recorded per iteration must drop after the rescale.
	if res.Iterations[0].PEs != 4 {
		t.Errorf("iter 0 ran on %d PEs", res.Iterations[0].PEs)
	}
	if last := res.Iterations[len(res.Iterations)-1]; last.PEs != 2 {
		t.Errorf("last iter ran on %d PEs", last.PEs)
	}
}

func TestRunnerStatus(t *testing.T) {
	rt := newRT(t, 2)
	r, err := NewJacobiRunner(rt, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(4); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.NumPEs != 2 || st.TotalIters != 4 {
		t.Errorf("Status = %+v", st)
	}
	if st.DoneFraction < 0.9 {
		t.Errorf("DoneFraction = %g", st.DoneFraction)
	}
}

func TestTimePerIteration(t *testing.T) {
	var r RunResult
	if r.TimePerIteration() != 0 {
		t.Error("empty result should report 0")
	}
	r.Iterations = []IterationRecord{{Elapsed: time.Second}}
	if r.TimePerIteration() != time.Second {
		t.Error("single-iteration mean wrong")
	}
	r.Iterations = append(r.Iterations,
		IterationRecord{Elapsed: 2 * time.Second},
		IterationRecord{Elapsed: 4 * time.Second})
	if got := r.TimePerIteration(); got != 3*time.Second {
		t.Errorf("mean = %v, want 3s (first iteration excluded)", got)
	}
}

func TestCheckpointBytesScalesWithGrid(t *testing.T) {
	rt := newRT(t, 2)
	small, err := NewJacobiRunner(rt, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := small.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	rt2 := newRT(t, 2)
	big, err := NewJacobiRunner(rt2, 64, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := big.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bb <= sb {
		t.Errorf("checkpoint bytes %d (64²) <= %d (16²)", bb, sb)
	}
	if rt.Store().Len() != 0 || rt2.Store().Len() != 0 {
		t.Error("probe checkpoints not cleaned up")
	}
}

func TestBlockSpanCoversGrid(t *testing.T) {
	for _, n := range []int{7, 16, 33} {
		for _, k := range []int{1, 2, 3, 5} {
			total := 0
			for i := 0; i < k; i++ {
				s := blockSpan(n, k, i)
				if s <= 0 {
					t.Errorf("blockSpan(%d,%d,%d) = %d", n, k, i, s)
				}
				total += s
			}
			if total != n {
				t.Errorf("blockSpan(%d,%d) covers %d cells", n, k, total)
			}
		}
	}
}

func TestMDCellNeighbors(t *testing.T) {
	c := &mdCell{KX: 3, KY: 3, KZ: 3, X: 1, Y: 1, Z: 1}
	if got := len(c.neighbors()); got != 26 {
		t.Errorf("center cell has %d neighbors, want 26", got)
	}
	corner := &mdCell{KX: 3, KY: 3, KZ: 3, X: 0, Y: 0, Z: 0}
	if got := len(corner.neighbors()); got != 7 {
		t.Errorf("corner cell has %d neighbors, want 7", got)
	}
}

func TestLJForceProperties(t *testing.T) {
	// Beyond cutoff: zero.
	if fx, fy, fz := ljForce(0, 0, 0, 3, 0, 0); fx != 0 || fy != 0 || fz != 0 {
		t.Error("force beyond cutoff nonzero")
	}
	// Identical positions: zero (guard).
	if fx, _, _ := ljForce(1, 1, 1, 1, 1, 1); fx != 0 {
		t.Error("force at zero distance nonzero")
	}
	// At r slightly above sigma the force should be repulsive... at
	// r = 1.0·sigma LJ force is repulsive (positive along separation).
	fx, _, _ := ljForce(1.0, 0, 0, 0, 0, 0)
	if fx <= 0 {
		t.Errorf("force at r=sigma should repel, got %g", fx)
	}
	// At r = 2.0 sigma the force is attractive.
	fx, _, _ = ljForce(2.0, 0, 0, 0, 0, 0)
	if fx >= 0 {
		t.Errorf("force at r=2sigma should attract, got %g", fx)
	}
	// Newton's third law: F(a,b) = -F(b,a).
	ax, ay, az := ljForce(0.3, 0.2, 0.7, 1.1, 0.9, 0.4)
	bx, by, bz := ljForce(1.1, 0.9, 0.4, 0.3, 0.2, 0.7)
	if math.Abs(ax+bx) > 1e-12 || math.Abs(ay+by) > 1e-12 || math.Abs(az+bz) > 1e-12 {
		t.Error("LJ force violates Newton's third law")
	}
}

func TestJacobiBlockPupRoundTrip(t *testing.T) {
	b := &jacobiBlock{
		N: 16, BX: 2, BY: 2, X: 1, Y: 0, W: 8, H: 8, Boundary: 1,
		Iter: 7, Cur: make([]float64, 100), Next: make([]float64, 100),
	}
	b.Cur[55] = 3.25
	data, err := pup.Pack(b)
	if err != nil {
		t.Fatal(err)
	}
	out := &jacobiBlock{}
	if err := pup.Unpack(out, data); err != nil {
		t.Fatal(err)
	}
	if out.Iter != 7 || out.Cur[55] != 3.25 || out.haloNeeded != b.countNeighbors() {
		t.Errorf("round trip: %+v", out)
	}
	if out.pendHalos == nil {
		t.Error("pendHalos not reconstructed")
	}
}

func TestMDCellPupRoundTrip(t *testing.T) {
	c := &mdCell{KX: 2, KY: 2, KZ: 2, X: 1, Y: 1, Z: 1, CellSize: 2.5,
		Iter: 3, Pos: []float64{1, 2, 3}, Vel: []float64{0.1, 0.2, 0.3}}
	data, err := pup.Pack(c)
	if err != nil {
		t.Fatal(err)
	}
	out := &mdCell{}
	if err := pup.Unpack(out, data); err != nil {
		t.Fatal(err)
	}
	if out.Iter != 3 || out.Pos[2] != 3 || out.Vel[1] != 0.2 {
		t.Errorf("round trip: %+v", out)
	}
	if out.needed != len(out.neighbors()) {
		t.Errorf("needed = %d", out.needed)
	}
}
