// Package apps implements the paper's two evaluation applications on the
// charm runtime: Jacobi2D, a communication-intensive 2D steady-state heat
// solver, and LeanMD, a compute-intensive Lennard-Jones molecular dynamics
// mini-app (paper §4.1). Both are overdecomposed into chare arrays, are
// fully Pup-able (hence migratable and rescalable), and drive their
// iteration loops through reductions so the runtime can rescale at
// iteration boundaries.
package apps

import (
	"fmt"
	"math"

	"elastichpc/internal/charm"
	"elastichpc/internal/pup"
)

// Jacobi entry-method indices (must match the RegisterType order).
const (
	jacobiEpInit = iota
	jacobiEpIterate
	jacobiEpHalo
)

// Halo tags name the ghost region of the *receiver* that the strip fills.
const (
	ghostTop = iota
	ghostBottom
	ghostLeft
	ghostRight
)

// JacobiTypeName is the registered chare type for Jacobi blocks.
const JacobiTypeName = "apps.jacobi2d"

// jacobiBlock is one chare: a rectangular block of the global grid plus one
// ghost cell on each side.
type jacobiBlock struct {
	// Geometry (set at init, constant thereafter).
	N        int // global grid dimension (N×N)
	BX, BY   int // chare grid dimensions
	X, Y     int // this block's coordinates in the chare grid
	W, H     int // interior width/height of this block
	Boundary float64

	// State.
	Iter int
	Cur  []float64 // (W+2)×(H+2) including ghosts
	Next []float64

	// Transient per-iteration bookkeeping (pup-ed for completeness; empty
	// at iteration boundaries where rescaling happens).
	started    bool
	pendHalos  map[int][]haloMsg // iteration -> received halos
	haloNeeded int
}

// haloMsg is one received ghost strip.
type haloMsg struct {
	Dir  int
	Data []float64
}

// Pup implements charm.Chare.
func (b *jacobiBlock) Pup(p *pup.PUP) {
	p.Int(&b.N)
	p.Int(&b.BX)
	p.Int(&b.BY)
	p.Int(&b.X)
	p.Int(&b.Y)
	p.Int(&b.W)
	p.Int(&b.H)
	p.Float64(&b.Boundary)
	p.Int(&b.Iter)
	p.Float64s(&b.Cur)
	p.Float64s(&b.Next)
	// Rescales happen at iteration boundaries where transient state is
	// empty, so it is reconstructed rather than serialized.
	if p.IsUnpacking() {
		b.pendHalos = make(map[int][]haloMsg)
		b.haloNeeded = b.countNeighbors()
	}
}

func (b *jacobiBlock) countNeighbors() int {
	n := 0
	if b.Y > 0 {
		n++
	}
	if b.Y < b.BY-1 {
		n++
	}
	if b.X > 0 {
		n++
	}
	if b.X < b.BX-1 {
		n++
	}
	return n
}

func (b *jacobiBlock) idx(i, j int) int { return j*(b.W+2) + i }

// jacobiInitPayload carries the block geometry for jacobiEpInit.
type jacobiInitPayload struct {
	N, BX, BY int
	Boundary  float64
}

func (m *jacobiInitPayload) Pup(p *pup.PUP) {
	p.Int(&m.N)
	p.Int(&m.BX)
	p.Int(&m.BY)
	p.Float64(&m.Boundary)
}

// jacobiHaloPayload is the wire form of a halo exchange message.
type jacobiHaloPayload struct {
	Iter int
	Dir  int
	Data []float64
}

func (m *jacobiHaloPayload) Pup(p *pup.PUP) {
	p.Int(&m.Iter)
	p.Int(&m.Dir)
	p.Float64s(&m.Data)
}

func mustPack(obj pup.Pupable) []byte {
	data, err := pup.Pack(obj)
	if err != nil {
		panic(fmt.Sprintf("apps: pack: %v", err))
	}
	return data
}

func init() {
	charm.RegisterType(JacobiTypeName, func() charm.Chare { return &jacobiBlock{} }, []charm.Entry{
		{Name: "init", Fn: jacobiInit},
		{Name: "iterate", Fn: jacobiIterate},
		{Name: "halo", Fn: jacobiHalo},
	})
}

func jacobiInit(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	b := obj.(*jacobiBlock)
	var msg jacobiInitPayload
	if err := pup.Unpack(&msg, data); err != nil {
		panic(err)
	}
	b.N, b.BX, b.BY, b.Boundary = msg.N, msg.BX, msg.BY, msg.Boundary
	b.X = ctx.Index % b.BX
	b.Y = ctx.Index / b.BX
	b.W = blockSpan(b.N, b.BX, b.X)
	b.H = blockSpan(b.N, b.BY, b.Y)
	b.Cur = make([]float64, (b.W+2)*(b.H+2))
	b.Next = make([]float64, (b.W+2)*(b.H+2))
	b.Iter = 0
	b.pendHalos = make(map[int][]haloMsg)
	b.haloNeeded = b.countNeighbors()
	// Fixed boundary condition: the global top edge is held at Boundary,
	// everything else starts at 0.
	if b.Y == 0 {
		for i := 0; i < b.W+2; i++ {
			b.Cur[b.idx(i, 0)] = b.Boundary
			b.Next[b.idx(i, 0)] = b.Boundary
		}
	}
	ctx.Contribute([]float64{0}, charm.ReduceSum) // init barrier
}

// blockSpan divides n cells over k blocks, giving block i its share.
func blockSpan(n, k, i int) int {
	lo := i * n / k
	hi := (i + 1) * n / k
	return hi - lo
}

func jacobiIterate(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	b := obj.(*jacobiBlock)
	b.started = true
	b.sendHalos(ctx)
	b.tryCompute(ctx)
}

func jacobiHalo(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	b := obj.(*jacobiBlock)
	var msg jacobiHaloPayload
	if err := pup.Unpack(&msg, data); err != nil {
		panic(err)
	}
	b.pendHalos[msg.Iter] = append(b.pendHalos[msg.Iter], haloMsg{Dir: msg.Dir, Data: msg.Data})
	b.tryCompute(ctx)
}

func (b *jacobiBlock) neighborIndex(dx, dy int) int {
	return (b.Y+dy)*b.BX + (b.X + dx)
}

func (b *jacobiBlock) sendHalos(ctx *charm.Ctx) {
	// Interior rows/cols of Cur become the neighbor's ghost cells: our top
	// row fills the bottom ghost of the block above us, and so on.
	if b.Y > 0 {
		row := make([]float64, b.W)
		for i := 0; i < b.W; i++ {
			row[i] = b.Cur[b.idx(i+1, 1)]
		}
		ctx.Send(ctx.Array, b.neighborIndex(0, -1), jacobiEpHalo,
			mustPack(&jacobiHaloPayload{Iter: b.Iter, Dir: ghostBottom, Data: row}))
	}
	if b.Y < b.BY-1 {
		row := make([]float64, b.W)
		for i := 0; i < b.W; i++ {
			row[i] = b.Cur[b.idx(i+1, b.H)]
		}
		ctx.Send(ctx.Array, b.neighborIndex(0, 1), jacobiEpHalo,
			mustPack(&jacobiHaloPayload{Iter: b.Iter, Dir: ghostTop, Data: row}))
	}
	if b.X > 0 {
		col := make([]float64, b.H)
		for j := 0; j < b.H; j++ {
			col[j] = b.Cur[b.idx(1, j+1)]
		}
		ctx.Send(ctx.Array, b.neighborIndex(-1, 0), jacobiEpHalo,
			mustPack(&jacobiHaloPayload{Iter: b.Iter, Dir: ghostRight, Data: col}))
	}
	if b.X < b.BX-1 {
		col := make([]float64, b.H)
		for j := 0; j < b.H; j++ {
			col[j] = b.Cur[b.idx(b.W, j+1)]
		}
		ctx.Send(ctx.Array, b.neighborIndex(1, 0), jacobiEpHalo,
			mustPack(&jacobiHaloPayload{Iter: b.Iter, Dir: ghostLeft, Data: col}))
	}
}

// tryCompute runs the stencil once the iterate signal and all halos for the
// current iteration have arrived.
func (b *jacobiBlock) tryCompute(ctx *charm.Ctx) {
	if !b.started || len(b.pendHalos[b.Iter]) < b.haloNeeded {
		return
	}
	for _, h := range b.pendHalos[b.Iter] {
		b.applyHalo(h)
	}
	delete(b.pendHalos, b.Iter)

	var maxDelta float64
	for j := 1; j <= b.H; j++ {
		for i := 1; i <= b.W; i++ {
			v := 0.25 * (b.Cur[b.idx(i-1, j)] + b.Cur[b.idx(i+1, j)] +
				b.Cur[b.idx(i, j-1)] + b.Cur[b.idx(i, j+1)])
			d := math.Abs(v - b.Cur[b.idx(i, j)])
			if d > maxDelta {
				maxDelta = d
			}
			b.Next[b.idx(i, j)] = v
		}
	}
	// Preserve the fixed top boundary.
	if b.Y == 0 {
		for i := 0; i < b.W+2; i++ {
			b.Next[b.idx(i, 0)] = b.Boundary
		}
	}
	b.Cur, b.Next = b.Next, b.Cur
	b.Iter++
	b.started = false
	ctx.Contribute([]float64{maxDelta}, charm.ReduceMax)
}

func (b *jacobiBlock) applyHalo(h haloMsg) {
	switch h.Dir {
	case ghostTop: // from the block above: fill our top ghost row
		for i, v := range h.Data {
			b.Cur[b.idx(i+1, 0)] = v
		}
	case ghostBottom: // from the block below: bottom ghost row
		for i, v := range h.Data {
			b.Cur[b.idx(i+1, b.H+1)] = v
		}
	case ghostLeft: // from the block to our left: left ghost col
		for j, v := range h.Data {
			b.Cur[b.idx(0, j+1)] = v
		}
	case ghostRight: // from the block to our right: right ghost col
		for j, v := range h.Data {
			b.Cur[b.idx(b.W+1, j+1)] = v
		}
	}
}
