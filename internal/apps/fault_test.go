package apps

import (
	"math"
	"testing"

	"elastichpc/internal/charm"
	"elastichpc/internal/shm"
)

// TestFaultToleranceCheckpointRestart exercises the paper's §3.2.2 fault
// tolerance path: checkpoint mid-run, "lose" the runtime, restart a fresh
// one from the checkpoint, and verify the final answer matches an
// uninterrupted run exactly.
func TestFaultToleranceCheckpointRestart(t *testing.T) {
	const n, half = 16, 15

	// Reference: 2×half iterations without interruption.
	ref := newRT(t, 4)
	rref, err := NewJacobiRunner(ref, n, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := rref.Run(2 * half)
	if err != nil {
		t.Fatal(err)
	}

	// Shared store survives the "node failure" (in the paper this is disk;
	// here the store simply outlives the runtime instance).
	store := shm.NewStore(0)

	rt1, err := charm.New(charm.Config{PEs: 4, Store: store, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewJacobiRunner(rt1, n, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(half); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Checkpoint("ft/job1"); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Simulate more progress after the checkpoint, then a crash: the
	// post-checkpoint work is lost.
	if _, err := r1.Run(7); err != nil {
		t.Fatal(err)
	}
	rt1.Shutdown() // node dies

	// Restart: fresh runtime on the same store, restore, resume.
	rt2, err := charm.New(charm.Config{PEs: 4, Store: store, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Shutdown)
	r2, err := NewJacobiRunner(rt2, n, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore("ft/job1"); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	res, err := r2.Run(half)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalValue-refRes.FinalValue) > 1e-15 {
		t.Errorf("restarted run residual %.17g != uninterrupted %.17g", res.FinalValue, refRes.FinalValue)
	}
}

// TestRestoreOnDifferentPECount restores a checkpoint into a runtime with a
// different PE count — the failure-recovery remap path in restore().
func TestRestoreOnDifferentPECount(t *testing.T) {
	const n = 16
	store := shm.NewStore(0)
	rt1, err := charm.New(charm.Config{PEs: 8, Store: store, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewJacobiRunner(rt1, n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(10); err != nil {
		t.Fatal(err)
	}
	refRes, err := r1.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Checkpoint("ft/remap"); err != nil {
		t.Fatal(err)
	}
	rt1.Shutdown()

	// Fewer PEs than the checkpoint was taken on: segments from PEs >= 3
	// remap onto the smaller incarnation.
	rt2, err := charm.New(charm.Config{PEs: 3, Store: store, RestartLatency: charm.ZeroRestartLatency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Shutdown)
	r2, err := NewJacobiRunner(rt2, n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore("ft/remap"); err != nil {
		t.Fatalf("Restore onto fewer PEs: %v", err)
	}
	// The restored state is at iteration 20; continuing must work and the
	// residual must keep decreasing from the checkpointed value.
	res, err := r2.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValue >= refRes.FinalValue {
		t.Errorf("residual did not decrease after restore: %g -> %g", refRes.FinalValue, res.FinalValue)
	}
}
