package apps

import (
	"math"

	"elastichpc/internal/charm"
	"elastichpc/internal/pup"
)

// LeanMD entry-method indices.
const (
	mdEpInit = iota
	mdEpIterate
	mdEpAtoms
)

// LeanMDTypeName is the registered chare type for LeanMD cells.
const LeanMDTypeName = "apps.leanmd"

// Lennard-Jones parameters (reduced units) and integration step.
const (
	ljEpsilon = 1.0
	ljSigma   = 1.0
	ljCutoff  = 2.5
	mdDt      = 1e-4
)

// mdCell is one chare: a spatial cell holding atoms that interact via the
// Lennard-Jones potential with atoms in the same and neighboring cells
// (paper §4.1: "simulates atoms considering only the Lennard-Jones
// potential"; compute-intensive).
type mdCell struct {
	// Geometry.
	KX, KY, KZ int // cell grid dimensions
	X, Y, Z    int // this cell's coordinates
	CellSize   float64

	// State: atom positions and velocities, flattened xyz triples.
	Iter int
	Pos  []float64
	Vel  []float64

	// Transient.
	started   bool
	pendAtoms map[int][][]float64 // iteration -> neighbor atom positions
	needed    int
}

// Pup implements charm.Chare.
func (c *mdCell) Pup(p *pup.PUP) {
	p.Int(&c.KX)
	p.Int(&c.KY)
	p.Int(&c.KZ)
	p.Int(&c.X)
	p.Int(&c.Y)
	p.Int(&c.Z)
	p.Float64(&c.CellSize)
	p.Int(&c.Iter)
	p.Float64s(&c.Pos)
	p.Float64s(&c.Vel)
	if p.IsUnpacking() {
		c.pendAtoms = make(map[int][][]float64)
		c.needed = len(c.neighbors())
	}
}

// neighbors returns the linear indices of the up-to-26 neighboring cells.
func (c *mdCell) neighbors() []int {
	var out []int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				x, y, z := c.X+dx, c.Y+dy, c.Z+dz
				if x < 0 || x >= c.KX || y < 0 || y >= c.KY || z < 0 || z >= c.KZ {
					continue
				}
				out = append(out, (z*c.KY+y)*c.KX+x)
			}
		}
	}
	return out
}

// mdInitPayload configures a cell at creation.
type mdInitPayload struct {
	KX, KY, KZ   int
	AtomsPerCell int
	CellSize     float64
	Seed         int64
}

func (m *mdInitPayload) Pup(p *pup.PUP) {
	p.Int(&m.KX)
	p.Int(&m.KY)
	p.Int(&m.KZ)
	p.Int(&m.AtomsPerCell)
	p.Float64(&m.CellSize)
	p.Int64(&m.Seed)
}

// mdAtomsPayload carries neighbor atom positions for one iteration.
type mdAtomsPayload struct {
	Iter int
	Pos  []float64
}

func (m *mdAtomsPayload) Pup(p *pup.PUP) {
	p.Int(&m.Iter)
	p.Float64s(&m.Pos)
}

func init() {
	charm.RegisterType(LeanMDTypeName, func() charm.Chare { return &mdCell{} }, []charm.Entry{
		{Name: "init", Fn: mdInit},
		{Name: "iterate", Fn: mdIterate},
		{Name: "atoms", Fn: mdAtoms},
	})
}

// splitmix64 provides deterministic per-cell pseudo-random atom placement
// without importing math/rand into chare state.
func splitmix64(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func mdInit(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	c := obj.(*mdCell)
	var msg mdInitPayload
	if err := pup.Unpack(&msg, data); err != nil {
		panic(err)
	}
	c.KX, c.KY, c.KZ = msg.KX, msg.KY, msg.KZ
	c.CellSize = msg.CellSize
	c.X = ctx.Index % c.KX
	c.Y = (ctx.Index / c.KX) % c.KY
	c.Z = ctx.Index / (c.KX * c.KY)
	c.Iter = 0
	c.Pos = make([]float64, 0, msg.AtomsPerCell*3)
	c.Vel = make([]float64, msg.AtomsPerCell*3)
	state := uint64(msg.Seed) ^ uint64(ctx.Index)*0x9e3779b97f4a7c15
	ox := float64(c.X) * c.CellSize
	oy := float64(c.Y) * c.CellSize
	oz := float64(c.Z) * c.CellSize
	for a := 0; a < msg.AtomsPerCell; a++ {
		c.Pos = append(c.Pos,
			ox+splitmix64(&state)*c.CellSize,
			oy+splitmix64(&state)*c.CellSize,
			oz+splitmix64(&state)*c.CellSize)
	}
	c.pendAtoms = make(map[int][][]float64)
	c.needed = len(c.neighbors())
	ctx.Contribute([]float64{0}, charm.ReduceSum)
}

func mdIterate(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	c := obj.(*mdCell)
	c.started = true
	payload := mustPack(&mdAtomsPayload{Iter: c.Iter, Pos: c.Pos})
	for _, nb := range c.neighbors() {
		ctx.Send(ctx.Array, nb, mdEpAtoms, payload)
	}
	c.tryCompute(ctx)
}

func mdAtoms(obj charm.Chare, ctx *charm.Ctx, data []byte) {
	c := obj.(*mdCell)
	var msg mdAtomsPayload
	if err := pup.Unpack(&msg, data); err != nil {
		panic(err)
	}
	c.pendAtoms[msg.Iter] = append(c.pendAtoms[msg.Iter], msg.Pos)
	c.tryCompute(ctx)
}

func (c *mdCell) tryCompute(ctx *charm.Ctx) {
	if !c.started || len(c.pendAtoms[c.Iter]) < c.needed {
		return
	}
	neighborPos := c.pendAtoms[c.Iter]
	delete(c.pendAtoms, c.Iter)

	n := len(c.Pos) / 3
	forces := make([]float64, len(c.Pos))
	// Own-cell pairwise interactions.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fx, fy, fz := ljForce(
				c.Pos[i*3], c.Pos[i*3+1], c.Pos[i*3+2],
				c.Pos[j*3], c.Pos[j*3+1], c.Pos[j*3+2])
			forces[i*3] += fx
			forces[i*3+1] += fy
			forces[i*3+2] += fz
			forces[j*3] -= fx
			forces[j*3+1] -= fy
			forces[j*3+2] -= fz
		}
	}
	// Interactions with neighbor-cell atoms.
	var kinetic float64
	for _, np := range neighborPos {
		m := len(np) / 3
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				fx, fy, fz := ljForce(
					c.Pos[i*3], c.Pos[i*3+1], c.Pos[i*3+2],
					np[j*3], np[j*3+1], np[j*3+2])
				forces[i*3] += fx
				forces[i*3+1] += fy
				forces[i*3+2] += fz
			}
		}
	}
	// Velocity-Verlet-ish integration (single half step is enough for a
	// mini-app; the compute kernel is the point).
	for i := 0; i < len(c.Pos); i++ {
		c.Vel[i] += forces[i] * mdDt
		c.Pos[i] += c.Vel[i] * mdDt
		kinetic += 0.5 * c.Vel[i] * c.Vel[i]
	}
	c.Iter++
	c.started = false
	ctx.Contribute([]float64{kinetic}, charm.ReduceSum)
}

// ljForce computes the Lennard-Jones force on atom a from atom b, truncated
// at the cutoff radius.
func ljForce(ax, ay, az, bx, by, bz float64) (fx, fy, fz float64) {
	dx, dy, dz := ax-bx, ay-by, az-bz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= ljCutoff*ljCutoff || r2 == 0 {
		return 0, 0, 0
	}
	// Clamp to avoid numeric blow-up when random initial placement puts
	// two atoms on top of each other.
	const minR2 = 0.64 * ljSigma * ljSigma
	if r2 < minR2 {
		r2 = minR2
	}
	inv2 := ljSigma * ljSigma / r2
	inv6 := inv2 * inv2 * inv2
	// F = 24ε/r² · (2·(σ/r)¹² − (σ/r)⁶) · r⃗
	f := 24 * ljEpsilon / r2 * (2*inv6*inv6 - inv6)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, 0, 0
	}
	return f * dx, f * dy, f * dz
}
