package apps

import (
	"testing"

	"elastichpc/internal/ccs"
)

// TestEvolvingJobRescalesItself exercises the paper's §6 "evolving jobs"
// extension: the application rescales from internal criteria without any
// external CCS trigger.
func TestEvolvingJobRescalesItself(t *testing.T) {
	rt := newRT(t, 8)
	r, err := NewJacobiRunner(rt, 16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.LBPeriod = 5
	// Policy: run the first half wide, then shrink to 2 PEs (e.g. the
	// refined region of a numerical solver contracted).
	r.Evolve = func(st ccs.StatusReply) int {
		if st.DoneFraction >= 0.5 {
			return 2
		}
		return st.NumPEs
	}
	res, err := r.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 2 {
		t.Fatalf("NumPEs = %d after evolving shrink, want 2", rt.NumPEs())
	}
	if len(res.Rescales) != 1 {
		t.Fatalf("recorded %d rescales, want 1", len(res.Rescales))
	}
	if ev := res.Rescales[0]; ev.FromPEs != 8 || ev.ToPEs != 2 {
		t.Errorf("rescale event %+v", ev)
	}
}

// TestEvolvingJobGrows evolves upward and verifies the expand path.
func TestEvolvingJobGrows(t *testing.T) {
	rt := newRT(t, 2)
	r, err := NewJacobiRunner(rt, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.LBPeriod = 5
	grown := false
	r.Evolve = func(st ccs.StatusReply) int {
		if !grown && st.Iteration >= 10 {
			grown = true
			return 6
		}
		return 0 // no change
	}
	if _, err := r.Run(25); err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 6 {
		t.Fatalf("NumPEs = %d after evolving expand, want 6", rt.NumPEs())
	}
}

// TestEvolveNoChangeKeepsAllocation returns the current PE count and
// verifies nothing rescales.
func TestEvolveNoChangeKeepsAllocation(t *testing.T) {
	rt := newRT(t, 4)
	r, err := NewJacobiRunner(rt, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.LBPeriod = 3
	r.Evolve = func(st ccs.StatusReply) int { return st.NumPEs }
	res, err := r.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rescales) != 0 {
		t.Errorf("evolving no-op rescaled %d times", len(res.Rescales))
	}
	if rt.NumPEs() != 4 {
		t.Errorf("NumPEs = %d", rt.NumPEs())
	}
}
