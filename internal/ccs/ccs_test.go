package ccs

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	s, addr := startServer(t)
	s.Handle("echo", func(p json.RawMessage) ([]byte, error) { return p, nil })

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	var out map[string]int
	if err := c.Call("echo", map[string]int{"x": 7}, &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out["x"] != 7 {
		t.Errorf("echo returned %v", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("no.such.cmd", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("Call unknown command: err = %v", err)
	}
}

func TestHandlerError(t *testing.T) {
	s, addr := startServer(t)
	s.Handle("boom", func(json.RawMessage) ([]byte, error) {
		return nil, errors.New("deliberate failure")
	})
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v", err)
	}
}

func TestShrinkExpandQueryHelpers(t *testing.T) {
	s, addr := startServer(t)
	var lastShrink, lastExpand atomic.Int64
	s.Handle(CmdShrink, func(p json.RawMessage) ([]byte, error) {
		var req RescaleRequest
		if err := json.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		lastShrink.Store(int64(req.NewPEs))
		return nil, nil
	})
	s.Handle(CmdExpand, func(p json.RawMessage) ([]byte, error) {
		var req RescaleRequest
		if err := json.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if len(req.Nodelist) != 2 {
			return nil, fmt.Errorf("nodelist has %d entries", len(req.Nodelist))
		}
		lastExpand.Store(int64(req.NewPEs))
		return nil, nil
	})
	s.Handle(CmdQuery, func(json.RawMessage) ([]byte, error) {
		return json.Marshal(StatusReply{NumPEs: 16, Iteration: 500, TotalIters: 1000, DoneFraction: 0.5})
	})

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Shrink(8); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if lastShrink.Load() != 8 {
		t.Errorf("server saw shrink to %d", lastShrink.Load())
	}
	if err := c.Expand(32, []string{"w0", "w1"}); err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if lastExpand.Load() != 32 {
		t.Errorf("server saw expand to %d", lastExpand.Load())
	}
	st, err := c.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if st.NumPEs != 16 || st.DoneFraction != 0.5 {
		t.Errorf("Query = %+v", st)
	}
}

func TestMultipleCallsSameConnection(t *testing.T) {
	s, addr := startServer(t)
	var n atomic.Int64
	s.Handle("count", func(json.RawMessage) ([]byte, error) {
		return json.Marshal(n.Add(1))
	})
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 5; i++ {
		var got int
		if err := c.Call("count", nil, &got); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != i {
			t.Errorf("call %d returned %d", i, got)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	s.Handle("echo", func(p json.RawMessage) ([]byte, error) { return p, nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				var out int
				if err := c.Call("echo", g*1000+i, &out); err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				if out != g*1000+i {
					t.Errorf("echo mismatch: %d", out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerCloseUnblocksDial(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Second close is safe.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := Dial(addr, 200*time.Millisecond); err == nil {
		t.Error("Dial succeeded after Close")
	}
}
