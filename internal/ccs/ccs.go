// Package ccs implements a Converse Client-Server style control channel.
// In Charm++, CCS lets an external program send commands to a running
// parallel application over a socket; the paper's scheduler uses it to
// deliver shrink and expand signals (§2.2, §3.1).
//
// The wire protocol is a 4-byte big-endian length prefix followed by a JSON
// frame. Handlers are registered by command name; each request gets exactly
// one reply.
package ccs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Well-known command names used by the elastic scheduler.
const (
	CmdShrink  = "charm.shrink"  // payload: RescaleRequest
	CmdExpand  = "charm.expand"  // payload: RescaleRequest
	CmdQuery   = "charm.query"   // payload: none; reply: StatusReply
	CmdListPEs = "charm.listpes" // payload: none; reply: []int
)

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 16 << 20

// Request is one CCS command frame.
type Request struct {
	Command string          `json:"cmd"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Reply is the server's response frame.
type Reply struct {
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// RescaleRequest asks the application to change its PE count.
type RescaleRequest struct {
	// NewPEs is the target number of PEs.
	NewPEs int `json:"newPEs"`
	// Nodelist optionally carries the updated worker list for an expand.
	Nodelist []string `json:"nodelist,omitempty"`
}

// StatusReply reports application progress, used by the cost/benefit
// extension (paper §6) to let the application decline a rescale.
type StatusReply struct {
	NumPEs        int     `json:"numPEs"`
	Iteration     int     `json:"iteration"`
	TotalIters    int     `json:"totalIters"`
	DoneFraction  float64 `json:"doneFraction"`
	ParallelEff   float64 `json:"parallelEff"`
	RescaleEvents int     `json:"rescaleEvents"`
}

// Handler processes one command. The returned bytes become Reply.Payload.
type Handler func(payload json.RawMessage) ([]byte, error)

// Server serves CCS requests for one application instance.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers h for the given command, replacing any previous handler.
func (s *Server) Handle(cmd string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[cmd] = h
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ccs: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.closed = false
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Command]
		s.mu.RUnlock()
		var rep Reply
		if !ok {
			rep = Reply{OK: false, Error: fmt.Sprintf("unknown command %q", req.Command)}
		} else if out, err := h(req.Payload); err != nil {
			rep = Reply{OK: false, Error: err.Error()}
		} else {
			rep = Reply{OK: true, Payload: out}
		}
		if err := writeFrame(conn, &rep); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a CCS client connection. Safe for sequential use; guard with a
// mutex if shared across goroutines.
type Client struct {
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a CCS server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ccs: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// Call sends a command with a JSON-marshalable payload and decodes the reply
// payload into out (if out is non-nil).
func (c *Client) Call(cmd string, payload any, out any) error {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("ccs: marshal payload: %w", err)
		}
		raw = b
	}
	if c.timeout > 0 {
		deadline := time.Now().Add(c.timeout)
		if err := c.conn.SetDeadline(deadline); err != nil {
			return fmt.Errorf("ccs: set deadline: %w", err)
		}
	}
	if err := writeFrame(c.conn, &Request{Command: cmd, Payload: raw}); err != nil {
		return err
	}
	var rep Reply
	if err := readFrame(c.conn, &rep); err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("ccs: server error: %s", rep.Error)
	}
	if out != nil && len(rep.Payload) > 0 {
		if err := json.Unmarshal(rep.Payload, out); err != nil {
			return fmt.Errorf("ccs: decode reply: %w", err)
		}
	}
	return nil
}

// Shrink asks the application to shrink to newPEs and waits for the ack.
func (c *Client) Shrink(newPEs int) error {
	return c.Call(CmdShrink, RescaleRequest{NewPEs: newPEs}, nil)
}

// Expand asks the application to expand to newPEs with the given nodelist.
func (c *Client) Expand(newPEs int, nodelist []string) error {
	return c.Call(CmdExpand, RescaleRequest{NewPEs: newPEs, Nodelist: nodelist}, nil)
}

// Query fetches application progress.
func (c *Client) Query() (StatusReply, error) {
	var st StatusReply
	err := c.Call(CmdQuery, nil, &st)
	return st, err
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ccs: marshal frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("ccs: frame too large: %d bytes", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ccs: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("ccs: write body: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return errors.New("ccs: frame exceeds size limit")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("ccs: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("ccs: decode frame: %w", err)
	}
	return nil
}
