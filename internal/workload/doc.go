// Package workload is the scenario engine shared by every execution
// backend: the discrete-event simulator (internal/sim), the full-stack
// cluster emulation (internal/cluster), and the cmd tools all consume the
// same Workload and AvailabilityTrace values, so one scenario definition
// can be generated once and replayed across harnesses.
//
// # Job scenarios
//
// The paper's evaluation (§4.3) uses a single workload shape — n jobs drawn
// uniformly from four size classes at a fixed submission gap; this package
// keeps that as the Uniform baseline and adds richer arrival processes
// (Poisson, flash-crowd bursts, diurnal cycles) plus trace replay with a
// JSON/CSV Save/Load round-trip for reproducible experiments.
//
// # Availability scenarios
//
// AvailabilityProfile is the capacity-side twin of Generator: profiles for
// node failure/repair (FailureRepair), spot preemption (SpotPreemption),
// maintenance drains (MaintenanceDrain), and diurnal capacity tides
// (DiurnalCapacity) generate reproducible AvailabilityTrace timelines that
// drive core.Scheduler.SetCapacity through both backends, with the same
// JSON/CSV trace persistence as job workloads.
//
// Every generator and profile is deterministic per seed: the same seed
// always yields an identical workload or trace, which is what makes
// parallel sweep execution bit-identical to sequential.
package workload
