package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"elastichpc/internal/model"
)

// Uniform is the paper's §4.3.1 baseline: n jobs drawn uniformly from the
// four size classes with uniform priorities in [1,5], submitted a fixed gap
// apart ("We pick 16 jobs randomly out of these 4 sizes with random
// priorities between 1 and 5"). Its draw order is the historical
// sim.RandomWorkload one, so seed-pinned workloads (e.g. Table 1's seed 7)
// are unchanged by the workload-engine refactor.
type Uniform struct {
	Jobs int
	Gap  float64 // seconds between submissions
}

// Name implements Generator.
func (g Uniform) Name() string { return "uniform" }

// Generate implements Generator. Like every generator it rejects degenerate
// parameters — n <= 0 jobs, or a negative or NaN gap — with an error rather
// than producing a silently empty or unordered workload.
func (g Uniform) Generate(seed int64) (Workload, error) {
	if g.Jobs <= 0 || !validGap(g.Gap) {
		return Workload{}, fmt.Errorf("workload: bad uniform params jobs=%d gap=%g", g.Jobs, g.Gap)
	}
	rng := rand.New(rand.NewSource(seed))
	classes := model.AllClasses()
	var w Workload
	for i := 0; i < g.Jobs; i++ {
		w.Jobs = append(w.Jobs, JobSpec{
			ID:       fmt.Sprintf("job-%02d", i),
			Class:    classes[rng.Intn(len(classes))],
			Priority: 1 + rng.Intn(5),
			SubmitAt: float64(i) * g.Gap,
		})
	}
	return w, nil
}

// Poisson models memoryless arrivals: n jobs with exponentially distributed
// inter-arrival times of the given mean — the open-system traffic the paper's
// fixed-gap submissions approximate.
type Poisson struct {
	Jobs    int
	MeanGap float64 // mean inter-arrival, seconds
	Mix     Mix     // nil = uniform over the four classes
}

// Name implements Generator.
func (g Poisson) Name() string { return "poisson" }

// Generate implements Generator.
func (g Poisson) Generate(seed int64) (Workload, error) {
	if g.Jobs <= 0 || !validGap(g.MeanGap) {
		return Workload{}, fmt.Errorf("workload: bad poisson params n=%d mean=%g", g.Jobs, g.MeanGap)
	}
	mix := g.Mix.orUniform()
	rng := rand.New(rand.NewSource(seed))
	var w Workload
	at := 0.0
	for i := 0; i < g.Jobs; i++ {
		class, err := mix.draw(rng)
		if err != nil {
			return Workload{}, err
		}
		w.Jobs = append(w.Jobs, JobSpec{
			ID:       fmt.Sprintf("job-%02d", i),
			Class:    class,
			Priority: 1 + rng.Intn(5),
			SubmitAt: at,
		})
		at += rng.ExpFloat64() * g.MeanGap
	}
	return w, nil
}

// Burst models flash crowds: `Waves` bursts of `PerWave` simultaneous
// submissions, `WaveGap` seconds apart — the pattern that stresses the
// elastic policy's shrink path hardest.
type Burst struct {
	Waves   int
	PerWave int
	WaveGap float64
	Mix     Mix
}

// Name implements Generator.
func (g Burst) Name() string { return "burst" }

// Generate implements Generator.
func (g Burst) Generate(seed int64) (Workload, error) {
	if g.Waves <= 0 || g.PerWave <= 0 || !validGap(g.WaveGap) {
		return Workload{}, fmt.Errorf("workload: bad burst params waves=%d perwave=%d gap=%g",
			g.Waves, g.PerWave, g.WaveGap)
	}
	mix := g.Mix.orUniform()
	rng := rand.New(rand.NewSource(seed))
	var w Workload
	for wv := 0; wv < g.Waves; wv++ {
		for j := 0; j < g.PerWave; j++ {
			class, err := mix.draw(rng)
			if err != nil {
				return Workload{}, err
			}
			w.Jobs = append(w.Jobs, JobSpec{
				ID:       fmt.Sprintf("job-w%02d-%02d", wv, j),
				Class:    class,
				Priority: 1 + rng.Intn(5),
				SubmitAt: float64(wv) * g.WaveGap,
			})
		}
	}
	return w, nil
}

// Diurnal models a day/night cycle: arrivals follow a nonhomogeneous Poisson
// process whose mean inter-arrival swings between PeakGap (daytime rush,
// t = 0 mod Period) and OffPeakGap (overnight lull, half a period later) on a
// raised-cosine curve. Production clusters see exactly this shape; it probes
// how well each policy reclaims capacity when pressure ebbs.
type Diurnal struct {
	Jobs       int
	Period     float64 // seconds per full day/night cycle
	PeakGap    float64 // mean inter-arrival at peak load
	OffPeakGap float64 // mean inter-arrival in the trough
	Mix        Mix
}

// Name implements Generator.
func (g Diurnal) Name() string { return "diurnal" }

// Generate implements Generator.
func (g Diurnal) Generate(seed int64) (Workload, error) {
	if g.Jobs <= 0 || g.Period <= 0 || g.PeakGap <= 0 || g.OffPeakGap < g.PeakGap ||
		!validGap(g.Period) || !validGap(g.PeakGap) || !validGap(g.OffPeakGap) {
		return Workload{}, fmt.Errorf("workload: bad diurnal params jobs=%d period=%g peak=%g offpeak=%g",
			g.Jobs, g.Period, g.PeakGap, g.OffPeakGap)
	}
	mix := g.Mix.orUniform()
	rng := rand.New(rand.NewSource(seed))
	var w Workload
	at := 0.0
	for i := 0; i < g.Jobs; i++ {
		class, err := mix.draw(rng)
		if err != nil {
			return Workload{}, err
		}
		w.Jobs = append(w.Jobs, JobSpec{
			ID:       fmt.Sprintf("job-%02d", i),
			Class:    class,
			Priority: 1 + rng.Intn(5),
			SubmitAt: at,
		})
		// load = 1 at the start of each period (peak), 0 half a period in.
		load := (1 + math.Cos(2*math.Pi*at/g.Period)) / 2
		mean := g.PeakGap*load + g.OffPeakGap*(1-load)
		at += rng.ExpFloat64() * mean
	}
	return w, nil
}

// Trace replays a workload saved with SaveFile (JSON or CSV by extension).
// Generate ignores the seed — a replay is the same jobs every time, which is
// the point: experiments become shareable artifacts.
type Trace struct {
	Path string
}

// Name implements Generator.
func (g Trace) Name() string { return "trace" }

// Generate implements Generator.
func (g Trace) Generate(int64) (Workload, error) {
	if g.Path == "" {
		return Workload{}, fmt.Errorf("workload: trace generator needs a path")
	}
	return LoadFile(g.Path)
}

// validGap reports whether a submission-gap parameter is usable: finite-or-
// +Inf is rejected too, since an infinite gap never submits a second job.
func validGap(gap float64) bool {
	return gap >= 0 && !math.IsInf(gap, 1) && !math.IsNaN(gap)
}

// MustUniform is the panic-boundary form of the Uniform generator for
// callers that have already validated (or hard-code) their parameters:
// sim.RandomWorkload and the example programs. It panics with the underlying
// validation error on n <= 0 jobs or a negative/NaN gap; use
// Uniform.Generate directly to handle the error instead.
func MustUniform(jobs int, gap float64, seed int64) Workload {
	w, err := (Uniform{Jobs: jobs, Gap: gap}).Generate(seed)
	if err != nil {
		panic(fmt.Sprintf("workload: MustUniform(%d, %g, %d): %v", jobs, gap, seed, err))
	}
	return w
}

// fixed replays an in-memory workload under a scenario name.
type fixed struct {
	name string
	w    Workload
}

func (g fixed) Name() string                     { return g.name }
func (g fixed) Generate(int64) (Workload, error) { return g.w.Clone(), nil }

// Replay wraps an already-built workload as a Generator, so loaded traces and
// hand-built job sets drop into ScenarioSweep next to the synthetic scenarios.
func Replay(name string, w Workload) Generator { return fixed{name: name, w: w.Clone()} }

// DefaultScenarios returns the built-in scenario set at paper scale: every
// generator submits 16 jobs' worth of work so the scenarios are comparable to
// the §4.3 evaluation (the trace scenario is omitted — it needs a path; see
// Scenario).
func DefaultScenarios() []Generator {
	return []Generator{
		Uniform{Jobs: 16, Gap: 90},
		Poisson{Jobs: 16, MeanGap: 90},
		Burst{Waves: 4, PerWave: 4, WaveGap: 360},
		Diurnal{Jobs: 16, Period: 1440, PeakGap: 30, OffPeakGap: 300},
	}
}

// ScenarioNames lists the names accepted by Scenario, in display order.
func ScenarioNames() []string {
	var names []string
	for _, g := range DefaultScenarios() {
		names = append(names, g.Name())
	}
	names = append(names, "trace")
	sort.Strings(names)
	return names
}

// ScenarioGrids resolves a -scenario/-trace flag pair and returns the sorted
// distinct grid dimensions of the job classes its workload submits, plus a
// provenance tag for output headers. Benchmark CLIs use it to cover exactly
// the problem sizes a scenario will run.
func ScenarioGrids(name, tracePath string, seed int64) ([]int, string, error) {
	g, err := Scenario(name, tracePath)
	if err != nil {
		return nil, "", err
	}
	w, err := g.Generate(seed)
	if err != nil {
		return nil, "", err
	}
	specs := model.Specs()
	seen := map[int]bool{}
	for _, j := range w.Jobs {
		seen[specs[j.Class].Grid] = true
	}
	grids := make([]int, 0, len(seen))
	for n := range seen {
		grids = append(grids, n)
	}
	sort.Ints(grids)
	return grids, fmt.Sprintf("scenario %q seed %d", g.Name(), seed), nil
}

// MapGrids maps grid dimensions through a scaling transform, dropping
// non-positive results and collisions, and returns them sorted — the
// companion to ScenarioGrids for CLIs that shrink paper-size problems.
func MapGrids(raw []int, f func(int) int) []int {
	seen := map[int]bool{}
	var grids []int
	for _, n := range raw {
		if s := f(n); s > 0 && !seen[s] {
			seen[s] = true
			grids = append(grids, s)
		}
	}
	sort.Ints(grids)
	return grids
}

// Scenario resolves a -scenario flag value to a generator: one of the
// DefaultScenarios by name, or "trace" with the given trace path.
func Scenario(name, tracePath string) (Generator, error) {
	if name == "trace" {
		if tracePath == "" {
			return nil, fmt.Errorf("workload: scenario %q needs a trace path", name)
		}
		return Trace{Path: tracePath}, nil
	}
	for _, g := range DefaultScenarios() {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (have %s)", name, strings.Join(ScenarioNames(), ", "))
}
