package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestAvailabilityProfilesDeterministic(t *testing.T) {
	for _, p := range DefaultAvailabilityProfiles() {
		a, err := p.Events(42, 64, 7200)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		b, err := p.Events(42, 64, 7200)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", p.Name())
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: generated invalid trace: %v", p.Name(), err)
		}
	}
}

func TestAvailabilityProfilesValidate(t *testing.T) {
	bad := []AvailabilityProfile{
		FailureRepair{Nodes: 0, MTTF: 100, MTTR: 100},
		FailureRepair{Nodes: 4, MTTF: -1, MTTR: 100},
		SpotPreemption{MeanGap: 0, Slots: 8, MeanOutage: 100},
		SpotPreemption{MeanGap: 100, Slots: 0, MeanOutage: 100},
		MaintenanceDrain{Every: 0, Duration: 100, Keep: 8},
		MaintenanceDrain{Every: 100, Duration: 100, Keep: 0},
		DiurnalCapacity{Period: 0, Floor: 0.5, Step: 60},
		DiurnalCapacity{Period: 100, Floor: 0, Step: 60},
		AvailabilityTraceFile{},
	}
	for i, p := range bad {
		if _, err := p.Events(1, 64, 3600); err == nil {
			t.Errorf("profile %d (%T) accepted bad parameters", i, p)
		}
	}
}

func TestAvailabilityTraceValidate(t *testing.T) {
	cases := []AvailabilityTrace{
		{Events: []CapacityEvent{{At: -1, Capacity: 4}}},
		{Events: []CapacityEvent{{At: 100, Capacity: 4}, {At: 50, Capacity: 8}}},
		{Events: []CapacityEvent{{At: 10, Capacity: 0}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid trace %+v", i, tr)
		}
	}
	good := AvailabilityTrace{Events: []CapacityEvent{{At: 0, Capacity: 1}, {At: 0, Capacity: 64}}}
	if err := good.Validate(); err != nil {
		t.Errorf("rejected valid trace: %v", err)
	}
}

func TestAvailabilityTraceHelpers(t *testing.T) {
	tr := AvailabilityTrace{Events: []CapacityEvent{
		{At: 100, Capacity: 32},
		{At: 200, Capacity: 96},
		{At: 300, Capacity: 48},
	}}
	if got := tr.MaxCapacity(64); got != 96 {
		t.Errorf("MaxCapacity = %d, want 96", got)
	}
	if got := tr.Span(); got != 300 {
		t.Errorf("Span = %v, want 300", got)
	}
	for _, tc := range []struct {
		at   float64
		want int
	}{{0, 64}, {99, 64}, {100, 32}, {250, 96}, {300, 48}, {1e9, 48}} {
		if got := tr.CapacityAt(64, tc.at); got != tc.want {
			t.Errorf("CapacityAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}

	restored := tr.WithRestore(64, 500)
	if n := len(restored.Events); n != 4 || restored.Events[3] != (CapacityEvent{At: 500, Capacity: 64}) {
		t.Errorf("WithRestore = %+v", restored.Events)
	}
	if len(tr.Events) != 3 {
		t.Error("WithRestore mutated the receiver")
	}
	// Already at (or above) base: no event appended.
	if again := restored.WithRestore(64, 600); len(again.Events) != 4 {
		t.Errorf("WithRestore on restored trace appended: %+v", again.Events)
	}
	// Restore point before the last event slides just past it.
	early := tr.WithRestore(64, 10)
	if early.Events[3].At < 300 {
		t.Errorf("WithRestore slid to %v, want >= 300", early.Events[3].At)
	}
}

func TestDeltasMergeOverlappingOutages(t *testing.T) {
	// Two spot reclaims overlap; capacity must reflect the sum while both
	// are out and clamp at 1 rather than going non-positive.
	p := SpotPreemption{MeanGap: 10, Slots: 48, MeanOutage: 10000}
	tr, err := p.Events(1, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("overlapping outages produced invalid trace: %v", err)
	}
	last := tr.Events[len(tr.Events)-1].Capacity
	if last != 1 {
		t.Errorf("deep overlapping outages ended at capacity %d, want clamp at 1", last)
	}
}

func TestFailureRepairUnevenNodeSlots(t *testing.T) {
	// 5 nodes over 64 slots: 13,13,13,13,12 — losing all must clamp at 1,
	// and every repair must restore exactly what its failure took.
	p := FailureRepair{Nodes: 5, MTTF: 50, MTTR: 50}
	tr, err := p.Events(9, 64, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("short MTTF produced no events")
	}
	if max := tr.MaxCapacity(64); max != 64 {
		t.Errorf("repairs overshot base capacity: max %d", max)
	}
}

func TestDrainAndTidesDeterministicShape(t *testing.T) {
	dr, err := MaintenanceDrain{Every: 1000, Duration: 200, Keep: 16}.Events(7, 64, 2500)
	if err != nil {
		t.Fatal(err)
	}
	want := []CapacityEvent{
		{At: 1000, Capacity: 16}, {At: 1200, Capacity: 64},
		{At: 2000, Capacity: 16}, {At: 2200, Capacity: 64},
	}
	if !reflect.DeepEqual(dr.Events, want) {
		t.Errorf("drain events = %+v, want %+v", dr.Events, want)
	}

	td, err := DiurnalCapacity{Period: 1200, Floor: 0.5, Step: 100}.Events(7, 64, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Events) == 0 {
		t.Fatal("tides produced no events")
	}
	lo, hi := 64, 0
	for _, ev := range td.Events {
		if ev.Capacity < lo {
			lo = ev.Capacity
		}
		if ev.Capacity > hi {
			hi = ev.Capacity
		}
	}
	if lo < 32 || hi > 64 {
		t.Errorf("tides range [%d,%d], want within [32,64]", lo, hi)
	}
}

func TestAvailabilitySaveLoadRoundTrip(t *testing.T) {
	src, err := SpotPreemption{MeanGap: 300, Slots: 16, MeanOutage: 200}.Events(4, 64, 3600)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveAvailability(&buf, src, "test trace"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAvailability(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, back) {
		t.Errorf("JSON round trip diverged:\nsaved:  %+v\nloaded: %+v", src, back)
	}

	buf.Reset()
	if err := SaveAvailabilityCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err = LoadAvailabilityCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, back) {
		t.Errorf("CSV round trip diverged:\nsaved:  %+v\nloaded: %+v", src, back)
	}
}

func TestAvailabilityFileRoundTripByExtension(t *testing.T) {
	dir := t.TempDir()
	src := AvailabilityTrace{Events: []CapacityEvent{{At: 10, Capacity: 32}, {At: 20, Capacity: 64}}}
	for _, name := range []string{"trace.json", "trace.csv"} {
		path := filepath.Join(dir, name)
		if err := SaveAvailabilityFile(path, src, "ext test"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadAvailabilityFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(src, back) {
			t.Errorf("%s: round trip diverged", name)
		}
		// The trace-file profile replays what was saved.
		viaProfile, err := AvailabilityTraceFile{Path: path}.Events(99, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(src, viaProfile) {
			t.Errorf("%s: profile replay diverged", name)
		}
	}
}

func TestLoadAvailabilityValidates(t *testing.T) {
	cases := []string{
		`{"version": 99, "events": [{"at": 0, "capacity": 4}]}`,
		`{"version": 1, "events": []}`,
		`{"version": 1, "events": [{"at": -5, "capacity": 4}]}`,
		`{"version": 1, "events": [{"at": 5, "capacity": 0}]}`,
	}
	for i, doc := range cases {
		if _, err := LoadAvailability(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: accepted invalid document", i)
		}
	}
	// Out-of-order events are sorted on load, mirroring the job-trace
	// loader.
	tr, err := LoadAvailability(strings.NewReader(
		`{"version": 1, "events": [{"at": 50, "capacity": 8}, {"at": 10, "capacity": 4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].At != 10 || tr.Events[1].At != 50 {
		t.Errorf("events not sorted: %+v", tr.Events)
	}
}

func TestAvailabilityScenarioLookup(t *testing.T) {
	for _, name := range []string{"failures", "spot", "drain", "tides"} {
		p, err := AvailabilityScenario(name, AvailabilityOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("resolved %q to %q", name, p.Name())
		}
	}
	if _, err := AvailabilityScenario("nope", AvailabilityOptions{}); err == nil {
		t.Error("accepted unknown scenario")
	}
	if _, err := AvailabilityScenario("trace", AvailabilityOptions{}); err == nil {
		t.Error("accepted trace scenario without a path")
	}

	// Options rewire the built-in parameters.
	p, err := AvailabilityScenario("failures", AvailabilityOptions{MTTF: 123, MTTR: 45})
	if err != nil {
		t.Fatal(err)
	}
	fr := p.(FailureRepair)
	if fr.MTTF != 123 || fr.MTTR != 45 {
		t.Errorf("options not applied: %+v", fr)
	}
	p, err = AvailabilityScenario("spot", AvailabilityOptions{PreemptSlots: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sp := p.(SpotPreemption); sp.Slots != 7 {
		t.Errorf("preempt slots not applied: %+v", sp)
	}
}

func TestAvailabilityLevelsAndTransitions(t *testing.T) {
	p := MaintenanceDrain{Every: 500, Duration: 100, Keep: 16}
	levels, err := AvailabilityLevels(p, 1, 64, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(levels, []int{16, 64}) {
		t.Errorf("levels = %v, want [16 64]", levels)
	}
	trans, err := AvailabilityTransitions(p, 1, 64, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trans, [][2]int{{64, 16}, {16, 64}}) {
		t.Errorf("transitions = %v", trans)
	}
}

func TestReplayAvailabilityIsolatesCaller(t *testing.T) {
	src := AvailabilityTrace{Events: []CapacityEvent{{At: 1, Capacity: 8}}}
	p := ReplayAvailability("custom", src)
	src.Events[0].Capacity = 99
	got, err := p.Events(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Capacity != 8 {
		t.Error("ReplayAvailability aliased the caller's trace")
	}
	got.Events[0].Capacity = 77
	again, _ := p.Events(0, 0, 0)
	if again.Events[0].Capacity != 8 {
		t.Error("profile output aliases shared state")
	}
}
