package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"elastichpc/internal/model"
)

// allGenerators returns one small instance of every Generator implementation
// (the trace generator is exercised via Replay and the file round-trip tests).
func allGenerators(t *testing.T) []Generator {
	t.Helper()
	base, err := (Uniform{Jobs: 8, Gap: 60}).Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	return []Generator{
		Uniform{Jobs: 8, Gap: 60},
		Poisson{Jobs: 8, MeanGap: 60},
		Burst{Waves: 2, PerWave: 4, WaveGap: 240},
		Diurnal{Jobs: 8, Period: 600, PeakGap: 20, OffPeakGap: 120},
		Replay("replay", base),
	}
}

// Determinism: the same seed must yield an identical workload from every
// generator — the invariant the parallel sweep runner relies on.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range allGenerators(t) {
		for _, seed := range []int64{0, 1, 7, 42} {
			a, err := g.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name(), seed, err)
			}
			b, err := g.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name(), seed, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: seed %d produced two different workloads", g.Name(), seed)
			}
		}
	}
}

// The uniform generator is the historical sim.RandomWorkload; its draw order
// is pinned so seed-anchored experiments (Table 1 uses seed 7) survive
// refactors. This golden sample was produced by the pre-refactor
// sim.RandomWorkload(16, 90, 7).
func TestUniformGoldenSeed7(t *testing.T) {
	w, err := (Uniform{Jobs: 16, Gap: 90}).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 16 {
		t.Fatalf("%d jobs", len(w.Jobs))
	}
	want := []JobSpec{
		{ID: "job-00", Class: model.Large, Priority: 1, SubmitAt: 0},
		{ID: "job-01", Class: model.Medium, Priority: 4, SubmitAt: 90},
		{ID: "job-02", Class: model.Small, Priority: 4, SubmitAt: 180},
		{ID: "job-03", Class: model.Small, Priority: 3, SubmitAt: 270},
	}
	for i, exp := range want {
		if w.Jobs[i] != exp {
			t.Errorf("job %d: got %+v want %+v", i, w.Jobs[i], exp)
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	bad := []Generator{
		Uniform{Jobs: 0, Gap: 90},
		Uniform{Jobs: 4, Gap: -1},
		Poisson{Jobs: 0, MeanGap: 60},
		Burst{Waves: 0, PerWave: 4, WaveGap: 60},
		Burst{Waves: 2, PerWave: 0, WaveGap: 60},
		Diurnal{Jobs: 0, Period: 600, PeakGap: 20, OffPeakGap: 120},
		Diurnal{Jobs: 4, Period: 0, PeakGap: 20, OffPeakGap: 120},
		Diurnal{Jobs: 4, Period: 600, PeakGap: 120, OffPeakGap: 20},
		Trace{},
	}
	for _, g := range bad {
		if _, err := g.Generate(1); err == nil {
			t.Errorf("%s %+v: accepted bad params", g.Name(), g)
		}
	}
}

func TestPoissonMeanGap(t *testing.T) {
	w, err := (Poisson{Jobs: 400, MeanGap: 60}).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].SubmitAt < w.Jobs[i-1].SubmitAt {
			t.Fatal("arrivals not sorted")
		}
		sum += w.Jobs[i].SubmitAt - w.Jobs[i-1].SubmitAt
	}
	mean := sum / float64(len(w.Jobs)-1)
	if math.Abs(mean-60)/60 > 0.2 {
		t.Errorf("mean gap %.1f, want ~60", mean)
	}
}

func TestDiurnalDensityFollowsCycle(t *testing.T) {
	g := Diurnal{Jobs: 3000, Period: 1000, PeakGap: 1, OffPeakGap: 50}
	w, err := g.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the peak half vs the trough half of each period.
	var peak, trough int
	for _, j := range w.Jobs {
		phase := math.Mod(j.SubmitAt, g.Period) / g.Period
		if phase < 0.25 || phase >= 0.75 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= 2*trough {
		t.Errorf("diurnal arrivals not clustered at peaks: %d peak vs %d trough", peak, trough)
	}
}

func TestBurstWaveLayout(t *testing.T) {
	w, err := (Burst{Waves: 3, PerWave: 5, WaveGap: 300}).Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, j := range w.Jobs {
		counts[j.SubmitAt]++
	}
	if len(counts) != 3 || counts[0] != 5 || counts[300] != 5 || counts[600] != 5 {
		t.Errorf("wave layout %v", counts)
	}
}

func TestMixWeighting(t *testing.T) {
	w, err := (Poisson{Jobs: 50, MeanGap: 10, Mix: Mix{model.Large: 1}}).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.Class != model.Large {
			t.Fatalf("drew %v from a large-only mix", j.Class)
		}
	}
	if _, err := (Poisson{Jobs: 10, MeanGap: 10, Mix: Mix{}}).Generate(3); err == nil {
		t.Error("accepted empty mix")
	}
	if _, err := (Poisson{Jobs: 10, MeanGap: 10, Mix: Mix{model.Small: -1}}).Generate(3); err == nil {
		t.Error("accepted negative weight")
	}
}

// WithGap must deep-copy: respacing a sweep point must never mutate the
// shared base workload.
func TestWithGapDeepCopies(t *testing.T) {
	base, err := (Uniform{Jobs: 6, Gap: 90}).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	orig := base.Clone()
	re := base.WithGap(10)
	for i := range re.Jobs {
		re.Jobs[i].SubmitAt = -1
		re.Jobs[i].Priority = 99
	}
	if !reflect.DeepEqual(base, orig) {
		t.Error("WithGap result aliases the source workload")
	}
	if got := base.WithGap(10); got.Jobs[3].SubmitAt != 30 {
		t.Errorf("WithGap(10) job 3 at %g, want 30", got.Jobs[3].SubmitAt)
	}
	var empty Workload
	if got := empty.WithGap(10); got.Jobs != nil {
		t.Errorf("WithGap on empty workload: %+v", got)
	}
}

func TestSpan(t *testing.T) {
	w := Workload{Jobs: []JobSpec{{SubmitAt: 5}, {SubmitAt: 125}, {SubmitAt: 60}}}
	if got := w.Span(); got != 125 {
		t.Errorf("span %g", got)
	}
}

// Save/Load round-trip equality, JSON and CSV, for every generator.
func TestSaveLoadRoundTripAllGenerators(t *testing.T) {
	for _, g := range allGenerators(t) {
		w, err := g.Generate(21)
		if err != nil {
			t.Fatal(err)
		}
		var jbuf, cbuf bytes.Buffer
		if err := Save(&jbuf, w, "round trip"); err != nil {
			t.Fatalf("%s: Save: %v", g.Name(), err)
		}
		gotJSON, err := Load(&jbuf)
		if err != nil {
			t.Fatalf("%s: Load: %v", g.Name(), err)
		}
		if err := SaveCSV(&cbuf, w); err != nil {
			t.Fatalf("%s: SaveCSV: %v", g.Name(), err)
		}
		gotCSV, err := LoadCSV(&cbuf)
		if err != nil {
			t.Fatalf("%s: LoadCSV: %v", g.Name(), err)
		}
		// Load sorts stably by submit time; sort the original the same way
		// for comparison (generator output is already ordered except Burst,
		// which emits equal timestamps in stable order — both are no-ops).
		want := w.Clone()
		if !reflect.DeepEqual(gotJSON, want) {
			t.Errorf("%s: JSON round trip mismatch", g.Name())
		}
		if !reflect.DeepEqual(gotCSV, want) {
			t.Errorf("%s: CSV round trip mismatch", g.Name())
		}
	}
}

func TestSaveLoadFileByExtension(t *testing.T) {
	dir := t.TempDir()
	w, err := (Diurnal{Jobs: 5, Period: 600, PeakGap: 20, OffPeakGap: 120}).Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{dir + "/wl.json", dir + "/wl.csv"} {
		if err := SaveFile(path, w, "ext test"); err != nil {
			t.Fatalf("SaveFile %s: %v", path, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile %s: %v", path, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("%s: file round trip mismatch", path)
		}
	}
	if _, err := LoadFile(dir + "/missing.json"); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
	// A trace generator replays the saved file verbatim.
	got, err := (Trace{Path: dir + "/wl.csv"}).Generate(999)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Error("trace generator did not replay the saved workload")
	}
}

func TestLoadValidates(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version":99,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":0}]}`,
		"no jobs":       `{"version":1,"jobs":[]}`,
		"empty id":      `{"version":1,"jobs":[{"id":"","class":"small","priority":1,"submitAt":0}]}`,
		"dup id":        `{"version":1,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":0},{"id":"a","class":"small","priority":1,"submitAt":1}]}`,
		"bad class":     `{"version":1,"jobs":[{"id":"a","class":"gigantic","priority":1,"submitAt":0}]}`,
		"zero priority": `{"version":1,"jobs":[{"id":"a","class":"small","priority":0,"submitAt":0}]}`,
		"negative time": `{"version":1,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":-5}]}`,
		"not json":      `{{{`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted invalid document", name)
		}
	}
}

func TestLoadCSVValidates(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "id,class,priority\n",
		"bad prio":   "id,class,priority,submit_at\na,small,x,0\n",
		"bad time":   "id,class,priority,submit_at\na,small,1,zzz\n",
		"bad class":  "id,class,priority,submit_at\na,gigantic,1,0\n",
		"no rows":    "id,class,priority,submit_at\n",
	}
	for name, doc := range cases {
		if _, err := LoadCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: LoadCSV accepted invalid document", name)
		}
	}
}

func TestLoadSortsBySubmitTime(t *testing.T) {
	doc := `{"version":1,"jobs":[
		{"id":"late","class":"small","priority":1,"submitAt":100},
		{"id":"early","class":"medium","priority":2,"submitAt":10}]}`
	w, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[0].ID != "early" || w.Jobs[1].ID != "late" {
		t.Errorf("jobs not sorted: %+v", w.Jobs)
	}
}

func TestScenarioLookup(t *testing.T) {
	for _, name := range []string{"uniform", "poisson", "burst", "diurnal"} {
		g, err := Scenario(name, "")
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("Scenario(%q).Name() = %q", name, g.Name())
		}
		if _, err := g.Generate(1); err != nil {
			t.Errorf("default scenario %q does not generate: %v", name, err)
		}
	}
	if _, err := Scenario("trace", ""); err == nil {
		t.Error("trace scenario without a path accepted")
	}
	if _, err := Scenario("nope", ""); err == nil {
		t.Error("unknown scenario accepted")
	}
	g, err := Scenario("trace", "/tmp/x.json")
	if err != nil || g.Name() != "trace" {
		t.Errorf("trace scenario: %v %v", g, err)
	}
}

// Property: save→load is the identity for generated workloads.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		jobs := int(n%30) + 1
		w, err := (Uniform{Jobs: jobs, Gap: 45}).Generate(seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Save(&buf, w, ""); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || len(got.Jobs) != jobs {
			return false
		}
		return reflect.DeepEqual(got, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMustUniformPanicBoundary(t *testing.T) {
	w := MustUniform(4, 90, 7)
	if len(w.Jobs) != 4 {
		t.Fatalf("MustUniform produced %d jobs", len(w.Jobs))
	}
	for _, bad := range []func(){
		func() { MustUniform(0, 90, 7) },
		func() { MustUniform(-1, 90, 7) },
		func() { MustUniform(4, -1, 7) },
		func() { MustUniform(4, math.NaN(), 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("MustUniform accepted degenerate params")
				}
			}()
			bad()
		}()
	}
}

func TestGeneratorsRejectDegenerateGaps(t *testing.T) {
	cases := []Generator{
		Uniform{Jobs: 4, Gap: math.NaN()},
		Uniform{Jobs: 4, Gap: math.Inf(1)},
		Uniform{Jobs: 4, Gap: -1},
		Uniform{Jobs: 0, Gap: 90},
		Poisson{Jobs: 4, MeanGap: math.NaN()},
		Poisson{Jobs: 0, MeanGap: 90},
		Burst{Waves: 2, PerWave: 2, WaveGap: math.NaN()},
		Burst{Waves: 0, PerWave: 2, WaveGap: 90},
		Diurnal{Jobs: 4, Period: math.NaN(), PeakGap: 30, OffPeakGap: 300},
		Diurnal{Jobs: 4, Period: 900, PeakGap: math.NaN(), OffPeakGap: 300},
	}
	for i, g := range cases {
		if _, err := g.Generate(1); err == nil {
			t.Errorf("case %d (%T): degenerate params accepted", i, g)
		}
	}
	// Zero gaps stay legal: simultaneous submission is the contention case.
	if _, err := (Uniform{Jobs: 4, Gap: 0}).Generate(1); err != nil {
		t.Errorf("zero gap rejected: %v", err)
	}
}

func TestDiurnalRejectsInfiniteGaps(t *testing.T) {
	cases := []Diurnal{
		{Jobs: 4, Period: math.Inf(1), PeakGap: 30, OffPeakGap: 300},
		{Jobs: 4, Period: 900, PeakGap: math.Inf(1), OffPeakGap: math.Inf(1)},
		{Jobs: 4, Period: 900, PeakGap: 30, OffPeakGap: math.Inf(1)},
	}
	for i, g := range cases {
		if _, err := g.Generate(1); err == nil {
			t.Errorf("case %d: infinite gap accepted", i)
		}
	}
}
