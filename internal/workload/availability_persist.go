package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// AvailabilityDocument is the serialized JSON capacity-trace format,
// mirroring the job-trace Document (version 1).
type AvailabilityDocument struct {
	// Version guards against format drift.
	Version int `json:"version"`
	// Comment is free-form provenance (profile, seed, base capacity).
	Comment string              `json:"comment,omitempty"`
	Events  []AvailabilityEntry `json:"events"`
}

// AvailabilityEntry is one serialized capacity event.
type AvailabilityEntry struct {
	At       float64 `json:"at"`
	Capacity int     `json:"capacity"`
}

// availabilityVersion is the format version written by SaveAvailability.
const availabilityVersion = 1

// availabilityCSVHeader is the column layout of the CSV capacity-trace
// format.
var availabilityCSVHeader = []string{"at", "capacity"}

// SaveAvailability writes a capacity trace as JSON.
func SaveAvailability(w io.Writer, tr AvailabilityTrace, comment string) error {
	doc := AvailabilityDocument{Version: availabilityVersion, Comment: comment}
	for _, ev := range tr.Events {
		doc.Events = append(doc.Events, AvailabilityEntry{At: ev.At, Capacity: ev.Capacity})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadAvailability reads a capacity trace from JSON, applying
// AvailabilityTrace.Validate.
func LoadAvailability(r io.Reader) (AvailabilityTrace, error) {
	var doc AvailabilityDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability decode: %w", err)
	}
	if doc.Version != availabilityVersion {
		return AvailabilityTrace{}, fmt.Errorf("workload: unsupported availability version %d", doc.Version)
	}
	return availabilityFromEntries(doc.Events)
}

// SaveAvailabilityCSV writes a capacity trace in the CSV format: a header
// row followed by one `at,capacity` row per event.
func SaveAvailabilityCSV(w io.Writer, tr AvailabilityTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(availabilityCSVHeader); err != nil {
		return fmt.Errorf("workload: availability csv: %w", err)
	}
	for _, ev := range tr.Events {
		rec := []string{
			strconv.FormatFloat(ev.At, 'g', -1, 64),
			strconv.Itoa(ev.Capacity),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: availability csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadAvailabilityCSV reads the CSV capacity-trace format with the same
// validation as LoadAvailability.
func LoadAvailabilityCSV(r io.Reader) (AvailabilityTrace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability csv: %w", err)
	}
	if len(rows) == 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability csv document is empty")
	}
	if len(rows[0]) != len(availabilityCSVHeader) || !equalFold(rows[0], availabilityCSVHeader) {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability csv header %v, want %v",
			rows[0], availabilityCSVHeader)
	}
	var entries []AvailabilityEntry
	for i, rec := range rows[1:] {
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return AvailabilityTrace{}, fmt.Errorf("workload: availability csv row %d at: %w", i+1, err)
		}
		capacity, err := strconv.Atoi(rec[1])
		if err != nil {
			return AvailabilityTrace{}, fmt.Errorf("workload: availability csv row %d capacity: %w", i+1, err)
		}
		entries = append(entries, AvailabilityEntry{At: at, Capacity: capacity})
	}
	return availabilityFromEntries(entries)
}

// availabilityFromEntries validates serialized events, sorted stably by time
// (simultaneous events keep file order, matching the job-trace loader).
func availabilityFromEntries(entries []AvailabilityEntry) (AvailabilityTrace, error) {
	if len(entries) == 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability document has no events")
	}
	var tr AvailabilityTrace
	for _, e := range entries {
		tr.Events = append(tr.Events, CapacityEvent{At: e.At, Capacity: e.Capacity})
	}
	sortCapacityEvents(tr.Events)
	if err := tr.Validate(); err != nil {
		return AvailabilityTrace{}, err
	}
	return tr, nil
}

// sortCapacityEvents orders events by time, keeping input order on ties.
func sortCapacityEvents(events []CapacityEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// SaveAvailabilityFile writes a capacity trace to path, picking the format
// by extension: ".csv" writes the CSV format, anything else the JSON
// document.
func SaveAvailabilityFile(path string, tr AvailabilityTrace, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return SaveAvailabilityCSV(f, tr)
	}
	return SaveAvailability(f, tr, comment)
}

// LoadAvailabilityFile reads a capacity trace from path, picking the format
// by extension.
func LoadAvailabilityFile(path string) (AvailabilityTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return AvailabilityTrace{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return LoadAvailabilityCSV(f)
	}
	return LoadAvailability(f)
}
