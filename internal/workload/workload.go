package workload

import (
	"fmt"
	"math/rand"

	"elastichpc/internal/model"
)

// JobSpec is one job submission: what runs, how urgent, and when it arrives.
type JobSpec struct {
	ID       string
	Class    model.Class
	Priority int
	SubmitAt float64 // seconds from experiment start
}

// Workload is a reproducible job-submission stream.
type Workload struct {
	Jobs []JobSpec
}

// Clone returns an independent deep copy: mutating the copy's jobs never
// aliases the original.
func (w Workload) Clone() Workload {
	if w.Jobs == nil {
		return Workload{}
	}
	jobs := make([]JobSpec, len(w.Jobs))
	copy(jobs, w.Jobs)
	return Workload{Jobs: jobs}
}

// WithGap returns a deep copy of the workload with submissions respaced to
// the given gap, preserving classes and priorities — used by the
// submission-gap sweep so that all points share one job mix.
func (w Workload) WithGap(gap float64) Workload {
	out := w.Clone()
	for i := range out.Jobs {
		out.Jobs[i].SubmitAt = float64(i) * gap
	}
	return out
}

// Span is the time of the last submission.
func (w Workload) Span() float64 {
	last := 0.0
	for _, j := range w.Jobs {
		if j.SubmitAt > last {
			last = j.SubmitAt
		}
	}
	return last
}

// Generator produces a workload from a seed. Implementations must be
// deterministic: the same seed always yields an identical workload, which is
// what makes parallel sweep execution bit-identical to sequential.
type Generator interface {
	// Name identifies the scenario (used by the CLIs' -scenario flag and
	// sweep output).
	Name() string
	// Generate builds the workload for one seed.
	Generate(seed int64) (Workload, error)
}

// Mix is a weighted class distribution for generators. Weights need not sum
// to 1; zero-weight classes are never drawn. A nil Mix means uniform.
type Mix map[model.Class]float64

// UniformMix draws all four classes equally (the paper's setup).
func UniformMix() Mix {
	m := Mix{}
	for _, c := range model.AllClasses() {
		m[c] = 1
	}
	return m
}

// draw picks one class, consuming exactly one rng.Float64.
func (m Mix) draw(rng *rand.Rand) (model.Class, error) {
	var total float64
	classes := model.AllClasses()
	for _, c := range classes {
		if m[c] < 0 {
			return 0, fmt.Errorf("workload: negative weight for %v", c)
		}
		total += m[c]
	}
	if total <= 0 {
		return 0, fmt.Errorf("workload: mix has no positive weights")
	}
	x := rng.Float64() * total
	for _, c := range classes {
		x -= m[c]
		if x < 0 {
			return c, nil
		}
	}
	return classes[len(classes)-1], nil
}

// orUniform resolves a nil mix to the uniform one.
func (m Mix) orUniform() Mix {
	if m == nil {
		return UniformMix()
	}
	return m
}
