package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"elastichpc/internal/model"
)

// Document is the serialized JSON workload format (version 1, unchanged from
// the original internal/trace format so existing trace files keep loading).
type Document struct {
	// Version guards against format drift.
	Version int `json:"version"`
	// Comment is free-form provenance (generator, seed, date).
	Comment string     `json:"comment,omitempty"`
	Jobs    []JobEntry `json:"jobs"`
}

// JobEntry is one serialized job submission.
type JobEntry struct {
	ID       string  `json:"id"`
	Class    string  `json:"class"`
	Priority int     `json:"priority"`
	SubmitAt float64 `json:"submitAt"`
}

// currentVersion is the format version written by Save.
const currentVersion = 1

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{"id", "class", "priority", "submit_at"}

func classByName(name string) (model.Class, error) {
	for _, c := range model.AllClasses() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown job class %q", name)
}

// Save writes a workload as JSON.
func Save(w io.Writer, workload Workload, comment string) error {
	doc := Document{Version: currentVersion, Comment: comment}
	for _, j := range workload.Jobs {
		doc.Jobs = append(doc.Jobs, JobEntry{
			ID: j.ID, Class: j.Class.String(), Priority: j.Priority, SubmitAt: j.SubmitAt,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a workload from JSON, validating classes, priorities, and
// submission ordering.
func Load(r io.Reader) (Workload, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Workload{}, fmt.Errorf("workload: decode: %w", err)
	}
	if doc.Version != currentVersion {
		return Workload{}, fmt.Errorf("workload: unsupported version %d", doc.Version)
	}
	return fromEntries(doc.Jobs)
}

// SaveCSV writes a workload in the CSV trace format: a header row followed by
// one `id,class,priority,submit_at` row per job.
func SaveCSV(w io.Writer, workload Workload) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: csv: %w", err)
	}
	for _, j := range workload.Jobs {
		rec := []string{
			j.ID, j.Class.String(),
			strconv.Itoa(j.Priority),
			strconv.FormatFloat(j.SubmitAt, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads the CSV trace format, applying the same validation as Load.
func LoadCSV(r io.Reader) (Workload, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return Workload{}, fmt.Errorf("workload: csv: %w", err)
	}
	if len(rows) == 0 {
		return Workload{}, fmt.Errorf("workload: csv document is empty")
	}
	if len(rows[0]) != len(csvHeader) || !equalFold(rows[0], csvHeader) {
		return Workload{}, fmt.Errorf("workload: csv header %v, want %v", rows[0], csvHeader)
	}
	var entries []JobEntry
	for i, rec := range rows[1:] {
		prio, err := strconv.Atoi(rec[2])
		if err != nil {
			return Workload{}, fmt.Errorf("workload: csv row %d priority: %w", i+1, err)
		}
		at, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return Workload{}, fmt.Errorf("workload: csv row %d submit_at: %w", i+1, err)
		}
		entries = append(entries, JobEntry{ID: rec[0], Class: rec[1], Priority: prio, SubmitAt: at})
	}
	return fromEntries(entries)
}

func equalFold(a, b []string) bool {
	for i := range a {
		if !strings.EqualFold(strings.TrimSpace(a[i]), b[i]) {
			return false
		}
	}
	return true
}

// fromEntries validates serialized jobs and returns them sorted by submit
// time (stable, so simultaneous submissions keep file order).
func fromEntries(entries []JobEntry) (Workload, error) {
	if len(entries) == 0 {
		return Workload{}, fmt.Errorf("workload: document has no jobs")
	}
	var w Workload
	seen := make(map[string]bool, len(entries))
	for i, e := range entries {
		if e.ID == "" {
			return Workload{}, fmt.Errorf("workload: job %d has no id", i)
		}
		if seen[e.ID] {
			return Workload{}, fmt.Errorf("workload: duplicate job id %q", e.ID)
		}
		seen[e.ID] = true
		class, err := classByName(e.Class)
		if err != nil {
			return Workload{}, err
		}
		if e.Priority < 1 {
			return Workload{}, fmt.Errorf("workload: job %q priority %d < 1", e.ID, e.Priority)
		}
		if e.SubmitAt < 0 || math.IsNaN(e.SubmitAt) || math.IsInf(e.SubmitAt, 0) {
			return Workload{}, fmt.Errorf("workload: job %q submitAt %v", e.ID, e.SubmitAt)
		}
		w.Jobs = append(w.Jobs, JobSpec{
			ID: e.ID, Class: class, Priority: e.Priority, SubmitAt: e.SubmitAt,
		})
	}
	sort.SliceStable(w.Jobs, func(i, j int) bool { return w.Jobs[i].SubmitAt < w.Jobs[j].SubmitAt })
	return w, nil
}

// SaveFile writes a workload to path, picking the format by extension:
// ".csv" writes the CSV trace format, anything else the JSON document.
func SaveFile(path string, workload Workload, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return SaveCSV(f, workload)
	}
	return Save(f, workload, comment)
}

// LoadFile reads a workload from path, picking the format by extension.
func LoadFile(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return LoadCSV(f)
	}
	return Load(f)
}
