package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// CapacityEvent sets the cluster's total worker-slot capacity at an instant.
// Capacity is absolute (not a delta): replaying a trace from any point gives
// the same capacity curve, and merging concurrent outages cannot drift.
type CapacityEvent struct {
	At       float64 // seconds from experiment start
	Capacity int     // total worker slots from this instant on
}

// AvailabilityTrace is a reproducible capacity timeline: the cluster starts
// at the experiment's base capacity and follows the events in order. It is
// the availability analogue of Workload — one value drives both the
// discrete-event simulator and the cluster emulation.
type AvailabilityTrace struct {
	Events []CapacityEvent
}

// Clone returns an independent deep copy of the trace.
func (t AvailabilityTrace) Clone() AvailabilityTrace {
	if t.Events == nil {
		return AvailabilityTrace{}
	}
	ev := make([]CapacityEvent, len(t.Events))
	copy(ev, t.Events)
	return AvailabilityTrace{Events: ev}
}

// Empty reports whether the trace carries no capacity events.
func (t AvailabilityTrace) Empty() bool { return len(t.Events) == 0 }

// Span is the time of the last capacity event (0 for an empty trace).
func (t AvailabilityTrace) Span() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// MaxCapacity is the largest capacity the cluster reaches: the base capacity
// or any event's target, whichever is higher. Emulated backends provision
// nodes to this bound up front so capacity-burst events have hardware to
// expand onto.
func (t AvailabilityTrace) MaxCapacity(base int) int {
	maxCap := base
	for _, ev := range t.Events {
		if ev.Capacity > maxCap {
			maxCap = ev.Capacity
		}
	}
	return maxCap
}

// CapacityAt reports the capacity in force at time at: base before the first
// event, then the target of the latest event at or before the instant.
func (t AvailabilityTrace) CapacityAt(base int, at float64) int {
	cap := base
	for _, ev := range t.Events {
		if ev.At > at {
			break
		}
		cap = ev.Capacity
	}
	return cap
}

// WithRestore returns the trace with a restore-to-base event appended when
// it would otherwise end below the base capacity — the guard that lets any
// finite workload eventually complete (a trace ending mid-outage would pin
// the cluster small forever). The restore lands at `at`, or just past the
// last event when `at` does not lie beyond it.
func (t AvailabilityTrace) WithRestore(base int, at float64) AvailabilityTrace {
	if len(t.Events) == 0 || t.Events[len(t.Events)-1].Capacity >= base {
		return t
	}
	out := t.Clone()
	if last := out.Events[len(out.Events)-1].At; at < last {
		at = last
	}
	out.Events = append(out.Events, CapacityEvent{At: at, Capacity: base})
	return out
}

// Validate checks the trace is usable by an event loop: events in
// non-decreasing time order, finite non-negative timestamps, and every
// capacity at least 1 slot (a scheduler over zero slots is invalid; total
// outages are modelled as capacity 1).
func (t AvailabilityTrace) Validate() error {
	last := 0.0
	for i, ev := range t.Events {
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return fmt.Errorf("workload: availability event %d at %v", i, ev.At)
		}
		if ev.At < last {
			return fmt.Errorf("workload: availability event %d at %g before predecessor at %g", i, ev.At, last)
		}
		last = ev.At
		if ev.Capacity < 1 {
			return fmt.Errorf("workload: availability event %d capacity %d < 1", i, ev.Capacity)
		}
	}
	return nil
}

// AvailabilityProfile generates a capacity timeline for one seed — the
// availability analogue of Generator. Implementations must be deterministic
// per (seed, base, horizon): the same inputs always yield an identical trace,
// which keeps parallel sweeps bit-identical to sequential runs.
type AvailabilityProfile interface {
	// Name identifies the profile (the CLIs' -availability flag value).
	Name() string
	// Events builds the capacity timeline over [0, horizon] seconds for a
	// cluster whose base capacity is base slots.
	Events(seed int64, base int, horizon float64) (AvailabilityTrace, error)
}

// capDelta is an intermediate (time, slot-delta) pair used while merging
// per-source outage intervals into one absolute-capacity trace.
type capDelta struct {
	at    float64
	delta int
}

// deltasToTrace folds sorted slot deltas into absolute capacity events,
// clamping at 1 slot and dropping no-op transitions.
func deltasToTrace(base int, deltas []capDelta) AvailabilityTrace {
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })
	var tr AvailabilityTrace
	lost := 0
	prev := base
	for i := 0; i < len(deltas); {
		at := deltas[i].at
		for i < len(deltas) && deltas[i].at == at {
			lost -= deltas[i].delta
			i++
		}
		cap := base - lost
		if cap < 1 {
			cap = 1
		}
		if cap != prev {
			tr.Events = append(tr.Events, CapacityEvent{At: at, Capacity: cap})
			prev = cap
		}
	}
	return tr
}

// FailureRepair models node crashes and repairs: each of Nodes nodes
// alternates between up (exponential lifetime with mean MTTF) and down
// (exponential repair with mean MTTR), taking its share of the base capacity
// with it — the classic availability model behind the paper's §3.2.2
// fault-tolerance motivation.
type FailureRepair struct {
	Nodes int     // nodes sharing the base capacity
	MTTF  float64 // mean time to failure per node, seconds
	MTTR  float64 // mean time to repair, seconds
}

// Name implements AvailabilityProfile.
func (p FailureRepair) Name() string { return "failures" }

// Events implements AvailabilityProfile.
func (p FailureRepair) Events(seed int64, base int, horizon float64) (AvailabilityTrace, error) {
	if p.Nodes < 1 || p.Nodes > base || !validGap(p.MTTF) || !validGap(p.MTTR) || p.MTTF <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad failure profile nodes=%d mttf=%g mttr=%g",
			p.Nodes, p.MTTF, p.MTTR)
	}
	if base < 1 || horizon <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad failure horizon base=%d horizon=%g", base, horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var deltas []capDelta
	for node := 0; node < p.Nodes; node++ {
		slots := base/p.Nodes + boolToInt(node < base%p.Nodes)
		at := 0.0
		for {
			at += rng.ExpFloat64() * p.MTTF // lifetime
			if at >= horizon {
				break
			}
			deltas = append(deltas, capDelta{at: at, delta: -slots})
			at += rng.ExpFloat64() * p.MTTR // repair
			if at >= horizon {
				break
			}
			deltas = append(deltas, capDelta{at: at, delta: +slots})
		}
	}
	return deltasToTrace(base, deltas), nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SpotPreemption models cloud spot-instance reclaims: preemption events
// arrive as a Poisson process (mean MeanGap seconds apart), each taking
// Slots worker slots away for an exponentially distributed outage of mean
// MeanOutage seconds before replacement capacity arrives.
type SpotPreemption struct {
	MeanGap    float64 // mean seconds between preemption events
	Slots      int     // slots reclaimed per event
	MeanOutage float64 // mean seconds before the capacity returns
}

// Name implements AvailabilityProfile.
func (p SpotPreemption) Name() string { return "spot" }

// Events implements AvailabilityProfile.
func (p SpotPreemption) Events(seed int64, base int, horizon float64) (AvailabilityTrace, error) {
	if p.Slots < 1 || !validGap(p.MeanGap) || p.MeanGap <= 0 || !validGap(p.MeanOutage) || p.MeanOutage <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad spot profile gap=%g slots=%d outage=%g",
			p.MeanGap, p.Slots, p.MeanOutage)
	}
	if base < 1 || horizon <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad spot horizon base=%d horizon=%g", base, horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var deltas []capDelta
	at := 0.0
	for {
		at += rng.ExpFloat64() * p.MeanGap
		if at >= horizon {
			break
		}
		deltas = append(deltas, capDelta{at: at, delta: -p.Slots})
		back := at + rng.ExpFloat64()*p.MeanOutage
		if back < horizon {
			deltas = append(deltas, capDelta{at: back, delta: +p.Slots})
		}
	}
	return deltasToTrace(base, deltas), nil
}

// MaintenanceDrain models planned maintenance windows: every Every seconds
// the cluster drains to Keep slots for Duration seconds, then returns to
// full capacity — the deterministic profile for studying drain-aware
// scheduling.
type MaintenanceDrain struct {
	Every    float64 // seconds between window starts (first at t=Every)
	Duration float64 // seconds each window lasts
	Keep     int     // slots retained during the drain
}

// Name implements AvailabilityProfile.
func (p MaintenanceDrain) Name() string { return "drain" }

// Events implements AvailabilityProfile. The seed is ignored — maintenance
// schedules are planned, not random.
func (p MaintenanceDrain) Events(_ int64, base int, horizon float64) (AvailabilityTrace, error) {
	if p.Keep < 1 || !validGap(p.Every) || p.Every <= 0 || !validGap(p.Duration) || p.Duration <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad drain profile every=%g duration=%g keep=%d",
			p.Every, p.Duration, p.Keep)
	}
	if base < 1 || horizon <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad drain horizon base=%d horizon=%g", base, horizon)
	}
	keep := p.Keep
	if keep > base {
		keep = base
	}
	var tr AvailabilityTrace
	for at := p.Every; at < horizon; at += p.Every {
		tr.Events = append(tr.Events, CapacityEvent{At: at, Capacity: keep})
		if back := at + p.Duration; back < horizon {
			tr.Events = append(tr.Events, CapacityEvent{At: back, Capacity: base})
		}
	}
	return tr, nil
}

// DiurnalCapacity models time-of-day capacity swings (reserved bursts by
// day, reclaimed overnight): capacity follows a raised-cosine curve between
// the base (peak, t = 0 mod Period) and Floor×base (trough, half a period
// later), sampled every Step seconds.
type DiurnalCapacity struct {
	Period float64 // seconds per full cycle
	Floor  float64 // fraction of base capacity at the trough, (0,1]
	Step   float64 // sampling interval of the capacity curve
}

// Name implements AvailabilityProfile.
func (p DiurnalCapacity) Name() string { return "tides" }

// Events implements AvailabilityProfile. The seed is ignored — the curve is
// deterministic.
func (p DiurnalCapacity) Events(_ int64, base int, horizon float64) (AvailabilityTrace, error) {
	if p.Floor <= 0 || p.Floor > 1 || !validGap(p.Period) || p.Period <= 0 || !validGap(p.Step) || p.Step <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad tides profile period=%g floor=%g step=%g",
			p.Period, p.Floor, p.Step)
	}
	if base < 1 || horizon <= 0 {
		return AvailabilityTrace{}, fmt.Errorf("workload: bad tides horizon base=%d horizon=%g", base, horizon)
	}
	var tr AvailabilityTrace
	prev := base
	for at := p.Step; at < horizon; at += p.Step {
		level := (1 + math.Cos(2*math.Pi*at/p.Period)) / 2 // 1 at peak, 0 in trough
		cap := int(math.Round(float64(base) * (p.Floor + (1-p.Floor)*level)))
		if cap < 1 {
			cap = 1
		}
		if cap != prev {
			tr.Events = append(tr.Events, CapacityEvent{At: at, Capacity: cap})
			prev = cap
		}
	}
	return tr, nil
}

// AvailabilityTraceFile replays a capacity timeline saved with
// SaveAvailabilityFile (JSON or CSV by extension). Events ignores the seed —
// a replay is the same timeline every time.
type AvailabilityTraceFile struct {
	Path string
}

// Name implements AvailabilityProfile.
func (p AvailabilityTraceFile) Name() string { return "trace" }

// Events implements AvailabilityProfile. The base and horizon are ignored:
// the file records the absolute capacity curve the experiment asked for.
func (p AvailabilityTraceFile) Events(int64, int, float64) (AvailabilityTrace, error) {
	if p.Path == "" {
		return AvailabilityTrace{}, fmt.Errorf("workload: availability trace profile needs a path")
	}
	return LoadAvailabilityFile(p.Path)
}

// fixedAvailability replays an in-memory trace under a profile name.
type fixedAvailability struct {
	name string
	tr   AvailabilityTrace
}

func (p fixedAvailability) Name() string { return p.name }
func (p fixedAvailability) Events(int64, int, float64) (AvailabilityTrace, error) {
	return p.tr.Clone(), nil
}

// ReplayAvailability wraps an already-built capacity trace as a profile, so
// loaded traces and hand-built timelines drop into availability sweeps next
// to the synthetic profiles.
func ReplayAvailability(name string, tr AvailabilityTrace) AvailabilityProfile {
	return fixedAvailability{name: name, tr: tr.Clone()}
}

// AvailabilityOptions tunes the built-in profiles from CLI flags; zero
// values keep each profile's default.
type AvailabilityOptions struct {
	// MTTF overrides the failures profile's mean time to failure (seconds).
	MTTF float64
	// MTTR overrides the failures profile's mean time to repair (seconds).
	MTTR float64
	// PreemptSlots overrides the spot profile's slots-per-preemption.
	PreemptSlots int
	// TracePath is the capacity trace file for the "trace" profile.
	TracePath string
}

// Default availability-profile parameters, scaled to the paper's 64-slot
// cluster and ~30-minute experiments so every profile visibly perturbs a
// default scenario run.
const (
	defaultMTTF         = 1800.0
	defaultMTTR         = 600.0
	defaultPreemptSlots = 16
)

// DefaultAvailabilityProfiles returns the built-in capacity profiles with
// default parameters (the trace profile is omitted — it needs a path; see
// AvailabilityScenario).
func DefaultAvailabilityProfiles() []AvailabilityProfile {
	return []AvailabilityProfile{
		FailureRepair{Nodes: 4, MTTF: defaultMTTF, MTTR: defaultMTTR},
		SpotPreemption{MeanGap: 1200, Slots: defaultPreemptSlots, MeanOutage: 900},
		MaintenanceDrain{Every: 1800, Duration: 600, Keep: 32},
		DiurnalCapacity{Period: 2880, Floor: 0.5, Step: 120},
	}
}

// AvailabilityScenarioNames lists the names accepted by AvailabilityScenario,
// in display order.
func AvailabilityScenarioNames() []string {
	var names []string
	for _, p := range DefaultAvailabilityProfiles() {
		names = append(names, p.Name())
	}
	names = append(names, "trace")
	sort.Strings(names)
	return names
}

// AvailabilityScenario resolves an -availability flag value to a profile:
// one of the DefaultAvailabilityProfiles by name (with opts applied), or
// "trace" replaying opts.TracePath.
func AvailabilityScenario(name string, opts AvailabilityOptions) (AvailabilityProfile, error) {
	if name == "trace" {
		if opts.TracePath == "" {
			return nil, fmt.Errorf("workload: availability scenario %q needs a trace path", name)
		}
		return AvailabilityTraceFile{Path: opts.TracePath}, nil
	}
	for _, p := range DefaultAvailabilityProfiles() {
		if p.Name() != name {
			continue
		}
		switch prof := p.(type) {
		case FailureRepair:
			if opts.MTTF > 0 {
				prof.MTTF = opts.MTTF
			}
			if opts.MTTR > 0 {
				prof.MTTR = opts.MTTR
			}
			return prof, nil
		case SpotPreemption:
			if opts.PreemptSlots > 0 {
				prof.Slots = opts.PreemptSlots
			}
			return prof, nil
		default:
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown availability scenario %q (have %s)",
		name, strings.Join(AvailabilityScenarioNames(), ", "))
}

// AvailabilityLevels generates one seed of a profile and returns the sorted
// distinct capacity levels the cluster passes through (the base included) —
// the availability analogue of ScenarioGrids, used by the benchmark CLIs to
// cover exactly the replica counts an availability experiment will force.
func AvailabilityLevels(p AvailabilityProfile, seed int64, base int, horizon float64) ([]int, error) {
	tr, err := p.Events(seed, base, horizon)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{base: true}
	for _, ev := range tr.Events {
		seen[ev.Capacity] = true
	}
	levels := make([]int, 0, len(seen))
	for c := range seen {
		levels = append(levels, c)
	}
	sort.Ints(levels)
	return levels, nil
}

// AvailabilityTransitions generates one seed of a profile and returns the
// distinct consecutive capacity transitions (from → to) it forces, in first-
// occurrence order — the rescale operations a benchmark should measure to
// predict that profile's overhead on the real runtime.
func AvailabilityTransitions(p AvailabilityProfile, seed int64, base int, horizon float64) ([][2]int, error) {
	tr, err := p.Events(seed, base, horizon)
	if err != nil {
		return nil, err
	}
	var out [][2]int
	seen := map[[2]int]bool{}
	prev := base
	for _, ev := range tr.Events {
		pair := [2]int{prev, ev.Capacity}
		prev = ev.Capacity
		if pair[0] == pair[1] || seen[pair] {
			continue
		}
		seen[pair] = true
		out = append(out, pair)
	}
	return out, nil
}
