package pup

import (
	"math"
	"testing"
	"testing/quick"
)

type record struct {
	A   int
	B   int64
	U   uint64
	F   float64
	S   string
	Raw []byte
	Fs  []float64
	Is  []int
	Ok  bool
	By  byte
}

func (r *record) Pup(p *PUP) {
	p.Int(&r.A)
	p.Int64(&r.B)
	p.Uint64(&r.U)
	p.Float64(&r.F)
	p.String(&r.S)
	p.Bytes_(&r.Raw)
	p.Float64s(&r.Fs)
	p.Ints(&r.Is)
	p.Bool(&r.Ok)
	p.Byte(&r.By)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	in := &record{
		A: -42, B: 1 << 40, U: math.MaxUint64, F: 3.14159,
		S: "hello chare", Raw: []byte{0, 1, 2, 255},
		Fs: []float64{1.5, -2.5, math.Inf(1)}, Is: []int{-1, 0, 7},
		Ok: true, By: 0x7f,
	}
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out := &record{}
	if err := Unpack(out, data); err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if out.A != in.A || out.B != in.B || out.U != in.U || out.F != in.F {
		t.Errorf("scalar mismatch: got %+v want %+v", out, in)
	}
	if out.S != in.S {
		t.Errorf("string mismatch: got %q want %q", out.S, in.S)
	}
	if string(out.Raw) != string(in.Raw) {
		t.Errorf("bytes mismatch: got %v want %v", out.Raw, in.Raw)
	}
	if len(out.Fs) != len(in.Fs) || out.Fs[0] != 1.5 || out.Fs[1] != -2.5 || !math.IsInf(out.Fs[2], 1) {
		t.Errorf("float64s mismatch: got %v", out.Fs)
	}
	if len(out.Is) != 3 || out.Is[0] != -1 || out.Is[2] != 7 {
		t.Errorf("ints mismatch: got %v", out.Is)
	}
	if !out.Ok || out.By != 0x7f {
		t.Errorf("bool/byte mismatch: got %+v", out)
	}
}

func TestEmptyValues(t *testing.T) {
	in := &record{}
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out := &record{S: "poison", Fs: []float64{9}}
	if err := Unpack(out, data); err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if out.S != "" || len(out.Fs) != 0 || len(out.Raw) != 0 {
		t.Errorf("zero-value round trip failed: %+v", out)
	}
}

func TestSizeMatchesPack(t *testing.T) {
	in := &record{S: "x", Fs: make([]float64, 100), Is: make([]int, 3)}
	s := NewSizer()
	in.Pup(s)
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if s.Size() != len(data) {
		t.Errorf("sizer reported %d, packed %d", s.Size(), len(data))
	}
}

func TestUnpackTruncatedFails(t *testing.T) {
	in := &record{S: "truncate me", Fs: []float64{1, 2, 3}}
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	for _, cut := range []int{0, 1, 8, len(data) - 1} {
		out := &record{}
		if err := Unpack(out, data[:cut]); err == nil {
			t.Errorf("Unpack of %d/%d bytes succeeded, want error", cut, len(data))
		}
	}
}

func TestUnpackTrailingBytesFails(t *testing.T) {
	in := &record{}
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out := &record{}
	if err := Unpack(out, append(data, 0xde)); err == nil {
		t.Error("Unpack with trailing byte succeeded, want error")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	in := &record{S: "abc"}
	data, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// The string length prefix sits after A, B, U, F (4 × 8 bytes).
	for i := 32; i < 40; i++ {
		data[i] = 0xff
	}
	out := &record{}
	if err := Unpack(out, data); err == nil {
		t.Error("Unpack with corrupt length prefix succeeded, want error")
	}
}

func TestModeString(t *testing.T) {
	if Sizing.String() != "sizing" || Packing.String() != "packing" || Unpacking.String() != "unpacking" {
		t.Error("Mode.String mismatch")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

// Property: pack→unpack is the identity for arbitrary records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a int64, fval float64, s string, raw []byte, fs []float64, ok bool) bool {
		if math.IsNaN(fval) {
			fval = 0 // NaN != NaN would fail equality below
		}
		for i, x := range fs {
			if math.IsNaN(x) {
				fs[i] = 0
			}
		}
		in := &record{A: int(a), B: a, F: fval, S: s, Raw: raw, Fs: fs, Ok: ok}
		data, err := Pack(in)
		if err != nil {
			return false
		}
		out := &record{}
		if err := Unpack(out, data); err != nil {
			return false
		}
		if out.A != in.A || out.B != in.B || out.F != in.F || out.S != in.S || out.Ok != in.Ok {
			return false
		}
		if len(out.Raw) != len(in.Raw) || len(out.Fs) != len(in.Fs) {
			return false
		}
		for i := range in.Raw {
			if out.Raw[i] != in.Raw[i] {
				return false
			}
		}
		for i := range in.Fs {
			if out.Fs[i] != in.Fs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the sizer always agrees with the packer.
func TestQuickSizeAgreement(t *testing.T) {
	f := func(s string, fs []float64, is []int) bool {
		in := &record{S: s, Fs: fs, Is: is}
		sz := NewSizer()
		in.Pup(sz)
		data, err := Pack(in)
		return err == nil && sz.Size() == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPackGrid(b *testing.B) {
	in := &record{Fs: make([]float64, 256*256)}
	b.SetBytes(int64(len(in.Fs) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackGrid(b *testing.B) {
	in := &record{Fs: make([]float64, 256*256)}
	data, err := Pack(in)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(in.Fs) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := &record{}
		if err := Unpack(out, data); err != nil {
			b.Fatal(err)
		}
	}
}
