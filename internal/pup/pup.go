// Package pup implements a Pack-UnPack (PUP) serialization framework in the
// style of Charm++'s PUP module. A single Pup method on an object describes
// its state once; the same description is used to size, pack, and unpack the
// object. This is the mechanism that makes chares migratable: migration,
// checkpointing, and restore all reduce to a Pup traversal.
//
// The wire format is little-endian fixed-width encodings with length-prefixed
// byte strings. It is intentionally simple and self-contained so checkpoints
// written by one runtime incarnation can be restored by another.
package pup

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mode selects what a PUP traversal does.
type Mode int

const (
	// Sizing computes the number of bytes the object would occupy.
	Sizing Mode = iota
	// Packing writes the object's state into the buffer.
	Packing
	// Unpacking reads the object's state back out of the buffer.
	Unpacking
)

// String returns the PUP mode's display name.
func (m Mode) String() string {
	switch m {
	case Sizing:
		return "sizing"
	case Packing:
		return "packing"
	case Unpacking:
		return "unpacking"
	}
	return fmt.Sprintf("pup.Mode(%d)", int(m))
}

// Pupable is implemented by any object that can be serialized with a PUP
// traversal. Implementations must call the same sequence of PUP methods in
// every mode.
type Pupable interface {
	Pup(p *PUP)
}

// PUP carries the state of one serialization traversal.
type PUP struct {
	mode Mode
	buf  []byte
	off  int
	size int
	err  error
}

// NewSizer returns a PUP that computes the packed size of an object.
func NewSizer() *PUP { return &PUP{mode: Sizing} }

// NewPacker returns a PUP that packs into a buffer of exactly size bytes.
func NewPacker(size int) *PUP { return &PUP{mode: Packing, buf: make([]byte, size)} }

// NewUnpacker returns a PUP that unpacks from buf.
func NewUnpacker(buf []byte) *PUP { return &PUP{mode: Unpacking, buf: buf} }

// Mode reports what this traversal is doing. Object Pup methods may branch on
// it, e.g. to allocate slices before unpacking into them.
func (p *PUP) Mode() Mode { return p.mode }

// IsUnpacking reports whether the traversal is reading state back.
func (p *PUP) IsUnpacking() bool { return p.mode == Unpacking }

// Size reports the number of bytes consumed so far (Sizing mode) or the
// buffer position (Packing/Unpacking).
func (p *PUP) Size() int {
	if p.mode == Sizing {
		return p.size
	}
	return p.off
}

// Bytes returns the packed buffer. Only meaningful after a Packing traversal.
func (p *PUP) Bytes() []byte { return p.buf }

// Err returns the first error encountered during the traversal, if any.
func (p *PUP) Err() error { return p.err }

func (p *PUP) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("pup: "+format, args...)
	}
}

func (p *PUP) reserve(n int) []byte {
	switch p.mode {
	case Sizing:
		p.size += n
		return nil
	case Packing:
		if p.off+n > len(p.buf) {
			p.fail("pack overflow: need %d bytes at offset %d, have %d", n, p.off, len(p.buf))
			return nil
		}
	case Unpacking:
		if p.off+n > len(p.buf) {
			p.fail("unpack underflow: need %d bytes at offset %d, have %d", n, p.off, len(p.buf))
			return nil
		}
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

// Uint64 serializes a uint64 in place.
func (p *PUP) Uint64(v *uint64) {
	b := p.reserve(8)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint64(b, *v)
	case Unpacking:
		*v = binary.LittleEndian.Uint64(b)
	}
}

// Int64 serializes an int64 in place.
func (p *PUP) Int64(v *int64) {
	u := uint64(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int64(u)
	}
}

// Int serializes an int as a 64-bit value.
func (p *PUP) Int(v *int) {
	i := int64(*v)
	p.Int64(&i)
	if p.mode == Unpacking {
		*v = int(i)
	}
}

// Uint32 serializes a uint32 in place.
func (p *PUP) Uint32(v *uint32) {
	b := p.reserve(4)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint32(b, *v)
	case Unpacking:
		*v = binary.LittleEndian.Uint32(b)
	}
}

// Byte serializes a single byte in place.
func (p *PUP) Byte(v *byte) {
	b := p.reserve(1)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		b[0] = *v
	case Unpacking:
		*v = b[0]
	}
}

// Bool serializes a bool as one byte.
func (p *PUP) Bool(v *bool) {
	var bb byte
	if *v {
		bb = 1
	}
	p.Byte(&bb)
	if p.mode == Unpacking {
		*v = bb != 0
	}
}

// Float64 serializes a float64 in place.
func (p *PUP) Float64(v *float64) {
	u := math.Float64bits(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = math.Float64frombits(u)
	}
}

// String serializes a string with a length prefix.
func (p *PUP) String(v *string) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n > len(p.buf)-p.off {
			p.fail("string length %d out of range", n)
			return
		}
		b := p.reserve(n)
		if b == nil {
			return
		}
		*v = string(b)
		return
	}
	b := p.reserve(n)
	if p.mode == Packing && b != nil {
		copy(b, *v)
	}
}

// Bytes serializes a byte slice with a length prefix. On unpack the slice is
// (re)allocated.
func (p *PUP) Bytes_(v *[]byte) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n > len(p.buf)-p.off {
			p.fail("bytes length %d out of range", n)
			return
		}
		b := p.reserve(n)
		if b == nil {
			return
		}
		*v = append([]byte(nil), b...)
		return
	}
	b := p.reserve(n)
	if p.mode == Packing && b != nil {
		copy(b, *v)
	}
}

// Float64s serializes a []float64 with a length prefix. On unpack the slice
// is (re)allocated. This is the workhorse for grid and particle data, so the
// pack/unpack loops avoid per-element function calls.
func (p *PUP) Float64s(v *[]float64) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n*8 > len(p.buf)-p.off {
			p.fail("float64 slice length %d out of range", n)
			return
		}
		*v = make([]float64, n)
	}
	b := p.reserve(n * 8)
	switch p.mode {
	case Packing:
		if b == nil {
			return
		}
		for i, f := range *v {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(f))
		}
	case Unpacking:
		if b == nil {
			return
		}
		for i := range *v {
			(*v)[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
}

// Ints serializes an []int with a length prefix.
func (p *PUP) Ints(v *[]int) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n*8 > len(p.buf)-p.off {
			p.fail("int slice length %d out of range", n)
			return
		}
		*v = make([]int, n)
	}
	b := p.reserve(n * 8)
	switch p.mode {
	case Packing:
		if b == nil {
			return
		}
		for i, x := range *v {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(x))
		}
	case Unpacking:
		if b == nil {
			return
		}
		for i := range *v {
			(*v)[i] = int(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
}

// Pack serializes a Pupable to a fresh byte slice using a two-pass
// size-then-pack traversal.
func Pack(obj Pupable) ([]byte, error) {
	s := NewSizer()
	obj.Pup(s)
	if s.Err() != nil {
		return nil, s.Err()
	}
	pk := NewPacker(s.Size())
	obj.Pup(pk)
	if pk.Err() != nil {
		return nil, pk.Err()
	}
	if pk.Size() != s.Size() {
		return nil, fmt.Errorf("pup: inconsistent Pup traversal: sized %d bytes, packed %d", s.Size(), pk.Size())
	}
	return pk.Bytes(), nil
}

// Unpack restores a Pupable from a byte slice produced by Pack.
func Unpack(obj Pupable, data []byte) error {
	u := NewUnpacker(data)
	obj.Pup(u)
	if u.Err() != nil {
		return u.Err()
	}
	if u.Size() != len(data) {
		return fmt.Errorf("pup: unpack consumed %d of %d bytes", u.Size(), len(data))
	}
	return nil
}
