package charm

import (
	"fmt"
	"sync"

	"elastichpc/internal/lb"
	"elastichpc/internal/shm"
)

// arrayMeta is the incarnation-independent description of a chare array.
type arrayMeta struct {
	id       int
	typ      *chareType
	n        int
	onReduce func(vals []float64)

	// reduction state, guarded by redMu
	redMu    sync.Mutex
	redCount int
	redAcc   []float64
	redOp    ReduceOp
}

// Runtime is a Charm++-style runtime instance. Create one with New, create
// chare arrays, exchange messages, and optionally rescale with RescaleTo.
// A Runtime survives rescaling: arrays and reduction clients persist across
// incarnations, exactly like application state survives a Charm++
// checkpoint/restart rescale.
type Runtime struct {
	cfg Config

	mu     sync.Mutex // guards arrays slice, inc swap, stats, closed
	arrays []*arrayMeta
	inc    *incarnation
	store  *shm.Store
	gen    int // checkpoint generation counter
	stats  []RescaleStats
	closed bool

	// rescaleMu serializes rescale/balance operations.
	rescaleMu sync.Mutex

	pending   *pendingRescale
	pendingMu sync.Mutex
}

// pendingRescale records a rescale request (e.g. from CCS) waiting for the
// application to reach its next load-balancing step.
type pendingRescale struct {
	target int
	done   chan error
}

// New creates a runtime with cfg.PEs processing elements.
func New(cfg Config) (*Runtime, error) {
	if cfg.PEs < 1 {
		return nil, fmt.Errorf("charm: config needs at least 1 PE, got %d", cfg.PEs)
	}
	if cfg.Store == nil {
		cfg.Store = shm.NewStore(0)
	}
	if cfg.RescaleLB == nil {
		cfg.RescaleLB = lb.Greedy{}
	}
	if cfg.RunLB == nil {
		cfg.RunLB = lb.Refine{}
	}
	if cfg.RestartLatency == nil {
		cfg.RestartLatency = DefaultRestartLatency
	}
	rt := &Runtime{cfg: cfg, store: cfg.Store}
	rt.inc = newIncarnation(rt, cfg.PEs)
	return rt, nil
}

// NumPEs returns the current incarnation's PE count.
func (rt *Runtime) NumPEs() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.inc.pes)
}

// Stats returns the rescale statistics recorded so far.
func (rt *Runtime) Stats() []RescaleStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]RescaleStats(nil), rt.stats...)
}

// Store returns the checkpoint store (useful for inspecting checkpoints).
func (rt *Runtime) Store() *shm.Store { return rt.store }

// Shutdown stops all PEs. The runtime must not be used afterwards.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	rt.inc.stop()
}

// CreateArray creates an n-element chare array of the registered type and
// returns its array ID. Elements are placed block-wise across PEs and
// constructed with the type's factory; initialize them with a broadcast.
func (rt *Runtime) CreateArray(typeName string, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("charm: array must have at least 1 element, got %d", n)
	}
	ct, err := lookupType(typeName)
	if err != nil {
		return 0, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, fmt.Errorf("charm: runtime is shut down")
	}
	meta := &arrayMeta{id: len(rt.arrays), typ: ct, n: n}
	rt.arrays = append(rt.arrays, meta)
	inc := rt.inc
	numPE := len(inc.pes)
	inc.pauseAll()
	for i := 0; i < n; i++ {
		peID := i * numPE / n // block mapping
		id := lb.ObjID{Array: meta.id, Index: i}
		inc.pes[peID].chares[id] = ct.factory()
		inc.place(id, peID)
	}
	inc.resumeAll()
	return meta.id, nil
}

// SetReductionClient registers fn to run when a reduction over the array
// completes. fn runs on its own goroutine (the "main chare" context).
func (rt *Runtime) SetReductionClient(array int, fn func(vals []float64)) {
	meta := rt.arrayMeta(array)
	meta.redMu.Lock()
	meta.onReduce = fn
	meta.redMu.Unlock()
}

// Broadcast sends an entry-method invocation to every element of the array.
func (rt *Runtime) Broadcast(array, entry int, data []byte) {
	meta := rt.arrayMeta(array)
	for i := 0; i < meta.n; i++ {
		rt.send(array, i, entry, data)
	}
}

// Send delivers an entry-method invocation to one element.
func (rt *Runtime) Send(array, index, entry int, data []byte) {
	rt.send(array, index, entry, data)
}

func (rt *Runtime) arrayMeta(array int) *arrayMeta {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if array < 0 || array >= len(rt.arrays) {
		panic(fmt.Sprintf("charm: unknown array %d", array))
	}
	return rt.arrays[array]
}

func (rt *Runtime) arrayLen(array int) int { return rt.arrayMeta(array).n }

func (rt *Runtime) arrayEntries(array int) []Entry { return rt.arrayMeta(array).typ.entries }

func (rt *Runtime) send(array, index, entry int, data []byte) {
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.send(array, index, entry, data)
}

// contribute implements Ctx.Contribute.
func (rt *Runtime) contribute(array int, vals []float64, op ReduceOp) {
	meta := rt.arrayMeta(array)
	var fire func(vals []float64)
	var result []float64
	meta.redMu.Lock()
	if meta.redCount == 0 {
		meta.redOp = op
		meta.redAcc = nil
	}
	meta.redAcc = meta.redOp.apply(meta.redAcc, vals)
	meta.redCount++
	if meta.redCount == meta.n {
		meta.redCount = 0
		result = meta.redAcc
		meta.redAcc = nil
		fire = meta.onReduce
	}
	meta.redMu.Unlock()
	if result != nil && fire != nil {
		// Run the reduction client off the PE goroutine so it can call
		// Broadcast/RescaleTo without deadlocking the scheduler.
		go fire(result)
	}
}

// QuiesceWait blocks until no messages are in flight. Intended for callers
// that have stopped injecting work (e.g. tests, or a driver at a barrier).
func (rt *Runtime) QuiesceWait() {
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.quiesce()
}

// RequestRescale records a rescale request to be honoured at the next
// ServicePendingRescale call (the application's next load-balancing step,
// per paper §2.2: "the application triggers rescaling during the next
// load-balancing step after receiving the signal"). The returned channel
// receives the rescale outcome.
func (rt *Runtime) RequestRescale(target int) <-chan error {
	done := make(chan error, 1)
	rt.pendingMu.Lock()
	if rt.pending != nil {
		// Coalesce: the newest request wins; fail the old one.
		rt.pending.done <- fmt.Errorf("charm: rescale superseded by newer request")
	}
	rt.pending = &pendingRescale{target: target, done: done}
	rt.pendingMu.Unlock()
	return done
}

// PendingRescale reports the target PE count of a pending rescale request,
// or 0 if none is pending.
func (rt *Runtime) PendingRescale() int {
	rt.pendingMu.Lock()
	defer rt.pendingMu.Unlock()
	if rt.pending == nil {
		return 0
	}
	return rt.pending.target
}

// ServicePendingRescale performs a pending rescale, if any. The application
// calls it at iteration/LB boundaries when the runtime is quiescent. It
// reports whether a rescale was performed.
func (rt *Runtime) ServicePendingRescale() (bool, error) {
	rt.pendingMu.Lock()
	req := rt.pending
	rt.pending = nil
	rt.pendingMu.Unlock()
	if req == nil {
		return false, nil
	}
	err := rt.RescaleTo(req.target)
	req.done <- err
	return true, err
}
