package charm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elastichpc/internal/ccs"
	"elastichpc/internal/pup"
)

// counter is a minimal chare: it accumulates values sent to it.
type counter struct {
	Sum   int
	Calls int
}

func (c *counter) Pup(p *pup.PUP) {
	p.Int(&c.Sum)
	p.Int(&c.Calls)
}

const (
	epAdd = iota
	epContribute
	epRing
)

func init() {
	RegisterType("test.counter", func() Chare { return &counter{} }, []Entry{
		{Name: "add", Fn: func(obj Chare, ctx *Ctx, data []byte) {
			c := obj.(*counter)
			c.Sum += int(binary.LittleEndian.Uint64(data))
			c.Calls++
		}},
		{Name: "contribute", Fn: func(obj Chare, ctx *Ctx, data []byte) {
			c := obj.(*counter)
			ctx.Contribute([]float64{float64(c.Sum)}, ReduceSum)
		}},
		{Name: "ring", Fn: func(obj Chare, ctx *Ctx, data []byte) {
			c := obj.(*counter)
			c.Calls++
			hops := int(binary.LittleEndian.Uint64(data))
			if hops == 0 {
				ctx.Contribute([]float64{1}, ReduceSum)
				return
			}
			next := (ctx.Index + 1) % ctx.NumElements(ctx.Array)
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(hops-1))
			ctx.Send(ctx.Array, next, epRing, buf[:])
		}},
	})
}

func newTestRT(t *testing.T, pes int) *Runtime {
	t.Helper()
	rt, err := New(Config{PEs: pes, RestartLatency: ZeroRestartLatency})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func encInt(v int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}

func TestNewRejectsZeroPEs(t *testing.T) {
	if _, err := New(Config{PEs: 0}); err == nil {
		t.Fatal("New accepted 0 PEs")
	}
}

func TestCreateArrayRejectsBadArgs(t *testing.T) {
	rt := newTestRT(t, 2)
	if _, err := rt.CreateArray("test.counter", 0); err == nil {
		t.Error("CreateArray accepted 0 elements")
	}
	if _, err := rt.CreateArray("not.registered", 4); err == nil {
		t.Error("CreateArray accepted unregistered type")
	}
}

func TestBroadcastAndReduction(t *testing.T) {
	rt := newTestRT(t, 4)
	aid, err := rt.CreateArray("test.counter", 10)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })

	rt.Broadcast(aid, epAdd, encInt(5))
	rt.QuiesceWait()
	rt.Broadcast(aid, epContribute, nil)

	select {
	case sum := <-done:
		if sum != 50 {
			t.Errorf("reduction sum = %g, want 50", sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reduction never completed")
	}
}

func TestPointToPointRing(t *testing.T) {
	rt := newTestRT(t, 3)
	aid, err := rt.CreateArray("test.counter", 7)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
	// One message circulates 3 full laps then all elements contribute:
	// only index 0's final hop contributes, so seed contributions from the
	// others via epContribute after quiescing the ring? Simpler: run the
	// ring until hops exhausted, then reduce over all elements.
	rt.Send(aid, 0, epRing, encInt(21)) // 21 hops over 7 elements = 3 laps
	// Wait for the ring to finish: the last hop contributes a single
	// value, but the reduction needs all 7 elements. Trigger the rest.
	rt.QuiesceWait()
	for i := 1; i < 7; i++ {
		rt.Send(aid, i, epContribute, nil)
	}
	// Element 0 contributed 1 during the final ring hop... but epRing with
	// hops==0 lands on index 21%7 == 0, which contributed already.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ring reduction never completed")
	}
	// Verify every element was visited 3 times via a sum reduction.
	sum := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { sum <- vals[0] })
	rt.Broadcast(aid, epContribute, nil)
	select {
	case <-sum:
	case <-time.After(5 * time.Second):
		t.Fatal("second reduction never completed")
	}
}

func TestReductionOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		vals [][]float64
		want []float64
	}{
		{ReduceSum, [][]float64{{1, 2}, {3, 4}}, []float64{4, 6}},
		{ReduceMax, [][]float64{{1, 9}, {5, 2}}, []float64{5, 9}},
		{ReduceMin, [][]float64{{1, 9}, {5, 2}}, []float64{1, 2}},
	}
	for _, tc := range cases {
		var acc []float64
		for _, v := range tc.vals {
			acc = tc.op.apply(acc, v)
		}
		for i := range tc.want {
			if acc[i] != tc.want[i] {
				t.Errorf("op %v: acc = %v, want %v", tc.op, acc, tc.want)
			}
		}
	}
}

func TestShrinkPreservesState(t *testing.T) {
	rt := newTestRT(t, 8)
	aid, err := rt.CreateArray("test.counter", 32)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(3))
	rt.QuiesceWait()

	if err := rt.RescaleTo(4); err != nil {
		t.Fatalf("RescaleTo(4): %v", err)
	}
	if got := rt.NumPEs(); got != 4 {
		t.Fatalf("NumPEs = %d, want 4", got)
	}

	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
	rt.Broadcast(aid, epContribute, nil)
	select {
	case sum := <-done:
		if sum != 96 { // 32 elements × 3
			t.Errorf("sum after shrink = %g, want 96", sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reduction after shrink never completed")
	}
}

func TestExpandPreservesStateAndPopulatesNewPEs(t *testing.T) {
	rt := newTestRT(t, 2)
	aid, err := rt.CreateArray("test.counter", 16)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(7))
	rt.QuiesceWait()

	if err := rt.RescaleTo(8); err != nil {
		t.Fatalf("RescaleTo(8): %v", err)
	}
	if got := rt.NumPEs(); got != 8 {
		t.Fatalf("NumPEs = %d, want 8", got)
	}

	// All 8 PEs should host at least one of the 16 chares after expand LB.
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.pauseAll()
	empty := 0
	for _, p := range inc.pes {
		if len(p.chares) == 0 {
			empty++
		}
	}
	inc.resumeAll()
	if empty != 0 {
		t.Errorf("%d PEs empty after expand LB", empty)
	}

	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
	rt.Broadcast(aid, epContribute, nil)
	select {
	case sum := <-done:
		if sum != 112 { // 16 × 7
			t.Errorf("sum after expand = %g, want 112", sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reduction after expand never completed")
	}
}

func TestRescaleStatsRecorded(t *testing.T) {
	rt := newTestRT(t, 4)
	if _, err := rt.CreateArray("test.counter", 8); err != nil {
		t.Fatal(err)
	}
	if err := rt.RescaleTo(2); err != nil {
		t.Fatal(err)
	}
	if err := rt.RescaleTo(6); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) != 2 {
		t.Fatalf("recorded %d stats, want 2", len(stats))
	}
	if stats[0].Op != "shrink" || stats[0].OldPEs != 4 || stats[0].NewPEs != 2 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[1].Op != "expand" || stats[1].OldPEs != 2 || stats[1].NewPEs != 6 {
		t.Errorf("stats[1] = %+v", stats[1])
	}
	if stats[0].CheckpointBytes <= 0 {
		t.Error("shrink recorded no checkpoint bytes")
	}
	if stats[0].Total <= 0 || stats[1].Total <= 0 {
		t.Error("zero total rescale time")
	}
	if s := stats[0].String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestRescaleToSameCountIsNoop(t *testing.T) {
	rt := newTestRT(t, 4)
	if err := rt.RescaleTo(4); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.Stats()); n != 0 {
		t.Errorf("no-op rescale recorded %d stats", n)
	}
}

func TestRescaleToInvalid(t *testing.T) {
	rt := newTestRT(t, 4)
	if err := rt.RescaleTo(0); err == nil {
		t.Error("RescaleTo(0) succeeded")
	}
}

func TestBalanceMovesLoad(t *testing.T) {
	rt := newTestRT(t, 4)
	aid, err := rt.CreateArray("test.counter", 12)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture imbalance: pretend all load sits on PE 0's chares.
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.pauseAll()
	for id := range inc.pes[0].chares {
		inc.pes[0].loads[id] = 10.0
	}
	inc.resumeAll()

	moved, err := rt.Balance()
	if err != nil {
		t.Fatalf("Balance: %v", err)
	}
	if moved == 0 {
		t.Error("Balance moved nothing despite imbalance")
	}
	_ = aid
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rt := newTestRT(t, 4)
	aid, err := rt.CreateArray("test.counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(11))
	rt.QuiesceWait()

	bytes, err := rt.CheckpointTo("preempt/job1")
	if err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	if bytes <= 0 {
		t.Error("checkpoint wrote no bytes")
	}

	// Mutate state, then restore — the mutation must be rolled back.
	rt.Broadcast(aid, epAdd, encInt(100))
	rt.QuiesceWait()
	if err := rt.RestoreFrom("preempt/job1"); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}

	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
	rt.Broadcast(aid, epContribute, nil)
	select {
	case sum := <-done:
		if sum != 88 { // 8 × 11, not 8 × 111
			t.Errorf("sum after restore = %g, want 88", sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reduction after restore never completed")
	}
}

func TestRequestRescaleServicedAtBoundary(t *testing.T) {
	rt := newTestRT(t, 6)
	if _, err := rt.CreateArray("test.counter", 12); err != nil {
		t.Fatal(err)
	}
	done := rt.RequestRescale(3)
	if got := rt.PendingRescale(); got != 3 {
		t.Fatalf("PendingRescale = %d, want 3", got)
	}
	performed, err := rt.ServicePendingRescale()
	if err != nil || !performed {
		t.Fatalf("ServicePendingRescale = %v, %v", performed, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("rescale result: %v", err)
	}
	if rt.NumPEs() != 3 {
		t.Fatalf("NumPEs = %d, want 3", rt.NumPEs())
	}
	// Nothing pending now.
	if performed, _ := rt.ServicePendingRescale(); performed {
		t.Error("second ServicePendingRescale performed a rescale")
	}
}

func TestRequestRescaleCoalesces(t *testing.T) {
	rt := newTestRT(t, 4)
	if _, err := rt.CreateArray("test.counter", 8); err != nil {
		t.Fatal(err)
	}
	first := rt.RequestRescale(2)
	second := rt.RequestRescale(3)
	if err := <-first; err == nil {
		t.Error("superseded request did not fail")
	}
	if _, err := rt.ServicePendingRescale(); err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second request: %v", err)
	}
	if rt.NumPEs() != 3 {
		t.Fatalf("NumPEs = %d, want 3", rt.NumPEs())
	}
}

func TestServeCCSShrinkExpand(t *testing.T) {
	rt := newTestRT(t, 8)
	if _, err := rt.CreateArray("test.counter", 16); err != nil {
		t.Fatal(err)
	}
	var iter atomic.Int64
	h, err := rt.ServeCCS(CCSOptions{
		Addr: "127.0.0.1:0",
		Status: func() ccs.StatusReply {
			return ccs.StatusReply{NumPEs: rt.NumPEs(), Iteration: int(iter.Load()), TotalIters: 100}
		},
	})
	if err != nil {
		t.Fatalf("ServeCCS: %v", err)
	}
	defer h.Close()

	// Emulate the application's iteration loop servicing rescales.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			iter.Add(1)
			if _, err := rt.ServicePendingRescale(); err != nil {
				t.Errorf("ServicePendingRescale: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	c, err := ccs.Dial(h.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Shrink(4); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if rt.NumPEs() != 4 {
		t.Fatalf("NumPEs after CCS shrink = %d", rt.NumPEs())
	}
	if err := c.Expand(8, []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}); err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if rt.NumPEs() != 8 {
		t.Fatalf("NumPEs after CCS expand = %d", rt.NumPEs())
	}
	st, err := c.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if st.NumPEs != 8 {
		t.Errorf("Query NumPEs = %d", st.NumPEs)
	}
	if h.Rescales() != 2 {
		t.Errorf("Rescales = %d, want 2", h.Rescales())
	}
}

func TestServeCCSDecline(t *testing.T) {
	rt := newTestRT(t, 4)
	if _, err := rt.CreateArray("test.counter", 8); err != nil {
		t.Fatal(err)
	}
	h, err := rt.ServeCCS(CCSOptions{
		Addr: "127.0.0.1:0",
		AcceptRescale: func(req ccs.RescaleRequest, st ccs.StatusReply) error {
			return fmt.Errorf("only %d%% left", 5)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c, err := ccs.Dial(h.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Shrink(2); err == nil {
		t.Error("declined shrink reported success")
	}
	if rt.NumPEs() != 4 {
		t.Errorf("NumPEs changed despite decline: %d", rt.NumPEs())
	}
}

func TestManyRescaleCycles(t *testing.T) {
	rt := newTestRT(t, 8)
	aid, err := rt.CreateArray("test.counter", 24)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(1))
	rt.QuiesceWait()
	sizes := []int{4, 6, 2, 8, 3, 8}
	for _, n := range sizes {
		if err := rt.RescaleTo(n); err != nil {
			t.Fatalf("RescaleTo(%d): %v", n, err)
		}
		// State intact after every cycle.
		done := make(chan float64, 1)
		rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
		rt.Broadcast(aid, epContribute, nil)
		select {
		case sum := <-done:
			if sum != 24 {
				t.Fatalf("after RescaleTo(%d): sum = %g, want 24", n, sum)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("reduction timed out after RescaleTo(%d)", n)
		}
	}
}

func TestMessageToMigratedChareIsForwarded(t *testing.T) {
	rt := newTestRT(t, 4)
	aid, err := rt.CreateArray("test.counter", 4)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(2))
	rt.QuiesceWait()
	// Rescale so objects move; messages sent after still arrive.
	if err := rt.RescaleTo(2); err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(2))
	rt.QuiesceWait()
	done := make(chan float64, 1)
	rt.SetReductionClient(aid, func(vals []float64) { done <- vals[0] })
	rt.Broadcast(aid, epContribute, nil)
	select {
	case sum := <-done:
		if sum != 16 {
			t.Errorf("sum = %g, want 16", sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reduction timed out")
	}
}

func TestLoadsSurviveRescale(t *testing.T) {
	rt := newTestRT(t, 4)
	aid, err := rt.CreateArray("test.counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	rt.Broadcast(aid, epAdd, encInt(1))
	rt.QuiesceWait()
	if err := rt.RescaleTo(2); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.pauseAll()
	total := 0
	for _, p := range inc.pes {
		total += len(p.loads)
	}
	inc.resumeAll()
	if total != 8 {
		t.Errorf("loads for %d chares survived, want 8", total)
	}
	_ = aid
}

func TestShutdownIdempotent(t *testing.T) {
	rt, err := New(Config{PEs: 2, RestartLatency: ZeroRestartLatency})
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	rt.Shutdown() // must not panic or deadlock
	if err := rt.RescaleTo(4); err == nil {
		t.Error("RescaleTo succeeded after Shutdown")
	}
	if _, err := rt.CreateArray("test.counter", 2); err == nil {
		t.Error("CreateArray succeeded after Shutdown")
	}
}

func TestMsgqFIFOAndClose(t *testing.T) {
	q := newMsgq()
	for i := 0; i < 10; i++ {
		q.push(message{index: i})
	}
	if q.len() != 10 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 10; i++ {
		m, ok := q.pop()
		if !ok || m.index != i {
			t.Fatalf("pop %d = %+v, %v", i, m, ok)
		}
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Error("pop succeeded on closed empty queue")
	}
	q.push(message{index: 99}) // dropped silently
	if q.len() != 0 {
		t.Error("push to closed queue was enqueued")
	}
}

func TestDefaultRestartLatencyShape(t *testing.T) {
	if DefaultRestartLatency(64) <= DefaultRestartLatency(4) {
		t.Error("restart latency must grow with PE count")
	}
	if ZeroRestartLatency(64) != 0 {
		t.Error("ZeroRestartLatency is not zero")
	}
}
