package charm

import (
	"sync"
	"testing"
)

// FIFO order must survive ring growth and wrap-around.
func TestMsgqFIFOAcrossGrowthAndWrap(t *testing.T) {
	q := newMsgq()
	next := 0
	popped := 0
	// Interleave pushes and pops so the ring's head walks around the buffer
	// while the queue repeatedly grows past its current capacity.
	for round := 0; round < 6; round++ {
		for i := 0; i < 10*(round+1); i++ {
			q.push(message{entry: next})
			next++
		}
		for i := 0; i < 5*(round+1); i++ {
			m, ok := q.pop()
			if !ok {
				t.Fatal("pop on live queue returned !ok")
			}
			if m.entry != popped {
				t.Fatalf("popped entry %d, want %d", m.entry, popped)
			}
			popped++
		}
	}
	if got := q.len(); got != next-popped {
		t.Fatalf("len %d, want %d", got, next-popped)
	}
	q.close()
	for {
		m, ok := q.pop()
		if !ok {
			break
		}
		if m.entry != popped {
			t.Fatalf("drain popped entry %d, want %d", m.entry, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("drained %d of %d messages", popped, next)
	}
}

func TestMsgqCloseSemantics(t *testing.T) {
	q := newMsgq()
	q.push(message{entry: 1})
	q.close()
	q.push(message{entry: 2}) // dropped: queue is closed
	if m, ok := q.pop(); !ok || m.entry != 1 {
		t.Fatalf("pop after close: %v %v", m, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a dropped message")
	}
	if q.len() != 0 {
		t.Fatalf("len %d after drain", q.len())
	}
}

// A blocked pop must wake on push from another goroutine.
func TestMsgqBlockingPop(t *testing.T) {
	q := newMsgq()
	done := make(chan message, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, ok := q.pop()
		if !ok {
			t.Error("pop returned !ok")
		}
		done <- m
	}()
	q.push(message{entry: 99})
	if m := <-done; m.entry != 99 {
		t.Fatalf("woke with entry %d", m.entry)
	}
	wg.Wait()
}

// slideQ is the pre-ring-buffer msgq layout (slide the slice on every pop),
// kept here as the benchmark baseline so the ring buffer's win on deep
// queues stays demonstrable.
type slideQ struct {
	mu    sync.Mutex
	items []message
}

func (q *slideQ) push(m message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
}

func (q *slideQ) pop() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return message{}, false
	}
	m := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return m, true
}

// BenchmarkMsgqDeep drains a deep backlog: the ring buffer pops in O(1) while
// the old slide layout copies the remaining backlog on every pop.
//
//	go test ./internal/charm -bench MsgqDeep
func BenchmarkMsgqDeep(b *testing.B) {
	const depth = 16384
	b.Run("ring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := newMsgq()
			for j := 0; j < depth; j++ {
				q.push(message{entry: j})
			}
			for j := 0; j < depth; j++ {
				if _, ok := q.pop(); !ok {
					b.Fatal("empty")
				}
			}
		}
	})
	b.Run("slide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := &slideQ{}
			for j := 0; j < depth; j++ {
				q.push(message{entry: j})
			}
			for j := 0; j < depth; j++ {
				if _, ok := q.pop(); !ok {
					b.Fatal("empty")
				}
			}
		}
	})
}

// BenchmarkMsgqSteady is the common shallow case (push/pop pairs): the ring
// must not regress it.
func BenchmarkMsgqSteady(b *testing.B) {
	q := newMsgq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(message{entry: i})
		if _, ok := q.pop(); !ok {
			b.Fatal("empty")
		}
	}
}
