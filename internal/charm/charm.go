// Package charm implements a Charm++-style message-driven parallel runtime
// with migratable objects (chares), measurement-based load balancing, and
// dynamic shrink/expand of the processing-element (PE) count — the substrate
// the paper's elastic scheduler depends on (paper §2.1–2.2).
//
// Model:
//
//   - Each PE is a goroutine with a message queue and a scheduler loop that
//     delivers messages to destination objects (the non-SMP build: one PE per
//     worker, as used in the paper §3.1).
//   - Applications are decomposed into chare arrays whose elements are
//     Pupable objects. Overdecomposition (more chares than PEs) enables load
//     balancing and rescaling.
//   - Entry methods are registered per chare type and invoked via messages.
//     The runtime looks up the destination PE in a location manager,
//     serializes nothing for local semantics (payloads are byte slices owned
//     by the receiver), and enqueues the message on the destination PE.
//   - Rescaling follows §2.2: on shrink, the load balancer first moves
//     objects off the doomed PEs, then the application state is checkpointed
//     to (emulated) shared memory, the runtime is restarted with the new PE
//     count, and state is restored. On expand, restart happens first and a
//     load-balance step follows to populate the new PEs.
package charm

import (
	"fmt"
	"sync"
	"time"

	"elastichpc/internal/lb"
	"elastichpc/internal/pup"
	"elastichpc/internal/shm"
)

// Chare is a migratable object. All state referenced by Pup migrates with
// the object; anything else must be reconstructible.
type Chare interface {
	pup.Pupable
}

// Ctx is the execution context handed to an entry method. It is only valid
// for the duration of the call.
type Ctx struct {
	rt    *Runtime
	pe    int
	Array int // array this chare belongs to
	Index int // this chare's index within the array
}

// MyPE returns the PE the entry method is executing on.
func (c *Ctx) MyPE() int { return c.pe }

// NumPEs returns the PE count of the current incarnation.
func (c *Ctx) NumPEs() int { return c.rt.NumPEs() }

// NumElements returns the element count of the given array.
func (c *Ctx) NumElements(array int) int { return c.rt.arrayLen(array) }

// Send delivers an entry-method invocation to element (array, index).
func (c *Ctx) Send(array, index, entry int, data []byte) {
	c.rt.send(array, index, entry, data)
}

// Contribute adds this chare's contribution to the current reduction over
// its array. When every element has contributed, the array's reduction
// client runs with the combined values.
func (c *Ctx) Contribute(vals []float64, op ReduceOp) {
	c.rt.contribute(c.Array, vals, op)
}

// EntryFn is the body of an entry method.
type EntryFn func(obj Chare, ctx *Ctx, data []byte)

// Entry describes one entry method of a chare type.
type Entry struct {
	Name string
	Fn   EntryFn
}

// chareType is a registered migratable type.
type chareType struct {
	name    string
	factory func() Chare
	entries []Entry
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]*chareType)
)

// RegisterType registers a chare type by name with its factory and entry
// table. Registering the same name twice replaces the previous registration
// (types are registered in init functions; replacement keeps tests
// independent).
func RegisterType(name string, factory func() Chare, entries []Entry) {
	if name == "" || factory == nil {
		panic("charm: RegisterType requires a name and factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = &chareType{name: name, factory: factory, entries: entries}
}

func lookupType(name string) (*chareType, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	ct, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("charm: chare type %q not registered", name)
	}
	return ct, nil
}

// ReduceOp combines reduction contributions element-wise.
type ReduceOp int

// Supported reduction operations.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) apply(acc, vals []float64) []float64 {
	if acc == nil {
		return append([]float64(nil), vals...)
	}
	if len(acc) != len(vals) {
		// Contribution shape mismatch is a programming error.
		panic(fmt.Sprintf("charm: reduction contribution has %d values, expected %d", len(vals), len(acc)))
	}
	switch op {
	case ReduceSum:
		for i, v := range vals {
			acc[i] += v
		}
	case ReduceMax:
		for i, v := range vals {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case ReduceMin:
		for i, v := range vals {
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
	return acc
}

// Config configures a Runtime.
type Config struct {
	// PEs is the initial number of processing elements. Must be >= 1.
	PEs int
	// Store is the shared-memory checkpoint store. If nil a private
	// unlimited store is created.
	Store *shm.Store
	// RescaleLB is the strategy used at shrink/expand time. Defaults to
	// GreedyLB, matching Charm++ practice when every object moves anyway.
	RescaleLB lb.Strategy
	// RunLB is the strategy for in-run Balance() calls. Defaults to
	// RefineLB (minimize migrations).
	RunLB lb.Strategy
	// RestartLatency models the out-of-process restart cost (mpirun +
	// MPI_Init) that the in-process goroutine restart does not pay.
	// Defaults to DefaultRestartLatency; set to ZeroRestartLatency to
	// measure only the real in-process work.
	RestartLatency func(pes int) time.Duration
}

// DefaultRestartLatency models MPI startup cost: a fixed mpirun launch cost
// plus a per-rank connection-establishment term. Calibrated so the Figure 5
// curves have the paper's shape (restart grows with ranks and dominates
// small-problem rescales).
func DefaultRestartLatency(pes int) time.Duration {
	return 100*time.Millisecond + time.Duration(pes)*12*time.Millisecond
}

// ZeroRestartLatency disables the modelled restart cost.
func ZeroRestartLatency(int) time.Duration { return 0 }

// RescaleStats records the duration of each rescaling phase (paper §4.2).
type RescaleStats struct {
	Op              string // "shrink" or "expand"
	OldPEs, NewPEs  int
	LoadBalance     time.Duration
	Checkpoint      time.Duration
	Restart         time.Duration
	Restore         time.Duration
	Total           time.Duration
	CheckpointBytes int64
	Migrations      int
}

// String formats the stats like the paper's Figure 5 series.
func (s RescaleStats) String() string {
	return fmt.Sprintf("%s %d->%d lb=%v ckpt=%v restart=%v restore=%v total=%v bytes=%d",
		s.Op, s.OldPEs, s.NewPEs, s.LoadBalance, s.Checkpoint, s.Restart, s.Restore, s.Total, s.CheckpointBytes)
}
