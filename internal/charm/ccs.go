package charm

import (
	"encoding/json"
	"fmt"
	"sync"

	"elastichpc/internal/ccs"
)

// StatusFunc reports application progress for CCS queries and for the
// cost/benefit rescale gate.
type StatusFunc func() ccs.StatusReply

// CCSOptions configures ServeCCS.
type CCSOptions struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Status supplies application progress for charm.query. Optional.
	Status StatusFunc
	// AcceptRescale, if non-nil, lets the application decline a rescale
	// command (paper §6: "giving the application control to accept or
	// decline a rescaling command"). Returning an error declines.
	AcceptRescale func(req ccs.RescaleRequest, st ccs.StatusReply) error
}

// CCSHandle is a live CCS endpoint attached to a runtime.
type CCSHandle struct {
	server *ccs.Server
	addr   string

	mu       sync.Mutex
	rescales int
}

// Addr returns the bound listen address.
func (h *CCSHandle) Addr() string { return h.addr }

// Rescales returns the number of rescale commands accepted so far.
func (h *CCSHandle) Rescales() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rescales
}

// Close shuts the CCS endpoint down.
func (h *CCSHandle) Close() error { return h.server.Close() }

// ServeCCS exposes the runtime's shrink/expand/query commands over a CCS
// socket. Shrink and expand block until the application services the request
// at its next load-balancing step and the rescale completes, then return the
// acknowledgment — the ordering the operator relies on (paper §3.1: "After
// the Charm++ application returns an acknowledgment for the shrink
// operation, remove extra pods").
func (rt *Runtime) ServeCCS(opts CCSOptions) (*CCSHandle, error) {
	h := &CCSHandle{server: ccs.NewServer()}

	status := opts.Status
	if status == nil {
		status = func() ccs.StatusReply { return ccs.StatusReply{NumPEs: rt.NumPEs()} }
	}

	rescale := func(payload json.RawMessage) ([]byte, error) {
		var req ccs.RescaleRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("bad rescale request: %w", err)
		}
		if req.NewPEs < 1 {
			return nil, fmt.Errorf("cannot rescale to %d PEs", req.NewPEs)
		}
		if opts.AcceptRescale != nil {
			if err := opts.AcceptRescale(req, status()); err != nil {
				return nil, fmt.Errorf("rescale declined: %w", err)
			}
		}
		done := rt.RequestRescale(req.NewPEs)
		if err := <-done; err != nil {
			return nil, err
		}
		h.mu.Lock()
		h.rescales++
		h.mu.Unlock()
		return nil, nil
	}

	h.server.Handle(ccs.CmdShrink, rescale)
	h.server.Handle(ccs.CmdExpand, rescale)
	h.server.Handle(ccs.CmdQuery, func(json.RawMessage) ([]byte, error) {
		return json.Marshal(status())
	})
	h.server.Handle(ccs.CmdListPEs, func(json.RawMessage) ([]byte, error) {
		n := rt.NumPEs()
		pes := make([]int, n)
		for i := range pes {
			pes[i] = i
		}
		return json.Marshal(pes)
	})

	addr, err := h.server.Listen(opts.Addr)
	if err != nil {
		return nil, err
	}
	h.addr = addr
	return h, nil
}
