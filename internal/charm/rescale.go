package charm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"elastichpc/internal/lb"
	"elastichpc/internal/pup"
	"elastichpc/internal/shm"
)

// Balance runs an in-run load-balancing step with the configured RunLB
// strategy, migrating chares between PEs of the current incarnation. The
// caller must be at a barrier (no in-flight application messages beyond
// those already queued; the runtime quiesces first).
func (rt *Runtime) Balance() (int, error) {
	rt.rescaleMu.Lock()
	defer rt.rescaleMu.Unlock()

	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()

	inc.quiesce()
	inc.pauseAll()
	defer inc.resumeAll()

	db := inc.loadDatabase()
	if len(db.Objs) == 0 {
		return 0, nil
	}
	assign, err := rt.cfg.RunLB.Assign(db)
	if err != nil {
		return 0, fmt.Errorf("charm: balance: %w", err)
	}
	moved, err := migrate(inc, assign)
	if err != nil {
		return 0, err
	}
	inc.resetLoads()
	return moved, nil
}

// migrate physically moves chares to match the assignment. PEs must be
// paused. Each migration packs the object with PUP, removes it from the
// source, and unpacks a fresh instance at the destination — the same
// serialize/transfer/rebuild work a distributed runtime performs.
func migrate(inc *incarnation, assign lb.Assignment) (int, error) {
	moved := 0
	for id, dst := range assign {
		src := inc.lookup(id)
		if src == dst {
			continue
		}
		if src < 0 || src >= len(inc.pes) || dst < 0 || dst >= len(inc.pes) {
			return moved, fmt.Errorf("charm: migrate %v: bad PEs %d->%d", id, src, dst)
		}
		srcPE, dstPE := inc.pes[src], inc.pes[dst]
		obj := srcPE.chares[id]
		data, err := pup.Pack(obj)
		if err != nil {
			return moved, fmt.Errorf("charm: pack %v: %w", id, err)
		}
		fresh := inc.rt.arrayMeta(id.Array).typ.factory()
		if err := pup.Unpack(fresh, data); err != nil {
			return moved, fmt.Errorf("charm: unpack %v: %w", id, err)
		}
		delete(srcPE.chares, id)
		dstPE.chares[id] = fresh
		dstPE.loads[id] = srcPE.loads[id]
		delete(srcPE.loads, id)
		inc.place(id, dst)
		moved++
	}
	return moved, nil
}

// RescaleTo changes the PE count to newPEs using the checkpoint/restart
// protocol of paper §2.2:
//
//	shrink:  LB off doomed PEs → checkpoint to shm → restart → restore
//	expand:  checkpoint to shm → restart with more PEs → restore → LB
//
// The caller must be at a barrier (quiescent application). Per-phase timings
// are recorded and retrievable via Stats.
func (rt *Runtime) RescaleTo(newPEs int) error {
	rt.rescaleMu.Lock()
	defer rt.rescaleMu.Unlock()

	if newPEs < 1 {
		return fmt.Errorf("charm: cannot rescale to %d PEs", newPEs)
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return fmt.Errorf("charm: runtime is shut down")
	}
	inc := rt.inc
	rt.mu.Unlock()

	oldPEs := len(inc.pes)
	if newPEs == oldPEs {
		return nil
	}
	op := "expand"
	if newPEs < oldPEs {
		op = "shrink"
	}
	stats := RescaleStats{Op: op, OldPEs: oldPEs, NewPEs: newPEs}
	totalStart := time.Now()

	inc.quiesce()
	inc.pauseAll()

	// Phase 1 (shrink only): disable assignment to the PEs being removed
	// and move their objects away (paper: "the load balancer moves objects
	// out of the processes to be killed").
	if op == "shrink" {
		t0 := time.Now()
		db := inc.loadDatabase()
		for pe := newPEs; pe < oldPEs; pe++ {
			db.Available[pe] = false
		}
		if len(db.Objs) > 0 {
			assign, err := rt.cfg.RescaleLB.Assign(db)
			if err != nil {
				inc.resumeAll()
				return fmt.Errorf("charm: shrink LB: %w", err)
			}
			moved, err := migrate(inc, assign)
			if err != nil {
				inc.resumeAll()
				return err
			}
			stats.Migrations += moved
		}
		stats.LoadBalance = time.Since(t0)
	}

	// Phase 2: checkpoint every PE's chares to shared memory, in parallel
	// across PEs (each pod writes its own /dev/shm segment).
	rt.gen++
	prefix := fmt.Sprintf("ckpt/gen%d/", rt.gen)
	t0 := time.Now()
	bytes, err := checkpoint(inc, rt.cfg.Store, prefix)
	if err != nil {
		inc.resumeAll()
		return fmt.Errorf("charm: checkpoint: %w", err)
	}
	stats.Checkpoint = time.Since(t0)
	stats.CheckpointBytes = bytes

	// Phase 3: restart — tear down the old incarnation and build a new one
	// with the target PE count. The modelled RestartLatency stands in for
	// mpirun + MPI_Init cost of an out-of-process restart.
	t0 = time.Now()
	inc.resumeAll()
	inc.stop()
	if d := rt.cfg.RestartLatency(newPEs); d > 0 {
		time.Sleep(d)
	}
	fresh := newIncarnation(rt, newPEs)
	stats.Restart = time.Since(t0)

	// Phase 4: restore chare state from the checkpoint. Objects that were
	// on PE p land on PE p of the new incarnation (valid for shrink after
	// phase 1; for expand the extra PEs start empty).
	t0 = time.Now()
	if err := restore(rt, fresh, prefix); err != nil {
		return fmt.Errorf("charm: restore: %w", err)
	}
	stats.Restore = time.Since(t0)
	rt.cfg.Store.DeletePrefix(prefix)

	rt.mu.Lock()
	rt.inc = fresh
	rt.mu.Unlock()

	// Phase 5 (expand only): a load-balancing step distributes objects
	// onto the new PEs (paper: "A load balancing step is performed after
	// the restart").
	if op == "expand" {
		t0 = time.Now()
		fresh.pauseAll()
		db := fresh.loadDatabase()
		if len(db.Objs) > 0 {
			assign, err := rt.cfg.RescaleLB.Assign(db)
			if err != nil {
				fresh.resumeAll()
				return fmt.Errorf("charm: expand LB: %w", err)
			}
			moved, err := migrate(fresh, assign)
			if err != nil {
				fresh.resumeAll()
				return err
			}
			stats.Migrations += moved
		}
		fresh.resumeAll()
		stats.LoadBalance = time.Since(t0)
	}

	stats.Total = time.Since(totalStart)
	rt.mu.Lock()
	rt.stats = append(rt.stats, stats)
	rt.mu.Unlock()
	return nil
}

// peCheckpoint is the serialized image of one PE's chares.
type peCheckpoint struct {
	PE      int
	Arrays  []int // parallel arrays: array id, element index, load, data
	Indices []int
	Loads   []float64
	Blobs   [][]byte
}

// Pup implements pup.Pupable.
func (c *peCheckpoint) Pup(p *pup.PUP) {
	p.Int(&c.PE)
	p.Ints(&c.Arrays)
	p.Ints(&c.Indices)
	p.Float64s(&c.Loads)
	n := len(c.Blobs)
	p.Int(&n)
	if p.IsUnpacking() {
		c.Blobs = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		p.Bytes_(&c.Blobs[i])
	}
}

// checkpoint packs every PE's chares into the store under prefix, one
// segment per PE, in parallel. Returns the total checkpoint size.
func checkpoint(inc *incarnation, store *shm.Store, prefix string) (int64, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int64
		first error
	)
	for _, p := range inc.pes {
		wg.Add(1)
		go func(p *pe) {
			defer wg.Done()
			ck := &peCheckpoint{PE: p.id}
			// Deterministic order for reproducible checkpoints.
			ids := make([]lb.ObjID, 0, len(p.chares))
			for id := range p.chares {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool {
				if ids[i].Array != ids[j].Array {
					return ids[i].Array < ids[j].Array
				}
				return ids[i].Index < ids[j].Index
			})
			for _, id := range ids {
				blob, err := pup.Pack(p.chares[id])
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				ck.Arrays = append(ck.Arrays, id.Array)
				ck.Indices = append(ck.Indices, id.Index)
				ck.Loads = append(ck.Loads, p.loads[id])
				ck.Blobs = append(ck.Blobs, blob)
			}
			data, err := pup.Pack(ck)
			if err == nil {
				err = store.Write(fmt.Sprintf("%spe%d", prefix, p.id), data)
			}
			mu.Lock()
			if err != nil && first == nil {
				first = err
			}
			total += int64(len(data))
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return total, first
}

// restore loads every checkpoint segment under prefix into the new
// incarnation, in parallel. Objects keep their checkpointed PE id; segments
// from PEs beyond the new count are redistributed onto PE (old % new) — this
// only happens if a caller restores a checkpoint into a smaller incarnation
// without the shrink-side LB (e.g. failure recovery).
func restore(rt *Runtime, inc *incarnation, prefix string) error {
	keys := rt.cfg.Store.KeysPrefix(prefix)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	inc.pauseAll()
	defer inc.resumeAll()
	// Unpack segments in parallel, then place serially (map writes).
	cks := make([]*peCheckpoint, len(keys))
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			data, err := rt.cfg.Store.Read(key)
			if err == nil {
				ck := &peCheckpoint{}
				if err = pup.Unpack(ck, data); err == nil {
					cks[i] = ck
					return
				}
			}
			mu.Lock()
			if first == nil {
				first = fmt.Errorf("segment %s: %w", key, err)
			}
			mu.Unlock()
		}(i, key)
	}
	wg.Wait()
	if first != nil {
		return first
	}
	for _, ck := range cks {
		if ck == nil {
			continue
		}
		target := ck.PE
		if target >= len(inc.pes) {
			target = ck.PE % len(inc.pes)
		}
		p := inc.pes[target]
		for i := range ck.Arrays {
			id := lb.ObjID{Array: ck.Arrays[i], Index: ck.Indices[i]}
			meta := rt.arrayMeta(id.Array)
			obj := meta.typ.factory()
			if err := pup.Unpack(obj, ck.Blobs[i]); err != nil {
				return fmt.Errorf("object %v: %w", id, err)
			}
			p.chares[id] = obj
			p.loads[id] = ck.Loads[i]
			inc.place(id, target)
		}
	}
	return nil
}

// CheckpointTo writes a full application checkpoint under the given key
// prefix without restarting — the building block for the preemption
// extension (paper §3.2.2: checkpoint to a store, kill the job, restart
// later from the checkpoint).
func (rt *Runtime) CheckpointTo(prefix string) (int64, error) {
	rt.rescaleMu.Lock()
	defer rt.rescaleMu.Unlock()
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.quiesce()
	inc.pauseAll()
	defer inc.resumeAll()
	return checkpoint(inc, rt.cfg.Store, prefix)
}

// RestoreFrom rebuilds all chare state from a checkpoint written by
// CheckpointTo, replacing current state. Arrays must already exist (same
// registration order as at checkpoint time).
func (rt *Runtime) RestoreFrom(prefix string) error {
	rt.rescaleMu.Lock()
	defer rt.rescaleMu.Unlock()
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	rt.mu.Lock()
	inc := rt.inc
	rt.mu.Unlock()
	inc.quiesce()
	inc.stop()
	fresh := newIncarnation(rt, len(inc.pes))
	if err := restore(rt, fresh, prefix); err != nil {
		return err
	}
	rt.mu.Lock()
	rt.inc = fresh
	rt.mu.Unlock()
	return nil
}
