package charm

import "sync"

// msgKind discriminates scheduler messages.
type msgKind int

const (
	kInvoke msgKind = iota // deliver an entry-method invocation
	kPause                 // park the PE until resumed (quiescence)
	kStop                  // exit the scheduler loop
)

// message is one unit of work in a PE's queue.
type message struct {
	kind  msgKind
	array int
	index int
	entry int
	data  []byte
}

// msgq is an unbounded FIFO message queue. Sends never block, which makes
// arbitrary chare-to-chare communication patterns deadlock-free (a bounded
// channel could deadlock two PEs sending into each other's full queues).
// Messages live in a power-of-two ring buffer: push and pop are O(1) at any
// queue depth, where the previous slide-on-pop layout copied the whole
// backlog on every dequeue (O(n) per pop, O(n²) to drain a deep queue).
type msgq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []message // ring storage; len(buf) is 0 or a power of two
	head   int       // index of the oldest message
	n      int       // queued message count
	closed bool
}

// minMsgqCap is the initial ring allocation on first push.
const minMsgqCap = 16

func newMsgq() *msgq {
	q := &msgq{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues m. Pushing to a closed queue drops the message.
func (q *msgq) push(m message) {
	q.mu.Lock()
	if !q.closed {
		if q.n == len(q.buf) {
			q.grow()
		}
		q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
		q.n++
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// grow doubles the ring, unwrapping the live window to the front. Called with
// q.mu held and the ring full.
func (q *msgq) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = minMsgqCap
	}
	buf := make([]message, newCap)
	copied := copy(buf, q.buf[q.head:])
	copy(buf[copied:], q.buf[:q.head])
	q.buf = buf
	q.head = 0
}

// pop dequeues the next message, blocking until one is available. It returns
// ok=false once the queue is closed and drained.
func (q *msgq) pop() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.n == 0 {
		return message{}, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = message{} // release the payload for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return m, true
}

// close marks the queue closed and wakes any blocked pop.
func (q *msgq) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len reports the number of queued messages.
func (q *msgq) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
