package charm

import "sync"

// msgKind discriminates scheduler messages.
type msgKind int

const (
	kInvoke msgKind = iota // deliver an entry-method invocation
	kPause                 // park the PE until resumed (quiescence)
	kStop                  // exit the scheduler loop
)

// message is one unit of work in a PE's queue.
type message struct {
	kind  msgKind
	array int
	index int
	entry int
	data  []byte
}

// msgq is an unbounded FIFO message queue. Sends never block, which makes
// arbitrary chare-to-chare communication patterns deadlock-free (a bounded
// channel could deadlock two PEs sending into each other's full queues).
type msgq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []message
	closed bool
}

func newMsgq() *msgq {
	q := &msgq{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues m. Pushing to a closed queue drops the message.
func (q *msgq) push(m message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pop dequeues the next message, blocking until one is available. It returns
// ok=false once the queue is closed and drained.
func (q *msgq) pop() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return message{}, false
	}
	m := q.items[0]
	// Slide rather than re-slice forever so the backing array is reused.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return m, true
}

// close marks the queue closed and wakes any blocked pop.
func (q *msgq) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len reports the number of queued messages.
func (q *msgq) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
