package charm

import (
	"sync"
	"sync/atomic"
	"time"

	"elastichpc/internal/lb"
)

// pe is one processing element: a scheduler goroutine, its message queue,
// and the chares it currently hosts. Chare state is only ever touched by the
// PE's scheduler loop or by the coordinator while the PE is parked at a
// pause point, so no per-chare locking is needed.
type pe struct {
	id    int
	queue *msgq

	// chares and loads are owned by the scheduler goroutine, except while
	// the PE is paused (coordinator access) — see incarnation.pauseAll.
	chares map[lb.ObjID]Chare
	loads  map[lb.ObjID]float64

	pauseAck chan struct{}
	resume   chan struct{}
	done     chan struct{}
}

func newPE(id int) *pe {
	return &pe{
		id:       id,
		queue:    newMsgq(),
		chares:   make(map[lb.ObjID]Chare),
		loads:    make(map[lb.ObjID]float64),
		pauseAck: make(chan struct{}),
		resume:   make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the PE scheduler loop (paper §2.1: "Each Processing Element runs a
// scheduler and has a message queue").
func (p *pe) run(inc *incarnation) {
	defer close(p.done)
	for {
		m, ok := p.queue.pop()
		if !ok {
			return
		}
		switch m.kind {
		case kInvoke:
			p.deliver(inc, m)
			inc.inflight.Add(-1)
		case kPause:
			p.pauseAck <- struct{}{}
			<-p.resume
		case kStop:
			return
		}
	}
}

// deliver invokes the entry method on the destination chare, timing the call
// for the load-balancing database.
func (p *pe) deliver(inc *incarnation, m message) {
	id := lb.ObjID{Array: m.array, Index: m.index}
	obj, ok := p.chares[id]
	if !ok {
		// The object migrated after the message was routed; re-route.
		// This mirrors Charm++'s location-manager forwarding.
		inc.rt.send(m.array, m.index, m.entry, m.data)
		return
	}
	entries := inc.rt.arrayEntries(m.array)
	if m.entry < 0 || m.entry >= len(entries) {
		panic("charm: entry index out of range")
	}
	ctx := &Ctx{rt: inc.rt, pe: p.id, Array: m.array, Index: m.index}
	start := time.Now()
	entries[m.entry].Fn(obj, ctx, m.data)
	p.loads[id] += time.Since(start).Seconds()
}

// incarnation is one "launch" of the runtime: a fixed set of PEs plus the
// location manager. Rescaling tears down the incarnation and builds a new
// one from the checkpoint, matching Charm++'s checkpoint/restart rescale.
type incarnation struct {
	rt    *Runtime
	pes   []*pe
	locMu sync.RWMutex
	loc   map[lb.ObjID]int // object -> hosting PE

	inflight atomic.Int64 // invoke messages enqueued but not yet processed
	wg       sync.WaitGroup
}

func newIncarnation(rt *Runtime, numPE int) *incarnation {
	inc := &incarnation{rt: rt, loc: make(map[lb.ObjID]int)}
	for i := 0; i < numPE; i++ {
		inc.pes = append(inc.pes, newPE(i))
	}
	for _, p := range inc.pes {
		inc.wg.Add(1)
		go func(p *pe) {
			defer inc.wg.Done()
			p.run(inc)
		}(p)
	}
	return inc
}

// lookup returns the PE hosting the object, or -1.
func (inc *incarnation) lookup(id lb.ObjID) int {
	inc.locMu.RLock()
	defer inc.locMu.RUnlock()
	if pe, ok := inc.loc[id]; ok {
		return pe
	}
	return -1
}

// place records that id lives on pe. Called at creation, migration, restore.
func (inc *incarnation) place(id lb.ObjID, pe int) {
	inc.locMu.Lock()
	inc.loc[id] = pe
	inc.locMu.Unlock()
}

// send routes an invoke message to the hosting PE.
func (inc *incarnation) send(array, index, entry int, data []byte) {
	id := lb.ObjID{Array: array, Index: index}
	pe := inc.lookup(id)
	if pe < 0 {
		panic("charm: send to unknown object")
	}
	inc.inflight.Add(1)
	inc.pes[pe].queue.push(message{kind: kInvoke, array: array, index: index, entry: entry, data: data})
}

// quiesce waits until no invoke messages are in flight. Callers must ensure
// no new work is being injected (the runtime rescales at iteration barriers,
// so this holds by construction).
func (inc *incarnation) quiesce() {
	for inc.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
}

// pauseAll parks every PE at a pause point and returns after all have
// acknowledged. While paused, the coordinator may access chare maps freely.
func (inc *incarnation) pauseAll() {
	for _, p := range inc.pes {
		p.queue.push(message{kind: kPause})
	}
	for _, p := range inc.pes {
		<-p.pauseAck
	}
}

// resumeAll releases PEs parked by pauseAll.
func (inc *incarnation) resumeAll() {
	for _, p := range inc.pes {
		p.resume <- struct{}{}
	}
}

// stop shuts down every PE scheduler and waits for them to exit.
func (inc *incarnation) stop() {
	for _, p := range inc.pes {
		p.queue.close()
	}
	inc.wg.Wait()
}

// loadDatabase snapshots measured loads into an LB database. Must be called
// while paused or stopped.
func (inc *incarnation) loadDatabase() *lb.Database {
	db := lb.NewDatabase(len(inc.pes))
	for _, p := range inc.pes {
		for id, load := range p.loads {
			db.Objs = append(db.Objs, lb.ObjLoad{ID: id, PE: p.id, Load: load})
		}
	}
	return db
}

// resetLoads clears measured loads after a balancing step.
func (inc *incarnation) resetLoads() {
	for _, p := range inc.pes {
		for id := range p.loads {
			delete(p.loads, id)
		}
	}
}
