package charm

import (
	"fmt"
	"testing"

	"elastichpc/internal/lb"
	"elastichpc/internal/pup"
)

// benchChare carries a configurable payload so migration and checkpoint
// benchmarks can sweep state size.
type benchChare struct {
	Data []float64
}

func (c *benchChare) Pup(p *pup.PUP) { p.Float64s(&c.Data) }

const benchEpNop = 0

func init() {
	RegisterType("bench.chare", func() Chare { return &benchChare{} }, []Entry{
		{Name: "nop", Fn: func(obj Chare, ctx *Ctx, data []byte) {}},
		{Name: "contribute", Fn: func(obj Chare, ctx *Ctx, data []byte) {
			ctx.Contribute([]float64{1}, ReduceSum)
		}},
	})
}

// BenchmarkMessageDelivery measures point-to-point entry-method invocation
// throughput across PEs.
func BenchmarkMessageDelivery(b *testing.B) {
	rt, err := New(Config{PEs: 4, RestartLatency: ZeroRestartLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	aid, err := rt.CreateArray("bench.chare", 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(aid, i%64, benchEpNop, nil)
	}
	rt.QuiesceWait()
}

// BenchmarkBroadcastReduction measures a full broadcast + reduction round,
// the runtime's per-iteration synchronization cost.
func BenchmarkBroadcastReduction(b *testing.B) {
	rt, err := New(Config{PEs: 4, RestartLatency: ZeroRestartLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	aid, err := rt.CreateArray("bench.chare", 64)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{}, 1)
	rt.SetReductionClient(aid, func([]float64) { done <- struct{}{} })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Broadcast(aid, 1, nil)
		<-done
	}
}

// BenchmarkRescaleByState sweeps checkpoint state size through a full
// shrink/expand cycle — the runtime-level analogue of Figure 5c.
func BenchmarkRescaleByState(b *testing.B) {
	for _, kb := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("state=%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rt, err := New(Config{PEs: 8, RestartLatency: ZeroRestartLatency})
				if err != nil {
					b.Fatal(err)
				}
				aid, err := rt.CreateArray("bench.chare", 32)
				if err != nil {
					b.Fatal(err)
				}
				// Give every chare kb kilobytes of state.
				rt.mu.Lock()
				inc := rt.inc
				rt.mu.Unlock()
				inc.pauseAll()
				for _, p := range inc.pes {
					for id := range p.chares {
						p.chares[id] = &benchChare{Data: make([]float64, kb*128)}
					}
				}
				inc.resumeAll()
				_ = aid
				b.StartTimer()
				if err := rt.RescaleTo(4); err != nil {
					b.Fatal(err)
				}
				if err := rt.RescaleTo(8); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				rt.Shutdown()
			}
		})
	}
}

// BenchmarkMigration measures single-object pack/move/unpack cost during an
// in-run Balance pass.
func BenchmarkMigration(b *testing.B) {
	rt, err := New(Config{PEs: 2, RestartLatency: ZeroRestartLatency, RunLB: lb.Rotate{}})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	if _, err := rt.CreateArray("bench.chare", 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate reassigns round-robin, forcing migrations every pass.
		if _, err := rt.Balance(); err != nil {
			b.Fatal(err)
		}
	}
}
