// Package profiling is the experiment CLIs' shared pprof harness: one call
// starts a CPU profile and returns the cleanup that stops it and writes a
// post-GC heap profile, so every harness binary profiles the real hot path
// with identical semantics (see docs/ARCHITECTURE.md §Profiling).
package profiling

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath and returns the cleanup function
// that stops it and writes the heap profile to memPath. Either path may be
// empty to skip that profile. Errors are fatal — a profiling run that
// cannot record is not worth continuing. (log.Fatal exits elsewhere skip
// the cleanup; a truncated profile from a failed run is not worth
// indirecting every error path.)
func Start(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle retained heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}
	}
}
