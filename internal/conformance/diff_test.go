package conformance

import (
	"strings"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// cloneStream deep-copies the parts the mutation tests perturb.
func cloneStream(s *Stream) *Stream {
	c := *s
	c.Decisions = append([]Decision(nil), s.Decisions...)
	c.Migrations = append([]Migration(nil), s.Migrations...)
	if s.Summary != nil {
		sum := *s.Summary
		c.Summary = &sum
	}
	c.Members = make([]*Stream, len(s.Members))
	for i, m := range s.Members {
		c.Members[i] = cloneStream(m)
	}
	if len(s.Members) == 0 {
		c.Members = nil
	}
	return &c
}

// TestDifferPlantedFieldMutation plants a single-field change mid-stream
// and requires the differ to report exactly that index and field, with the
// divergence window rendering the surrounding decisions and the job ID.
func TestDifferPlantedFieldMutation(t *testing.T) {
	ref := recordedSim(t, core.Elastic, nil)
	if len(ref.Decisions) < 20 {
		t.Fatalf("scenario too small: %d decisions", len(ref.Decisions))
	}
	k := len(ref.Decisions) / 2
	mut := cloneStream(ref)
	mut.Decisions[k].Replicas++

	d := Compare(ref, mut)
	if d.Empty() {
		t.Fatal("differ missed the planted mutation")
	}
	m := d.Mismatches[0]
	if m.Section != SectionDecisions || m.Index != k {
		t.Fatalf("first mismatch at %s[%d], want decisions[%d]", m.Section, m.Index, k)
	}
	if len(m.Fields) != 1 || m.Fields[0] != "replicas" {
		t.Fatalf("fields %v, want [replicas]", m.Fields)
	}

	report := d.Format(ref, mut, 3)
	if !strings.Contains(report, ref.Decisions[k].JobID) {
		t.Errorf("report does not resolve the job ID %q:\n%s", ref.Decisions[k].JobID, report)
	}
	for _, want := range []string{"= [", "a [", "b ["} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q context lines:\n%s", want, report)
		}
	}
	// The context window must include the decision just before the
	// divergence.
	if !strings.Contains(report, ref.Decisions[k-1].render()) {
		t.Errorf("report missing pre-divergence context:\n%s", report)
	}
}

// TestDifferPlantedBehaviorMutation plants a real scheduler behaviour
// change — StrictFCFS flips the backfill tie-break — and requires the
// differ to find the exact first decision where the schedules part ways.
func TestDifferPlantedBehaviorMutation(t *testing.T) {
	ref := recordedSim(t, core.Elastic, nil)
	mut := recordedSim(t, core.Elastic, func(cfg *sim.Config) { cfg.StrictFCFS = true })

	// Independently locate the first diverging decision.
	want := -1
	for i := range ref.Decisions {
		if i >= len(mut.Decisions) || decisionFields(ref.Decisions[i], mut.Decisions[i]) != nil {
			want = i
			break
		}
	}
	if want < 0 {
		t.Fatal("StrictFCFS produced an identical schedule; the mutation scenario lost its point")
	}

	d := Compare(ref, mut)
	if d.Empty() {
		t.Fatal("differ missed a real behaviour change")
	}
	m := d.Mismatches[0]
	if m.Section != SectionDecisions || m.Index != want {
		t.Fatalf("first mismatch at %s[%d], want decisions[%d]", m.Section, m.Index, want)
	}
	if report := d.Format(ref, mut, 0); !strings.Contains(report, "decisions[") {
		t.Errorf("report does not name the section:\n%s", report)
	}
}

// TestDifferLengthDivergence: a strict prefix is reported at the shorter
// stream's length with the "length" pseudo-field, and the window renders
// <end of stream> for the exhausted side.
func TestDifferLengthDivergence(t *testing.T) {
	ref := recordedSim(t, core.Elastic, nil)
	mut := cloneStream(ref)
	mut.Decisions = mut.Decisions[:len(mut.Decisions)-3]

	d := Compare(ref, mut)
	if d.Empty() {
		t.Fatal("differ missed the truncation")
	}
	m := d.Mismatches[0]
	if m.Index != len(mut.Decisions) || len(m.Fields) != 1 || m.Fields[0] != "length" {
		t.Fatalf("mismatch %+v, want length divergence at %d", m, len(mut.Decisions))
	}
	if report := d.Format(ref, mut, 2); !strings.Contains(report, "<end of stream>") {
		t.Errorf("report missing end-of-stream marker:\n%s", report)
	}
}

// TestDifferResolvesMemberPath: a divergence inside a federation member is
// located by member index and labelled with the member's cluster name.
func TestDifferResolvesMemberPath(t *testing.T) {
	w, err := workload.Burst{Waves: 3, PerWave: 16, WaveGap: 1200}.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig(core.Elastic)
	base.Capacity = 16
	base.LogDecisions = true
	cfg := federation.Config{
		Members: federation.Uniform(base, 3),
		Route:   federation.RoundRobin,
		Workers: 1,
	}
	ref, err := RecordFederation(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Members) != 3 || len(ref.Members[1].Decisions) == 0 {
		t.Fatal("fleet stream lacks member decision logs")
	}
	mut := cloneStream(ref)
	mut.Members[1].Decisions[0].Kind = "shrink"

	d := Compare(ref, mut)
	if d.Empty() {
		t.Fatal("differ missed the member mutation")
	}
	m := d.Mismatches[0]
	if len(m.Member) != 1 || m.Member[0] != 1 || m.Section != SectionDecisions || m.Index != 0 {
		t.Fatalf("mismatch %+v, want member 1 decisions[0]", m)
	}
	report := d.Format(ref, mut, 2)
	if !strings.Contains(report, "member 1 decisions[0]") {
		t.Errorf("report does not locate the member:\n%s", report)
	}
	if !strings.Contains(report, "cluster1") {
		t.Errorf("report does not resolve the cluster label:\n%s", report)
	}
}

// TestDifferMigrationAndSummaryMutations: divergences outside the decision
// log are reported in their own sections.
func TestDifferMigrationAndSummaryMutations(t *testing.T) {
	ref := &Stream{
		Version:    StreamVersion,
		Migrations: []Migration{{Round: 1, At: 300, JobID: "p1", From: 0, To: 2}},
		Summary:    &Summary{Policy: "elastic", Utilization: 0.8},
	}
	mut := cloneStream(ref)
	mut.Migrations[0].To = 1
	mut.Summary.Utilization = 0.9

	d := Compare(ref, mut)
	if len(d.Mismatches) != 2 {
		t.Fatalf("want 2 mismatches, got %+v", d.Mismatches)
	}
	if m := d.Mismatches[0]; m.Section != SectionMigrations || m.Index != 0 || m.Fields[0] != "to" {
		t.Errorf("migration mismatch %+v", m)
	}
	if m := d.Mismatches[1]; m.Section != SectionSummary || m.Fields[0] != "utilization" {
		t.Errorf("summary mismatch %+v", m)
	}
	if d2 := Compare(ref, ref); !d2.Empty() {
		t.Errorf("self-compare not empty: %+v", d2.Mismatches)
	}
}
