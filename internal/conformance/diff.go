package conformance

import (
	"fmt"
	"strings"
)

// Sections a Mismatch can point into.
const (
	// SectionStructure covers shape disagreements: version, member count,
	// presence/absence of a summary or a decision log.
	SectionStructure = "structure"
	// SectionDecisions covers the decision log.
	SectionDecisions = "decisions"
	// SectionMigrations covers the federation migration log.
	SectionMigrations = "migrations"
	// SectionSummary covers the aggregate Summary.
	SectionSummary = "summary"
)

// Mismatch is one point of divergence between two streams.
type Mismatch struct {
	// Member is the path to the sub-stream the mismatch lives in: empty for
	// the top level, {i} for member i. (Members never nest further.)
	Member []int
	// Section names the diverging part (Section* constants).
	Section string
	// Index is the first diverging entry for decisions/migrations
	// (len(shorter) when one stream is a strict prefix of the other);
	// -1 for structure and summary mismatches.
	Index int
	// Fields lists the diverging field names within the entry or summary
	// ("length" when the logs diverge only in length).
	Fields []string
	// Detail is a one-line human description.
	Detail string
}

// location renders the mismatch's position ("member 2 decisions[17]").
func (m Mismatch) location() string {
	var b strings.Builder
	for _, i := range m.Member {
		fmt.Fprintf(&b, "member %d ", i)
	}
	b.WriteString(m.Section)
	if m.Index >= 0 {
		fmt.Fprintf(&b, "[%d]", m.Index)
	}
	return b.String()
}

// Diff is the result of comparing two streams.
type Diff struct {
	// Mismatches holds every divergence found, top level first, then
	// members in order. Each section reports only its first divergence.
	Mismatches []Mismatch
}

// Empty reports whether the streams compared equal.
func (d Diff) Empty() bool { return len(d.Mismatches) == 0 }

// Compare diffs two streams structurally. Each section (decision log,
// migration log, summary — at the top level and per member) contributes at
// most its first divergence, so the report stays readable even when streams
// disagree wildly.
func Compare(a, b *Stream) Diff {
	var d Diff
	d.compare(a, b, nil)
	return d
}

func (d *Diff) compare(a, b *Stream, path []int) {
	if a.Version != b.Version {
		d.add(Mismatch{
			Member: path, Section: SectionStructure, Index: -1,
			Fields: []string{"version"},
			Detail: fmt.Sprintf("version %d vs %d", a.Version, b.Version),
		})
	}
	d.compareDecisions(a.Decisions, b.Decisions, path)
	d.compareMigrations(a.Migrations, b.Migrations, path)
	d.compareSummary(a.Summary, b.Summary, path)
	if len(a.Members) != len(b.Members) {
		d.add(Mismatch{
			Member: path, Section: SectionStructure, Index: -1,
			Fields: []string{"members"},
			Detail: fmt.Sprintf("%d members vs %d", len(a.Members), len(b.Members)),
		})
		return
	}
	for i := range a.Members {
		d.compare(a.Members[i], b.Members[i], append(path[:len(path):len(path)], i))
	}
}

func (d *Diff) add(m Mismatch) { d.Mismatches = append(d.Mismatches, m) }

// decisionFields lists the fields on which two decisions differ.
func decisionFields(x, y Decision) []string {
	var f []string
	if x.AtNs != y.AtNs {
		f = append(f, "at")
	}
	if x.Kind != y.Kind {
		f = append(f, "kind")
	}
	if x.JobID != y.JobID {
		f = append(f, "job")
	}
	if x.Replicas != y.Replicas {
		f = append(f, "replicas")
	}
	if x.FreeSlots != y.FreeSlots {
		f = append(f, "free")
	}
	return f
}

func (d *Diff) compareDecisions(a, b []Decision, path []int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if fields := decisionFields(a[i], b[i]); fields != nil {
			d.add(Mismatch{
				Member: path, Section: SectionDecisions, Index: i, Fields: fields,
				Detail: fmt.Sprintf("first divergence at decision %d (of %d vs %d): fields %s differ",
					i, len(a), len(b), strings.Join(fields, ", ")),
			})
			return
		}
	}
	if len(a) != len(b) {
		d.add(Mismatch{
			Member: path, Section: SectionDecisions, Index: n,
			Fields: []string{"length"},
			Detail: fmt.Sprintf("streams agree through decision %d, then lengths diverge: %d vs %d",
				n-1, len(a), len(b)),
		})
	}
}

func (d *Diff) compareMigrations(a, b []Migration, path []int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d.add(Mismatch{
				Member: path, Section: SectionMigrations, Index: i,
				Fields: migrationFields(a[i], b[i]),
				Detail: fmt.Sprintf("first divergence at migration %d (of %d vs %d):\n  a: %s\n  b: %s",
					i, len(a), len(b), a[i].render(), b[i].render()),
			})
			return
		}
	}
	if len(a) != len(b) {
		d.add(Mismatch{
			Member: path, Section: SectionMigrations, Index: n,
			Fields: []string{"length"},
			Detail: fmt.Sprintf("migration logs agree through %d, then lengths diverge: %d vs %d",
				n-1, len(a), len(b)),
		})
	}
}

// migrationFields lists the fields on which two migrations differ.
func migrationFields(x, y Migration) []string {
	var f []string
	if x.Round != y.Round {
		f = append(f, "round")
	}
	if x.At != y.At {
		f = append(f, "at")
	}
	if x.JobID != y.JobID {
		f = append(f, "job")
	}
	if x.From != y.From {
		f = append(f, "from")
	}
	if x.To != y.To {
		f = append(f, "to")
	}
	if x.Checkpointed != y.Checkpointed {
		f = append(f, "checkpointed")
	}
	return f
}

// summaryFields lists the diverging Summary fields. Jobs and JobsDigest
// are skipped when either side lacks a digest: a streaming-mode run retains
// no per-job records, and comparing it against a retained reference must
// still succeed on the aggregate fields both sides carry.
func summaryFields(a, b *Summary) []string {
	var f []string
	eq := func(name string, same bool) {
		if !same {
			f = append(f, name)
		}
	}
	eq("policy", a.Policy == b.Policy)
	eq("total_time_s", a.TotalTime == b.TotalTime)
	eq("utilization", a.Utilization == b.Utilization)
	eq("weighted_response_s", a.WeightedResponse == b.WeightedResponse)
	eq("weighted_completion_s", a.WeightedCompletion == b.WeightedCompletion)
	eq("first_start_s", a.FirstStart == b.FirstStart)
	eq("last_end_s", a.LastEnd == b.LastEnd)
	eq("used_slot_s", a.UsedSlotSec == b.UsedSlotSec)
	eq("delivered_slot_s", a.DeliveredSlotSec == b.DeliveredSlotSec)
	eq("weight_sum", a.WeightSum == b.WeightSum)
	eq("end_capacity", a.EndCapacity == b.EndCapacity)
	eq("capacity_events", a.CapacityEvents == b.CapacityEvents)
	eq("forced_shrinks", a.ForcedShrinks == b.ForcedShrinks)
	eq("requeues", a.Requeues == b.Requeues)
	eq("work_lost_s", a.WorkLostSec == b.WorkLostSec)
	eq("goodput", a.GoodputFrac == b.GoodputFrac)
	eq("imbalance", a.Imbalance == b.Imbalance)
	eq("rebalance_rounds", a.RebalanceRounds == b.RebalanceRounds)
	if len(a.JobsPerMember) != len(b.JobsPerMember) {
		f = append(f, "jobs_per_member")
	} else {
		for i := range a.JobsPerMember {
			if a.JobsPerMember[i] != b.JobsPerMember[i] {
				f = append(f, "jobs_per_member")
				break
			}
		}
	}
	if a.JobsDigest != "" && b.JobsDigest != "" {
		eq("jobs", a.Jobs == b.Jobs)
		eq("jobs_digest", a.JobsDigest == b.JobsDigest)
	}
	return f
}

func (d *Diff) compareSummary(a, b *Summary, path []int) {
	if a == nil && b == nil {
		return
	}
	if (a == nil) != (b == nil) {
		d.add(Mismatch{
			Member: path, Section: SectionStructure, Index: -1,
			Fields: []string{"summary"},
			Detail: fmt.Sprintf("summary present: %v vs %v", a != nil, b != nil),
		})
		return
	}
	if fields := summaryFields(a, b); fields != nil {
		d.add(Mismatch{
			Member: path, Section: SectionSummary, Index: -1, Fields: fields,
			Detail: "summary fields differ: " + strings.Join(fields, ", "),
		})
	}
}

// DefaultWindow is the number of context decisions Format shows on each
// side of the first divergence.
const DefaultWindow = 5

// Format renders the diff for humans: each mismatch's location and detail,
// and — for decision-log divergences — a window of ±window decisions around
// the first mismatch, with shared prefix lines marked "=" and both sides'
// versions shown from the divergence on. a and b must be the streams that
// produced the diff.
func (d Diff) Format(a, b *Stream, window int) string {
	if d.Empty() {
		return "streams are equivalent\n"
	}
	if window <= 0 {
		window = DefaultWindow
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d divergence(s):\n", len(d.Mismatches))
	for _, m := range d.Mismatches {
		fmt.Fprintf(&sb, "\n%s: %s\n", m.location(), m.Detail)
		if m.Section != SectionDecisions {
			continue
		}
		sa, sb2 := resolve(a, m.Member), resolve(b, m.Member)
		if sa == nil || sb2 == nil {
			continue
		}
		label := sa.Label
		if label == "" && sb2.Label != "" {
			label = sb2.Label
		}
		if label != "" {
			fmt.Fprintf(&sb, "  (%s)\n", label)
		}
		writeWindow(&sb, sa.Decisions, sb2.Decisions, m.Index, window)
	}
	return sb.String()
}

// resolve walks a member path to its sub-stream.
func resolve(s *Stream, path []int) *Stream {
	for _, i := range path {
		if s == nil || i < 0 || i >= len(s.Members) {
			return nil
		}
		s = s.Members[i]
	}
	return s
}

// writeWindow renders decisions [idx-window, idx+window]: common context
// lines prefixed "=", then paired a:/b: lines from the divergence on.
func writeWindow(w *strings.Builder, a, b []Decision, idx, window int) {
	lo := idx - window
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < idx; i++ {
		fmt.Fprintf(w, "  = [%d] %s\n", i, a[i].render())
	}
	hi := idx + window
	for i := idx; i <= hi; i++ {
		inA, inB := i < len(a), i < len(b)
		if !inA && !inB {
			break
		}
		if inA {
			fmt.Fprintf(w, "  a [%d] %s\n", i, a[i].render())
		} else {
			fmt.Fprintf(w, "  a [%d] <end of stream>\n", i)
		}
		if inB {
			fmt.Fprintf(w, "  b [%d] %s\n", i, b[i].render())
		} else {
			fmt.Fprintf(w, "  b [%d] <end of stream>\n", i)
		}
	}
}
