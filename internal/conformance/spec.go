package conformance

import (
	"fmt"
	"sort"
	"strconv"

	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// RunSpec is a declarative, replayable description of one recordable run:
// which backend, which generated workload, and every determinism-relevant
// knob. A spec round-trips losslessly through a Stream's Meta map, so
// `conftest -replay` can re-execute exactly the run a recorded artifact
// came from.
type RunSpec struct {
	// Backend selects the execution engine: "sim" (default), "cluster", or
	// "federation".
	Backend string
	// Scenario selects the workload shape: "uniform" (default) or "burst".
	Scenario string
	// Jobs is the total job count (default 60).
	Jobs int
	// Gap is the uniform inter-arrival gap or the burst wave gap in
	// seconds (default 45 for uniform, 4000 for burst).
	Gap float64
	// Waves is the burst wave count (default 3; Jobs must divide evenly).
	Waves int
	// Seed seeds the workload generator (default 1).
	Seed int64
	// Policy is the scheduling policy (default Elastic).
	Policy core.Policy
	// Capacity is the cluster's slot count (0 = the backend's default;
	// cluster backend requires a multiple of its 4 nodes).
	Capacity int
	// RescaleGap overrides T_rescale_gap in seconds (0 = default).
	RescaleGap float64
	// Shards enables the sharded event loop (sim backend).
	Shards int
	// Streaming drops per-job records for O(1) memory (sim backend).
	Streaming bool
	// Full forces the reference full-redistribute scheduler (sim backend).
	Full bool
	// Log enables decision logging, putting the decision stream in the
	// recorded output.
	Log bool
	// Drain overlays a maintenance-drain availability trace.
	Drain bool
	// Aging sets the queue-aging rate; Preempt enables preemption.
	Aging   float64
	Preempt bool

	// Federation-only knobs.
	// Route is the job-routing policy; Members is the fleet size (default
	// 3); Skew ramps member capacities (Skewed); RebalanceEvery > 0 turns
	// the checkpoint-migrating rebalancer on with that round interval;
	// MigrateRunning lets it move running jobs; Workers bounds the member
	// worker pool (0 = all CPUs, 1 = sequential reference).
	Route          federation.Route
	Members        int
	Skew           float64
	RebalanceEvery float64
	MigrateRunning bool
	Workers        int
}

// withDefaults resolves zero-valued knobs to the documented defaults.
func (s RunSpec) withDefaults() RunSpec {
	if s.Backend == "" {
		s.Backend = "sim"
	}
	if s.Scenario == "" {
		s.Scenario = "uniform"
	}
	if s.Jobs == 0 {
		s.Jobs = 60
	}
	if s.Gap == 0 {
		if s.Scenario == "burst" {
			s.Gap = 4000
		} else {
			s.Gap = 45
		}
	}
	if s.Waves == 0 {
		s.Waves = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Members == 0 {
		s.Members = 3
	}
	return s
}

// Meta encodes the spec as a stream Meta map (zero-valued knobs omitted).
func (s RunSpec) Meta() map[string]string {
	m := make(map[string]string)
	set := func(k, v string) {
		if v != "" {
			m[k] = v
		}
	}
	setInt := func(k string, v int) {
		if v != 0 {
			m[k] = strconv.Itoa(v)
		}
	}
	setFloat := func(k string, v float64) {
		if v != 0 {
			m[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	setBool := func(k string, v bool) {
		if v {
			m[k] = "true"
		}
	}
	set("backend", s.Backend)
	set("scenario", s.Scenario)
	setInt("jobs", s.Jobs)
	setFloat("gap", s.Gap)
	setInt("waves", s.Waves)
	if s.Seed != 0 {
		m["seed"] = strconv.FormatInt(s.Seed, 10)
	}
	m["policy"] = s.Policy.String()
	setInt("capacity", s.Capacity)
	setFloat("rescale_gap", s.RescaleGap)
	setInt("shards", s.Shards)
	setBool("streaming", s.Streaming)
	setBool("full", s.Full)
	setBool("log", s.Log)
	setBool("drain", s.Drain)
	setFloat("aging", s.Aging)
	setBool("preempt", s.Preempt)
	if s.Backend == "federation" {
		m["route"] = s.Route.String()
		setInt("members", s.Members)
		setFloat("skew", s.Skew)
		setFloat("rebalance_every", s.RebalanceEvery)
		setBool("migrate_running", s.MigrateRunning)
		setInt("workers", s.Workers)
	}
	return m
}

// SpecFromMeta decodes a stream Meta map back into a RunSpec — the replay
// half of the Meta round-trip. Unknown keys are an error so a stream from a
// newer spec vocabulary fails loudly instead of replaying the wrong run.
func SpecFromMeta(meta map[string]string) (RunSpec, error) {
	var s RunSpec
	var err error
	take := func(k string, parse func(v string) error) {
		if err != nil {
			return
		}
		v, ok := meta[k]
		if !ok {
			return
		}
		if perr := parse(v); perr != nil {
			err = fmt.Errorf("conformance: meta %s=%q: %w", k, v, perr)
		}
		delete(meta, k)
	}
	meta = cloneMeta(meta)
	take("backend", func(v string) error { s.Backend = v; return nil })
	take("scenario", func(v string) error { s.Scenario = v; return nil })
	take("jobs", func(v string) error { s.Jobs, err = strconv.Atoi(v); return err })
	take("gap", func(v string) error { s.Gap, err = strconv.ParseFloat(v, 64); return err })
	take("waves", func(v string) error { s.Waves, err = strconv.Atoi(v); return err })
	take("seed", func(v string) error { s.Seed, err = strconv.ParseInt(v, 10, 64); return err })
	take("policy", func(v string) error { s.Policy, err = core.PolicyByName(v); return err })
	take("capacity", func(v string) error { s.Capacity, err = strconv.Atoi(v); return err })
	take("rescale_gap", func(v string) error { s.RescaleGap, err = strconv.ParseFloat(v, 64); return err })
	take("shards", func(v string) error { s.Shards, err = strconv.Atoi(v); return err })
	take("streaming", func(v string) error { s.Streaming, err = strconv.ParseBool(v); return err })
	take("full", func(v string) error { s.Full, err = strconv.ParseBool(v); return err })
	take("log", func(v string) error { s.Log, err = strconv.ParseBool(v); return err })
	take("drain", func(v string) error { s.Drain, err = strconv.ParseBool(v); return err })
	take("aging", func(v string) error { s.Aging, err = strconv.ParseFloat(v, 64); return err })
	take("preempt", func(v string) error { s.Preempt, err = strconv.ParseBool(v); return err })
	take("route", func(v string) error { s.Route, err = federation.RouteByName(v); return err })
	take("members", func(v string) error { s.Members, err = strconv.Atoi(v); return err })
	take("skew", func(v string) error { s.Skew, err = strconv.ParseFloat(v, 64); return err })
	take("rebalance_every", func(v string) error { s.RebalanceEvery, err = strconv.ParseFloat(v, 64); return err })
	take("migrate_running", func(v string) error { s.MigrateRunning, err = strconv.ParseBool(v); return err })
	take("workers", func(v string) error { s.Workers, err = strconv.Atoi(v); return err })
	if err != nil {
		return RunSpec{}, err
	}
	if len(meta) > 0 {
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return RunSpec{}, fmt.Errorf("conformance: unknown meta keys %v", keys)
	}
	return s, nil
}

func cloneMeta(meta map[string]string) map[string]string {
	out := make(map[string]string, len(meta))
	//lint:deterministic per-key copy into a fresh map; every visit order yields the same map
	for k, v := range meta {
		out[k] = v
	}
	return out
}

// workload builds the spec's generated workload and optional drain trace.
func (s RunSpec) workload(capacity int) (sim.Workload, workload.AvailabilityTrace, error) {
	var g workload.Generator
	switch s.Scenario {
	case "uniform":
		g = workload.Uniform{Jobs: s.Jobs, Gap: s.Gap}
	case "burst":
		if s.Waves < 1 || s.Jobs%s.Waves != 0 {
			return sim.Workload{}, workload.AvailabilityTrace{},
				fmt.Errorf("conformance: burst needs jobs (%d) divisible by waves (%d)", s.Jobs, s.Waves)
		}
		g = workload.Burst{Waves: s.Waves, PerWave: s.Jobs / s.Waves, WaveGap: s.Gap}
	default:
		return sim.Workload{}, workload.AvailabilityTrace{},
			fmt.Errorf("conformance: unknown scenario %q (have uniform, burst)", s.Scenario)
	}
	w, err := g.Generate(s.Seed)
	if err != nil {
		return sim.Workload{}, workload.AvailabilityTrace{}, err
	}
	var tr workload.AvailabilityTrace
	if s.Drain && s.Backend != "federation" {
		span := w.Span() + 3600
		keep := capacity * 5 / 8
		if keep < 1 {
			keep = 1
		}
		tr, err = workload.MaintenanceDrain{Every: span / 6, Duration: span / 12, Keep: keep}.
			Events(s.Seed, capacity, span)
		if err != nil {
			return sim.Workload{}, workload.AvailabilityTrace{}, err
		}
		// Restore full capacity at the horizon so rigid baselines stay
		// feasible (same rationale as the equivalence scenarios).
		tr = tr.WithRestore(capacity, span)
	}
	return w, tr, nil
}

// Execute runs the spec and returns its recorded stream, with the spec's
// Meta attached so the stream replays.
func (s RunSpec) Execute() (*Stream, error) {
	s = s.withDefaults()
	var st *Stream
	var err error
	switch s.Backend {
	case "sim":
		st, err = s.executeSim()
	case "cluster":
		st, err = s.executeCluster()
	case "federation":
		st, err = s.executeFederation()
	default:
		return nil, fmt.Errorf("conformance: unknown backend %q (have sim, cluster, federation)", s.Backend)
	}
	if err != nil {
		return nil, err
	}
	st.Meta = s.Meta()
	return st, nil
}

func (s RunSpec) executeSim() (*Stream, error) {
	cfg := sim.DefaultConfig(s.Policy)
	if s.Capacity > 0 {
		cfg.Capacity = s.Capacity
	}
	if s.RescaleGap > 0 {
		cfg.RescaleGap = s.RescaleGap
	}
	cfg.Shards = s.Shards
	cfg.Streaming = s.Streaming
	cfg.FullRedistribute = s.Full
	cfg.LogDecisions = s.Log
	cfg.AgingRate = s.Aging
	cfg.EnablePreemption = s.Preempt
	w, tr, err := s.workload(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	cfg.Availability = tr
	return RecordSim(cfg, w)
}

func (s RunSpec) executeCluster() (*Stream, error) {
	cfg := cluster.DefaultConfig(s.Policy)
	if s.Capacity > 0 {
		if s.Capacity%cfg.Nodes != 0 {
			return nil, fmt.Errorf("conformance: cluster capacity %d not divisible by %d nodes", s.Capacity, cfg.Nodes)
		}
		cfg.CPUPerNode = s.Capacity / cfg.Nodes
	}
	cfg.LogDecisions = s.Log
	w, tr, err := s.workload(cfg.Nodes * cfg.CPUPerNode)
	if err != nil {
		return nil, err
	}
	cfg.Availability = tr
	return RecordCluster(cfg, w)
}

func (s RunSpec) executeFederation() (*Stream, error) {
	base := sim.DefaultConfig(s.Policy)
	if s.Capacity > 0 {
		base.Capacity = s.Capacity
	}
	if s.RescaleGap > 0 {
		base.RescaleGap = s.RescaleGap
	}
	base.LogDecisions = s.Log
	base.Shards = s.Shards
	base.Streaming = s.Streaming
	base.AgingRate = s.Aging
	base.EnablePreemption = s.Preempt
	members := federation.Skewed(base, s.Members, s.Skew)
	if s.Drain && s.Members >= 3 {
		// The rebalancer tests' drain scenario: the third member loses most
		// of its capacity mid-run, then recovers.
		members[2].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
			{At: 1200, Capacity: 8},
			{At: 6000, Capacity: members[2].Capacity},
		}}
	}
	cfg := federation.Config{
		Members: members,
		Route:   s.Route,
		Workers: s.Workers,
	}
	if s.RebalanceEvery > 0 {
		cfg.Rebalance = federation.RebalanceConfig{
			Every:          s.RebalanceEvery,
			MigrateRunning: s.MigrateRunning,
		}
	}
	w, _, err := s.workload(base.Capacity)
	if err != nil {
		return nil, err
	}
	return RecordFederation(cfg, w)
}
