package conformance

import (
	"fmt"

	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// MatrixOptions scopes the equivalence matrix.
type MatrixOptions struct {
	// Seeds sweeps the generated workloads.
	Seeds []int64
	// Policies, Shards, and Routes are the grid axes.
	Policies []core.Policy
	Shards   []int
	Routes   []federation.Route
	// Cluster includes the (slow) cluster-emulation repeat-determinism
	// cells.
	Cluster bool
	// Window is the ±K decision context in failure reports.
	Window int
}

// DefaultMatrixOptions is the grid CI runs: the full policy × route product
// at shard widths 1/2/8 over two seeds, cluster cells included.
func DefaultMatrixOptions() MatrixOptions {
	return MatrixOptions{
		Seeds:    []int64{1, 7},
		Policies: core.AllPolicies(),
		Shards:   []int{1, 2, 8},
		Routes:   federation.AllRoutes(),
		Cluster:  true,
		Window:   DefaultWindow,
	}
}

// Failure is one diverging matrix cell, with both streams retained so the
// runner can save them as artifacts.
type Failure struct {
	// Case is the matrix cell, Candidate the diverging execution mode.
	Case      string
	Candidate string
	// Report is the differ's formatted divergence window.
	Report string
	// Ref and Got are the reference and diverging streams.
	Ref, Got *Stream
}

// Case is one independently runnable matrix cell.
type Case struct {
	Name string
	Run  func() ([]Failure, error)
}

// RunMatrix runs every case and collects the divergences. The int is the
// number of cases executed. A hard error (a backend refusing to run) aborts
// the sweep; divergences do not.
func RunMatrix(opt MatrixOptions) ([]Failure, int, error) {
	var fails []Failure
	cases := Cases(opt)
	for _, c := range cases {
		fs, err := c.Run()
		if err != nil {
			return fails, len(cases), fmt.Errorf("%s: %w", c.Name, err)
		}
		fails = append(fails, fs...)
	}
	return fails, len(cases), nil
}

// skewedScenario concatenates a heavy-class burst phase and a light-class
// phase (heavy first or light first) — the demand-skewed shapes the
// work-balanced epoch planner places its most asymmetric cuts on, which the
// matrix must still prove reconcile exactly.
func skewedScenario(seed int64, heavyFirst bool) (Scenario, error) {
	heavy, err := workload.Burst{Waves: 2, PerWave: 18, WaveGap: 15000,
		Mix: workload.Mix{model.Large: 1, model.XLarge: 1}}.Generate(seed)
	if err != nil {
		return Scenario{}, err
	}
	light, err := workload.Burst{Waves: 4, PerWave: 25, WaveGap: 15000,
		Mix: workload.Mix{model.Small: 1, model.Medium: 1}}.Generate(seed + 100)
	if err != nil {
		return Scenario{}, err
	}
	first, second, name := heavy, light, "head-heavy"
	if !heavyFirst {
		first, second, name = light, heavy, "tail-heavy"
	}
	offset := first.Span() + 15000
	jobs := make([]workload.JobSpec, 0, len(first.Jobs)+len(second.Jobs))
	for i, j := range first.Jobs {
		j.ID = fmt.Sprintf("a%03d-%s", i, j.ID)
		jobs = append(jobs, j)
	}
	for i, j := range second.Jobs {
		j.ID = fmt.Sprintf("b%03d-%s", i, j.ID)
		j.SubmitAt += offset
		jobs = append(jobs, j)
	}
	return Scenario{Name: name, Workload: sim.Workload{Jobs: jobs}}, nil
}

// matrixScenarios are the fixed workload shapes the sim cells sweep —
// steady arrivals, deep same-instant backlogs, a time-varying cluster (the
// shapes the historical equivalence tests pinned), and the two demand-skewed
// shapes that stress the work-balanced epoch planner.
func matrixScenarios(seed int64) ([]Scenario, error) {
	uniform, err := workload.Uniform{Jobs: 60, Gap: 45}.Generate(seed)
	if err != nil {
		return nil, err
	}
	burst, err := workload.Burst{Waves: 3, PerWave: 40, WaveGap: 4000}.Generate(seed)
	if err != nil {
		return nil, err
	}
	avail, err := workload.Burst{Waves: 3, PerWave: 30, WaveGap: 5000}.Generate(seed)
	if err != nil {
		return nil, err
	}
	span := avail.Span() + 3600
	tr, err := workload.MaintenanceDrain{Every: span / 6, Duration: span / 12, Keep: 40}.Events(seed, 64, span)
	if err != nil {
		return nil, err
	}
	// Restore full capacity at the horizon so the rigid baselines stay
	// feasible: a trace that ends mid-drain strands any job whose pinned
	// replica count exceeds the drained capacity.
	tr = tr.WithRestore(64, span)
	head, err := skewedScenario(seed, true)
	if err != nil {
		return nil, err
	}
	tail, err := skewedScenario(seed, false)
	if err != nil {
		return nil, err
	}
	return []Scenario{
		{Name: "uniform", Workload: uniform},
		{Name: "burst", Workload: burst},
		{Name: "availability", Workload: avail, Trace: tr},
		head,
		tail,
	}, nil
}

// Cases enumerates the matrix: sim cells (incremental vs FullRedistribute,
// streaming vs retained, every shard width vs sequential — logged decision
// streams and bit-exact result summaries), the aging+preemption extension
// cells, federation cells (sequential vs parallel vs repeated, rebalance
// off and on, per route × policy, with member decision streams), and
// cluster-emulation repeat-determinism cells.
func Cases(opt MatrixOptions) []Case {
	var cases []Case
	for _, seed := range opt.Seeds {
		for _, p := range opt.Policies {
			cases = append(cases, simCase(opt, seed, p))
		}
	}
	for _, p := range []core.Policy{core.Elastic, core.RigidMin} {
		cases = append(cases, extensionsCase(opt, p))
	}
	for _, p := range opt.Policies {
		cases = append(cases, streamingScaleCase(opt, p))
	}
	for _, route := range opt.Routes {
		for _, p := range opt.Policies {
			for _, rebalance := range []bool{false, true} {
				cases = append(cases, federationCase(opt, route, p, rebalance))
			}
		}
	}
	if opt.Cluster {
		for _, p := range opt.Policies {
			cases = append(cases, clusterCase(opt, p))
		}
	}
	return cases
}

// check compares a candidate stream against the reference and appends a
// Failure on divergence.
func check(fails []Failure, opt MatrixOptions, caseName, candName string, ref, got *Stream) []Failure {
	if d := Compare(ref, got); !d.Empty() {
		fails = append(fails, Failure{
			Case: caseName, Candidate: candName,
			Report: d.Format(ref, got, opt.Window),
			Ref:    ref, Got: got,
		})
	}
	return fails
}

// simCandidate is one execution mode a sim cell compares to the reference.
type simCandidate struct {
	name      string
	streaming bool
	shards    int
}

// simCase pins one (seed, policy) cell across all three workload shapes:
// decision-stream equality with logging on (the reference is the
// full-redistribute scheduler), then bit-exact result summaries with
// logging off — the configuration where every incremental shortcut and the
// streaming mode are live.
func simCase(opt MatrixOptions, seed int64, p core.Policy) Case {
	name := fmt.Sprintf("sim/%s/seed%d", p, seed)
	return Case{Name: name, Run: func() ([]Failure, error) {
		scenarios, err := matrixScenarios(seed)
		if err != nil {
			return nil, err
		}
		var fails []Failure
		for _, sc := range scenarios {
			run := func(full, log, streaming bool, shards int) (*Stream, error) {
				cfg := sim.DefaultConfig(p)
				cfg.Availability = sc.Trace
				cfg.FullRedistribute = full
				cfg.LogDecisions = log
				cfg.Streaming = streaming
				cfg.Shards = shards
				return RecordSim(cfg, sc.Workload)
			}
			caseName := name + "/" + sc.Name

			// Decision streams, logging on. (EnableLog disables the
			// drain shortcut in every mode, so this isolates the
			// redistribute early-outs and the shard reconciliation.)
			ref, err := run(true, true, false, 0)
			if err != nil {
				return nil, err
			}
			got, err := run(false, true, false, 0)
			if err != nil {
				return nil, err
			}
			fails = check(fails, opt, caseName, "incremental/logged", ref, got)
			for _, shards := range opt.Shards {
				got, err := run(false, true, false, shards)
				if err != nil {
					return nil, err
				}
				fails = check(fails, opt, caseName, fmt.Sprintf("shards%d/logged", shards), ref, got)
			}

			// Bit-exact summaries (including the per-job digest), logging
			// off — the default path with every shortcut live. Streaming
			// candidates carry no digest and compare on the aggregates,
			// which the streaming mode documents as bit-identical.
			ref, err = run(true, false, false, 0)
			if err != nil {
				return nil, err
			}
			candidates := []simCandidate{
				{name: "incremental"},
				{name: "streaming", streaming: true},
			}
			for _, shards := range opt.Shards {
				candidates = append(candidates, simCandidate{
					name: fmt.Sprintf("shards%d", shards), shards: shards,
				})
			}
			if n := len(opt.Shards); n > 0 {
				top := opt.Shards[n-1]
				candidates = append(candidates, simCandidate{
					name: fmt.Sprintf("shards%d/streaming", top), streaming: true, shards: top,
				})
			}
			for _, cand := range candidates {
				got, err := run(false, false, cand.streaming, cand.shards)
				if err != nil {
					return nil, err
				}
				fails = check(fails, opt, caseName, cand.name, ref, got)
			}
		}
		return fails, nil
	}}
}

// extensionsCase re-pins the contract with aging and preemption on — the
// configuration where the incremental scheduler must decline to cache and
// kick coalescing turns itself off.
func extensionsCase(opt MatrixOptions, p core.Policy) Case {
	name := fmt.Sprintf("sim-extensions/%s", p)
	return Case{Name: name, Run: func() ([]Failure, error) {
		w, err := workload.Burst{Waves: 4, PerWave: 30, WaveGap: 3000}.Generate(11)
		if err != nil {
			return nil, err
		}
		run := func(full bool, shards int) (*Stream, error) {
			cfg := sim.DefaultConfig(p)
			cfg.AgingRate = 0.01
			cfg.EnablePreemption = true
			cfg.FullRedistribute = full
			cfg.Shards = shards
			return RecordSim(cfg, w)
		}
		ref, err := run(true, 0)
		if err != nil {
			return nil, err
		}
		var fails []Failure
		for _, cand := range []struct {
			name   string
			shards int
		}{{name: "incremental"}, {name: "shards4", shards: 4}} {
			got, err := run(false, cand.shards)
			if err != nil {
				return nil, err
			}
			fails = check(fails, opt, name, cand.name, ref, got)
		}
		return fails, nil
	}}
}

// streamingScaleCase pins the scale benchmarks' configuration: streaming
// mode over a workload large and bursty enough that the epoch planner
// produces a real multi-epoch plan with genuinely draining boundaries
// (sim's TestPlanEpochsStreamingScaleWorkload asserts the plan shape), at
// the widest configured shard width against the sequential loop.
func streamingScaleCase(opt MatrixOptions, p core.Policy) Case {
	name := fmt.Sprintf("sim-streaming-scale/%s", p)
	return Case{Name: name, Run: func() ([]Failure, error) {
		w, err := workload.Burst{Waves: 12, PerWave: 100, WaveGap: 20000}.Generate(5)
		if err != nil {
			return nil, err
		}
		shards := 8
		if n := len(opt.Shards); n > 0 {
			shards = opt.Shards[n-1]
		}
		run := func(shards int) (*Stream, error) {
			cfg := sim.DefaultConfig(p)
			cfg.Streaming = true
			cfg.Shards = shards
			return RecordSim(cfg, w)
		}
		ref, err := run(0)
		if err != nil {
			return nil, err
		}
		got, err := run(shards)
		if err != nil {
			return nil, err
		}
		return check(nil, opt, name, fmt.Sprintf("shards%d", shards), ref, got), nil
	}}
}

// federationFleet is the heterogeneous 3-member fleet the federation cells
// run (the rebalancer tests' scenario): round-robin backs up the small
// member 0, and member 2's trace drains it mid-run, so both donor kinds
// are exercised. Every member logs decisions.
func federationFleet(p core.Policy, route federation.Route, rebalance bool) federation.Config {
	base := sim.DefaultConfig(p)
	base.Capacity = 16
	base.LogDecisions = true
	members := federation.Skewed(base, 3, 1.5) // capacities 16 / 40 / 64
	members[2].Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 1200, Capacity: 8},
		{At: 6000, Capacity: 64},
	}}
	cfg := federation.Config{Members: members, Route: route}
	if rebalance {
		cfg.Rebalance = federation.RebalanceConfig{Every: 300, MigrateRunning: true}
	}
	return cfg
}

// federationCase pins one (route, policy, rebalance) fleet cell: the
// sequential reference (Workers=1) against the parallel worker pool and a
// repeated run — member decision streams, the migration log, and every
// member and fleet summary must be identical.
func federationCase(opt MatrixOptions, route federation.Route, p core.Policy, rebalance bool) Case {
	mode := "batch"
	if rebalance {
		mode = "rebalance"
	}
	name := fmt.Sprintf("federation/%s/%s/%s", route, p, mode)
	return Case{Name: name, Run: func() ([]Failure, error) {
		w, err := workload.Burst{Waves: 6, PerWave: 16, WaveGap: 1200}.Generate(3)
		if err != nil {
			return nil, err
		}
		run := func(workers int) (*Stream, error) {
			cfg := federationFleet(p, route, rebalance)
			cfg.Workers = workers
			return RecordFederation(cfg, w)
		}
		ref, err := run(1)
		if err != nil {
			return nil, err
		}
		var fails []Failure
		for _, cand := range []struct {
			name    string
			workers int
		}{{name: "parallel", workers: 0}, {name: "repeat", workers: 1}} {
			got, err := run(cand.workers)
			if err != nil {
				return nil, err
			}
			fails = check(fails, opt, name, cand.name, ref, got)
		}
		return fails, nil
	}}
}

// clusterCase pins the emulation backend's repeat determinism: two
// identical cluster runs must produce the same decision stream and
// bit-exact summary.
func clusterCase(opt MatrixOptions, p core.Policy) Case {
	name := fmt.Sprintf("cluster/%s", p)
	return Case{Name: name, Run: func() ([]Failure, error) {
		w, err := workload.Uniform{Jobs: 12, Gap: 90}.Generate(4)
		if err != nil {
			return nil, err
		}
		cfg := cluster.DefaultConfig(p)
		cfg.LogDecisions = true
		ref, err := RecordCluster(cfg, w)
		if err != nil {
			return nil, err
		}
		got, err := RecordCluster(cfg, w)
		if err != nil {
			return nil, err
		}
		return check(nil, opt, name, "repeat", ref, got), nil
	}}
}
