package conformance

import "testing"

// TestMatrixEquivalence runs the full equivalence matrix — every sim,
// extension, federation, and cluster cell — and fails with the differ's
// divergence window on any non-identical stream. The race-equivalence CI
// job re-runs it under -race at two GOMAXPROCS widths.
func TestMatrixEquivalence(t *testing.T) {
	opt := DefaultMatrixOptions()
	if testing.Short() {
		opt.Seeds = opt.Seeds[:1]
		opt.Cluster = false
	}
	for _, c := range Cases(opt) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			fails, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range fails {
				t.Errorf("%s: candidate %s diverged:\n%s", f.Case, f.Candidate, f.Report)
			}
		})
	}
}
