package conformance

import (
	"fmt"

	"elastichpc/internal/cluster"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
)

// RecordSim runs one simulator configuration over a workload and captures
// its stream: the decision log (when cfg.LogDecisions is set) plus the
// bit-exact result summary.
func RecordSim(cfg sim.Config, w sim.Workload) (*Stream, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(w)
	if err != nil {
		return nil, err
	}
	return &Stream{
		Version:   StreamVersion,
		Decisions: FromDecisions(s.Decisions()),
		Summary:   SummaryOf(res),
	}, nil
}

// RecordCluster runs one emulated-cluster configuration over a workload and
// captures its stream (decision log when cfg.LogDecisions is set).
func RecordCluster(cfg cluster.Config, w sim.Workload) (*Stream, error) {
	res, decs, err := cluster.RunRecorded(cfg, w)
	if err != nil {
		return nil, err
	}
	return &Stream{
		Version:   StreamVersion,
		Decisions: FromDecisions(decs),
		Summary:   SummaryOf(res),
	}, nil
}

// RecordFederation runs one federation configuration and captures the fleet
// stream: the migration log, the fleet summary, and one member sub-stream
// per cluster (with decisions for members that logged them).
func RecordFederation(cfg federation.Config, w sim.Workload) (*Stream, error) {
	res, err := federation.Run(cfg, w)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		Version:    StreamVersion,
		Migrations: FromMigrations(res.Migrations),
		Summary:    FleetSummaryOf(res),
		Members:    make([]*Stream, len(res.Members)),
	}
	for i, m := range res.Members {
		sub := &Stream{
			Version: StreamVersion,
			Label:   fmt.Sprintf("cluster%d", i),
			Summary: SummaryOf(m),
		}
		if res.MemberDecisions != nil {
			sub.Decisions = FromDecisions(res.MemberDecisions[i])
		}
		s.Members[i] = sub
	}
	return s, nil
}
