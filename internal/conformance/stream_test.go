package conformance

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// recordedSim records one logged sim run for the stream tests.
func recordedSim(t *testing.T, p core.Policy, mutate func(cfg *sim.Config)) *Stream {
	t.Helper()
	w, err := workload.Burst{Waves: 2, PerWave: 20, WaveGap: 1500}.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(p)
	cfg.LogDecisions = true
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := RecordSim(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStreamSaveLoadRoundTrip(t *testing.T) {
	st := recordedSim(t, core.Elastic, nil)
	if len(st.Decisions) == 0 {
		t.Fatal("logged run recorded no decisions")
	}
	if st.Summary == nil || st.Summary.JobsDigest == "" {
		t.Fatal("retained run carries no summary digest")
	}
	st.Label = "round-trip"
	st.Meta = map[string]string{"backend": "sim", "policy": "elastic"}

	path := filepath.Join(t.TempDir(), "stream.json")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("stream changed across save/load:\nsaved:  %+v\nloaded: %+v", st, got)
	}
	if d := Compare(st, got); !d.Empty() {
		t.Fatalf("differ reports divergence on a round-trip: %s", d.Format(st, got, 0))
	}
}

func TestStreamVersionValidation(t *testing.T) {
	st := recordedSim(t, core.Elastic, nil)
	for _, v := range []int{0, StreamVersion + 1} {
		st.Version = v
		var sb strings.Builder
		if err := st.Save(&sb); err == nil {
			t.Errorf("version %d: Save accepted", v)
		}
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("Load accepted a future stream version")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "members": [{"version": 1, "members": [{"version": 1}]}]}`)); err == nil {
		t.Error("Load accepted doubly-nested members")
	}
}

// TestJobsDigestSensitivity: identical runs agree, different schedules
// disagree, streaming runs carry no digest.
func TestJobsDigestSensitivity(t *testing.T) {
	a := recordedSim(t, core.Elastic, nil)
	b := recordedSim(t, core.Elastic, nil)
	if a.Summary.JobsDigest != b.Summary.JobsDigest {
		t.Errorf("identical runs disagree: %s vs %s", a.Summary.JobsDigest, b.Summary.JobsDigest)
	}
	c := recordedSim(t, core.RigidMin, nil)
	if a.Summary.JobsDigest == c.Summary.JobsDigest {
		t.Error("different policies produced the same digest")
	}
	s := recordedSim(t, core.Elastic, func(cfg *sim.Config) { cfg.Streaming = true })
	if s.Summary.JobsDigest != "" {
		t.Errorf("streaming run carries digest %s", s.Summary.JobsDigest)
	}
	// Streaming-vs-retained comparison must succeed on the aggregates.
	if d := Compare(a, s); !d.Empty() {
		t.Errorf("streaming run diverges from retained aggregates: %s", d.Format(a, s, 0))
	}
}
