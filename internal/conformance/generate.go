package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Scenario is one randomly generated equivalence input: a workload plus an
// optional availability trace. The property tests and fuzz targets generate
// Scenarios, run them through two execution modes, and require identical
// streams; Shrink minimizes a failing one.
type Scenario struct {
	Name     string
	Workload sim.Workload
	Trace    workload.AvailabilityTrace
}

// Jobs is the scenario's job count.
func (sc Scenario) Jobs() int { return len(sc.Workload.Jobs) }

// generation bounds. Capacities stay in [minRandomCap, randomCapacity] so
// every scenario remains feasible for the rigid policies (XLarge pins 16
// replicas, so a trace must never drop below 16 slots).
const (
	randomCapacity = 64
	minRandomCap   = 16
	maxRandomJobs  = 64
)

// RandomScenario draws a property-test scenario from rng: 8–64 jobs with
// random classes and priorities, mostly-dense arrivals salted with
// same-instant ties (the tie-break regime) and occasional multi-thousand-
// second gaps (drain/idle boundaries), plus — half the time — an
// availability trace drawn from one of three shapes: independent scattered
// events, a correlated failure burst, or a diurnal capacity curve.
func RandomScenario(rng *rand.Rand) Scenario {
	n := 8 + rng.Intn(maxRandomJobs-8+1)
	jobs := make([]workload.JobSpec, n)
	at := 0.0
	for i := range jobs {
		switch rng.Intn(8) {
		case 0:
			// Same-instant tie with the previous job.
		case 1:
			// A long quiet hole: lets the cluster drain and re-idle.
			at += 2000 + float64(rng.Intn(4001))
		default:
			at += float64(rng.Intn(241))
		}
		jobs[i] = workload.JobSpec{
			ID:       fmt.Sprintf("p%03d", i),
			Class:    model.AllClasses()[rng.Intn(4)],
			Priority: 1 + rng.Intn(5),
			SubmitAt: at,
		}
	}
	sc := Scenario{
		Name:     fmt.Sprintf("random-%djobs", n),
		Workload: sim.Workload{Jobs: jobs},
	}
	span := at + 3600
	switch rng.Intn(6) {
	case 0, 1, 2:
		// No trace: the fixed-capacity regime.
	case 3:
		sc.Trace = scatteredTrace(rng, span)
		sc.Name += "-trace"
	case 4:
		sc.Trace = burstTrace(rng, span)
		sc.Name += "-burst"
	case 5:
		sc.Trace = diurnalTrace(rng, span)
		sc.Name += "-diurnal"
	}
	return sc
}

// scatteredTrace is the historical independent-event shape: a handful of
// uncorrelated capacity steps at loosely spaced instants.
func scatteredTrace(rng *rand.Rand, span float64) workload.AvailabilityTrace {
	events := make([]workload.CapacityEvent, 0, 6)
	t := 0.0
	for len(events) < 4 {
		t += span / float64(5+rng.Intn(8))
		if t >= span {
			break
		}
		events = append(events, workload.CapacityEvent{
			At:       t,
			Capacity: minRandomCap + rng.Intn(randomCapacity-minRandomCap+1),
		})
	}
	return workload.AvailabilityTrace{Events: events}.WithRestore(randomCapacity, span)
}

// burstTrace models correlated failures: one or two clusters of capacity
// drops tens of seconds apart — a cascade, not independent noise — each
// followed by a single recovery step. Tight event clusters land several
// forced shrinks and requeues inside one reconciliation window, the regime
// the shard boundary walk is most likely to get wrong. Every capacity stays
// at or above minRandomCap so the rigid policies remain feasible.
func burstTrace(rng *rand.Rand, span float64) workload.AvailabilityTrace {
	var events []workload.CapacityEvent
	t := 0.0
	for burst := 0; burst < 1+rng.Intn(2); burst++ {
		t += span * (0.1 + 0.3*rng.Float64())
		if t >= span {
			break
		}
		c := randomCapacity
		for hit := 0; hit < 2+rng.Intn(3); hit++ {
			if drop := 1 + rng.Intn(16); c-drop < minRandomCap {
				c = minRandomCap
			} else {
				c -= drop
			}
			events = append(events, workload.CapacityEvent{At: t, Capacity: c})
			t += 10 + float64(rng.Intn(111))
			if t >= span {
				break
			}
		}
		if t < span {
			// Recovery: most of the lost capacity returns at once.
			events = append(events, workload.CapacityEvent{
				At: t, Capacity: randomCapacity - rng.Intn(8),
			})
		}
	}
	return workload.AvailabilityTrace{Events: events}.WithRestore(randomCapacity, span)
}

// diurnalTrace samples a day/night capacity curve into steps: a cosine
// swinging between minRandomCap and randomCapacity over one or two periods —
// slow correlated drift, the opposite regime from burstTrace's cascades.
func diurnalTrace(rng *rand.Rand, span float64) workload.AvailabilityTrace {
	periods := 1 + rng.Intn(2)
	steps := 6 + rng.Intn(7)
	mid := float64(minRandomCap+randomCapacity) / 2
	amp := float64(randomCapacity-minRandomCap) / 2
	events := make([]workload.CapacityEvent, 0, steps)
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps+1)
		c := int(math.Round(mid + amp*math.Cos(2*math.Pi*frac*float64(periods))))
		if c < minRandomCap {
			c = minRandomCap
		}
		if c > randomCapacity {
			c = randomCapacity
		}
		events = append(events, workload.CapacityEvent{At: frac * span, Capacity: c})
	}
	return workload.AvailabilityTrace{Events: events}.WithRestore(randomCapacity, span)
}

// Shrink minimizes a failing scenario with ddmin-style chunk removal: it
// repeatedly tries dropping halves, quarters, … of the job list (then of
// the trace events, preserving the final restore event) and keeps any cut
// on which fails still returns true. The result is a (locally) 1-minimal
// scenario that still fails, which is what gets reported.
func Shrink(sc Scenario, fails func(Scenario) bool) Scenario {
	for pass := 0; pass < 8; pass++ {
		shrunk := false
		if next, ok := shrinkJobs(sc, fails); ok {
			sc, shrunk = next, true
		}
		if next, ok := shrinkTrace(sc, fails); ok {
			sc, shrunk = next, true
		}
		if !shrunk {
			break
		}
	}
	sc.Name += fmt.Sprintf("-shrunk-%djobs", sc.Jobs())
	return sc
}

// shrinkJobs tries removing job chunks at granularities 1/2, 1/4, … down to
// single jobs, returning the smallest failing cut it finds this pass.
func shrinkJobs(sc Scenario, fails func(Scenario) bool) (Scenario, bool) {
	improved := false
	for chunk := len(sc.Workload.Jobs) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(sc.Workload.Jobs); {
			if len(sc.Workload.Jobs)-chunk < 1 {
				break
			}
			jobs := append([]workload.JobSpec(nil), sc.Workload.Jobs[:lo]...)
			jobs = append(jobs, sc.Workload.Jobs[lo+chunk:]...)
			cand := sc
			cand.Workload = sim.Workload{Jobs: jobs}
			if fails(cand) {
				sc = cand
				improved = true
				// Re-try the same offset: the next chunk slid into it.
			} else {
				lo += chunk
			}
		}
	}
	return sc, improved
}

// shrinkTrace tries removing capacity events one at a time, keeping the
// final event (the feasibility restore) in place.
func shrinkTrace(sc Scenario, fails func(Scenario) bool) (Scenario, bool) {
	improved := false
	for i := 0; i < len(sc.Trace.Events)-1; {
		events := append([]workload.CapacityEvent(nil), sc.Trace.Events[:i]...)
		events = append(events, sc.Trace.Events[i+1:]...)
		cand := sc
		cand.Trace = workload.AvailabilityTrace{Events: events}
		if fails(cand) {
			sc = cand
			improved = true
		} else {
			i++
		}
	}
	return sc, improved
}
