package conformance

import (
	"fmt"
	"math/rand"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Scenario is one randomly generated equivalence input: a workload plus an
// optional availability trace. The property tests and fuzz targets generate
// Scenarios, run them through two execution modes, and require identical
// streams; Shrink minimizes a failing one.
type Scenario struct {
	Name     string
	Workload sim.Workload
	Trace    workload.AvailabilityTrace
}

// Jobs is the scenario's job count.
func (sc Scenario) Jobs() int { return len(sc.Workload.Jobs) }

// generation bounds. Capacities stay in [minRandomCap, randomCapacity] so
// every scenario remains feasible for the rigid policies (XLarge pins 16
// replicas, so a trace must never drop below 16 slots).
const (
	randomCapacity = 64
	minRandomCap   = 16
	maxRandomJobs  = 64
)

// RandomScenario draws a property-test scenario from rng: 8–64 jobs with
// random classes and priorities, mostly-dense arrivals salted with
// same-instant ties (the tie-break regime) and occasional multi-thousand-
// second gaps (drain/idle boundaries), plus — half the time — a random
// availability trace.
func RandomScenario(rng *rand.Rand) Scenario {
	n := 8 + rng.Intn(maxRandomJobs-8+1)
	jobs := make([]workload.JobSpec, n)
	at := 0.0
	for i := range jobs {
		switch rng.Intn(8) {
		case 0:
			// Same-instant tie with the previous job.
		case 1:
			// A long quiet hole: lets the cluster drain and re-idle.
			at += 2000 + float64(rng.Intn(4001))
		default:
			at += float64(rng.Intn(241))
		}
		jobs[i] = workload.JobSpec{
			ID:       fmt.Sprintf("p%03d", i),
			Class:    model.AllClasses()[rng.Intn(4)],
			Priority: 1 + rng.Intn(5),
			SubmitAt: at,
		}
	}
	sc := Scenario{
		Name:     fmt.Sprintf("random-%djobs", n),
		Workload: sim.Workload{Jobs: jobs},
	}
	if rng.Intn(2) == 0 {
		span := at + 3600
		events := make([]workload.CapacityEvent, 0, 6)
		t := 0.0
		for len(events) < 4 {
			t += span / float64(5+rng.Intn(8))
			if t >= span {
				break
			}
			events = append(events, workload.CapacityEvent{
				At:       t,
				Capacity: minRandomCap + rng.Intn(randomCapacity-minRandomCap+1),
			})
		}
		sc.Trace = workload.AvailabilityTrace{Events: events}.WithRestore(randomCapacity, span)
		sc.Name += "-trace"
	}
	return sc
}

// Shrink minimizes a failing scenario with ddmin-style chunk removal: it
// repeatedly tries dropping halves, quarters, … of the job list (then of
// the trace events, preserving the final restore event) and keeps any cut
// on which fails still returns true. The result is a (locally) 1-minimal
// scenario that still fails, which is what gets reported.
func Shrink(sc Scenario, fails func(Scenario) bool) Scenario {
	for pass := 0; pass < 8; pass++ {
		shrunk := false
		if next, ok := shrinkJobs(sc, fails); ok {
			sc, shrunk = next, true
		}
		if next, ok := shrinkTrace(sc, fails); ok {
			sc, shrunk = next, true
		}
		if !shrunk {
			break
		}
	}
	sc.Name += fmt.Sprintf("-shrunk-%djobs", sc.Jobs())
	return sc
}

// shrinkJobs tries removing job chunks at granularities 1/2, 1/4, … down to
// single jobs, returning the smallest failing cut it finds this pass.
func shrinkJobs(sc Scenario, fails func(Scenario) bool) (Scenario, bool) {
	improved := false
	for chunk := len(sc.Workload.Jobs) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(sc.Workload.Jobs); {
			if len(sc.Workload.Jobs)-chunk < 1 {
				break
			}
			jobs := append([]workload.JobSpec(nil), sc.Workload.Jobs[:lo]...)
			jobs = append(jobs, sc.Workload.Jobs[lo+chunk:]...)
			cand := sc
			cand.Workload = sim.Workload{Jobs: jobs}
			if fails(cand) {
				sc = cand
				improved = true
				// Re-try the same offset: the next chunk slid into it.
			} else {
				lo += chunk
			}
		}
	}
	return sc, improved
}

// shrinkTrace tries removing capacity events one at a time, keeping the
// final event (the feasibility restore) in place.
func shrinkTrace(sc Scenario, fails func(Scenario) bool) (Scenario, bool) {
	improved := false
	for i := 0; i < len(sc.Trace.Events)-1; {
		events := append([]workload.CapacityEvent(nil), sc.Trace.Events[:i]...)
		events = append(events, sc.Trace.Events[i+1:]...)
		cand := sc
		cand.Trace = workload.AvailabilityTrace{Events: events}
		if fails(cand) {
			sc = cand
			improved = true
		} else {
			i++
		}
	}
	return sc, improved
}
