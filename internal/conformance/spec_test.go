package conformance

import (
	"path/filepath"
	"reflect"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/federation"
)

func TestSpecMetaRoundTrip(t *testing.T) {
	specs := []RunSpec{
		{},
		{Backend: "sim", Scenario: "burst", Jobs: 48, Gap: 3000, Waves: 3, Seed: 5,
			Policy: core.Elastic, Capacity: 32, Shards: 8, Streaming: true, Log: true,
			Drain: true, Aging: 0.01, Preempt: true},
		{Backend: "cluster", Scenario: "uniform", Jobs: 12, Gap: 90, Seed: 4,
			Policy: core.Moldable, Log: true},
		{Backend: "federation", Scenario: "burst", Jobs: 96, Gap: 1200, Waves: 6,
			Seed: 3, Policy: core.RigidMax, Capacity: 16, Route: federation.LeastLoaded,
			Members: 3, Skew: 1.5, RebalanceEvery: 300, MigrateRunning: true, Workers: 1,
			Log: true},
	}
	for _, s := range specs {
		got, err := SpecFromMeta(s.Meta())
		if err != nil {
			t.Errorf("spec %+v: %v", s, err)
			continue
		}
		if !reflect.DeepEqual(s, got) {
			t.Errorf("meta round-trip changed the spec:\nin:  %+v\nout: %+v", s, got)
		}
	}
}

func TestSpecFromMetaRejectsUnknownKeys(t *testing.T) {
	if _, err := SpecFromMeta(map[string]string{"policy": "elastic", "warp": "9"}); err == nil {
		t.Error("unknown meta key accepted")
	}
	if _, err := SpecFromMeta(map[string]string{"policy": "turbo"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := SpecFromMeta(map[string]string{"jobs": "many"}); err == nil {
		t.Error("unparseable int accepted")
	}
}

// TestSpecReplayReproduces is the acceptance criterion behind
// `conftest -replay`: executing a spec, saving its stream, loading it back,
// reconstructing the spec from the stream's Meta, and executing again must
// reproduce the identical stream — decisions, migrations, and bit-exact
// summaries.
func TestSpecReplayReproduces(t *testing.T) {
	specs := map[string]RunSpec{
		"sim": {Backend: "sim", Scenario: "burst", Jobs: 48, Gap: 3000, Waves: 3,
			Seed: 5, Policy: core.Elastic, Log: true, Drain: true},
		"sim-sharded": {Backend: "sim", Scenario: "uniform", Jobs: 60, Gap: 45,
			Seed: 7, Policy: core.Moldable, Shards: 4, Log: true},
		"federation-rebalance": {Backend: "federation", Scenario: "burst", Jobs: 96,
			Gap: 1200, Waves: 6, Seed: 3, Policy: core.Elastic, Capacity: 16,
			Route: federation.RoundRobin, Members: 3, Skew: 1.5,
			RebalanceEvery: 300, MigrateRunning: true, Drain: true, Log: true},
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			recorded, err := spec.Execute()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "stream.json")
			if err := recorded.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			replaySpec, err := SpecFromMeta(loaded.Meta)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := replaySpec.Execute()
			if err != nil {
				t.Fatal(err)
			}
			if d := Compare(loaded, replayed); !d.Empty() {
				t.Fatalf("replay diverged from the recording:\n%s", d.Format(loaded, replayed, 0))
			}
		})
	}
}

// TestSpecValidation: bad specs fail loudly instead of running the wrong
// scenario.
func TestSpecValidation(t *testing.T) {
	bad := map[string]RunSpec{
		"backend":       {Backend: "quantum"},
		"scenario":      {Scenario: "tsunami"},
		"burst-divides": {Scenario: "burst", Jobs: 50, Waves: 3},
		"cluster-nodes": {Backend: "cluster", Capacity: 30},
	}
	for name, spec := range bad {
		if _, err := spec.Execute(); err == nil {
			t.Errorf("%s: bad spec executed", name)
		}
	}
}
