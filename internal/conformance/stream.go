// Package conformance records, serializes, diffs, and replays scheduler
// decision streams — the first-class form of the bit-equality safety net
// behind the incremental core, the sharded event loop, and the federation
// rebalancer.
//
// A Stream is the canonical, versioned serialization of one run: the
// core.Decision log, the rebalancer's migration log, a Summary of the run's
// aggregate Result (plus an exact per-job digest in retained mode), and —
// for federations — one member sub-stream per cluster. Streams are JSON and
// golden-file friendly, and they are bit-exact: decision times serialize as
// Unix nanoseconds and float aggregates round-trip unchanged through
// encoding/json's shortest representation, so two runs are equivalent
// exactly when their streams compare equal.
//
// Compare diffs two streams structurally; on divergence Diff.Format renders
// a readable window (±K decisions around the first mismatch, with a
// field-level diff and job/cluster IDs resolved) instead of a
// reflect.DeepEqual bool. The equivalence matrix in matrix.go drives every
// pinned contract — incremental vs FullRedistribute, streaming vs retained,
// Shards 1/2/8 vs sequential, rebalanced fleets sequential vs parallel vs
// repeated, cluster-emulation repeat determinism — through this one
// package, and cmd/conftest records, replays, and diffs streams from the
// command line so a failing CI case reproduces locally from an artifact.
package conformance

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
)

// StreamVersion is the stream format generation written by this package.
// Readers accept generations 1..StreamVersion and reject newer ones rather
// than misinterpreting them.
const StreamVersion = 1

// epochNs anchors decision timestamps: both the simulator and the cluster
// emulation start their virtual clocks at 2025-01-01T00:00:00Z, so every
// decision's wall-clock instant renders as a relative offset from it.
var epochNs = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()

// Stream is the canonical serialization of one run's decision stream.
type Stream struct {
	// Version is the format generation (StreamVersion when written here).
	Version int `json:"version"`
	// Label names the run (a matrix candidate, a federation member).
	Label string `json:"label,omitempty"`
	// Meta records how the stream was produced — a RunSpec's key/value
	// encoding, which Replay turns back into an executable run.
	Meta map[string]string `json:"meta,omitempty"`
	// Decisions is the scheduler's decision log, oldest first (empty when
	// the run did not enable decision logging).
	Decisions []Decision `json:"decisions,omitempty"`
	// Migrations is the federation rebalancer's move log (fleet runs only).
	Migrations []Migration `json:"migrations,omitempty"`
	// Summary carries the run's aggregate Result, bit-exact.
	Summary *Summary `json:"summary,omitempty"`
	// Members holds one sub-stream per federation member, in member order.
	// Members never nest further.
	Members []*Stream `json:"members,omitempty"`
}

// Decision is one core.Decision in serialized form. The timestamp is the
// decision's exact Unix-nanosecond instant, so JSON round-trips cannot lose
// a bit; renderers show it relative to the shared 2025-01-01 UTC epoch.
type Decision struct {
	AtNs      int64  `json:"at_ns"`
	Kind      string `json:"kind"`
	JobID     string `json:"job,omitempty"`
	Replicas  int    `json:"replicas"`
	FreeSlots int    `json:"free"`
}

// render formats one decision as a human-readable log line with the time
// relative to the epoch.
func (d Decision) render() string {
	job := d.JobID
	if job == "" {
		job = "-"
	}
	return fmt.Sprintf("t=+%.6fs %-8s %-14s replicas=%-3d free=%d",
		float64(d.AtNs-epochNs)/1e9, d.Kind, job, d.Replicas, d.FreeSlots)
}

// Migration mirrors federation.Migration: one rebalancer move.
type Migration struct {
	Round        int     `json:"round"`
	At           float64 `json:"at_s"`
	JobID        string  `json:"job"`
	From         int     `json:"from"`
	To           int     `json:"to"`
	Checkpointed bool    `json:"checkpointed,omitempty"`
}

// render formats one migration as a log line.
func (m Migration) render() string {
	ckpt := ""
	if m.Checkpointed {
		ckpt = " (checkpointed)"
	}
	return fmt.Sprintf("round=%-4d t=%.1fs %s: member %d -> %d%s",
		m.Round, m.At, m.JobID, m.From, m.To, ckpt)
}

// Summary carries a run's aggregate metrics, field for field from
// sim.Result (and the fleet-level extras from federation.Result). Floats
// are stored as-is: encoding/json writes the shortest representation that
// round-trips, so equality of summaries is bit-equality of the run.
type Summary struct {
	Policy             string  `json:"policy"`
	Jobs               int     `json:"jobs,omitempty"` // retained job records (0 in streaming mode)
	TotalTime          float64 `json:"total_time_s"`
	Utilization        float64 `json:"utilization"`
	WeightedResponse   float64 `json:"weighted_response_s"`
	WeightedCompletion float64 `json:"weighted_completion_s"`
	FirstStart         float64 `json:"first_start_s"`
	LastEnd            float64 `json:"last_end_s"`
	UsedSlotSec        float64 `json:"used_slot_s"`
	DeliveredSlotSec   float64 `json:"delivered_slot_s"`
	WeightSum          float64 `json:"weight_sum"`
	EndCapacity        int     `json:"end_capacity,omitempty"`
	CapacityEvents     int     `json:"capacity_events,omitempty"`
	ForcedShrinks      int     `json:"forced_shrinks,omitempty"`
	Requeues           int     `json:"requeues,omitempty"`
	WorkLostSec        float64 `json:"work_lost_s,omitempty"`
	GoodputFrac        float64 `json:"goodput"`
	// Fleet-only fields (federation runs).
	Imbalance       float64 `json:"imbalance,omitempty"`
	RebalanceRounds int     `json:"rebalance_rounds,omitempty"`
	JobsPerMember   []int   `json:"jobs_per_member,omitempty"`
	// JobsDigest is an FNV-64a fingerprint of the retained per-job metrics,
	// replica timelines, and utilization timeline (exact hex-float
	// renderings, so a single-ulp drift changes it). Empty in streaming
	// mode; comparisons skip it when either side lacks one.
	JobsDigest string `json:"jobs_digest,omitempty"`
}

// FromDecisions converts a core decision log to its serialized form.
func FromDecisions(log []core.Decision) []Decision {
	if len(log) == 0 {
		return nil
	}
	out := make([]Decision, len(log))
	for i, d := range log {
		out[i] = Decision{
			AtNs:      d.At.UnixNano(),
			Kind:      d.Kind.String(),
			JobID:     d.JobID,
			Replicas:  d.Replicas,
			FreeSlots: d.FreeSlots,
		}
	}
	return out
}

// FromMigrations converts a federation migration log.
func FromMigrations(migs []federation.Migration) []Migration {
	if len(migs) == 0 {
		return nil
	}
	out := make([]Migration, len(migs))
	for i, m := range migs {
		out[i] = Migration{
			Round: m.Round, At: m.At, JobID: m.JobID,
			From: m.From, To: m.To, Checkpointed: m.Checkpointed,
		}
	}
	return out
}

// SummaryOf captures one sim (or cluster-emulation) Result.
func SummaryOf(res sim.Result) *Summary {
	return &Summary{
		Policy:             res.Policy.String(),
		Jobs:               len(res.Jobs),
		TotalTime:          res.TotalTime,
		Utilization:        res.Utilization,
		WeightedResponse:   res.WeightedResponse,
		WeightedCompletion: res.WeightedCompletion,
		FirstStart:         res.FirstStart,
		LastEnd:            res.LastEnd,
		UsedSlotSec:        res.UsedSlotSec,
		DeliveredSlotSec:   res.DeliveredSlotSec,
		WeightSum:          res.WeightSum,
		EndCapacity:        res.EndCapacity,
		CapacityEvents:     res.CapacityEvents,
		ForcedShrinks:      res.ForcedShrinks,
		Requeues:           res.Requeues,
		WorkLostSec:        res.WorkLostSec,
		GoodputFrac:        res.GoodputFrac,
		JobsDigest:         jobsDigest(res),
	}
}

// FleetSummaryOf captures one federation Result's fleet-level aggregates.
func FleetSummaryOf(res federation.Result) *Summary {
	return &Summary{
		Policy:             res.Policy.String(),
		TotalTime:          res.TotalTime,
		Utilization:        res.Utilization,
		WeightedResponse:   res.WeightedResponse,
		WeightedCompletion: res.WeightedCompletion,
		CapacityEvents:     res.CapacityEvents,
		ForcedShrinks:      res.ForcedShrinks,
		Requeues:           res.Requeues,
		WorkLostSec:        res.WorkLostSec,
		GoodputFrac:        res.GoodputFrac,
		Imbalance:          res.Imbalance,
		RebalanceRounds:    res.RebalanceRounds,
		JobsPerMember:      append([]int(nil), res.JobsPerMember...),
	}
}

// jobsDigest fingerprints a retained result's per-job metrics and
// timelines. Every float is rendered in exact hexadecimal form before
// hashing, so the digest changes on any single-ulp difference — the compact
// stand-in for serializing millions of per-job records into the stream.
func jobsDigest(res sim.Result) string {
	if res.Jobs == nil {
		return ""
	}
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	f := func(x float64) {
		buf = strconv.AppendFloat(buf[:0], x, 'x', -1, 64)
		buf = append(buf, ';')
		h.Write(buf)
	}
	n := func(x int) {
		buf = strconv.AppendInt(buf[:0], int64(x), 10)
		buf = append(buf, ';')
		h.Write(buf)
	}
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{';'})
	}
	for _, j := range res.Jobs {
		str(j.ID)
		n(int(j.Class))
		n(j.Priority)
		n(j.Replicas)
		n(j.Rescales)
		f(j.SubmitAt)
		f(j.StartAt)
		f(j.EndAt)
		f(j.OverheadSec)
		f(j.ResponseTime)
		f(j.CompletionTime)
		for _, s := range res.ReplicaTimelines[j.ID] {
			f(s.At)
			n(s.Replicas)
		}
	}
	for _, s := range res.UtilTimeline {
		f(s.At)
		n(s.Used)
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// Validate checks the stream's structural integrity: a readable version and
// no doubly-nested members.
func (s *Stream) Validate() error {
	if s.Version < 1 || s.Version > StreamVersion {
		return fmt.Errorf("conformance: stream version %d, this build reads 1..%d", s.Version, StreamVersion)
	}
	for i, m := range s.Members {
		if m == nil {
			return fmt.Errorf("conformance: member %d is null", i)
		}
		if len(m.Members) > 0 {
			return fmt.Errorf("conformance: member %d nests further members", i)
		}
	}
	return nil
}

// Save writes the stream as indented JSON.
func (s *Stream) Save(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// SaveFile writes the stream to path.
func (s *Stream) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and validates a stream.
func Load(r io.Reader) (*Stream, error) {
	var s Stream
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a stream from path.
func LoadFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
