package conformance

import (
	"math/rand"
	"strings"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
)

// scenarioDivergence runs one scenario through the reference
// full-redistribute scheduler and a candidate mode (both logged) and
// returns the differ's report, or "" when the streams are identical.
func scenarioDivergence(sc Scenario, p core.Policy, shards int) (string, error) {
	run := func(full bool, shards int) (*Stream, error) {
		cfg := sim.DefaultConfig(p)
		cfg.Availability = sc.Trace
		cfg.FullRedistribute = full
		cfg.LogDecisions = true
		cfg.Shards = shards
		return RecordSim(cfg, sc.Workload)
	}
	ref, err := run(true, 0)
	if err != nil {
		return "", err
	}
	got, err := run(false, shards)
	if err != nil {
		return "", err
	}
	if d := Compare(ref, got); !d.Empty() {
		return d.Format(ref, got, 0), nil
	}
	return "", nil
}

// TestRandomScenarioEquivalenceProperty is the property-based sweep: a
// fixed-seed stream of random scenarios, each run through the incremental
// and sharded modes against the full-redistribute reference. A failure is
// shrunk to a minimal scenario before reporting.
func TestRandomScenarioEquivalenceProperty(t *testing.T) {
	iterations := 20
	if testing.Short() {
		iterations = 6
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < iterations; i++ {
		sc := RandomScenario(rng)
		p := core.AllPolicies()[i%4]
		shards := []int{0, 8}[i%2]
		report, err := scenarioDivergence(sc, p, shards)
		if err != nil {
			t.Fatalf("iteration %d (%s, %s, shards %d): %v", i, sc.Name, p, shards, err)
		}
		if report == "" {
			continue
		}
		// Shrink to a minimal failing scenario for the report.
		min := Shrink(sc, func(cand Scenario) bool {
			r, err := scenarioDivergence(cand, p, shards)
			return err == nil && r != ""
		})
		minReport, _ := scenarioDivergence(min, p, shards)
		t.Fatalf("iteration %d: %s diverged under %s shards=%d; shrunk to %s (%d jobs, %d trace events):\n%s",
			i, sc.Name, p, shards, min.Name, min.Jobs(), len(min.Trace.Events), minReport)
	}
}

// TestShrinkMinimizes drives Shrink with a synthetic predicate and checks
// it reaches the 1-minimal core: the single triggering job, and the trace
// reduced to its protected final restore event.
func TestShrinkMinimizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sc Scenario
	for {
		sc = RandomScenario(rng)
		if sc.Jobs() >= 20 && len(sc.Trace.Events) >= 3 {
			break
		}
	}
	fails := func(cand Scenario) bool {
		for _, j := range cand.Workload.Jobs {
			if j.ID == "p007" {
				return true
			}
		}
		return false
	}
	min := Shrink(sc, fails)
	if min.Jobs() != 1 || min.Workload.Jobs[0].ID != "p007" {
		t.Errorf("job shrink left %d jobs (%+v), want just p007", min.Jobs(), min.Workload.Jobs)
	}
	if len(min.Trace.Events) != 1 {
		t.Errorf("trace shrink left %d events, want only the restore", len(min.Trace.Events))
	}
	if !fails(min) {
		t.Error("shrunk scenario no longer fails the predicate")
	}
	if !strings.Contains(min.Name, "shrunk") {
		t.Errorf("shrunk scenario not labelled: %s", min.Name)
	}
}

// TestRandomScenarioFeasibility: generated scenarios must always be valid
// inputs — traces validate and never drop below the rigid-feasibility
// floor, jobs arrive in order.
func TestRandomScenarioFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		sc := RandomScenario(rng)
		if sc.Jobs() < 8 || sc.Jobs() > maxRandomJobs {
			t.Fatalf("scenario %d: %d jobs out of bounds", i, sc.Jobs())
		}
		last := 0.0
		for _, j := range sc.Workload.Jobs {
			if j.SubmitAt < last {
				t.Fatalf("scenario %d: submissions out of order", i)
			}
			last = j.SubmitAt
		}
		if err := sc.Trace.Validate(); err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		for _, ev := range sc.Trace.Events {
			if ev.Capacity < minRandomCap {
				t.Fatalf("scenario %d: capacity %d below rigid floor %d", i, ev.Capacity, minRandomCap)
			}
		}
	}
}
