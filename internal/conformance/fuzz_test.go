package conformance

import (
	"math/rand"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
)

// fuzzScenario derives a bounded scenario from a fuzzer-chosen seed: the
// seed drives the same generator the property tests use, truncated so one
// fuzz execution stays fast.
func fuzzScenario(seed int64) Scenario {
	sc := RandomScenario(rand.New(rand.NewSource(seed)))
	if sc.Jobs() > 48 {
		sc.Workload.Jobs = sc.Workload.Jobs[:48]
	}
	return sc
}

// FuzzIncrementalEquivalence fuzzes the incremental scheduler's contract:
// any generated scenario × policy must produce a decision stream identical
// to the full-redistribute reference.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(1234), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, policyIdx uint8) {
		sc := fuzzScenario(seed)
		p := core.AllPolicies()[int(policyIdx)%4]
		report, err := scenarioDivergence(sc, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if report != "" {
			t.Fatalf("seed %d policy %s diverged:\n%s", seed, p, report)
		}
	})
}

// FuzzShardEquivalence fuzzes the sharded event loop's contract: any
// generated scenario × policy × shard width must match the sequential
// reference exactly.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2))
	f.Add(int64(7), uint8(1), uint8(8))
	f.Add(int64(42), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, policyIdx, shardWidth uint8) {
		sc := fuzzScenario(seed)
		p := core.AllPolicies()[int(policyIdx)%4]
		shards := 2 + int(shardWidth)%7
		run := func(shards int) (*Stream, error) {
			cfg := sim.DefaultConfig(p)
			cfg.Availability = sc.Trace
			cfg.LogDecisions = true
			cfg.Shards = shards
			return RecordSim(cfg, sc.Workload)
		}
		ref, err := run(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run(shards)
		if err != nil {
			t.Fatal(err)
		}
		if d := Compare(ref, got); !d.Empty() {
			t.Fatalf("seed %d policy %s shards %d diverged:\n%s",
				seed, p, shards, d.Format(ref, got, 0))
		}
	})
}
