package metrics

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"elastichpc/internal/cluster"
	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenReport is a fully populated current-schema report; the golden file
// pins its JSON encoding so accidental schema drift fails loudly.
func goldenReport() Report {
	r := New("elasticsim", KindSweep)
	r.Params = map[string]string{"seeds": "2", "rescale_gap": "180"}
	r.Runs = []Run{
		{Name: "federation", Policy: "elastic", Jobs: 32, TotalTime: 1500, Utilization: 0.7,
			WeightedResponse: 90, WeightedCompletion: 500,
			Route: "least_loaded", Imbalance: 0.05,
			Migrations: 4, RebalanceRounds: 7,
			Members: []Run{
				{Name: "cluster0", Policy: "elastic", Jobs: 20, TotalTime: 1500, Utilization: 0.72,
					WeightedResponse: 95, WeightedCompletion: 520},
				{Name: "cluster1", Policy: "elastic", Jobs: 12, TotalTime: 1400, Utilization: 0.68,
					WeightedResponse: 80, WeightedCompletion: 470},
			}},
	}
	r.Sweeps = []Sweep{
		{
			Name: "submission_gap",
			X:    "submission gap (s)",
			Points: []Point{
				{
					X: 90,
					Runs: []Run{
						{Policy: "elastic", Seeds: 2, TotalTime: 2012.5, Utilization: 0.8125,
							WeightedResponse: 101.25, WeightedCompletion: 612.5,
							CapacityEvents: 3, PreemptsSurvived: 2, Requeued: 1,
							WorkLostSec: 84.5, Goodput: 0.9625},
						{Policy: "moldable", Seeds: 2, TotalTime: 2400, Utilization: 0.75,
							WeightedResponse: 180, WeightedCompletion: 700},
					},
				},
				{
					X:     0,
					Label: "burst",
					Runs: []Run{
						{Name: "burst", Policy: "min_replicas", Seeds: 2, Jobs: 16,
							TotalTime: 3000, Utilization: 0.5, WeightedResponse: 400, WeightedCompletion: 900},
					},
				},
			},
		},
	}
	r.Benchmarks = []Benchmark{
		{Name: "BenchmarkSimMillionJobs", Procs: 8, Iterations: 1, NsPerOp: 1.35e10,
			BytesPerOp: 4.9e7, AllocsPerOp: 1.87e6, Custom: map[string]float64{"jobs/s": 74265}},
	}
	return r
}

// TestReadsSchemaV1Golden pins backward compatibility: a report written by
// the schema-1 generation must keep loading (the v2 fields are additive).
func TestReadsSchemaV1Golden(t *testing.T) {
	r, err := Read(filepath.Join("testdata", "report_v1.golden.json"))
	if err != nil {
		t.Fatalf("v1 report no longer readable: %v", err)
	}
	if r.Schema != 1 || r.Kind != KindSweep {
		t.Errorf("schema %d kind %q, want 1/sweep", r.Schema, r.Kind)
	}
	run := r.Sweeps[0].Points[0].Runs[0]
	if run.Policy != "elastic" || run.TotalTime != 2012.5 {
		t.Errorf("v1 run decoded wrong: %+v", run)
	}
	if run.CapacityEvents != 0 || run.Goodput != 0 {
		t.Errorf("v1 run grew resilience values from nowhere: %+v", run)
	}
}

// TestReadsSchemaV2Golden pins backward compatibility one generation up: a
// report written by the schema-2 generation (resilience fields, no
// federation fields) must keep loading under the v3 reader.
func TestReadsSchemaV2Golden(t *testing.T) {
	r, err := Read(filepath.Join("testdata", "report_v2.golden.json"))
	if err != nil {
		t.Fatalf("v2 report no longer readable: %v", err)
	}
	if r.Schema != 2 || r.Kind != KindSweep {
		t.Errorf("schema %d kind %q, want 2/sweep", r.Schema, r.Kind)
	}
	run := r.Sweeps[0].Points[0].Runs[0]
	if run.Policy != "elastic" || run.CapacityEvents != 3 || run.Goodput != 0.9625 {
		t.Errorf("v2 run decoded wrong: %+v", run)
	}
	if run.Route != "" || run.Imbalance != 0 || run.Members != nil {
		t.Errorf("v2 run grew federation values from nowhere: %+v", run)
	}
}

// TestReadsSchemaV3Golden pins backward compatibility one generation up: a
// report written by the schema-3 generation (federation fields, no
// rebalancer fields) must keep loading under the v4 reader.
func TestReadsSchemaV3Golden(t *testing.T) {
	r, err := Read(filepath.Join("testdata", "report_v3.golden.json"))
	if err != nil {
		t.Fatalf("v3 report no longer readable: %v", err)
	}
	if r.Schema != 3 || r.Kind != KindSweep {
		t.Errorf("schema %d kind %q, want 3/sweep", r.Schema, r.Kind)
	}
	run := r.Runs[0]
	if run.Route != "least_loaded" || run.Imbalance != 0.05 || len(run.Members) != 2 {
		t.Errorf("v3 federation run decoded wrong: %+v", run)
	}
	if run.Migrations != 0 || run.RebalanceRounds != 0 {
		t.Errorf("v3 run grew rebalancer values from nowhere: %+v", run)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "report_v4.golden.json")
	r := goldenReport()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if *updateGolden {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if string(data) != string(want) {
		t.Errorf("encoding drifted from golden file:\ngot:\n%s\nwant:\n%s", data, want)
	}
	// Round trip: the golden bytes decode back to the identical value.
	var back Report
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Errorf("round trip mismatch:\ngot %+v\nwant %+v", back, r)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("golden report invalid: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	r := goldenReport()
	if err := Write(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Errorf("Write/Read round trip mismatch")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Report{
		{Schema: SchemaVersion + 1, Kind: KindRun, Runs: []Run{{Policy: "elastic"}}},
		{Schema: SchemaVersion, Kind: "mystery"},
		{Schema: SchemaVersion, Kind: KindRun},
		{Schema: SchemaVersion, Kind: KindSweep},
		{Schema: SchemaVersion, Kind: KindBench},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid report accepted: %+v", i, r)
		}
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "kind": "run", "runs": [{"policy": "elastic"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Error("accepted a schema-99 report")
	}
}

func TestFromResultAndSweepConverters(t *testing.T) {
	w := sim.RandomWorkload(8, 90, 1)
	res, err := sim.RunPolicy(core.Elastic, w, 180)
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult("uniform", res)
	if run.Policy != "elastic" || run.Jobs != 8 || run.TotalTime != res.TotalTime ||
		run.Utilization != res.Utilization {
		t.Errorf("FromResult mismatch: %+v vs %+v", run, res)
	}

	pts, err := sim.SubmissionGapSweep([]float64{0, 150}, 8, 2, 180)
	if err != nil {
		t.Fatal(err)
	}
	sw := FromSweep("submission_gap", "submission gap (s)", pts)
	if len(sw.Points) != 2 {
		t.Fatalf("%d points", len(sw.Points))
	}
	for _, p := range sw.Points {
		if len(p.Runs) != 4 {
			t.Errorf("point x=%g has %d policies", p.X, len(p.Runs))
		}
		// Policy order is the paper's presentation order.
		for i, pol := range core.AllPolicies() {
			if p.Runs[i].Policy != pol.String() {
				t.Errorf("point x=%g run %d policy %q, want %q", p.X, i, p.Runs[i].Policy, pol)
			}
			if p.Runs[i].Seeds != 2 {
				t.Errorf("seeds = %d", p.Runs[i].Seeds)
			}
		}
	}

	gens := []workload.Generator{
		workload.Uniform{Jobs: 8, Gap: 90},
		workload.Burst{Waves: 2, PerWave: 4, WaveGap: 360},
	}
	srs, err := sim.ScenarioSweep(gens, 2, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	ssw := FromScenarios(srs)
	if len(ssw.Points) != len(srs) {
		t.Fatalf("%d scenario points", len(ssw.Points))
	}
	for i, p := range ssw.Points {
		if p.Label != gens[i].Name() || p.X != float64(i) || len(p.Runs) != 4 {
			t.Errorf("scenario point %d: %+v", i, p)
		}
	}
}

// TestClusterReportGolden extends the golden coverage to the cluster
// emulation backend: a fixed small workload through cluster.RunExperiment
// must serialize to byte-identical JSON every run — the regression guard for
// the Result() map-ordering bug (Jobs used to come out in map iteration
// order, so -json reports never diffed clean). Times are rounded to
// microseconds so the pin survives float-ulp differences across
// architectures while still catching any reordering or metric drift.
func TestClusterReportGolden(t *testing.T) {
	golden := filepath.Join("testdata", "cluster_run.golden.json")
	w := sim.RandomWorkload(6, 90, 4)
	res, err := cluster.RunExperiment(cluster.DefaultConfig(core.Elastic), w)
	if err != nil {
		t.Fatal(err)
	}
	round := func(x float64) float64 { return math.Round(x*1e6) / 1e6 }
	type jobRow struct {
		ID       string  `json:"id"`
		Priority int     `json:"priority"`
		Replicas int     `json:"replicas"`
		SubmitAt float64 `json:"submit_at_s"`
		StartAt  float64 `json:"start_at_s"`
		EndAt    float64 `json:"end_at_s"`
		Rescales int     `json:"rescales"`
	}
	doc := struct {
		Run  Run      `json:"run"`
		Jobs []jobRow `json:"jobs"`
	}{Run: FromResult("cluster", res)}
	doc.Run.TotalTime = round(doc.Run.TotalTime)
	doc.Run.Utilization = round(doc.Run.Utilization)
	doc.Run.WeightedResponse = round(doc.Run.WeightedResponse)
	doc.Run.WeightedCompletion = round(doc.Run.WeightedCompletion)
	doc.Run.Goodput = round(doc.Run.Goodput)
	for _, j := range res.Jobs {
		doc.Jobs = append(doc.Jobs, jobRow{
			ID: j.ID, Priority: j.Priority, Replicas: j.Replicas,
			SubmitAt: round(j.SubmitAt), StartAt: round(j.StartAt), EndAt: round(j.EndAt),
			Rescales: j.Rescales,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if *updateGolden {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if string(data) != string(want) {
		t.Errorf("cluster-backend report drifted from golden:\ngot:\n%s\nwant:\n%s", data, want)
	}
}

// TestFromFederationConverter checks the fleet/member mapping.
func TestFromFederationConverter(t *testing.T) {
	w := sim.RandomWorkload(12, 60, 2)
	res, err := federation.Run(federation.Config{
		Members: federation.Uniform(sim.DefaultConfig(core.Elastic), 3),
		Route:   federation.RoundRobin,
		Workers: 1,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	run := FromFederation("fed", res)
	if run.Route != "round_robin" || len(run.Members) != 3 {
		t.Fatalf("converted run: %+v", run)
	}
	if run.Jobs != 12 {
		t.Errorf("fleet job count %d", run.Jobs)
	}
	for i, m := range run.Members {
		if m.Name != fmt.Sprintf("cluster%d", i) {
			t.Errorf("member %d named %q", i, m.Name)
		}
		if m.Jobs != res.JobsPerMember[i] {
			t.Errorf("member %d jobs %d, want %d", i, m.Jobs, res.JobsPerMember[i])
		}
	}
	rep := New("test", KindRun)
	rep.Runs = []Run{run}
	path := filepath.Join(t.TempDir(), "fed.json")
	if err := Write(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Runs[0], run) {
		t.Error("federation run did not round-trip")
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: elastichpc/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
some benchmark print output
BenchmarkSimMillionJobs-8   	       1	13465277116 ns/op	     74265 jobs/s	49160712 B/op	 1870385 allocs/op
BenchmarkMsgqDeep   	     100	     12345 ns/op
PASS
ok  	elastichpc/internal/sim	15.587s
`
	r, err := ParseGoBench(strings.NewReader(out), "benchreport")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkSimMillionJobs" || b.Procs != 8 || b.Iterations != 1 {
		t.Errorf("header mismatch: %+v", b)
	}
	if b.NsPerOp != 13465277116 || b.BytesPerOp != 49160712 || b.AllocsPerOp != 1870385 {
		t.Errorf("metrics mismatch: %+v", b)
	}
	if b.Custom["jobs/s"] != 74265 {
		t.Errorf("custom metric lost: %+v", b.Custom)
	}
	if r.Benchmarks[1].Name != "BenchmarkMsgqDeep" || r.Benchmarks[1].NsPerOp != 12345 {
		t.Errorf("second benchmark mismatch: %+v", r.Benchmarks[1])
	}

	if _, err := ParseGoBench(strings.NewReader("no benchmarks here\n"), "x"); err == nil {
		t.Error("accepted bench-free input")
	}
}
