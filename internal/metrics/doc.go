// Package metrics defines the versioned, machine-readable experiment-report
// schema every harness emits: the discrete-event simulator's runs and
// sweeps (internal/sim), the full-stack cluster emulation
// (internal/cluster), and the Go benchmark output the CI regression gate
// compares. One schema means one diff tool (cmd/benchreport), one artifact
// format for CI, and reports that remain parseable as the repo evolves.
//
// The Schema field is bumped on schema growth and checked on every Read:
// writers always emit the current generation (SchemaVersion), readers
// accept everything back to MinReadableSchema — v2 added the resilience
// aggregates to Run as a strict superset of v1, so v1 artifacts keep
// loading — and newer generations are rejected rather than misinterpreted.
package metrics
