package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"elastichpc/internal/core"
	"elastichpc/internal/federation"
	"elastichpc/internal/sim"
)

// SchemaVersion is the report format generation written by New. Version 2
// added the resilience aggregates (capacity events, preemptions survived,
// requeues, work lost, goodput) to Run; version 3 added the federation
// fields (route, imbalance, and per-cluster member sub-runs); version 4
// added the rebalancer activity (migration and round counts). Readers accept
// every generation back to MinReadableSchema — older fields are a strict
// subset, so v1 through v3 reports decode losslessly — and reject newer
// generations rather than misinterpreting them.
const SchemaVersion = 4

// MinReadableSchema is the oldest report generation Validate accepts.
const MinReadableSchema = 1

// Kind classifies what a report contains.
type Kind string

// Report kinds.
const (
	// KindRun is one or more single experiment runs (Runs populated).
	KindRun Kind = "run"
	// KindSweep is one or more parameter sweeps (Sweeps populated).
	KindSweep Kind = "sweep"
	// KindBench is parsed `go test -bench` output (Benchmarks populated).
	KindBench Kind = "bench"
)

// Report is the top-level experiment report.
type Report struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool,omitempty"` // producing command, e.g. "elasticsim"
	Kind   Kind   `json:"kind"`
	// Params records the run configuration (flag values, workload shape).
	Params     map[string]string `json:"params,omitempty"`
	Runs       []Run             `json:"runs,omitempty"`
	Sweeps     []Sweep           `json:"sweeps,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks,omitempty"`
}

// Run is one experiment outcome: the paper's four metrics for one policy on
// one workload (or averaged over Seeds workloads).
type Run struct {
	Name               string  `json:"name,omitempty"` // scenario/workload label
	Policy             string  `json:"policy"`
	Seeds              int     `json:"seeds,omitempty"` // >1 when averaged
	Jobs               int     `json:"jobs,omitempty"`
	TotalTime          float64 `json:"total_time_s"`
	Utilization        float64 `json:"utilization"`
	WeightedResponse   float64 `json:"weighted_response_s"`
	WeightedCompletion float64 `json:"weighted_completion_s"`
	// Resilience aggregates (schema v2; absent from v1 reports and from
	// fixed-capacity runs). Counts are float64 so seed-averaged sweep
	// cells keep their fractional means.
	CapacityEvents   float64 `json:"capacity_events,omitempty"`
	PreemptsSurvived float64 `json:"preempts_survived,omitempty"` // capacity losses absorbed by shrinking
	Requeued         float64 `json:"requeued,omitempty"`          // checkpoint-requeued jobs
	WorkLostSec      float64 `json:"work_lost_s,omitempty"`
	Goodput          float64 `json:"goodput,omitempty"` // productive fraction of delivered replica-seconds
	// Federation fields (schema v3; absent from single-cluster runs). A
	// federated run's fleet row names its routing policy, the utilization
	// spread between its busiest and idlest member, and carries one member
	// sub-run per cluster (members never nest further).
	Route     string  `json:"route,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
	Members   []Run   `json:"members,omitempty"`
	// Rebalancer activity (schema v4; absent unless the elastic federation
	// ran with rebalancing on). Counts are float64 so seed-averaged sweep
	// cells keep their fractional means.
	Migrations      float64 `json:"migrations,omitempty"`
	RebalanceRounds float64 `json:"rebalance_rounds,omitempty"`
}

// Sweep is one parameter sweep: per-policy metrics at each x.
type Sweep struct {
	Name   string  `json:"name"` // e.g. "submission_gap", "scenario"
	X      string  `json:"x"`    // x-axis meaning
	Points []Point `json:"points"`
}

// Point is one x-coordinate of a sweep.
type Point struct {
	X     float64 `json:"x"`
	Label string  `json:"label,omitempty"` // scenario name for scenario sweeps
	Runs  []Run   `json:"runs"`
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"` // procs suffix stripped
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"` // e.g. "jobs/s"
}

// New starts a report of the given kind.
func New(tool string, kind Kind) Report {
	return Report{Schema: SchemaVersion, Tool: tool, Kind: kind}
}

// Validate checks structural integrity: schema generation, a known kind, and
// that the populated section matches the kind.
func (r Report) Validate() error {
	if r.Schema < MinReadableSchema || r.Schema > SchemaVersion {
		return fmt.Errorf("metrics: schema %d, this build reads %d..%d", r.Schema, MinReadableSchema, SchemaVersion)
	}
	switch r.Kind {
	case KindRun:
		if len(r.Runs) == 0 {
			return fmt.Errorf("metrics: run report with no runs")
		}
	case KindSweep:
		if len(r.Sweeps) == 0 {
			return fmt.Errorf("metrics: sweep report with no sweeps")
		}
	case KindBench:
		if len(r.Benchmarks) == 0 {
			return fmt.Errorf("metrics: bench report with no benchmarks")
		}
	default:
		return fmt.Errorf("metrics: unknown report kind %q", r.Kind)
	}
	return nil
}

// Write marshals the report to path as indented JSON.
func Write(path string, r Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates a report.
func Read(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("metrics: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return Report{}, fmt.Errorf("metrics: %s: %w", path, err)
	}
	return r, nil
}

// FromResult converts one simulation (or emulation) result. Jobs is taken
// from the result when retained, so streaming results pass their job count
// via the name-labelled Run only if the caller sets it afterwards.
func FromResult(name string, res sim.Result) Run {
	return Run{
		Name:               name,
		Policy:             res.Policy.String(),
		Jobs:               len(res.Jobs),
		TotalTime:          res.TotalTime,
		Utilization:        res.Utilization,
		WeightedResponse:   res.WeightedResponse,
		WeightedCompletion: res.WeightedCompletion,
		CapacityEvents:     float64(res.CapacityEvents),
		PreemptsSurvived:   float64(res.ForcedShrinks),
		Requeued:           float64(res.Requeues),
		WorkLostSec:        res.WorkLostSec,
		Goodput:            res.GoodputFrac,
	}
}

// FromFederation converts a federation run: the fleet-wide metrics as the
// top-level Run with its route, imbalance, and one member sub-run per
// cluster (named cluster0..clusterN-1, in member order).
func FromFederation(name string, res federation.Result) Run {
	run := Run{
		Name:               name,
		Policy:             res.Policy.String(),
		TotalTime:          res.TotalTime,
		Utilization:        res.Utilization,
		WeightedResponse:   res.WeightedResponse,
		WeightedCompletion: res.WeightedCompletion,
		CapacityEvents:     float64(res.CapacityEvents),
		PreemptsSurvived:   float64(res.ForcedShrinks),
		Requeued:           float64(res.Requeues),
		WorkLostSec:        res.WorkLostSec,
		Goodput:            res.GoodputFrac,
		Route:              res.Route.String(),
		Imbalance:          res.Imbalance,
		Migrations:         float64(len(res.Migrations)),
		RebalanceRounds:    float64(res.RebalanceRounds),
	}
	for i, m := range res.Members {
		member := FromResult(fmt.Sprintf("cluster%d", i), m)
		member.Jobs = res.JobsPerMember[i]
		run.Jobs += member.Jobs
		run.Members = append(run.Members, member)
	}
	return run
}

// FromAverage converts one per-policy seed-averaged cell.
func FromAverage(name string, avg sim.AverageResult) Run {
	return Run{
		Name:               name,
		Policy:             avg.Policy.String(),
		Seeds:              avg.Runs,
		TotalTime:          avg.TotalTime,
		Utilization:        avg.Utilization,
		WeightedResponse:   avg.WeightedResponse,
		WeightedCompletion: avg.WeightedCompletion,
		CapacityEvents:     avg.CapacityEvents,
		PreemptsSurvived:   avg.ForcedShrinks,
		Requeued:           avg.Requeues,
		WorkLostSec:        avg.WorkLostSec,
		Goodput:            avg.GoodputFrac,
		Imbalance:          avg.Imbalance,
	}
}

// FromSweep converts a Figure 7/8-style sweep, expanding each point's
// policies in the paper's presentation order.
func FromSweep(name, xLabel string, pts []sim.SweepPoint) Sweep {
	sw := Sweep{Name: name, X: xLabel, Points: make([]Point, 0, len(pts))}
	for _, pt := range pts {
		p := Point{X: pt.X, Runs: make([]Run, 0, len(pt.ByPolicy))}
		for _, pol := range core.AllPolicies() {
			if avg, ok := pt.ByPolicy[pol]; ok {
				p.Runs = append(p.Runs, FromAverage("", avg))
			}
		}
		sw.Points = append(sw.Points, p)
	}
	return sw
}

// FromScenarios converts a scenario sweep, one labelled point per scenario.
func FromScenarios(results []sim.ScenarioResult) Sweep {
	sw := Sweep{Name: "scenario", X: "scenario index", Points: make([]Point, 0, len(results))}
	for i, sr := range results {
		p := Point{X: float64(i), Label: sr.Name, Runs: make([]Run, 0, len(sr.ByPolicy))}
		for _, pol := range core.AllPolicies() {
			if avg, ok := sr.ByPolicy[pol]; ok {
				p.Runs = append(p.Runs, FromAverage(sr.Name, avg))
			}
		}
		sw.Points = append(sw.Points, p)
	}
	return sw
}

// ParseGoBench parses `go test -bench` output into a bench report. Lines
// that are not benchmark results (headers, PASS/ok, prints from the
// benchmarks themselves) are ignored. Recognized per-op units land in the
// named fields; anything else ("jobs/s", application metrics) goes to
// Custom under its unit string.
func ParseGoBench(in io.Reader, tool string) (Report, error) {
	r := New(tool, KindBench)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], procs
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a value/unit pair; stop parsing the line
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Custom == nil {
					b.Custom = make(map[string]float64)
				}
				b.Custom[unit] = val
			}
		}
		if b.NsPerOp == 0 && b.Custom == nil {
			continue // malformed line
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	if len(r.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("metrics: no benchmark lines found")
	}
	return r, nil
}
