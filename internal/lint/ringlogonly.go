package lint

import (
	"go/ast"
	"go/types"
)

// RingLogOnly keeps the decision log single-sourced: core.Decision records
// are constructed, and the logRing mutated, only by the append paths in
// core's log.go (record, recordCapacity, logRing.add, MergeLogs). The ring
// is the audit trail the conformance streams serialize — a Decision built or
// injected anywhere else bypasses the EnableLog gate, the ring bound, and
// the tnow timestamp discipline, so replay diffs would compare streams that
// no scheduler actually emitted. Inside core the analyzer also fences the
// ring's internals (Scheduler.log and logRing's fields) to log.go; other
// packages may freely *read* decisions (Log() hands out copies) but must not
// fabricate them.
var RingLogOnly = &Analyzer{
	Name: "ringlogonly",
	Doc:  "decision records flow only through core's logRing append paths in log.go",
	Run: func(pass *Pass) {
		inCore := pass.Path() == corePkg
		if !inCore && !inDeterministic(pass) {
			return
		}
		pass.Walk(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok || !isCoreNamed(tv.Type, "Decision") {
					return true
				}
				if inCore && pass.File(n.Pos()) == ringFile {
					return true
				}
				pass.Reportf(n.Pos(),
					"core.Decision constructed outside %s: decision records must be appended through the logRing paths (Scheduler.record/recordCapacity)", ringFile)
			case *ast.CallExpr:
				if !inCore || pass.File(n.Pos()) == ringFile {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "add" {
					return true
				}
				s, ok := pass.Info.Selections[sel]
				if !ok || s.Kind() != types.MethodVal {
					return true
				}
				if isCoreNamed(s.Recv(), "logRing") {
					pass.Reportf(n.Pos(),
						"logRing.add called outside %s: append decisions through Scheduler.record/recordCapacity so the EnableLog gate and timestamps stay uniform", ringFile)
				}
			case *ast.AssignStmt:
				if !inCore || pass.File(n.Pos()) == ringFile {
					return true
				}
				for _, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					owner, field, ok := namedField(pass.Info, sel)
					if !ok {
						continue
					}
					if owner.Obj().Name() == "logRing" ||
						(owner.Obj().Name() == "Scheduler" && field == "log") {
						pass.Reportf(n.TokPos,
							"write to the decision ring (%s.%s) outside %s: the ring's bound and head bookkeeping live in log.go only", owner.Obj().Name(), field, ringFile)
					}
				}
			}
			return true
		})
	},
}

// isCoreNamed reports whether t (after pointer/alias unwrapping) is the
// named type core.<name>.
func isCoreNamed(t types.Type, name string) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == corePkg
}
