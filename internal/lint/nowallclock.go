package lint

import "go/ast"

// NoWallClock forbids wall-clock reads and ambient randomness in the
// deterministic packages. Simulated time comes only from the event loop
// (Scheduler.tnow, the sim cursor) — a time.Now() anywhere in a decision
// path timestamps two identical runs differently — and randomness must flow
// from an explicit seeded *rand.Rand so a scenario's seed fully determines
// its stream. math/rand's package-level functions draw from the shared
// global source, which is both unseeded across runs and contended across
// goroutines, so any call to them is a contract violation even in code that
// "only" generates workloads.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/timers and global math/rand in deterministic packages",
	Run: func(pass *Pass) {
		if !inDeterministic(pass) {
			return
		}
		pass.Walk(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass.Info, call)
			if !ok {
				return true
			}
			switch pkg {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock: simulated time must come from the event loop (annotate //lint:deterministic <reason> if this is genuinely outside the simulation)", name)
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global source: take an explicit seeded *rand.Rand (rand.New(rand.NewSource(seed))) so the scenario seed pins the stream", name)
				}
			}
			return true
		})
	},
}

// wallClockFuncs are the time package entry points that read or schedule
// against real time. Constructors of constant values (time.Unix, time.Date,
// time.Duration arithmetic) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededConstructors are the math/rand (and v2) package-level functions that
// build an explicit generator rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}
