package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// The loader resolves package patterns with `go list -deps -json` and
// type-checks everything from source in the dependency order go list already
// guarantees. Dependencies (standard library included) are checked with
// IgnoreFuncBodies — only their exported shape matters — while target
// packages get full bodies and a complete types.Info for the analyzers.
// CGO_ENABLED=0 keeps transitive std packages (net, os/user) pure Go so the
// whole graph type-checks without a C toolchain; this repo has no cgo of its
// own, so the analyzed shape matches the shipped build.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
}

// LoadPackages loads and type-checks the packages matched by patterns
// (resolved in dir) and returns them ready for analysis, in go list order.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	imported := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := mapImporter(imported)
	var targets []*Package

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		target := !lp.DepOnly && !lp.Standard
		if len(lp.CgoFiles) > 0 {
			if target {
				return nil, fmt.Errorf("%s: cgo packages are not analyzable", lp.ImportPath)
			}
			continue
		}
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			if target {
				return nil, err
			}
			continue
		}
		pkg, info, err := check(fset, lp.ImportPath, files, imp, target)
		if err != nil && target {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		if pkg != nil {
			imported[lp.ImportPath] = pkg
		}
		if target && pkg != nil {
			targets = append(targets, &Package{
				Path: lp.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info,
			})
		}
	}
	return targets, nil
}

// parseFiles parses the named files (with comments, for annotations).
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package. Targets get full bodies and Info;
// dependencies only need their exported declarations.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, target bool) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer:         imp,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		IgnoreFuncBodies: !target,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err == nil {
		err = firstErr
	}
	return pkg, info, err
}

// mapImporter resolves imports from the progressively-filled package map;
// go list's dependency-first ordering guarantees entries exist when needed.
type mapImporter map[string]*types.Package

// Import resolves path from the already-checked package map.
func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not loaded (not in the go list -deps closure)", path)
}

// NewTestImporter returns an importer for the analyzer test harness: it
// resolves each import (standard library or module-local) by shelling out to
// go list for the import's own dependency closure and type-checking it from
// source, caching across calls. dir anchors module resolution.
func NewTestImporter(dir string) types.Importer {
	return &testImporter{dir: dir, fset: token.NewFileSet(),
		cache: map[string]*types.Package{"unsafe": types.Unsafe}}
}

// testImporter lazily loads dependency closures per imported path.
type testImporter struct {
	dir   string
	fset  *token.FileSet
	cache map[string]*types.Package
}

// Import satisfies types.Importer over the lazy cache.
func (ti *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.cache[path]; ok {
		return pkg, nil
	}
	cmd := exec.Command("go", "list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Standard,DepOnly", path)
	cmd.Dir = ti.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", path, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if _, done := ti.cache[lp.ImportPath]; done || len(lp.CgoFiles) > 0 {
			continue
		}
		files, err := parseFiles(ti.fset, lp.Dir, lp.GoFiles)
		if err != nil {
			continue
		}
		pkg, _, err := check(ti.fset, lp.ImportPath, files, mapImporter(ti.cache), false)
		if pkg != nil {
			ti.cache[lp.ImportPath] = pkg
		} else if err != nil && lp.ImportPath == path {
			return nil, err
		}
	}
	if pkg, ok := ti.cache[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q did not type-check", path)
}
