package lint

import (
	"go/ast"
	"go/types"
)

// NoBoundaryPanic forbids panic calls inside the exported entry points of
// the library-boundary packages (the facade, sim, federation, cluster). PR 5
// fixed three sites where an event-loop callback panicked straight through
// cluster.Run into the caller's frame; the repo's contract since is that
// every public entry returns an error. The check is lexical: any panic
// reachable in the body of an exported function or method (function literals
// included — callbacks defined there run on the caller's goroutine) is
// flagged, unless the declaration guards itself with a deferred recover.
// Unexported helpers may still panic internally if a recovering exported
// wrapper owns them — that indirection is the caller-visible contract this
// analyzer protects.
var NoBoundaryPanic = &Analyzer{
	Name: "noboundarypanic",
	Doc:  "forbid panics escaping exported entry points of library-boundary packages",
	Run: func(pass *Pass) {
		if !boundaryPkgs[pass.Path()] {
			return
		}
		pass.Walk(func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if !exportedEntry(fd) || hasRecoverDefer(pass.Info, fd.Body) {
				return true
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvTypeName(fd) + "." + name
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic inside exported %s can cross the library boundary: return an error (or recover at the entry point)", name)
				return true
			})
			return true
		})
	},
}

// exportedEntry reports whether fd is part of the public surface: an
// exported function, or an exported method on an exported receiver type.
func exportedEntry(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	return ast.IsExported(recvTypeName(fd))
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// hasRecoverDefer reports whether body directly defers a function literal
// that calls recover() — the blessed boundary-guard pattern.
func hasRecoverDefer(info *types.Info, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			continue
		}
		lit, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
