package lint

import "strings"

// The scope tables name the packages each invariant governs. They are keyed
// by import path (after test-variant normalization) so the same analyzers
// behave identically under the standalone driver, go vet -vettool, and the
// test harness, which type-checks its fixtures under these real paths.

// module is the root module path of this repository.
const module = "elastichpc"

// deterministicPkgs are the packages whose outputs are contractually
// bit-identical across execution modes (the conformance matrix's subjects):
// any source of scheduling-order or float-fold nondeterminism in them is a
// correctness bug, not a style issue.
var deterministicPkgs = map[string]bool{
	module + "/internal/core":        true,
	module + "/internal/sim":         true,
	module + "/internal/federation":  true,
	module + "/internal/conformance": true,
	module + "/internal/workload":    true,
}

// boundaryPkgs export the library surface: their entry points must return
// errors, never panic across the caller's frame (the PR-5 bug class, where
// event-loop callbacks panicked out of cluster.Run).
var boundaryPkgs = map[string]bool{
	module:                          true,
	module + "/internal/sim":        true,
	module + "/internal/federation": true,
	module + "/internal/cluster":    true,
}

// inDeterministic reports whether the pass's package is under the
// determinism contract.
func inDeterministic(p *Pass) bool { return deterministicPkgs[p.Path()] }

// inOrderedOutput additionally covers the CLIs: a main package that ranges a
// map while printing emits lines in random order, which breaks diffable
// output and golden files even where no simulation contract applies.
func inOrderedOutput(p *Pass) bool {
	return inDeterministic(p) || strings.HasPrefix(p.Path(), module+"/cmd/")
}

// blessedConcurrency lists the only (package, file) sites allowed to create
// goroutines or channels inside deterministic packages: the RunTasks worker
// pool (results indexed, error lowest-index-wins) and the chained-speculation
// shard pipeline (per-epoch done channels, reconciled sequentially). Every
// other goroutine is a place a float fold can reorder.
var blessedConcurrency = map[[2]string]bool{
	{module + "/internal/sim", "pool.go"}:  true,
	{module + "/internal/sim", "shard.go"}: true,
}

// sealedSpec pins a set of order-sensitive float accumulator fields to the
// files allowed to write them.
type sealedSpec struct {
	pkg     string
	typ     string
	fields  map[string]bool
	allowed map[string]bool
}

// sealedSpecs encodes the seal-fold discipline from sim/merge.go: the run
// totals are folded only by seal()/mergeSegments() in merge.go, and the open
// sub-accumulators are fed only by the event loop in sim.go (merge.go may
// reset and carry them). Accumulating these fields anywhere else — say, a
// per-shard partial sum added during reconciliation — is exactly the
// order-sensitive fold the 1-ULP UsedSlotSec fuzz finding came from.
var sealedSpecs = []sealedSpec{
	{
		pkg: module + "/internal/sim", typ: "Simulator",
		fields: map[string]bool{
			"utilArea": true, "wSum": true, "wResp": true,
			"wComp": true, "overheadArea": true, "workLost": true,
		},
		allowed: map[string]bool{"merge.go": true},
	},
	{
		pkg: module + "/internal/sim", typ: "Simulator",
		fields: map[string]bool{
			"utilSub": true, "finWSub": true, "finRespSub": true,
			"finCompSub": true, "ovhSub": true, "lostSub": true,
		},
		allowed: map[string]bool{"sim.go": true, "merge.go": true},
	},
}

// corePkg and ringFile anchor the ringlogonly analyzer: decision records are
// created and stored only by the logRing append paths in core's log.go.
const (
	corePkg  = module + "/internal/core"
	ringFile = "log.go"
)
