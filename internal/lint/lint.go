// Package lint is elasticvet's analysis framework: a small, dependency-free
// substitute for golang.org/x/tools/go/analysis that carries the repo's
// determinism invariants as compile-time checks. Each Analyzer inspects one
// type-checked package and reports Diagnostics; the suite runs standalone
// (go run ./cmd/elasticvet ./...) and under go vet -vettool.
//
// Diagnostics are suppressed line by line with an annotation that must carry
// a reason:
//
//	//lint:deterministic keys are collected and sorted below
//
// The annotation suppresses elasticvet findings on its own line and on the
// line that follows (so it can trail the offending statement or sit on its
// own line above it). A bare annotation with no reason is itself a
// diagnostic. Test files (_test.go) and generated files are never checked:
// the invariants guard the production decision paths, and tests routinely
// spin goroutines or range maps on purpose.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "nomapiter"
	Doc  string // one-paragraph description of the invariant it proves
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned in the analyzed package's fileset.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does: pos: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      *[]Diagnostic
	suppressed map[string]map[int]bool // filename -> suppressed lines
	skipFiles  map[*ast.File]bool      // _test.go and generated files
}

// Path returns the package import path with any go-vet test-variant suffix
// (" [pkg.test]") stripped, so scope tables match both build flavors.
func (p *Pass) Path() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// File returns the base filename holding pos (e.g. "merge.go").
func (p *Pass) File(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// Reportf records a diagnostic at pos unless the position is suppressed by a
// //lint:deterministic annotation or sits in a test or generated file.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if lines := p.suppressed[position.Filename]; lines[position.Line] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Walk runs fn over every node of every checkable file (skipping test and
// generated files entirely, not just their diagnostics).
func (p *Pass) Walk(fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		if p.skipFiles[f] {
			continue
		}
		ast.Inspect(f, fn)
	}
}

// suppressRE matches the determinism annotation; the capture group is the
// mandatory reason.
var suppressRE = regexp.MustCompile(`^//lint:deterministic(?:\s+(.*\S))?\s*$`)

// generatedRE is the standard "Code generated ... DO NOT EDIT." marker.
var generatedRE = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies every analyzer to the package and returns the findings sorted
// by position. Malformed //lint:deterministic annotations (no reason) are
// reported once per package under the pseudo-analyzer "lintdirective".
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	suppressed := make(map[string]map[int]bool)
	skip := make(map[*ast.File]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") || isGenerated(f) {
			skip[f] = true
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if m[1] == "" {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "lintdirective",
						Message:  "//lint:deterministic needs a reason: //lint:deterministic <why this site is safe>",
					})
					continue
				}
				if suppressed[name] == nil {
					suppressed[name] = make(map[int]bool)
				}
				suppressed[name][line] = true
				suppressed[name][line+1] = true
			}
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			diags:      &diags,
			suppressed: suppressed,
			skipFiles:  skip,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// isGenerated reports whether the file carries the standard generated-code
// marker before its package clause.
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRE.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// pkgFunc resolves a called expression to a package-level function of an
// imported package: it returns the importing name's package path and the
// function name for calls of the form pkgname.Func(...), and ok=false for
// anything else (methods, locals, builtins).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedField resolves a selector expression to (owning named type, field
// name) if it selects a struct field; ok=false otherwise. Pointers are
// dereferenced, aliases unwrapped.
func namedField(info *types.Info, sel *ast.SelectorExpr) (owner *types.Named, field string, ok bool) {
	s, okSel := info.Selections[sel]
	if !okSel || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	t := s.Recv()
	if ptr, okPtr := types.Unalias(t).(*types.Pointer); okPtr {
		t = ptr.Elem()
	}
	named, okNamed := types.Unalias(t).(*types.Named)
	if !okNamed {
		return nil, "", false
	}
	return named, sel.Sel.Name, true
}
