package lint

import (
	"go/ast"
	"go/types"
)

// NoStrayGoroutine confines goroutine launches and channel creation in the
// deterministic packages to the blessed concurrency sites: sim.RunTasks
// (pool.go — indexed results, lowest-index error wins) and the
// chained-speculation shard pipeline (shard.go — per-epoch done channels
// reconciled by a sequential adopter). Those two sites are the ones whose
// merge discipline is proven bit-identical by the conformance matrix; a
// goroutine anywhere else can interleave float folds or decision appends in
// schedule-dependent order, which no test seed is guaranteed to catch.
var NoStrayGoroutine = &Analyzer{
	Name: "nostraygoroutine",
	Doc:  "confine go statements and channel creation to the blessed concurrency sites",
	Run: func(pass *Pass) {
		if !inDeterministic(pass) {
			return
		}
		pass.Walk(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !blessedConcurrency[[2]string{pass.Path(), pass.File(n.Pos())}] {
					pass.Reportf(n.Pos(),
						"go statement outside the blessed concurrency sites (sim.RunTasks, the shard pipeline): route parallelism through them or annotate //lint:deterministic <reason>")
				}
			case *ast.CallExpr:
				if !isMakeChan(pass.Info, n) {
					return true
				}
				if !blessedConcurrency[[2]string{pass.Path(), pass.File(n.Pos())}] {
					pass.Reportf(n.Pos(),
						"channel creation outside the blessed concurrency sites: deterministic packages synchronize only through RunTasks and the shard pipeline")
				}
			}
			return true
		})
	},
}

// isMakeChan reports whether call is make(chan ...).
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	_, isChan := types.Unalias(tv.Type.Underlying()).(*types.Chan)
	return isChan
}
