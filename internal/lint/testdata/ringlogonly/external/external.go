// pkgpath: elastichpc/internal/sim

// Package external exercises ringlogonly from another deterministic
// package: reading decisions from core is fine, fabricating them is not.
package external

import "elastichpc/internal/core"

// forge fabricates a decision record outside core: flagged.
func forge(id string) core.Decision {
	return core.Decision{JobID: id, Kind: core.DecisionStart} // want "constructed outside log.go"
}

// merge goes through core's own API: allowed.
func merge(a, b []core.Decision) []core.Decision {
	return core.MergeLogs(a, b)
}
