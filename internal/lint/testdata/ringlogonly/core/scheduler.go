package core

// Scheduler mirrors the real scheduler's embedded ring.
type Scheduler struct {
	log  logRing
	free int
}

// sidestep fabricates and injects decisions around the log.go paths: every
// touch is flagged.
func (s *Scheduler) sidestep(id string) {
	d := Decision{JobID: id} // want "constructed outside log.go"
	s.log.add(d)             // want "logRing.add called outside log.go"
	s.log.head = 0           // want "write to the decision ring"
}

// replace swaps the whole ring out: flagged as a Scheduler.log write.
func (s *Scheduler) replace(r logRing) {
	s.log = r // want "Scheduler.log"
}

// read-only access is fine.
func (s *Scheduler) depth() int {
	return s.log.n + s.free
}
