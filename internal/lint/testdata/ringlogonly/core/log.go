// pkgpath: elastichpc/internal/core

// Package core exercises ringlogonly inside core itself: log.go owns the
// Decision type and the ring, scheduler.go must go through it.
package core

// Decision mirrors the real decision record.
type Decision struct {
	JobID    string
	Replicas int
}

// logRing mirrors the real bounded ring.
type logRing struct {
	buf  []Decision
	head int
	n    int
}

// add appends one entry: the only legal write path.
func (r *logRing) add(d Decision) {
	r.buf = append(r.buf, d)
	r.n = len(r.buf)
}

// record builds the Decision inside log.go: allowed.
func record(r *logRing, id string, replicas int) {
	r.add(Decision{JobID: id, Replicas: replicas})
}
