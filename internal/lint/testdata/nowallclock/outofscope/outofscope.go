// pkgpath: elastichpc/internal/cluster

// Package outofscope shows the emulation layer may read real time: cluster
// drives actual loop timers and is not under the simulated-clock contract.
package outofscope

import "time"

// elapsed times a real operation.
func elapsed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
