// pkgpath: elastichpc/internal/sim

// Package sim exercises nowallclock: wall-clock reads and global-source
// randomness are flagged in deterministic packages; explicit seeded
// generators and constant time constructors are not.
package sim

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock three ways: all flagged.
func stamp() time.Duration {
	t0 := time.Now()             // want "reads the wall clock"
	time.Sleep(time.Microsecond) // want "time.Sleep"
	return time.Since(t0)        // want "time.Since"
}

// constants are fine: no real time is read.
func constants() time.Time {
	return time.Unix(42, 0).Add(3 * time.Second)
}

// globalRand draws from the shared source: flagged.
func globalRand() int {
	return rand.Intn(10) // want "draws from the global source"
}

// seeded threads an explicit generator: the blessed pattern.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// annotated documents a justified exception.
func annotated() time.Time {
	//lint:deterministic profiling label only, never enters a decision path
	return time.Now()
}
