// pkgpath: elastichpc/internal/core

// Package det exercises nomapiter inside a deterministic package: bare map
// ranges are flagged; the collect-then-sort idiom (plain and filtered),
// annotated sites, and slice ranges are not.
package det

import "sort"

// Bare ranges over maps leak iteration order.
func bare(m map[string]int) int {
	n := 0
	for k := range m { // want "iteration order is nondeterministic"
		n += len(k)
	}
	for _, v := range m { // want "range over map m"
		n += v
	}
	return n
}

// sortedKeys is the blessed idiom: collect, then sort immediately.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// filteredKeys is the idiom with a single filtering if.
func filteredKeys(m map[string]int, skip string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// collectNoSort collects keys but never sorts them: still flagged.
func collectNoSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "nomapiter"
		keys = append(keys, k)
	}
	return keys
}

// annotated documents why its fold is order-insensitive.
func annotated(m map[string]int) int {
	n := 0
	//lint:deterministic summing ints is commutative
	for _, v := range m {
		n += v
	}
	return n
}

// slices ranges are always fine.
func slices(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
