// pkgpath: elastichpc/cmd/fakecli

// Package cli exercises nomapiter's CLI scope: main packages print, so map
// order leaks into output there too.
package cli

import "fmt"

// printAll emits one line per entry in map order: flagged.
func printAll(m map[string]float64) {
	for k, v := range m { // want "iteration order is nondeterministic"
		fmt.Printf("%s=%g\n", k, v)
	}
}
