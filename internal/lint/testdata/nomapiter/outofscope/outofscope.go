// pkgpath: elastichpc/internal/charm

// Package outofscope is outside the determinism contract and the CLI set:
// nothing here is flagged.
package outofscope

// tally may range maps freely: charm is not a deterministic package.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
