// pkgpath: elastichpc/internal/cluster

// Package cluster exercises noboundarypanic on a library-boundary package:
// exported entry points must return errors, not panic.
package cluster

import "errors"

// Runner is an exported receiver: its exported methods are entry points.
type Runner struct{ n int }

// guard is an unexported receiver: its methods are internal.
type guard struct{}

// Run panics straight through the boundary: flagged.
func (r *Runner) Run(n int) int {
	if n < 0 {
		panic("negative n") // want "can cross the library boundary"
	}
	return r.n + n
}

// RunChecked returns an error instead: the contract.
func (r *Runner) RunChecked(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative n")
	}
	return r.n + n, nil
}

// RunGuarded recovers at the entry point, so inner panics stay inside.
func (r *Runner) RunGuarded(n int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = errors.New("recovered")
		}
	}()
	if n < 0 {
		panic("caught at the boundary")
	}
	return nil
}

// RunCallback panics from a nested literal — callbacks run on the caller's
// goroutine, so this crosses the boundary too.
func RunCallback(apply func(func(int))) {
	apply(func(v int) {
		if v < 0 {
			panic("bad callback value") // want "noboundarypanic"
		}
	})
}

// Check panics on an unexported method: internal, not flagged (a recovering
// exported wrapper may own it).
func (g guard) check(n int) {
	if n < 0 {
		panic("internal invariant")
	}
}

// mustPositive is unexported: not an entry point.
func mustPositive(n int) {
	if n <= 0 {
		panic("not positive")
	}
}

// RunAnnotated documents a justified exception.
func RunAnnotated(n int) {
	if n < 0 {
		//lint:deterministic impossible by construction, guarded by the caller's validation
		panic("unreachable")
	}
}
