// pkgpath: elastichpc/internal/workload

// Package outofscope shows the Must* convention stays legal outside the
// boundary packages (workload.MustUniform documents its panic).
package outofscope

// MustPositive panics on bad input: allowed, workload is not a boundary
// package.
func MustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}
