package sim

// reconcile is the bug class the analyzer exists for: a shard-path partial
// sum regroups the float fold and diverges from sequential by an ULP.
func (s *Simulator) reconcile(other *Simulator) {
	s.utilArea += other.utilArea // want "writes are allowed only in merge.go"
	s.utilSub += other.utilSub   // want "merge.go, sim.go"
	s.wSum++                     // want "order-sensitive accumulator"
	s.jobs += other.jobs         // ints merge exactly: not flagged
}

// reset shows plain stores are fenced too: a reset outside the seal files
// desynchronizes the seal positions.
func (s *Simulator) reset() {
	s.utilSub = 0 // want "seal-fold discipline"
}
