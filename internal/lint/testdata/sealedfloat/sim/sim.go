// pkgpath: elastichpc/internal/sim

// Package sim exercises sealedfloat with a fixture Simulator carrying the
// real accumulator field names: sub-accumulators may be fed from sim.go,
// run totals only from merge.go, and shard.go may touch neither.
package sim

// Simulator mirrors the accumulator layout the spec table pins.
type Simulator struct {
	utilArea float64
	wSum     float64
	utilSub  float64
	finWSub  float64
	jobs     int
}

// advance feeds the open sub-accumulators in event order: allowed here.
func (s *Simulator) advance(d float64) {
	s.utilSub += d
	s.finWSub += d
	s.jobs++
}

// badTotalFold writes a run total outside merge.go: flagged even in sim.go.
func (s *Simulator) badTotalFold(d float64) {
	s.utilArea += d // want "order-sensitive accumulator"
}
