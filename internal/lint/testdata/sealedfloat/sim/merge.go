package sim

// seal folds subs into totals: merge.go may write both field sets.
func (s *Simulator) seal() {
	s.utilArea += s.utilSub
	s.wSum += s.finWSub
	s.utilSub, s.finWSub = 0, 0
}
