// pkgpath: elastichpc/internal/sim

// Package sim exercises nostraygoroutine: pool.go is a blessed concurrency
// site, engine.go (same package) is not.
package sim

import "sync"

// RunFake mirrors the worker-pool shape: goroutines and channels are
// allowed here because this file is a blessed site.
func RunFake(n int, task func(int)) {
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task(i)
			done <- struct{}{}
		}(i)
	}
	wg.Wait()
	close(done)
}
