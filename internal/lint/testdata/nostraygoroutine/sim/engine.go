package sim

// stray launches concurrency outside the blessed sites: both the goroutine
// and the channel are flagged.
func stray(fns []func()) {
	results := make(chan int, len(fns)) // want "channel creation outside the blessed concurrency sites"
	for i, f := range fns {
		go func(i int, f func()) { // want "go statement outside the blessed concurrency sites"
			f()
			results <- i
		}(i, f)
	}
}

// annotated documents a justified exception (e.g. a debug-only watchdog).
func annotated(f func()) {
	//lint:deterministic fire-and-forget logging helper, touches no simulation state
	go f()
}

// mapsAndSlices shows non-channel makes stay quiet.
func mapsAndSlices() (map[string]int, []int) {
	return make(map[string]int), make([]int, 4)
}
