package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// The harness is a small analysistest stand-in: each directory under
// testdata/<analyzer>/<case> is one package of fixture files. A
// `// pkgpath: <import path>` directive names the import path the fixture
// type-checks under (so the scope tables see the real elastichpc paths), and
// every line expecting a diagnostic carries a trailing `// want "substring"`
// comment. The whole suite runs over every fixture, so a case also proves
// the *other* analyzers stay quiet on its code.

var (
	pkgpathRE = regexp.MustCompile(`(?m)^// pkgpath: (\S+)$`)
	wantRE    = regexp.MustCompile(`// want "([^"]*)"`)
)

// sharedImporter resolves fixture imports (stdlib and module-local) once per
// test process.
var sharedImporter = NewTestImporter(".")

// expectation is one `// want` marker.
type expectation struct {
	file string // base name
	line int
	sub  string
}

// runCase type-checks one fixture directory and diffs the suite's findings
// against its want markers, both directions.
func runCase(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []expectation
	pkgpath := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if m := pkgpathRE.FindSubmatch(src); m != nil {
			pkgpath = string(m[1])
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{file: e.Name(), line: i + 1, sub: m[1]})
			}
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if pkgpath == "" {
		t.Fatalf("%s: no // pkgpath: directive in any fixture file", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: sharedImporter, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags := Run(&Package{Path: pkgpath, Fset: fset, Files: files, Types: tpkg, Info: info}, Suite())

	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
				strings.Contains(d.Analyzer+": "+d.Message, w.sub) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzers runs every fixture package under testdata.
func TestAnalyzers(t *testing.T) {
	groups, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if !g.IsDir() {
			continue
		}
		cases, err := os.ReadDir(filepath.Join("testdata", g.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			if !c.IsDir() {
				continue
			}
			t.Run(g.Name()+"/"+c.Name(), func(t *testing.T) {
				runCase(t, filepath.Join("testdata", g.Name(), c.Name()))
			})
		}
	}
}

// TestSuppressionRoundTrip proves the annotation mechanism end to end on
// generated twins: the same offending line is flagged bare, suppressed when
// annotated with a reason, and the reasonless annotation both fails to
// suppress and is itself flagged.
func TestSuppressionRoundTrip(t *testing.T) {
	const body = `package sim

// pkgpath is irrelevant here; the package path comes from the checker call.
func order(m map[string]int) int {
	n := 0
	%s
	for k := range m {
		n += len(k)
	}
	return n
}
`
	cases := []struct {
		name       string
		annotation string
		want       []string // analyzer names expected, in position order
	}{
		{"bare", "//", []string{"nomapiter"}},
		{"annotated", "//lint:deterministic commutative fold into an int", nil},
		{"no-reason", "//lint:deterministic", []string{"lintdirective", "nomapiter"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(body, tc.annotation)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "roundtrip.go", src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
			}
			conf := types.Config{Importer: sharedImporter, Sizes: types.SizesFor("gc", runtime.GOARCH)}
			tpkg, err := conf.Check("elastichpc/internal/sim", fset, []*ast.File{f}, info)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(&Package{Path: "elastichpc/internal/sim", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}, Suite())
			var got []string
			for _, d := range diags {
				got = append(got, d.Analyzer)
			}
			if strings.Join(got, ",") != strings.Join(tc.want, ",") {
				t.Fatalf("diagnostics = %v, want analyzers %v\n%s", diags, tc.want, src)
			}
		})
	}
}

// TestRepoClean runs the full suite over the whole repository: the
// determinism invariants hold on every commit, with or without CI's vettool
// step. Any intentional exception must carry a //lint:deterministic reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full dependency graph")
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var all []string
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, Suite()) {
			all = append(all, d.String())
		}
	}
	sort.Strings(all)
	for _, d := range all {
		t.Errorf("%s", d)
	}
}
