package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// SealedFloat enforces the seal-fold discipline on the simulator's
// order-sensitive float accumulators. Floating-point addition is not
// associative: the sharded mode stays bit-identical to sequential only
// because every term enters an open sub-accumulator in event order and run
// totals are folded exclusively by the seal replay in merge.go. A `+=` on
// one of these fields anywhere else — a shard-local partial sum, a "quick"
// correction in the reconciliation path — regroups the fold and diverges by
// an ULP on some workload; that exact class (UsedSlotSec, found by the PR-8
// fuzzer at runtime) is what this analyzer rejects at compile time. Any
// write counts, not just accumulation: a reset or carry outside the blessed
// files desynchronizes the seal positions just as surely.
var SealedFloat = &Analyzer{
	Name: "sealedfloat",
	Doc:  "restrict writes to order-sensitive float accumulators to the seal-fold files",
	Run: func(pass *Pass) {
		var specs []sealedSpec
		for _, s := range sealedSpecs {
			if s.pkg == pass.Path() {
				specs = append(specs, s)
			}
		}
		if len(specs) == 0 {
			return
		}
		checkLHS := func(e ast.Expr, pos token.Pos) {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return
			}
			owner, field, ok := namedField(pass.Info, sel)
			if !ok {
				return
			}
			for _, s := range specs {
				if !s.fields[field] || owner.Obj().Name() != s.typ ||
					owner.Obj().Pkg() == nil || owner.Obj().Pkg().Path() != s.pkg {
					continue
				}
				if s.allowed[pass.File(pos)] {
					continue
				}
				pass.Reportf(pos,
					"%s.%s is an order-sensitive accumulator: writes are allowed only in %s (seal-fold discipline; see merge.go)",
					s.typ, field, fileList(s.allowed))
			}
		}
		pass.Walk(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkLHS(lhs, n.TokPos)
				}
			case *ast.IncDecStmt:
				checkLHS(n.X, n.TokPos)
			}
			return true
		})
	},
}

// fileList formats an allowed-files set for a message, deterministically.
func fileList(files map[string]bool) string {
	ks := make([]string, 0, len(files))
	for k := range files {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ", ")
}
