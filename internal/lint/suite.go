package lint

// Suite returns every elasticvet analyzer, in the order diagnostics group
// most readably: data-flow invariants first, boundary contracts last.
func Suite() []*Analyzer {
	return []*Analyzer{
		NoMapIter,
		NoWallClock,
		NoStrayGoroutine,
		SealedFloat,
		RingLogOnly,
		NoBoundaryPanic,
	}
}
