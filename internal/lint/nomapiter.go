package lint

import (
	"go/ast"
	"go/types"
)

// NoMapIter flags `range` over a map in deterministic packages (and in the
// CLIs, where map order leaks into printed output). Go randomizes map
// iteration order per run, so any decision, accumulation, or output derived
// from an unordered walk diverges between two identical runs — the exact
// class of bug the conformance matrix exists to catch, surfaced at compile
// time instead.
//
// Two shapes are allowed: the collect-keys-then-sort idiom, where the loop
// body only appends the key to a slice that the very next statement sorts;
// and sites annotated //lint:deterministic <reason> (e.g. a fold into a
// commutative structure such as another map or an integer count).
var NoMapIter = &Analyzer{
	Name: "nomapiter",
	Doc:  "forbid range over maps where iteration order can leak into results or output",
	Run: func(pass *Pass) {
		if !inOrderedOutput(pass) {
			return
		}
		pass.Walk(func(n ast.Node) bool {
			blk, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range blk.List {
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok {
					continue
				}
				if _, isMap := types.Unalias(tv.Type.Underlying()).(*types.Map); !isMap {
					continue
				}
				var next ast.Stmt
				if i+1 < len(blk.List) {
					next = blk.List[i+1]
				}
				if sortedCollect(pass.Info, rs, next) {
					continue
				}
				pass.Reportf(rs.For,
					"range over map %s: iteration order is nondeterministic; collect and sort the keys first, or annotate //lint:deterministic <reason>",
					render(rs.X))
			}
			return true
		})
	},
}

// sortedCollect reports whether rs is the blessed collect-then-sort idiom:
// the body is exactly `ks = append(ks, ...)` — optionally wrapped in a
// single filtering if with no else — and next sorts ks via the sort or
// slices package.
func sortedCollect(info *types.Info, rs *ast.RangeStmt, next ast.Stmt) bool {
	if len(rs.Body.List) != 1 || next == nil {
		return false
	}
	body := rs.Body.List[0]
	if ifs, ok := body.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil && len(ifs.Body.List) == 1 {
		body = ifs.Body.List[0]
	}
	asg, ok := body.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if src, ok := call.Args[0].(*ast.Ident); !ok || obj(info, src) != obj(info, dst) {
		return false
	}
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) < 1 {
		return false
	}
	pkg, _, ok := pkgFunc(info, sortCall)
	if !ok || (pkg != "sort" && pkg != "slices") {
		return false
	}
	arg, ok := sortCall.Args[0].(*ast.Ident)
	return ok && obj(info, arg) == obj(info, dst)
}

// obj resolves an identifier to its object via uses or defs.
func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// render prints a short source form of simple expressions for messages.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.ParenExpr:
		return render(e.X)
	}
	return "expression"
}
