package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	w := sim.RandomWorkload(16, 90, 42)
	var buf bytes.Buffer
	if err := Save(&buf, w, "unit test"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Jobs) != len(w.Jobs) {
		t.Fatalf("loaded %d jobs, want %d", len(got.Jobs), len(w.Jobs))
	}
	for i := range w.Jobs {
		if got.Jobs[i] != w.Jobs[i] {
			t.Errorf("job %d: got %+v want %+v", i, got.Jobs[i], w.Jobs[i])
		}
	}
}

func TestLoadValidates(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version":99,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":0}]}`,
		"no jobs":       `{"version":1,"jobs":[]}`,
		"empty id":      `{"version":1,"jobs":[{"id":"","class":"small","priority":1,"submitAt":0}]}`,
		"dup id":        `{"version":1,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":0},{"id":"a","class":"small","priority":1,"submitAt":1}]}`,
		"bad class":     `{"version":1,"jobs":[{"id":"a","class":"gigantic","priority":1,"submitAt":0}]}`,
		"zero priority": `{"version":1,"jobs":[{"id":"a","class":"small","priority":0,"submitAt":0}]}`,
		"negative time": `{"version":1,"jobs":[{"id":"a","class":"small","priority":1,"submitAt":-5}]}`,
		"not json":      `{{{`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted invalid document", name)
		}
	}
}

func TestLoadSortsBySubmitTime(t *testing.T) {
	doc := `{"version":1,"jobs":[
		{"id":"late","class":"small","priority":1,"submitAt":100},
		{"id":"early","class":"medium","priority":2,"submitAt":10}]}`
	w, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[0].ID != "early" || w.Jobs[1].ID != "late" {
		t.Errorf("jobs not sorted: %+v", w.Jobs)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/wl.json"
	w := sim.RandomWorkload(4, 30, 1)
	if err := SaveFile(path, w, "file test"); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 4 {
		t.Errorf("loaded %d jobs", len(got.Jobs))
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
}

func TestPoissonGenerator(t *testing.T) {
	w, err := Poisson(200, 60, UniformMix(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 200 {
		t.Fatalf("%d jobs", len(w.Jobs))
	}
	// Arrival times nondecreasing, priorities in 1..5.
	var sum float64
	for i, j := range w.Jobs {
		if i > 0 && j.SubmitAt < w.Jobs[i-1].SubmitAt {
			t.Fatal("arrivals not sorted")
		}
		if j.Priority < 1 || j.Priority > 5 {
			t.Fatalf("priority %d", j.Priority)
		}
		if i > 0 {
			sum += j.SubmitAt - w.Jobs[i-1].SubmitAt
		}
	}
	mean := sum / float64(len(w.Jobs)-1)
	if math.Abs(mean-60)/60 > 0.3 {
		t.Errorf("mean gap %.1f, want ~60", mean)
	}
	if _, err := Poisson(0, 60, UniformMix(), 1); err == nil {
		t.Error("accepted n=0")
	}
}

func TestBurstGenerator(t *testing.T) {
	w, err := Burst(3, 5, 300, UniformMix(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 15 {
		t.Fatalf("%d jobs", len(w.Jobs))
	}
	counts := map[float64]int{}
	for _, j := range w.Jobs {
		counts[j.SubmitAt]++
	}
	if len(counts) != 3 || counts[0] != 5 || counts[300] != 5 || counts[600] != 5 {
		t.Errorf("wave layout %v", counts)
	}
	if _, err := Burst(0, 5, 300, UniformMix(), 1); err == nil {
		t.Error("accepted zero waves")
	}
}

func TestMixWeighting(t *testing.T) {
	onlyLarge := Mix{model.Large: 1}
	w, err := Poisson(50, 10, onlyLarge, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.Class != model.Large {
			t.Fatalf("drew %v from a large-only mix", j.Class)
		}
	}
	if _, err := Poisson(10, 10, Mix{}, 3); err == nil {
		t.Error("accepted empty mix")
	}
	if _, err := Poisson(10, 10, Mix{model.Small: -1}, 3); err == nil {
		t.Error("accepted negative weight")
	}
}

// Property: save→load is the identity for generated workloads.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		jobs := int(n%30) + 1
		w := sim.RandomWorkload(jobs, 45, seed)
		var buf bytes.Buffer
		if err := Save(&buf, w, ""); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || len(got.Jobs) != jobs {
			return false
		}
		for i := range w.Jobs {
			if got.Jobs[i] != w.Jobs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Generated workloads must run end-to-end in the simulator.
func TestGeneratedWorkloadsSimulate(t *testing.T) {
	pw, err := Poisson(12, 45, UniformMix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicy(0, pw, 180); err != nil {
		t.Errorf("poisson workload failed: %v", err)
	}
	bw, err := Burst(2, 6, 600, UniformMix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicy(0, bw, 180); err != nil {
		t.Errorf("burst workload failed: %v", err)
	}
}
