// Package trace is the historical workload-persistence API, kept as a thin
// veneer over internal/workload — the scenario engine that now owns the
// generators and the JSON/CSV trace formats. New code should import
// internal/workload directly; this package exists so pre-engine callers (and
// saved traces) keep working unchanged.
package trace

import (
	"io"

	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Serialized formats (unchanged wire format, version 1).
type (
	// Document is the serialized JSON workload format.
	Document = workload.Document
	// JobEntry is one serialized job submission.
	JobEntry = workload.JobEntry
	// Mix is a weighted class distribution for generators.
	Mix = workload.Mix
)

// UniformMix draws all four classes equally (the paper's setup).
func UniformMix() Mix { return workload.UniformMix() }

// Save writes a workload as JSON.
func Save(w io.Writer, wl sim.Workload, comment string) error {
	return workload.Save(w, wl, comment)
}

// Load reads a workload from JSON, validating classes, priorities, and
// submission ordering.
func Load(r io.Reader) (sim.Workload, error) { return workload.Load(r) }

// SaveFile writes a workload to path (JSON, or CSV when the path ends in
// ".csv").
func SaveFile(path string, wl sim.Workload, comment string) error {
	return workload.SaveFile(path, wl, comment)
}

// LoadFile reads a workload from a file, picking the format by extension.
func LoadFile(path string) (sim.Workload, error) { return workload.LoadFile(path) }

// Poisson generates n jobs with exponentially distributed inter-arrival
// times of the given mean (seconds) — the workload.Poisson generator.
func Poisson(n int, meanGap float64, mix Mix, seed int64) (sim.Workload, error) {
	return workload.Poisson{Jobs: n, MeanGap: meanGap, Mix: mix}.Generate(seed)
}

// Burst generates waves of simultaneous submissions — the workload.Burst
// generator.
func Burst(waves, perWave int, waveGap float64, mix Mix, seed int64) (sim.Workload, error) {
	return workload.Burst{Waves: waves, PerWave: perWave, WaveGap: waveGap, Mix: mix}.Generate(seed)
}
