// Package trace provides workload persistence and richer arrival-process
// generators than the paper's fixed-gap submissions. The paper's artifact
// generates job YAMLs from a script (generate_jobs.py); here workloads are
// JSON documents that the simulator, the cluster emulation, and the cmd
// tools can exchange, so one job set can be replayed across harnesses.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	"elastichpc/internal/model"
	"elastichpc/internal/sim"
)

// Document is the serialized workload format.
type Document struct {
	// Version guards against format drift.
	Version int `json:"version"`
	// Comment is free-form provenance (generator, seed, date).
	Comment string     `json:"comment,omitempty"`
	Jobs    []JobEntry `json:"jobs"`
}

// JobEntry is one serialized job submission.
type JobEntry struct {
	ID       string  `json:"id"`
	Class    string  `json:"class"`
	Priority int     `json:"priority"`
	SubmitAt float64 `json:"submitAt"`
}

// currentVersion is the format version written by Save.
const currentVersion = 1

func classByName(name string) (model.Class, error) {
	for _, c := range model.AllClasses() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown job class %q", name)
}

// Save writes a workload as JSON.
func Save(w io.Writer, workload sim.Workload, comment string) error {
	doc := Document{Version: currentVersion, Comment: comment}
	for _, j := range workload.Jobs {
		doc.Jobs = append(doc.Jobs, JobEntry{
			ID: j.ID, Class: j.Class.String(), Priority: j.Priority, SubmitAt: j.SubmitAt,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a workload from JSON, validating classes, priorities, and
// submission ordering.
func Load(r io.Reader) (sim.Workload, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return sim.Workload{}, fmt.Errorf("trace: decode: %w", err)
	}
	if doc.Version != currentVersion {
		return sim.Workload{}, fmt.Errorf("trace: unsupported version %d", doc.Version)
	}
	if len(doc.Jobs) == 0 {
		return sim.Workload{}, fmt.Errorf("trace: document has no jobs")
	}
	var w sim.Workload
	seen := make(map[string]bool, len(doc.Jobs))
	for i, e := range doc.Jobs {
		if e.ID == "" {
			return sim.Workload{}, fmt.Errorf("trace: job %d has no id", i)
		}
		if seen[e.ID] {
			return sim.Workload{}, fmt.Errorf("trace: duplicate job id %q", e.ID)
		}
		seen[e.ID] = true
		class, err := classByName(e.Class)
		if err != nil {
			return sim.Workload{}, err
		}
		if e.Priority < 1 {
			return sim.Workload{}, fmt.Errorf("trace: job %q priority %d < 1", e.ID, e.Priority)
		}
		if e.SubmitAt < 0 || math.IsNaN(e.SubmitAt) || math.IsInf(e.SubmitAt, 0) {
			return sim.Workload{}, fmt.Errorf("trace: job %q submitAt %v", e.ID, e.SubmitAt)
		}
		w.Jobs = append(w.Jobs, sim.JobSpec{
			ID: e.ID, Class: class, Priority: e.Priority, SubmitAt: e.SubmitAt,
		})
	}
	sort.SliceStable(w.Jobs, func(i, j int) bool { return w.Jobs[i].SubmitAt < w.Jobs[j].SubmitAt })
	return w, nil
}

// SaveFile and LoadFile are path-based conveniences.
func SaveFile(path string, workload sim.Workload, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Save(f, workload, comment)
}

// LoadFile reads a workload document from a file.
func LoadFile(path string) (sim.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return sim.Workload{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Mix is a weighted class distribution for generators. Weights need not sum
// to 1; zero-weight classes are never drawn.
type Mix map[model.Class]float64

// UniformMix draws all four classes equally (the paper's setup).
func UniformMix() Mix {
	m := Mix{}
	for _, c := range model.AllClasses() {
		m[c] = 1
	}
	return m
}

func (m Mix) draw(rng *rand.Rand) (model.Class, error) {
	var total float64
	classes := model.AllClasses()
	for _, c := range classes {
		if m[c] < 0 {
			return 0, fmt.Errorf("trace: negative weight for %v", c)
		}
		total += m[c]
	}
	if total <= 0 {
		return 0, fmt.Errorf("trace: mix has no positive weights")
	}
	x := rng.Float64() * total
	for _, c := range classes {
		x -= m[c]
		if x < 0 {
			return c, nil
		}
	}
	return classes[len(classes)-1], nil
}

// Poisson generates n jobs with exponentially distributed inter-arrival
// times of the given mean (seconds) — the bursty-traffic extension of the
// paper's fixed-gap submission model.
func Poisson(n int, meanGap float64, mix Mix, seed int64) (sim.Workload, error) {
	if n <= 0 || meanGap < 0 {
		return sim.Workload{}, fmt.Errorf("trace: bad poisson params n=%d mean=%g", n, meanGap)
	}
	rng := rand.New(rand.NewSource(seed))
	var w sim.Workload
	at := 0.0
	for i := 0; i < n; i++ {
		class, err := mix.draw(rng)
		if err != nil {
			return sim.Workload{}, err
		}
		w.Jobs = append(w.Jobs, sim.JobSpec{
			ID:       fmt.Sprintf("job-%02d", i),
			Class:    class,
			Priority: 1 + rng.Intn(5),
			SubmitAt: at,
		})
		at += rng.ExpFloat64() * meanGap
	}
	return w, nil
}

// Burst generates waves of simultaneous submissions: `waves` bursts of
// `perWave` jobs, `waveGap` seconds apart — the flash-crowd pattern that
// stresses the elastic policy's shrink path hardest.
func Burst(waves, perWave int, waveGap float64, mix Mix, seed int64) (sim.Workload, error) {
	if waves <= 0 || perWave <= 0 || waveGap < 0 {
		return sim.Workload{}, fmt.Errorf("trace: bad burst params")
	}
	rng := rand.New(rand.NewSource(seed))
	var w sim.Workload
	for wv := 0; wv < waves; wv++ {
		for j := 0; j < perWave; j++ {
			class, err := mix.draw(rng)
			if err != nil {
				return sim.Workload{}, err
			}
			w.Jobs = append(w.Jobs, sim.JobSpec{
				ID:       fmt.Sprintf("job-w%02d-%02d", wv, j),
				Class:    class,
				Priority: 1 + rng.Intn(5),
				SubmitAt: float64(wv) * waveGap,
			})
		}
	}
	return w, nil
}
