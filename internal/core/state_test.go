package core

import (
	"reflect"
	"testing"
	"time"
)

// populatedSched builds a scheduler holding a mix of running and queued
// jobs, with some wall-clock history behind the gap checks.
func populatedSched(t *testing.T) (*Scheduler, *testClock) {
	t.Helper()
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Minute})
	for _, j := range []*Job{
		job("a", 5, 2, 8), job("b", 3, 2, 8), job("c", 4, 4, 8),
		job("d", 1, 4, 16), job("e", 2, 8, 16),
	} {
		j.SubmitTime = clk.t
		if err := s.Submit(j); err != nil {
			t.Fatalf("submit %s: %v", j.ID, err)
		}
		clk.advance(3 * time.Second)
	}
	return s, clk
}

// TestSchedulerStateRoundTrip pins the snapshot/restore contract: restoring
// an exported state into a fresh scheduler reproduces the exported fields,
// the derived accounting, and the observable queue/running sets exactly.
func TestSchedulerStateRoundTrip(t *testing.T) {
	src, _ := populatedSched(t)
	st := src.ExportState()
	if len(st.Running) == 0 || len(st.Queued) == 0 {
		t.Fatalf("scenario lost its point: %d running, %d queued", len(st.Running), len(st.Queued))
	}

	dst, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 4, RescaleGap: time.Minute})
	if err := dst.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := dst.Capacity(), src.Capacity(); got != want {
		t.Errorf("capacity %d, want %d", got, want)
	}
	if got, want := dst.FreeSlots(), src.FreeSlots(); got != want {
		t.Errorf("free slots %d, want %d", got, want)
	}
	if got, want := dst.NumRunning(), src.NumRunning(); got != want {
		t.Errorf("running %d, want %d", got, want)
	}
	if got, want := dst.NumQueued(), src.NumQueued(); got != want {
		t.Errorf("queued %d, want %d", got, want)
	}
	back := dst.ExportState()
	if !reflect.DeepEqual(st, back) {
		t.Errorf("round trip diverged:\nexported: %+v\nrestored: %+v", st, back)
	}
}

// TestSchedulerStateMidEpochRoundTrip pins the snapshot/restore contract at
// the hardest instant: mid-epoch, with running jobs, queued jobs, a
// checkpoint-preempted job in the waiting set, and a rescale-gap kick still
// pending. The restored scheduler must reproduce the snapshot bit for bit,
// report the same pending kick deadline, and then stay behaviorally
// identical to the original through a further submit / gap-expiry /
// completion sequence.
func TestSchedulerStateMidEpochRoundTrip(t *testing.T) {
	src, sclk := populatedSched(t)
	// A deep capacity drop shrinks what it can and checkpoint-preempts the
	// rest; the raise that follows leaves free slots in front of gap-blocked
	// below-max jobs, so a rescale-gap kick goes (and stays) pending.
	if err := src.SetCapacity(3); err != nil {
		t.Fatalf("capacity drop: %v", err)
	}
	if err := src.SetCapacity(10); err != nil {
		t.Fatalf("capacity raise: %v", err)
	}
	st := src.ExportState()
	if len(st.Running) == 0 || len(st.Queued) == 0 {
		t.Fatalf("scenario lost its point: %d running, %d queued", len(st.Running), len(st.Queued))
	}
	preempted := false
	for _, j := range st.Queued {
		if j.State == StatePreempted {
			preempted = true
		}
	}
	if !preempted {
		t.Fatal("scenario lost its point: no checkpoint-preempted job in the waiting set")
	}
	srcKick, srcOK := src.NextGapExpiry()
	if !srcOK {
		t.Fatal("scenario lost its point: no pending rescale-gap kick")
	}

	dst, _, dclk := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Minute})
	dclk.t = sclk.t // the kick deadline is wall-clock-relative
	if err := dst.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	back := dst.ExportState()
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("mid-epoch round trip diverged:\nexported: %+v\nrestored: %+v", st, back)
	}
	dstKick, dstOK := dst.NextGapExpiry()
	if !dstOK {
		t.Fatal("restored scheduler lost the pending kick")
	}
	if !dstKick.Equal(srcKick) {
		t.Errorf("restored kick deadline %v, want %v", dstKick, srcKick)
	}

	// Drive both schedulers through the identical rest of the epoch: a new
	// arrival, the gap expiring, and a completion. Every exported state must
	// stay equal — the restore carried all scheduling-relevant state.
	completeID := st.Running[0].ID
	step := func(s *Scheduler, clk *testClock) SchedulerState {
		f := job("f", 4, 2, 8)
		f.SubmitTime = clk.t
		if err := s.Submit(f); err != nil {
			t.Fatalf("submit f: %v", err)
		}
		clk.advance(2 * time.Minute) // clear every rescale gap
		s.Reschedule()
		s.OnJobComplete(findRestoredJob(t, s, completeID))
		return s.ExportState()
	}
	after, afterBack := step(src, sclk), step(dst, dclk)
	if !reflect.DeepEqual(after, afterBack) {
		t.Errorf("post-restore behavior diverged:\noriginal: %+v\nrestored: %+v", after, afterBack)
	}
}

// TestRestoreStateAllocatesFreshJobs checks the restore's isolation: the
// restored scheduler must not share Job records with the snapshot (or with
// the exporting scheduler), while preserving Ref for driver re-attachment.
func TestRestoreStateAllocatesFreshJobs(t *testing.T) {
	src, _ := populatedSched(t)
	st := src.ExportState()
	st.Running[0].Ref = 42

	dst, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Minute})
	if err := dst.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Mutating the snapshot after restore must not leak into the scheduler.
	st.Running[0].Replicas = 999
	back := dst.ExportState()
	if back.Running[0].Replicas == 999 {
		t.Error("restored scheduler aliases the snapshot's job records")
	}
	if back.Running[0].Ref != 42 {
		t.Errorf("Ref not preserved: got %d, want 42", back.Running[0].Ref)
	}
}

// TestRestoreStateValidation checks that inconsistent snapshots are
// rejected with the scheduler unchanged.
func TestRestoreStateValidation(t *testing.T) {
	mk := func() SchedulerState {
		src, _ := populatedSched(t)
		return src.ExportState()
	}
	cases := map[string]func() SchedulerState{
		"zero capacity": func() SchedulerState {
			st := mk()
			st.Capacity = 0
			return st
		},
		"running without replicas": func() SchedulerState {
			st := mk()
			st.Running[0].Replicas = 0
			return st
		},
		"running in queued state": func() SchedulerState {
			st := mk()
			st.Running[0].State = StateQueued
			return st
		},
		"waiting with replicas": func() SchedulerState {
			st := mk()
			st.Queued[0].Replicas = 2
			return st
		},
		"waiting in running state": func() SchedulerState {
			st := mk()
			st.Queued[0].State = StateRunning
			return st
		},
		"over capacity": func() SchedulerState {
			st := mk()
			st.Capacity = 3
			return st
		},
		"invalid job": func() SchedulerState {
			st := mk()
			st.Running[0].MinReplicas = 0
			return st
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			dst, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 16})
			before := dst.ExportState()
			if err := dst.RestoreState(build()); err == nil {
				t.Fatal("invalid snapshot accepted")
			}
			if after := dst.ExportState(); !reflect.DeepEqual(before, after) {
				t.Errorf("failed restore mutated the scheduler:\nbefore: %+v\nafter:  %+v", before, after)
			}
		})
	}
}

// TestRestoreStateResumesScheduling checks that a restored scheduler is
// live, not a display copy: completing a running job redistributes its
// slots to the restored queue.
func TestRestoreStateResumesScheduling(t *testing.T) {
	src, _ := populatedSched(t)
	st := src.ExportState()

	dst, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Minute})
	if err := dst.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	clk.advance(time.Hour) // clear every rescale gap
	queuedBefore := dst.NumQueued()
	back := dst.ExportState()
	// Complete via the restored scheduler's own record: look it up by ID.
	dst.OnJobComplete(findRestoredJob(t, dst, back.Running[0].ID))
	if dst.NumQueued() >= queuedBefore && act.starts == 0 && act.expands == 0 {
		t.Error("completion on a restored scheduler triggered no scheduling")
	}
}

// findRestoredJob digs the scheduler's own *Job out through the actuator
// path: Reschedule touches running jobs via the actuator, but the simplest
// stable handle is the running list itself.
func findRestoredJob(t *testing.T, s *Scheduler, id string) *Job {
	t.Helper()
	for _, j := range s.Running() {
		if j.ID == id {
			return j
		}
	}
	t.Fatalf("job %s not in restored running set", id)
	return nil
}

// TestExportStateIntoReusesBuffers pins the allocation-free snapshot
// variant: ExportStateInto must produce the same snapshot as ExportState
// and, when the destination already has capacity, reuse its backing arrays
// instead of allocating fresh ones.
func TestExportStateIntoReusesBuffers(t *testing.T) {
	src, _ := populatedSched(t)
	want := src.ExportState()

	var st SchedulerState
	src.ExportStateInto(&st)
	if st.Capacity != want.Capacity || !reflect.DeepEqual(st.CapStats, want.CapStats) ||
		!reflect.DeepEqual(st.Running, want.Running) || !reflect.DeepEqual(st.Queued, want.Queued) {
		t.Fatalf("ExportStateInto diverged from ExportState:\ninto: %+v\nwant: %+v", st, want)
	}

	// Second snapshot into the same record: contents identical, backing
	// arrays untouched (capacity suffices, so append must not reallocate).
	prevRun, prevQ := &st.Running[0], &st.Queued[0]
	src.ExportStateInto(&st)
	if !reflect.DeepEqual(st.Running, want.Running) || !reflect.DeepEqual(st.Queued, want.Queued) {
		t.Fatalf("second ExportStateInto diverged: %+v", st)
	}
	if &st.Running[0] != prevRun || &st.Queued[0] != prevQ {
		t.Error("ExportStateInto reallocated backing arrays it could have reused")
	}

	allocs := testing.AllocsPerRun(20, func() { src.ExportStateInto(&st) })
	if allocs > 1 { // queue.sorted() may allocate its scratch; the snapshot itself must not
		t.Errorf("ExportStateInto allocates %.0f times per snapshot", allocs)
	}
}
