package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Policy selects one of the four scheduling strategies compared in §4.3.
type Policy int

// The four policies the paper evaluates.
const (
	// Elastic is the paper's contribution: jobs launch anywhere within
	// [min,max] replicas and are rescaled on the fly (Figures 2 & 3).
	Elastic Policy = iota
	// Moldable picks the replica count at launch to maximize utilization
	// but never rescales a running job. The paper emulates it as the
	// elastic policy with an effectively infinite rescale gap.
	Moldable
	// RigidMin launches every job with exactly minReplicas.
	RigidMin
	// RigidMax launches every job with exactly maxReplicas.
	RigidMax
)

// String returns the policy's name as used in the paper's tables.
func (p Policy) String() string {
	switch p {
	case Elastic:
		return "elastic"
	case Moldable:
		return "moldable"
	case RigidMin:
		return "min_replicas"
	case RigidMax:
		return "max_replicas"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// AllPolicies lists the four policies in the paper's presentation order.
func AllPolicies() []Policy { return []Policy{RigidMin, RigidMax, Moldable, Elastic} }

// PolicyByName resolves a policy's flag-friendly name (as produced by
// Policy.String) back to its Policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range AllPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf(`core: unknown policy %q (have "min_replicas", "max_replicas", "moldable", "elastic")`, name)
}

// Actuator is the substrate the scheduler drives: the DES simulator or the
// Kubernetes operator. Each call may fail (e.g. the application declined the
// rescale, or pods could not be placed); the scheduler treats failures as
// "this job cannot change right now" and moves on, exactly like the
// pseudocode's boolean shrinkJob/createOrExpandJob results.
type Actuator interface {
	// StartJob launches a queued (or preempted) job with the given
	// replica count.
	StartJob(j *Job, replicas int) error
	// ShrinkJob rescales a running job down to the given replica count.
	ShrinkJob(j *Job, to int) error
	// ExpandJob rescales a running job up to the given replica count.
	ExpandJob(j *Job, to int) error
	// PreemptJob checkpoints and stops a running job (optional extension,
	// paper §3.2.2). Only called when Config.EnablePreemption is set.
	PreemptJob(j *Job) error
}

// CostBenefit optionally gates rescale decisions on application progress
// (paper §6 future work). A nil function disables the corresponding gate.
type CostBenefit struct {
	// Progress reports the fraction of the job already completed, 0..1.
	Progress func(j *Job) float64
	// MinRemainingFraction declines any rescale of a job whose remaining
	// fraction is below this threshold ("If only a small fraction of a
	// job remains, scaling up may not provide enough benefit").
	MinRemainingFraction float64
	// MinExpandGain declines an expand that grows the job by fewer than
	// this many replicas ("A small increase in the number of replicas may
	// not justify the overhead of rescaling").
	MinExpandGain int
}

// Config configures a Scheduler.
type Config struct {
	Policy   Policy
	Capacity int // total worker slots in the cluster (vCPUs in the paper)
	// RescaleGap is the minimum time between scheduling events on the
	// same job (T_rescale_gap, §3.2.1). Creation stamps LastAction, so a
	// freshly started job cannot be rescaled within the gap either.
	RescaleGap time.Duration
	// JobOverheadSlots is the per-job slot overhead beyond its workers
	// (the launcher pod; the pseudocode's "freeSlots - 1"). The paper's
	// experiments run launchers outside the worker slot pool, so the
	// experiment harnesses use 0; set 1 for the literal Figure 2 snippet.
	JobOverheadSlots int
	// AgingRate adds AgingRate priority units per second of queue wait to
	// a job's effective priority (paper §3.2.2 "Aging priorities"
	// extension). 0 disables aging.
	AgingRate float64
	// EnablePreemption lets the scheduler checkpoint-and-stop lower
	// priority jobs when shrinking alone cannot make room for a higher
	// priority job (paper §3.2.2 "Job preemption" extension).
	EnablePreemption bool
	// StrictFCFS disables out-of-order allocation: redistribution stops
	// at the first queued job that does not fit instead of letting
	// smaller lower-priority jobs fill the gaps. The paper's policy is
	// explicitly NOT strict ("out-of-order allocations if they improve
	// cluster utilization", §3.2); this flag exists for the ablation.
	StrictFCFS bool
	// CostBenefit optionally gates rescales on application progress.
	CostBenefit *CostBenefit
	// EnableLog records every scheduling decision for retrieval via
	// Scheduler.Log — the audit trail operators want when a rescale storm
	// needs explaining. Entries land in a bounded ring buffer, so steady
	// state logging allocates nothing per decision.
	EnableLog bool
	// FullRedistribute disables the incremental-scheduling early-outs:
	// every redistribute runs the full Figure 3 pass and every Reschedule
	// drains the whole queue, exactly like the pre-incremental scheduler.
	// The early-outs are provably decision-transparent (the equivalence
	// tests pin incremental ≡ full across policies and workloads), so
	// this knob exists for those audits and for debugging, not for
	// production use.
	FullRedistribute bool
}

// Scheduler implements the priority-based elastic policy and its baselines.
// It is not goroutine-safe; callers (simulator event loop, operator
// reconcile queue) serialize access.
//
// Incremental-scheduling invariants (relied on by the hot path, pinned by
// the equivalence tests):
//
//   - free = Capacity − Σ running Replicas − NumRunning×JobOverheadSlots,
//     so maxFreeable is O(1) arithmetic over free and runMinSum instead of
//     a scan of the running set.
//   - runMinSum = Σ running policy-minimums, maintained by
//     insertRunning/removeRunning.
//   - minNeed is a conservative (never above the true value) bound on the
//     smallest slot count any waiting job needs; it only ever under-shoots,
//     so gates that compare budgets against it skip work but never skip a
//     placeable job.
//   - clean means the last redistribute ran to completion and no slot,
//     queue, or capacity state changed since; cleanUntil is the earliest
//     rescale-gap expiry that could unblock an expansion the pass skipped.
//     Any mutation (start/shrink/expand/enqueue/complete/reclaim/
//     SetCapacity) clears clean.
type Scheduler struct {
	cfg Config
	act Actuator
	now func() time.Time

	// tnow caches the clock for the duration of one public call. Drivers
	// hold time constant within a scheduling pass (the simulator's event
	// handler, the operator's reconcile callback), so one read per entry
	// point replaces thousands of closure calls on the hot path. tnowNs
	// mirrors it in Unix nanoseconds for the arithmetic-only comparisons;
	// gapNs is the precomputed RescaleGap (MaxInt64 = never rescale).
	tnow   time.Time
	tnowNs int64
	gapNs  int64

	running []*Job
	queue   jobQueue
	// minNeed is a conservative lower bound (never above the true value) on
	// the smallest slot count any waiting job needs to start, maxSlotNeed
	// when the queue is empty. redistribute uses it to skip scanning
	// backlogs that cannot possibly place a job.
	minNeed int
	free    int
	// runMinSum is the sum of policy-minimum replicas over the running
	// set, maintained incrementally so maxFreeable is O(1).
	runMinSum int

	// clean/cleanUntilNs implement the redistribute early-out; see the
	// struct comment. cleanUntilNs is Unix nanoseconds, 0 = no time bound.
	clean        bool
	cleanUntilNs int64

	log logRing

	// capStats counts forced capacity reclaims (SetCapacity / Preempt);
	// reclaiming is set while one is in progress so actuators can
	// attribute the resulting shrinks to the availability event.
	capStats   CapacityStats
	reclaiming bool

	// Scratch buffers reused across scheduling passes so the hot path
	// allocates nothing per event.
	runScratch  []*Job
	popScratch  []*Job
	needScratch []int
}

// NewScheduler creates a scheduler over an empty cluster with the given
// capacity. now supplies the current time (virtual or real).
func NewScheduler(cfg Config, act Actuator, now func() time.Time) (*Scheduler, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("core: capacity %d < 1", cfg.Capacity)
	}
	if act == nil || now == nil {
		return nil, fmt.Errorf("core: actuator and clock are required")
	}
	if cfg.Policy == Moldable && cfg.RescaleGap < time.Duration(math.MaxInt64) {
		// Moldable = elastic that never rescales (paper §4.3.2).
		cfg.RescaleGap = time.Duration(math.MaxInt64)
	}
	s := &Scheduler{cfg: cfg, act: act, now: now, free: cfg.Capacity, minNeed: maxSlotNeed,
		gapNs: int64(cfg.RescaleGap)}
	s.queue.s = s
	return s, nil
}

// refresh caches the clock for the duration of one public call.
func (s *Scheduler) refresh() {
	s.tnow = s.now()
	s.tnowNs = s.tnow.UnixNano()
}

// dirty invalidates the clean-pass flag; every mutation of slots, the
// running set, the queue, or capacity goes through one of the callers.
func (s *Scheduler) dirty() { s.clean = false }

// FreeSlots reports the scheduler's current free-slot count.
func (s *Scheduler) FreeSlots() int { return s.free }

// Running returns a copy of the running jobs in decreasing priority order.
// Hot paths that only read should prefer VisitRunning, which does not copy.
func (s *Scheduler) Running() []*Job {
	s.refresh()
	return append([]*Job(nil), s.running...)
}

// Queued returns a copy of the queued jobs in decreasing priority order.
// Hot paths that only read should prefer VisitQueued, which does not copy.
func (s *Scheduler) Queued() []*Job {
	s.refresh()
	return s.queue.sorted()
}

// VisitRunning calls fn for each running job in decreasing priority order,
// stopping early when fn returns false. It does not copy: the *Job values
// are the scheduler's own records, and fn must not mutate them or call back
// into scheduling methods.
func (s *Scheduler) VisitRunning(fn func(*Job) bool) {
	for _, j := range s.running {
		if !fn(j) {
			return
		}
	}
}

// VisitQueued calls fn for each waiting job, stopping early when fn returns
// false. Iteration order is the queue's internal heap order, not priority
// order — use Queued when order matters. Like VisitRunning it does not copy,
// and fn must not mutate the jobs or call back into scheduling methods.
func (s *Scheduler) VisitQueued(fn func(*Job) bool) {
	for _, j := range s.queue.jobs {
		if !fn(j) {
			return
		}
	}
}

// NumRunning reports the running-job count without copying (the per-event
// fast path for drivers that only need the length).
func (s *Scheduler) NumRunning() int { return len(s.running) }

// NumQueued reports the waiting-job count without copying or sorting.
func (s *Scheduler) NumQueued() int { return s.queue.Len() }

// jobNeed is the smallest slot count j needs to start under the policy.
func (s *Scheduler) jobNeed(j *Job) int {
	jmin, _ := s.bounds(j)
	return jmin + s.cfg.JobOverheadSlots
}

// Utilization reports the fraction of capacity currently allocated to
// workers (launcher overhead counts as used capacity).
func (s *Scheduler) Utilization() float64 {
	return float64(s.cfg.Capacity-s.free) / float64(s.cfg.Capacity)
}

// effPriority computes a job's effective priority including aging, against
// the pass-cached clock. Without aging it is the cached base priority — no
// conversion, no time math.
func (s *Scheduler) effPriority(j *Job) float64 {
	if s.cfg.AgingRate > 0 && j.State == StateQueued {
		// Kept as time.Time math: Duration.Seconds rounds differently
		// from a raw nanosecond quotient, and aged priorities must stay
		// bit-identical to the pre-incremental scheduler.
		return j.prio + s.cfg.AgingRate*s.tnow.Sub(j.SubmitTime).Seconds()
	}
	return j.prio
}

// compare orders jobs for scheduling: decreasing effective priority, ties
// broken by earlier submission, then ID — a total and deterministic order.
// Negative means a schedules ahead of b.
func (s *Scheduler) compare(a, b *Job) int {
	pa, pb := s.effPriority(a), s.effPriority(b)
	switch {
	case pa > pb:
		return -1
	case pa < pb:
		return 1
	}
	switch {
	case a.submitNs < b.submitNs:
		return -1
	case a.submitNs > b.submitNs:
		return 1
	case a.IDRank < b.IDRank:
		return -1
	case a.IDRank > b.IDRank:
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// before reports whether a schedules ahead of b (compare < 0). The aging-off
// body is spelled out so the common case inlines into the heap operations.
func (s *Scheduler) before(a, b *Job) bool {
	if s.cfg.AgingRate > 0 {
		return s.compare(a, b) < 0
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.submitNs != b.submitNs {
		return a.submitNs < b.submitNs
	}
	if a.IDRank != b.IDRank {
		return a.IDRank < b.IDRank
	}
	return a.ID < b.ID
}

// insertRunning places j into the running list, keeping it sorted in
// decreasing effective priority without the interface boxing a full re-sort
// costs per start. Running jobs' effective priorities are static (aging only
// applies while queued), so insertion preserves the order a re-sort would
// produce.
func (s *Scheduler) insertRunning(j *Job) {
	i := sort.Search(len(s.running), func(k int) bool {
		return s.before(j, s.running[k])
	})
	s.running = append(s.running, nil)
	copy(s.running[i+1:], s.running[i:])
	s.running[i] = j
	jmin, _ := s.bounds(j)
	s.runMinSum += jmin
	s.dirty()
}

// gapOK reports whether the job is outside its rescale gap (the pseudocode's
// `currentTime() - j.lastAction < rescaleGap → continue`). Queued jobs have
// no last action and are always eligible for creation.
func (s *Scheduler) gapOK(j *Job) bool {
	if j.LastAction.IsZero() {
		return true
	}
	if s.gapNs == math.MaxInt64 {
		return false // moldable: never rescale after creation
	}
	return s.tnowNs-j.lastActionNs >= s.gapNs
}

// costBenefitOK reports whether the cost/benefit gate allows rescaling j.
func (s *Scheduler) costBenefitOK(j *Job, newReplicas int) bool {
	cb := s.cfg.CostBenefit
	if cb == nil {
		return true
	}
	if cb.Progress != nil && cb.MinRemainingFraction > 0 {
		if 1-cb.Progress(j) < cb.MinRemainingFraction {
			return false
		}
	}
	if newReplicas > j.Replicas && cb.MinExpandGain > 0 {
		if newReplicas-j.Replicas < cb.MinExpandGain {
			return false
		}
	}
	return true
}

// effective min/max replicas under the policy: the rigid baselines pin both
// bounds to one value ("The rigid job schedulers are emulated by setting the
// same value for min_replicas and max_replicas for all jobs", §4.3.2).
func (s *Scheduler) bounds(j *Job) (minR, maxR int) {
	switch s.cfg.Policy {
	case RigidMin:
		return j.MinReplicas, j.MinReplicas
	case RigidMax:
		return j.MaxReplicas, j.MaxReplicas
	default:
		return j.MinReplicas, j.MaxReplicas
	}
}

// start launches j with the given replica count and updates accounting.
func (s *Scheduler) start(j *Job, replicas int) bool {
	if err := s.act.StartJob(j, replicas); err != nil {
		return false
	}
	j.State = StateRunning
	j.Replicas = replicas
	j.LastAction = s.tnow
	j.lastActionNs = s.tnowNs
	if j.StartTime.IsZero() {
		j.StartTime = s.tnow
	}
	s.free -= replicas + s.cfg.JobOverheadSlots
	s.insertRunning(j)
	s.record(DecisionStart, j)
	return true
}

// shrink rescales a running job down and updates accounting.
func (s *Scheduler) shrink(j *Job, to int) bool {
	if !s.costBenefitOK(j, to) {
		return false
	}
	if err := s.act.ShrinkJob(j, to); err != nil {
		return false
	}
	s.free += j.Replicas - to
	j.Replicas = to
	j.LastAction = s.tnow
	j.lastActionNs = s.tnowNs
	j.Rescales++
	s.dirty()
	s.record(DecisionShrink, j)
	return true
}

// expand rescales a running job up and updates accounting.
func (s *Scheduler) expand(j *Job, to int) bool {
	if !s.costBenefitOK(j, to) {
		return false
	}
	if err := s.act.ExpandJob(j, to); err != nil {
		return false
	}
	s.free -= to - j.Replicas
	j.Replicas = to
	j.LastAction = s.tnow
	j.lastActionNs = s.tnowNs
	j.Rescales++
	s.dirty()
	s.record(DecisionExpand, j)
	return true
}

// enqueue places j on the internal priority queue.
func (s *Scheduler) enqueue(j *Job) {
	j.State = StateQueued
	s.queue.push(j)
	if need := s.jobNeed(j); need < s.minNeed {
		s.minNeed = need
	}
	s.dirty()
	s.record(DecisionEnqueue, j)
}

// removeRunning deletes j from the running list.
func (s *Scheduler) removeRunning(j *Job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			jmin, _ := s.bounds(j)
			s.runMinSum -= jmin
			s.dirty()
			return
		}
	}
}

// Submit handles a new job submission (paper Figure 2). For the elastic
// policy it may shrink lower-priority running jobs to make room; for the
// baselines the gap checks and pinned bounds reduce it to the corresponding
// rigid/moldable behaviour.
func (s *Scheduler) Submit(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	s.refresh()
	if j.SubmitTime.IsZero() {
		j.SubmitTime = s.tnow
	}
	j.prio = float64(j.Priority)
	j.submitNs = j.SubmitTime.UnixNano()
	s.submit(j)
	return nil
}

// Withdraw removes a waiting job from this scheduler entirely — the
// federation rebalancer's migration primitive: the job leaves this member's
// queue and is re-submitted to another member. Only waiting jobs (queued, or
// checkpoint-preempted back to the queue) can be withdrawn; a running or
// completed job is an error and the scheduler is left untouched. On success
// the job's state becomes StateWithdrawn and the scheduler drops every
// reference to it.
//
// minNeed is deliberately left as-is: it is a conservative lower bound
// (never above the true value), so a stale-low value after removing the
// smallest queued job costs at most one redundant feasibility walk.
func (s *Scheduler) Withdraw(j *Job) error {
	if j.State != StateQueued && j.State != StatePreempted {
		return fmt.Errorf("core: withdraw %s: state %v, want Queued or Preempted", j.ID, j.State)
	}
	s.refresh()
	if !s.queue.remove(j) {
		return fmt.Errorf("core: withdraw %s: not in this scheduler's queue", j.ID)
	}
	j.State = StateWithdrawn
	s.dirty()
	s.record(DecisionWithdraw, j)
	return nil
}

func (s *Scheduler) submit(job *Job) {
	minR, maxR := s.bounds(job)
	overhead := s.cfg.JobOverheadSlots

	// replicas = min(freeSlots - overhead, job.maxReplicas)
	replicas := s.free - overhead
	if replicas > maxR {
		replicas = maxR
	}
	if replicas >= minR {
		if s.start(job, replicas) {
			return
		}
		s.enqueue(job)
		return
	}

	// O(1) infeasibility gate: the feasibility walk below can never count
	// more freeable slots than maxFreeable, so when even that bound cannot
	// cover the deficit the walk's outcome is already decided. The gated
	// path reproduces it exactly — try preemption, else enqueue — and the
	// walk it skips emits no decisions, so the shortcut is
	// decision-transparent. Disabled in FullRedistribute mode like every
	// incremental early-out.
	if !s.cfg.FullRedistribute && s.free+s.maxFreeable() < minR+overhead {
		if s.cfg.EnablePreemption && s.tryPreempt(job, minR, overhead) {
			s.submit(job) // room was made; re-run placement
			return
		}
		s.enqueue(job)
		return
	}

	// Feasibility pass (Figure 2, first loop): walk running jobs from the
	// lowest priority upward, counting how many slots shrinking them to
	// their minimum could free. Stop at jobs with priority above the new
	// job's. No actuation happens in this pass.
	numToFree := minR - s.free + overhead
	for i := len(s.running) - 1; i >= 0 && numToFree > 0; i-- {
		j := s.running[i]
		if !s.gapOK(j) {
			continue
		}
		if s.effPriority(j) > s.effPriority(job) {
			break
		}
		jmin, _ := s.bounds(j)
		if j.Replicas > jmin {
			newReplicas := j.Replicas - numToFree
			if newReplicas < jmin {
				newReplicas = jmin
			}
			numToFree -= j.Replicas - newReplicas
		}
	}
	if numToFree > 0 {
		// Shrinking cannot make room; optionally try preemption, else
		// queue the job.
		if s.cfg.EnablePreemption && s.tryPreempt(job, minR, overhead) {
			s.submit(job) // room was made; re-run placement
			return
		}
		s.enqueue(job)
		return
	}

	// Actuation pass (Figure 2, second loop): free as many slots as would
	// let the new job run at its maximum, shrinking from the lowest
	// priority upward.
	minToFree := minR - s.free + overhead
	maxToFree := maxR - s.free + overhead
	for i := len(s.running) - 1; i >= 0 && maxToFree > 0; i-- {
		j := s.running[i]
		if !s.gapOK(j) {
			continue
		}
		if s.effPriority(j) > s.effPriority(job) {
			break
		}
		jmin, _ := s.bounds(j)
		if j.Replicas > jmin {
			newReplicas := j.Replicas - maxToFree
			if newReplicas < jmin {
				newReplicas = jmin
			}
			oldReplicas := j.Replicas
			if s.shrink(j, newReplicas) {
				freed := oldReplicas - newReplicas
				minToFree -= freed
				maxToFree -= freed
			}
		}
	}
	if minToFree > 0 {
		s.enqueue(job)
		return
	}
	replicas = s.free - overhead
	if replicas > maxR {
		replicas = maxR
	}
	if replicas < minR || !s.start(job, replicas) {
		s.enqueue(job)
	}
}

// tryPreempt checkpoints-and-stops strictly lower priority running jobs
// (lowest first) until minR+overhead slots are free or no candidates remain.
// Preempted jobs return to the queue and resume from their checkpoint when
// scheduled again (paper §3.2.2).
func (s *Scheduler) tryPreempt(job *Job, minR, overhead int) bool {
	for i := len(s.running) - 1; i >= 0 && s.free < minR+overhead; i-- {
		j := s.running[i]
		if s.effPriority(j) >= s.effPriority(job) {
			break
		}
		if err := s.act.PreemptJob(j); err != nil {
			continue
		}
		s.free += j.Replicas + s.cfg.JobOverheadSlots
		j.Replicas = 0
		j.State = StatePreempted
		j.LastAction = s.tnow
		j.lastActionNs = s.tnowNs
		s.removeRunning(j)
		s.queue.push(j)
		if need := s.jobNeed(j); need < s.minNeed {
			s.minNeed = need
		}
		s.record(DecisionPreempt, j)
	}
	return s.free >= minR+overhead
}

// OnJobComplete handles a job finishing (paper Figure 3): its slots are
// redistributed to running and queued jobs in decreasing priority order —
// expanding running jobs below their max and starting queued jobs.
func (s *Scheduler) OnJobComplete(j *Job) {
	if j.State != StateRunning {
		return
	}
	s.refresh()
	j.State = StateCompleted
	j.EndTime = s.tnow
	s.removeRunning(j)

	// freeWorkers(job): slots released by the finished job.
	numWorkers := j.Replicas + s.cfg.JobOverheadSlots
	j.Replicas = 0
	s.free += numWorkers
	s.record(DecisionComplete, j)
	s.redistribute()
}

// Kick re-runs the redistribution pass (Figure 3's loop) without a
// completion event — used by the aging extension, where queue priorities
// change over time, and by operators after failed actuations.
func (s *Scheduler) Kick() {
	s.refresh()
	s.redistribute()
}

// Reschedule re-evaluates the whole cluster: every queued job is re-placed
// through the Figure 2 submission logic (so a high-priority job that was
// blocked by rescale gaps can now shrink lower-priority jobs), then the
// Figure 3 redistribution expands running jobs into any remaining free
// slots. Drivers call this when a rescale gap expires — the simulator via a
// timer event, the operator via its requeue-after reconcile loop.
//
// Once no remaining waiting job could start even if every running job were
// shrunk to its minimum (or preempted outright), the rest of the backlog is
// re-queued wholesale instead of being re-submitted one by one — a deep
// backlog costs one sort, not len(queue) placement passes. When even the
// smallest waiting requirement (minNeed) exceeds that bound the drain is
// skipped outright, so a saturated cluster pays O(1) per kick rather than a
// backlog sort. With EnableLog both shortcuts are disabled so every
// re-placement attempt stays in the audit trail.
func (s *Scheduler) Reschedule() {
	s.refresh()
	if s.queue.Len() > 0 {
		skipDrain := !s.cfg.EnableLog && !s.cfg.FullRedistribute &&
			s.free+s.maxFreeable() < s.minNeed
		if !skipDrain {
			s.rescheduleQueue()
		}
	}
	s.redistribute()
}

// rescheduleQueue drains the wait queue in priority order and re-places each
// job through the Figure 2 submission logic, bulk-requeueing the backlog
// tail once no remaining job could possibly start.
func (s *Scheduler) rescheduleQueue() {
	drained := s.queue.drainSorted()
	s.minNeed = maxSlotNeed
	if s.cfg.EnableLog {
		for _, j := range drained {
			s.submit(j)
		}
	} else {
		// needs[i] = smallest slot requirement among drained[i:].
		needs := s.needScratch[:0]
		for range drained {
			needs = append(needs, 0)
		}
		s.needScratch = needs
		for i := len(drained) - 1; i >= 0; i-- {
			n := s.jobNeed(drained[i])
			if i+1 < len(drained) && needs[i+1] < n {
				n = needs[i+1]
			}
			needs[i] = n
		}
		for i, j := range drained {
			if s.free+s.maxFreeable() < needs[i] {
				if needs[i] < s.minNeed {
					s.minNeed = needs[i]
				}
				s.queue.bulkAdd(drained[i:])
				break
			}
			s.submit(j)
		}
	}
	s.queue.recycleDrained(drained)
}

// maxFreeable is an upper bound on the worker slots a submission could free
// from the running set: every job shrunk to its policy minimum, or — with
// preemption enabled — stopped outright. Both forms follow in O(1) from the
// capacity invariant (free + Σ Replicas + overhead×NumRunning = Capacity)
// and the incrementally maintained runMinSum.
func (s *Scheduler) maxFreeable() int {
	if s.cfg.EnablePreemption {
		// Σ (Replicas + overhead) = Capacity − free.
		return s.cfg.Capacity - s.free
	}
	// Σ (Replicas − jmin) = Capacity − free − overhead×n − Σ jmin.
	return s.cfg.Capacity - s.free - s.cfg.JobOverheadSlots*len(s.running) - s.runMinSum
}

// NextGapExpiry returns the earliest future instant at which a rescale that
// is currently blocked only by T_rescale_gap becomes possible: an expansion
// of a below-max running job into free slots, or a shrink of an above-min
// running job on behalf of a queued job. ok is false when no such moment
// exists (nothing blocked, or the policy never rescales).
func (s *Scheduler) NextGapExpiry() (at time.Time, ok bool) {
	if s.cfg.RescaleGap == time.Duration(math.MaxInt64) {
		return time.Time{}, false // moldable: gaps never expire
	}
	s.refresh()
	for _, j := range s.running {
		minR, maxR := s.bounds(j)
		expandable := s.free > 0 && j.Replicas < maxR
		shrinkable := s.queue.Len() > 0 && j.Replicas > minR
		if !expandable && !shrinkable {
			continue
		}
		if s.gapOK(j) {
			continue // not gap-blocked; a plain Kick already had its chance
		}
		exp := j.LastAction.Add(s.cfg.RescaleGap)
		if exp.After(s.tnow) && (!ok || exp.Before(at)) {
			at, ok = exp, true
		}
	}
	return at, ok
}

// redistribute walks all running and queued jobs in decreasing priority
// order, growing each below-max job as far as free slots allow (Figure 3).
// The running snapshot and the queue heap are merged lazily, and a backlog
// whose smallest slot requirement exceeds the free capacity is skipped
// without being scanned at all.
//
// Two early-outs make the pass incremental (FullRedistribute disables
// both; both are decision-transparent, see the equivalence tests):
//
//   - free ≤ 0: the Figure 3 loop cannot expand or start anything, so only
//     the queue-empty minNeed reset survives.
//   - clean: the previous pass ran to completion, nothing mutated since,
//     and no rescale gap that blocked an expansion has expired yet
//     (cleanUntil) — re-running it would replay the identical no-op scan.
func (s *Scheduler) redistribute() {
	if !s.cfg.FullRedistribute {
		if s.free <= 0 {
			if s.queue.Len() == 0 {
				s.minNeed = maxSlotNeed
			}
			s.clean = true
			s.cleanUntilNs = 0
			return
		}
		if s.clean && (s.cleanUntilNs == 0 || s.tnowNs < s.cleanUntilNs) {
			return
		}
	}
	if s.cfg.AgingRate > 0 && (s.cfg.EnablePreemption || s.capStats.Requeues > 0) {
		// Preempted jobs do not age while queued jobs do, so a mixed
		// backlog's relative order can drift; restore the heap invariant.
		// Capacity reclaims requeue jobs even with preemption disabled.
		s.queue.init()
	}
	run := append(s.runScratch[:0], s.running...)
	s.runScratch = run
	overhead := s.cfg.JobOverheadSlots
	// When not even the smallest waiting requirement (minNeed already
	// includes the per-job overhead) fits the free slots — and out-of-order
	// allocation is on, so skipped jobs gate nothing — the backlog cannot
	// place a job and is left untouched.
	popQueue := s.queue.Len() > 0 &&
		(s.cfg.StrictFCFS || s.free >= s.minNeed)
	popped := s.popScratch[:0]
	poppedMin := maxSlotNeed
	// Track what could invalidate a clean skip of the next pass: the
	// earliest gap expiry among blocked expansions (Unix ns, 0 = none),
	// and whether any actuation failed (an external actuator might accept
	// a retry).
	var blockedExpiryNs int64
	attemptFailed := false
	ri := 0
	for s.free > 0 {
		takeQueue := false
		if popQueue && s.queue.Len() > 0 {
			takeQueue = ri >= len(run) || s.before(s.queue.peek(), run[ri])
		} else if ri >= len(run) {
			break
		}
		if !takeQueue {
			j := run[ri]
			ri++
			jmin, jmax := s.bounds(j)
			if !s.gapOK(j) {
				if j.Replicas < jmax && s.gapNs != math.MaxInt64 {
					if exp := j.lastActionNs + s.gapNs; blockedExpiryNs == 0 || exp < blockedExpiryNs {
						blockedExpiryNs = exp
					}
				}
				continue
			}
			if j.Replicas < jmax {
				add := jmax - j.Replicas
				if add > s.free {
					add = s.free
				}
				if j.Replicas+add >= jmin && add > 0 {
					if !s.expand(j, j.Replicas+add) {
						attemptFailed = true
					}
				}
			}
			continue
		}
		j := s.queue.pop()
		jmin, jmax := s.bounds(j)
		avail := s.free - overhead
		if avail < jmin {
			popped = append(popped, j)
			if need := jmin + overhead; need < poppedMin {
				poppedMin = need
			}
			if s.cfg.StrictFCFS {
				break // no backfilling past the queue head
			}
			continue
		}
		replicas := avail
		if replicas > jmax {
			replicas = jmax
		}
		if !s.start(j, replicas) {
			attemptFailed = true
			popped = append(popped, j)
			if need := jmin + overhead; need < poppedMin {
				poppedMin = need
			}
		}
	}
	if len(popped) > 0 {
		if s.queue.Len() == 0 {
			// The whole backlog was scanned, so poppedMin is exactly
			// the smallest requirement still waiting.
			s.minNeed = poppedMin
		}
		s.queue.bulkAdd(popped)
	} else if s.queue.Len() == 0 {
		s.minNeed = maxSlotNeed
	}
	s.popScratch = popped[:0]
	clear(popped)
	clear(run)
	s.runScratch = run[:0]
	// The pass is now a fixed point of the current state: mark it clean so
	// identical follow-up passes can skip. Aging drifts queue priorities
	// with time and a cost/benefit gate consults time-varying progress, so
	// neither configuration can be skipped safely; a failed actuation may
	// succeed on retry (external actuators), so those passes stay dirty
	// too.
	if !attemptFailed && s.cfg.AgingRate == 0 && s.cfg.CostBenefit == nil {
		s.clean = true
		s.cleanUntilNs = blockedExpiryNs
	}
}
