package core

import "testing"

func TestWithdrawQueuedJob(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	running := job("run", 3, 8, 8)
	waiting := job("wait", 3, 4, 8)
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(waiting); err != nil {
		t.Fatal(err)
	}
	if waiting.State != StateQueued || s.NumQueued() != 1 {
		t.Fatalf("setup: %v, %d queued", waiting.State, s.NumQueued())
	}
	if err := s.Withdraw(waiting); err != nil {
		t.Fatal(err)
	}
	if waiting.State != StateWithdrawn {
		t.Errorf("state %v, want Withdrawn", waiting.State)
	}
	if s.NumQueued() != 0 {
		t.Errorf("%d still queued", s.NumQueued())
	}
	// A withdrawn job is gone: a second withdraw must fail.
	if err := s.Withdraw(waiting); err == nil {
		t.Error("withdrew the same job twice")
	}
}

func TestWithdrawRejectsRunningJob(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	j := job("run", 3, 4, 8)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateRunning {
		t.Fatalf("setup: %v", j.State)
	}
	if err := s.Withdraw(j); err == nil {
		t.Error("withdrew a running job")
	}
}

func TestWithdrawPreemptedJob(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8, EnablePreemption: true})
	j := job("victim", 1, 4, 8)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if got := s.Preempt(8); got == 0 {
		t.Fatal("preempt freed nothing")
	}
	if j.State != StatePreempted {
		t.Fatalf("state %v after preempt", j.State)
	}
	if err := s.Withdraw(j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateWithdrawn || s.NumQueued() != 0 {
		t.Errorf("state %v, %d queued", j.State, s.NumQueued())
	}
}

func TestWithdrawKeepsSchedulerConsistent(t *testing.T) {
	// After a withdraw frees queue pressure, the next scheduling pass must
	// still start the remaining queued work.
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	blocker := job("blocker", 5, 8, 8)
	a := job("a", 4, 8, 8)
	b := job("b", 3, 8, 8)
	for _, j := range []*Job{blocker, a, b} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// blocker runs; a and b wait. Withdrawing a must leave b first in line.
	if err := s.Withdraw(a); err != nil {
		t.Fatal(err)
	}
	s.OnJobComplete(blocker)
	if b.State != StateRunning {
		t.Errorf("b is %v after the blocker completed, want Running", b.State)
	}
	if a.State != StateWithdrawn {
		t.Errorf("a is %v, want Withdrawn", a.State)
	}
}
