package core

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateCompleted
	StatePreempted
	// StateWithdrawn marks a job removed from this scheduler entirely — the
	// federation rebalancer's migration primitive. A withdrawn job is no
	// longer this scheduler's responsibility; it is typically re-submitted
	// to another member's scheduler.
	StateWithdrawn
)

// String returns the state's display name.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "Queued"
	case StateRunning:
		return "Running"
	case StateCompleted:
		return "Completed"
	case StatePreempted:
		return "Preempted"
	case StateWithdrawn:
		return "Withdrawn"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Job is the scheduler's view of one malleable job. MinReplicas and
// MaxReplicas bound the allocation (the CRD fields added in §3.2.1);
// Priority is user-defined with larger values scheduled first; ties are
// broken by earlier SubmitTime.
//
// Field order is deliberate: the comparator-hot fields (the comparison
// caches, IDRank, and the allocation bounds the placement loop reads) lead
// the struct so the sort and gap-check paths touch the first cache line or
// two, with the strings and time.Time records — visited only off the hot
// path — trailing. Construct Jobs with keyed literals.
type Job struct {
	// Comparison caches maintained by the scheduler: the base priority as
	// a float and the submit/last-action instants in Unix nanoseconds, so
	// the priority order and rescale-gap checks on the hot path are plain
	// arithmetic instead of time.Time method calls. submitNs is stamped by
	// Submit, lastActionNs wherever LastAction is set. (Virtual-clock
	// drivers carry no monotonic reading, so the nanosecond comparison is
	// exactly time.Time's.)
	prio         float64
	submitNs     int64
	lastActionNs int64

	// IDRank is an optional driver-assigned tie-break rank: among jobs with
	// equal SubmitTime it must be ordered exactly like ID (rank(a) < rank(b)
	// iff a.ID < b.ID). The final comparator tie-break then costs one integer
	// compare instead of a string compare. Two jobs with equal ranks fall
	// back to comparing IDs, so leaving the field zero is always correct.
	IDRank int32

	// Ref is an opaque driver-owned handle. The scheduler never reads or
	// writes it; drivers that intern job identities (the simulator's slab
	// indices, the operator's managed-job table) store their int32 index
	// here so actuator callbacks resolve a *Job to driver state without a
	// string-keyed map lookup on the hot path.
	Ref int32

	Priority    int
	MinReplicas int
	MaxReplicas int

	// Managed by the scheduler.
	State    State
	Replicas int
	Rescales int // number of shrink/expand events applied to this job

	ID         string
	SubmitTime time.Time
	LastAction time.Time // last creation/shrink/expand event (rescale-gap anchor)
	StartTime  time.Time
	EndTime    time.Time
}

// Validate checks the job's static fields.
func (j *Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("core: job has no ID")
	}
	if j.MinReplicas < 1 {
		return fmt.Errorf("core: job %s: minReplicas %d < 1", j.ID, j.MinReplicas)
	}
	if j.MaxReplicas < j.MinReplicas {
		return fmt.Errorf("core: job %s: maxReplicas %d < minReplicas %d", j.ID, j.MaxReplicas, j.MinReplicas)
	}
	return nil
}

// ResponseTime is the submission→start latency (paper metric: "time between
// a job submission and start"). Zero if the job has not started.
func (j *Job) ResponseTime() time.Duration {
	if j.StartTime.IsZero() {
		return 0
	}
	return j.StartTime.Sub(j.SubmitTime)
}

// CompletionTime is the submission→completion latency. Zero if not finished.
func (j *Job) CompletionTime() time.Duration {
	if j.EndTime.IsZero() {
		return 0
	}
	return j.EndTime.Sub(j.SubmitTime)
}

// sortJobs sorts jobs in decreasing effective priority (Scheduler.before
// order). The stable merge sort is kept deliberately: drained backlogs are
// nearly sorted (a heapified sorted remainder plus a few fresh pushes), the
// regime where the merge's insertion runs approach O(n) while a quicksort
// still partitions. slices.SortStableFunc avoids the sort.Interface boxing
// and method-value closure the previous implementation allocated per call.
func (s *Scheduler) sortJobs(jobs []*Job) {
	if s.cfg.AgingRate > 0 {
		slices.SortStableFunc(jobs, s.compare)
		return
	}
	// Aging off: effective priority is the cached base priority, so the
	// comparator is pure field arithmetic.
	slices.SortStableFunc(jobs, func(a, b *Job) int {
		switch {
		case a.prio > b.prio:
			return -1
		case a.prio < b.prio:
			return 1
		case a.submitNs < b.submitNs:
			return -1
		case a.submitNs > b.submitNs:
			return 1
		case a.IDRank < b.IDRank:
			return -1
		case a.IDRank > b.IDRank:
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
}
