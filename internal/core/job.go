package core

import (
	"fmt"
	"sort"
	"time"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateCompleted
	StatePreempted
)

// String returns the state's display name.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "Queued"
	case StateRunning:
		return "Running"
	case StateCompleted:
		return "Completed"
	case StatePreempted:
		return "Preempted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Job is the scheduler's view of one malleable job. MinReplicas and
// MaxReplicas bound the allocation (the CRD fields added in §3.2.1);
// Priority is user-defined with larger values scheduled first; ties are
// broken by earlier SubmitTime.
type Job struct {
	ID          string
	Priority    int
	MinReplicas int
	MaxReplicas int
	SubmitTime  time.Time

	// Managed by the scheduler.
	State      State
	Replicas   int
	LastAction time.Time // last creation/shrink/expand event (rescale-gap anchor)
	StartTime  time.Time
	EndTime    time.Time
	Rescales   int // number of shrink/expand events applied to this job
}

// Validate checks the job's static fields.
func (j *Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("core: job has no ID")
	}
	if j.MinReplicas < 1 {
		return fmt.Errorf("core: job %s: minReplicas %d < 1", j.ID, j.MinReplicas)
	}
	if j.MaxReplicas < j.MinReplicas {
		return fmt.Errorf("core: job %s: maxReplicas %d < minReplicas %d", j.ID, j.MaxReplicas, j.MinReplicas)
	}
	return nil
}

// ResponseTime is the submission→start latency (paper metric: "time between
// a job submission and start"). Zero if the job has not started.
func (j *Job) ResponseTime() time.Duration {
	if j.StartTime.IsZero() {
		return 0
	}
	return j.StartTime.Sub(j.SubmitTime)
}

// CompletionTime is the submission→completion latency. Zero if not finished.
func (j *Job) CompletionTime() time.Duration {
	if j.EndTime.IsZero() {
		return 0
	}
	return j.EndTime.Sub(j.SubmitTime)
}

// byPriority sorts jobs in decreasing scheduling priority: higher Priority
// first; among equals, earlier submission first; IDs break exact ties so
// ordering is total and deterministic.
type byPriority struct {
	jobs []*Job
	eff  func(*Job) float64
}

func (b byPriority) Len() int      { return len(b.jobs) }
func (b byPriority) Swap(i, j int) { b.jobs[i], b.jobs[j] = b.jobs[j], b.jobs[i] }
func (b byPriority) Less(i, j int) bool {
	ji, jj := b.jobs[i], b.jobs[j]
	pi, pj := b.eff(ji), b.eff(jj)
	if pi != pj {
		return pi > pj
	}
	if !ji.SubmitTime.Equal(jj.SubmitTime) {
		return ji.SubmitTime.Before(jj.SubmitTime)
	}
	return ji.ID < jj.ID
}

// sortByPriority sorts jobs in decreasing effective priority.
func sortByPriority(jobs []*Job, eff func(*Job) float64) {
	sort.Stable(byPriority{jobs: jobs, eff: eff})
}
