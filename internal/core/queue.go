package core

import "math"

// maxSlotNeed is the "queue is empty" sentinel for Scheduler.minNeed.
const maxSlotNeed = math.MaxInt

// jobQueue is the scheduler's indexed wait queue: a binary max-heap of queued
// (and preempted) jobs ordered like Scheduler.before — decreasing effective
// priority, ties broken by earlier submission, then ID. It replaces the
// sorted-slice queue whose full re-sort on every enqueue made million-job
// backlogs O(n log n) per scheduling event; heap operations are O(log n).
//
// The heap invariant survives the passage of time: queued jobs all age at the
// same AgingRate, so their relative order is constant. The one exception is a
// mixed queue of aged and preempted jobs (preempted jobs do not age) — the
// scheduler re-establishes the invariant with init before draining in that
// configuration.
type jobQueue struct {
	s    *Scheduler
	jobs []*Job
	// spare is the previously drained backing array, recycled so a
	// Reschedule-heavy workload ping-pongs between two arrays instead of
	// regrowing the queue from scratch after every drain.
	spare []*Job
}

// Len reports the number of waiting jobs.
func (q *jobQueue) Len() int { return len(q.jobs) }

// push inserts a job.
func (q *jobQueue) push(j *Job) {
	q.jobs = append(q.jobs, j)
	q.up(len(q.jobs) - 1)
}

// peek returns the highest-priority job without removing it. The queue must
// be non-empty.
func (q *jobQueue) peek() *Job { return q.jobs[0] }

// pop removes and returns the highest-priority job. The queue must be
// non-empty.
func (q *jobQueue) pop() *Job {
	top := q.jobs[0]
	n := len(q.jobs) - 1
	q.jobs[0] = q.jobs[n]
	q.jobs[n] = nil
	q.jobs = q.jobs[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

func (q *jobQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.s.before(q.jobs[i], q.jobs[parent]) {
			return
		}
		q.jobs[i], q.jobs[parent] = q.jobs[parent], q.jobs[i]
		i = parent
	}
}

func (q *jobQueue) down(i int) {
	n := len(q.jobs)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && q.s.before(q.jobs[r], q.jobs[child]) {
			child = r
		}
		if !q.s.before(q.jobs[child], q.jobs[i]) {
			return
		}
		q.jobs[i], q.jobs[child] = q.jobs[child], q.jobs[i]
		i = child
	}
}

// remove deletes an arbitrary job from the queue, restoring the heap
// invariant: O(n) to locate the job plus O(log n) to sift — the rare
// fleet-migration withdraw path, never a scheduling hot path.
func (q *jobQueue) remove(j *Job) bool {
	for i, cur := range q.jobs {
		if cur != j {
			continue
		}
		n := len(q.jobs) - 1
		q.jobs[i] = q.jobs[n]
		q.jobs[n] = nil
		q.jobs = q.jobs[:n]
		if i < n {
			q.down(i)
			q.up(i)
		}
		return true
	}
	return false
}

// init re-establishes the heap invariant over the whole queue in O(n).
func (q *jobQueue) init() {
	for i := len(q.jobs)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// bulkAdd appends a batch of jobs and rebuilds the heap — O(n), cheaper than
// len(batch) pushes when re-queueing a drained backlog.
func (q *jobQueue) bulkAdd(jobs []*Job) {
	q.jobs = append(q.jobs, jobs...)
	q.init()
}

// drainSorted empties the queue and returns every job in decreasing priority
// order. Callers hand the slice back via recycleDrained when done.
func (q *jobQueue) drainSorted() []*Job {
	out := q.jobs
	q.jobs = q.spare[:0]
	q.spare = nil
	q.s.sortJobs(out)
	return out
}

// recycleDrained reclaims a drainSorted slice's capacity once its jobs have
// been re-placed.
func (q *jobQueue) recycleDrained(drained []*Job) {
	clear(drained)
	q.spare = drained[:0]
}

// sorted returns the waiting jobs in decreasing priority order without
// disturbing the heap.
func (q *jobQueue) sorted() []*Job {
	out := append([]*Job(nil), q.jobs...)
	q.s.sortJobs(out)
	return out
}
