package core

import "fmt"

// CapacityStats counts the scheduler's forced-reclaim actions — the
// resilience ledger behind the availability experiments: how many
// capacity-loss events each running job absorbed by shrinking in place
// versus being checkpointed back to the queue.
type CapacityStats struct {
	// ForcedShrinks counts jobs shrunk in place during capacity reclaims
	// (a preemption survived without losing the allocation).
	ForcedShrinks int
	// Requeues counts jobs checkpoint-stopped and returned to the queue
	// because shrinking could not absorb the capacity loss.
	Requeues int
	// SlotsReclaimed is the total worker slots taken back by reclaims.
	SlotsReclaimed int
}

// Capacity reports the scheduler's current total slot capacity.
func (s *Scheduler) Capacity() int { return s.cfg.Capacity }

// CapacityStats returns the forced-reclaim counters accumulated so far.
func (s *Scheduler) CapacityStats() CapacityStats { return s.capStats }

// Reclaiming reports whether the scheduler is inside a forced capacity
// reclaim (SetCapacity shrink or Preempt). Actuators use it to attribute a
// shrink's overhead to the availability event rather than to the policy.
func (s *Scheduler) Reclaiming() bool { return s.reclaiming }

// SetCapacity changes the cluster's total worker-slot capacity at the
// current clock instant — the entry point for availability events (node
// failures and repairs, spot preemptions, maintenance drains, capacity
// bursts).
//
// Growth adds the new slots to the free pool and redistributes them
// (Figure 3) exactly as a job completion would. Shrink removes free slots
// first; any remaining deficit is reclaimed from running jobs in increasing
// priority order: each victim is shrunk to its policy minimum, and — when
// shrinking every eligible job still cannot cover the deficit — victims are
// checkpoint-stopped and requeued outright, again lowest priority first.
// Forced reclaim models hardware that is already gone, so it bypasses the
// rescale-gap and cost/benefit gates that voluntary rescales respect.
//
// An actuator may refuse to shrink or preempt an individual victim (the
// rescale protocol is mid-flight, say); the reclaim then moves to the next
// victim. If every victim refuses and the deficit remains, SetCapacity
// returns an error with the accounting left consistent at the new capacity
// (free slots temporarily negative; the next completion absorbs the debt).
func (s *Scheduler) SetCapacity(n int) error {
	if n < 1 {
		return fmt.Errorf("core: capacity %d < 1", n)
	}
	old := s.cfg.Capacity
	if n == old {
		return nil
	}
	s.refresh()
	s.dirty()
	s.cfg.Capacity = n
	s.recordCapacity(n)
	if n > old {
		s.free += n - old
		s.redistribute()
		return nil
	}
	s.free -= old - n
	if s.free < 0 {
		s.reclaim(-s.free)
	}
	if s.free < 0 {
		return fmt.Errorf("core: capacity %d → %d: actuator refused every victim, %d slots over-committed",
			old, n, -s.free)
	}
	if s.free > 0 {
		// Requeueing a large victim can overshoot the deficit; hand the
		// surplus to whatever still fits (a smaller queued job, say).
		s.redistribute()
	}
	return nil
}

// Preempt forcibly reclaims up to slots worker slots from running jobs into
// the free pool, shrinking victims to their policy minimum in increasing
// priority order and checkpoint-requeueing them (lowest priority first) only
// once no lower-priority job can shrink further. It returns the number of
// slots actually freed, which may fall short when the cluster is empty or
// the actuator refuses. Like SetCapacity, Preempt bypasses the rescale-gap
// and cost/benefit gates: it models an external authority (an operator
// draining a node, a higher-tenancy scheduler) that needs the slots now.
func (s *Scheduler) Preempt(slots int) int {
	if slots <= 0 {
		return 0
	}
	s.refresh()
	before := s.free
	s.reclaim(slots)
	return s.free - before
}

// reclaim frees at least need worker slots from the running set: a shrink
// pass over every victim from the lowest priority upward, then a preempt
// pass requeueing whole jobs, also lowest first. Both passes stop as soon as
// the target is met. Victim order is the scheduling priority order inverted,
// so a higher-priority job is never touched while a lower-priority job still
// has slots to give — the invariant the availability property tests pin.
func (s *Scheduler) reclaim(need int) {
	s.reclaiming = true
	defer func() { s.reclaiming = false }()
	target := s.free + need // reclaim until s.free reaches this

	// Shrink pass: running is sorted in decreasing priority, so walk
	// backwards. Replicas move to the policy minimum, overriding the
	// rescale gap and cost/benefit — the slots no longer exist.
	for i := len(s.running) - 1; i >= 0 && s.free < target; i-- {
		j := s.running[i]
		jmin, _ := s.bounds(j)
		if j.Replicas <= jmin {
			continue
		}
		to := j.Replicas - (target - s.free)
		if to < jmin {
			to = jmin
		}
		freed := j.Replicas - to
		if err := s.act.ShrinkJob(j, to); err != nil {
			continue
		}
		s.free += freed
		j.Replicas = to
		j.LastAction = s.tnow
		j.lastActionNs = s.tnowNs
		j.Rescales++
		s.dirty()
		s.capStats.ForcedShrinks++
		s.capStats.SlotsReclaimed += freed
		s.record(DecisionShrink, j)
	}

	// Preempt pass: checkpoint-stop whole jobs until the target is met.
	// Walking backwards stays safe across removals because removeRunning
	// deletes exactly the index we are standing on.
	for i := len(s.running) - 1; i >= 0 && s.free < target; i-- {
		j := s.running[i]
		if err := s.act.PreemptJob(j); err != nil {
			continue
		}
		freed := j.Replicas + s.cfg.JobOverheadSlots
		s.free += freed
		j.Replicas = 0
		j.State = StatePreempted
		j.LastAction = s.tnow
		j.lastActionNs = s.tnowNs
		s.removeRunning(j)
		s.queue.push(j)
		if jn := s.jobNeed(j); jn < s.minNeed {
			s.minNeed = jn
		}
		s.capStats.Requeues++
		s.capStats.SlotsReclaimed += freed
		s.record(DecisionPreempt, j)
	}
}
