package core

import (
	"strings"
	"testing"
	"time"
)

func TestDecisionLogRecordsLifecycle(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 16, EnableLog: true})
	a := job("a", 1, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	b := job("b", 5, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	s.OnJobComplete(b)
	s.OnJobComplete(a)

	log := s.Log()
	var kinds []string
	for _, d := range log {
		kinds = append(kinds, d.Kind.String()+":"+d.JobID)
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"start:a", "shrink:a", "start:b", "complete:b", "expand:a", "complete:a"} {
		if !strings.Contains(joined, want) {
			t.Errorf("decision log missing %q: %s", want, joined)
		}
	}
	// Every entry has consistent accounting.
	for _, d := range log {
		if d.FreeSlots < 0 || d.FreeSlots > 16 {
			t.Errorf("decision %v has free=%d", d, d.FreeSlots)
		}
		if d.String() == "" {
			t.Error("empty decision string")
		}
	}
}

func TestDecisionLogDisabledByDefault(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	if err := s.Submit(job("a", 1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Log()); n != 0 {
		t.Errorf("log has %d entries without EnableLog", n)
	}
}

func TestDecisionLogBounded(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 1 << 20, EnableLog: true})
	// Churn far past the cap.
	for i := 0; i < maxLogEntries/2+100; i++ {
		j := job("j", 1, 1, 1)
		j.ID = "j" + string(rune('a'+i%26))
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		s.OnJobComplete(j)
		clk.advance(time.Second)
	}
	if n := len(s.Log()); n > maxLogEntries {
		t.Errorf("log grew to %d entries (cap %d)", n, maxLogEntries)
	}
}

func TestDecisionKindStrings(t *testing.T) {
	kinds := []DecisionKind{DecisionStart, DecisionShrink, DecisionExpand,
		DecisionEnqueue, DecisionComplete, DecisionPreempt, DecisionKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("DecisionKind(%d) empty", k)
		}
	}
}
