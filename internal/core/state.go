package core

import "fmt"

// SchedulerState is a point-in-time snapshot of a scheduler: the capacity in
// force, the forced-reclaim counters, and value copies of every running and
// waiting job. It is plain data — no pointers into the scheduler — so a
// snapshot can be held across scheduler mutations, handed to another
// scheduler, or serialized by a service front-end.
//
// The simulator's sharded mode uses it to seed epoch-local schedulers with
// the capacity an availability trace has established at the epoch boundary,
// and a future service mode will use the same pair to checkpoint and restore
// a live scheduler.
type SchedulerState struct {
	// Capacity is the total worker-slot capacity in force (which may differ
	// from the construction-time capacity after SetCapacity calls).
	Capacity int
	// CapStats carries the forced-reclaim counters accumulated so far.
	CapStats CapacityStats
	// Running holds the running jobs in decreasing effective priority
	// order; Queued holds the waiting (queued and preempted) jobs in the
	// same order. Both are value copies.
	Running []Job
	Queued  []Job
}

// ExportState snapshots the scheduler's current state. The decision log is
// not part of the snapshot; retrieve it separately via Log.
func (s *Scheduler) ExportState() SchedulerState {
	s.refresh()
	st := SchedulerState{Capacity: s.cfg.Capacity, CapStats: s.capStats}
	if len(s.running) > 0 {
		st.Running = make([]Job, len(s.running))
		for i, j := range s.running {
			st.Running[i] = *j
		}
	}
	if s.queue.Len() > 0 {
		sorted := s.queue.sorted()
		st.Queued = make([]Job, len(sorted))
		for i, j := range sorted {
			st.Queued[i] = *j
		}
	}
	return st
}

// ExportStateInto snapshots the scheduler's current state into st, reusing
// st's Running and Queued backing arrays — the allocation-free variant of
// ExportState for callers that snapshot in a loop (per-round rebalancers, a
// service front-end checkpointing on a timer). st's previous contents are
// overwritten; the snapshot semantics are otherwise ExportState's exactly,
// except that an empty job set leaves a non-nil zero-length slice rather
// than nil when st already carried capacity.
func (s *Scheduler) ExportStateInto(st *SchedulerState) {
	s.refresh()
	st.Capacity = s.cfg.Capacity
	st.CapStats = s.capStats
	st.Running = st.Running[:0]
	for _, j := range s.running {
		st.Running = append(st.Running, *j)
	}
	st.Queued = st.Queued[:0]
	if s.queue.Len() > 0 {
		for _, j := range s.queue.sorted() {
			st.Queued = append(st.Queued, *j)
		}
	}
}

// restoreCaches rebuilds the comparison caches a snapshot does not carry
// (they are derivable from the exported fields).
func restoreCaches(j *Job) {
	j.prio = float64(j.Priority)
	j.submitNs = j.SubmitTime.UnixNano()
	if j.LastAction.IsZero() {
		j.lastActionNs = 0
	} else {
		j.lastActionNs = j.LastAction.UnixNano()
	}
}

// RestoreState replaces the scheduler's entire state with a snapshot: jobs,
// capacity, free-slot accounting, and reclaim counters. Fresh Job records
// are allocated (the snapshot stays untouched); drivers re-attach their
// per-job state through Job.Ref, which the snapshot preserves. No decisions
// are recorded and the decision log is left as it was — a restore models
// resuming from a checkpoint, not scheduling activity.
//
// The snapshot must be internally consistent: running jobs in state
// StateRunning with at least one replica, waiting jobs in StateQueued or
// StatePreempted with none, and the running allocations (plus per-job
// overhead) within Capacity. Violations return an error with the scheduler
// unchanged.
func (s *Scheduler) RestoreState(st SchedulerState) error {
	if st.Capacity < 1 {
		return fmt.Errorf("core: restore: capacity %d < 1", st.Capacity)
	}
	used := 0
	runMinSum := 0
	running := make([]*Job, len(st.Running))
	for i := range st.Running {
		j := new(Job)
		*j = st.Running[i]
		if err := j.Validate(); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if j.State != StateRunning || j.Replicas < 1 {
			return fmt.Errorf("core: restore: running job %s in state %v with %d replicas",
				j.ID, j.State, j.Replicas)
		}
		restoreCaches(j)
		used += j.Replicas + s.cfg.JobOverheadSlots
		jmin, _ := s.bounds(j)
		runMinSum += jmin
		running[i] = j
	}
	if used > st.Capacity {
		return fmt.Errorf("core: restore: running set uses %d of %d slots", used, st.Capacity)
	}
	queued := make([]*Job, len(st.Queued))
	for i := range st.Queued {
		j := new(Job)
		*j = st.Queued[i]
		if err := j.Validate(); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if j.State != StateQueued && j.State != StatePreempted {
			return fmt.Errorf("core: restore: waiting job %s in state %v", j.ID, j.State)
		}
		if j.Replicas != 0 {
			return fmt.Errorf("core: restore: waiting job %s holds %d replicas", j.ID, j.Replicas)
		}
		restoreCaches(j)
		queued[i] = j
	}

	s.cfg.Capacity = st.Capacity
	s.capStats = st.CapStats
	s.free = st.Capacity - used
	s.running = running
	s.sortJobs(s.running) // exported order is already sorted; re-sorting is cheap insurance
	s.runMinSum = runMinSum
	s.queue.jobs = s.queue.jobs[:0]
	s.queue.bulkAdd(queued)
	s.minNeed = maxSlotNeed
	for _, j := range queued {
		if need := s.jobNeed(j); need < s.minNeed {
			s.minNeed = need
		}
	}
	s.clean = false
	s.cleanUntilNs = 0
	s.reclaiming = false
	return nil
}
