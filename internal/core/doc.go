// Package core implements the paper's primary contribution: a priority-based
// elastic job scheduling policy for malleable HPC jobs (paper §3.2, Figures
// 2 and 3), plus the three baseline policies it is evaluated against
// (rigid-min, rigid-max, moldable — paper §4.3).
//
// The scheduler is clock- and substrate-agnostic: it tracks slot accounting
// itself and drives an Actuator interface, so the same policy code runs
// inside the discrete-event simulator (internal/sim) and inside the
// Kubernetes operator (internal/operator) — mirroring how the paper's
// simulator and EKS deployment share one policy.
//
// Beyond the paper's fixed-capacity model, the scheduler supports a
// time-varying cluster: SetCapacity applies availability events (node
// failures and repairs, spot preemptions, maintenance drains, capacity
// bursts) and Preempt reclaims slots on demand. Forced reclaims shrink
// victims to their policy minimum in increasing priority order and
// checkpoint-requeue jobs that cannot shrink, bypassing the rescale-gap and
// cost/benefit gates that voluntary rescales respect — the hardware is
// already gone. CapacityStats counts how losses were absorbed.
//
// Invariant maintained across every operation: the sum of running jobs'
// replicas (plus per-job overhead slots) and the free-slot count equals the
// current capacity.
//
// The scheduler is incremental: redistribution passes early-out when no
// slot, queue, or capacity state changed since the last completed pass (and
// no blocking rescale gap has expired), backlog drains are skipped when the
// free-plus-freeable budget cannot place even the smallest waiting job, and
// priority/gap comparisons run on cached integer keys. The early-outs are
// decision-transparent — Config.FullRedistribute disables them, and the
// equivalence tests pin incremental ≡ full across policies and workloads.
// docs/ARCHITECTURE.md lists the invariants.
package core
