package core

import (
	"fmt"
	"testing"
	"time"
)

type benchActuator struct{}

func (benchActuator) StartJob(*Job, int) error  { return nil }
func (benchActuator) ShrinkJob(*Job, int) error { return nil }
func (benchActuator) ExpandJob(*Job, int) error { return nil }
func (benchActuator) PreemptJob(*Job) error     { return nil }

// BenchmarkSchedulerBacklog measures scheduling-event throughput against a
// deep waiting queue: 10k jobs pour into a 64-slot cluster, then completions
// drain it, so every event runs the enqueue/redistribute paths against a
// thousands-deep backlog — the regime the indexed job queue exists for.
func BenchmarkSchedulerBacklog(b *testing.B) {
	const jobs = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Unix(0, 0)
		s, err := NewScheduler(Config{Policy: Elastic, Capacity: 64, RescaleGap: time.Minute},
			benchActuator{}, func() time.Time { return now })
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < jobs; j++ {
			job := &Job{
				ID:          fmt.Sprintf("j%05d", j),
				Priority:    1 + j%5,
				MinReplicas: 2 + j%4,
				MaxReplicas: 8 + j%16,
			}
			if err := s.Submit(job); err != nil {
				b.Fatal(err)
			}
			now = now.Add(time.Second)
		}
		completed := 0
		for s.NumRunning() > 0 {
			for _, j := range s.Running() {
				s.OnJobComplete(j)
				completed++
			}
			now = now.Add(90 * time.Second)
			s.Reschedule()
		}
		if completed != jobs {
			b.Fatalf("completed %d of %d", completed, jobs)
		}
	}
}
