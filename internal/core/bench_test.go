package core

import (
	"fmt"
	"testing"
	"time"
)

type benchActuator struct{}

func (benchActuator) StartJob(*Job, int) error  { return nil }
func (benchActuator) ShrinkJob(*Job, int) error { return nil }
func (benchActuator) ExpandJob(*Job, int) error { return nil }
func (benchActuator) PreemptJob(*Job) error     { return nil }

// BenchmarkSchedulerBacklog measures scheduling-event throughput against a
// deep waiting queue: 10k jobs pour into a 64-slot cluster, then completions
// drain it, so every event runs the enqueue/redistribute paths against a
// thousands-deep backlog — the regime the indexed job queue exists for.
func BenchmarkSchedulerBacklog(b *testing.B) {
	const jobs = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Unix(0, 0)
		s, err := NewScheduler(Config{Policy: Elastic, Capacity: 64, RescaleGap: time.Minute},
			benchActuator{}, func() time.Time { return now })
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < jobs; j++ {
			job := &Job{
				ID:          fmt.Sprintf("j%05d", j),
				Priority:    1 + j%5,
				MinReplicas: 2 + j%4,
				MaxReplicas: 8 + j%16,
			}
			if err := s.Submit(job); err != nil {
				b.Fatal(err)
			}
			now = now.Add(time.Second)
		}
		completed := 0
		scratch := make([]*Job, 0, 64)
		for s.NumRunning() > 0 {
			// Snapshot via the non-copying iterator into a reused buffer
			// (OnJobComplete mutates the running list mid-iteration).
			scratch = scratch[:0]
			s.VisitRunning(func(j *Job) bool {
				scratch = append(scratch, j)
				return true
			})
			for _, j := range scratch {
				s.OnJobComplete(j)
				completed++
			}
			now = now.Add(90 * time.Second)
			s.Reschedule()
		}
		if completed != jobs {
			b.Fatalf("completed %d of %d", completed, jobs)
		}
	}
}

// BenchmarkSchedulerRedistributeIncremental measures the incremental
// scheduler's fixed-point path: a saturated 64-slot cluster with a 10k-deep
// backlog of rigid (min==max) jobs receives repeated gap-expiry kicks that
// cannot change anything. Each Reschedule must cost O(1) — the budget gate
// skips the backlog drain and the free==0 early-out skips the Figure 3
// scan — instead of the full drain-sort-resubmit the pre-incremental
// scheduler paid per kick.
func BenchmarkSchedulerRedistributeIncremental(b *testing.B) {
	const backlog = 10_000
	now := time.Unix(0, 0)
	s, err := NewScheduler(Config{Policy: Elastic, Capacity: 64, RescaleGap: time.Minute},
		benchActuator{}, func() time.Time { return now })
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < backlog; j++ {
		job := &Job{
			ID:          fmt.Sprintf("j%05d", j),
			Priority:    1 + j%5,
			MinReplicas: 4,
			MaxReplicas: 4,
		}
		if err := s.Submit(job); err != nil {
			b.Fatal(err)
		}
	}
	if s.FreeSlots() != 0 || s.NumQueued() == 0 {
		b.Fatalf("setup: free=%d queued=%d, want saturated cluster with backlog",
			s.FreeSlots(), s.NumQueued())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(90 * time.Second)
		s.Reschedule()
	}
}

// TestRedistributeIncrementalNoAllocs pins the allocation-free property the
// benchmark above measures, deterministically: a gap-expiry kick against a
// saturated cluster with a deep backlog must not allocate. (The benchmark
// itself is too short to gate in CI — at b.N=1 a ~900ns op is all jitter —
// so this assertion is the regression guard.)
func TestRedistributeIncrementalNoAllocs(t *testing.T) {
	const backlog = 1_000
	now := time.Unix(0, 0)
	s, err := NewScheduler(Config{Policy: Elastic, Capacity: 64, RescaleGap: time.Minute},
		benchActuator{}, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < backlog; j++ {
		job := &Job{
			ID:          fmt.Sprintf("j%05d", j),
			Priority:    1 + j%5,
			MinReplicas: 4,
			MaxReplicas: 4,
		}
		if err := s.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	if s.FreeSlots() != 0 || s.NumQueued() == 0 {
		t.Fatalf("setup: free=%d queued=%d, want saturated cluster with backlog",
			s.FreeSlots(), s.NumQueued())
	}
	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(90 * time.Second)
		s.Reschedule()
	})
	if allocs != 0 {
		t.Errorf("saturated-cluster Reschedule allocates %.1f objects/op, want 0", allocs)
	}
}
